package ptldb

// Concurrency tests: the paper motivates PTLDB with multi-user database
// deployments ("ensures scalability, regardless of the numbers of users"),
// so concurrent read queries against one open database must be safe and
// consistent. Run with -race.

import (
	"sync"
	"testing"
)

func TestConcurrentQueries(t *testing.T) {
	tt, err := GenerateCity("Salt Lake City", 0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Create(t.TempDir(), tt, Config{Device: "ssd", PoolPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	targets := []StopID{1, 2, 3, 5, 8, 13}
	if err := db.AddTargetSet("poi", targets, 4); err != nil {
		t.Fatal(err)
	}

	// Reference answers computed single-threaded.
	type q struct {
		s, g StopID
		t    Time
	}
	queries := make([]q, 64)
	wantArr := make([]Time, len(queries))
	wantOK := make([]bool, len(queries))
	for i := range queries {
		queries[i] = q{
			s: StopID(i % tt.NumStops()),
			g: StopID((i * 7) % tt.NumStops()),
			t: tt.MinTime() + Time(i)*60,
		}
		wantArr[i], wantOK[i], err = db.EarliestArrival(queries[i].s, queries[i].g, queries[i].t)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				i := (worker*13 + round*29) % len(queries)
				arr, ok, err := db.EarliestArrival(queries[i].s, queries[i].g, queries[i].t)
				if err != nil {
					errs <- err
					return
				}
				if ok != wantOK[i] || (ok && arr != wantArr[i]) {
					errs <- &inconsistent{i: i}
					return
				}
				if _, err := db.EAKNN("poi", queries[i].s, queries[i].t, 2); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type inconsistent struct{ i int }

func (e *inconsistent) Error() string { return "concurrent query returned inconsistent result" }

func TestConcurrentVersionHandles(t *testing.T) {
	tt, err := GenerateCity("Austin", 0.008, 4)
	if err != nil {
		t.Fatal(err)
	}
	tt2, err := GenerateCity("Austin", 0.008, 5) // "weekend" variant
	if err != nil {
		t.Fatal(err)
	}
	db, err := Create(t.TempDir(), tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.AddVersion("weekend", tt2); err != nil {
		t.Fatal(err)
	}
	weekend, err := db.Version("weekend")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			h := db
			if worker%2 == 1 {
				h = weekend
			}
			for i := 0; i < 20; i++ {
				s := StopID(i % tt.NumStops())
				g := StopID((i + 3) % tt.NumStops())
				if _, _, err := h.EarliestArrival(s, g, tt.MinTime()); err != nil {
					fail <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
}
