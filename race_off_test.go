//go:build !race

package ptldb

// raceEnabled reports whether this binary was built with -race; allocation
// ratchets skip themselves there (the detector adds bookkeeping allocations).
const raceEnabled = false
