package ptldb

// BenchmarkVCache measures the resident vector cache against the segment
// read path on the same database directory — the check.sh smoke companion to
// the fuller `ptldb-bench -exp vcache` experiment (BENCH_vcache.json). Both
// handles run warm on the RAM device, so the delta is exactly the per-lookup
// work a cache hit skips: buffer-pool pinning, the payload copy and the
// varint decode.

import "testing"

func BenchmarkVCache(b *testing.B) {
	tt, dir := benchSetup(b)
	const pool = 4096
	src, dst, starts, _ := benchWorkload(tt, pool)

	for _, tier := range []string{"vcache", "segments"} {
		db, err := Open(dir, Config{Device: "ram", DisableVectorCache: tier == "segments"})
		if err != nil {
			b.Fatal(err)
		}
		set := benchEnsureSet(b, db, tt, 0.01, 4)

		b.Run("warm/V2V-EA/"+tier, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				j := i % pool
				_, _, err := db.EarliestArrival(src[j], dst[j], starts[j])
				return err
			})
		})
		b.Run("warm/KNN-EA/"+tier, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNN(set, src[i%pool], starts[i%pool], 4)
				return err
			})
		})

		// Sanity: the intended tier served this handle. Hits may be 0 when
		// -bench filters out every sub-benchmark of this tier.
		vc := db.Snapshot().VCache
		if tier == "segments" && vc != nil && vc.Hits != 0 {
			b.Fatalf("segments handle served %d rows from the vector cache", vc.Hits)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
