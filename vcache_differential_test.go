package ptldb

import (
	"sync"
	"testing"

	"ptldb/internal/timetable"
)

// vcacheDifferential builds one database from tt and runs the full seeded
// query battery three ways over the same directory: with the resident vector
// cache (the default), with the cache disabled (segment tier), and with
// segments disabled entirely (heap tier). All three answer lists must be
// identical, and the cache/segment counters prove which tier actually served
// each handle.
func vcacheDifferential(t *testing.T, tt *Network, targets []StopID) {
	t.Helper()
	dir := t.TempDir()

	vdb, err := Create(dir, tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vdb.AddTargetSet("poi", targets, 4); err != nil {
		vdb.Close()
		t.Fatal(err)
	}
	vectored := fusedBattery(t, vdb, tt)
	if vc := vdb.Snapshot().VCache; vc == nil {
		t.Error("default handle has no vector cache metrics")
	} else if vc.Hits == 0 {
		t.Error("vcache handle served no rows from resident vectors")
	}
	if err := vdb.Close(); err != nil {
		t.Fatal(err)
	}

	sdb, err := Open(dir, Config{Device: "ram", DisableVectorCache: true})
	if err != nil {
		t.Fatal(err)
	}
	segmented := fusedBattery(t, sdb, tt)
	snap := sdb.Snapshot()
	if snap.VCache != nil && snap.VCache.Hits != 0 {
		t.Errorf("DisableVectorCache handle hit the cache %d times, want 0", snap.VCache.Hits)
	}
	if snap.Segment.Hits == 0 {
		t.Error("DisableVectorCache handle served no rows from segments")
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}

	hdb, err := Open(dir, Config{Device: "ram", DisableSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	defer hdb.Close()
	heap := fusedBattery(t, hdb, tt)
	if hits := hdb.Snapshot().Segment.Hits; hits != 0 {
		t.Errorf("DisableSegments handle served %d rows from segments, want 0", hits)
	}

	if len(vectored) != len(segmented) || len(vectored) != len(heap) {
		t.Fatalf("battery sizes differ: %d vs %d vs %d", len(vectored), len(segmented), len(heap))
	}
	for i := range vectored {
		if vectored[i] != segmented[i] || vectored[i] != heap[i] {
			t.Errorf("answer %d differs:\n  vcache:   %s\n  segments: %s\n  heap:     %s",
				i, vectored[i], segmented[i], heap[i])
		}
	}
}

// TestVCacheMatchesSegmentsAndHeapPaperExample runs the three-way battery on
// the paper's Figure 1 network, where every answer is checkable by hand.
func TestVCacheMatchesSegmentsAndHeapPaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	vcacheDifferential(t, tt, []StopID{4, 6})
}

// TestVCacheMatchesSegmentsAndHeapSyntheticCity runs the three-way battery on
// a synthetic city large enough that label runs span multiple segment pages
// and several tables compete for cache residency.
func TestVCacheMatchesSegmentsAndHeapSyntheticCity(t *testing.T) {
	tt, err := GenerateCity("Austin", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := tt.NumStops()
	targets := []StopID{StopID(1 % n), StopID(2 % n), StopID(5 % n), StopID(n - 1)}
	vcacheDifferential(t, tt, targets)
}

// TestVCacheConcurrentEvictionChurn reopens a database with a budget sized
// just below the working set, so the label tables continuously evict each
// other, then runs concurrent queries against the churning cache under -race.
// Answers must match the single-threaded reference regardless of which tier
// (resident vectors, segment, or a mid-materialization fallback) serves each
// call, and the eviction counter must prove the churn actually happened.
func TestVCacheConcurrentEvictionChurn(t *testing.T) {
	tt, err := GenerateCity("Austin", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := Create(dir, tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	n := tt.NumStops()
	targets := []StopID{StopID(1 % n), StopID(2 % n), StopID(5 % n), StopID(n - 1)}
	if err := db.AddTargetSet("poi", targets, 4); err != nil {
		db.Close()
		t.Fatal(err)
	}

	// Reference answers, computed single-threaded with an unconstrained
	// cache; the same pass warms every table so ResidentBytes below is the
	// true working set.
	type q struct {
		s, g StopID
		t    Time
		k    int
	}
	queries := make([]q, 48)
	wantArr := make([]Time, len(queries))
	wantOK := make([]bool, len(queries))
	wantKNN := make([][]Result, len(queries))
	for i := range queries {
		queries[i] = q{
			s: StopID(i % n),
			g: StopID((i * 7) % n),
			t: tt.MinTime() + Time(i)*60,
			k: 1 + i%4,
		}
		wantArr[i], wantOK[i], err = db.EarliestArrival(queries[i].s, queries[i].g, queries[i].t)
		if err != nil {
			t.Fatal(err)
		}
		wantKNN[i], err = db.EAKNN("poi", queries[i].s, queries[i].t, queries[i].k)
		if err != nil {
			t.Fatal(err)
		}
	}
	working := db.Snapshot().VCache.ResidentBytes
	if working <= 0 {
		t.Fatalf("ResidentBytes = %d after warm pass, want > 0", working)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A budget a hair under the working set: every table fits alone, the
	// full set does not, so steady state is perpetual eviction churn.
	churn, err := Open(dir, Config{Device: "ram", VectorCacheBytes: working - working/16})
	if err != nil {
		t.Fatal(err)
	}
	defer churn.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for round := 0; round < 12; round++ {
				i := (worker*13 + round*29) % len(queries)
				arr, ok, err := churn.EarliestArrival(queries[i].s, queries[i].g, queries[i].t)
				if err != nil {
					errs <- err
					return
				}
				if arr != wantArr[i] || ok != wantOK[i] {
					t.Errorf("worker %d: EA query %d = %d,%v; want %d,%v", worker, i, arr, ok, wantArr[i], wantOK[i])
				}
				res, err := churn.EAKNN("poi", queries[i].s, queries[i].t, queries[i].k)
				if err != nil {
					errs <- err
					return
				}
				if len(res) != len(wantKNN[i]) {
					t.Errorf("worker %d: EAKNN query %d returned %d results, want %d", worker, i, len(res), len(wantKNN[i]))
					continue
				}
				for j := range res {
					if res[j] != wantKNN[i][j] {
						t.Errorf("worker %d: EAKNN query %d result %d = %v, want %v", worker, i, j, res[j], wantKNN[i][j])
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	vc := churn.Snapshot().VCache
	if vc == nil {
		t.Fatal("churn handle has no vector cache metrics")
	}
	if vc.Evictions == 0 {
		t.Error("under-budget cache recorded no evictions; churn did not happen")
	}
	if vc.Hits == 0 {
		t.Error("churn handle never served from resident vectors")
	}
	if vc.ResidentBytes > working-working/16 {
		t.Errorf("ResidentBytes %d exceeds the %d budget", vc.ResidentBytes, working-working/16)
	}
}
