package ptldb

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 4). Each benchmark reproduces the corresponding experiment's
// query mix on a synthetic dataset; cmd/ptldb-bench runs the same
// experiments over all eleven datasets and renders the full tables.
//
// Reported metrics: ns/op is wall-clock CPU; "sim-ms/op" adds the simulated
// storage-device time charged by the buffer pool, which is what the paper's
// HDD/SSD comparisons are about.
//
// Environment knobs:
//
//	PTLDB_BENCH_SCALE  dataset scale relative to the paper (default 0.02)
//	PTLDB_BENCH_CITY   dataset profile (default Austin)

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

var benchState struct {
	once  sync.Once
	err   error
	tt    *Network
	dir   string
	scale float64
	city  string
	pre   PreprocessStats
}

func benchSetup(b *testing.B) (*Network, string) {
	b.Helper()
	benchState.once.Do(func() {
		benchState.scale = 0.02
		if s := os.Getenv("PTLDB_BENCH_SCALE"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				benchState.err = fmt.Errorf("bad PTLDB_BENCH_SCALE: %w", err)
				return
			}
			benchState.scale = v
		}
		benchState.city = "Austin"
		if c := os.Getenv("PTLDB_BENCH_CITY"); c != "" {
			benchState.city = c
		}
		tt, err := GenerateCity(benchState.city, benchState.scale, 1)
		if err != nil {
			benchState.err = err
			return
		}
		// benchDatasetFormat versions the cached dataset directory: bump it
		// whenever the on-disk format changes (e.g. the segment header CRC in
		// v2), or a stale cache would silently demote every table to the heap
		// path and the benchmarks would measure the wrong tier.
		const benchDatasetFormat = 2
		dir := filepath.Join(os.TempDir(),
			fmt.Sprintf("ptldb-gobench-%s-%04d-f%d", benchState.city, int(benchState.scale*10000), benchDatasetFormat))
		if _, err := os.Stat(filepath.Join(dir, "catalog.json")); err != nil {
			db, pre, err := CreateWithStats(dir, tt, Config{Device: "ram"})
			if err != nil {
				benchState.err = err
				return
			}
			benchState.pre = pre
			db.Close()
		}
		benchState.tt, benchState.dir = tt, dir
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.tt, benchState.dir
}

func benchOpen(b *testing.B, device string) *DB {
	b.Helper()
	_, dir := benchSetup(b)
	db, err := Open(dir, Config{Device: device})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// benchWorkload draws query inputs per the paper's protocol (sources and
// goals uniform; EA/SD starts in the first quarter of the time range, LD/SD
// ends in the fourth quarter).
func benchWorkload(tt *Network, n int) (src, dst []StopID, starts, ends []Time) {
	rng := rand.New(rand.NewSource(1234))
	span, min := tt.Span(), tt.MinTime()
	src = make([]StopID, n)
	dst = make([]StopID, n)
	starts = make([]Time, n)
	ends = make([]Time, n)
	for i := 0; i < n; i++ {
		src[i] = StopID(rng.Intn(tt.NumStops()))
		dst[i] = StopID(rng.Intn(tt.NumStops()))
		if dst[i] == src[i] {
			dst[i] = (dst[i] + 1) % StopID(tt.NumStops())
		}
		starts[i] = min + Time(rng.Int63n(int64(span)/4))
		ends[i] = min + span - Time(rng.Int63n(int64(span)/4))
	}
	return
}

// benchEnsureSet materializes the target set for (density, kmax) once.
func benchEnsureSet(b *testing.B, db *DB, tt *Network, d float64, kmax int) string {
	b.Helper()
	name := fmt.Sprintf("d%d_k%d", int(d*10000), kmax)
	if _, ok := db.TargetSets()[name]; ok {
		return name
	}
	n := tt.NumStops()
	count := int(d * float64(n))
	if count < 1 {
		count = 1
	}
	rng := rand.New(rand.NewSource(int64(count)<<20 ^ int64(kmax) ^ 1))
	perm := rng.Perm(n)
	targets := make([]StopID, count)
	for i := range targets {
		targets[i] = StopID(perm[i])
	}
	if err := db.AddTargetSet(name, targets, kmax); err != nil {
		b.Fatal(err)
	}
	return name
}

// runQueries benchmarks fn over the workload, reporting wall clock as ns/op
// and wall + simulated device time as sim-ms/op.
func runQueries(b *testing.B, db *DB, fn func(i int) error) {
	b.Helper()
	b.ReportAllocs()
	if err := db.DropCaches(); err != nil {
		b.Fatal(err)
	}
	db.ResetIOClock()
	st0, err := db.Stats()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := fn(i); err != nil {
			b.Fatal(err)
		}
	}
	wall := time.Since(start)
	b.StopTimer()
	st1, err := db.Stats()
	if err != nil {
		b.Fatal(err)
	}
	sim := wall + (st1.SimulatedIO - st0.SimulatedIO)
	b.ReportMetric(float64(sim)/float64(b.N)/1e6, "sim-ms/op")
}

// BenchmarkTable7_TTLPreprocessing regenerates the dataset-statistics table:
// full preprocessing of the benchmark city (vertex order, TTL labels,
// augmentation, bulk load).
func BenchmarkTable7_TTLPreprocessing(b *testing.B) {
	tt, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		db, pre, err := CreateWithStats(dir, tt, Config{Device: "ram"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pre.TuplesPerStop), "tuples/stop")
		db.Close()
		os.RemoveAll(dir)
	}
}

// BenchmarkFig2_V2V_HDD measures EA, LD and SD vertex-to-vertex queries on
// the simulated HDD (paper Figure 2).
func BenchmarkFig2_V2V_HDD(b *testing.B) {
	benchV2V(b, "hdd")
}

// BenchmarkFig7_V2V_SSD is the SSD counterpart (paper Figure 7).
func BenchmarkFig7_V2V_SSD(b *testing.B) {
	benchV2V(b, "ssd")
}

func benchV2V(b *testing.B, device string) {
	tt, _ := benchSetup(b)
	db := benchOpen(b, device)
	const pool = 4096
	src, dst, starts, ends := benchWorkload(tt, pool)
	b.Run("EA", func(b *testing.B) {
		runQueries(b, db, func(i int) error {
			j := i % pool
			_, _, err := db.EarliestArrival(src[j], dst[j], starts[j])
			return err
		})
	})
	b.Run("LD", func(b *testing.B) {
		runQueries(b, db, func(i int) error {
			j := i % pool
			_, _, err := db.LatestDeparture(src[j], dst[j], ends[j])
			return err
		})
	})
	b.Run("SD", func(b *testing.B) {
		runQueries(b, db, func(i int) error {
			j := i % pool
			_, _, err := db.ShortestDuration(src[j], dst[j], starts[j], ends[j])
			return err
		})
	})
}

// BenchmarkFig3_KNNNaiveVsOpt compares the naive Code 2 kNN query with the
// optimized Code 3/4 versions for D = 0.01 (paper Figure 3; the speedup is
// the ratio of the sub-benchmarks).
func BenchmarkFig3_KNNNaiveVsOpt(b *testing.B) {
	tt, _ := benchSetup(b)
	db := benchOpen(b, "hdd")
	const pool = 4096
	src, _, starts, ends := benchWorkload(tt, pool)
	for _, k := range []int{1, 4, 16} {
		kmax := 4
		if k > 4 {
			kmax = 16
		}
		set := benchEnsureSet(b, db, tt, 0.01, kmax)
		b.Run(fmt.Sprintf("EA/naive/k=%d", k), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNNNaive(set, src[i%pool], starts[i%pool], k)
				return err
			})
		})
		b.Run(fmt.Sprintf("EA/opt/k=%d", k), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNN(set, src[i%pool], starts[i%pool], k)
				return err
			})
		})
		b.Run(fmt.Sprintf("LD/naive/k=%d", k), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.LDKNNNaive(set, src[i%pool], ends[i%pool], k)
				return err
			})
		})
		b.Run(fmt.Sprintf("LD/opt/k=%d", k), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.LDKNN(set, src[i%pool], ends[i%pool], k)
				return err
			})
		})
	}
}

// BenchmarkFig4_KNN_HDD measures the optimized kNN queries for D = 0.01 and
// every k of the paper (Figure 4).
func BenchmarkFig4_KNN_HDD(b *testing.B) {
	benchKNN(b, "hdd")
}

// BenchmarkFig8_KNN_SSD is the SSD counterpart (Figure 8): the paper's
// finding is that kNN queries barely benefit from the faster device.
func BenchmarkFig8_KNN_SSD(b *testing.B) {
	benchKNN(b, "ssd")
}

func benchKNN(b *testing.B, device string) {
	tt, _ := benchSetup(b)
	db := benchOpen(b, device)
	const pool = 4096
	src, _, starts, ends := benchWorkload(tt, pool)
	for _, k := range []int{1, 2, 4, 8, 16} {
		kmax := 4
		if k > 4 {
			kmax = 16
		}
		set := benchEnsureSet(b, db, tt, 0.01, kmax)
		b.Run(fmt.Sprintf("EA/k=%d", k), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNN(set, src[i%pool], starts[i%pool], k)
				return err
			})
		})
		b.Run(fmt.Sprintf("LD/k=%d", k), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.LDKNN(set, src[i%pool], ends[i%pool], k)
				return err
			})
		})
	}
}

// BenchmarkFig5_KNNDensity measures kNN queries for k = 4 across the
// paper's target densities (Figure 5).
func BenchmarkFig5_KNNDensity(b *testing.B) {
	tt, _ := benchSetup(b)
	db := benchOpen(b, "hdd")
	const pool = 4096
	src, _, starts, ends := benchWorkload(tt, pool)
	for _, d := range []float64{0.001, 0.005, 0.01, 0.05, 0.1} {
		set := benchEnsureSet(b, db, tt, d, 4)
		b.Run(fmt.Sprintf("EA/D=%g", d), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNN(set, src[i%pool], starts[i%pool], 4)
				return err
			})
		})
		b.Run(fmt.Sprintf("LD/D=%g", d), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.LDKNN(set, src[i%pool], ends[i%pool], 4)
				return err
			})
		})
	}
}

// BenchmarkFig6_OTM measures the one-to-many queries across densities
// (Figure 6).
func BenchmarkFig6_OTM(b *testing.B) {
	tt, _ := benchSetup(b)
	db := benchOpen(b, "hdd")
	const pool = 4096
	src, _, starts, ends := benchWorkload(tt, pool)
	for _, d := range []float64{0.001, 0.01, 0.1} {
		set := benchEnsureSet(b, db, tt, d, 4)
		b.Run(fmt.Sprintf("EA/D=%g", d), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAOTM(set, src[i%pool], starts[i%pool])
				return err
			})
		})
		b.Run(fmt.Sprintf("LD/D=%g", d), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.LDOTM(set, src[i%pool], ends[i%pool])
				return err
			})
		})
	}
}

// BenchmarkAblation_BucketWidth sweeps the knn-table bucket width around the
// paper's one-hour choice (Section 3.2.1's tuning discussion).
func BenchmarkAblation_BucketWidth(b *testing.B) {
	tt, _ := benchSetup(b)
	for _, width := range []int32{900, 3600, 10800} {
		dir := filepath.Join(os.TempDir(),
			fmt.Sprintf("ptldb-gobench-bucket-%d-%04d", width, int(benchState.scale*10000)))
		if _, err := os.Stat(filepath.Join(dir, "catalog.json")); err != nil {
			db, err := Create(dir, tt, Config{Device: "ram", BucketSeconds: width})
			if err != nil {
				b.Fatal(err)
			}
			db.Close()
		}
		db, err := Open(dir, Config{Device: "hdd"})
		if err != nil {
			b.Fatal(err)
		}
		set := benchEnsureSet(b, db, tt, 0.01, 4)
		const pool = 4096
		src, _, starts, _ := benchWorkload(tt, pool)
		b.Run(fmt.Sprintf("EA/bucket=%ds", width), func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNN(set, src[i%pool], starts[i%pool], 4)
				return err
			})
		})
		db.Close()
	}
}
