package ptldb

import (
	"testing"

	"ptldb/internal/timetable"
)

// segmentsDifferential builds one database from tt, runs the full seeded
// query battery with columnar segments enabled (the default), reopens the
// same directory with DisableSegments, reruns the identical battery, and
// requires every answer to match. The segment counters prove which read
// path actually served each handle.
func segmentsDifferential(t *testing.T, tt *Network, targets []StopID) {
	t.Helper()
	dir := t.TempDir()

	// DisableVectorCache keeps this battery pinned to the segment tier; the
	// vcache tier has its own three-way differential in
	// vcache_differential_test.go.
	sdb, err := Create(dir, tt, Config{Device: "ram", DisableVectorCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sdb.AddTargetSet("poi", targets, 4); err != nil {
		sdb.Close()
		t.Fatal(err)
	}
	segmented := fusedBattery(t, sdb, tt)
	if hits := sdb.Snapshot().Segment.Hits; hits == 0 {
		t.Error("segments-on handle served no rows from segments")
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}

	hdb, err := Open(dir, Config{Device: "ram", DisableSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	defer hdb.Close()
	heap := fusedBattery(t, hdb, tt)
	if hits := hdb.Snapshot().Segment.Hits; hits != 0 {
		t.Errorf("DisableSegments handle served %d rows from segments, want 0", hits)
	}

	if len(segmented) != len(heap) {
		t.Fatalf("battery sizes differ: %d vs %d", len(segmented), len(heap))
	}
	for i := range segmented {
		if segmented[i] != heap[i] {
			t.Errorf("answer %d differs:\n  segments: %s\n  heap:     %s", i, segmented[i], heap[i])
		}
	}
}

// TestSegmentsMatchHeapPaperExample runs the differential battery on the
// paper's Figure 1 network, where every answer is small enough to check by
// hand.
func TestSegmentsMatchHeapPaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	segmentsDifferential(t, tt, []StopID{4, 6})
}

// TestSegmentsMatchHeapSyntheticCity runs the differential battery on a
// synthetic city large enough that label runs span multiple segment pages.
func TestSegmentsMatchHeapSyntheticCity(t *testing.T) {
	tt, err := GenerateCity("Austin", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := tt.NumStops()
	targets := []StopID{StopID(1 % n), StopID(2 % n), StopID(5 % n), StopID(n - 1)}
	segmentsDifferential(t, tt, targets)
}
