package ptldb

// Concurrency benchmarks for the sharded buffer pool and plan-cached query
// path. Each benchmark sweeps the number of goroutines issuing queries
// (g=1,4,8 — the "concurrent clients" axis) via b.SetParallelism, so the
// sweep is meaningful even on a single-core host; -cpu additionally varies
// GOMAXPROCS as usual:
//
//	go test -bench 'BenchmarkConcurrent' .
//
// The warm-pool benchmarks measure lock-contention scaling: every page is
// resident, so the only shared state on the hot path is the pool shards
// (frame pin/unpin) and the statement cache. The cold-pool benchmark opens
// the database on a simulated HDD with RealLatency and a pool smaller than
// the working set, so most queries perform device reads that consume real
// wall-clock time — goroutines overlap those reads because the pool issues
// them outside its shard locks (the pre-sharded pool held its one lock
// across every read, serializing them).
//
// Measured results are recorded in BENCH_concurrency.json.

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// goroutineCounts is the client-concurrency sweep recorded in
// BENCH_concurrency.json (16 shows where scaling saturates against the
// host's CPU-per-query floor).
var goroutineCounts = []int{1, 4, 8, 16}

// benchWarm runs enough random queries that every label page is resident
// before the timed section (the bench dataset spans a few dozen pages).
func benchWarm(b *testing.B, n int, fn func(i int) error) {
	b.Helper()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallel runs fn from g goroutines per GOMAXPROCS.
func benchParallel(b *testing.B, g int, fn func(i int) error) {
	b.Helper()
	b.ReportAllocs()
	var next atomic.Int64
	b.SetParallelism(g)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := fn(int(next.Add(1))); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkConcurrentV2V issues EA vertex-to-vertex queries from parallel
// goroutines over a warm RAM-device pool.
func BenchmarkConcurrentV2V(b *testing.B) {
	tt, _ := benchSetup(b)
	db := benchOpen(b, "ram")
	const pool = 4096
	src, dst, starts, _ := benchWorkload(tt, pool)
	query := func(i int) error {
		j := i % pool
		_, _, err := db.EarliestArrival(src[j], dst[j], starts[j])
		return err
	}
	benchWarm(b, 256, query)
	for _, g := range goroutineCounts {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			benchParallel(b, g, query)
		})
	}
}

// BenchmarkConcurrentKNN issues optimized EA-kNN (k = 4, D = 0.01) queries
// from parallel goroutines over a warm RAM-device pool.
func BenchmarkConcurrentKNN(b *testing.B) {
	tt, _ := benchSetup(b)
	db := benchOpen(b, "ram")
	set := benchEnsureSet(b, db, tt, 0.01, 4)
	const pool = 4096
	src, _, starts, _ := benchWorkload(tt, pool)
	query := func(i int) error {
		j := i % pool
		_, err := db.EAKNN(set, src[j], starts[j], 4)
		return err
	}
	benchWarm(b, 256, query)
	for _, g := range goroutineCounts {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			benchParallel(b, g, query)
		})
	}
}

// BenchmarkConcurrentV2VColdIO is the I/O-overlap benchmark: a 16-page pool
// over a working set several times larger, on a simulated HDD whose charges
// consume real wall-clock time. Most queries miss, and the misses sleep;
// the speedup across goroutine counts is the degree to which the pool lets
// concurrent device reads overlap.
func BenchmarkConcurrentV2VColdIO(b *testing.B) {
	tt, dir := benchSetup(b)
	db, err := Open(dir, Config{Device: "hdd", PoolPages: 16, RealLatency: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	const pool = 4096
	src, dst, starts, _ := benchWorkload(tt, pool)
	query := func(i int) error {
		j := i % pool
		_, _, err := db.EarliestArrival(src[j], dst[j], starts[j])
		return err
	}
	for _, g := range goroutineCounts {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			if err := db.DropCaches(); err != nil {
				b.Fatal(err)
			}
			benchParallel(b, g, query)
		})
	}
}
