package ptldb

import (
	"testing"
)

func buildSmallCity(t *testing.T) (*Network, *DB) {
	t.Helper()
	tt, err := GenerateCity("Salt Lake City", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Create(t.TempDir(), tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return tt, db
}

func TestFacadeEndToEnd(t *testing.T) {
	tt, db := buildSmallCity(t)

	// A couple of point queries at the start of service.
	s, g := StopID(0), StopID(tt.NumStops()-1)
	arr, okEA, err := db.EarliestArrival(s, g, tt.MinTime())
	if err != nil {
		t.Fatal(err)
	}
	if okEA {
		dep, okLD, err := db.LatestDeparture(s, g, arr)
		if err != nil {
			t.Fatal(err)
		}
		if !okLD || dep < tt.MinTime() || dep > arr {
			t.Errorf("LD(%d,%d,%v) = %v, %v", s, g, arr, dep, okLD)
		}
		dur, okSD, err := db.ShortestDuration(s, g, tt.MinTime(), arr)
		if err != nil {
			t.Fatal(err)
		}
		if !okSD || dur <= 0 || dur > arr-tt.MinTime() {
			t.Errorf("SD = %v, %v", dur, okSD)
		}
		// The reconstructed journey realizes the EA timestamp.
		j, ok := EarliestArrivalJourney(tt, s, g, tt.MinTime())
		if !ok || j.Legs[len(j.Legs)-1].Arr != arr {
			t.Errorf("journey arrival %v, EA %v", j.Legs[len(j.Legs)-1].Arr, arr)
		}
	}

	// Target sets and kNN.
	targets := []StopID{1, 3, 5, 7, 11, 13}
	if err := db.AddTargetSet("poi", targets, 4); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TargetSets()["poi"]; !ok {
		t.Error("target set not listed")
	}
	res, err := db.EAKNN("poi", s, tt.MinTime(), 3)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := db.EAKNNNaive("poi", s, tt.MinTime(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(naive) {
		t.Errorf("optimized (%d results) and naive (%d) disagree", len(res), len(naive))
	}
	for i := range res {
		if res[i].When != naive[i].When {
			t.Errorf("position %d: optimized %v vs naive %v", i, res[i], naive[i])
		}
	}
	otm, err := db.EAOTM("poi", s, tt.MinTime())
	if err != nil {
		t.Fatal(err)
	}
	if len(otm) < len(res) {
		t.Errorf("OTM returned fewer targets (%d) than 3-NN (%d)", len(otm), len(res))
	}

	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SizeOnDisk <= 0 || st.CacheHits == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFacadeReopenAcrossDevices(t *testing.T) {
	tt, err := GenerateCity("Austin", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := Create(dir, tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	arr1, ok1, err := db.EarliestArrival(0, 5, tt.MinTime())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for _, dev := range []string{"hdd", "ssd"} {
		db2, err := Open(dir, Config{Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		arr2, ok2, err := db2.EarliestArrival(0, 5, tt.MinTime())
		if err != nil {
			t.Fatal(err)
		}
		if ok1 != ok2 || arr1 != arr2 {
			t.Errorf("%s: EA = %v,%v, want %v,%v", dev, arr2, ok2, arr1, ok1)
		}
		if err := db2.DropCaches(); err != nil {
			t.Fatal(err)
		}
		db2.ResetIOClock()
		if _, _, err := db2.EarliestArrival(0, 5, tt.MinTime()); err != nil {
			t.Fatal(err)
		}
		st, err := db2.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.SimulatedIO <= 0 {
			t.Errorf("%s: no simulated I/O charged on a cold query", dev)
		}
		db2.Close()
	}
}

func TestCreateWithStats(t *testing.T) {
	tt, err := GenerateCity("Denver", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, stats, err := CreateWithStats(t.TempDir(), tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if stats.LabelTuples <= 0 || stats.TuplesPerStop <= 0 || stats.DummyTuples <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.LabelTime <= 0 || stats.LoadTime <= 0 {
		t.Errorf("timings = %+v", stats)
	}
	// The paper reports dummies as a small fraction of all tuples.
	frac := float64(stats.DummyTuples) / float64(stats.LabelTuples+stats.DummyTuples)
	if frac > 0.35 {
		t.Errorf("dummy fraction %.2f unexpectedly high", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := GenerateCity("Nowhere", 1, 1); err == nil {
		t.Error("unknown city accepted")
	}
	tt, _ := GenerateCity("Austin", 0.005, 1)
	if _, err := Create(t.TempDir(), tt, Config{Device: "floppy"}); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := Create(t.TempDir(), tt, Config{Ordering: "alphabetical"}); err == nil {
		t.Error("unknown ordering accepted")
	}
	if _, err := Open(t.TempDir(), Config{}); err == nil {
		t.Error("opening an empty directory succeeded")
	}
	if len(Profiles()) != 11 {
		t.Errorf("Profiles() returned %d entries", len(Profiles()))
	}
}
