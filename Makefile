GO ?= go

.PHONY: check lint build test race bench-concurrency bench-quick bench-build bench-segments bench-vcache bench-serve bench-tenants

# The pre-merge gate: vet + lint + build + full suite under the race detector.
check:
	sh scripts/check.sh

# Project-specific static analysis (sqlcheck, lockcheck, lockordercheck,
# atomiccheck, arenacheck, allocheck, errcheck, plus stale-waiver hygiene) —
# see internal/analysis and DESIGN.md §8 and §12.
lint:
	$(GO) run ./cmd/ptldb-analyze ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Concurrency scaling of the sharded buffer pool (see BENCH_concurrency.json).
# Each benchmark sweeps g=1,4,8 client goroutines internally.
bench-concurrency:
	$(GO) test -run '^$$' -bench 'BenchmarkConcurrent' -benchtime 1s .

# Preprocessing scaling: the ptldb-bench "build" experiment sweeps the
# BuildWorkers knob over fresh builds (see BENCH_build.json), and the
# serial-vs-parallel TTL benchmark isolates label construction.
bench-build:
	$(GO) run ./cmd/ptldb-bench -exp build -cities Austin,Berlin -scale 0.02 -q
	$(GO) test -run '^$$' -bench 'BenchmarkBuildParallel' -benchtime 1x ./internal/ttl

# Columnar label segments vs the B+tree/heap read path (see
# BENCH_segments.json): warm ns/op plus cold device pages per query.
bench-segments:
	$(GO) test -run '^$$' -bench 'BenchmarkSegments' -benchtime 100x .

# Resident vector cache vs the segment read path, warm (see
# BENCH_vcache.json); the budget sweep lives in `ptldb-bench -exp vcache`.
bench-vcache:
	$(GO) test -run '^$$' -bench 'BenchmarkVCache' -benchtime 100x .

# Open-loop load on the serving layer (see BENCH_serve.json): fixed
# per-client arrival rate, p50/p99/p999 + qps across client counts,
# coalescing on vs off; hard-fails if the coalescing probe shares nothing
# or the server does not drain cleanly.
bench-serve:
	$(GO) run ./cmd/ptldb-bench -exp serve -cities Austin -scale 0.05 -queries 1000 -q

# Cross-tenant isolation on the multi-city server (see BENCH_tenants.json):
# a warm city's p99 measured alone vs beside a stone-cold churning
# neighbour, median of three windows per cell; hard-fails if either tenant
# answers differently from a direct handle or the rollup /obs totals drift
# from the per-tenant sums.
bench-tenants:
	$(GO) run ./cmd/ptldb-bench -exp tenants -cities "Austin,Salt Lake City" \
	    -scale 0.05 -queries 1000 -serve-duration 10s -q

# Smoke run of the fused-vs-general executor benchmarks (see BENCH_exec.json):
# a few iterations each, enough to catch fused-path fallbacks or crashes
# without the full measurement cost.
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkFusedExec' -benchtime 5x .
