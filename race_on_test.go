//go:build race

package ptldb

const raceEnabled = true
