package ptldb

import "testing"

// TestFacadeVersions covers the weekday/weekend multi-version workflow of
// the paper's Section 3.1 through the public API.
func TestFacadeVersions(t *testing.T) {
	weekday, err := GenerateCity("Austin", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	weekend, err := GenerateCity("Austin", 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := Create(dir, weekday, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddVersion("weekend", weekend); err != nil {
		t.Fatal(err)
	}
	if got := db.Versions(); len(got) != 2 {
		t.Fatalf("Versions = %v", got)
	}
	we, err := db.Version("weekend")
	if err != nil {
		t.Fatal(err)
	}

	// Target sets are independent per version.
	if err := db.AddTargetSet("poi", []StopID{1, 2, 3}, 2); err != nil {
		t.Fatal(err)
	}
	if len(we.TargetSets()) != 0 {
		t.Error("weekend version sees the base target set")
	}
	if err := we.AddTargetSet("poi", []StopID{1, 2, 3}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := we.EAKNN("poi", 0, weekend.MinTime(), 2); err != nil {
		t.Fatal(err)
	}

	// Both versions survive close/reopen.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	we2, err := db2.Version("weekend")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := we2.EAKNN("poi", 0, weekend.MinTime(), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Version("holiday"); err == nil {
		t.Error("unknown version accepted")
	}
}

// TestFacadePathTables covers the expanded-path extension through the public
// API and cross-checks against in-memory reconstruction.
func TestFacadePathTables(t *testing.T) {
	tt, err := GenerateCity("Denver", 0.008, 9)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Create(t.TempDir(), tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.BuildPathTables(tt); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for s := 0; s < tt.NumStops() && checked < 25; s++ {
		g := (s*17 + 5) % tt.NumStops()
		if s == g {
			continue
		}
		dj, ok, err := db.JourneyFromDB(StopID(s), StopID(g), tt.MinTime())
		if err != nil {
			t.Fatal(err)
		}
		mem, okMem := EarliestArrivalJourney(tt, StopID(s), StopID(g), tt.MinTime())
		if ok != okMem {
			t.Fatalf("db journey ok=%v, memory ok=%v for %d->%d", ok, okMem, s, g)
		}
		if !ok {
			continue
		}
		if dj.Arr != mem.Legs[len(mem.Legs)-1].Arr {
			t.Fatalf("%d->%d: db arrives %v, memory %v", s, g, dj.Arr, mem.Legs[len(mem.Legs)-1].Arr)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d reachable pairs checked", checked)
	}
}
