#!/bin/sh
# Full pre-merge gate: vet, build, and the whole test suite under the race
# detector. Also available as `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== bench smoke (fused executor, 5 iterations)"
go test -run '^$' -bench 'BenchmarkFusedExec' -benchtime 5x .
echo "== OK"
