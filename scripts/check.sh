#!/bin/sh
# Full pre-merge gate: formatting, vet, project lint, build, and the whole
# test suite under the race detector with shuffled test order. Also available
# as `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "== go vet ./..."
go vet ./...
echo "== ptldb-analyze ./... (project lint)"
go run ./cmd/ptldb-analyze ./...
echo "== go build ./..."
go build ./...
echo "== go test -race -shuffle on ./..."
go test -race -shuffle on ./...
echo "== fused allocs/op ratchet (no race detector)"
go test -run 'TestFusedAllocsBudget' -count=1 .
echo "== bench smoke (fused executor, 5 iterations)"
go test -run '^$' -bench 'BenchmarkFusedExec' -benchtime 5x .
echo "== bench smoke (columnar segments, 5 iterations)"
go test -run '^$' -bench 'BenchmarkSegments' -benchtime 5x .
echo "== bench smoke (resident vector cache, 5 iterations)"
go test -run '^$' -bench 'BenchmarkVCache' -benchtime 5x .
echo "== bench smoke (parallel build, 1 iteration)"
go test -run '^$' -bench 'BenchmarkBuildParallel/workers=4' -benchtime 1x ./internal/ttl
echo "== serve smoke (open-loop harness: coalescing must share, server must drain)"
go run ./cmd/ptldb-bench -exp serve -cities Austin -scale 0.02 -queries 64 \
    -serve-clients 4 -serve-duration 300ms -q > /dev/null
echo "== tenants smoke (two cities, one process: answers must match direct handles, rollup /obs must sum per-tenant counters)"
go run ./cmd/ptldb-bench -exp tenants -cities "Austin,Salt Lake City" -scale 0.02 \
    -queries 32 -serve-duration 300ms -q > /dev/null
echo "== OK"
