package ptldb

// fused_allocs_test.go is the fused-path allocation ratchet: the observability
// counters (and any future hot-path change) must not add a single allocation
// per query. The budgets are the measured steady-state allocs/op of each
// fused query kind; scripts/check.sh runs this test without the race detector
// (instrumented builds perturb allocation counts, so it skips itself there).

import (
	"testing"
)

// fusedAllocBudgets pin the steady-state allocations per query of each fused
// Code on the small benchmark city. A regression here means something on the
// fused hot path started escaping to the heap — fix the escape, don't raise
// the budget. The same budgets apply to both label tiers: a warm vector-cache
// hit serves slice views and must not allocate a single byte more than the
// segment path it replaces.
var fusedAllocBudgets = []struct {
	name   string
	budget float64
}{
	{"v2v-ea", 19},
	{"v2v-sd", 19},
	{"knn-naive-ea", 41},
	{"knn-ea", 210},
	{"otm-ld", 47},
}

func TestFusedAllocsBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	tt, err := GenerateCity("Salt Lake City", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := Create(dir, tt, Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddTargetSet("poi", []StopID{1, 3, 5, 7, 11, 13}, 4); err != nil {
		db.Close()
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The budgets hold on both label tiers: the default handle serves warm
	// queries from resident vectors, the DisableVectorCache handle from
	// segments.
	for _, cfg := range []struct {
		tier string
		conf Config
	}{
		{"vcache", Config{Device: "ram"}},
		{"segments", Config{Device: "ram", DisableVectorCache: true}},
	} {
		t.Run(cfg.tier, func(t *testing.T) {
			db, err := Open(dir, cfg.conf)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			s, g := StopID(2), StopID(9)
			tq := tt.MinTime() + 600
			te := tt.MaxTime()
			queries := map[string]func() error{
				"v2v-ea":       func() error { _, _, err := db.EarliestArrival(s, g, tq); return err },
				"v2v-sd":       func() error { _, _, err := db.ShortestDuration(s, g, tq, te); return err },
				"knn-naive-ea": func() error { _, err := db.EAKNNNaive("poi", s, tq, 4); return err },
				"knn-ea":       func() error { _, err := db.EAKNN("poi", s, tq, 4); return err },
				"otm-ld":       func() error { _, err := db.LDOTM("poi", s, te); return err },
			}
			for _, tc := range fusedAllocBudgets {
				fn := queries[tc.name]
				// Warm the plan cache, scratch buffers, buffer pool and (on
				// the default handle) the vector cache, so the measurement
				// sees only steady-state work.
				for i := 0; i < 3; i++ {
					if err := fn(); err != nil {
						t.Fatal(tc.name, err)
					}
				}
				got := testing.AllocsPerRun(100, func() {
					if err := fn(); err != nil {
						t.Fatal(tc.name, err)
					}
				})
				if got > tc.budget {
					t.Errorf("%s (%s): %v allocs/query, budget %v — the fused hot path regressed",
						tc.name, cfg.tier, got, tc.budget)
				}
			}
			if cfg.tier == "vcache" {
				snap := db.Snapshot()
				if snap.VCache == nil || snap.VCache.Hits == 0 {
					t.Error("vcache tier measurement never hit the vector cache")
				}
			}
		})
	}
}
