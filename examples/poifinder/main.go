// Poifinder: the paper's EA-kNN motivating scenario (Section 3.2) — "a
// tourist deciding to visit the nearest point of interest using public
// transport", and the LD-kNN twin — "how long may breakfast last before
// heading to one of the preferred destinations by 11:00".
//
// It also contrasts the naive Code 2 query with the optimized Code 3 query
// on the same inputs, the comparison behind the paper's Figure 3.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"ptldb"
	"ptldb/internal/gtfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("poifinder: ")

	tt, err := ptldb.GenerateCity("Budapest", 0.02, 11)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "ptldb-poi")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ptldb.Create(dir, tt, ptldb.Config{Device: "hdd"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// "Museums": 1% of stops, as in the paper's D = 0.01 experiments.
	rng := rand.New(rand.NewSource(5))
	n := tt.NumStops()
	var museums []ptldb.StopID
	for _, idx := range rng.Perm(n)[:n/100+1] {
		museums = append(museums, ptldb.StopID(idx))
	}
	if err := db.AddTargetSet("museums", museums, 16); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d museum stops registered among %d stops\n", len(museums), n)

	hotel := ptldb.StopID(rng.Intn(n))
	fmt.Printf("hotel at stop %d (%s)\n", hotel, tt.Stop(hotel).Name)

	// Morning: which museums do we reach first after 09:00?
	after := ptldb.Time(9 * 3600)
	got, err := db.EAKNN("museums", hotel, after, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("leaving after 09:00, the four earliest-reachable museums:")
	for i, r := range got {
		fmt.Printf("  %d. stop %-5d arrive %s\n", i+1, r.Stop, gtfs.FormatTime(r.When))
	}

	// Breakfast planning: to be at some museum by 11:00, when must we leave?
	deadline := ptldb.Time(11 * 3600)
	latest, err := db.LDKNN("museums", hotel, deadline, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("to reach a museum by 11:00, the most relaxed options:")
	for i, r := range latest {
		fmt.Printf("  %d. leave at %s toward stop %d\n", i+1, gtfs.FormatTime(r.When), r.Stop)
	}

	// The Figure 3 comparison: naive vs optimized on this workload.
	const trials = 20
	var naive, opt time.Duration
	for i := 0; i < trials; i++ {
		q := ptldb.StopID(rng.Intn(n))
		start := time.Now()
		if _, err := db.EAKNNNaive("museums", q, after, 4); err != nil {
			log.Fatal(err)
		}
		naive += time.Since(start)
		start = time.Now()
		if _, err := db.EAKNN("museums", q, after, 4); err != nil {
			log.Fatal(err)
		}
		opt += time.Since(start)
	}
	fmt.Printf("EA-kNN over %d random hotels: naive %v/query, optimized %v/query (%.1fx)\n",
		trials, naive/trials, opt/trials, float64(naive)/float64(opt))
}
