// Journeyplanner: a terminal trip planner over a PTLDB database. It answers
// "when do I arrive?" with the database (paper Code 1) and reconstructs the
// full itinerary on the network, checking that both agree — the paper keeps
// timestamps in the database and notes expanded paths would be stored
// alongside for real deployments.
//
// Usage: journeyplanner [src dst hh:mm:ss]   (defaults: a random rush-hour trip)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	"ptldb"
	"ptldb/internal/gtfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("journeyplanner: ")

	tt, err := ptldb.GenerateCity("Berlin", 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "ptldb-journey")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ptldb.Create(dir, tt, ptldb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	src, dst := ptldb.StopID(0), ptldb.StopID(0)
	depart := ptldb.Time(8 * 3600)
	if len(os.Args) == 4 {
		a, err1 := strconv.Atoi(os.Args[1])
		b, err2 := strconv.Atoi(os.Args[2])
		t, err3 := gtfs.ParseTime(os.Args[3])
		if err1 != nil || err2 != nil || err3 != nil {
			log.Fatal("usage: journeyplanner [src dst hh:mm:ss]")
		}
		src, dst, depart = ptldb.StopID(a), ptldb.StopID(b), t
	} else {
		// Pick a random pair that is actually connected at rush hour.
		rng := rand.New(rand.NewSource(99))
		for {
			src = ptldb.StopID(rng.Intn(tt.NumStops()))
			dst = ptldb.StopID(rng.Intn(tt.NumStops()))
			if src == dst {
				continue
			}
			if _, ok, _ := db.EarliestArrival(src, dst, depart); ok {
				break
			}
		}
	}

	fmt.Printf("trip: %s -> %s, departing after %s\n",
		tt.Stop(src).Name, tt.Stop(dst).Name, gtfs.FormatTime(depart))

	arr, ok, err := db.EarliestArrival(src, dst, depart)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("no journey today.")
		return
	}
	fmt.Printf("database says: arrive %s\n", gtfs.FormatTime(arr))

	journey, ok := ptldb.EarliestArrivalJourney(tt, src, dst, depart)
	if !ok {
		log.Fatal("reconstruction disagrees with the database")
	}
	if got := journey.Legs[len(journey.Legs)-1].Arr; got != arr {
		log.Fatalf("itinerary arrives %v, database says %v", got, arr)
	}
	fmt.Printf("itinerary (%d legs, %d transfers):\n", len(journey.Legs), journey.Transfers)
	for i, leg := range journey.Legs {
		if i == 0 || leg.Trip != journey.Legs[i-1].Trip {
			fmt.Printf("  board trip %d at %s (%s)\n", leg.Trip, tt.Stop(leg.From).Name, gtfs.FormatTime(leg.Dep))
		}
		if i == len(journey.Legs)-1 || journey.Legs[i+1].Trip != leg.Trip {
			fmt.Printf("    ride to %s, arrive %s\n", tt.Stop(leg.To).Name, gtfs.FormatTime(leg.Arr))
		}
	}

	// The same itinerary can come entirely from the database once the
	// expanded-path tables are built (the paper's suggested deployment).
	if err := db.BuildPathTables(tt); err != nil {
		log.Fatal(err)
	}
	dj, ok, err := db.JourneyFromDB(src, dst, depart)
	if err != nil || !ok {
		log.Fatalf("database journey: %v %v", ok, err)
	}
	if dj.Arr != arr {
		log.Fatalf("database journey arrives %v, expected %v", dj.Arr, arr)
	}
	fmt.Printf("database-only reconstruction agrees: %d stops, arrive %s\n",
		len(dj.Stops), gtfs.FormatTime(dj.Arr))

	// The return planning question: latest departure home to be back by 22:00.
	if dep, ok, _ := db.LatestDeparture(dst, src, 22*3600); ok {
		fmt.Printf("return: leave %s by %s to be back at %s before 22:00\n",
			tt.Stop(dst).Name, gtfs.FormatTime(dep), tt.Stop(src).Name)
	}
	// And the flexible-traveller question: the fastest ride of the day.
	if dur, ok, _ := db.ShortestDuration(src, dst, tt.MinTime(), tt.MaxTime()); ok {
		fmt.Printf("fastest connection of the day takes %s\n", gtfs.FormatTime(dur))
	}
}
