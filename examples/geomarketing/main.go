// Geomarketing: the paper's one-to-many motivating scenario (Section 3.3) —
// "near what stop must one build a franchise store to be most easily
// reachable by clients". For each candidate site the LD one-to-many query
// tells every residential stop the latest time a client may leave home and
// still arrive before the store's 11:00 morning rush; the site whose
// clients can leave latest on average wins. The EA one-to-many query then
// produces the delivery-time table of the winning site.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"ptldb"
	"ptldb/internal/gtfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geomarketing: ")

	tt, err := ptldb.GenerateCity("Houston", 0.015, 23)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "ptldb-geo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ptldb.Create(dir, tt, ptldb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// "Residential" stops: a 5% sample of the city.
	rng := rand.New(rand.NewSource(2))
	n := tt.NumStops()
	var homes []ptldb.StopID
	for _, idx := range rng.Perm(n)[:n/20+1] {
		homes = append(homes, ptldb.StopID(idx))
	}
	if err := db.AddTargetSet("homes", homes, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scoring candidate store sites against %d residential stops\n", len(homes))

	// Candidate sites: a handful of central stops. LD-OTM is defined from
	// the store toward targets; for reachability *of* the store we use the
	// symmetric reading the paper gives for geomarketing: how late can one
	// depart from the site's neighborhood and still make the 11:00 rush.
	deadline := ptldb.Time(11 * 3600)
	type site struct {
		stop    ptldb.StopID
		reached int
		avgDep  ptldb.Time
	}
	var sites []site
	for _, idx := range rng.Perm(n)[:6] {
		cand := ptldb.StopID(idx)
		res, err := db.LDOTM("homes", cand, deadline)
		if err != nil {
			log.Fatal(err)
		}
		if len(res) == 0 {
			sites = append(sites, site{stop: cand})
			continue
		}
		var sum int64
		for _, r := range res {
			sum += int64(r.When)
		}
		sites = append(sites, site{
			stop:    cand,
			reached: len(res),
			avgDep:  ptldb.Time(sum / int64(len(res))),
		})
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].reached != sites[j].reached {
			return sites[i].reached > sites[j].reached
		}
		return sites[i].avgDep > sites[j].avgDep
	})

	fmt.Println("candidate sites (by residential coverage before 11:00):")
	for i, s := range sites {
		if s.reached == 0 {
			fmt.Printf("  %d. stop %-5d unreachable market\n", i+1, s.stop)
			continue
		}
		fmt.Printf("  %d. stop %-5d covers %3d/%d homes, avg latest departure %s\n",
			i+1, s.stop, s.reached, len(homes), gtfs.FormatTime(s.avgDep))
	}

	winner := sites[0]
	fmt.Printf("\nchosen site: stop %d (%s)\n", winner.stop, tt.Stop(winner.stop).Name)

	// Delivery-time table: when do morning couriers dispatched at 08:00
	// from the store reach each neighborhood?
	deliveries, err := db.EAOTM("homes", winner.stop, 8*3600)
	if err != nil {
		log.Fatal(err)
	}
	show := deliveries
	if len(show) > 8 {
		show = show[:8]
	}
	fmt.Println("first deliveries (courier leaves 08:00):")
	for _, r := range show {
		fmt.Printf("  stop %-5d delivered by %s\n", r.Stop, gtfs.FormatTime(r.When))
	}
	if len(deliveries) > len(show) {
		fmt.Printf("  ... and %d more neighborhoods\n", len(deliveries)-len(show))
	}
}
