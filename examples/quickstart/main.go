// Quickstart: build a PTLDB database for a small synthetic city and run one
// query of every kind the paper defines (EA/LD/SD vertex-to-vertex, EA/LD
// kNN, EA/LD one-to-many).
package main

import (
	"fmt"
	"log"
	"os"

	"ptldb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. A synthetic network modelled on the paper's Austin dataset at 2%
	// scale (use ptldb.LoadGTFS to ingest a real feed instead).
	tt, err := ptldb.GenerateCity("Austin", 0.02, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d stops, %d connections, service %v-%v\n",
		tt.NumStops(), tt.NumConnections(), tt.MinTime(), tt.MaxTime())

	// 2. Preprocess into a database directory: TTL labels -> lout/lin.
	dir, err := os.MkdirTemp("", "ptldb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ptldb.Create(dir, tt, ptldb.Config{Device: "ssd"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// 3. Vertex-to-vertex queries (paper Code 1).
	s, g := ptldb.StopID(0), ptldb.StopID(tt.NumStops()/2)
	morning := ptldb.Time(8 * 3600)
	if arr, ok, err := db.EarliestArrival(s, g, morning); err != nil {
		log.Fatal(err)
	} else if ok {
		fmt.Printf("EA(%d, %d, 08:00) = %v\n", s, g, arr)
		if dep, ok, _ := db.LatestDeparture(s, g, arr); ok {
			fmt.Printf("LD(%d, %d, %v) = %v\n", s, g, arr, dep)
		}
		if dur, ok, _ := db.ShortestDuration(s, g, morning, arr+3600); ok {
			fmt.Printf("SD(%d, %d) = %v riding time\n", s, g, dur)
		}
	} else {
		fmt.Printf("no journey %d -> %d after 08:00\n", s, g)
	}

	// 4. Register a target set (stops near points of interest) and ask the
	// paper's new query types.
	pois := []ptldb.StopID{3, 7, 11, 19, 23}
	if err := db.AddTargetSet("poi", pois, 4); err != nil {
		log.Fatal(err)
	}
	near, err := db.EAKNN("poi", s, morning, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 nearest POIs by arrival time:")
	for _, r := range near {
		fmt.Printf("  stop %d, arrive %v\n", r.Stop, r.When)
	}

	all, err := db.EAOTM("poi", s, morning)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-to-many: %d of %d POIs reachable after 08:00\n", len(all), len(pois))

	latest, err := db.LDKNN("poi", s, 11*3600, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("to reach a POI by 11:00, the two latest departures are:")
	for _, r := range latest {
		fmt.Printf("  leave at %v toward stop %d\n", r.When, r.Stop)
	}

	st, _ := db.Stats()
	fmt.Printf("database: %.1f MiB on disk, %d cache hits / %d misses\n",
		float64(st.SizeOnDisk)/(1<<20), st.CacheHits, st.CacheMisses)
}
