package ptldb

// BenchmarkFusedExec measures the fused label-query pipeline against the
// general tuple-at-a-time executor on the same database directory — the
// before/after numbers recorded in BENCH_exec.json. Both handles run on the
// warm RAM device so the delta is pure executor CPU and allocation.

import "testing"

func BenchmarkFusedExec(b *testing.B) {
	tt, dir := benchSetup(b)
	const pool = 4096
	src, dst, starts, ends := benchWorkload(tt, pool)

	for _, path := range []string{"fused", "general"} {
		db, err := Open(dir, Config{Device: "ram", DisableFusedExec: path == "general"})
		if err != nil {
			b.Fatal(err)
		}
		set := benchEnsureSet(b, db, tt, 0.01, 4)

		b.Run("V2V-EA/"+path, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				j := i % pool
				_, _, err := db.EarliestArrival(src[j], dst[j], starts[j])
				return err
			})
		})
		b.Run("V2V-SD/"+path, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				j := i % pool
				_, _, err := db.ShortestDuration(src[j], dst[j], starts[j], ends[j])
				return err
			})
		})
		b.Run("KNNNaive-EA/"+path, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNNNaive(set, src[i%pool], starts[i%pool], 4)
				return err
			})
		})
		b.Run("KNN-EA/"+path, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNN(set, src[i%pool], starts[i%pool], 4)
				return err
			})
		})
		b.Run("OTM-LD/"+path, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.LDOTM(set, src[i%pool], ends[i%pool])
				return err
			})
		})

		// Sanity: the intended executor served this handle. hits may be 0
		// when -bench filters out every sub-benchmark of this path.
		if hits, fallbacks := db.Store().DB.FusedStats(); path == "fused" && fallbacks != 0 {
			b.Fatalf("fused handle: hits=%d fallbacks=%d, want fallbacks=0", hits, fallbacks)
		} else if path == "general" && hits != 0 {
			b.Fatalf("general handle recorded %d fused executions", hits)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
