package ptldb

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// dirImage reads every file under dir into a name -> content map.
func dirImage(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBuildWorkersDiskImageIdentical builds the same database at several
// BuildWorkers values — exercising every parallel preprocessing path: the
// wave-parallel label construction, the pooled label/stops loads of Create,
// the six-table loads of AddTargetSet and the versioned loads of
// AddVersion — and asserts the resulting directories are byte-identical.
func TestBuildWorkersDiskImageIdentical(t *testing.T) {
	tt, err := GenerateCity("Salt Lake City", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	tt2, err := GenerateCity("Salt Lake City", 0.02, 43)
	if err != nil {
		t.Fatal(err)
	}
	targets := []StopID{1, 3, 5, 7, 11, 13}

	build := func(workers int) map[string][]byte {
		dir := t.TempDir()
		db, err := Create(dir, tt, Config{Device: "ram", BuildWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := db.AddTargetSet("poi", targets, 4); err != nil {
			t.Fatalf("workers=%d: AddTargetSet: %v", workers, err)
		}
		if err := db.AddVersion("weekend", tt2); err != nil {
			t.Fatalf("workers=%d: AddVersion: %v", workers, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("workers=%d: Close: %v", workers, err)
		}
		return dirImage(t, dir)
	}

	want := build(1)
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("serial build produced no files")
	}
	segs := 0
	for _, name := range names {
		if strings.HasSuffix(name, ".seg") {
			segs++
		}
	}
	if segs == 0 {
		t.Error("build produced no .seg segment files; byte-compare is not covering segments")
	}
	for _, workers := range []int{2, 7} {
		got := build(workers)
		if len(got) != len(want) {
			t.Errorf("workers=%d: %d files, serial build has %d", workers, len(got), len(want))
		}
		for _, name := range names {
			g, ok := got[name]
			if !ok {
				t.Errorf("workers=%d: file %s missing", workers, name)
				continue
			}
			if !bytes.Equal(g, want[name]) {
				t.Errorf("workers=%d: file %s differs from serial build (%d vs %d bytes)",
					workers, name, len(g), len(want[name]))
			}
		}
	}
}
