package ptldb

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFacadeObservability wires the public observability surface end to end:
// Config.TraceHook, Config.SlowQueryThreshold + SlowQueryLog, DB.Snapshot and
// DB.ExplainPrepared on a real database.
func TestFacadeObservability(t *testing.T) {
	tt, err := GenerateCity("Salt Lake City", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		traces []Trace
		slow   strings.Builder
	)
	db, err := Create(t.TempDir(), tt, Config{
		Device: "ram",
		TraceHook: func(tr Trace) {
			mu.Lock()
			traces = append(traces, tr)
			mu.Unlock()
		},
		// A negative-duration threshold is below every wall time, so each
		// query also produces one slow-log line.
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       &slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 5
	for i := 0; i < n; i++ {
		if _, _, err := db.EarliestArrival(StopID(i), StopID(i+1), tt.MinTime()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := len(traces)
	mu.Unlock()
	if got != n {
		t.Fatalf("hook got %d traces, want %d", got, n)
	}
	for _, tr := range traces {
		if tr.Code != "v2v-ea" || !tr.Fused {
			t.Errorf("trace = %+v", tr)
		}
	}
	// The first query materializes the label tables (a cache miss); warm
	// repeats must report their label reads as vector-cache hits.
	if last := traces[len(traces)-1]; last.VCacheHits == 0 {
		t.Errorf("warm trace carries no vcache hits: %+v", last)
	}
	if lines := strings.Count(slow.String(), "\n"); lines != n {
		t.Errorf("slow log has %d lines, want %d:\n%s", lines, n, slow.String())
	}

	snap := db.Snapshot()
	if snap.Query["v2v-ea"].Count != n {
		t.Errorf("snapshot v2v-ea count = %d, want %d", snap.Query["v2v-ea"].Count, n)
	}
	if snap.Exec.FusedRuns < n {
		t.Errorf("snapshot fused runs = %d, want >= %d", snap.Exec.FusedRuns, n)
	}
	if snap.Pool.Hits == 0 {
		t.Errorf("snapshot pool hits = 0")
	}
	if snap.VCache == nil {
		t.Error("snapshot has no vcache block on a default-config handle")
	} else {
		if snap.VCache.Hits == 0 || snap.VCache.Materializations == 0 {
			t.Errorf("vcache snapshot = %+v, want hits and materializations > 0", snap.VCache)
		}
		if snap.VCache.ResidentBytes <= 0 {
			t.Errorf("vcache resident bytes = %d, want > 0", snap.VCache.ResidentBytes)
		}
	}

	plan, err := db.ExplainPrepared("v2v-ea")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(plan, "FusedPlan v2v-ea") {
		t.Errorf("plan = %q", plan)
	}
	if names := db.ExplainNames(); len(names) != 3 {
		t.Errorf("names = %v (no target sets registered, want the three v2v kinds)", names)
	}
}
