package ptldb

// BenchmarkSegments measures the columnar label segments against the
// B+tree/heap read path on the same database directory — the numbers
// recorded in BENCH_segments.json. The warm sub-benchmarks run on the RAM
// device so the delta is pure decode CPU; the cold sub-benchmarks drop the
// buffer pool before every query and report the device page reads per query
// (pages/op), which is where the compressed format pays off.

import "testing"

func BenchmarkSegments(b *testing.B) {
	tt, dir := benchSetup(b)
	const pool = 4096
	src, dst, starts, _ := benchWorkload(tt, pool)

	for _, path := range []string{"segments", "heap"} {
		// DisableVectorCache pins the segments handle to the segment tier;
		// the vcache-vs-segments comparison is BenchmarkVCache's job.
		db, err := Open(dir, Config{
			Device:             "ram",
			DisableSegments:    path == "heap",
			DisableVectorCache: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		set := benchEnsureSet(b, db, tt, 0.01, 4)

		b.Run("warm/V2V-EA/"+path, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				j := i % pool
				_, _, err := db.EarliestArrival(src[j], dst[j], starts[j])
				return err
			})
		})
		b.Run("warm/KNN-EA/"+path, func(b *testing.B) {
			runQueries(b, db, func(i int) error {
				_, err := db.EAKNN(set, src[i%pool], starts[i%pool], 4)
				return err
			})
		})
		b.Run("cold/V2V-EA/"+path, func(b *testing.B) {
			b.ReportAllocs()
			before := db.Snapshot().Pool.Misses
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := db.DropCaches(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				j := i % pool
				if _, _, err := db.EarliestArrival(src[j], dst[j], starts[j]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			misses := db.Snapshot().Pool.Misses - before
			b.ReportMetric(float64(misses)/float64(b.N), "pages/op")
		})

		// Sanity: the intended read path served this handle. Hits may be 0
		// when -bench filters out every sub-benchmark of this path.
		if hits := db.Snapshot().Segment.Hits; path == "heap" && hits != 0 {
			b.Fatalf("heap handle served %d rows from segments", hits)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
