// Package ptldb is the public face of this repository: a from-scratch Go
// reproduction of "Scalable Public Transportation Queries on the Database"
// (Efentakis, EDBT 2016).
//
// PTLDB answers Earliest-Arrival (EA), Latest-Departure (LD) and
// Shortest-Duration (SD) point queries, EA/LD k-Nearest-Neighbor queries and
// EA/LD one-to-many queries on schedule-based public-transportation
// networks, entirely through SQL over hub-label tables stored in an embedded
// relational engine (the stand-in for the paper's PostgreSQL).
//
// Typical flow:
//
//	tt, _ := ptldb.GenerateCity("Austin", 0.1, 1)      // or ptldb.LoadGTFS(dir)
//	db, _ := ptldb.Create("/tmp/austin", tt, ptldb.Config{})
//	defer db.Close()
//	arr, ok, _ := db.EarliestArrival(12, 87, 8*3600)
//	_ = db.AddTargetSet("museums", []ptldb.StopID{4, 9, 23}, 16)
//	nearest, _ := db.EAKNN("museums", 12, 8*3600, 4)
//
// The heavy lifting lives in the internal packages: timetable (network
// model), gtfs (feed I/O), synth (city generator), order + ttl (Timetable
// Labeling), csa (Connection Scan oracle), sqldb (SQL engine with simulated
// storage devices) and core (the PTLDB tables and queries).
package ptldb

import (
	"fmt"
	"io"
	"os"
	"time"

	"ptldb/internal/core"
	"ptldb/internal/csa"
	"ptldb/internal/gtfs"
	"ptldb/internal/obs"
	"ptldb/internal/order"
	"ptldb/internal/sqldb"
	"ptldb/internal/sqldb/storage"
	"ptldb/internal/synth"
	"ptldb/internal/timetable"
	"ptldb/internal/ttl"
)

// Re-exported model types.
type (
	// StopID identifies a stop; Time is seconds after midnight.
	StopID = timetable.StopID
	// Time is a timestamp in seconds relative to the service-day start.
	Time = timetable.Time
	// Network is a schedule-based transportation network.
	Network = timetable.Timetable
	// Connection is one elementary vehicle movement.
	Connection = timetable.Connection
	// Result is one kNN / one-to-many answer.
	Result = core.Result
	// Trace describes one executed query (see Config.TraceHook).
	Trace = obs.Trace
	// Snapshot is a point-in-time copy of the observability counters (see
	// DB.Snapshot).
	Snapshot = obs.Snapshot
	// CityProfile describes a synthetic dataset modelled on the paper's
	// Table 7.
	CityProfile = synth.Profile
)

// Infinity is a timestamp greater than every reachable arrival.
const Infinity = timetable.Infinity

// ErrInvalidArgument marks query-surface errors caused by the caller's
// arguments — an out-of-range stop id, an unknown target set, version or
// explain name, a k outside the set's materialized range — as opposed to
// internal failures. Test with errors.Is or IsInvalidArgument; ptldb-serve
// maps the distinction to HTTP 400 vs 500.
var ErrInvalidArgument = core.ErrInvalidArgument

// IsInvalidArgument reports whether err is a caller mistake on the query
// surface (see ErrInvalidArgument).
func IsInvalidArgument(err error) bool { return core.IsInvalidArgument(err) }

// Profiles lists the eleven synthetic city profiles of the paper's Table 7.
func Profiles() []CityProfile { return synth.Profiles }

// GenerateCity builds the synthetic network for one of the paper's datasets
// at the given scale (1.0 = the published |V| and |E|).
func GenerateCity(name string, scale float64, seed int64) (*Network, error) {
	p, err := synth.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return synth.Generate(p, synth.Options{Scale: scale, Seed: seed}), nil
}

// LoadGTFS reads a GTFS directory into a network. The second result is the
// number of degenerate (non-positive-duration) connections skipped.
func LoadGTFS(dir string) (*Network, int, error) {
	feed, err := gtfs.Load(dir)
	if err != nil {
		return nil, 0, err
	}
	return feed.Timetable()
}

// Config tunes database creation and opening.
type Config struct {
	// Device selects the simulated storage device: "hdd", "ssd" (default)
	// or "ram".
	Device string
	// PoolPages is the buffer-pool size in 8 KiB pages (default 131072).
	PoolPages int
	// BucketSeconds is the kNN/one-to-many grouping granularity
	// (default 3600, the paper's one-hour buckets).
	BucketSeconds int32
	// Ordering selects the TTL vertex order: "neighbor-degree" (default),
	// "degree", "hub-usage" (sampled-journey betweenness, slower to compute
	// but usually smallest labels) or "random".
	Ordering string
	// Seed feeds the "random" ordering.
	Seed int64
	// RealLatency makes the simulated device consume real wall-clock time
	// for every charge instead of only advancing the I/O clock. Concurrency
	// benchmarks use this to observe device reads overlapping across
	// goroutines; it has no effect on query answers.
	RealLatency bool
	// DisableFusedExec turns off the fused execution path for the label
	// queries (Codes 1–4), forcing every statement through the general SQL
	// executor. The ptldb-bench -fused=off ablation and the differential
	// tests use this; it has no effect on query answers.
	DisableFusedExec bool
	// DisableSegments turns off the columnar label segments on the read path:
	// label lookups and scans go back to the B+tree/heap pair. Segment files
	// are still written during builds — the on-disk image is independent of
	// this flag — they are simply not opened. The ptldb-bench -segments=off
	// ablation and the differential tests use this; it has no effect on query
	// answers.
	DisableSegments bool
	// VectorCacheBytes sets the resident vector cache's byte budget: label
	// segments are decoded once into in-memory column vectors and served to
	// the fused executor as direct slice views until evicted. 0 selects
	// DefaultVectorCacheBytes; use DisableVectorCache to turn the cache off.
	// Sizing guidance: budget one city's label tables (roughly the .seg bytes
	// on disk) to keep the whole working set resident; smaller budgets evict
	// whole tables clock-wise. It has no effect on query answers.
	VectorCacheBytes int64
	// DisableVectorCache turns the resident vector cache off; reads are
	// served from the columnar segments (or the heap, with DisableSegments).
	// The ptldb-bench -vcache=off ablation and the differential tests use
	// this; it has no effect on query answers.
	DisableVectorCache bool
	// BuildWorkers bounds the preprocessing parallelism (default GOMAXPROCS):
	// TTL label construction runs rank-batched waves of this width, and the
	// table loads of Create / AddTargetSet / AddVersion run on a worker pool
	// of this size. The built database is byte-identical for every value.
	BuildWorkers int
	// TraceHook, when non-nil, receives one Trace per successful query method
	// call on this handle (and on Version handles derived from it). The hook
	// runs synchronously on the querying goroutine, so it must be cheap; see
	// DB.Snapshot for always-on aggregate counters that need no hook.
	TraceHook func(Trace)
	// SlowQueryThreshold, when positive, logs every query slower than the
	// threshold to SlowQueryLog — one line per offender with its code,
	// execution path, wall time, row count and pages read.
	SlowQueryThreshold time.Duration
	// SlowQueryLog is the slow-query destination (default os.Stderr). Only
	// consulted when SlowQueryThreshold > 0.
	SlowQueryLog io.Writer
}

// traceHook composes the user hook and the slow-query logger into the single
// hook installed on the store (nil when neither is configured).
func (c Config) traceHook() func(obs.Trace) {
	hook := c.TraceHook
	if c.SlowQueryThreshold <= 0 {
		return hook
	}
	w := c.SlowQueryLog
	if w == nil {
		w = os.Stderr
	}
	slow := obs.NewSlowQueryLogger(w, c.SlowQueryThreshold)
	if hook == nil {
		return slow.Observe
	}
	user := hook
	return func(t obs.Trace) {
		slow.Observe(t)
		user(t)
	}
}

// DefaultVectorCacheBytes is the vector-cache budget when Config leaves
// VectorCacheBytes zero: 256 MiB, enough to keep every label table of one
// paper-scale city resident (their decoded vectors are close to the .seg
// bytes on disk, tens of MiB per city at the benchmark scales).
const DefaultVectorCacheBytes = 256 << 20

// vcacheBytes resolves the effective vector-cache budget: 0 when disabled,
// the default when unset.
func (c Config) vcacheBytes() int64 {
	if c.DisableVectorCache {
		return 0
	}
	if c.VectorCacheBytes == 0 {
		return DefaultVectorCacheBytes
	}
	return c.VectorCacheBytes
}

func (c Config) device() (storage.DeviceModel, error) {
	var dev storage.DeviceModel
	switch c.Device {
	case "", "ssd":
		dev = storage.SSD
	case "hdd":
		dev = storage.HDD
	case "ram":
		dev = storage.RAM
	default:
		return storage.DeviceModel{}, fmt.Errorf("ptldb: unknown device %q (want hdd, ssd or ram)", c.Device)
	}
	if c.RealLatency {
		dev = dev.WithRealLatency()
	}
	return dev, nil
}

// DB is an open PTLDB database.
type DB struct {
	store *core.Store
	db    *sqldb.DB
	// buildWorkers is the Config.BuildWorkers this handle was opened with;
	// AddVersion builds its labels at the same parallelism.
	buildWorkers int
}

// Create preprocesses tt (TTL labels under the configured vertex order,
// dummy-tuple augmentation, lout/lin tables) into a new database directory
// and returns it opened. Preprocessing time is the paper's Table 7 metric;
// see PreprocessStats for the breakdown.
func Create(dir string, tt *Network, cfg Config) (*DB, error) {
	db, _, err := CreateWithStats(dir, tt, cfg)
	return db, err
}

// PreprocessStats reports how Create spent its time and what it built.
type PreprocessStats struct {
	OrderTime     time.Duration
	LabelTime     time.Duration
	AugmentTime   time.Duration
	LoadTime      time.Duration
	LabelTuples   int // before augmentation
	DummyTuples   int
	TuplesPerStop int // |HL|/|V| after label construction, the Table 7 metric
}

// CreateWithStats is Create returning the preprocessing breakdown.
func CreateWithStats(dir string, tt *Network, cfg Config) (*DB, PreprocessStats, error) {
	var stats PreprocessStats
	dev, err := cfg.device()
	if err != nil {
		return nil, stats, err
	}

	start := time.Now()
	var ord order.Order
	switch cfg.Ordering {
	case "", "neighbor-degree":
		ord = order.ByNeighborDegree(tt)
	case "degree":
		ord = order.ByDegree(tt)
	case "hub-usage":
		samples := tt.NumStops() / 10
		if samples < 32 {
			samples = 32
		}
		ord = order.ByHubUsage(tt, samples, cfg.Seed)
	case "random":
		ord = order.Random(tt.NumStops(), cfg.Seed)
	default:
		return nil, stats, fmt.Errorf("ptldb: unknown ordering %q", cfg.Ordering)
	}
	stats.OrderTime = time.Since(start)

	start = time.Now()
	labels := ttl.BuildParallel(tt, ord, cfg.BuildWorkers)
	stats.LabelTime = time.Since(start)
	stats.LabelTuples = labels.NumTuples()
	stats.TuplesPerStop = labels.TuplesPerStop()

	start = time.Now()
	labels.Augment()
	stats.AugmentTime = time.Since(start)
	stats.DummyTuples = labels.NumDummies()

	start = time.Now()
	sdb, err := sqldb.Open(dir, sqldb.Options{
		Device: dev, PoolPages: cfg.PoolPages, DisableFusedExec: cfg.DisableFusedExec,
		DisableSegments: cfg.DisableSegments, VectorCacheBytes: cfg.vcacheBytes(),
	})
	if err != nil {
		return nil, stats, err
	}
	store, err := core.Build(sdb, labels, core.BuildOptions{
		BucketSeconds: cfg.BucketSeconds,
		Stops:         tt.Stops(),
		Workers:       cfg.BuildWorkers,
	})
	if err != nil {
		sdb.Close()
		return nil, stats, err
	}
	if err := sdb.Flush(); err != nil {
		sdb.Close()
		return nil, stats, err
	}
	stats.LoadTime = time.Since(start)
	if h := cfg.traceHook(); h != nil {
		store.SetTraceHook(h)
	}
	return &DB{store: store, db: sdb, buildWorkers: cfg.BuildWorkers}, stats, nil
}

// Open attaches to a database directory previously built with Create,
// selecting the (possibly different) simulated device for this session —
// the paper benchmarks the same data on an HDD and an SSD.
func Open(dir string, cfg Config) (*DB, error) {
	dev, err := cfg.device()
	if err != nil {
		return nil, err
	}
	sdb, err := sqldb.Open(dir, sqldb.Options{
		Device: dev, PoolPages: cfg.PoolPages, DisableFusedExec: cfg.DisableFusedExec,
		DisableSegments: cfg.DisableSegments, VectorCacheBytes: cfg.vcacheBytes(),
	})
	if err != nil {
		return nil, err
	}
	store, err := core.Open(sdb)
	if err != nil {
		sdb.Close()
		return nil, err
	}
	store.SetBuildWorkers(cfg.BuildWorkers)
	if h := cfg.traceHook(); h != nil {
		store.SetTraceHook(h)
	}
	return &DB{store: store, db: sdb, buildWorkers: cfg.BuildWorkers}, nil
}

// Close flushes and closes the database.
func (d *DB) Close() error { return d.db.Close() }

// EarliestArrival answers EA(s, g, t): the earliest arrival at g over
// journeys leaving s no sooner than t. ok is false when no journey exists.
func (d *DB) EarliestArrival(s, g StopID, t Time) (arr Time, ok bool, err error) {
	return d.store.EarliestArrival(s, g, t)
}

// LatestDeparture answers LD(s, g, t): the latest departure from s arriving
// at g no later than t.
func (d *DB) LatestDeparture(s, g StopID, t Time) (dep Time, ok bool, err error) {
	return d.store.LatestDeparture(s, g, t)
}

// ShortestDuration answers SD(s, g, t, tEnd): the minimum journey duration
// within the window.
func (d *DB) ShortestDuration(s, g StopID, t, tEnd Time) (dur Time, ok bool, err error) {
	return d.store.ShortestDuration(s, g, t, tEnd)
}

// AddTargetSet registers a named set of target stops (e.g. stops near
// points of interest) and materializes the kNN and one-to-many tables for k
// up to kmax.
func (d *DB) AddTargetSet(name string, targets []StopID, kmax int) error {
	if err := d.store.AddTargetSet(name, targets, kmax); err != nil {
		return err
	}
	return d.db.Flush()
}

// TargetSets lists the target sets registered under this DB's timetable
// version.
func (d *DB) TargetSets() map[string]core.TargetSetMeta {
	return d.store.TargetSets()
}

// AddVersion loads a second timetable (e.g. the weekend schedule) as a named
// version with its own lout/lin tables — the paper's Section 3.1 approach to
// period-dependent timetables. The network must have the same stops.
func (d *DB) AddVersion(name string, tt2 *Network) error {
	labels := ttl.BuildParallel(tt2, order.ByNeighborDegree(tt2), d.buildWorkers).Augment()
	if err := d.store.AddVersion(name, labels); err != nil {
		return err
	}
	return d.db.Flush()
}

// Version returns a handle answering queries against the named timetable
// version ("base" is the version Create loaded). Handles share the
// underlying database and may be used concurrently.
func (d *DB) Version(name string) (*DB, error) {
	st, err := d.store.Version(name)
	if err != nil {
		return nil, err
	}
	return &DB{store: st, db: d.db, buildWorkers: d.buildWorkers}, nil
}

// Versions lists the available timetable versions.
func (d *DB) Versions() []string { return d.store.Versions() }

// BuildPathTables materializes the expanded journey of every label tuple
// into paths_out/paths_in tables, enabling JourneyFromDB. This implements
// the paper's Section 3.1 suggestion of storing expanded paths in the
// database instead of the TTL pivot columns. The original network must be
// supplied; expect preprocessing-scale running time.
func (d *DB) BuildPathTables(tt *Network) error {
	if err := d.store.BuildPathTables(tt); err != nil {
		return err
	}
	return d.db.Flush()
}

// JourneyFromDB answers EA(s, g, t) and reconstructs the itinerary's stop
// and trip sequence entirely from database tables (one witness query plus at
// most two path lookups). Requires BuildPathTables. The reported departure
// is the label's guaranteed departure; the first physical boarding may be
// slightly later when waiting at s is optimal.
func (d *DB) JourneyFromDB(s, g StopID, t Time) (core.DBJourney, bool, error) {
	return d.store.EarliestArrivalJourneyDB(s, g, t)
}

// EAKNN answers EA-kNN(q, T, t, k): the k target stops of set reachable
// from q (departing >= t) with the earliest arrivals.
func (d *DB) EAKNN(set string, q StopID, t Time, k int) ([]Result, error) {
	return d.store.EAKNN(set, q, t, k)
}

// LDKNN answers LD-kNN(q, T, t, k): the k target stops with the latest
// feasible departures from q arriving by t.
func (d *DB) LDKNN(set string, q StopID, t Time, k int) ([]Result, error) {
	return d.store.LDKNN(set, q, t, k)
}

// EAKNNNaive runs the paper's unoptimized Code 2 baseline.
func (d *DB) EAKNNNaive(set string, q StopID, t Time, k int) ([]Result, error) {
	return d.store.EAKNNNaive(set, q, t, k)
}

// LDKNNNaive runs the LD analogue of the Code 2 baseline.
func (d *DB) LDKNNNaive(set string, q StopID, t Time, k int) ([]Result, error) {
	return d.store.LDKNNNaive(set, q, t, k)
}

// EAOTM answers EA-OTM(q, T, t): the earliest arrival at every reachable
// target of the set.
func (d *DB) EAOTM(set string, q StopID, t Time) ([]Result, error) {
	return d.store.EAOTM(set, q, t)
}

// LDOTM answers LD-OTM(q, T, t): the latest departure toward every target
// reachable by t.
func (d *DB) LDOTM(set string, q StopID, t Time) ([]Result, error) {
	return d.store.LDOTM(set, q, t)
}

// DropCaches empties the buffer pool, emulating the paper's cold-start
// protocol before each experiment.
func (d *DB) DropCaches() error { return d.db.DropCaches() }

// Stats reports I/O statistics of the session.
type Stats struct {
	// SimulatedIO is the total simulated device time charged so far.
	SimulatedIO time.Duration
	// CacheHits and CacheMisses count buffer-pool accesses.
	CacheHits, CacheMisses uint64
	// SizeOnDisk is the total bytes of all table files.
	SizeOnDisk int64
}

// Stats returns the session's I/O statistics.
func (d *DB) Stats() (Stats, error) {
	h, m := d.db.Pool().Stats()
	size, err := d.db.SizeOnDisk()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		SimulatedIO: d.db.Clock().Elapsed(),
		CacheHits:   h,
		CacheMisses: m,
		SizeOnDisk:  size,
	}, nil
}

// ResetIOClock zeroes the simulated-device clock (used around measured
// query batches).
func (d *DB) ResetIOClock() { d.db.Clock().Reset() }

// Snapshot returns a point-in-time copy of the observability counters:
// buffer-pool traffic, executor dispatch and scan volumes, and per-query-code
// call counts with latency histograms. Counters accumulate from Open/Create
// and are shared across Version handles of the same database.
func (d *DB) Snapshot() Snapshot { return d.db.Registry().Snapshot() }

// ExplainPrepared renders the operator tree one of the paper's prepared
// queries executes with: "v2v-ea", "v2v-ld", "v2v-sd", or
// "<kind>:<set>" with kind one of knn-naive-ea, knn-naive-ld, knn-ea,
// knn-ld, otm-ea, otm-ld. Fused statements render the fused operator tree;
// statements the fuser does not recognize render the general plan shape.
func (d *DB) ExplainPrepared(name string) (string, error) {
	return d.store.ExplainPrepared(name)
}

// ExplainNames lists the names ExplainPrepared accepts for this handle's
// timetable version and registered target sets.
func (d *DB) ExplainNames() []string { return d.store.ExplainNames() }

// Store exposes the underlying PTLDB store for advanced use (raw SQL, table
// inspection).
func (d *DB) Store() *core.Store { return d.store }

// Stop resolves a stop's stored metadata (name, coordinates) from the
// database's stops table.
func (d *DB) Stop(v StopID) (timetable.Stop, bool, error) { return d.store.Stop(v) }

// Journey is a reconstructed itinerary.
type Journey struct {
	Legs      []Connection
	Transfers int
}

// EarliestArrivalJourney reconstructs a concrete EA-optimal itinerary on the
// original network (PTLDB stores timestamps only; the paper suggests storing
// expanded paths in the database for this purpose).
func EarliestArrivalJourney(tt *Network, s, g StopID, t Time) (Journey, bool) {
	legs, ok := csa.EarliestArrivalJourney(tt, s, g, t)
	if !ok {
		return Journey{}, false
	}
	return Journey{Legs: legs, Transfers: csa.Transfers(legs)}, true
}

// LatestDepartureJourney reconstructs a concrete LD-optimal itinerary.
func LatestDepartureJourney(tt *Network, s, g StopID, t Time) (Journey, bool) {
	legs, ok := csa.LatestDepartureJourney(tt, s, g, t)
	if !ok {
		return Journey{}, false
	}
	return Journey{Legs: legs, Transfers: csa.Transfers(legs)}, true
}
