// Package order computes vertex-importance orderings for Timetable Labeling.
//
// TTL assumes a strict vertex order r: StopID -> [1, |V|] defining each
// stop's importance; given a timetable and an order, the TTL index is unique
// (paper Section 2.2). The original TTL authors shipped precomputed ordering
// files with their datasets; this package provides the standard
// degree-derived orderings used in the hub-labeling literature so the index
// can be built from scratch.
package order

import (
	"math/rand"
	"sort"

	"ptldb/internal/timetable"
)

// Order is a permutation of the stops: Order[i] is the stop with rank i,
// rank 0 being the most important.
type Order []timetable.StopID

// Ranks returns the inverse permutation: Ranks()[v] is the rank of stop v.
func (o Order) Ranks() []int32 {
	r := make([]int32, len(o))
	for i, v := range o {
		r[v] = int32(i)
	}
	return r
}

// Valid reports whether o is a permutation of [0, n).
func (o Order) Valid(n int) bool {
	if len(o) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range o {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// ByDegree orders stops by total connection degree (incoming plus outgoing),
// most connected first. This mirrors the degree heuristic of Pruned Landmark
// Labeling (Akiba et al., SIGMOD 2013), which TTL's ordering refines. Ties
// are broken by stop id for determinism.
func ByDegree(tt *timetable.Timetable) Order {
	n := tt.NumStops()
	o := identity(n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = len(tt.Outgoing(timetable.StopID(v))) + len(tt.Incoming(timetable.StopID(v)))
	}
	sort.SliceStable(o, func(i, j int) bool {
		if deg[o[i]] != deg[o[j]] {
			return deg[o[i]] > deg[o[j]]
		}
		return o[i] < o[j]
	})
	return o
}

// ByNeighborDegree orders stops by the number of distinct adjacent stops
// (undirected), most first, with total connection degree as tie-break. On
// timetable multigraphs this discounts a single high-frequency line and
// favours true interchange stations, which typically yields smaller labels
// than ByDegree.
func ByNeighborDegree(tt *timetable.Timetable) Order {
	n := tt.NumStops()
	nbr := make([]int, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		id := timetable.StopID(v)
		set := make(map[timetable.StopID]struct{})
		for _, ci := range tt.Outgoing(id) {
			set[tt.Connection(ci).To] = struct{}{}
		}
		for _, ci := range tt.Incoming(id) {
			set[tt.Connection(ci).From] = struct{}{}
		}
		nbr[v] = len(set)
		deg[v] = len(tt.Outgoing(id)) + len(tt.Incoming(id))
	}
	o := identity(n)
	sort.SliceStable(o, func(i, j int) bool {
		if nbr[o[i]] != nbr[o[j]] {
			return nbr[o[i]] > nbr[o[j]]
		}
		if deg[o[i]] != deg[o[j]] {
			return deg[o[i]] > deg[o[j]]
		}
		return o[i] < o[j]
	})
	return o
}

// ByHubUsage orders stops by how often they appear as intermediate stops on
// sampled earliest-arrival journeys — a timetable analogue of the betweenness
// heuristics behind TTL's tuned orderings. It runs earliest-arrival scans
// from `samples` random (stop, time) pairs, counts each stop's occurrences on
// the shortest-journey trees, and ranks by count (connection degree breaking
// ties). It costs samples × |E| preprocessing but typically yields smaller
// labels than pure degree orders.
func ByHubUsage(tt *timetable.Timetable, samples int, seed int64) Order {
	n := tt.NumStops()
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	score := make([]float64, n)
	conns := tt.Connections()
	arr := make([]timetable.Time, n)
	parent := make([]int32, n)
	span := int64(tt.Span())
	if span <= 0 {
		span = 1
	}
	for s := 0; s < samples; s++ {
		src := timetable.StopID(rng.Intn(n))
		t0 := tt.MinTime() + timetable.Time(rng.Int63n(span))
		for i := range arr {
			arr[i] = timetable.Infinity
			parent[i] = -1
		}
		arr[src] = t0
		for i := range conns {
			c := conns[i]
			if c.Dep >= t0 && c.Dep >= arr[c.From] && c.Arr < arr[c.To] {
				arr[c.To] = c.Arr
				parent[c.To] = int32(i)
			}
		}
		// Walk every reached stop's journey back to the source, crediting
		// each visited stop.
		for v := 0; v < n; v++ {
			if arr[v] == timetable.Infinity || timetable.StopID(v) == src {
				continue
			}
			at := timetable.StopID(v)
			for at != src {
				score[at]++
				at = conns[parent[at]].From
			}
			score[src]++
		}
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = len(tt.Outgoing(timetable.StopID(v))) + len(tt.Incoming(timetable.StopID(v)))
	}
	o := identity(n)
	sort.SliceStable(o, func(i, j int) bool {
		if score[o[i]] != score[o[j]] {
			return score[o[i]] > score[o[j]]
		}
		if deg[o[i]] != deg[o[j]] {
			return deg[o[i]] > deg[o[j]]
		}
		return o[i] < o[j]
	})
	return o
}

// Random returns a uniformly random order; it is the worst-case baseline in
// the ordering ablation study.
func Random(n int, seed int64) Order {
	o := identity(n)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { o[i], o[j] = o[j], o[i] })
	return o
}

// Identity returns the order ranking stop 0 first; useful for fixtures whose
// order is given explicitly (e.g. the paper's Figure 1 example).
func Identity(n int) Order { return identity(n) }

func identity(n int) Order {
	o := make(Order, n)
	for i := range o {
		o[i] = timetable.StopID(i)
	}
	return o
}

// FromRanks converts a rank array (rank of stop v at index v) to an Order.
func FromRanks(ranks []int32) Order {
	o := make(Order, len(ranks))
	for v, r := range ranks {
		o[r] = timetable.StopID(v)
	}
	return o
}
