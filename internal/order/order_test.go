package order

import (
	"testing"
	"testing/quick"

	"ptldb/internal/timetable"
)

func TestRanksRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		o := Random(int(n), seed)
		if !o.Valid(int(n)) {
			return false
		}
		back := FromRanks(o.Ranks())
		if len(back) != len(o) {
			return false
		}
		for i := range o {
			if back[i] != o[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByDegreePaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	o := ByDegree(tt)
	if !o.Valid(7) {
		t.Fatalf("order invalid: %v", o)
	}
	// Stop 0 participates in all four trips (4 in + 4 out connections) and
	// must rank first.
	if o[0] != 0 {
		t.Errorf("ByDegree ranks %d first, want 0 (order %v)", o[0], o)
	}
}

func TestByNeighborDegreePaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	o := ByNeighborDegree(tt)
	if !o.Valid(7) {
		t.Fatalf("order invalid: %v", o)
	}
	if o[0] != 0 {
		t.Errorf("ByNeighborDegree ranks %d first, want 0 (order %v)", o[0], o)
	}
	// Stops 1..4 (adjacent to the center) must all outrank leaves 5, 6.
	r := o.Ranks()
	for _, mid := range []timetable.StopID{1, 2} {
		for _, leaf := range []timetable.StopID{5, 6} {
			if r[mid] > r[leaf] {
				t.Errorf("stop %d (rank %d) should outrank leaf %d (rank %d)", mid, r[mid], leaf, r[leaf])
			}
		}
	}
}

func TestValidRejects(t *testing.T) {
	cases := []struct {
		o Order
		n int
	}{
		{Order{0, 0}, 2},  // duplicate
		{Order{0, 2}, 2},  // out of range
		{Order{0}, 2},     // wrong length
		{Order{-1, 0}, 2}, // negative
	}
	for _, c := range cases {
		if c.o.Valid(c.n) {
			t.Errorf("Valid(%v, %d) = true, want false", c.o, c.n)
		}
	}
}

func TestIdentity(t *testing.T) {
	o := Identity(4)
	for i, v := range o {
		if int(v) != i {
			t.Fatalf("Identity(4) = %v", o)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := Random(50, 7), Random(50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic for equal seeds")
		}
	}
	c := Random(50, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("Random produced identical permutations for different seeds")
	}
}

func TestByHubUsagePaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	o := ByHubUsage(tt, 40, 1)
	if !o.Valid(7) {
		t.Fatalf("order invalid: %v", o)
	}
	// Stop 0 lies on every cross-town journey and must rank first.
	if o[0] != 0 {
		t.Errorf("ByHubUsage ranks %d first, want 0 (order %v)", o[0], o)
	}
}

func TestByHubUsageDeterministic(t *testing.T) {
	tt := timetable.PaperExample()
	a, b := ByHubUsage(tt, 10, 3), ByHubUsage(tt, 10, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ByHubUsage not deterministic for equal seeds")
		}
	}
}

func TestByHubUsageEmptyNetwork(t *testing.T) {
	var b timetable.Builder
	b.AddStops(4)
	tt := b.MustBuild()
	if o := ByHubUsage(tt, 5, 1); !o.Valid(4) {
		t.Errorf("order on connection-free network invalid: %v", o)
	}
}
