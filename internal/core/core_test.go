package core

import (
	"math/rand"
	"sort"
	"testing"

	"ptldb/internal/csa"
	"ptldb/internal/order"
	"ptldb/internal/sqldb"
	"ptldb/internal/sqldb/storage"
	"ptldb/internal/timetable"
	"ptldb/internal/ttl"
)

func newStore(t *testing.T, tt *timetable.Timetable, ord order.Order, opts BuildOptions) (*Store, *ttl.Labels) {
	t.Helper()
	labels := ttl.Build(tt, ord).Augment()
	db, err := sqldb.Open(t.TempDir(), sqldb.Options{Device: storage.RAM, PoolPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := Build(db, labels, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, labels
}

func paperStore(t *testing.T) (*Store, *ttl.Labels) {
	return newStore(t, timetable.PaperExample(), order.Identity(7), BuildOptions{})
}

func randomTimetable(rng *rand.Rand, stops, conns int) *timetable.Timetable {
	var b timetable.Builder
	b.AddStops(stops)
	for i := 0; i < conns; i++ {
		from := timetable.StopID(rng.Intn(stops))
		to := timetable.StopID(rng.Intn(stops))
		if from == to {
			to = (to + 1) % timetable.StopID(stops)
		}
		dep := timetable.Time(rng.Intn(86400))
		b.AddConnection(from, to, dep, dep+1+timetable.Time(rng.Intn(5400)), timetable.TripID(rng.Intn(60)))
	}
	return b.MustBuild()
}

func TestV2VPaperExample(t *testing.T) {
	st, _ := paperStore(t)
	tt := timetable.PaperExample()

	// The paper's worked example: EA(1, 1, 324) = 324.
	arr, ok, err := st.EarliestArrival(1, 1, 32400)
	if err != nil || !ok || arr != 32400 {
		t.Errorf("EA(1,1,324) = %v, %v, %v; want 32400", arr, ok, err)
	}

	for s := timetable.StopID(0); s < 7; s++ {
		for g := timetable.StopID(0); g < 7; g++ {
			if s == g {
				continue
			}
			for _, tq := range []timetable.Time{0, 30000, 33000, 36600, 43200} {
				want := csa.EarliestArrival(tt, s, g, tq)
				got, ok, err := st.EarliestArrival(s, g, tq)
				if err != nil {
					t.Fatal(err)
				}
				if ok != (want < timetable.Infinity) || (ok && got != want) {
					t.Errorf("EA(%d,%d,%v) = %v,%v want %v", s, g, tq, got, ok, want)
				}
				wantLD := csa.LatestDeparture(tt, s, g, tq)
				gotLD, okLD, err := st.LatestDeparture(s, g, tq)
				if err != nil {
					t.Fatal(err)
				}
				if okLD != (wantLD > timetable.NegInfinity) || (okLD && gotLD != wantLD) {
					t.Errorf("LD(%d,%d,%v) = %v,%v want %v", s, g, tq, gotLD, okLD, wantLD)
				}
				wantSD := csa.ShortestDuration(tt, s, g, 0, tq)
				gotSD, okSD, err := st.ShortestDuration(s, g, 0, tq)
				if err != nil {
					t.Fatal(err)
				}
				if okSD != (wantSD < timetable.Infinity) || (okSD && gotSD != wantSD) {
					t.Errorf("SD(%d,%d,0,%v) = %v,%v want %v", s, g, tq, gotSD, okSD, wantSD)
				}
			}
		}
	}
}

// TestV2VRandom is the main end-to-end property: the SQL answers equal the
// CSA oracle on random timetables.
func TestV2VRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 3; iter++ {
		tt := randomTimetable(rng, 12+rng.Intn(10), 150+rng.Intn(150))
		st, _ := newStore(t, tt, order.ByDegree(tt), BuildOptions{})
		n := timetable.StopID(tt.NumStops())
		for trial := 0; trial < 120; trial++ {
			s := timetable.StopID(rng.Intn(int(n)))
			g := timetable.StopID(rng.Intn(int(n)))
			if s == g {
				continue
			}
			tq := timetable.Time(rng.Intn(90000))
			want := csa.EarliestArrival(tt, s, g, tq)
			got, ok, err := st.EarliestArrival(s, g, tq)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (want < timetable.Infinity) || (ok && got != want) {
				t.Fatalf("iter %d: EA(%d,%d,%v) = %v,%v want %v", iter, s, g, tq, got, ok, want)
			}
			wantLD := csa.LatestDeparture(tt, s, g, tq)
			gotLD, okLD, err := st.LatestDeparture(s, g, tq)
			if err != nil {
				t.Fatal(err)
			}
			if okLD != (wantLD > timetable.NegInfinity) || (okLD && gotLD != wantLD) {
				t.Fatalf("iter %d: LD(%d,%d,%v) = %v,%v want %v", iter, s, g, tq, gotLD, okLD, wantLD)
			}
			t0 := timetable.Time(rng.Intn(40000))
			wantSD := csa.ShortestDuration(tt, s, g, t0, tq)
			gotSD, okSD, err := st.ShortestDuration(s, g, t0, tq)
			if err != nil {
				t.Fatal(err)
			}
			if okSD != (wantSD < timetable.Infinity) || (okSD && gotSD != wantSD) {
				t.Fatalf("iter %d: SD(%d,%d,%v,%v) = %v,%v want %v", iter, s, g, t0, tq, gotSD, okSD, wantSD)
			}
		}
	}
}

// oracleKNNEA ranks targets by the label-unified EA value (which matches
// PTLDB semantics for target == q as well) and returns the top k.
func oracleKNNEA(labels *ttl.Labels, q timetable.StopID, targets []timetable.StopID, tq timetable.Time, k int) []Result {
	var out []Result
	for _, w := range targets {
		if a := labels.EarliestArrivalUnified(q, w, tq); a < timetable.Infinity {
			out = append(out, Result{Stop: w, When: a})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When < out[j].When
		}
		return out[i].Stop < out[j].Stop
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func oracleKNNLD(labels *ttl.Labels, q timetable.StopID, targets []timetable.StopID, tq timetable.Time, k int) []Result {
	var out []Result
	for _, w := range targets {
		if d := labels.LatestDepartureUnified(q, w, tq); d > timetable.NegInfinity {
			out = append(out, Result{Stop: w, When: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When > out[j].When
		}
		return out[i].Stop < out[j].Stop
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// checkKNN compares a PTLDB kNN answer against the oracle top-k with
// tie-tolerance: the value sequences must be identical, every returned stop
// must be a distinct target carrying its exact per-target optimum, and the
// sizes must agree. (Which of several tied stops is returned is
// implementation-defined, in PTLDB as in the paper.)
func checkKNN(t *testing.T, desc string, got, want []Result, perTarget map[timetable.StopID]timetable.Time) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results %v, want %d %v", desc, len(got), got, len(want), want)
	}
	seen := map[timetable.StopID]bool{}
	for i := range got {
		if got[i].When != want[i].When {
			t.Fatalf("%s: position %d value %v, want %v (got %v want %v)", desc, i, got[i].When, want[i].When, got, want)
		}
		if seen[got[i].Stop] {
			t.Fatalf("%s: duplicate stop %d in %v", desc, got[i].Stop, got)
		}
		seen[got[i].Stop] = true
		exact, ok := perTarget[got[i].Stop]
		if !ok {
			t.Fatalf("%s: stop %d is not a target", desc, got[i].Stop)
		}
		if exact != got[i].When {
			t.Fatalf("%s: stop %d claims %v, exact optimum is %v", desc, got[i].Stop, got[i].When, exact)
		}
	}
}

func TestKNNAndOTMRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 3; iter++ {
		tt := randomTimetable(rng, 14+rng.Intn(8), 200+rng.Intn(150))
		st, labels := newStore(t, tt, order.ByNeighborDegree(tt), BuildOptions{})
		n := tt.NumStops()

		// Random target set (may include any stop), kmax 4.
		var targets []timetable.StopID
		for w := 0; w < n; w++ {
			if rng.Intn(3) == 0 {
				targets = append(targets, timetable.StopID(w))
			}
		}
		if len(targets) < 3 {
			targets = []timetable.StopID{0, 1, 2}
		}
		const kmax = 4
		if err := st.AddTargetSet("poi", targets, kmax); err != nil {
			t.Fatal(err)
		}

		for trial := 0; trial < 40; trial++ {
			q := timetable.StopID(rng.Intn(n))
			tq := timetable.Time(rng.Intn(90000))
			k := 1 + rng.Intn(kmax)

			perEA := map[timetable.StopID]timetable.Time{}
			perLD := map[timetable.StopID]timetable.Time{}
			for _, w := range targets {
				perEA[w] = labels.EarliestArrivalUnified(q, w, tq)
				perLD[w] = labels.LatestDepartureUnified(q, w, tq)
			}

			wantEA := oracleKNNEA(labels, q, targets, tq, k)
			gotEA, err := st.EAKNN("poi", q, tq, k)
			if err != nil {
				t.Fatal(err)
			}
			checkKNN(t, "EA-kNN", gotEA, wantEA, perEA)

			gotNaive, err := st.EAKNNNaive("poi", q, tq, k)
			if err != nil {
				t.Fatal(err)
			}
			checkKNN(t, "EA-kNN-naive", gotNaive, wantEA, perEA)

			wantLD := oracleKNNLD(labels, q, targets, tq, k)
			gotLD, err := st.LDKNN("poi", q, tq, k)
			if err != nil {
				t.Fatal(err)
			}
			checkKNN(t, "LD-kNN", gotLD, wantLD, perLD)

			gotLDNaive, err := st.LDKNNNaive("poi", q, tq, k)
			if err != nil {
				t.Fatal(err)
			}
			checkKNN(t, "LD-kNN-naive", gotLDNaive, wantLD, perLD)

			// One-to-many: exact per-target results for every reachable
			// target, ordered like the oracle with k = |T|.
			wantOTM := oracleKNNEA(labels, q, targets, tq, len(targets))
			gotOTM, err := st.EAOTM("poi", q, tq)
			if err != nil {
				t.Fatal(err)
			}
			checkKNN(t, "EA-OTM", gotOTM, wantOTM, perEA)

			wantOTMLD := oracleKNNLD(labels, q, targets, tq, len(targets))
			gotOTMLD, err := st.LDOTM("poi", q, tq)
			if err != nil {
				t.Fatal(err)
			}
			checkKNN(t, "LD-OTM", gotOTMLD, wantOTMLD, perLD)
		}
	}
}

// TestPaperKNNExample reproduces Section 3.2.1's worked example:
// EA-kNN(0, {4, 6}, 360, 1) = (4, 396).
func TestPaperKNNExample(t *testing.T) {
	st, _ := paperStore(t)
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(string, timetable.StopID, timetable.Time, int) ([]Result, error){
		st.EAKNN, st.EAKNNNaive,
	} {
		got, err := fn("poi", 0, 36000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Stop != 4 || got[0].When != 39600 {
			t.Fatalf("EA-kNN(0,{4,6},360,1) = %v, want [(4,396)]", got)
		}
	}
}

func TestBucketWidthAblationCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tt := randomTimetable(rng, 15, 250)
	for _, width := range []int32{900, 3600, 10800} {
		st, labels := newStore(t, tt, order.ByDegree(tt), BuildOptions{BucketSeconds: width})
		targets := []timetable.StopID{1, 3, 5, 7, 9}
		if err := st.AddTargetSet("poi", targets, 4); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			q := timetable.StopID(rng.Intn(tt.NumStops()))
			tq := timetable.Time(rng.Intn(90000))
			perEA := map[timetable.StopID]timetable.Time{}
			perLD := map[timetable.StopID]timetable.Time{}
			for _, w := range targets {
				perEA[w] = labels.EarliestArrivalUnified(q, w, tq)
				perLD[w] = labels.LatestDepartureUnified(q, w, tq)
			}
			got, err := st.EAKNN("poi", q, tq, 4)
			if err != nil {
				t.Fatal(err)
			}
			checkKNN(t, "EA-kNN", got, oracleKNNEA(labels, q, targets, tq, 4), perEA)
			gotLD, err := st.LDKNN("poi", q, tq, 4)
			if err != nil {
				t.Fatal(err)
			}
			checkKNN(t, "LD-kNN", gotLD, oracleKNNLD(labels, q, targets, tq, 4), perLD)
		}
	}
}

func TestOpenReload(t *testing.T) {
	dir := t.TempDir()
	tt := timetable.PaperExample()
	labels := ttl.Build(tt, order.Identity(7)).Augment()
	db, err := sqldb.Open(dir, sqldb.Options{Device: storage.RAM, PoolPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(db, labels, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := sqldb.Open(dir, sqldb.Options{Device: storage.RAM, PoolPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st2, err := Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := st2.TargetSet("poi")
	if !ok || ts.KMax != 2 || len(ts.Targets) != 2 {
		t.Fatalf("target set lost: %+v %v", ts, ok)
	}
	arr, ok, err := st2.EarliestArrival(1, 1, 32400)
	if err != nil || !ok || arr != 32400 {
		t.Errorf("EA after reopen = %v %v %v", arr, ok, err)
	}
	got, err := st2.EAKNN("poi", 0, 36000, 1)
	if err != nil || len(got) != 1 || got[0].Stop != 4 {
		t.Errorf("kNN after reopen = %v %v", got, err)
	}
}

func TestValidationErrors(t *testing.T) {
	st, _ := paperStore(t)
	if err := st.AddTargetSet("Bad Name", []timetable.StopID{1}, 2); err == nil {
		t.Error("invalid set name accepted")
	}
	if err := st.AddTargetSet("poi", nil, 2); err == nil {
		t.Error("empty target set accepted")
	}
	if err := st.AddTargetSet("poi", []timetable.StopID{99}, 2); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := st.AddTargetSet("poi", []timetable.StopID{1}, 0); err == nil {
		t.Error("kmax 0 accepted")
	}
	if err := st.AddTargetSet("poi", []timetable.StopID{1, 2}, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.AddTargetSet("poi", []timetable.StopID{1, 2}, 2); err == nil {
		t.Error("duplicate set accepted")
	}
	if _, err := st.EAKNN("nope", 0, 0, 1); err == nil {
		t.Error("unknown set accepted")
	}
	if _, err := st.EAKNN("poi", 0, 0, 5); err == nil {
		t.Error("k > kmax accepted")
	}
	if _, err := st.EAKNN("poi", 0, 0, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	tt := timetable.PaperExample()
	labels := ttl.Build(tt, order.Identity(7)) // not augmented: Build must handle
	db, err := sqldb.Open(t.TempDir(), sqldb.Options{Device: storage.RAM, PoolPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, err := Build(db, labels, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The store augmented a clone; the original is untouched.
	if labels.Augmented {
		t.Error("Build mutated the caller's labels")
	}
	if arr, ok, _ := st.EarliestArrival(1, 1, 32400); !ok || arr != 32400 {
		t.Error("auto-augmented store gives wrong answers")
	}
	// Target sets build from the stored lin table, so no labels are needed.
	if err := st.AddTargetSet("poi", []timetable.StopID{1}, 2); err != nil {
		t.Errorf("AddTargetSet after Build: %v", err)
	}
}

func TestStopsMetadataTable(t *testing.T) {
	tt := timetable.PaperExample()
	labels := ttl.Build(tt, order.Identity(7)).Augment()
	db, err := sqldb.Open(t.TempDir(), sqldb.Options{Device: storage.RAM, PoolPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, err := Build(db, labels, BuildOptions{Stops: tt.Stops()})
	if err != nil {
		t.Fatal(err)
	}
	s, ok, err := st.Stop(3)
	if err != nil || !ok {
		t.Fatalf("Stop(3): %v %v", ok, err)
	}
	if s.Name != "stop-3" || s.ID != 3 {
		t.Errorf("Stop(3) = %+v", s)
	}
	if _, ok, err := st.Stop(99); err != nil || ok {
		t.Errorf("Stop(99) = %v %v", ok, err)
	}
	// Names are reachable through plain SQL too.
	rel, err := st.Raw("SELECT name FROM stops WHERE v = 5")
	if err != nil || len(rel.Rows) != 1 || rel.Rows[0][0].S != "stop-5" {
		t.Fatalf("SQL stops lookup: %v %v", rel, err)
	}
	// Without the option, Stop reports a missing table.
	db2, _ := sqldb.Open(t.TempDir(), sqldb.Options{Device: storage.RAM, PoolPages: 1024})
	defer db2.Close()
	st2, err := Build(db2, labels, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st2.Stop(0); err == nil {
		t.Error("Stop without stops table succeeded")
	}
}
