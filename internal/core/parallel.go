package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// errCollector gathers the first error reported by a group of table-load
// goroutines.
type errCollector struct {
	// mu guards err only; the loads do all their work before reporting.
	mu  sync.Mutex // lockcheck:shard
	err error
}

func (c *errCollector) add(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *errCollector) first() error {
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	return err
}

// runJobs runs the jobs on up to workers goroutines and returns the first
// error. Jobs touch disjoint tables (each table owns its heap and index
// files; the buffer pool underneath is sharded and safe for concurrent
// use), so they need no coordination beyond error collection. A failed job
// does not stop the others — table loads have no side effects outside their
// own table, and the first error aborts the whole build anyway.
func runJobs(workers int, jobs []func() error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, job := range jobs {
			if err := job(); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		ec   errCollector
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				ec.add(jobs[j]())
			}
		}()
	}
	wg.Wait()
	return ec.first()
}
