package core

import (
	"strings"
	"testing"
	"time"

	"ptldb/internal/obs"
	"ptldb/internal/order"
	"ptldb/internal/sqldb"
	"ptldb/internal/sqldb/storage"
	"ptldb/internal/timetable"
	"ptldb/internal/ttl"
)

// explainGoldens pins the operator tree of every prepared paper query on the
// paper's worked example (7 stops, identity order, target set {4, 6}, one-hour
// buckets) with the default configuration: label reads served from columnar
// segments, hence the Segment* access-path operators. The heap-path
// renderings are pinned separately under DisableSegments. The rendering is
// deterministic; a change here is a change to the fused executor's shape and
// should be deliberate.
var explainGoldens = map[string]string{
	"v2v-ea": `FusedPlan v2v-ea
└─ Aggregate MIN(in.ta)
   └─ MergeJoin out.hub = in.hub, reach out.ta <= in.td
      ├─ SegmentLookup lout [v = $1, td >= $3]
      └─ SegmentLookup lin [v = $2]
`,
	"v2v-ld": `FusedPlan v2v-ld
└─ Aggregate MAX(out.td)
   └─ MergeJoin out.hub = in.hub, reach out.ta <= in.td
      ├─ SegmentLookup lout [v = $1]
      └─ SegmentLookup lin [v = $2, ta <= $3]
`,
	"v2v-sd": `FusedPlan v2v-sd
└─ Aggregate MIN(in.ta - out.td)
   └─ MergeJoin out.hub = in.hub, reach out.ta <= in.td
      ├─ SegmentLookup lout [v = $1, td >= $3]
      └─ SegmentLookup lin [v = $2, ta <= $4]
`,
	"knn-naive-ea:poi": `FusedPlan knn-naive-ea
└─ TopK k = $3 by MIN(n2.ta) asc, v2
   └─ GroupFold MIN(n2.ta) per target
      └─ HashJoin n1.hub = n2.hub, reach n1.ta <= n2.td
         ├─ SegmentLookup lout [v = $1, td >= $2]
         └─ SegmentScan ea_knn_naive_poi [vs[1:$3], tas[1:$3]]
`,
	"knn-naive-ld:poi": `FusedPlan knn-naive-ld
└─ TopK k = $3 by MAX(n1.td) desc, v2
   └─ GroupFold MAX(n1.td) per target
      └─ HashJoin n1.hub = n2.hub, reach n1.ta <= n2.td
         ├─ SegmentLookup lout [v = $1]
         └─ SegmentScan ld_knn_naive_poi [vs[1:$3], tas[1:$3], ta <= $2]
`,
	"knn-ea:poi": `FusedPlan cond-knn-ea
└─ TopK k = $3 by MIN(ta) asc, v2
   └─ GroupFold MIN(ta) per target
      └─ SegmentProbe knn_ea_poi [hub = n1.hub, dephour = FLOOR(n1.ta / 3600)]
         ├─ Arm top-k: fold vs[1:$3]/tas[1:$3]
         ├─ Arm expanded: fold vs_exp/tas_exp where n1.ta <= tds_exp
         └─ SegmentLookup lout [v = $1, td >= $2]
`,
	"knn-ld:poi": `FusedPlan cond-knn-ld
└─ TopK k = $3 by MAX(td) desc, v2
   └─ GroupFold MAX(td) per target
      └─ SegmentProbe knn_ld_poi [hub = n1.hub, arrhour = FLOOR($2 / 3600)]
         ├─ Arm top-k: fold vs[1:$3] where tds[1:$3] >= n1.ta
         ├─ Arm expanded: fold vs_exp where tds_exp >= n1.ta and tas_exp <= $2
         └─ SegmentLookup lout [v = $1]
`,
	"otm-ea:poi": `FusedPlan cond-otm-ea
└─ Sort by MIN(ta) asc, v2
   └─ GroupFold MIN(ta) per target
      └─ SegmentProbe otm_ea_poi [hub = n1.hub, dephour = FLOOR(n1.ta / 3600)]
         ├─ Arm top-k: fold vs/tas
         ├─ Arm expanded: fold vs_exp/tas_exp where n1.ta <= tds_exp
         └─ SegmentLookup lout [v = $1, td >= $2]
`,
	"otm-ld:poi": `FusedPlan cond-otm-ld
└─ Sort by MAX(td) desc, v2
   └─ GroupFold MAX(td) per target
      └─ SegmentProbe otm_ld_poi [hub = n1.hub, arrhour = FLOOR($2 / 3600)]
         ├─ Arm top-k: fold vs where tds >= n1.ta
         ├─ Arm expanded: fold vs_exp where tds_exp >= n1.ta and tas_exp <= $2
         └─ SegmentLookup lout [v = $1]
`,
}

func TestExplainPreparedGoldens(t *testing.T) {
	st, _ := paperStore(t)
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}
	names := st.ExplainNames()
	if len(names) != len(explainGoldens) {
		t.Fatalf("ExplainNames lists %d queries, goldens pin %d: %v", len(names), len(explainGoldens), names)
	}
	for _, name := range names {
		want, ok := explainGoldens[name]
		if !ok {
			t.Errorf("no golden for %q", name)
			continue
		}
		got, err := st.ExplainPrepared(name)
		if err != nil {
			t.Errorf("explain %q: %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("explain %q:\n got:\n%s want:\n%s", name, got, want)
		}
	}
}

// TestExplainPreparedGoldensSegmentsOff pins the heap-path renderings: with
// segments disabled every access-path operator reverts to its B+tree/heap
// name (LabelLookup, TableScan, BucketProbe) while the rest of the tree is
// unchanged. The expected strings are derived from explainGoldens by exactly
// that substitution, so the two golden sets can never drift structurally.
func TestExplainPreparedGoldensSegmentsOff(t *testing.T) {
	labels := ttl.Build(timetable.PaperExample(), order.Identity(7)).Augment()
	db, err := sqldb.Open(t.TempDir(), sqldb.Options{
		Device: storage.RAM, PoolPages: 4096, DisableSegments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := Build(db, labels, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}
	heapOps := strings.NewReplacer(
		"SegmentLookup", "LabelLookup",
		"SegmentScan", "TableScan",
		"SegmentProbe", "BucketProbe",
	)
	for name, segGolden := range explainGoldens {
		want := heapOps.Replace(segGolden)
		got, err := st.ExplainPrepared(name)
		if err != nil {
			t.Errorf("explain %q: %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("explain %q with segments off:\n got:\n%s want:\n%s", name, got, want)
		}
	}
}

// TestExplainPreparedGoldensVectorCache pins the vector-tier renderings: with
// a resident vector cache configured every access-path operator upgrades to
// its Vector* name (the warm steady state — label reads served from decoded
// column vectors) while the rest of the tree is unchanged. Derived from
// explainGoldens by exactly that substitution, like the heap set.
func TestExplainPreparedGoldensVectorCache(t *testing.T) {
	labels := ttl.Build(timetable.PaperExample(), order.Identity(7)).Augment()
	db, err := sqldb.Open(t.TempDir(), sqldb.Options{
		Device: storage.RAM, PoolPages: 4096, VectorCacheBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := Build(db, labels, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}
	vectorOps := strings.NewReplacer(
		"SegmentLookup", "VectorLookup",
		"SegmentScan", "VectorScan",
		"SegmentProbe", "VectorProbe",
	)
	for name, segGolden := range explainGoldens {
		want := vectorOps.Replace(segGolden)
		got, err := st.ExplainPrepared(name)
		if err != nil {
			t.Errorf("explain %q: %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("explain %q with vector cache:\n got:\n%s want:\n%s", name, got, want)
		}
	}
}

func TestExplainPreparedErrors(t *testing.T) {
	st, _ := paperStore(t)
	for _, name := range []string{"knn-ea", "knn-ea:nope", "bogus", "bogus:poi", ""} {
		if _, err := st.ExplainPrepared(name); err == nil {
			t.Errorf("explain %q: expected error", name)
		}
	}
}

// TestExplainPreparedGeneralPlan checks the fallback rendering when the fused
// path is disabled: the same statement explains as a general plan shape.
func TestExplainPreparedGeneralPlan(t *testing.T) {
	labels := ttl.Build(timetable.PaperExample(), order.Identity(7)).Augment()
	db, err := sqldb.Open(t.TempDir(), sqldb.Options{
		Device: storage.RAM, PoolPages: 4096, DisableFusedExec: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := Build(db, labels, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := st.ExplainPrepared("v2v-ea")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"GeneralPlan", "CTE outp", "CTE inp", "Select"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("general plan lacks %q:\n%s", frag, plan)
		}
	}
}

// TestSnapshotWorkedExample hand-counts the observability counters on the
// paper's worked example: one EA query reads exactly the two label rows of
// Section 3.1's claim, and the per-code families record exactly the queries
// issued.
func TestSnapshotWorkedExample(t *testing.T) {
	st, _ := paperStore(t)
	reg := st.DB.Registry()
	before := reg.Snapshot()

	// The worked example: EA(1, 1, 324) = 324.
	if _, ok, err := st.EarliestArrival(1, 1, 32400); err != nil || !ok {
		t.Fatal(ok, err)
	}
	after := reg.Snapshot()
	if got := after.Exec.RowsScanned - before.Exec.RowsScanned; got != 2 {
		t.Errorf("one v2v query scanned %d label rows, the paper promises exactly 2", got)
	}
	if got := after.Exec.FusedRuns - before.Exec.FusedRuns; got != 1 {
		t.Errorf("fused runs delta = %d, want 1", got)
	}
	if after.Exec.FusedBailouts != before.Exec.FusedBailouts {
		t.Errorf("v2v query bailed out of the fused path")
	}
	q := after.Query["v2v-ea"]
	if q.Count != before.Query["v2v-ea"].Count+1 || q.Latency.Count != q.Count {
		t.Errorf("v2v-ea query metrics = %+v", q)
	}
	if after.Exec.TuplesMerged <= before.Exec.TuplesMerged {
		t.Errorf("v2v query merged no label tuples")
	}

	// LD and SD feed their own codes, not v2v-ea.
	if _, _, err := st.LatestDeparture(1, 4, 40000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.ShortestDuration(1, 4, 0, 80000); err != nil {
		t.Fatal(err)
	}
	final := reg.Snapshot()
	if final.Query["v2v-ea"].Count != q.Count {
		t.Errorf("LD/SD queries leaked into the v2v-ea counters")
	}
	if final.Query["v2v-ld"].Count == 0 || final.Query["v2v-sd"].Count == 0 {
		t.Errorf("LD/SD counters missing: %v", final.Query)
	}
	// Raw SQL lands under "raw".
	if _, err := st.Raw("SELECT COUNT(*) FROM lout"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Query["raw"].Count; got != 1 {
		t.Errorf("raw count = %d, want 1", got)
	}
}

// TestTraceHook checks trace delivery: codes, the fused flag, row counts and
// wall times for both the prepared Codes and raw SQL.
func TestTraceHook(t *testing.T) {
	st, _ := paperStore(t)
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}
	var traces []obs.Trace
	st.SetTraceHook(func(tr obs.Trace) { traces = append(traces, tr) })

	if _, _, err := st.EarliestArrival(1, 1, 32400); err != nil {
		t.Fatal(err)
	}
	rs, err := st.EAKNN("poi", 1, 30000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Raw("SELECT COUNT(*) FROM lout"); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3: %+v", len(traces), traces)
	}
	ea := traces[0]
	if ea.Code != "v2v-ea" || !ea.Fused || ea.Bailout || ea.Rows != 1 || ea.Wall <= 0 {
		t.Errorf("EA trace = %+v", ea)
	}
	knn := traces[1]
	if knn.Code != "knn-ea" || !knn.Fused || knn.Rows != len(rs) {
		t.Errorf("kNN trace = %+v (rows want %d)", knn, len(rs))
	}
	raw := traces[2]
	if raw.Code != "raw" || raw.Fused || raw.Rows != 1 {
		t.Errorf("raw trace = %+v", raw)
	}

	// Errors must not emit traces (counters still tick).
	n := len(traces)
	if _, err := st.Raw("SELECT nope FROM missing"); err == nil {
		t.Fatal("expected error")
	}
	if len(traces) != n {
		t.Errorf("failed query emitted a trace")
	}
	st.SetTraceHook(nil)
	if _, _, err := st.EarliestArrival(1, 1, 32400); err != nil {
		t.Fatal(err)
	}
	if len(traces) != n {
		t.Errorf("nil hook still received traces")
	}
}

// TestVersionInheritsTraceHook: Version copies the store, so a hook installed
// before binding sees the view's queries too.
func TestVersionInheritsTraceHook(t *testing.T) {
	st, _ := paperStore(t)
	var count int
	st.SetTraceHook(func(obs.Trace) { count++ })
	v, err := st.Version(BaseVersion)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.EarliestArrival(1, 1, 32400); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("version view delivered %d traces, want 1", count)
	}
}

// TestQueryLatencyObserved: the per-code histogram records every call with a
// plausible wall time.
func TestQueryLatencyObserved(t *testing.T) {
	st, _ := paperStore(t)
	reg := st.DB.Registry()
	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, _, err := st.EarliestArrival(1, 4, 30000); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	h := reg.Query[obs.CodeV2VEA].Latency.Snapshot()
	if h.Count != n {
		t.Fatalf("latency samples = %d, want %d", h.Count, n)
	}
	if mean := time.Duration(h.MeanUs * 1e3); mean > elapsed {
		t.Errorf("histogram mean %v exceeds total elapsed %v", mean, elapsed)
	}
}

// TestSegmentCountersAndTracePages: the default read path serves label rows
// from columnar segments and ticks the segment counters, and a cold traced
// query's PagesRead delta includes the segment page reads (segment I/O flows
// through the buffer pool like any other page).
func TestSegmentCountersAndTracePages(t *testing.T) {
	st, _ := paperStore(t)
	reg := st.DB.Registry()
	before := reg.Snapshot()

	if err := st.DB.DropCaches(); err != nil {
		t.Fatal(err)
	}
	var traces []obs.Trace
	st.SetTraceHook(func(tr obs.Trace) { traces = append(traces, tr) })
	if _, ok, err := st.EarliestArrival(1, 1, 32400); err != nil || !ok {
		t.Fatal(ok, err)
	}
	st.SetTraceHook(nil)

	after := reg.Snapshot()
	if got := after.Segment.Hits - before.Segment.Hits; got == 0 {
		t.Error("cold v2v query served no rows from segments")
	}
	if got := after.Segment.ColumnsDecoded - before.Segment.ColumnsDecoded; got == 0 {
		t.Error("segment hit decoded no columns")
	}
	if got := after.Segment.BytesRead - before.Segment.BytesRead; got == 0 {
		t.Error("segment hit read no payload bytes")
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	if traces[0].PagesRead == 0 {
		t.Error("cold traced query reported PagesRead = 0; segment reads missing from the pool delta")
	}
}
