package core

import (
	"fmt"
	"sort"

	"ptldb/internal/sqldb"
	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/timetable"
)

// targetTuple is one L_in tuple of a target stop, reorganized around its hub
// (the paper builds all six auxiliary tables from exactly this projection).
type targetTuple struct {
	td, ta timetable.Time
	v      timetable.StopID
}

// AddTargetSet registers a target set and builds its six auxiliary tables:
// the naive per-(hub, t_d) tables of Section 3.2.1, the hour-condensed
// knn_ea/knn_ld tables of Table 5 and the one-to-many otm_ea/otm_ld tables
// of Table 6. kmax bounds the k serviceable by the kNN tables.
//
// The tables are derived purely from the targets' rows of the lin table —
// the paper notes they can equivalently be created by plain SQL over lin
// (the statements are omitted there for space); the builders below are the
// straightforward procedural equivalent, and their output is validated
// against a specification oracle in the tests.
func (s *Store) AddTargetSet(name string, targets []timetable.StopID, kmax int) error {
	if !setNameRE.MatchString(name) {
		return fmt.Errorf("core: invalid target-set name %q", name)
	}
	if _, dup := s.vm().TargetSets[name]; dup {
		return fmt.Errorf("core: target set %q already exists", name)
	}
	if kmax < 1 {
		return fmt.Errorf("core: kmax must be positive")
	}
	targets = sortedCopy(targets)
	if len(targets) == 0 {
		return fmt.Errorf("core: empty target set")
	}
	for _, w := range targets {
		if int(w) < 0 || int(w) >= s.meta.Stops {
			return fmt.Errorf("core: target %d out of range", w)
		}
	}
	lin, ok := s.DB.Table(s.linTable())
	if !ok {
		return fmt.Errorf("core: %s table missing", s.linTable())
	}

	// Group the targets' L_in tuples (dummies included — they realize the
	// paper's case of reaching a target directly, with the target itself as
	// hub) by hub, sorted by (td, ta, v).
	byHub := map[timetable.StopID][]targetTuple{}
	for _, w := range targets {
		row, found, err := lin.LookupPK([]int64{int64(w)})
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("core: stop %d has no lin row", w)
		}
		hubs, tds, tas := row[1].A, row[2].A, row[3].A
		for i := range hubs {
			h := timetable.StopID(hubs[i])
			byHub[h] = append(byHub[h], targetTuple{
				td: timetable.Time(tds[i]), ta: timetable.Time(tas[i]), v: w,
			})
		}
	}
	hubs := make([]timetable.StopID, 0, len(byHub))
	for h := range byHub {
		hubs = append(hubs, h)
		ts := byHub[h]
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].td != ts[j].td {
				return ts[i].td < ts[j].td
			}
			if ts[i].ta != ts[j].ta {
				return ts[i].ta < ts[j].ta
			}
			return ts[i].v < ts[j].v
		})
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })

	// Create the six auxiliary tables serially (the catalog is shared
	// state), then compute and bulk-load each one as an independent job on
	// the worker pool. The otm tables share the knn layout with the best
	// entry per target instead of the top-k (paper Section 3.3): kmax = |T|.
	eaNaive, err := s.DB.CreateTable(naiveDef(s.setTable("ea_knn_naive", name)))
	if err != nil {
		return err
	}
	ldNaive, err := s.DB.CreateTable(naiveDef(s.setTable("ld_knn_naive", name)))
	if err != nil {
		return err
	}
	knnEA, err := s.DB.CreateTable(condensedEADef(s.setTable("knn_ea", name)))
	if err != nil {
		return err
	}
	knnLD, err := s.DB.CreateTable(condensedLDDef(s.setTable("knn_ld", name)))
	if err != nil {
		return err
	}
	otmEA, err := s.DB.CreateTable(condensedEADef(s.setTable("otm_ea", name)))
	if err != nil {
		return err
	}
	otmLD, err := s.DB.CreateTable(condensedLDDef(s.setTable("otm_ld", name)))
	if err != nil {
		return err
	}
	naive := naiveRows(hubs, byHub, kmax)
	naiveLD := cloneRows(naive)
	kmaxOTM := len(targets)
	jobs := []func() error{
		func() error { return eaNaive.BulkLoad(naive) },
		func() error { return ldNaive.BulkLoad(naiveLD) },
		func() error { return knnEA.BulkLoad(s.condensedEARows(hubs, byHub, kmax)) },
		func() error { return knnLD.BulkLoad(s.condensedLDRows(hubs, byHub, kmax)) },
		func() error { return otmEA.BulkLoad(s.condensedEARows(hubs, byHub, kmaxOTM)) },
		func() error { return otmLD.BulkLoad(s.condensedLDRows(hubs, byHub, kmaxOTM)) },
	}
	if err := runJobs(s.workers, jobs); err != nil {
		return err
	}

	ts := TargetSetMeta{KMax: kmax, Targets: make([]int32, len(targets))}
	for i, w := range targets {
		ts.Targets[i] = int32(w)
	}
	s.vm().TargetSets[name] = ts
	return s.saveMeta()
}

// DropTargetSet removes a target set's six auxiliary tables, e.g. to
// rebuild them with a different kmax (the paper builds separate tables per
// density and kmax).
func (s *Store) DropTargetSet(name string) error {
	if _, ok := s.vm().TargetSets[name]; !ok {
		return fmt.Errorf("core: unknown target set %q", name)
	}
	for _, prefix := range []string{"ea_knn_naive", "ld_knn_naive", "knn_ea", "knn_ld", "otm_ea", "otm_ld"} {
		if err := s.DB.DropTable(s.setTable(prefix, name)); err != nil {
			return err
		}
	}
	delete(s.vm().TargetSets, name)
	return s.saveMeta()
}

// naiveDef is the schema of ea_knn_naive_<set> / ld_knn_naive_<set>.
func naiveDef(n string) sqldb.TableDef {
	return sqldb.TableDef{
		Name: n,
		PK:   []string{"hub", "td"},
		Columns: []sqldb.ColumnDef{
			{Name: "hub", Type: sqltypes.Int64},
			{Name: "td", Type: sqltypes.Int64},
			{Name: "vs", Type: sqltypes.IntArray},
			{Name: "tas", Type: sqltypes.IntArray},
		},
	}
}

// naiveRows builds the ea_knn_naive / ld_knn_naive rows: one per (hub, t_d)
// with the top-kmax distinct targets by earliest arrival (Section 3.2.1,
// Table 4), in ascending (hub, td) order. Both directions keep earliest
// arrivals: for a fixed (hub, t_d) every candidate offers the same transfer
// window, and the smallest arrivals are the most likely to satisfy the LD
// bound t_a <= t.
func naiveRows(hubs []timetable.StopID, byHub map[timetable.StopID][]targetTuple, kmax int) []sqltypes.Row {
	var rows []sqltypes.Row
	for _, h := range hubs {
		ts := byHub[h]
		for i := 0; i < len(ts); {
			j := i
			for j < len(ts) && ts[j].td == ts[i].td {
				j++
			}
			top := bestPerTargetEA(ts[i:j], kmax)
			rows = append(rows, sqltypes.Row{
				sqltypes.NewInt(int64(h)),
				sqltypes.NewInt(int64(ts[i].td)),
				targetIDs(top),
				arrivalTimes(top),
			})
			i = j
		}
	}
	return rows
}

// cloneRows deep-copies rows so two tables can load the same content
// concurrently without sharing array values.
func cloneRows(rows []sqltypes.Row) []sqltypes.Row {
	out := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}

// bestPerTargetEA keeps, for each distinct target in ts, its earliest
// arrival, then returns the k best ordered by (arrival, target id).
func bestPerTargetEA(ts []targetTuple, k int) []Result {
	best := map[timetable.StopID]timetable.Time{}
	for _, t := range ts {
		if b, ok := best[t.v]; !ok || t.ta < b {
			best[t.v] = t.ta
		}
	}
	out := make([]Result, 0, len(best))
	for v, ta := range best {
		out = append(out, Result{Stop: v, When: ta})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When < out[j].When
		}
		return out[i].Stop < out[j].Stop
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// bestPerTargetLD keeps, for each distinct target, its latest departure,
// returning the k best ordered by (departure descending, target id).
func bestPerTargetLD(ts []targetTuple, k int) []Result {
	best := map[timetable.StopID]timetable.Time{}
	for _, t := range ts {
		if b, ok := best[t.v]; !ok || t.td > b {
			best[t.v] = t.td
		}
	}
	out := make([]Result, 0, len(best))
	for v, td := range best {
		out = append(out, Result{Stop: v, When: td})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When > out[j].When
		}
		return out[i].Stop < out[j].Stop
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func targetIDs(rs []Result) sqltypes.Value {
	a := make([]int64, len(rs))
	for i, r := range rs {
		a[i] = int64(r.Stop)
	}
	return sqltypes.NewIntArray(a)
}

func arrivalTimes(rs []Result) sqltypes.Value {
	a := make([]int64, len(rs))
	for i, r := range rs {
		a[i] = int64(r.When)
	}
	return sqltypes.NewIntArray(a)
}

// condensedEADef is the schema of a knn_ea- or otm_ea-layout table.
func condensedEADef(n string) sqldb.TableDef {
	return sqldb.TableDef{
		Name: n,
		PK:   []string{"hub", "dephour"},
		Columns: []sqldb.ColumnDef{
			{Name: "hub", Type: sqltypes.Int64},
			{Name: "dephour", Type: sqltypes.Int64},
			{Name: "vs", Type: sqltypes.IntArray},
			{Name: "tas", Type: sqltypes.IntArray},
			{Name: "tds_exp", Type: sqltypes.IntArray},
			{Name: "vs_exp", Type: sqltypes.IntArray},
			{Name: "tas_exp", Type: sqltypes.IntArray},
		},
	}
}

// condensedEARows builds knn_ea- or otm_ea-layout rows: one per
// (hub, dephour) whose exp columns expand every target tuple departing the
// hub within the bucket (ordered by t_d) and whose vs/tas columns hold the
// top-k per-target earliest arrivals over strictly later buckets
// (Theorem 3.2.2). Rows come out in ascending (hub, dephour) order.
func (s *Store) condensedEARows(hubs []timetable.StopID, byHub map[timetable.StopID][]targetTuple, k int) []sqltypes.Row {
	var rows []sqltypes.Row
	// Rows must exist for every bucket a journey can arrive at a hub in,
	// from the global earliest event: a missing row would silently drop the
	// join candidate (proof of Theorem 3.2.2).
	hmin := s.hour(s.vm().MinTime)
	for _, h := range hubs {
		ts := byHub[h] // sorted by td
		hmax := s.hour(ts[len(ts)-1].td)
		// Iterate buckets from late to early, folding each bucket's tuples
		// into the per-target future bests before emitting the row below it.
		future := map[timetable.StopID]timetable.Time{}
		idx := len(ts)
		start := len(rows)
		for bucket := hmax; bucket >= hmin; bucket-- {
			// Tuples departing within this bucket: ts[lo:idx).
			lo := idx
			for lo > 0 && s.hour(ts[lo-1].td) == bucket {
				lo--
			}
			top := topKEA(future, k)
			rows = append(rows, sqltypes.Row{
				sqltypes.NewInt(int64(h)),
				sqltypes.NewInt(bucket),
				targetIDs(top),
				arrivalTimes(top),
				expColumn(ts[lo:idx], func(t targetTuple) timetable.Time { return t.td }),
				expColumn(ts[lo:idx], func(t targetTuple) timetable.Time { return timetable.Time(t.v) }),
				expColumn(ts[lo:idx], func(t targetTuple) timetable.Time { return t.ta }),
			})
			// Fold this bucket into the future set for earlier buckets.
			for _, t := range ts[lo:idx] {
				if b, ok := future[t.v]; !ok || t.ta < b {
					future[t.v] = t.ta
				}
			}
			idx = lo
		}
		// The fold direction emits this hub's buckets hmax→hmin; the bulk
		// load wants them ascending.
		for i, j := start, len(rows)-1; i < j; i, j = i+1, j-1 {
			rows[i], rows[j] = rows[j], rows[i]
		}
	}
	return rows
}

// condensedLDDef is the schema of a knn_ld- or otm_ld-layout table.
func condensedLDDef(n string) sqldb.TableDef {
	return sqldb.TableDef{
		Name: n,
		PK:   []string{"hub", "arrhour"},
		Columns: []sqldb.ColumnDef{
			{Name: "hub", Type: sqltypes.Int64},
			{Name: "arrhour", Type: sqltypes.Int64},
			{Name: "vs", Type: sqltypes.IntArray},
			{Name: "tds", Type: sqltypes.IntArray},
			{Name: "tds_exp", Type: sqltypes.IntArray},
			{Name: "vs_exp", Type: sqltypes.IntArray},
			{Name: "tas_exp", Type: sqltypes.IntArray},
		},
	}
}

// condensedLDRows builds knn_ld- or otm_ld-layout rows: one per
// (hub, arrhour) whose exp columns expand the target tuples arriving within
// the bucket (ordered by t_d) and whose vs/tds columns hold the top-k
// per-target latest departures among tuples arriving at or before the bucket
// start (paper Section 3.2.1, LD variant). Rows come out in ascending
// (hub, arrhour) order.
func (s *Store) condensedLDRows(hubs []timetable.StopID, byHub map[timetable.StopID][]targetTuple, k int) []sqltypes.Row {
	var rows []sqltypes.Row
	hmax := s.hour(s.vm().MaxTime)
	for _, h := range hubs {
		all := byHub[h]
		// Order by arrival for bucket grouping; exp columns stay ordered by
		// td within each bucket per the paper.
		byArr := append([]targetTuple(nil), all...)
		sort.Slice(byArr, func(i, j int) bool {
			if byArr[i].ta != byArr[j].ta {
				return byArr[i].ta < byArr[j].ta
			}
			if byArr[i].td != byArr[j].td {
				return byArr[i].td < byArr[j].td
			}
			return byArr[i].v < byArr[j].v
		})
		hmin := s.hour(byArr[0].ta)
		past := map[timetable.StopID]timetable.Time{} // target -> latest td with ta <= bucket start
		idx := 0
		for bucket := hmin; bucket <= hmax; bucket++ {
			// Fold tuples arriving strictly before (or exactly at) the
			// bucket start into the past set: ta <= bucket*width.
			bound := timetable.Time(bucket * int64(s.meta.BucketSeconds))
			for idx < len(byArr) && byArr[idx].ta <= bound {
				t := byArr[idx]
				if b, ok := past[t.v]; !ok || t.td > b {
					past[t.v] = t.td
				}
				idx++
			}
			// Tuples arriving within this bucket: (bound, bound+width) plus
			// the boundary tuple already folded — the paper includes the
			// whole [bound, next) range in exp; overlap with the top-k set
			// at exactly the boundary is harmless (both are valid
			// candidates).
			lo := idx
			for lo > 0 && byArr[lo-1].ta >= bound {
				lo--
			}
			hi := idx
			for hi < len(byArr) && s.hour(byArr[hi].ta) == bucket {
				hi++
			}
			bucketTuples := append([]targetTuple(nil), byArr[lo:hi]...)
			sort.Slice(bucketTuples, func(i, j int) bool {
				if bucketTuples[i].td != bucketTuples[j].td {
					return bucketTuples[i].td < bucketTuples[j].td
				}
				return bucketTuples[i].v < bucketTuples[j].v
			})
			top := topKLD(past, k)
			rows = append(rows, sqltypes.Row{
				sqltypes.NewInt(int64(h)),
				sqltypes.NewInt(bucket),
				targetIDs(top),
				arrivalTimes(top), // departure times for the LD layout
				expColumn(bucketTuples, func(t targetTuple) timetable.Time { return t.td }),
				expColumn(bucketTuples, func(t targetTuple) timetable.Time { return timetable.Time(t.v) }),
				expColumn(bucketTuples, func(t targetTuple) timetable.Time { return t.ta }),
			})
		}
	}
	return rows
}

func topKEA(best map[timetable.StopID]timetable.Time, k int) []Result {
	out := make([]Result, 0, len(best))
	for v, ta := range best {
		out = append(out, Result{Stop: v, When: ta})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When < out[j].When
		}
		return out[i].Stop < out[j].Stop
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func topKLD(best map[timetable.StopID]timetable.Time, k int) []Result {
	out := make([]Result, 0, len(best))
	for v, td := range best {
		out = append(out, Result{Stop: v, When: td})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When > out[j].When
		}
		return out[i].Stop < out[j].Stop
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func expColumn(ts []targetTuple, get func(targetTuple) timetable.Time) sqltypes.Value {
	a := make([]int64, len(ts))
	for i, t := range ts {
		a[i] = int64(get(t))
	}
	return sqltypes.NewIntArray(a)
}

// ensureLabelOrder establishes the (hub, td, ta) lexicographic order of one
// stop's label arrays in place. TTL construction already emits tuples sorted
// by (Hub, Dep), so the verification pass is the common case and the sort
// runs only for labels from other producers (e.g. hand-built tables in
// tests). The fused executor's merge join relies on this order and falls
// back to a hash join when a label is found unsorted at query time.
func ensureLabelOrder(hubs, tds, tas []int64) {
	sorted := true
	for i := 1; i < len(hubs); i++ {
		if hubs[i] < hubs[i-1] ||
			(hubs[i] == hubs[i-1] && (tds[i] < tds[i-1] ||
				(tds[i] == tds[i-1] && tas[i] < tas[i-1]))) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	idx := make([]int, len(hubs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if hubs[i] != hubs[j] {
			return hubs[i] < hubs[j]
		}
		if tds[i] != tds[j] {
			return tds[i] < tds[j]
		}
		return tas[i] < tas[j]
	})
	apply := func(col []int64) {
		tmp := make([]int64, len(col))
		for a, i := range idx {
			tmp[a] = col[i]
		}
		copy(col, tmp)
	}
	apply(hubs)
	apply(tds)
	apply(tas)
}
