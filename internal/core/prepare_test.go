package core

import (
	"testing"

	"ptldb/internal/timetable"
)

// queryBattery runs one query of every kind the store supports.
func queryBattery(t *testing.T, st *Store) {
	t.Helper()
	if _, _, err := st.EarliestArrival(0, 4, 36000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LatestDeparture(0, 4, 50000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.ShortestDuration(0, 4, 0, 86400); err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(string, timetable.StopID, timetable.Time, int) ([]Result, error){
		st.EAKNN, st.EAKNNNaive, st.LDKNN, st.LDKNNNaive,
	} {
		if _, err := fn("poi", 0, 36000, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.EAOTM("poi", 0, 36000); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LDOTM("poi", 0, 36000); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateZeroParse asserts that after one warm-up pass, the query
// path never parses SQL again: every statement comes out of the DB plan
// cache, so the statement-cache miss counter (which counts sql.Parse calls
// made through CachedPrepare) stays flat across repeated query batteries.
func TestSteadyStateZeroParse(t *testing.T) {
	st, _ := paperStore(t)
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}

	// Warm-up: the first battery may prepare each kNN/OTM statement once.
	// (The three V2V statements were already prepared at Build time.)
	queryBattery(t, st)

	hits0, misses0 := st.DB.StmtCacheStats()
	const rounds = 5
	for i := 0; i < rounds; i++ {
		queryBattery(t, st)
	}
	hits1, misses1 := st.DB.StmtCacheStats()

	if misses1 != misses0 {
		t.Errorf("steady state parsed SQL %d times; plan cache must make this 0", misses1-misses0)
	}
	// Each battery runs 6 kNN/OTM queries through CachedPrepare; the V2V
	// statements are bound at Build/Open and never touch the cache again.
	if hits1 <= hits0 {
		t.Errorf("statement cache hits did not advance (%d -> %d); queries are not using the cache", hits0, hits1)
	}
}

// TestReopenPreparesStatements ensures a store opened from disk (rather than
// built) also has its V2V statements bound: the warm path must not differ
// between Build and Open.
func TestReopenPreparesStatements(t *testing.T) {
	st, _ := paperStore(t)
	if st.v2vEA == nil || st.v2vLD == nil || st.v2vSD == nil {
		t.Fatal("Build left V2V statements unprepared")
	}
	v, err := st.Version(BaseVersion)
	if err != nil {
		t.Fatal(err)
	}
	if v.v2vEA == nil || v.v2vLD == nil || v.v2vSD == nil {
		t.Fatal("Version() store left V2V statements unprepared")
	}
}
