package core

// observe.go is the store-level half of the observability layer: every public
// query method funnels through observe(), which feeds the per-Code counters
// and latency histograms of the database's obs.Registry and, when a trace
// hook is installed, emits one obs.Trace per successful query. ExplainPrepared
// renders the operator tree a prepared paper query will execute with.

import (
	"sort"
	"strings"
	"time"

	"ptldb/internal/obs"
	"ptldb/internal/sqldb"
	"ptldb/internal/sqldb/exec"
	"ptldb/internal/sqldb/sqltypes"
)

// SetTraceHook installs fn to receive one obs.Trace per successful query
// method call (the paper Codes plus Raw). A nil fn disables tracing. The hook
// runs synchronously on the querying goroutine, so it must be cheap and
// must not call back into the store; fan-out or buffering belongs in the
// hook itself (see obs.SlowQueryLogger and obs.Aggregator).
//
// Version views share the hook installed at the time Version was called;
// installing a hook afterwards only affects the receiver.
func (s *Store) SetTraceHook(fn func(obs.Trace)) { s.traceHook = fn }

// observe runs st and feeds the registry: the Code's call count and latency
// histogram always, and — only when a trace hook is installed — one
// obs.Trace carrying the execution path and the buffer-pool miss delta
// (pages fetched from disk on behalf of this query; concurrent queries on
// the same DB inflate it, which is fine for the single-stream serving loops
// it is meant for).
func (s *Store) observe(code obs.Code, st *sqldb.Stmt, params ...sqltypes.Value) (*exec.Relation, error) {
	reg := s.DB.Registry()
	var missesBefore, vhitsBefore uint64
	if s.traceHook != nil {
		missesBefore = reg.Pool.Misses.Load()
		if reg.VCache != nil {
			vhitsBefore = reg.VCache.Hits.Load()
		}
	}
	start := time.Now()
	rel, info, err := st.QueryInfo(params...)
	wall := time.Since(start)
	q := &reg.Query[code]
	q.Count.Add(1)
	q.Latency.Observe(wall)
	if err != nil {
		return nil, err
	}
	if s.traceHook != nil {
		tr := obs.Trace{
			Code:      code.String(),
			Fused:     info.Fused,
			Bailout:   info.Bailout,
			Rows:      len(rel.Rows),
			Wall:      wall,
			PagesRead: reg.Pool.Misses.Load() - missesBefore,
		}
		if reg.VCache != nil {
			tr.VCacheHits = reg.VCache.Hits.Load() - vhitsBefore
		}
		s.traceHook(tr)
	}
	return rel, nil
}

// observeRaw is observe for ad-hoc SQL running outside the prepared-statement
// path (Raw/RawTraced): same counters under obs.CodeRaw, never fused.
func (s *Store) observeRaw(run func() (*exec.Relation, error)) (*exec.Relation, error) {
	reg := s.DB.Registry()
	var missesBefore, vhitsBefore uint64
	if s.traceHook != nil {
		missesBefore = reg.Pool.Misses.Load()
		if reg.VCache != nil {
			vhitsBefore = reg.VCache.Hits.Load()
		}
	}
	start := time.Now()
	rel, err := run()
	wall := time.Since(start)
	q := &reg.Query[obs.CodeRaw]
	q.Count.Add(1)
	q.Latency.Observe(wall)
	if err != nil {
		return nil, err
	}
	if s.traceHook != nil {
		tr := obs.Trace{
			Code:      obs.CodeRaw.String(),
			Rows:      len(rel.Rows),
			Wall:      wall,
			PagesRead: reg.Pool.Misses.Load() - missesBefore,
		}
		if reg.VCache != nil {
			tr.VCacheHits = reg.VCache.Hits.Load() - vhitsBefore
		}
		s.traceHook(tr)
	}
	return rel, nil
}

// ExplainNames lists the query names ExplainPrepared accepts under the bound
// version: the three v2v kinds plus "<kind>:<set>" for every registered
// target set.
func (s *Store) ExplainNames() []string {
	out := []string{"v2v-ea", "v2v-ld", "v2v-sd"}
	for _, set := range s.targetSetNames() {
		for _, kind := range []string{"knn-naive-ea", "knn-naive-ld", "knn-ea", "knn-ld", "otm-ea", "otm-ld"} {
			out = append(out, kind+":"+set)
		}
	}
	return out
}

// ExplainPrepared renders the plan of one of the paper's prepared queries,
// named "<kind>" for the v2v Codes ("v2v-ea", "v2v-ld", "v2v-sd") or
// "<kind>:<set>" for the per-target-set Codes ("knn-naive-ea", "knn-naive-ld",
// "knn-ea", "knn-ld", "otm-ea", "otm-ld"). The statement is built exactly as
// the corresponding query method builds it, so the rendered tree is the tree
// that method executes.
func (s *Store) ExplainPrepared(name string) (string, error) {
	kind, set := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		kind, set = name[:i], name[i+1:]
	}
	switch kind {
	case "v2v-ea":
		return s.v2vEA.Explain(), nil
	case "v2v-ld":
		return s.v2vLD.Explain(), nil
	case "v2v-sd":
		return s.v2vSD.Explain(), nil
	}
	if set == "" {
		return "", invalidf("explain %q: kind %q needs a target set (\"%s:<set>\")", name, kind, kind)
	}
	if _, ok := s.vm().TargetSets[set]; !ok {
		return "", invalidf("explain %q: unknown target set %q", name, set)
	}
	var st *sqldb.Stmt
	var err error
	switch kind {
	case "knn-naive-ea":
		st, err = s.prepared(sqlKNNNaiveEA, s.setTable("ea_knn_naive", set), s.loutTable())
	case "knn-naive-ld":
		st, err = s.prepared(sqlKNNNaiveLD, s.setTable("ld_knn_naive", set), s.loutTable())
	case "knn-ea":
		st, err = s.prepared(sqlKNNEA, s.setTable("knn_ea", set), s.meta.BucketSeconds, s.loutTable())
	case "knn-ld":
		st, err = s.prepared(sqlKNNLD, s.setTable("knn_ld", set), s.meta.BucketSeconds, s.loutTable())
	case "otm-ea":
		st, err = s.prepared(sqlOTMEA, s.setTable("otm_ea", set), s.meta.BucketSeconds, s.loutTable())
	case "otm-ld":
		st, err = s.prepared(sqlOTMLD, s.setTable("otm_ld", set), s.meta.BucketSeconds, s.loutTable())
	default:
		return "", invalidf("explain %q: unknown query kind %q", name, kind)
	}
	if err != nil {
		return "", err
	}
	return st.Explain(), nil
}

// targetSetNames returns the bound version's target-set names, sorted.
func (s *Store) targetSetNames() []string {
	sets := s.vm().TargetSets
	out := make([]string, 0, len(sets))
	for name := range sets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
