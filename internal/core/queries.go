package core

import (
	"fmt"

	"ptldb/internal/obs"
	"ptldb/internal/sqldb"
	"ptldb/internal/sqldb/exec"
	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/timetable"
)

// The SQL below is the paper's Codes 1–4, with positional parameters in
// place of the inline s, g, t, k values and the table names / bucket width
// interpolated at statement-build time. Each variant the paper derives by
// "choosing between lines" is spelled out as its own constant.

// Code 1 — vertex-to-vertex queries. %[1]s = lout table, %[2]s = lin
// table. $1 = s, $2 = g, then the timestamps.
const (
	sqlV2VEA = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[1]s WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[2]s WHERE v=$2)
SELECT MIN(inp.ta)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td
  AND outp.td>=$3`

	sqlV2VLD = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[1]s WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[2]s WHERE v=$2)
SELECT MAX(outp.td)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td
  AND inp.ta<=$3`

	sqlV2VSD = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[1]s WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[2]s WHERE v=$2)
SELECT MIN(inp.ta-outp.td)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td
  AND outp.td>=$3
  AND inp.ta<=$4`
)

// Code 2 — naive kNN. %[1]s = naive table, %[2]s = lout table. $1 = q, $2 = t, $3 = k (EA);
// $1 = q, $2 = t, $3 = k (LD, with t bounding arrivals).
const (
	sqlKNNNaiveEA = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v AS v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[2]s
      WHERE v=$1) n1a
   WHERE td >=$2)
SELECT v2, MIN(n2.ta)
FROM n1,
  (SELECT hub, td, UNNEST(vs[1:$3]) AS v2, UNNEST(tas[1:$3]) AS ta
   FROM %[1]s) n2
WHERE n1.hub=n2.hub
  AND n2.td>=n1.ta
GROUP BY v2
ORDER BY MIN(n2.ta), v2
LIMIT $3`

	// The LD analogue the paper benchmarks in Figure 3 but does not print:
	// the departure from q is maximized subject to arriving by $2.
	sqlKNNNaiveLD = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v AS v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[2]s
      WHERE v=$1) n1a)
SELECT v2, MAX(n1.td)
FROM n1,
  (SELECT hub, td, UNNEST(vs[1:$3]) AS v2, UNNEST(tas[1:$3]) AS ta
   FROM %[1]s) n2
WHERE n1.hub=n2.hub
  AND n2.td>=n1.ta
  AND n2.ta<=$2
GROUP BY v2
ORDER BY MAX(n1.td) DESC, v2
LIMIT $3`
)

// Code 3 — optimized EA-kNN and EA-OTM. %[1]s = knn_ea/otm_ea table,
// %[2]d = bucket width, %[3]s = lout table. $1 = q, $2 = t, $3 = k (kNN only).
const (
	sqlKNNEA = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[3]s
      WHERE v=$1) n1a
   WHERE td >=$2),
    n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
   FROM %[1]s n1bb, n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.dephour=FLOOR(n1.ta/%[2]d.0))
SELECT v2, MIN(ta)
FROM (
      (SELECT v2, MIN(n3.ta) AS ta
       FROM
          (SELECT UNNEST(tas[1:$3]) AS ta, UNNEST(vs[1:$3]) AS v2
           FROM n1b) n3
       GROUP BY v2
       ORDER BY MIN(n3.ta), v2
       LIMIT $3)
   UNION
      (SELECT n2.v2, MIN(n2.ta) AS ta
       FROM
          (SELECT n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2, UNNEST(tas_exp) AS ta
           FROM n1b) n2
       WHERE n1_ta <= n2.td
       GROUP BY n2.v2
       ORDER BY MIN(n2.ta), v2
       LIMIT $3)) S53
GROUP BY v2
ORDER BY MIN(ta), v2
LIMIT $3`

	sqlOTMEA = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[3]s
      WHERE v=$1) n1a
   WHERE td >=$2),
    n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
   FROM %[1]s n1bb, n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.dephour=FLOOR(n1.ta/%[2]d.0))
SELECT v2, MIN(ta)
FROM (
      (SELECT v2, MIN(n3.ta) AS ta
       FROM
          (SELECT UNNEST(tas) AS ta, UNNEST(vs) AS v2
           FROM n1b) n3
       GROUP BY v2
       ORDER BY MIN(n3.ta), v2)
   UNION
      (SELECT n2.v2, MIN(n2.ta) AS ta
       FROM
          (SELECT n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2, UNNEST(tas_exp) AS ta
           FROM n1b) n2
       WHERE n1_ta <= n2.td
       GROUP BY n2.v2
       ORDER BY MIN(n2.ta), v2)) S53
GROUP BY v2
ORDER BY MIN(ta), v2`
)

// Code 4 — optimized LD-kNN and LD-OTM. %[1]s = knn_ld/otm_ld table,
// %[2]d = bucket width, %[3]s = lout table. $1 = q, $2 = t, $3 = k (kNN only).
const (
	sqlKNNLD = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[3]s
      WHERE v=$1) n1a),
    n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
   FROM %[1]s n1bb, n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.arrhour=FLOOR($2/%[2]d.0))
SELECT v2, MAX(td)
FROM (
      (SELECT v2, MAX(n3.n1_td) AS td
       FROM
          (SELECT n1_td, n1_ta, UNNEST(tds[1:$3]) AS td, UNNEST(vs[1:$3]) AS v2
           FROM n1b) n3
       WHERE n3.td>=n1_ta
       GROUP BY v2
       ORDER BY MAX(n3.n1_td) DESC, v2
       LIMIT $3)
   UNION
      (SELECT n2.v2, MAX(n2.n1_td) AS td
       FROM
          (SELECT n1_td, n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2, UNNEST(tas_exp) AS ta
           FROM n1b) n2
       WHERE n2.td>=n1_ta
         AND n2.ta<=$2
       GROUP BY n2.v2
       ORDER BY MAX(n2.n1_td) DESC, v2
       LIMIT $3)) S53
GROUP BY v2
ORDER BY MAX(td) DESC, v2
LIMIT $3`

	sqlOTMLD = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[3]s
      WHERE v=$1) n1a),
    n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
   FROM %[1]s n1bb, n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.arrhour=FLOOR($2/%[2]d.0))
SELECT v2, MAX(td)
FROM (
      (SELECT v2, MAX(n3.n1_td) AS td
       FROM
          (SELECT n1_td, n1_ta, UNNEST(tds) AS td, UNNEST(vs) AS v2
           FROM n1b) n3
       WHERE n3.td>=n1_ta
       GROUP BY v2
       ORDER BY MAX(n3.n1_td) DESC, v2)
   UNION
      (SELECT n2.v2, MAX(n2.n1_td) AS td
       FROM
          (SELECT n1_td, n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2, UNNEST(tas_exp) AS ta
           FROM n1b) n2
       WHERE n2.td>=n1_ta
         AND n2.ta<=$2
       GROUP BY n2.v2
       ORDER BY MAX(n2.n1_td) DESC, v2)) S53
GROUP BY v2
ORDER BY MAX(td) DESC, v2`
)

// prepared returns the shared prepared statement for the formatted SQL,
// parsing it at most once per database via the plan cache.
func (s *Store) prepared(format string, a ...any) (*sqldb.Stmt, error) {
	return s.DB.CachedPrepare(fmt.Sprintf(format, a...))
}

// prepareStatements parses the bound version's Code 1 statements once;
// after this, steady-state v2v queries execute with zero SQL parses.
func (s *Store) prepareStatements() error {
	var err error
	if s.v2vEA, err = s.prepared(sqlV2VEA, s.loutTable(), s.linTable()); err != nil {
		return err
	}
	if s.v2vLD, err = s.prepared(sqlV2VLD, s.loutTable(), s.linTable()); err != nil {
		return err
	}
	s.v2vSD, err = s.prepared(sqlV2VSD, s.loutTable(), s.linTable())
	return err
}

// queryScalar runs a statement whose result is a single one-column row,
// observed under code.
func (s *Store) queryScalar(code obs.Code, st *sqldb.Stmt, params ...sqltypes.Value) (timetable.Time, bool, error) {
	rel, err := s.observe(code, st, params...)
	if err != nil {
		return 0, false, err
	}
	if len(rel.Rows) != 1 || len(rel.Rows[0]) != 1 {
		return 0, false, fmt.Errorf("core: scalar query returned %d rows", len(rel.Rows))
	}
	v := rel.Rows[0][0]
	if v.IsNull() {
		return 0, false, nil
	}
	n, err := v.AsInt()
	if err != nil {
		return 0, false, err
	}
	return timetable.Time(n), true, nil
}

// EarliestArrival answers EA(s, g, t) with the paper's Code 1. ok is false
// when no journey exists.
func (s *Store) EarliestArrival(src, dst timetable.StopID, t timetable.Time) (arr timetable.Time, ok bool, err error) {
	if err := s.checkStops(src, dst); err != nil {
		return 0, false, err
	}
	return s.queryScalar(obs.CodeV2VEA, s.v2vEA,
		sqltypes.NewInt(int64(src)), sqltypes.NewInt(int64(dst)), sqltypes.NewInt(int64(t)))
}

// LatestDeparture answers LD(s, g, t) with Code 1.
func (s *Store) LatestDeparture(src, dst timetable.StopID, t timetable.Time) (dep timetable.Time, ok bool, err error) {
	if err := s.checkStops(src, dst); err != nil {
		return 0, false, err
	}
	return s.queryScalar(obs.CodeV2VLD, s.v2vLD,
		sqltypes.NewInt(int64(src)), sqltypes.NewInt(int64(dst)), sqltypes.NewInt(int64(t)))
}

// ShortestDuration answers SD(s, g, t, tEnd) with Code 1.
func (s *Store) ShortestDuration(src, dst timetable.StopID, t, tEnd timetable.Time) (dur timetable.Time, ok bool, err error) {
	if err := s.checkStops(src, dst); err != nil {
		return 0, false, err
	}
	return s.queryScalar(obs.CodeV2VSD, s.v2vSD,
		sqltypes.NewInt(int64(src)), sqltypes.NewInt(int64(dst)),
		sqltypes.NewInt(int64(t)), sqltypes.NewInt(int64(tEnd)))
}

// queryResults runs a statement returning (stop, time) rows, observed under
// code.
func (s *Store) queryResults(code obs.Code, st *sqldb.Stmt, params ...sqltypes.Value) ([]Result, error) {
	rel, err := s.observe(code, st, params...)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(rel.Rows))
	for _, row := range rel.Rows {
		if len(row) != 2 {
			return nil, fmt.Errorf("core: result query returned %d columns", len(row))
		}
		v, err := row[0].AsInt()
		if err != nil {
			return nil, err
		}
		w, err := row[1].AsInt()
		if err != nil {
			return nil, err
		}
		out = append(out, Result{Stop: timetable.StopID(v), When: timetable.Time(w)})
	}
	return out, nil
}

// checkK validates k and the query stop against a registered target set.
func (s *Store) checkK(set string, q timetable.StopID, k int) error {
	if err := s.checkStop(q); err != nil {
		return err
	}
	ts, ok := s.vm().TargetSets[set]
	if !ok {
		return invalidf("unknown target set %q", set)
	}
	if k < 1 || k > ts.KMax {
		return invalidf("k=%d outside [1, kmax=%d] of target set %q", k, ts.KMax, set)
	}
	return nil
}

// EAKNNNaive answers EA-kNN(q, T, t, k) with the naive Code 2 query.
func (s *Store) EAKNNNaive(set string, q timetable.StopID, t timetable.Time, k int) ([]Result, error) {
	if err := s.checkK(set, q, k); err != nil {
		return nil, err
	}
	st, err := s.prepared(sqlKNNNaiveEA, s.setTable("ea_knn_naive", set), s.loutTable())
	if err != nil {
		return nil, err
	}
	return s.queryResults(obs.CodeKNNNaiveEA, st,
		sqltypes.NewInt(int64(q)), sqltypes.NewInt(int64(t)), sqltypes.NewInt(int64(k)))
}

// LDKNNNaive answers LD-kNN(q, T, t, k) with the naive LD analogue of
// Code 2.
func (s *Store) LDKNNNaive(set string, q timetable.StopID, t timetable.Time, k int) ([]Result, error) {
	if err := s.checkK(set, q, k); err != nil {
		return nil, err
	}
	st, err := s.prepared(sqlKNNNaiveLD, s.setTable("ld_knn_naive", set), s.loutTable())
	if err != nil {
		return nil, err
	}
	return s.queryResults(obs.CodeKNNNaiveLD, st,
		sqltypes.NewInt(int64(q)), sqltypes.NewInt(int64(t)), sqltypes.NewInt(int64(k)))
}

// EAKNN answers EA-kNN(q, T, t, k) with the optimized Code 3 query.
func (s *Store) EAKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]Result, error) {
	if err := s.checkK(set, q, k); err != nil {
		return nil, err
	}
	st, err := s.prepared(sqlKNNEA, s.setTable("knn_ea", set), s.meta.BucketSeconds, s.loutTable())
	if err != nil {
		return nil, err
	}
	return s.queryResults(obs.CodeKNNEA, st,
		sqltypes.NewInt(int64(q)), sqltypes.NewInt(int64(t)), sqltypes.NewInt(int64(k)))
}

// clampLD caps an LD query timestamp at the end of the last materialized
// arrival bucket. The knn_ld/otm_ld tables hold one row per arrival hour up
// to hour(MaxTime); a later t would probe a missing bucket and silently drop
// every candidate. Every stored arrival is <= MaxTime, so for the arrhour
// probe and every ta<=$2 comparison a t past the last bucket's end is
// equivalent to the bucket end itself.
func (s *Store) clampLD(t timetable.Time) int64 {
	last := (s.hour(s.vm().MaxTime)+1)*int64(s.meta.BucketSeconds) - 1
	if v := int64(t); v <= last {
		return v
	}
	return last
}

// LDKNN answers LD-kNN(q, T, t, k) with the optimized Code 4 query.
func (s *Store) LDKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]Result, error) {
	if err := s.checkK(set, q, k); err != nil {
		return nil, err
	}
	st, err := s.prepared(sqlKNNLD, s.setTable("knn_ld", set), s.meta.BucketSeconds, s.loutTable())
	if err != nil {
		return nil, err
	}
	return s.queryResults(obs.CodeKNNLD, st,
		sqltypes.NewInt(int64(q)), sqltypes.NewInt(s.clampLD(t)), sqltypes.NewInt(int64(k)))
}

// EAOTM answers EA-OTM(q, T, t) with the one-to-many variant of Code 3,
// returning the earliest arrival for every reachable target.
func (s *Store) EAOTM(set string, q timetable.StopID, t timetable.Time) ([]Result, error) {
	if err := s.checkSet(set, q); err != nil {
		return nil, err
	}
	st, err := s.prepared(sqlOTMEA, s.setTable("otm_ea", set), s.meta.BucketSeconds, s.loutTable())
	if err != nil {
		return nil, err
	}
	return s.queryResults(obs.CodeOTMEA, st,
		sqltypes.NewInt(int64(q)), sqltypes.NewInt(int64(t)))
}

// LDOTM answers LD-OTM(q, T, t) with the one-to-many variant of Code 4.
func (s *Store) LDOTM(set string, q timetable.StopID, t timetable.Time) ([]Result, error) {
	if err := s.checkSet(set, q); err != nil {
		return nil, err
	}
	st, err := s.prepared(sqlOTMLD, s.setTable("otm_ld", set), s.meta.BucketSeconds, s.loutTable())
	if err != nil {
		return nil, err
	}
	return s.queryResults(obs.CodeOTMLD, st,
		sqltypes.NewInt(int64(q)), sqltypes.NewInt(s.clampLD(t)))
}

// Raw exposes the underlying relation of an arbitrary SQL query, for the
// query CLI and tests. Observed under obs.CodeRaw.
func (s *Store) Raw(q string, params ...sqltypes.Value) (*exec.Relation, error) {
	return s.observeRaw(func() (*exec.Relation, error) {
		return s.DB.Query(q, params...)
	})
}

// RawTraced is Raw plus the access-path trace (EXPLAIN ANALYZE).
func (s *Store) RawTraced(q string, params ...sqltypes.Value) (*exec.Relation, []string, error) {
	var trace []string
	rel, err := s.observeRaw(func() (*exec.Relation, error) {
		var err error
		var r *exec.Relation
		r, trace, err = s.DB.QueryTraced(q, params...)
		return r, err
	})
	return rel, trace, err
}
