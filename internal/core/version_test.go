package core

import (
	"math/rand"
	"testing"

	"ptldb/internal/csa"
	"ptldb/internal/order"
	"ptldb/internal/timetable"
	"ptldb/internal/ttl"
)

// TestVersions exercises the paper's Section 3.1 multi-period design: one
// database holding weekday (base) and weekend timetable versions, each with
// its own label tables and target sets.
func TestVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	weekday := randomTimetable(rng, 15, 260)
	weekend := randomTimetable(rng, 15, 120) // sparser service

	st, _ := newStore(t, weekday, order.ByDegree(weekday), BuildOptions{})
	weekendLabels := ttl.Build(weekend, order.ByDegree(weekend)).Augment()
	if err := st.AddVersion("weekend", weekendLabels); err != nil {
		t.Fatal(err)
	}

	if got := st.Versions(); len(got) != 2 || got[0] != "base" || got[1] != "weekend" {
		t.Fatalf("Versions = %v", got)
	}

	we, err := st.Version("weekend")
	if err != nil {
		t.Fatal(err)
	}

	// Every version answers with its own timetable's oracle.
	for trial := 0; trial < 60; trial++ {
		s := timetable.StopID(rng.Intn(15))
		g := timetable.StopID(rng.Intn(15))
		if s == g {
			continue
		}
		tq := timetable.Time(rng.Intn(90000))

		want := csa.EarliestArrival(weekday, s, g, tq)
		got, ok, err := st.EarliestArrival(s, g, tq)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (want < timetable.Infinity) || (ok && got != want) {
			t.Fatalf("base EA(%d,%d,%v) = %v,%v want %v", s, g, tq, got, ok, want)
		}

		wantWE := csa.EarliestArrival(weekend, s, g, tq)
		gotWE, okWE, err := we.EarliestArrival(s, g, tq)
		if err != nil {
			t.Fatal(err)
		}
		if okWE != (wantWE < timetable.Infinity) || (okWE && gotWE != wantWE) {
			t.Fatalf("weekend EA(%d,%d,%v) = %v,%v want %v", s, g, tq, gotWE, okWE, wantWE)
		}
	}

	// Target sets are per version: same name, independent tables.
	targets := []timetable.StopID{2, 5, 9}
	if err := st.AddTargetSet("poi", targets, 4); err != nil {
		t.Fatal(err)
	}
	if err := we.AddTargetSet("poi", targets, 4); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.TargetSets()["poi"]; !ok {
		t.Error("base target set missing")
	}
	if _, ok := we.TargetSets()["poi"]; !ok {
		t.Error("weekend target set missing")
	}
	weekdayLabels := ttl.Build(weekday, order.ByDegree(weekday)).Augment()
	for trial := 0; trial < 20; trial++ {
		q := timetable.StopID(rng.Intn(15))
		tq := timetable.Time(rng.Intn(90000))
		perBase := map[timetable.StopID]timetable.Time{}
		perWE := map[timetable.StopID]timetable.Time{}
		for _, w := range targets {
			perBase[w] = weekdayLabels.EarliestArrivalUnified(q, w, tq)
			perWE[w] = weekendLabels.EarliestArrivalUnified(q, w, tq)
		}
		gotBase, err := st.EAKNN("poi", q, tq, 2)
		if err != nil {
			t.Fatal(err)
		}
		checkKNN(t, "base EA-kNN", gotBase, oracleKNNEA(weekdayLabels, q, targets, tq, 2), perBase)
		gotWE, err := we.EAKNN("poi", q, tq, 2)
		if err != nil {
			t.Fatal(err)
		}
		checkKNN(t, "weekend EA-kNN", gotWE, oracleKNNEA(weekendLabels, q, targets, tq, 2), perWE)
	}
}

func TestVersionValidation(t *testing.T) {
	st, _ := paperStore(t)
	labels := ttl.Build(timetable.PaperExample(), order.Identity(7)).Augment()
	if err := st.AddVersion("base", labels); err == nil {
		t.Error("shadowing the base version accepted")
	}
	if err := st.AddVersion("Bad Name", labels); err == nil {
		t.Error("invalid version name accepted")
	}
	var b timetable.Builder
	b.AddStops(3)
	small := ttl.Build(b.MustBuild(), order.Identity(3)).Augment()
	if err := st.AddVersion("tiny", small); err == nil {
		t.Error("stop-count mismatch accepted")
	}
	if err := st.AddVersion("sunday", labels); err != nil {
		t.Fatal(err)
	}
	if err := st.AddVersion("sunday", labels); err == nil {
		t.Error("duplicate version accepted")
	}
	if _, err := st.Version("nope"); err == nil {
		t.Error("unknown version accepted")
	}
	// The version survives reopening via the persisted meta.
	st2, err := Open(st.DB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Version("sunday"); err != nil {
		t.Errorf("version lost after Open: %v", err)
	}
}

func TestDropTargetSet(t *testing.T) {
	st, _ := paperStore(t)
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.DropTargetSet("nope"); err == nil {
		t.Error("dropping unknown set succeeded")
	}
	if err := st.DropTargetSet("poi"); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.TargetSets()["poi"]; ok {
		t.Error("dropped set still registered")
	}
	if _, err := st.EAKNN("poi", 0, 36000, 1); err == nil {
		t.Error("query against dropped set succeeded")
	}
	// Rebuild with a different kmax.
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}
	got, err := st.EAKNN("poi", 0, 36000, 4)
	if err != nil || len(got) != 2 {
		t.Fatalf("rebuilt set: %v %v", got, err)
	}
}
