package core

import (
	"math/rand"
	"sort"
	"testing"

	"ptldb/internal/timetable"
)

// TestPreparedStatementsFuse asserts that every Code 1–4 statement the store
// issues compiles to a fused plan, and that running the full query battery
// never bails out to the tuple-at-a-time executor.
func TestPreparedStatementsFuse(t *testing.T) {
	st, _ := paperStore(t)
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}

	if !st.v2vEA.Fused() || !st.v2vLD.Fused() || !st.v2vSD.Fused() {
		t.Errorf("v2v statements fused = %v, %v, %v; want all true",
			st.v2vEA.Fused(), st.v2vLD.Fused(), st.v2vSD.Fused())
	}

	knn := []struct {
		name   string
		format string
		args   []any
	}{
		{"knn-naive-ea", sqlKNNNaiveEA, []any{st.setTable("ea_knn_naive", "poi"), st.loutTable()}},
		{"knn-naive-ld", sqlKNNNaiveLD, []any{st.setTable("ld_knn_naive", "poi"), st.loutTable()}},
		{"knn-ea", sqlKNNEA, []any{st.setTable("knn_ea", "poi"), st.meta.BucketSeconds, st.loutTable()}},
		{"knn-ld", sqlKNNLD, []any{st.setTable("knn_ld", "poi"), st.meta.BucketSeconds, st.loutTable()}},
		{"otm-ea", sqlOTMEA, []any{st.setTable("otm_ea", "poi"), st.meta.BucketSeconds, st.loutTable()}},
		{"otm-ld", sqlOTMLD, []any{st.setTable("otm_ld", "poi"), st.meta.BucketSeconds, st.loutTable()}},
	}
	for _, q := range knn {
		stmt, err := st.prepared(q.format, q.args...)
		if err != nil {
			t.Fatalf("%s: prepare: %v", q.name, err)
		}
		if !stmt.Fused() {
			t.Errorf("%s: statement did not fuse", q.name)
		}
	}

	queryBattery(t, st)
	hits, fallbacks := st.DB.FusedStats()
	if hits == 0 {
		t.Error("query battery recorded no fused executions")
	}
	if fallbacks != 0 {
		t.Errorf("query battery hit %d runtime fallbacks, want 0", fallbacks)
	}
}

func TestEnsureLabelOrder(t *testing.T) {
	// Already ordered: left byte-for-byte intact.
	hubs := []int64{1, 1, 2, 2, 2, 5}
	tds := []int64{3, 7, 0, 0, 9, 4}
	tas := []int64{9, 2, 1, 3, 0, 8}
	wantH := append([]int64(nil), hubs...)
	wantD := append([]int64(nil), tds...)
	wantA := append([]int64(nil), tas...)
	ensureLabelOrder(hubs, tds, tas)
	for i := range hubs {
		if hubs[i] != wantH[i] || tds[i] != wantD[i] || tas[i] != wantA[i] {
			t.Fatalf("sorted input was reordered at %d", i)
		}
	}

	// Random input: sorted lexicographically by (hub, td, ta) afterwards,
	// and the multiset of (hub, td, ta) triples is preserved.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(30)
		h := make([]int64, n)
		d := make([]int64, n)
		a := make([]int64, n)
		type triple struct{ h, d, a int64 }
		var want []triple
		for i := 0; i < n; i++ {
			h[i] = int64(rng.Intn(5))
			d[i] = int64(rng.Intn(10))
			a[i] = int64(rng.Intn(10))
			want = append(want, triple{h[i], d[i], a[i]})
		}
		ensureLabelOrder(h, d, a)
		for i := 1; i < n; i++ {
			if h[i] < h[i-1] ||
				(h[i] == h[i-1] && (d[i] < d[i-1] || (d[i] == d[i-1] && a[i] < a[i-1]))) {
				t.Fatalf("trial %d: not sorted at %d: %v %v %v", trial, i, h, d, a)
			}
		}
		var got []triple
		for i := 0; i < n; i++ {
			got = append(got, triple{h[i], d[i], a[i]})
		}
		less := func(s []triple) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i].h != s[j].h {
					return s[i].h < s[j].h
				}
				if s[i].d != s[j].d {
					return s[i].d < s[j].d
				}
				return s[i].a < s[j].a
			}
		}
		sort.Slice(want, less(want))
		sort.Slice(got, less(got))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: triples not preserved: got %v want %v", trial, got, want)
			}
		}
	}
}
