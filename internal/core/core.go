// Package core implements PTLDB (Public Transportation Labels on the
// DataBase), the paper's primary contribution: TTL hub labels stored in
// relational tables and queried with plain SQL.
//
// A Store wraps one database directory holding, per timetable version (the
// base version uses the paper's plain table names; named versions — paper
// Section 3.1's weekday/weekend sets — carry a __<version> suffix):
//
//   - lout, lin — one row per stop with the augmented label arrays (hubs,
//     tds, tas) sorted by (hub, t_d); primary key v (paper Section 3.1);
//   - per registered target set S: ea_knn_naive_S / ld_knn_naive_S (paper
//     Section 3.2.1, Table 4), knn_ea_S / knn_ld_S (Table 5) and otm_ea_S /
//     otm_ld_S (Table 6);
//   - optionally stops (stop metadata) and paths_out / paths_in (expanded
//     journeys, paper Section 3.1's deployment suggestion);
//   - ptldb_meta — a single-row JSON blob with network metadata, versions
//     and the registered target sets.
//
// Every query method executes one of the paper's SQL Codes 1–4 against the
// embedded engine.
package core

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"

	"ptldb/internal/obs"
	"ptldb/internal/sqldb"
	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/timetable"
	"ptldb/internal/ttl"
)

// DefaultBucketSeconds is the paper's grouping granularity for the knn_* and
// otm_* tables: one hour (Section 3.2.1 discusses the trade-off).
const DefaultBucketSeconds = 3600

// Meta is the store-level metadata persisted in the ptldb_meta table.
type Meta struct {
	Stops         int                     `json:"stops"`
	BucketSeconds int32                   `json:"bucket_seconds"`
	Versions      map[string]*VersionMeta `json:"versions"`
}

// BaseVersion names the timetable version created by Build. Its tables use
// the paper's plain names (lout, lin, knn_ea_<set>, ...); additional
// versions — the paper's weekday/weekend/holiday table sets of Section 3.1 —
// suffix every table with the version name.
const BaseVersion = "base"

// VersionMeta describes one timetable version (e.g. "base", "weekend").
type VersionMeta struct {
	MinTime    timetable.Time           `json:"min_time"`
	MaxTime    timetable.Time           `json:"max_time"`
	TargetSets map[string]TargetSetMeta `json:"target_sets"`
}

// TargetSetMeta describes one registered target set.
type TargetSetMeta struct {
	KMax    int     `json:"kmax"`
	Targets []int32 `json:"targets"`
}

// Result is one kNN or one-to-many answer: a target stop and the optimal
// criterion value (arrival time for EA queries, departure time for LD).
type Result struct {
	Stop timetable.StopID
	When timetable.Time
}

// Store is an open PTLDB database, bound to one timetable version (the base
// version unless Version was used).
type Store struct {
	DB      *sqldb.DB
	meta    Meta
	version string

	// workers is the table-load parallelism of Build/AddVersion/AddTargetSet
	// (0 = GOMAXPROCS).
	workers int

	// Code 1 statements of the bound version, parsed once at Build/Open/
	// Version so steady-state v2v queries never touch the SQL parser.
	v2vEA, v2vLD, v2vSD *sqldb.Stmt

	// traceHook, when non-nil, receives one obs.Trace per successful query
	// method call (see SetTraceHook). Version copies the struct, so views
	// inherit the hook installed before binding.
	traceHook func(obs.Trace)
}

// vm returns the metadata of the bound version.
func (s *Store) vm() *VersionMeta { return s.meta.Versions[s.version] }

// SetBuildWorkers sets the table-load parallelism used by AddVersion and
// AddTargetSet (0 = GOMAXPROCS). Build-time parallelism is configured via
// BuildOptions.Workers instead. Per-table content and on-disk images do not
// depend on the worker count: tables are created serially and each load
// writes only its own table's files.
func (s *Store) SetBuildWorkers(n int) { s.workers = n }

// tableSuffix returns the version suffix of physical table names.
func (s *Store) tableSuffix() string {
	if s.version == BaseVersion {
		return ""
	}
	return "__" + s.version
}

// loutTable and linTable name the label tables of the bound version.
func (s *Store) loutTable() string { return "lout" + s.tableSuffix() }
func (s *Store) linTable() string  { return "lin" + s.tableSuffix() }

// setTable names a per-target-set auxiliary table of the bound version.
func (s *Store) setTable(prefix, set string) string { return prefix + "_" + set + s.tableSuffix() }

// Version returns a view of the store bound to the named timetable version.
func (s *Store) Version(name string) (*Store, error) {
	if _, ok := s.meta.Versions[name]; !ok {
		return nil, invalidf("unknown version %q", name)
	}
	v := *s
	v.version = name
	if err := v.prepareStatements(); err != nil {
		return nil, err
	}
	return &v, nil
}

// Versions lists the available timetable versions.
func (s *Store) Versions() []string {
	out := make([]string, 0, len(s.meta.Versions))
	for v := range s.meta.Versions {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// AddVersion loads a second timetable's labels (e.g. the weekend schedule)
// as a new version: paper Section 3.1's "different versions of the lout and
// lin DB tables, for servicing each different period". The labels must
// cover the same stop set.
func (s *Store) AddVersion(name string, labels *ttl.Labels) error {
	if !setNameRE.MatchString(name) || name == BaseVersion {
		return fmt.Errorf("core: invalid version name %q", name)
	}
	if _, dup := s.meta.Versions[name]; dup {
		return fmt.Errorf("core: version %q already exists", name)
	}
	if labels.NumStops() != s.meta.Stops {
		return fmt.Errorf("core: version has %d stops, store has %d", labels.NumStops(), s.meta.Stops)
	}
	if !labels.Augmented {
		labels = labels.Clone().Augment()
	}
	vm := &VersionMeta{MinTime: timetable.Infinity, MaxTime: timetable.NegInfinity,
		TargetSets: map[string]TargetSetMeta{}}
	if err := loadLabelTables(s.DB, "__"+name, labels, vm, s.workers); err != nil {
		return err
	}
	if vm.MinTime == timetable.Infinity {
		vm.MinTime, vm.MaxTime = 0, 0
	}
	s.meta.Versions[name] = vm
	return s.saveMeta()
}

var setNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// BuildOptions configures Build.
type BuildOptions struct {
	// BucketSeconds is the knn/otm grouping granularity (default one hour).
	BucketSeconds int32
	// Stops, when non-nil, populates a stops(v, name, lat, lon) metadata
	// table so applications can resolve stop names and coordinates with
	// SQL.
	Stops []timetable.Stop
	// Workers bounds the table-load parallelism (0 = GOMAXPROCS). The
	// resulting database is identical for every value.
	Workers int
}

// Build creates the lout and lin tables from TTL labels inside an empty
// database, plus a stops metadata table when a timetable is supplied via
// BuildOptions. The labels are augmented with the paper's dummy tuples if
// they are not already.
func Build(db *sqldb.DB, labels *ttl.Labels, opts BuildOptions) (*Store, error) {
	if opts.BucketSeconds == 0 {
		opts.BucketSeconds = DefaultBucketSeconds
	}
	if opts.BucketSeconds < 0 {
		return nil, fmt.Errorf("core: negative bucket width")
	}
	if !labels.Augmented {
		labels = labels.Clone().Augment()
	}
	base := &VersionMeta{MinTime: timetable.Infinity, MaxTime: timetable.NegInfinity,
		TargetSets: map[string]TargetSetMeta{}}
	s := &Store{
		DB: db,
		meta: Meta{
			Stops:         labels.NumStops(),
			BucketSeconds: opts.BucketSeconds,
			Versions:      map[string]*VersionMeta{BaseVersion: base},
		},
		version: BaseVersion,
		workers: opts.Workers,
	}
	// Tables are created serially (the catalog is shared state), then filled
	// on the worker pool: each load touches only its own table's files, so
	// the resulting database does not depend on the worker count.
	jobs, outRange, inRange, err := labelTableJobs(db, "", labels)
	if err != nil {
		return nil, err
	}
	if opts.Stops != nil {
		stopsTbl, err := db.CreateTable(sqldb.TableDef{
			Name: "stops",
			PK:   []string{"v"},
			Columns: []sqldb.ColumnDef{
				{Name: "v", Type: sqltypes.Int64},
				{Name: "name", Type: sqltypes.Text},
				{Name: "lat", Type: sqltypes.Float64},
				{Name: "lon", Type: sqltypes.Float64},
			},
		})
		if err != nil {
			return nil, err
		}
		stops := opts.Stops
		jobs = append(jobs, func() error { return loadStops(stopsTbl, stops) })
	}
	if err := runJobs(opts.Workers, jobs); err != nil {
		return nil, err
	}
	base.fold(*outRange)
	base.fold(*inRange)
	if base.MinTime == timetable.Infinity {
		base.MinTime, base.MaxTime = 0, 0
	}

	metaTbl, err := db.CreateTable(sqldb.TableDef{
		Name: "ptldb_meta",
		PK:   []string{"id"},
		Columns: []sqldb.ColumnDef{
			{Name: "id", Type: sqltypes.Int64},
			{Name: "payload", Type: sqltypes.Text},
		},
	})
	if err != nil {
		return nil, err
	}
	blob, err := json.Marshal(s.meta)
	if err != nil {
		return nil, err
	}
	if err := metaTbl.Insert(sqltypes.Row{sqltypes.NewInt(0), sqltypes.NewText(string(blob))}); err != nil {
		return nil, err
	}
	if err := s.prepareStatements(); err != nil {
		return nil, err
	}
	return s, nil
}

// timeRange is one load job's private (min, max) fold slot, merged into the
// version metadata after the pool drains — the jobs never share state.
type timeRange struct {
	min, max timetable.Time
}

// fold merges one load job's time range into the version metadata.
func (vm *VersionMeta) fold(r timeRange) {
	if r.min < vm.MinTime {
		vm.MinTime = r.min
	}
	if r.max > vm.MaxTime {
		vm.MaxTime = r.max
	}
}

// labelTableJobs creates one version's lout/lin tables and returns the two
// load jobs plus the time-range slots they fill.
func labelTableJobs(db *sqldb.DB, suffix string, labels *ttl.Labels) (jobs []func() error, out, in *timeRange, err error) {
	def := func(name string) sqldb.TableDef {
		return sqldb.TableDef{
			Name: name,
			PK:   []string{"v"},
			Columns: []sqldb.ColumnDef{
				{Name: "v", Type: sqltypes.Int64},
				{Name: "hubs", Type: sqltypes.IntArray},
				{Name: "tds", Type: sqltypes.IntArray},
				{Name: "tas", Type: sqltypes.IntArray},
			},
		}
	}
	loutTbl, err := db.CreateTable(def("lout" + suffix))
	if err != nil {
		return nil, nil, nil, err
	}
	linTbl, err := db.CreateTable(def("lin" + suffix))
	if err != nil {
		return nil, nil, nil, err
	}
	out, in = &timeRange{}, &timeRange{}
	jobs = []func() error{
		func() error { return loadLabelSide(loutTbl, labels.Out, out) },
		func() error { return loadLabelSide(linTbl, labels.In, in) },
	}
	return jobs, out, in, nil
}

// loadLabelTables creates and fills one version's lout/lin tables on the
// worker pool, folding the label time range into vm.
func loadLabelTables(db *sqldb.DB, suffix string, labels *ttl.Labels, vm *VersionMeta, workers int) error {
	jobs, out, in, err := labelTableJobs(db, suffix, labels)
	if err != nil {
		return err
	}
	if err := runJobs(workers, jobs); err != nil {
		return err
	}
	vm.fold(*out)
	vm.fold(*in)
	return nil
}

// loadLabelSide bulk-loads one label side into its table: the rows are
// already in ascending primary-key (stop id) order, so the index is built
// bottom-up from full pages instead of one descent per row.
func loadLabelSide(tbl *sqldb.Table, side [][]ttl.Tuple, r *timeRange) error {
	r.min, r.max = timetable.Infinity, timetable.NegInfinity
	rows := make([]sqltypes.Row, len(side))
	for v, label := range side {
		hubs := make([]int64, len(label))
		tds := make([]int64, len(label))
		tas := make([]int64, len(label))
		for i, t := range label {
			hubs[i], tds[i], tas[i] = int64(t.Hub), int64(t.Dep), int64(t.Arr)
			if t.Dep < r.min {
				r.min = t.Dep
			}
			if t.Arr > r.max {
				r.max = t.Arr
			}
		}
		// The fused executor's merge join requires hub-sorted labels; verify
		// (and if needed re-establish) the order before the row is frozen.
		ensureLabelOrder(hubs, tds, tas)
		rows[v] = sqltypes.Row{
			sqltypes.NewInt(int64(v)),
			sqltypes.NewIntArray(hubs),
			sqltypes.NewIntArray(tds),
			sqltypes.NewIntArray(tas),
		}
	}
	return tbl.BulkLoad(rows)
}

// loadStops bulk-loads the stops metadata table in ascending id order.
func loadStops(tbl *sqldb.Table, stops []timetable.Stop) error {
	sorted := append([]timetable.Stop(nil), stops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	rows := make([]sqltypes.Row, len(sorted))
	for i, stop := range sorted {
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(stop.ID)),
			sqltypes.NewText(stop.Name),
			sqltypes.NewFloat(stop.Lat),
			sqltypes.NewFloat(stop.Lon),
		}
	}
	return tbl.BulkLoad(rows)
}

// Open attaches to a previously built PTLDB database.
func Open(db *sqldb.DB) (*Store, error) {
	rel, err := db.Query("SELECT payload FROM ptldb_meta WHERE id = 0")
	if err != nil {
		return nil, fmt.Errorf("core: not a PTLDB database: %w", err)
	}
	if len(rel.Rows) != 1 {
		return nil, fmt.Errorf("core: ptldb_meta has %d rows, want 1", len(rel.Rows))
	}
	var meta Meta
	if err := json.Unmarshal([]byte(rel.Rows[0][0].S), &meta); err != nil {
		return nil, fmt.Errorf("core: corrupt meta: %w", err)
	}
	if meta.Versions == nil || meta.Versions[BaseVersion] == nil {
		// Databases written before the multi-version format carried the base
		// version's fields at the top level; migrate them in place.
		var legacy struct {
			MinTime    timetable.Time           `json:"min_time"`
			MaxTime    timetable.Time           `json:"max_time"`
			TargetSets map[string]TargetSetMeta `json:"target_sets"`
		}
		if err := json.Unmarshal([]byte(rel.Rows[0][0].S), &legacy); err != nil {
			return nil, fmt.Errorf("core: corrupt legacy meta: %w", err)
		}
		if legacy.TargetSets == nil {
			legacy.TargetSets = map[string]TargetSetMeta{}
		}
		meta.Versions = map[string]*VersionMeta{BaseVersion: {
			MinTime:    legacy.MinTime,
			MaxTime:    legacy.MaxTime,
			TargetSets: legacy.TargetSets,
		}}
	}
	s := &Store{DB: db, meta: meta, version: BaseVersion}
	if err := s.prepareStatements(); err != nil {
		return nil, err
	}
	return s, nil
}

// Meta returns the store metadata.
func (s *Store) Meta() Meta { return s.meta }

// TargetSet returns the metadata of a target set registered under the bound
// version.
func (s *Store) TargetSet(name string) (TargetSetMeta, bool) {
	ts, ok := s.vm().TargetSets[name]
	return ts, ok
}

// TargetSets returns the target sets of the bound version.
func (s *Store) TargetSets() map[string]TargetSetMeta { return s.vm().TargetSets }

func (s *Store) saveMeta() error {
	blob, err := json.Marshal(s.meta)
	if err != nil {
		return err
	}
	// The meta row is replaced in place via the PK index (the heap is
	// append-only; the stale payload is simply unreferenced).
	tbl, ok := s.DB.Table("ptldb_meta")
	if !ok {
		return fmt.Errorf("core: ptldb_meta table missing")
	}
	return tbl.ReplaceByPK(sqltypes.Row{sqltypes.NewInt(0), sqltypes.NewText(string(blob))})
}

// Stop returns the stored metadata of one stop (requires the stops table).
func (s *Store) Stop(v timetable.StopID) (timetable.Stop, bool, error) {
	tbl, ok := s.DB.Table("stops")
	if !ok {
		return timetable.Stop{}, false, fmt.Errorf("core: stops table not built")
	}
	row, found, err := tbl.LookupPK([]int64{int64(v)})
	if err != nil || !found {
		return timetable.Stop{}, false, err
	}
	return timetable.Stop{
		ID:   timetable.StopID(row[0].I),
		Name: row[1].S,
		Lat:  row[2].F,
		Lon:  row[3].F,
	}, true, nil
}

// hour returns the bucket index of t under the store's bucket width. Floor
// division, matching timetable.Time.Hour and the FLOOR(x/width.0) bucket
// expressions of the condensed SQL: negative timestamps belong to the bucket
// below zero.
func (s *Store) hour(t timetable.Time) int64 {
	return timetable.FloorDiv(int64(t), int64(s.meta.BucketSeconds))
}

// sortedCopy returns targets sorted ascending with duplicates removed.
func sortedCopy(targets []timetable.StopID) []timetable.StopID {
	out := append([]timetable.StopID(nil), targets...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}
