package core

import (
	"math/rand"
	"strings"
	"testing"

	"ptldb/internal/order"
	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/timetable"
)

// tableAccess snapshots the lookup/scan counters of a table.
func tableAccess(t *testing.T, s *Store, name string) (lookups, scans uint64) {
	t.Helper()
	tbl, ok := s.DB.Table(name)
	if !ok {
		t.Fatalf("table %s missing", name)
	}
	return tbl.AccessStats()
}

// TestV2VAccessesExactlyTwoRows machine-checks the paper's Section 3.1
// claim: "for any v2v query, PTLDB needs to access exactly two rows,
// regardless of the sizes of |L_out(s)| and |L_in(g)|".
func TestV2VAccessesExactlyTwoRows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tt := randomTimetable(rng, 20, 400)
	st, _ := newStore(t, tt, order.ByDegree(tt), BuildOptions{})

	outL0, outS0 := tableAccess(t, st, "lout")
	inL0, inS0 := tableAccess(t, st, "lin")
	const n = 50
	for i := 0; i < n; i++ {
		s := timetable.StopID(rng.Intn(20))
		g := timetable.StopID(rng.Intn(20))
		if _, _, err := st.EarliestArrival(s, g, timetable.Time(rng.Intn(80000))); err != nil {
			t.Fatal(err)
		}
	}
	outL1, outS1 := tableAccess(t, st, "lout")
	inL1, inS1 := tableAccess(t, st, "lin")
	if outL1-outL0 != n || inL1-inL0 != n {
		t.Errorf("EA: %d lout + %d lin lookups for %d queries, want %d each",
			outL1-outL0, inL1-inL0, n, n)
	}
	if outS1 != outS0 || inS1 != inS0 {
		t.Errorf("EA queries triggered full label-table scans (%d, %d)", outS1-outS0, inS1-inS0)
	}
}

// TestKNNAccessPattern checks Section 3.2.1's bound: the optimized kNN query
// joins each tuple of L_out(q) with AT MOST one row of the knn table — so
// knn-table lookups per query are bounded by |L_out(q)| — and never scans it.
func TestKNNAccessPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	tt := randomTimetable(rng, 20, 400)
	st, _ := newStore(t, tt, order.ByDegree(tt), BuildOptions{})
	targets := []timetable.StopID{1, 4, 7, 10, 13}
	if err := st.AddTargetSet("poi", targets, 4); err != nil {
		t.Fatal(err)
	}
	lout, _ := st.DB.Table("lout")

	for trial := 0; trial < 30; trial++ {
		q := timetable.StopID(rng.Intn(20))
		tq := timetable.Time(rng.Intn(80000))
		row, found, err := lout.LookupPK([]int64{int64(q)})
		if err != nil || !found {
			t.Fatal(found, err)
		}
		labelSize := uint64(len(row[1].A))

		knnL0, knnS0 := tableAccess(t, st, "knn_ea_poi")
		if _, err := st.EAKNN("poi", q, tq, 4); err != nil {
			t.Fatal(err)
		}
		knnL1, knnS1 := tableAccess(t, st, "knn_ea_poi")
		if got := knnL1 - knnL0; got > labelSize {
			t.Errorf("EA-kNN(%d) did %d knn_ea lookups, label has %d tuples", q, got, labelSize)
		}
		if knnS1 != knnS0 {
			t.Error("optimized kNN scanned the knn table")
		}
	}

	// The naive query, by contrast, must scan its table (that is its cost).
	_, naiveS0 := tableAccess(t, st, "ea_knn_naive_poi")
	if _, err := st.EAKNNNaive("poi", 5, 30000, 4); err != nil {
		t.Fatal(err)
	}
	if _, naiveS1 := tableAccess(t, st, "ea_knn_naive_poi"); naiveS1 != naiveS0+1 {
		t.Errorf("naive kNN scans = %d, want exactly 1 per query", naiveS1-naiveS0)
	}
}

// TestQueryTraces asserts the planner picks the access paths the paper's
// design intends: Code 1 does two point lookups; the optimized kNN joins the
// knn table with an index nested loop; the naive query full-scans its table.
func TestQueryTraces(t *testing.T) {
	st, _ := paperStore(t)
	if err := st.AddTargetSet("poi", []timetable.StopID{4, 6}, 4); err != nil {
		t.Fatal(err)
	}

	_, trace, err := st.DB.QueryTraced(`
WITH outp AS (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta FROM lout WHERE v=$1),
inp AS (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta FROM lin WHERE v=$2)
SELECT MIN(inp.ta) FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td AND outp.td>=$3`,
		intv(1), intv(4), intv(30000))
	if err != nil {
		t.Fatal(err)
	}
	assertTrace(t, trace, "point lookup lout", "point lookup lin", "hash join")

	q := `
WITH n1 AS
  (SELECT v, hub, td, ta FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM lout WHERE v=$1) n1a
   WHERE td >= $2),
 n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta FROM knn_ea_poi n1bb, n1
   WHERE n1bb.hub=n1.hub AND n1bb.dephour=FLOOR(n1.ta/3600))
SELECT COUNT(*) FROM n1b`
	_, trace, err = st.DB.QueryTraced(q, intv(0), intv(30000))
	if err != nil {
		t.Fatal(err)
	}
	assertTrace(t, trace, "point lookup lout", "index nested-loop join n1bb")

	_, trace, err = st.DB.QueryTraced("SELECT COUNT(*) FROM ea_knn_naive_poi")
	if err != nil {
		t.Fatal(err)
	}
	assertTrace(t, trace, "full scan ea_knn_naive_poi")
}

func intv(v int64) sqltypes.Value { return sqltypes.NewInt(v) }

// assertTrace checks each fragment appears in order within the trace.
func assertTrace(t *testing.T, trace []string, fragments ...string) {
	t.Helper()
	i := 0
	for _, frag := range fragments {
		found := false
		for ; i < len(trace); i++ {
			if strings.Contains(trace[i], frag) {
				found = true
				i++
				break
			}
		}
		if !found {
			t.Fatalf("trace lacks %q in order; trace = %v", frag, trace)
		}
	}
}
