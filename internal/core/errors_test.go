package core

import (
	"errors"
	"testing"

	"ptldb/internal/timetable"
)

// buildErrStore materializes the Figure-1 example with one target set, the
// fixture every classification case below queries against.
func buildErrStore(t *testing.T) *Store {
	t.Helper()
	s, _ := paperStore(t)
	if err := s.AddTargetSet("poi", []timetable.StopID{2, 5}, 2); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestInvalidArgumentClassification pins the 400-side of the query surface:
// every caller mistake must wrap ErrInvalidArgument, and well-formed queries
// must not.
func TestInvalidArgumentClassification(t *testing.T) {
	s := buildErrStore(t)
	n := timetable.StopID(s.meta.Stops)

	invalid := []struct {
		name string
		err  func() error
	}{
		{"ea stop out of range", func() error { _, _, err := s.EarliestArrival(n, 0, 0); return err }},
		{"ea negative stop", func() error { _, _, err := s.EarliestArrival(0, -1, 0); return err }},
		{"ld stop out of range", func() error { _, _, err := s.LatestDeparture(0, n+5, 0); return err }},
		{"sd stop out of range", func() error { _, _, err := s.ShortestDuration(n, 0, 0, 86400); return err }},
		{"knn unknown set", func() error { _, err := s.EAKNN("nope", 0, 0, 1); return err }},
		{"knn k too large", func() error { _, err := s.EAKNN("poi", 0, 0, 3); return err }},
		{"knn k zero", func() error { _, err := s.LDKNN("poi", 0, 86400, 0); return err }},
		{"knn naive unknown set", func() error { _, err := s.EAKNNNaive("nope", 0, 0, 1); return err }},
		{"knn stop out of range", func() error { _, err := s.LDKNNNaive("poi", n, 86400, 1); return err }},
		{"otm unknown set", func() error { _, err := s.EAOTM("nope", 0, 0); return err }},
		{"otm stop out of range", func() error { _, err := s.LDOTM("poi", -2, 86400); return err }},
		{"unknown version", func() error { _, err := s.Version("weekend"); return err }},
		{"explain unknown kind", func() error { _, err := s.ExplainPrepared("bogus:poi"); return err }},
		{"explain unknown set", func() error { _, err := s.ExplainPrepared("knn-ea:nope"); return err }},
		{"explain missing set", func() error { _, err := s.ExplainPrepared("otm-ld"); return err }},
	}
	for _, tc := range invalid {
		err := tc.err()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !IsInvalidArgument(err) {
			t.Errorf("%s: %v not classified as invalid argument", tc.name, err)
		}
	}

	valid := []struct {
		name string
		err  func() error
	}{
		{"ea in range", func() error { _, _, err := s.EarliestArrival(0, n-1, 0); return err }},
		{"knn ok", func() error { _, err := s.EAKNN("poi", 1, 0, 2); return err }},
		{"otm ok", func() error { _, err := s.LDOTM("poi", 1, 86400); return err }},
		{"explain ok", func() error { _, err := s.ExplainPrepared("knn-ld:poi"); return err }},
	}
	for _, tc := range valid {
		if err := tc.err(); err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}

	// The sentinel must survive one extra wrap, the shape the serving layer
	// sees after its own annotation.
	wrapped := func() error {
		_, _, err := s.EarliestArrival(n, 0, 0)
		return errors.Join(errors.New("serve: query failed"), err)
	}()
	if !IsInvalidArgument(wrapped) {
		t.Errorf("wrapped invalid-argument error lost its classification: %v", wrapped)
	}
}
