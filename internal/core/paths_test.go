package core

import (
	"math/rand"
	"testing"

	"ptldb/internal/csa"
	"ptldb/internal/order"
	"ptldb/internal/timetable"
)

// validateDBJourney checks a reconstructed itinerary rides real connections
// in temporal order from src to dst arriving exactly at arr.
func validateDBJourney(t *testing.T, tt *timetable.Timetable, j DBJourney, src, dst timetable.StopID, arr timetable.Time) {
	t.Helper()
	if len(j.Stops) == 0 || j.Stops[0] != src || j.Stops[len(j.Stops)-1] != dst {
		t.Fatalf("journey endpoints: %v (want %d ... %d)", j.Stops, src, dst)
	}
	if len(j.Trips) != len(j.Stops)-1 {
		t.Fatalf("journey has %d stops but %d trips", len(j.Stops), len(j.Trips))
	}
	if j.Arr != arr {
		t.Fatalf("journey arrives %v, want %v", j.Arr, arr)
	}
	// Replay the legs on the timetable: each consecutive stop pair must be
	// linked by a connection of the recorded trip, in nondecreasing time.
	clock := timetable.NegInfinity
	for i := 0; i+1 < len(j.Stops); i++ {
		from, to, trip := j.Stops[i], j.Stops[i+1], j.Trips[i]
		found := false
		for _, ci := range tt.Outgoing(from) {
			c := tt.Connection(ci)
			if c.To == to && c.Trip == trip && c.Dep >= clock {
				clock = c.Arr
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("leg %d: no connection %d->%d on trip %d after %v", i, from, to, trip, clock)
		}
	}
	if clock != arr && len(j.Trips) > 0 {
		t.Fatalf("replayed arrival %v, journey claims %v", clock, arr)
	}
}

func TestPathTablesPaperExample(t *testing.T) {
	tt := timetable.PaperExample()
	st, _ := paperStore(t)
	if st.HasPathTables() {
		t.Fatal("path tables exist before build")
	}
	if _, _, err := st.EarliestArrivalJourneyDB(5, 6, 0); err == nil {
		t.Error("journey query without path tables succeeded")
	}
	if err := st.BuildPathTables(tt); err != nil {
		t.Fatal(err)
	}
	if !st.HasPathTables() {
		t.Fatal("path tables missing after build")
	}

	// Full trip-1 ride 5 -> 6 via the center.
	j, ok, err := st.EarliestArrivalJourneyDB(5, 6, 28800)
	if err != nil || !ok {
		t.Fatalf("journey 5->6: %v %v", ok, err)
	}
	validateDBJourney(t, tt, j, 5, 6, 43200)
	if j.Dep != 28800 {
		t.Errorf("journey departs %v, want 28800", j.Dep)
	}

	// Unreachable after the last departure.
	if _, ok, err := st.EarliestArrivalJourneyDB(5, 6, 28801); err != nil || ok {
		t.Errorf("journey after close: %v %v", ok, err)
	}
	// Same-stop journey.
	j, ok, err = st.EarliestArrivalJourneyDB(2, 2, 32400)
	if err != nil || !ok {
		t.Fatalf("same-stop journey: %v %v", ok, err)
	}
	if len(j.Stops) != 1 || j.Stops[0] != 2 {
		t.Errorf("same-stop journey = %+v", j)
	}
}

// TestPathTablesRandom validates database-only journeys against the CSA
// oracle on random networks: same arrival, valid legs.
func TestPathTablesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for iter := 0; iter < 3; iter++ {
		tt := randomTimetable(rng, 12+rng.Intn(8), 150+rng.Intn(100))
		st, _ := newStore(t, tt, order.ByNeighborDegree(tt), BuildOptions{})
		if err := st.BuildPathTables(tt); err != nil {
			t.Fatal(err)
		}
		n := tt.NumStops()
		for trial := 0; trial < 60; trial++ {
			s := timetable.StopID(rng.Intn(n))
			g := timetable.StopID(rng.Intn(n))
			if s == g {
				continue
			}
			tq := timetable.Time(rng.Intn(90000))
			want := csa.EarliestArrival(tt, s, g, tq)
			j, ok, err := st.EarliestArrivalJourneyDB(s, g, tq)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (want < timetable.Infinity) {
				t.Fatalf("journey ok=%v, EA=%v", ok, want)
			}
			if ok {
				validateDBJourney(t, tt, j, s, g, want)
				if j.Dep < tq {
					t.Fatalf("journey departs %v before query time %v", j.Dep, tq)
				}
			}
		}
	}
}
