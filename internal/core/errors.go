package core

// errors.go classifies errors on the query surface. Historically every
// failure came back as an opaque fmt.Errorf, so callers (the serving layer in
// particular) could only string-match to tell a caller mistake from an
// internal failure. Caller mistakes — an out-of-range stop id, an unknown
// target set, version or explain name, a k outside the set's materialized
// range — now wrap ErrInvalidArgument, so errors.Is gives a deterministic
// 400-vs-500 split without touching the error texts.

import (
	"errors"
	"fmt"

	"ptldb/internal/timetable"
)

// ErrInvalidArgument marks errors caused by the caller's arguments rather
// than by the store: test with errors.Is (or IsInvalidArgument). Everything
// not wrapping it is an internal failure.
var ErrInvalidArgument = errors.New("invalid argument")

// IsInvalidArgument reports whether err is a caller mistake on the query
// surface (bad stop id, unknown target set/version/explain name, k out of
// range) as opposed to an internal failure.
func IsInvalidArgument(err error) bool { return errors.Is(err, ErrInvalidArgument) }

// invalidf builds a caller-mistake error: the formatted message with
// ErrInvalidArgument in its wrap chain. Only failure paths call it, so the
// query hot paths stay allocation-free.
func invalidf(format string, a ...any) error {
	return fmt.Errorf("core: "+format+": %w", append(a, ErrInvalidArgument)...)
}

// checkStop validates a query's stop id against the store's stop range.
// Out-of-range ids used to fall through to the label tables and come back as
// an empty answer; classifying them up front lets the server distinguish "no
// journey" from "no such stop".
func (s *Store) checkStop(v timetable.StopID) error {
	if v < 0 || int(v) >= s.meta.Stops {
		return invalidf("stop id %d outside [0, %d)", int64(v), s.meta.Stops)
	}
	return nil
}

// checkSet validates an OTM query's target set and query stop.
func (s *Store) checkSet(set string, q timetable.StopID) error {
	if err := s.checkStop(q); err != nil {
		return err
	}
	if _, ok := s.vm().TargetSets[set]; !ok {
		return invalidf("unknown target set %q", set)
	}
	return nil
}

// checkStops validates every stop id of a v2v query.
func (s *Store) checkStops(src, dst timetable.StopID) error {
	if err := s.checkStop(src); err != nil {
		return err
	}
	return s.checkStop(dst)
}
