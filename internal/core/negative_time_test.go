package core

import (
	"testing"

	"ptldb/internal/sqldb"
	"ptldb/internal/sqldb/storage"
	"ptldb/internal/timetable"
	"ptldb/internal/ttl"
)

// negativeLabels hand-builds a tiny TTL index whose tuples straddle t = 0.
// The timetable.Builder rejects negative departures, but nothing stops a
// caller from loading labels computed against a different epoch (e.g. a
// service day anchored at noon), so the query layer must bucket negative
// timestamps correctly.
//
// Stop 0 is the hub; stop 1 is the query source; stop 2 is the target.
// Out-label of 1 (journeys to the hub) and in-label of 2 (journeys from the
// hub) are chosen so that for t in (-3600, 0) the only valid LD journey is
// the early one: depart -7200, reach the hub at -7000, leave the hub at
// -6900, arrive -6500. The later hub connection arrives at -50 — inside
// hour bucket -1 but after t = -100 — so any bucketing that rounds t toward
// zero wrongly accepts it and reports departure -600.
func negativeLabels() *ttl.Labels {
	l := &ttl.Labels{
		In:    make([][]ttl.Tuple, 3),
		Out:   make([][]ttl.Tuple, 3),
		Ranks: []int32{0, 1, 2},
	}
	l.Out[1] = []ttl.Tuple{
		{Hub: 0, Dep: -7200, Arr: -7000, Pivot: timetable.NoStop, Trip: 1},
		{Hub: 0, Dep: -600, Arr: -550, Pivot: timetable.NoStop, Trip: 2},
	}
	l.In[2] = []ttl.Tuple{
		{Hub: 0, Dep: -6900, Arr: -6500, Pivot: timetable.NoStop, Trip: 3},
		{Hub: 0, Dep: -400, Arr: -50, Pivot: timetable.NoStop, Trip: 4},
	}
	return l.Augment()
}

func negativeStore(t *testing.T, disableFused bool) (*Store, *ttl.Labels) {
	t.Helper()
	labels := negativeLabels()
	db, err := sqldb.Open(t.TempDir(), sqldb.Options{
		Device: storage.RAM, PoolPages: 1024, DisableFusedExec: disableFused,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := Build(db, labels, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddTargetSet("poi", []timetable.StopID{2}, 2); err != nil {
		t.Fatal(err)
	}
	return st, labels
}

// TestKNNNegativeTimeStraddle is the regression test for the Hour()-bucket
// truncation bug: a kNN query whose correct answer straddles the t = 0
// bucket boundary. With truncating division, LD-kNN(1, t=-100) probes hour
// bucket 0 instead of -1 and reports departure -600 (a journey that arrives
// at -50, after t); floor division reports the correct -7200.
func TestKNNNegativeTimeStraddle(t *testing.T) {
	for _, mode := range []struct {
		name         string
		disableFused bool
	}{{"fused", false}, {"general", true}} {
		t.Run(mode.name, func(t *testing.T) {
			st, _ := negativeStore(t, mode.disableFused)

			got, err := st.LDKNN("poi", 1, -100, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0].Stop != 2 || got[0].When != -7200 {
				t.Errorf("LD-kNN(1, t=-100, k=1) = %v, want [(2, -7200)]", got)
			}
			gotOTM, err := st.LDOTM("poi", 1, -100)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotOTM) != 1 || gotOTM[0].Stop != 2 || gotOTM[0].When != -7200 {
				t.Errorf("LD-OTM(1, t=-100) = %v, want [(2, -7200)]", gotOTM)
			}
		})
	}
}

// TestNegativeTimeSweep checks every query code against the label oracles
// across timestamps on both sides of every bucket boundary the hand-built
// index can hit, on both execution paths.
func TestNegativeTimeSweep(t *testing.T) {
	sweep := []timetable.Time{
		-7300, -7201, -7200, -7001, -7000, -6501, -6500, -3601, -3600,
		-601, -600, -101, -100, -51, -50, -1, 0, 1, 3599, 3600,
	}
	for _, mode := range []struct {
		name         string
		disableFused bool
	}{{"fused", false}, {"general", true}} {
		t.Run(mode.name, func(t *testing.T) {
			st, labels := negativeStore(t, mode.disableFused)
			for _, tq := range sweep {
				// Vertex-to-vertex EA and LD.
				wantEA := labels.EarliestArrivalUnified(1, 2, tq)
				gotEA, okEA, err := st.EarliestArrival(1, 2, tq)
				if err != nil {
					t.Fatal(err)
				}
				if okEA != (wantEA < timetable.Infinity) || (okEA && gotEA != wantEA) {
					t.Errorf("EA(1,2,%v) = %v,%v want %v", tq, gotEA, okEA, wantEA)
				}
				wantLD := labels.LatestDepartureUnified(1, 2, tq)
				gotLD, okLD, err := st.LatestDeparture(1, 2, tq)
				if err != nil {
					t.Fatal(err)
				}
				if okLD != (wantLD > timetable.NegInfinity) || (okLD && gotLD != wantLD) {
					t.Errorf("LD(1,2,%v) = %v,%v want %v", tq, gotLD, okLD, wantLD)
				}

				// kNN (condensed and naive) and one-to-many, both directions.
				checkOne := func(desc string, got []Result, err error, want timetable.Time, reachable bool) {
					t.Helper()
					if err != nil {
						t.Fatal(err)
					}
					if !reachable {
						if len(got) != 0 {
							t.Errorf("%s at t=%v = %v, want empty", desc, tq, got)
						}
						return
					}
					if len(got) != 1 || got[0].Stop != 2 || got[0].When != want {
						t.Errorf("%s at t=%v = %v, want [(2, %v)]", desc, tq, got, want)
					}
				}
				eaK, err := st.EAKNN("poi", 1, tq, 1)
				checkOne("EA-kNN", eaK, err, wantEA, wantEA < timetable.Infinity)
				eaN, err := st.EAKNNNaive("poi", 1, tq, 1)
				checkOne("EA-kNN-naive", eaN, err, wantEA, wantEA < timetable.Infinity)
				eaO, err := st.EAOTM("poi", 1, tq)
				checkOne("EA-OTM", eaO, err, wantEA, wantEA < timetable.Infinity)
				ldK, err := st.LDKNN("poi", 1, tq, 1)
				checkOne("LD-kNN", ldK, err, wantLD, wantLD > timetable.NegInfinity)
				ldN, err := st.LDKNNNaive("poi", 1, tq, 1)
				checkOne("LD-kNN-naive", ldN, err, wantLD, wantLD > timetable.NegInfinity)
				ldO, err := st.LDOTM("poi", 1, tq)
				checkOne("LD-OTM", ldO, err, wantLD, wantLD > timetable.NegInfinity)
			}
		})
	}
}
