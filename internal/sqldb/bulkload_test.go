package sqldb

import (
	"testing"

	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/sqldb/storage"
)

// TestTableBulkLoadMatchesInsert bulk-loads a table and checks it row-for-row
// against an Insert-built twin: same scan order, same PK lookups.
func TestTableBulkLoadMatchesInsert(t *testing.T) {
	db := newTestDB(t)
	rows := make([]sqltypes.Row, 0, 900)
	for h := int64(0); h < 30; h++ {
		for d := int64(0); d < 30; d++ {
			rows = append(rows, sqltypes.Row{
				sqltypes.NewInt(h),
				sqltypes.NewInt(d * 10),
				sqltypes.NewIntArray([]int64{h, d, h + d}),
			})
		}
	}

	bulk := mkTable(t, db, "bulk", []string{"h", "d"}, "h", "d", "vs:arr")
	if err := bulk.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	ref := mkTable(t, db, "ref", []string{"h", "d"}, "h", "d", "vs:arr")
	if err := ref.InsertRows(rows); err != nil {
		t.Fatal(err)
	}
	if bulk.RowCount() != ref.RowCount() {
		t.Fatalf("RowCount = %d, want %d", bulk.RowCount(), ref.RowCount())
	}

	var got, want []sqltypes.Row
	collect := func(dst *[]sqltypes.Row) func(sqltypes.Row) error {
		return func(r sqltypes.Row) error {
			cp := make(sqltypes.Row, len(r))
			copy(cp, r)
			*dst = append(*dst, cp)
			return nil
		}
	}
	if err := bulk.Scan(collect(&got)); err != nil {
		t.Fatal(err)
	}
	if err := ref.Scan(collect(&want)); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j].String() != want[i][j].String() {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}

	for _, key := range [][]int64{{0, 0}, {15, 140}, {29, 290}} {
		row, ok, err := bulk.LookupPK(key)
		if err != nil || !ok {
			t.Fatalf("LookupPK(%v) = %v, %v", key, ok, err)
		}
		if row[0].I != key[0] || row[1].I != key[1] {
			t.Fatalf("LookupPK(%v) returned %v", key, row)
		}
	}
	if _, ok, _ := bulk.LookupPK([]int64{30, 0}); ok {
		t.Error("LookupPK on absent key returned ok")
	}
}

// TestTableBulkLoadKeyless checks the keyless fallback keeps insertion order.
func TestTableBulkLoadKeyless(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "plain", nil, "a", "b")
	rows := []sqltypes.Row{ints(3, 30), ints(1, 10), ints(2, 20)}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	var got [][2]int64
	if err := tbl.Scan(func(r sqltypes.Row) error {
		got = append(got, [2]int64{r[0].I, r[1].I})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{3, 30}, {1, 10}, {2, 20}}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

// TestTableBulkLoadCoercesInts checks integer values land in DOUBLE columns
// as floats, matching Insert.
func TestTableBulkLoadCoercesInts(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "coerce", []string{"k"}, "k", "x:float")
	if err := tbl.BulkLoad([]sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(7)},
	}); err != nil {
		t.Fatal(err)
	}
	row, ok, err := tbl.LookupPK([]int64{1})
	if err != nil || !ok {
		t.Fatalf("LookupPK = %v, %v", ok, err)
	}
	if row[1].T != sqltypes.Float64 || row[1].F != 7 {
		t.Fatalf("coerced value = %v", row[1])
	}
}

// TestTableBulkLoadTinyReopen bulk-loads zero-row and one-row tables and
// cycles the database through Close/Open: both tables must come back valid —
// correct counts, working lookups and scans — and still accept inserts.
func TestTableBulkLoadTinyReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Device: storage.RAM, PoolPages: 256}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	empty := mkTable(t, db, "empty", []string{"k"}, "k", "v")
	if err := empty.BulkLoad(nil); err != nil {
		t.Fatalf("BulkLoad(nil): %v", err)
	}
	single := mkTable(t, db, "single", []string{"k"}, "k", "v")
	if err := single.BulkLoad([]sqltypes.Row{ints(7, 70)}); err != nil {
		t.Fatalf("BulkLoad(1 row): %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	empty2, ok := db2.Table("empty")
	if !ok {
		t.Fatal("empty table missing after reopen")
	}
	single2, ok := db2.Table("single")
	if !ok {
		t.Fatal("single table missing after reopen")
	}
	if empty2.RowCount() != 0 || single2.RowCount() != 1 {
		t.Fatalf("RowCounts after reopen = %d, %d; want 0, 1", empty2.RowCount(), single2.RowCount())
	}
	if _, ok, err := empty2.LookupPK([]int64{7}); err != nil || ok {
		t.Fatalf("LookupPK on reopened empty table = %v, %v", ok, err)
	}
	row, ok, err := single2.LookupPK([]int64{7})
	if err != nil || !ok || row[1].I != 70 {
		t.Fatalf("LookupPK on reopened single table = %v, %v, %v", row, ok, err)
	}
	rows := 0
	if err := empty2.Scan(func(sqltypes.Row) error { rows++; return nil }); err != nil {
		t.Fatal(err)
	}
	if rows != 0 {
		t.Fatalf("scan of reopened empty table saw %d rows", rows)
	}
	// Both reopened tables must still be writable.
	for _, tbl := range []*Table{empty2, single2} {
		if err := tbl.Insert(ints(8, 80)); err != nil {
			t.Fatalf("%s: Insert after reopen: %v", tbl.Def().Name, err)
		}
		if row, ok, err := tbl.LookupPK([]int64{8}); err != nil || !ok || row[1].I != 80 {
			t.Fatalf("%s: LookupPK(8) after insert = %v, %v, %v", tbl.Def().Name, row, ok, err)
		}
	}
}

// TestTableBulkLoadErrors: every precondition failure must leave the table
// empty, since validation happens before any row is stored.
func TestTableBulkLoadErrors(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "t", []string{"k"}, "k", "v")

	if err := tbl.BulkLoad([]sqltypes.Row{ints(2, 0), ints(1, 0)}); err == nil {
		t.Error("descending keys accepted")
	}
	if err := tbl.BulkLoad([]sqltypes.Row{ints(1, 0), ints(1, 1)}); err == nil {
		t.Error("duplicate keys accepted")
	}
	if err := tbl.BulkLoad([]sqltypes.Row{ints(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := tbl.BulkLoad([]sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewText("no")},
	}); err == nil {
		t.Error("type mismatch accepted")
	}
	if tbl.RowCount() != 0 {
		t.Fatalf("rejected loads stored %d rows", tbl.RowCount())
	}

	if err := tbl.Insert(ints(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BulkLoad([]sqltypes.Row{ints(2, 20)}); err == nil {
		t.Error("bulk load into non-empty table accepted")
	}
}
