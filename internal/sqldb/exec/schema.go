// Package exec evaluates parsed SQL against a catalog of stored tables.
//
// Execution is materialized: every operator produces a fully computed
// Relation. This mirrors how PostgreSQL 9.x treats the paper's queries —
// CTEs are optimization fences and set-returning functions in the select
// list force materialization — and keeps the engine small and testable. The
// planner recognizes the two access paths PTLDB's schema is designed
// around: primary-key point lookups when the WHERE clause binds every PK
// column to a constant or parameter, and index nested-loop joins when a
// base table's full PK is equality-bound to expressions over the other
// relation of a comma join.
package exec

import (
	"fmt"
	"strings"

	"ptldb/internal/sqldb/sqltypes"
)

// ColID names one output column: an optional qualifier (table alias) and the
// column name. Matching is case-insensitive.
type ColID struct {
	Qual string
	Name string
}

// Schema is an ordered list of column identities.
type Schema []ColID

// Relation is a materialized intermediate or final result.
type Relation struct {
	Schema Schema
	Rows   []sqltypes.Row
}

// Columns returns the bare column names, for presentation.
func (r *Relation) Columns() []string {
	out := make([]string, len(r.Schema))
	for i, c := range r.Schema {
		out[i] = c.Name
	}
	return out
}

// resolve finds the index of a column reference in the schema. An empty
// qualifier matches any column with the name; ambiguity is an error.
func (s Schema) resolve(qual, name string) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qual, qual) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("exec: ambiguous column %q", displayCol(qual, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("exec: unknown column %q", displayCol(qual, name))
	}
	return found, nil
}

func displayCol(qual, name string) string {
	if qual == "" {
		return name
	}
	return qual + "." + name
}

// requalify returns a copy of the schema with every column's qualifier
// replaced (how a derived table's alias renames its output).
func (s Schema) requalify(qual string) Schema {
	out := make(Schema, len(s))
	for i, c := range s {
		out[i] = ColID{Qual: qual, Name: c.Name}
	}
	return out
}
