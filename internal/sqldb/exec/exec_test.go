package exec

import (
	"fmt"
	"strings"
	"testing"

	"ptldb/internal/sqldb/sql"
	"ptldb/internal/sqldb/sqltypes"
)

// memTable is an in-memory Table implementation for executor unit tests.
type memTable struct {
	cols []string
	pk   []int
	rows []sqltypes.Row
}

func (m *memTable) Columns() []string { return m.cols }
func (m *memTable) PKCols() []int     { return m.pk }

func (m *memTable) LookupPK(key []int64) (sqltypes.Row, bool, error) {
	for _, r := range m.rows {
		match := true
		for i, ci := range m.pk {
			if r[ci].T != sqltypes.Int64 || r[ci].I != key[i] {
				match = false
				break
			}
		}
		if match {
			return r, true, nil
		}
	}
	return nil, false, nil
}

func (m *memTable) Scan(fn func(sqltypes.Row) error) error {
	for _, r := range m.rows {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

type memCatalog map[string]*memTable

func (c memCatalog) Table(name string) (Table, bool) {
	t, ok := c[strings.ToLower(name)]
	return t, ok
}

func run(t *testing.T, cat Catalog, q string, params ...sqltypes.Value) *Relation {
	t.Helper()
	sel, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rel, err := Run(sel, cat, params)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rel
}

func testCatalog() memCatalog {
	nums := &memTable{cols: []string{"a", "b"}, pk: []int{0}}
	for i := int64(0); i < 10; i++ {
		nums.rows = append(nums.rows, sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(i * i)})
	}
	return memCatalog{"nums": nums}
}

func TestSchemaResolve(t *testing.T) {
	s := Schema{{Qual: "t", Name: "a"}, {Qual: "u", Name: "b"}, {Qual: "u", Name: "a"}}
	if i, err := s.resolve("t", "a"); err != nil || i != 0 {
		t.Errorf("resolve(t.a) = %d, %v", i, err)
	}
	if i, err := s.resolve("", "b"); err != nil || i != 1 {
		t.Errorf("resolve(b) = %d, %v", i, err)
	}
	if _, err := s.resolve("", "a"); err == nil {
		t.Error("ambiguous column accepted")
	}
	if _, err := s.resolve("t", "zzz"); err == nil {
		t.Error("unknown column accepted")
	}
	// Case-insensitive on both qualifier and name.
	if i, err := s.resolve("U", "B"); err != nil || i != 1 {
		t.Errorf("resolve(U.B) = %d, %v", i, err)
	}
}

func TestRequalify(t *testing.T) {
	s := Schema{{Qual: "x", Name: "a"}, {Qual: "y", Name: "b"}}
	r := s.requalify("z")
	for i, c := range r {
		if c.Qual != "z" || c.Name != s[i].Name {
			t.Errorf("requalify[%d] = %+v", i, c)
		}
	}
	// Original untouched.
	if s[0].Qual != "x" {
		t.Error("requalify mutated input")
	}
}

func TestCompileErrors(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		"SELECT zzz FROM nums",
		"SELECT a FROM nums WHERE zzz = 1",
		"SELECT a FROM nums ORDER BY zzz",
		"SELECT NOSUCHFUNC(a) FROM nums",
		"SELECT MIN(a, b) FROM nums",       // aggregate arity
		"SELECT FLOOR(a, b) FROM nums",     // scalar arity
		"SELECT a FROM nums WHERE a = $1",  // missing param
		"SELECT a FROM nums LIMIT b",       // column ref in LIMIT
		"SELECT a FROM nums WHERE a = 1/0", // runtime arithmetic error
		"SELECT UNNEST(a) + 1 FROM nums",   // non-top-level unnest
	}
	for _, q := range bad {
		sel, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse(%q): %v", q, err)
		}
		if _, err := Run(sel, cat, nil); err == nil {
			t.Errorf("Run(%q) succeeded", q)
		}
	}
}

func TestArithmeticTyping(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, "SELECT 7 / 2, 7.0 / 2, 7 % 3, -(3 - 5)")
	row := rel.Rows[0]
	if row[0].T != sqltypes.Int64 || row[0].I != 3 {
		t.Errorf("7/2 = %v (integer division expected)", row[0])
	}
	if row[1].T != sqltypes.Float64 || row[1].F != 3.5 {
		t.Errorf("7.0/2 = %v", row[1])
	}
	if row[2].I != 1 {
		t.Errorf("7%%3 = %v", row[2])
	}
	if row[3].I != 2 {
		t.Errorf("-(3-5) = %v", row[3])
	}
}

func TestScalarFunctions(t *testing.T) {
	cat := memCatalog{"arrs": {cols: []string{"xs"}, rows: []sqltypes.Row{
		{sqltypes.NewIntArray([]int64{5, 1, 9})},
	}}}
	rel := run(t, cat, `
SELECT ABS(-4), CEIL(2.1), FLOOR(2.9), COALESCE(NULL, NULL, 8),
       LEAST(3, 1, 2), GREATEST(3, 1, 2), CARDINALITY(xs), xs[2]
FROM arrs`)
	want := []int64{4, 3, 2, 8, 1, 3, 3, 1}
	for i, w := range want {
		v := rel.Rows[0][i]
		got, err := v.AsInt()
		if err != nil || got != w {
			t.Errorf("col %d = %v, want %d", i, v, w)
		}
	}
	// Out-of-range subscript is NULL, as in PostgreSQL.
	rel = run(t, cat, "SELECT xs[99], xs[0] FROM arrs")
	if !rel.Rows[0][0].IsNull() || !rel.Rows[0][1].IsNull() {
		t.Errorf("out-of-range subscripts = %v", rel.Rows[0])
	}
}

func TestThreeValuedLogicTruthTable(t *testing.T) {
	cat := testCatalog()
	cases := []struct {
		expr string
		want string // "t", "f" or "n"
	}{
		{"1 = 1 AND NULL", "n"},
		{"1 = 2 AND NULL", "f"},
		{"NULL AND 1 = 2", "f"},
		{"1 = 1 OR NULL", "t"},
		{"NULL OR 1 = 1", "t"},
		{"1 = 2 OR NULL", "n"},
		{"NOT NULL", "n"},
		{"NULL = NULL", "n"},
		{"NULL + 1", "n"},
	}
	for _, c := range cases {
		rel := run(t, cat, fmt.Sprintf("SELECT %s", c.expr))
		v := rel.Rows[0][0]
		got := "n"
		if !v.IsNull() {
			if tr, _ := truth(v); tr {
				got = "t"
			} else {
				got = "f"
			}
		}
		if got != c.want {
			t.Errorf("%s = %q (%v), want %q", c.expr, got, v, c.want)
		}
	}
}

func TestIndexVsScanSameResults(t *testing.T) {
	// The same query answered via the PK access path and via a full scan
	// (no PK) must agree.
	withPK := testCatalog()
	noPK := memCatalog{"nums": {cols: []string{"a", "b"}, rows: withPK["nums"].rows}}
	q := "SELECT b FROM nums WHERE a = 6"
	a := run(t, withPK, q)
	b := run(t, noPK, q)
	if len(a.Rows) != 1 || len(b.Rows) != 1 || a.Rows[0][0].I != b.Rows[0][0].I {
		t.Errorf("index path %v vs scan path %v", a.Rows, b.Rows)
	}
}

func TestCTEShadowsTable(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, "WITH nums AS (SELECT 42 AS a) SELECT a FROM nums")
	if len(rel.Rows) != 1 || rel.Rows[0][0].I != 42 {
		t.Errorf("CTE did not shadow base table: %v", rel.Rows)
	}
}

func TestNestedCTEScopes(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, `
WITH x AS (SELECT 1 AS v),
     y AS (SELECT v + 1 AS v FROM x)
SELECT x.v, y.v FROM x, y`)
	if rel.Rows[0][0].I != 1 || rel.Rows[0][1].I != 2 {
		t.Errorf("nested CTEs = %v", rel.Rows)
	}
}

func TestSumAvgAggregates(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, "SELECT SUM(a), AVG(a) FROM nums")
	if rel.Rows[0][0].I != 45 {
		t.Errorf("SUM = %v", rel.Rows[0][0])
	}
	if rel.Rows[0][1].T != sqltypes.Float64 || rel.Rows[0][1].F != 4.5 {
		t.Errorf("AVG = %v", rel.Rows[0][1])
	}
	// SUM over empty input is NULL; COUNT is 0.
	rel = run(t, cat, "SELECT SUM(a), COUNT(a) FROM nums WHERE a > 100")
	if !rel.Rows[0][0].IsNull() || rel.Rows[0][1].I != 0 {
		t.Errorf("empty SUM/COUNT = %v", rel.Rows[0])
	}
}

func TestOrderByAliasAfterUnnest(t *testing.T) {
	cat := memCatalog{"arrs": {cols: []string{"xs"}, rows: []sqltypes.Row{
		{sqltypes.NewIntArray([]int64{5, 1, 9})},
	}}}
	// After UNNEST, ORDER BY must reference output columns (by alias).
	rel := run(t, cat, "SELECT UNNEST(xs) AS x FROM arrs ORDER BY x DESC")
	var got []int64
	for _, r := range rel.Rows {
		got = append(got, r[0].I)
	}
	if len(got) != 3 || got[0] != 9 || got[1] != 5 || got[2] != 1 {
		t.Errorf("ordered unnest = %v", got)
	}
	// Referencing an input-only column after UNNEST is rejected.
	sel, err := sql.Parse("SELECT UNNEST(xs) AS x FROM arrs ORDER BY xs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sel, cat, nil); err == nil {
		t.Error("ORDER BY on array input column after UNNEST accepted")
	}
}

func TestLimitZero(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, "SELECT a FROM nums LIMIT 0")
	if len(rel.Rows) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(rel.Rows))
	}
}

func TestColumnsHelper(t *testing.T) {
	rel := &Relation{Schema: Schema{{Qual: "t", Name: "a"}, {Name: "b"}}}
	cols := rel.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestUnionPathsDirect(t *testing.T) {
	cat := testCatalog()
	// UNION dedup, UNION ALL, outer ORDER BY and LIMIT over the combined set.
	rel := run(t, cat, `
(SELECT a FROM nums WHERE a < 2) UNION (SELECT a FROM nums WHERE a < 3)
ORDER BY a DESC LIMIT 2`)
	if len(rel.Rows) != 2 || rel.Rows[0][0].I != 2 || rel.Rows[1][0].I != 1 {
		t.Fatalf("union rows = %v", rel.Rows)
	}
	rel = run(t, cat, "SELECT a FROM nums WHERE a = 1 UNION ALL SELECT a FROM nums WHERE a = 1")
	if len(rel.Rows) != 2 {
		t.Fatalf("union all rows = %v", rel.Rows)
	}
	// Arity mismatch is an error.
	sel, _ := sql.Parse("SELECT a, b FROM nums UNION SELECT a FROM nums")
	if _, err := Run(sel, cat, nil); err == nil {
		t.Error("union arity mismatch accepted")
	}
}

func TestRunTraced(t *testing.T) {
	cat := testCatalog()
	sel, err := sql.Parse("SELECT b FROM nums WHERE a = 3")
	if err != nil {
		t.Fatal(err)
	}
	rel, trace, err := RunTraced(sel, cat, nil)
	if err != nil || len(rel.Rows) != 1 {
		t.Fatal(rel, err)
	}
	if len(trace) == 0 || !strings.Contains(trace[0], "point lookup nums") {
		t.Errorf("trace = %v", trace)
	}
}

func TestIndexNestedLoopAndNullKeys(t *testing.T) {
	dim := &memTable{cols: []string{"k", "w"}, pk: []int{0}, rows: []sqltypes.Row{
		{sqltypes.NewInt(10), sqltypes.NewInt(100)},
		{sqltypes.NewInt(20), sqltypes.NewInt(200)},
	}}
	facts := &memTable{cols: []string{"k"}, rows: []sqltypes.Row{
		{sqltypes.NewInt(10)}, {sqltypes.Null}, {sqltypes.NewInt(30)},
	}}
	cat := memCatalog{"dim": dim, "facts": facts}
	// facts has no PK: it scans; dim's PK is bound by facts.k -> index join.
	// NULL keys never match.
	rel := run(t, cat, "SELECT dim.w FROM facts, dim WHERE dim.k = facts.k")
	if len(rel.Rows) != 1 || rel.Rows[0][0].I != 100 {
		t.Fatalf("index join rows = %v", rel.Rows)
	}
	// Hash join with NULL keys (no usable index: join both directions on
	// non-PK columns).
	a := &memTable{cols: []string{"x"}, rows: []sqltypes.Row{
		{sqltypes.NewInt(1)}, {sqltypes.Null},
	}}
	b := &memTable{cols: []string{"x", "y"}, rows: []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(11)},
		{sqltypes.Null, sqltypes.NewInt(99)},
	}}
	cat2 := memCatalog{"a": a, "b": b}
	rel = run(t, cat2, "SELECT b.y FROM a, b WHERE a.x = b.x")
	if len(rel.Rows) != 1 || rel.Rows[0][0].I != 11 {
		t.Fatalf("hash join with NULLs = %v", rel.Rows)
	}
	// Cross product (no equality conjunct).
	rel = run(t, cat2, "SELECT b.y FROM a, b WHERE b.y > 50")
	if len(rel.Rows) != 2 {
		t.Fatalf("cross join rows = %v", rel.Rows)
	}
}

func TestEvalConstRow(t *testing.T) {
	row, err := EvalConstRow([]sql.Expr{
		&sql.IntLit{V: 5},
		&sql.BinaryOp{Op: "+", L: &sql.Param{N: 1}, R: &sql.IntLit{V: 1}},
		&sql.NullLit{},
	}, []sqltypes.Value{sqltypes.NewInt(41)})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != 5 || row[1].I != 42 || !row[2].IsNull() {
		t.Fatalf("row = %v", row)
	}
	if _, err := EvalConstRow([]sql.Expr{&sql.ColumnRef{Column: "x"}}, nil); err == nil {
		t.Error("column ref in const row accepted")
	}
}

func TestIntCmpAllOps(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, "SELECT 1 = 1, 1 <> 2, 1 < 2, 2 <= 2, 3 > 2, 2 >= 3")
	want := []int64{1, 1, 1, 1, 1, 0}
	for i, w := range want {
		if rel.Rows[0][i].I != w {
			t.Errorf("op %d = %v, want %d", i, rel.Rows[0][i], w)
		}
	}
}

func TestStarExpansionVariants(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, "SELECT * FROM nums WHERE a = 1")
	if len(rel.Rows) != 1 || len(rel.Rows[0]) != 2 {
		t.Fatalf("star = %v", rel.Rows)
	}
	rel = run(t, cat, "SELECT n.* FROM nums AS n WHERE n.a = 1")
	if len(rel.Rows[0]) != 2 {
		t.Fatalf("qualified star = %v", rel.Rows)
	}
	sel, _ := sql.Parse("SELECT zz.* FROM nums AS n")
	if _, err := Run(sel, cat, nil); err == nil {
		t.Error("star with unknown qualifier accepted")
	}
}

func TestNegateAndFloatPaths(t *testing.T) {
	cat := testCatalog()
	rel := run(t, cat, "SELECT -2.5, -(1 + 1), 5.0 % 2.0, GREATEST(1.5, 2)")
	if rel.Rows[0][0].F != -2.5 || rel.Rows[0][1].I != -2 || rel.Rows[0][2].F != 1.0 {
		t.Fatalf("row = %v", rel.Rows[0])
	}
	if rel.Rows[0][3].F != 2.0 && rel.Rows[0][3].I != 2 {
		t.Fatalf("GREATEST mixed = %v", rel.Rows[0][3])
	}
	sel, _ := sql.Parse("SELECT -'x'")
	if _, err := Run(sel, cat, nil); err == nil {
		t.Error("negating text accepted")
	}
}
