package exec

// fused_exec.go evaluates a FusedPlan directly over the label tables' typed
// int64 column vectors. Each Run holds all scratch state locally, so a plan
// is safe for concurrent use. Every precondition the recognizer could not
// prove at prepare time — integer parameters, expected table layout,
// non-NULL arrays of matching lengths — is checked here, and a violation
// returns ErrNotFused so the caller falls back to the general executor,
// which reproduces exact general semantics (including errors and the
// NULL-padding behavior of unequal UNNEST lengths).

import (
	"math"
	"sort"
	"strings"

	"ptldb/internal/sqldb/sqltypes"
)

// Run evaluates the fused plan against cat with the given parameters.
func (p *FusedPlan) Run(cat Catalog, params []sqltypes.Value) (*Relation, error) {
	switch {
	case p.v2v != nil:
		return p.runV2V(cat, params)
	case p.knn != nil:
		return p.runKNNNaive(cat, params)
	case p.cond != nil:
		return p.runCondensed(cat, params)
	default:
		return nil, ErrNotFused
	}
}

// fusedInt reads the 1-based parameter n as an integer. Anything else —
// missing, NULL, float, text — bails to the general executor, which owns
// the exact semantics (and error messages) of those cases.
//
// hotpath — allocheck root: parameter decode for every fused code.
func fusedInt(params []sqltypes.Value, n int) (int64, error) {
	if n < 1 || n > len(params) || params[n-1].T != sqltypes.Int64 {
		return 0, ErrNotFused
	}
	return params[n-1].I, nil
}

// label is one stop's hub label as three parallel typed columns.
type label struct {
	hubs, tds, tas []int64
}

// fusedLabel point-looks-up the label of stop v in the named label table,
// decoding through s's reusable buffers when the table supports it. The
// returned arrays stay valid for s's lifetime (the scratch arena is append-
// only). A missing stop yields an empty label; an unexpected table layout
// yields ErrNotFused.
//
// hotpath — allocheck root: the per-query label fetch shared by every fused
// code; it must not allocate beyond the scratch it is handed.
func fusedLabel(cat Catalog, table string, v int64, s *RowScratch) (label, error) {
	tb, ok := cat.Table(table)
	if !ok {
		return label{}, ErrNotFused
	}
	cols := tb.Columns()
	vIdx, hubsIdx, tdsIdx, tasIdx := -1, -1, -1, -1
	for i, c := range cols {
		switch {
		case strings.EqualFold(c, "v"):
			vIdx = i
		case strings.EqualFold(c, "hubs"):
			hubsIdx = i
		case strings.EqualFold(c, "tds"):
			tdsIdx = i
		case strings.EqualFold(c, "tas"):
			tasIdx = i
		}
	}
	if vIdx < 0 || hubsIdx < 0 || tdsIdx < 0 || tasIdx < 0 {
		return label{}, ErrNotFused
	}
	pk := tb.PKCols()
	if len(pk) != 1 || pk[0] != vIdx {
		return label{}, ErrNotFused
	}
	key := [1]int64{v}
	row, found, err := lookupPKScratch(tb, key[:], s)
	if err != nil {
		return label{}, err
	}
	if !found {
		return label{}, nil
	}
	hv, dv, av := row[hubsIdx], row[tdsIdx], row[tasIdx]
	if hv.T != sqltypes.IntArray || dv.T != sqltypes.IntArray || av.T != sqltypes.IntArray ||
		len(hv.A) != len(dv.A) || len(hv.A) != len(av.A) {
		return label{}, ErrNotFused
	}
	return label{hubs: hv.A, tds: dv.A, tas: av.A}, nil
}

// hubSorted reports whether the label is sorted by (hub, td) — the order
// core.ensureLabelOrder establishes at build time, which enables the merge
// join.
//
// hotpath — allocheck root: runs per query over whole labels.
func hubSorted(l label) bool {
	for i := 1; i < len(l.hubs); i++ {
		if l.hubs[i] < l.hubs[i-1] ||
			(l.hubs[i] == l.hubs[i-1] && l.tds[i] < l.tds[i-1]) {
			return false
		}
	}
	return true
}

// runEnd returns the end of the equal-hub run starting at i.
//
// hotpath — allocheck root: inner loop of the merge join.
func runEnd(hubs []int64, i int) int {
	j := i + 1
	for j < len(hubs) && hubs[j] == hubs[i] {
		j++
	}
	return j
}

// --- Code 1: vertex-to-vertex ------------------------------------------------

func (p *FusedPlan) runV2V(cat Catalog, params []sqltypes.Value) (*Relation, error) {
	f := p.v2v
	outV, err := fusedInt(params, f.outVParam)
	if err != nil {
		return nil, err
	}
	inV, err := fusedInt(params, f.inVParam)
	if err != nil {
		return nil, err
	}
	t, err := fusedInt(params, f.tParam)
	if err != nil {
		return nil, err
	}
	var tEnd int64
	if f.op == 'S' {
		tEnd, err = fusedInt(params, f.tEndParam)
		if err != nil {
			return nil, err
		}
	}
	var scratch RowScratch
	out, err := fusedLabel(cat, f.outTable, outV, &scratch)
	if err != nil {
		return nil, err
	}
	in, err := fusedLabel(cat, f.inTable, inV, &scratch)
	if err != nil {
		return nil, err
	}

	const unset = math.MaxInt64
	best := int64(unset)
	hasBest := false
	// merged counts fold calls — label tuple (pairs) reaching the aggregate.
	// The fold closure never escapes runV2V, so the captured counter stays on
	// the stack and the instrumentation costs no allocation.
	merged := uint64(0)
	fold := func(v int64) {
		merged++
		if f.op == 'L' {
			if !hasBest || v > best {
				best, hasBest = v, true
			}
		} else {
			if !hasBest || v < best {
				best, hasBest = v, true
			}
		}
	}

	if hubSorted(out) && hubSorted(in) {
		// Merge join over equal-hub runs. Within a run the in side is sorted
		// by td, so a suffix minimum over its ta column answers "best arrival
		// among connections departing the hub no earlier than x" with one
		// binary search per out tuple.
		var suffix []int64
		i, j := 0, 0
		for i < len(out.hubs) && j < len(in.hubs) {
			switch {
			case out.hubs[i] < in.hubs[j]:
				i = runEnd(out.hubs, i)
			case out.hubs[i] > in.hubs[j]:
				j = runEnd(in.hubs, j)
			default:
				ie, je := runEnd(out.hubs, i), runEnd(in.hubs, j)
				n := je - j
				if cap(suffix) < n+1 {
					suffix = make([]int64, n+1)
				}
				suffix = suffix[:n+1]
				suffix[n] = unset
				for x := n - 1; x >= 0; x-- {
					ta := in.tas[j+x]
					switch f.op {
					case 'L':
						if ta > t {
							ta = unset
						}
					case 'S':
						if ta > tEnd {
							ta = unset
						}
					}
					if ta < suffix[x+1] {
						suffix[x] = ta
					} else {
						suffix[x] = suffix[x+1]
					}
				}
				inTds := in.tds[j:je]
				search := func(outTa int64) int {
					return sort.Search(n, func(x int) bool { return inTds[x] >= outTa })
				}
				switch f.op {
				case 'E':
					for x := i; x < ie; x++ {
						if out.tds[x] < t {
							continue
						}
						if s := suffix[search(out.tas[x])]; s != unset {
							fold(s)
						}
					}
				case 'L':
					// Out tds ascend within the run: the first qualifying
					// tuple from the back is the run's best departure.
					for x := ie - 1; x >= i; x-- {
						if hasBest && out.tds[x] <= best {
							break
						}
						if suffix[search(out.tas[x])] != unset {
							fold(out.tds[x])
							break
						}
					}
				case 'S':
					for x := i; x < ie; x++ {
						if out.tds[x] < t {
							continue
						}
						if s := suffix[search(out.tas[x])]; s != unset {
							fold(s - out.tds[x])
						}
					}
				}
				i, j = ie, je
			}
		}
	} else {
		// Unsorted label (foreign data, or order not re-established): int-
		// keyed hash join with the predicates applied directly.
		byHub := make(map[int64][]int32, len(in.hubs))
		for idx := range in.hubs {
			byHub[in.hubs[idx]] = append(byHub[in.hubs[idx]], int32(idx))
		}
		for x := range out.hubs {
			if f.op != 'L' && out.tds[x] < t {
				continue
			}
			for _, idx := range byHub[out.hubs[x]] {
				if out.tas[x] > in.tds[idx] {
					continue
				}
				switch f.op {
				case 'E':
					fold(in.tas[idx])
				case 'L':
					if in.tas[idx] <= t {
						fold(out.tds[x])
					}
				case 'S':
					if in.tas[idx] <= tEnd {
						fold(in.tas[idx] - out.tds[x])
					}
				}
			}
		}
	}

	if em := execMetrics(cat); em != nil {
		em.TuplesMerged.Add(merged)
	}
	// MIN/MAX with no GROUP BY over empty input yields one NULL row.
	v := sqltypes.Null
	if hasBest {
		v = sqltypes.NewInt(best)
	}
	return &Relation{Schema: p.schema, Rows: []sqltypes.Row{{v}}}, nil
}

// --- shared result shaping ---------------------------------------------------

// kEntry is one (target, aggregate) result of a grouped query.
type kEntry struct {
	v, val int64
}

// topKEntries orders the accumulator by (val, v) — val descending when desc —
// and keeps the first k entries when limited. The bounded variant maintains
// a k-sized heap whose root is the worst kept entry, matching the general
// executor's stable sort + truncate exactly (the (val, v) key is a total
// order, so stability never matters).
func topKEntries(acc map[int64]int64, k int, limited, desc bool) []kEntry {
	less := func(a, b kEntry) bool {
		if a.val != b.val {
			if desc {
				return a.val > b.val
			}
			return a.val < b.val
		}
		return a.v < b.v
	}
	if !limited || k >= len(acc) {
		out := make([]kEntry, 0, len(acc))
		for v, val := range acc {
			out = append(out, kEntry{v, val})
		}
		sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
		return out
	}
	if k <= 0 {
		return nil
	}
	// h[0] is the worst kept entry under less.
	h := make([]kEntry, 0, k)
	worse := func(a, b kEntry) bool { return less(b, a) }
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(h[i], h[parent]) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if r < len(h) && worse(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for v, val := range acc {
		e := kEntry{v, val}
		if len(h) < k {
			h = append(h, e)
			siftUp(len(h) - 1)
		} else if less(e, h[0]) {
			h[0] = e
			siftDown(0)
		}
	}
	sort.Slice(h, func(i, j int) bool { return less(h[i], h[j]) })
	return h
}

func entriesToRows(schema Schema, entries []kEntry) *Relation {
	rows := make([]sqltypes.Row, len(entries))
	for i, e := range entries {
		rows[i] = sqltypes.Row{sqltypes.NewInt(e.v), sqltypes.NewInt(e.val)}
	}
	return &Relation{Schema: schema, Rows: rows}
}

// foldMin folds val into acc[v], keeping the minimum.
//
// hotpath — allocheck root: per-label-entry fold in the kNN scans.
func foldMin(acc map[int64]int64, v, val int64) {
	if cur, ok := acc[v]; !ok || val < cur {
		acc[v] = val
	}
}

// foldMax folds val into acc[v], keeping the maximum.
//
// hotpath — allocheck root: per-label-entry fold in the kNN scans.
func foldMax(acc map[int64]int64, v, val int64) {
	if cur, ok := acc[v]; !ok || val > cur {
		acc[v] = val
	}
}

// --- Code 2: naive kNN -------------------------------------------------------

func (p *FusedPlan) runKNNNaive(cat Catalog, params []sqltypes.Value) (*Relation, error) {
	f := p.knn
	q, err := fusedInt(params, f.qParam)
	if err != nil {
		return nil, err
	}
	t, err := fusedInt(params, f.tParam)
	if err != nil {
		return nil, err
	}
	k64, err := fusedInt(params, f.kParam)
	if err != nil {
		return nil, err
	}
	if k64 < 0 {
		return nil, ErrNotFused // general path owns the negative-LIMIT error
	}
	k := int(k64)
	if k == 0 {
		return &Relation{Schema: p.schema}, nil
	}
	// The scan callbacks below escape through the ScratchTable interface, so
	// a counter they wrote to would be forced onto the heap; instead they
	// capture the metrics pointer (assigned once, captured by value) and add
	// per-row batches directly.
	em := execMetrics(cat)
	// Separate scratches: the label's arrays are retained across the scan
	// below, while the scan recycles its scratch (arena included) per row.
	var lookupScratch, rowScratch RowScratch
	lab, err := fusedLabel(cat, f.lout, q, &lookupScratch)
	if err != nil {
		return nil, err
	}

	tb, ok := cat.Table(f.naive)
	if !ok {
		return nil, ErrNotFused
	}
	cols := tb.Columns()
	hubIdx, tdIdx, vsIdx, tasIdx := -1, -1, -1, -1
	for i, c := range cols {
		switch {
		case strings.EqualFold(c, "hub"):
			hubIdx = i
		case strings.EqualFold(c, "td"):
			tdIdx = i
		case strings.EqualFold(c, "vs"):
			vsIdx = i
		case strings.EqualFold(c, "tas"):
			tasIdx = i
		}
	}
	if hubIdx < 0 || tdIdx < 0 || vsIdx < 0 || tasIdx < 0 {
		return nil, ErrNotFused
	}

	acc := make(map[int64]int64)
	if f.ea {
		// A naive row joins some label tuple iff the label's earliest
		// arrival at the row's hub (among departures >= t) is <= the row's
		// departure; MIN(n2.ta) is independent of which tuple joined.
		minTa := make(map[int64]int64)
		for i := range lab.hubs {
			if lab.tds[i] >= t {
				foldMin(minTa, lab.hubs[i], lab.tas[i])
			}
		}
		if len(minTa) == 0 {
			return &Relation{Schema: p.schema}, nil
		}
		err = scanScratch(tb, &rowScratch, func(row sqltypes.Row) error {
			hv, dv, vv, av := row[hubIdx], row[tdIdx], row[vsIdx], row[tasIdx]
			if hv.T != sqltypes.Int64 || dv.T != sqltypes.Int64 ||
				vv.T != sqltypes.IntArray || av.T != sqltypes.IntArray ||
				len(vv.A) != len(av.A) {
				return ErrNotFused
			}
			if m, ok := minTa[hv.I]; !ok || dv.I < m {
				return nil
			}
			kl := k
			if kl > len(vv.A) {
				kl = len(vv.A)
			}
			for j := 0; j < kl; j++ {
				foldMin(acc, vv.A[j], av.A[j])
			}
			if em != nil {
				em.TuplesMerged.Add(uint64(kl))
			}
			return nil
		})
	} else {
		// LD aggregates MAX(n1.td) over joining label tuples, so build a
		// per-hub prefix-max of td over tuples sorted by ta: the best
		// departure among tuples arriving at the hub by a given time.
		type hubList struct {
			tas, maxTd []int64
		}
		byHub := make(map[int64]*hubList)
		for i := range lab.hubs {
			l := byHub[lab.hubs[i]]
			if l == nil {
				l = &hubList{}
				byHub[lab.hubs[i]] = l
			}
			l.tas = append(l.tas, lab.tas[i])
			l.maxTd = append(l.maxTd, lab.tds[i])
		}
		if len(byHub) == 0 {
			return &Relation{Schema: p.schema}, nil
		}
		for _, l := range byHub {
			sort.Sort(&taTdPairs{l.tas, l.maxTd})
			for i := 1; i < len(l.maxTd); i++ {
				if l.maxTd[i-1] > l.maxTd[i] {
					l.maxTd[i] = l.maxTd[i-1]
				}
			}
		}
		err = scanScratch(tb, &rowScratch, func(row sqltypes.Row) error {
			hv, dv, vv, av := row[hubIdx], row[tdIdx], row[vsIdx], row[tasIdx]
			if hv.T != sqltypes.Int64 || dv.T != sqltypes.Int64 ||
				vv.T != sqltypes.IntArray || av.T != sqltypes.IntArray ||
				len(vv.A) != len(av.A) {
				return ErrNotFused
			}
			l := byHub[hv.I]
			if l == nil {
				return nil
			}
			pos := sort.Search(len(l.tas), func(i int) bool { return l.tas[i] > dv.I })
			if pos == 0 {
				return nil
			}
			maxTd := l.maxTd[pos-1]
			kl := k
			if kl > len(vv.A) {
				kl = len(vv.A)
			}
			folds := uint64(0)
			for j := 0; j < kl; j++ {
				if av.A[j] <= t {
					foldMax(acc, vv.A[j], maxTd)
					folds++
				}
			}
			if em != nil {
				em.TuplesMerged.Add(folds)
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	return entriesToRows(p.schema, topKEntries(acc, k, true, !f.ea)), nil
}

// taTdPairs sorts parallel (ta, td) slices by ta.
type taTdPairs struct {
	tas, tds []int64
}

func (p *taTdPairs) Len() int           { return len(p.tas) }
func (p *taTdPairs) Less(i, j int) bool { return p.tas[i] < p.tas[j] }
func (p *taTdPairs) Swap(i, j int) {
	p.tas[i], p.tas[j] = p.tas[j], p.tas[i]
	p.tds[i], p.tds[j] = p.tds[j], p.tds[i]
}

// --- Codes 3 and 4: condensed kNN and one-to-many ----------------------------

// condRow is one memoized condensed-table lookup: the typed arm arrays, or
// found=false for an absent (hub, bucket) key.
type condRow struct {
	found              bool
	topV, topVal       []int64
	expTd, expV, expTa []int64
}

func (p *FusedPlan) runCondensed(cat Catalog, params []sqltypes.Value) (*Relation, error) {
	f := p.cond
	q, err := fusedInt(params, f.qParam)
	if err != nil {
		return nil, err
	}
	t, err := fusedInt(params, f.tParam)
	if err != nil {
		return nil, err
	}
	k, limited := 0, false
	if f.kParam > 0 {
		k64, err := fusedInt(params, f.kParam)
		if err != nil {
			return nil, err
		}
		if k64 < 0 {
			return nil, ErrNotFused // general path owns the negative-LIMIT error
		}
		k, limited = int(k64), true
		if k == 0 {
			return &Relation{Schema: p.schema}, nil
		}
	}
	// One scratch serves the label and every aux lookup: all retained
	// arrays live in the append-only arena.
	var scratch RowScratch
	lab, err := fusedLabel(cat, f.lout, q, &scratch)
	if err != nil {
		return nil, err
	}

	tb, ok := cat.Table(f.aux)
	if !ok {
		return nil, ErrNotFused
	}
	cols := tb.Columns()
	idxOf := func(name string) int {
		for i, c := range cols {
			if strings.EqualFold(c, name) {
				return i
			}
		}
		return -1
	}
	hubIdx := idxOf("hub")
	bucketIdx := idxOf(f.bucketCol)
	topVIdx := idxOf(f.topV)
	topValIdx := idxOf(f.topVal)
	expTdIdx := idxOf(f.expTd)
	expVIdx := idxOf(f.expV)
	expTaIdx := idxOf(f.expTa)
	if hubIdx < 0 || bucketIdx < 0 || topVIdx < 0 || topValIdx < 0 ||
		expTdIdx < 0 || expVIdx < 0 || expTaIdx < 0 {
		return nil, ErrNotFused
	}
	pk := tb.PKCols()
	if len(pk) != 2 || pk[0] != hubIdx || pk[1] != bucketIdx {
		return nil, ErrNotFused
	}

	cache := make(map[[2]int64]*condRow)
	var keyBuf [2]int64
	lookup := func(hub, bucket int64) (*condRow, error) {
		key := [2]int64{hub, bucket}
		if c, ok := cache[key]; ok {
			return c, nil
		}
		keyBuf = key
		row, found, err := lookupPKScratch(tb, keyBuf[:], &scratch)
		if err != nil {
			return nil, err
		}
		c := &condRow{found: found}
		if found {
			tv, tval := row[topVIdx], row[topValIdx]
			etd, ev, eta := row[expTdIdx], row[expVIdx], row[expTaIdx]
			if tv.T != sqltypes.IntArray || tval.T != sqltypes.IntArray ||
				etd.T != sqltypes.IntArray || ev.T != sqltypes.IntArray ||
				eta.T != sqltypes.IntArray ||
				len(tv.A) != len(tval.A) ||
				len(etd.A) != len(ev.A) || len(etd.A) != len(eta.A) {
				return nil, ErrNotFused
			}
			c.topV, c.topVal = tv.A, tval.A
			c.expTd, c.expV, c.expTa = etd.A, ev.A, eta.A
		}
		cache[key] = c
		return c, nil
	}

	sliceLen := func(n int) int {
		if limited && k < n {
			return k
		}
		return n
	}

	acc := make(map[int64]int64)
	merged := uint64(0) // fold calls: condensed-arm entries reaching acc
	if f.ea {
		// Per label tuple departing >= t: probe (hub, FLOOR(ta/width)),
		// fold the top-k arm unconditionally and the expanded arm where the
		// tuple's arrival reaches the connection's departure. The arms'
		// inner ORDER BY/LIMIT never affect the outer re-grouped top-k.
		for i := range lab.hubs {
			if lab.tds[i] < t {
				continue
			}
			ta := lab.tas[i]
			c, err := lookup(lab.hubs[i], floorDiv(ta, f.width))
			if err != nil {
				return nil, err
			}
			if !c.found {
				continue
			}
			for x := 0; x < sliceLen(len(c.topV)); x++ {
				foldMin(acc, c.topV[x], c.topVal[x])
				merged++
			}
			for x := range c.expTd {
				if ta <= c.expTd[x] {
					foldMin(acc, c.expV[x], c.expTa[x])
					merged++
				}
			}
		}
	} else {
		// LD probes one bucket, FLOOR(t/width), per hub: the top-k arm
		// qualifies connections departing no earlier than the tuple's
		// arrival, the expanded arm additionally bounds the connection's
		// arrival by t; both fold the tuple's departure time.
		bucket := floorDiv(t, f.width)
		for i := range lab.hubs {
			td, ta := lab.tds[i], lab.tas[i]
			c, err := lookup(lab.hubs[i], bucket)
			if err != nil {
				return nil, err
			}
			if !c.found {
				continue
			}
			for x := 0; x < sliceLen(len(c.topV)); x++ {
				if c.topVal[x] >= ta {
					foldMax(acc, c.topV[x], td)
					merged++
				}
			}
			for x := range c.expTd {
				if c.expTd[x] >= ta && c.expTa[x] <= t {
					foldMax(acc, c.expV[x], td)
					merged++
				}
			}
		}
	}
	if em := execMetrics(cat); em != nil {
		em.TuplesMerged.Add(merged)
	}
	return entriesToRows(p.schema, topKEntries(acc, k, limited, !f.ea)), nil
}

// floorDiv returns floor(a/b) for b > 0, matching FLOOR(a/b.0) in the
// condensed SQL: the bucket of a negative timestamp is the one below zero,
// where Go's integer division would truncate toward it.
//
// hotpath — allocheck root: per-entry bucket arithmetic in the condensed scan.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}
