package exec

import "ptldb/internal/sqldb/sqltypes"

// Catalog resolves base-table names for the executor. It is implemented by
// package sqldb.
type Catalog interface {
	// Table returns the table named name (case-insensitive), or false.
	Table(name string) (Table, bool)
}

// Table is the executor's view of one stored table.
type Table interface {
	// Columns returns the column names in storage order.
	Columns() []string
	// PKCols returns the indices of the primary-key columns (at most two,
	// in key order), or nil when the table has no primary key.
	PKCols() []int
	// LookupPK fetches the row with the given PK values.
	LookupPK(key []int64) (sqltypes.Row, bool, error)
	// Scan calls fn for every row in primary-key order.
	Scan(fn func(sqltypes.Row) error) error
}
