package exec

import (
	"ptldb/internal/obs"
	"ptldb/internal/sqldb/sqltypes"
)

// Catalog resolves base-table names for the executor. It is implemented by
// package sqldb.
type Catalog interface {
	// Table returns the table named name (case-insensitive), or false.
	Table(name string) (Table, bool)
}

// MetricsSource is an optional Catalog extension exposing the executor
// counters both execution paths feed (label tuples merged; the storage layer
// feeds rows scanned itself). A catalog without it runs uninstrumented.
type MetricsSource interface {
	ExecMetrics() *obs.ExecMetrics
}

// execMetrics returns cat's executor counters, or nil when cat is not a
// MetricsSource. Callers must nil-check; the assertion itself is one word
// of work per query and never allocates.
func execMetrics(cat Catalog) *obs.ExecMetrics {
	if ms, ok := cat.(MetricsSource); ok {
		return ms.ExecMetrics()
	}
	return nil
}

// Table is the executor's view of one stored table.
type Table interface {
	// Columns returns the column names in storage order.
	Columns() []string
	// PKCols returns the indices of the primary-key columns (at most two,
	// in key order), or nil when the table has no primary key.
	PKCols() []int
	// LookupPK fetches the row with the given PK values.
	LookupPK(key []int64) (sqltypes.Row, bool, error)
	// Scan calls fn for every row in primary-key order.
	Scan(fn func(sqltypes.Row) error) error
}

// RowScratch holds reusable row-decoding buffers for ScratchTable calls.
// A scratch belongs to one query execution; it must not be shared across
// goroutines.
type RowScratch struct {
	Buf   []byte       // encoded-row payload buffer
	Row   sqltypes.Row // decoded value headers
	Arena []int64      // backing store for decoded BIGINT[] values
}

// ScratchTable is an optional Table extension the fused executor uses to
// run the label hot path without per-row allocations.
type ScratchTable interface {
	// LookupPKScratch is LookupPK decoding into s's buffers. The returned
	// row (aliasing s.Row) is only valid until the next call with the same
	// scratch. Array values are carved out of s.Arena, which is append-only
	// for the scratch's lifetime, so they STAY valid across calls — the
	// fused operators retain label arrays for the whole query.
	LookupPKScratch(key []int64, s *RowScratch) (sqltypes.Row, bool, error)
	// ScanScratch is Scan reusing s for every row: the callback row, its
	// arrays and the arena are all recycled between rows, so fn must not
	// retain any of them past its return.
	ScanScratch(s *RowScratch, fn func(sqltypes.Row) error) error
}

// lookupPKScratch uses the scratch fast path when tbl supports it.
func lookupPKScratch(tbl Table, key []int64, s *RowScratch) (sqltypes.Row, bool, error) {
	if st, ok := tbl.(ScratchTable); ok {
		return st.LookupPKScratch(key, s)
	}
	return tbl.LookupPK(key)
}

// scanScratch uses the scratch fast path when tbl supports it.
func scanScratch(tbl Table, s *RowScratch, fn func(sqltypes.Row) error) error {
	if st, ok := tbl.(ScratchTable); ok {
		return st.ScanScratch(s, fn)
	}
	return tbl.Scan(fn)
}
