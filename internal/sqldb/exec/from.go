package exec

import (
	"fmt"
	"strings"

	"ptldb/internal/sqldb/sql"
	"ptldb/internal/sqldb/sqltypes"
)

// buildFrom materializes the FROM clause of a core, choosing access paths:
//
//   - a base table whose full primary key is equality-bound to parameter or
//     literal expressions becomes a point lookup (Code 1's
//     "FROM lout WHERE v=$1" touches exactly one row);
//   - a base table whose full primary key is equality-bound to expressions
//     over the already-joined relations becomes an index nested-loop join
//     (Code 3's join of the n1 CTE with knn_ea);
//   - everything else is materialized (CTE reference, derived subquery or
//     full table scan) and combined with hash joins on whatever equality
//     predicates apply, falling back to a cross product.
//
// All WHERE conjuncts are re-checked by the caller's filter, so access-path
// choices never change results.
func (r *runner) buildFrom(core *sql.SelectCore, scope *cteScope) (rel *Relation, filtered bool, err error) {
	if len(core.From) == 0 {
		return &Relation{Rows: []sqltypes.Row{{}}}, false, nil
	}
	conj := splitConjuncts(core.Where)

	srcs := make([]*source, 0, len(core.From))
	for _, fi := range core.From {
		alias := fi.Alias
		if alias == "" {
			alias = fi.Table
		}
		s := &source{alias: alias}
		switch {
		case fi.Subquery != nil:
			rel, err := r.evalSelect(fi.Subquery, scope)
			if err != nil {
				return nil, false, err
			}
			s.rel = &Relation{Schema: rel.Schema.requalify(alias), Rows: rel.Rows}
		default:
			if rel, ok := scope.lookup(fi.Table); ok {
				s.rel = &Relation{Schema: rel.Schema.requalify(alias), Rows: rel.Rows}
				break
			}
			tbl, ok := r.cat.Table(fi.Table)
			if !ok {
				return nil, false, fmt.Errorf("exec: unknown table %q", fi.Table)
			}
			s.tbl, s.cols = tbl, tbl.Columns()
		}
		srcs = append(srcs, s)
	}

	// Resolve base tables whose PK is bound by row-independent expressions.
	for _, s := range srcs {
		if s.tbl == nil {
			continue
		}
		exprs, ok := pkBindings(s.tbl, s.alias, s.cols, conj, nil)
		if !ok {
			continue
		}
		comps, err := r.compileAll(exprs, nil, nil)
		if err != nil {
			return nil, false, err
		}
		key := make([]int64, len(comps))
		null, err := evalKey(comps, nil, key)
		if err != nil {
			return nil, false, err
		}
		rel := &Relation{Schema: tableSchema(s.alias, s.cols)}
		if !null {
			row, found, err := s.tbl.LookupPK(key)
			if err != nil {
				return nil, false, err
			}
			if found {
				rel.Rows = append(rel.Rows, row)
			}
		}
		r.tracef("point lookup %s by primary key (%d row)", s.alias, len(rel.Rows))
		s.rel, s.tbl = rel, nil
	}

	// Fold the sources into one relation. The full WHERE clause is fused
	// into the final join so that rows failing the filter are never
	// materialized (the paper's Code 1 joins two unnested labels and keeps
	// only a small fraction of the pairs).
	var acc *Relation
	pending := srcs
	for len(pending) > 0 {
		var pred sql.Expr
		if len(pending) == 1 && acc != nil {
			pred = core.Where
		}
		if acc == nil {
			// Seed with the first materialized source, else scan a table.
			picked := -1
			for i, s := range pending {
				if s.rel != nil {
					picked = i
					break
				}
			}
			if picked < 0 {
				picked = 0
				if err := r.scanTable(pending[0]); err != nil {
					return nil, false, err
				}
			}
			acc = pending[picked].rel
			pending = append(pending[:picked:picked], pending[picked+1:]...)
			continue
		}
		// Prefer an index nested-loop join against a still-unmaterialized
		// base table bound by the accumulated columns.
		joined := false
		for i, s := range pending {
			if s.tbl == nil {
				continue
			}
			exprs, ok := pkBindings(s.tbl, s.alias, s.cols, conj, acc.Schema)
			if !ok {
				continue
			}
			next, err := r.indexJoin(acc, s.tbl, s.alias, s.cols, exprs, pred)
			if err != nil {
				return nil, false, err
			}
			r.tracef("index nested-loop join %s (%d probes, %d rows out)", s.alias, len(acc.Rows), len(next.Rows))
			acc = next
			filtered = pred != nil
			pending = append(pending[:i:i], pending[i+1:]...)
			joined = true
			break
		}
		if joined {
			continue
		}
		// Otherwise materialize the next source and hash join.
		s := pending[0]
		pending = pending[1:]
		if s.rel == nil {
			if err := r.scanTable(s); err != nil {
				return nil, false, err
			}
		}
		next, err := r.hashJoin(acc, s.rel, conj, pred)
		if err != nil {
			return nil, false, err
		}
		r.tracef("hash join %s (%d x %d -> %d rows)", s.alias, len(acc.Rows), len(s.rel.Rows), len(next.Rows))
		acc = next
		filtered = pred != nil
	}
	return acc, filtered, nil
}

// source is one FROM item during planning: either already materialized
// (rel) or a pending base table (tbl).
type source struct {
	alias string
	rel   *Relation
	tbl   Table
	cols  []string
}

// scanTable materializes a base table by a full scan.
func (r *runner) scanTable(s *source) error {
	rel := &Relation{Schema: tableSchema(s.alias, s.cols)}
	err := s.tbl.Scan(func(row sqltypes.Row) error {
		rel.Rows = append(rel.Rows, row)
		return nil
	})
	if err != nil {
		return err
	}
	r.tracef("full scan %s (%d rows)", s.alias, len(rel.Rows))
	s.rel, s.tbl = rel, nil
	return nil
}

func tableSchema(alias string, cols []string) Schema {
	s := make(Schema, len(cols))
	for i, c := range cols {
		s[i] = ColID{Qual: alias, Name: c}
	}
	return s
}

// splitConjuncts flattens the AND tree of a WHERE clause.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinaryOp); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// pkBindings looks for equality conjuncts binding every PK column of the
// table (aliased alias, columns cols). A binding expression must reference
// no columns when outer is nil, or only columns of outer otherwise. It
// returns one binding expression per PK column, in key order.
func pkBindings(tbl Table, alias string, cols []string, conj []sql.Expr, outer Schema) ([]sql.Expr, bool) {
	pk := tbl.PKCols()
	if len(pk) == 0 {
		return nil, false
	}
	out := make([]sql.Expr, len(pk))
	for i, ci := range pk {
		name := cols[ci]
		var found sql.Expr
		for _, c := range conj {
			b, ok := c.(*sql.BinaryOp)
			if !ok || b.Op != "=" {
				continue
			}
			for _, side := range [2][2]sql.Expr{{b.L, b.R}, {b.R, b.L}} {
				col, ok := side[0].(*sql.ColumnRef)
				if !ok || !strings.EqualFold(col.Column, name) {
					continue
				}
				if col.Table != "" && !strings.EqualFold(col.Table, alias) {
					continue
				}
				if !exprRefsOnly(side[1], outer) {
					continue
				}
				found = side[1]
				break
			}
			if found != nil {
				break
			}
		}
		if found == nil {
			return nil, false
		}
		out[i] = found
	}
	return out, true
}

// exprRefsOnly reports whether every column reference in e resolves within
// schema (or whether e has no column references when schema is nil).
func exprRefsOnly(e sql.Expr, schema Schema) bool {
	ok := true
	walkExpr(e, func(x sql.Expr) {
		if c, okc := x.(*sql.ColumnRef); okc {
			if schema == nil {
				ok = false
				return
			}
			if _, err := schema.resolve(c.Table, c.Column); err != nil {
				ok = false
			}
		}
	})
	return ok
}

// evalKey evaluates compiled PK binding expressions to integer key values
// into dst. null reports that some component was NULL (no row can match).
func evalKey(comps []compiledExpr, row sqltypes.Row, dst []int64) (null bool, err error) {
	for i, c := range comps {
		v, err := c(row)
		if err != nil {
			return false, err
		}
		if v.IsNull() {
			return true, nil
		}
		k, err := v.AsInt()
		if err != nil {
			return false, fmt.Errorf("exec: non-integer primary-key value: %w", err)
		}
		dst[i] = k
	}
	return false, nil
}

// rowArena hands out row slices from large chunks, cutting the per-row
// allocation count of joins by three orders of magnitude. Emitted rows stay
// valid forever (chunks are never reused).
type rowArena struct {
	chunk []sqltypes.Value
}

const arenaChunk = 16384

func (a *rowArena) alloc(n int) sqltypes.Row {
	if len(a.chunk)+n > cap(a.chunk) {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.chunk = make([]sqltypes.Value, 0, size)
	}
	start := len(a.chunk)
	a.chunk = a.chunk[:start+n]
	return a.chunk[start : start+n : start+n]
}

// concat places the concatenation of two rows in the arena.
func (a *rowArena) concat(x, y sqltypes.Row) sqltypes.Row {
	out := a.alloc(len(x) + len(y))
	copy(out, x)
	copy(out[len(x):], y)
	return out
}

// indexJoin performs the index nested-loop join of acc with a base table:
// for each accumulated row the binding expressions are evaluated and the
// matching table row (if any) appended.
func (r *runner) indexJoin(acc *Relation, tbl Table, alias string, cols []string, exprs []sql.Expr, pred sql.Expr) (*Relation, error) {
	comps, err := r.compileAll(exprs, acc.Schema, nil)
	if err != nil {
		return nil, err
	}
	out := &Relation{Schema: append(append(Schema{}, acc.Schema...), tableSchema(alias, cols)...)}
	keep, err := r.compilePred(pred, out.Schema)
	if err != nil {
		return nil, err
	}
	var arena rowArena
	key := make([]int64, len(comps))
	scratch := make(sqltypes.Row, len(out.Schema))
	for _, arow := range acc.Rows {
		null, err := evalKey(comps, arow, key)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		trow, found, err := tbl.LookupPK(key)
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		if keep != nil {
			copy(scratch, arow)
			copy(scratch[len(arow):], trow)
			ok, err := keep(scratch)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out.Rows = append(out.Rows, arena.concat(arow, trow))
	}
	return out, nil
}

// compilePred compiles a fused filter; nil pred compiles to nil.
func (r *runner) compilePred(pred sql.Expr, schema Schema) (func(sqltypes.Row) (bool, error), error) {
	if pred == nil {
		return nil, nil
	}
	ce := &compileEnv{schema: schema, params: r.params}
	c, err := ce.compile(pred)
	if err != nil {
		return nil, err
	}
	return func(row sqltypes.Row) (bool, error) {
		v, err := c(row)
		if err != nil {
			return false, err
		}
		t, null := truth(v)
		return t && !null, nil
	}, nil
}

// hashJoin joins two materialized relations on the equality conjuncts whose
// sides split across them, degenerating to a cross product when none apply.
// A non-nil pred (the residual WHERE) filters joined rows before they are
// materialized — the paper's Code 1 joins two unnested labels and keeps
// only a small fraction of the pairs. Single integer join keys (the common
// case: every PTLDB join matches on the hub column) skip the generic
// encoded-key path.
func (r *runner) hashJoin(a, b *Relation, conj []sql.Expr, pred sql.Expr) (*Relation, error) {
	var aExprs, bExprs []sql.Expr
	for _, c := range conj {
		bo, ok := c.(*sql.BinaryOp)
		if !ok || bo.Op != "=" {
			continue
		}
		switch {
		case exprRefsOnly(bo.L, a.Schema) && exprRefsOnly(bo.R, b.Schema) && !isConstant(bo.L) && !isConstant(bo.R):
			aExprs = append(aExprs, bo.L)
			bExprs = append(bExprs, bo.R)
		case exprRefsOnly(bo.R, a.Schema) && exprRefsOnly(bo.L, b.Schema) && !isConstant(bo.L) && !isConstant(bo.R):
			aExprs = append(aExprs, bo.R)
			bExprs = append(bExprs, bo.L)
		}
	}
	out := &Relation{Schema: append(append(Schema{}, a.Schema...), b.Schema...)}
	keep, err := r.compilePred(pred, out.Schema)
	if err != nil {
		return nil, err
	}
	var arena rowArena
	scratch := make(sqltypes.Row, len(out.Schema))
	emit := func(ar, br sqltypes.Row) error {
		if keep != nil {
			copy(scratch, ar)
			copy(scratch[len(ar):], br)
			ok, err := keep(scratch)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		out.Rows = append(out.Rows, arena.concat(ar, br))
		return nil
	}

	if len(aExprs) == 0 {
		for _, ar := range a.Rows {
			for _, br := range b.Rows {
				if err := emit(ar, br); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	aComps, err := r.compileAll(aExprs, a.Schema, nil)
	if err != nil {
		return nil, err
	}
	bComps, err := r.compileAll(bExprs, b.Schema, nil)
	if err != nil {
		return nil, err
	}

	if len(aComps) == 1 {
		// Fast path: a single key hashed as int64 when every value on both
		// sides is a BIGINT (NULLs never match). A non-integer key value
		// falls back to the generic encoded-key join.
		done, err := r.intHashJoin(a, b, aComps[0], bComps[0], emit)
		if err != nil {
			return nil, err
		}
		if done {
			return out, nil
		}
		out.Rows = out.Rows[:0]
	}

	index := make(map[string][]sqltypes.Row, len(b.Rows))
	key := make(sqltypes.Row, len(bComps))
	var keyBuf []byte
	encodeKey := func(comps []compiledExpr, row sqltypes.Row) (string, bool, error) {
		for i, c := range comps {
			v, err := c(row)
			if err != nil {
				return "", false, err
			}
			if v.IsNull() {
				return "", true, nil // SQL equality never matches NULL
			}
			key[i] = v
		}
		keyBuf = sqltypes.EncodeRow(keyBuf[:0], key)
		return string(keyBuf), false, nil
	}
	for _, br := range b.Rows {
		k, null, err := encodeKey(bComps, br)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		index[k] = append(index[k], br)
	}
	for _, ar := range a.Rows {
		k, null, err := encodeKey(aComps, ar)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		for _, br := range index[k] {
			if err := emit(ar, br); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// intHashJoin is the integer-keyed single-column hash join. It reports
// done=false (without error) when a key value is not a BIGINT, in which case
// the caller must fall back to the generic join; rows emitted before the
// fallback must be discarded by the caller.
func (r *runner) intHashJoin(a, b *Relation, aKey, bKey compiledExpr, emit func(ar, br sqltypes.Row) error) (bool, error) {
	index := make(map[int64][]sqltypes.Row, len(b.Rows))
	for _, br := range b.Rows {
		v, err := bKey(br)
		if err != nil {
			return false, err
		}
		if v.IsNull() {
			continue
		}
		if v.T != sqltypes.Int64 {
			return false, nil
		}
		index[v.I] = append(index[v.I], br)
	}
	for _, ar := range a.Rows {
		v, err := aKey(ar)
		if err != nil {
			return false, err
		}
		if v.IsNull() {
			continue
		}
		if v.T != sqltypes.Int64 {
			return false, nil
		}
		for _, br := range index[v.I] {
			if err := emit(ar, br); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}

// isConstant reports whether e contains no column references.
func isConstant(e sql.Expr) bool { return exprRefsOnly(e, nil) }
