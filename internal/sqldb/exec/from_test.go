package exec

import (
	"fmt"
	"testing"

	"ptldb/internal/sqldb/sqltypes"
)

// colKey returns a compiledExpr projecting column i.
func colKey(i int) compiledExpr {
	return func(row sqltypes.Row) (sqltypes.Value, error) { return row[i], nil }
}

func oneColRel(name string, vals ...sqltypes.Value) *Relation {
	rel := &Relation{Schema: Schema{{Name: name}}}
	for _, v := range vals {
		rel.Rows = append(rel.Rows, sqltypes.Row{v})
	}
	return rel
}

func TestIntHashJoinBasic(t *testing.T) {
	r := &runner{}
	a := oneColRel("x",
		sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.Value{}, sqltypes.NewInt(2))
	b := oneColRel("y",
		sqltypes.NewInt(2), sqltypes.NewInt(2), sqltypes.NewInt(3), sqltypes.Value{})

	var pairs [][2]int64
	done, err := r.intHashJoin(a, b, colKey(0), colKey(0), func(ar, br sqltypes.Row) error {
		pairs = append(pairs, [2]int64{ar[0].I, br[0].I})
		return nil
	})
	if err != nil || !done {
		t.Fatalf("intHashJoin: done=%v err=%v, want done on all-int keys", done, err)
	}
	// Both NULL keys are skipped; each a-row with key 2 matches both b-rows
	// with key 2, in b insertion order.
	want := [][2]int64{{2, 2}, {2, 2}, {2, 2}, {2, 2}}
	if fmt.Sprint(pairs) != fmt.Sprint(want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
}

func TestIntHashJoinMixedTypeBailout(t *testing.T) {
	r := &runner{}
	ints := oneColRel("x", sqltypes.NewInt(1), sqltypes.NewInt(2))

	// Non-integer key on the build (b) side: bail before emitting anything.
	bMixed := oneColRel("y", sqltypes.NewInt(1), sqltypes.NewText("oops"))
	emitted := 0
	done, err := r.intHashJoin(ints, bMixed, colKey(0), colKey(0), func(ar, br sqltypes.Row) error {
		emitted++
		return nil
	})
	if err != nil || done {
		t.Fatalf("build-side bailout: done=%v err=%v, want done=false", done, err)
	}
	if emitted != 0 {
		t.Fatalf("build-side bailout emitted %d rows, want 0", emitted)
	}

	// Non-integer key on the probe (a) side: the fast path may already have
	// emitted earlier matches before bailing, so the caller must reset.
	aMixed := oneColRel("x", sqltypes.NewInt(1), sqltypes.NewText("oops"), sqltypes.NewInt(2))
	emitted = 0
	done, err = r.intHashJoin(aMixed, ints, colKey(0), colKey(0), func(ar, br sqltypes.Row) error {
		emitted++
		return nil
	})
	if err != nil || done {
		t.Fatalf("probe-side bailout: done=%v err=%v, want done=false", done, err)
	}
	if emitted != 1 {
		t.Fatalf("probe-side bailout emitted %d rows, want the 1 pre-bailout match", emitted)
	}
}

// TestHashJoinMixedKeyNoDuplicates drives the bailout through the SQL layer:
// when intHashJoin gives up mid-probe, hashJoin must discard the partially
// emitted rows before the generic encoded-key join re-runs, or matches
// preceding the bailout would appear twice.
func TestHashJoinMixedKeyNoDuplicates(t *testing.T) {
	left := &memTable{cols: []string{"k", "v"}, rows: []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(10)},
		{sqltypes.NewText("x"), sqltypes.NewInt(20)},
		{sqltypes.NewInt(2), sqltypes.NewInt(30)},
	}}
	right := &memTable{cols: []string{"k", "w"}, rows: []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(100)},
		{sqltypes.NewInt(2), sqltypes.NewInt(200)},
	}}
	cat := memCatalog{"lhs": left, "rhs": right}
	rel := run(t, cat,
		"SELECT lhs.v, rhs.w FROM lhs, rhs WHERE lhs.k=rhs.k ORDER BY lhs.v")
	want := [][2]int64{{10, 100}, {30, 200}}
	if len(rel.Rows) != len(want) {
		t.Fatalf("got %d rows (%v), want %d", len(rel.Rows), rel.Rows, len(want))
	}
	for i, w := range want {
		if rel.Rows[i][0].I != w[0] || rel.Rows[i][1].I != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rel.Rows[i], w)
		}
	}
}
