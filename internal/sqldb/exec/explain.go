package exec

// explain.go renders a FusedPlan as a human-readable operator tree — the
// EXPLAIN counterpart of fused_exec.go. The output is deterministic (plans
// are immutable after Fuse), so tests pin it with golden strings.

import (
	"fmt"
	"strings"

	"ptldb/internal/sqldb/sql"
)

// Explain renders the fused operator tree: one line per operator, children
// indented under their parent, parameters shown as $n exactly as they were
// bound in the recognized SQL. The rendering reflects how fused_exec.go
// evaluates the plan, not the SQL's syntactic join order.
func (p *FusedPlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FusedPlan %s\n", p.kind)
	switch {
	case p.v2v != nil:
		p.explainV2V(&b)
	case p.knn != nil:
		p.explainKNNNaive(&b)
	case p.cond != nil:
		p.explainCondensed(&b)
	}
	return b.String()
}

// Access-path operator names: vector-cached handles resolve labels from
// resident decoded column vectors, segment-backed ones through the columnar
// segment (directory binary search + payload pages), heap-backed ones through
// the B+tree/heap pair. The operator semantics are identical; the name
// records which storage tier serves the rows (the Vector* names describe the
// warm steady state — a cold or evicted table still falls through to the
// segment at runtime).
func (p *FusedPlan) lookupOp() string {
	if p.vectors {
		return "VectorLookup"
	}
	if p.segments {
		return "SegmentLookup"
	}
	return "LabelLookup"
}

func (p *FusedPlan) scanOp() string {
	if p.vectors {
		return "VectorScan"
	}
	if p.segments {
		return "SegmentScan"
	}
	return "TableScan"
}

func (p *FusedPlan) probeOp() string {
	if p.vectors {
		return "VectorProbe"
	}
	if p.segments {
		return "SegmentProbe"
	}
	return "BucketProbe"
}

func (p *FusedPlan) explainV2V(b *strings.Builder) {
	f := p.v2v
	switch f.op {
	case 'E':
		fmt.Fprintf(b, "└─ Aggregate MIN(in.ta)\n")
	case 'L':
		fmt.Fprintf(b, "└─ Aggregate MAX(out.td)\n")
	case 'S':
		fmt.Fprintf(b, "└─ Aggregate MIN(in.ta - out.td)\n")
	}
	fmt.Fprintf(b, "   └─ MergeJoin out.hub = in.hub, reach out.ta <= in.td\n")
	outFilter, inFilter := "", ""
	switch f.op {
	case 'E':
		outFilter = fmt.Sprintf(", td >= $%d", f.tParam)
	case 'L':
		inFilter = fmt.Sprintf(", ta <= $%d", f.tParam)
	case 'S':
		outFilter = fmt.Sprintf(", td >= $%d", f.tParam)
		inFilter = fmt.Sprintf(", ta <= $%d", f.tEndParam)
	}
	fmt.Fprintf(b, "      ├─ %s %s [v = $%d%s]\n", p.lookupOp(), f.outTable, f.outVParam, outFilter)
	fmt.Fprintf(b, "      └─ %s %s [v = $%d%s]\n", p.lookupOp(), f.inTable, f.inVParam, inFilter)
}

func (p *FusedPlan) explainKNNNaive(b *strings.Builder) {
	f := p.knn
	agg, order := "MIN(n2.ta)", "asc"
	if !f.ea {
		agg, order = "MAX(n1.td)", "desc"
	}
	fmt.Fprintf(b, "└─ TopK k = $%d by %s %s, v2\n", f.kParam, agg, order)
	fmt.Fprintf(b, "   └─ GroupFold %s per target\n", agg)
	fmt.Fprintf(b, "      └─ HashJoin n1.hub = n2.hub, reach n1.ta <= n2.td\n")
	labFilter := ""
	scanFilter := ""
	if f.ea {
		labFilter = fmt.Sprintf(", td >= $%d", f.tParam)
	} else {
		scanFilter = fmt.Sprintf(", ta <= $%d", f.tParam)
	}
	fmt.Fprintf(b, "         ├─ %s %s [v = $%d%s]\n", p.lookupOp(), f.lout, f.qParam, labFilter)
	fmt.Fprintf(b, "         └─ %s %s [vs[1:$%d], tas[1:$%d]%s]\n",
		p.scanOp(), f.naive, f.kParam, f.kParam, scanFilter)
}

func (p *FusedPlan) explainCondensed(b *strings.Builder) {
	f := p.cond
	agg, order := "MIN(ta)", "asc"
	if !f.ea {
		agg, order = "MAX(td)", "desc"
	}
	if f.kParam > 0 {
		fmt.Fprintf(b, "└─ TopK k = $%d by %s %s, v2\n", f.kParam, agg, order)
	} else {
		fmt.Fprintf(b, "└─ Sort by %s %s, v2\n", agg, order)
	}
	fmt.Fprintf(b, "   └─ GroupFold %s per target\n", agg)
	bucketSrc := "n1.ta"
	if !f.ea {
		bucketSrc = fmt.Sprintf("$%d", f.tParam)
	}
	fmt.Fprintf(b, "      └─ %s %s [hub = n1.hub, %s = FLOOR(%s / %d)]\n",
		p.probeOp(), f.aux, f.bucketCol, bucketSrc, f.width)
	slice := ""
	if f.kParam > 0 {
		slice = fmt.Sprintf("[1:$%d]", f.kParam)
	}
	if f.ea {
		fmt.Fprintf(b, "         ├─ Arm top-k: fold %s%s/%s%s\n", f.topV, slice, f.topVal, slice)
		fmt.Fprintf(b, "         ├─ Arm expanded: fold %s/%s where n1.ta <= %s\n",
			f.expV, f.expTa, f.expTd)
	} else {
		fmt.Fprintf(b, "         ├─ Arm top-k: fold %s%s where %s%s >= n1.ta\n",
			f.topV, slice, f.topVal, slice)
		fmt.Fprintf(b, "         ├─ Arm expanded: fold %s where %s >= n1.ta and %s <= $%d\n",
			f.expV, f.expTd, f.expTa, f.tParam)
	}
	labFilter := ""
	if f.ea {
		labFilter = fmt.Sprintf(", td >= $%d", f.tParam)
	}
	fmt.Fprintf(b, "         └─ %s %s [v = $%d%s]\n", p.lookupOp(), f.lout, f.qParam, labFilter)
}

// ExplainSelect renders the structural shape of a statement the general
// executor will run: the CTE chain, compound arms, source tables, and the
// grouping/ordering clauses. It does not execute anything — the runtime
// access-path decisions (point lookup vs. scan) appear in RunTraced instead.
func ExplainSelect(sel *sql.Select) string {
	var b strings.Builder
	b.WriteString("GeneralPlan\n")
	explainSelect(&b, sel, "")
	return b.String()
}

func explainSelect(b *strings.Builder, sel *sql.Select, indent string) {
	if sel == nil {
		return
	}
	for _, cte := range sel.With {
		fmt.Fprintf(b, "%s├─ CTE %s\n", indent, cte.Name)
		explainSelect(b, cte.Query, indent+"│  ")
	}
	if sel.Core == nil {
		fmt.Fprintf(b, "%s└─ Union of %d arms\n", indent, len(sel.Arms))
		for _, arm := range sel.Arms {
			explainSelect(b, arm, indent+"   ")
		}
		explainTail(b, sel, indent+"   ")
		return
	}
	c := sel.Core
	var from []string
	for _, fi := range c.From {
		switch {
		case fi.Subquery != nil && fi.Alias != "":
			from = append(from, "("+"subquery"+") "+fi.Alias)
		case fi.Alias != "":
			from = append(from, fi.Table+" "+fi.Alias)
		default:
			from = append(from, fi.Table)
		}
	}
	clauses := []string{fmt.Sprintf("items=%d", len(c.Items))}
	if c.Where != nil {
		clauses = append(clauses, "where")
	}
	if len(c.GroupBy) > 0 {
		clauses = append(clauses, fmt.Sprintf("group=%d", len(c.GroupBy)))
	}
	if c.Having != nil {
		clauses = append(clauses, "having")
	}
	fmt.Fprintf(b, "%s└─ Select [%s] from %s\n", indent, strings.Join(clauses, " "), strings.Join(from, ", "))
	for _, fi := range c.From {
		if fi.Subquery != nil {
			explainSelect(b, fi.Subquery, indent+"   ")
		}
	}
	explainTail(b, sel, indent+"   ")
}

// explainTail renders the statement-level ORDER BY / LIMIT markers.
func explainTail(b *strings.Builder, sel *sql.Select, indent string) {
	if len(sel.OrderBy) > 0 {
		fmt.Fprintf(b, "%s└─ OrderBy %d keys\n", indent, len(sel.OrderBy))
	}
	if sel.Limit != nil {
		fmt.Fprintf(b, "%s└─ Limit\n", indent)
	}
}
