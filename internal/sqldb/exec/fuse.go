package exec

// fuse.go is the pattern recognizer of the fused execution path. It detects
// the paper's Codes 1-4 query skeleton — UNNEST(label arrays), equi-join on
// hub, filter, MIN/MAX aggregate, optionally GROUP BY v2 with ORDER BY and
// LIMIT k — in a parsed statement and compiles it into a FusedPlan that
// fused_exec.go evaluates directly over the typed int64 column vectors, with
// no per-element boxing and no intermediate Relation materialization.
//
// Recognition is strictly structural: every clause of the statement must
// destructure exactly into the recognized template, otherwise Fuse returns
// nil and the statement runs on the general executor. The general executor
// also remains the runtime fallback — FusedPlan.Run returns ErrNotFused
// whenever a precondition that cannot be checked at prepare time fails
// (non-integer parameters, unexpected table layout, NULL label arrays), and
// the caller re-runs the statement on the general path, which reproduces
// exact general semantics including errors.

import (
	"errors"
	"math"
	"strings"

	"ptldb/internal/sqldb/sql"
)

// ErrNotFused reports that a runtime precondition of the fused path does not
// hold and the caller must fall back to the general executor.
var ErrNotFused = errors.New("exec: not eligible for fused execution")

// FusedPlan is a compiled fast path for one recognized label-query shape.
// Plans are immutable after Fuse (SetSegments is called once by Prepare
// before the plan is published) and safe for concurrent Run calls.
type FusedPlan struct {
	kind     string
	schema   Schema
	maxParam int

	// segments records whether the owning handle reads label tables through
	// columnar segments. It only affects Explain — the runtime dispatch lives
	// inside the storage layer's ScratchTable implementation, which this
	// package reaches through the same interface either way.
	segments bool
	// vectors records whether the handle additionally serves segmented tables
	// from the resident vector cache. Like segments, Explain-only.
	vectors bool

	v2v  *fusedV2V
	knn  *fusedKNNNaive
	cond *fusedCondensed
}

// Kind names the recognized shape ("v2v-ea", "knn-naive-ld", "cond-otm-ea",
// ...) for tests and diagnostics.
func (p *FusedPlan) Kind() string { return p.kind }

// SetSegments records whether label reads are served from columnar segments,
// so Explain renders the matching access-path operators. Called once at
// prepare time, before the plan is shared.
func (p *FusedPlan) SetSegments(on bool) { p.segments = on }

// SetVectorCache records whether the resident vector cache fronts the
// segments, so Explain renders the Vector* access-path operators. Called once
// at prepare time, before the plan is shared.
func (p *FusedPlan) SetVectorCache(on bool) { p.vectors = on }

// fusedV2V is Code 1: join of one lout and one lin label, MIN/MAX scalar.
type fusedV2V struct {
	op        byte // 'E' (EA), 'L' (LD), 'S' (SD)
	outTable  string
	inTable   string
	outVParam int
	inVParam  int
	tParam    int // departure bound (EA/SD) or arrival bound (LD)
	tEndParam int // SD only: arrival bound
}

// fusedKNNNaive is Code 2: lout label joined with a scan of the naive
// per-(hub, td) table, grouped by target.
type fusedKNNNaive struct {
	ea     bool
	lout   string
	naive  string
	qParam int
	tParam int
	kParam int
}

// fusedCondensed is Code 3 (EA) / Code 4 (LD), both the kNN and the
// one-to-many variant: lout label probing the hour-condensed table by
// (hub, bucket), folding the top-k arm and the expanded arm into one
// per-target accumulator.
type fusedCondensed struct {
	ea        bool
	lout      string
	aux       string
	qParam    int
	tParam    int
	kParam    int // 0 = one-to-many (no LIMIT, no [1:k] slices)
	width     int64
	bucketCol string // dephour (EA) or arrhour (LD)
	topV      string // armA target column (vs)
	topVal    string // armA value column (tas for EA, tds for LD)
	expTd     string
	expV      string
	expTa     string
}

// Fuse compiles sel into a FusedPlan, or returns nil when the statement does
// not match a recognized shape.
func Fuse(sel *sql.Select) *FusedPlan {
	if sel == nil {
		return nil
	}
	if p := matchV2V(sel); p != nil {
		return p
	}
	if p := matchKNNNaive(sel); p != nil {
		return p
	}
	if p := matchCondensed(sel); p != nil {
		return p
	}
	return nil
}

// --- small AST predicates ---------------------------------------------------

func asColRef(e sql.Expr) (*sql.ColumnRef, bool) {
	c, ok := e.(*sql.ColumnRef)
	return c, ok
}

// isBareCol matches an unqualified column reference by name.
func isBareCol(e sql.Expr, name string) bool {
	c, ok := asColRef(e)
	return ok && c.Table == "" && strings.EqualFold(c.Column, name)
}

// isQualCol matches a qualified column reference by qualifier and name.
func isQualCol(e sql.Expr, qual, name string) bool {
	c, ok := asColRef(e)
	return ok && strings.EqualFold(c.Table, qual) && strings.EqualFold(c.Column, name)
}

func paramOf(e sql.Expr) (int, bool) {
	p, ok := e.(*sql.Param)
	if !ok {
		return 0, false
	}
	return p.N, true
}

// unnestArg returns the single argument of a top-level UNNEST call.
func unnestArg(e sql.Expr) (sql.Expr, bool) {
	fc, ok := e.(*sql.FuncCall)
	if !ok || fc.Name != "UNNEST" || fc.Star || len(fc.Args) != 1 {
		return nil, false
	}
	return fc.Args[0], true
}

// unnestBareCol matches UNNEST(col) of an unqualified column, returning the
// column name.
func unnestBareCol(e sql.Expr) (string, bool) {
	arg, ok := unnestArg(e)
	if !ok {
		return "", false
	}
	c, ok := asColRef(arg)
	if !ok || c.Table != "" {
		return "", false
	}
	return c.Column, true
}

// unnestSlicedCol matches UNNEST(col[1:$k]) of an unqualified column,
// returning the column name and the slice parameter.
func unnestSlicedCol(e sql.Expr) (string, int, bool) {
	arg, ok := unnestArg(e)
	if !ok {
		return "", 0, false
	}
	sl, ok := arg.(*sql.ArraySlice)
	if !ok {
		return "", 0, false
	}
	lo, ok := sl.Lo.(*sql.IntLit)
	if !ok || lo.V != 1 {
		return "", 0, false
	}
	k, ok := paramOf(sl.Hi)
	if !ok {
		return "", 0, false
	}
	c, ok := asColRef(sl.A)
	if !ok || c.Table != "" {
		return "", 0, false
	}
	return c.Column, k, true
}

// normCmp rewrites > and >= comparisons as < and <= with swapped operands,
// so classification handles one orientation per operator.
func normCmp(b *sql.BinaryOp) (op string, l, r sql.Expr) {
	switch b.Op {
	case ">":
		return "<", b.R, b.L
	case ">=":
		return "<=", b.R, b.L
	default:
		return b.Op, b.L, b.R
	}
}

// plainCore reports whether sel is a bare SELECT core: no WITH, no UNION
// arms, no ORDER BY, no LIMIT.
func plainCore(sel *sql.Select) bool {
	return sel != nil && sel.Core != nil && len(sel.With) == 0 &&
		len(sel.Arms) == 0 && len(sel.OrderBy) == 0 && sel.Limit == nil
}

// exprEqual reports structural equality of two expressions (used to verify
// that an ORDER BY key recomputes the select list's aggregate).
func exprEqual(a, b sql.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *sql.ColumnRef:
		y, ok := b.(*sql.ColumnRef)
		return ok && strings.EqualFold(x.Table, y.Table) && strings.EqualFold(x.Column, y.Column)
	case *sql.IntLit:
		y, ok := b.(*sql.IntLit)
		return ok && x.V == y.V
	case *sql.FloatLit:
		y, ok := b.(*sql.FloatLit)
		return ok && x.V == y.V
	case *sql.StringLit:
		y, ok := b.(*sql.StringLit)
		return ok && x.V == y.V
	case *sql.NullLit:
		_, ok := b.(*sql.NullLit)
		return ok
	case *sql.Param:
		y, ok := b.(*sql.Param)
		return ok && x.N == y.N
	case *sql.BinaryOp:
		y, ok := b.(*sql.BinaryOp)
		return ok && x.Op == y.Op && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *sql.UnaryOp:
		y, ok := b.(*sql.UnaryOp)
		return ok && x.Op == y.Op && exprEqual(x.E, y.E)
	case *sql.FuncCall:
		y, ok := b.(*sql.FuncCall)
		if !ok || !strings.EqualFold(x.Name, y.Name) || x.Star != y.Star || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !exprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *sql.ArrayIndex:
		y, ok := b.(*sql.ArrayIndex)
		return ok && exprEqual(x.A, y.A) && exprEqual(x.I, y.I)
	case *sql.ArraySlice:
		y, ok := b.(*sql.ArraySlice)
		return ok && exprEqual(x.A, y.A) && exprEqual(x.Lo, y.Lo) && exprEqual(x.Hi, y.Hi)
	default:
		return false
	}
}

// baseTablesDistinctFromCTEs guards against base-table references that the
// general executor would resolve as CTEs of the statement (CTE bindings
// shadow catalog tables): fusing such a statement would read the wrong
// relation.
func baseTablesDistinctFromCTEs(sel *sql.Select, tables ...string) bool {
	for _, cte := range sel.With {
		for _, t := range tables {
			if strings.EqualFold(cte.Name, t) {
				return false
			}
		}
	}
	return true
}

func maxInt(xs ...int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// --- shared fragments: label scans and the n1 CTE ---------------------------

// matchLabelScan matches the unnested label projection
//
//	SELECT [v [AS v],] UNNEST(hubs) AS hub, UNNEST(tds) AS td,
//	       UNNEST(tas) AS ta FROM <table> WHERE v=$n
//
// returning the label table and the stop parameter. withV selects the
// four-item variant (Codes 2-4) over the three-item variant (Code 1).
func matchLabelScan(sel *sql.Select, withV bool) (table string, vParam int, ok bool) {
	if !plainCore(sel) {
		return "", 0, false
	}
	c := sel.Core
	if len(c.From) != 1 || c.From[0].Subquery != nil || c.From[0].Alias != "" ||
		c.From[0].Table == "" || len(c.GroupBy) != 0 || c.Having != nil {
		return "", 0, false
	}
	items := c.Items
	if withV {
		if len(items) != 4 {
			return "", 0, false
		}
		it := items[0]
		if it.Star || !isBareCol(it.Expr, "v") ||
			(it.Alias != "" && !strings.EqualFold(it.Alias, "v")) {
			return "", 0, false
		}
		items = items[1:]
	} else if len(items) != 3 {
		return "", 0, false
	}
	want := [3][2]string{{"hubs", "hub"}, {"tds", "td"}, {"tas", "ta"}}
	for i, it := range items {
		if it.Star {
			return "", 0, false
		}
		col, ok := unnestBareCol(it.Expr)
		if !ok || !strings.EqualFold(col, want[i][0]) || !strings.EqualFold(it.Alias, want[i][1]) {
			return "", 0, false
		}
	}
	b, ok2 := c.Where.(*sql.BinaryOp)
	if !ok2 || b.Op != "=" {
		return "", 0, false
	}
	switch {
	case isBareCol(b.L, "v"):
		vParam, ok = paramOf(b.R)
	case isBareCol(b.R, "v"):
		vParam, ok = paramOf(b.L)
	}
	if !ok {
		return "", 0, false
	}
	return c.From[0].Table, vParam, true
}

// matchN1 matches the n1 CTE body of Codes 2-4:
//
//	SELECT v, hub, td, ta FROM (<label scan with v>) n1a [WHERE td >= $t]
//
// tdParam is 0 when the departure filter is absent (the LD variants).
func matchN1(sel *sql.Select) (lout string, vParam, tdParam int, ok bool) {
	if !plainCore(sel) {
		return "", 0, 0, false
	}
	c := sel.Core
	if len(c.Items) != 4 || len(c.From) != 1 || c.From[0].Subquery == nil ||
		c.From[0].Alias == "" || len(c.GroupBy) != 0 || c.Having != nil {
		return "", 0, 0, false
	}
	for i, name := range []string{"v", "hub", "td", "ta"} {
		it := c.Items[i]
		if it.Star || it.Alias != "" || !isBareCol(it.Expr, name) {
			return "", 0, 0, false
		}
	}
	lout, vParam, ok = matchLabelScan(c.From[0].Subquery, true)
	if !ok {
		return "", 0, 0, false
	}
	if c.Where != nil {
		b, okb := c.Where.(*sql.BinaryOp)
		if !okb {
			return "", 0, 0, false
		}
		op, l, r := normCmp(b)
		if op != "<=" {
			return "", 0, 0, false
		}
		// td >= $t normalizes to $t <= td.
		tdParam, ok = paramOf(l)
		if !ok || !isBareCol(r, "td") {
			return "", 0, 0, false
		}
	}
	return lout, vParam, tdParam, true
}

// --- Code 1: vertex-to-vertex -----------------------------------------------

// matchV2V recognizes the three Code 1 variants:
//
//	WITH outp AS (<label scan>), inp AS (<label scan>)
//	SELECT MIN(inp.ta) | MAX(outp.td) | MIN(inp.ta-outp.td)
//	FROM outp, inp
//	WHERE outp.hub=inp.hub AND outp.ta<=inp.td
//	  [AND outp.td>=$t] [AND inp.ta<=$tEnd]
func matchV2V(sel *sql.Select) *FusedPlan {
	if len(sel.With) != 2 || sel.Core == nil || len(sel.Arms) != 0 ||
		len(sel.OrderBy) != 0 || sel.Limit != nil {
		return nil
	}
	type cteInfo struct {
		name   string
		table  string
		vParam int
	}
	var ctes [2]cteInfo
	for i, cte := range sel.With {
		tbl, p, ok := matchLabelScan(cte.Query, false)
		if !ok || cte.Name == "" {
			return nil
		}
		ctes[i] = cteInfo{cte.Name, tbl, p}
	}
	if strings.EqualFold(ctes[0].name, ctes[1].name) {
		return nil
	}
	if !baseTablesDistinctFromCTEs(sel, ctes[0].table, ctes[1].table) {
		return nil
	}
	c := sel.Core
	if len(c.Items) != 1 || c.Items[0].Star || c.Items[0].Alias != "" ||
		len(c.From) != 2 || len(c.GroupBy) != 0 || c.Having != nil {
		return nil
	}
	for i, fi := range c.From {
		if fi.Subquery != nil || fi.Alias != "" || !strings.EqualFold(fi.Table, ctes[i].name) {
			return nil
		}
	}
	qualIdx := func(q string) int {
		switch {
		case strings.EqualFold(q, ctes[0].name):
			return 0
		case strings.EqualFold(q, ctes[1].name):
			return 1
		default:
			return -1
		}
	}

	conj := splitConjuncts(c.Where)
	if len(conj) < 3 || len(conj) > 4 {
		return nil
	}
	hubSeen := false
	outI, inI := -1, -1
	depParam, arrParam := 0, 0
	depQual, arrQual := "", ""
	for _, e := range conj {
		b, ok := e.(*sql.BinaryOp)
		if !ok {
			return nil
		}
		op, l, r := normCmp(b)
		switch op {
		case "=":
			lc, lok := asColRef(l)
			rc, rok := asColRef(r)
			if !lok || !rok || hubSeen ||
				!strings.EqualFold(lc.Column, "hub") || !strings.EqualFold(rc.Column, "hub") {
				return nil
			}
			li, ri := qualIdx(lc.Table), qualIdx(rc.Table)
			if li < 0 || ri < 0 || li == ri {
				return nil
			}
			hubSeen = true
		case "<=":
			if lc, lok := asColRef(l); lok {
				if rc, rok := asColRef(r); rok {
					// Reachability: out.ta <= in.td.
					if outI >= 0 || !strings.EqualFold(lc.Column, "ta") || !strings.EqualFold(rc.Column, "td") {
						return nil
					}
					oi, ii := qualIdx(lc.Table), qualIdx(rc.Table)
					if oi < 0 || ii < 0 || oi == ii {
						return nil
					}
					outI, inI = oi, ii
				} else if p, pok := paramOf(r); pok {
					// Arrival bound: in.ta <= $p.
					if arrParam != 0 || !strings.EqualFold(lc.Column, "ta") {
						return nil
					}
					arrParam, arrQual = p, lc.Table
				} else {
					return nil
				}
			} else if p, pok := paramOf(l); pok {
				// Departure bound: out.td >= $p, normalized to $p <= out.td.
				rc, rok := asColRef(r)
				if !rok || depParam != 0 || !strings.EqualFold(rc.Column, "td") {
					return nil
				}
				depParam, depQual = p, rc.Table
			} else {
				return nil
			}
		default:
			return nil
		}
	}
	if !hubSeen || outI < 0 {
		return nil
	}
	if depParam > 0 && qualIdx(depQual) != outI {
		return nil
	}
	if arrParam > 0 && qualIdx(arrQual) != inI {
		return nil
	}

	fc, ok := c.Items[0].Expr.(*sql.FuncCall)
	if !ok || fc.Star || len(fc.Args) != 1 {
		return nil
	}
	outName, inName := ctes[outI].name, ctes[inI].name
	var op byte
	switch {
	case fc.Name == "MIN" && isQualCol(fc.Args[0], inName, "ta") &&
		depParam > 0 && arrParam == 0:
		op = 'E'
	case fc.Name == "MAX" && isQualCol(fc.Args[0], outName, "td") &&
		arrParam > 0 && depParam == 0:
		op = 'L'
	case fc.Name == "MIN" && depParam > 0 && arrParam > 0:
		sub, okb := fc.Args[0].(*sql.BinaryOp)
		if !okb || sub.Op != "-" ||
			!isQualCol(sub.L, inName, "ta") || !isQualCol(sub.R, outName, "td") {
			return nil
		}
		op = 'S'
	default:
		return nil
	}

	f := &fusedV2V{
		op:        op,
		outTable:  ctes[outI].table,
		inTable:   ctes[inI].table,
		outVParam: ctes[outI].vParam,
		inVParam:  ctes[inI].vParam,
	}
	kind := "v2v-ea"
	switch op {
	case 'E':
		f.tParam = depParam
	case 'L':
		f.tParam, kind = arrParam, "v2v-ld"
	case 'S':
		f.tParam, f.tEndParam, kind = depParam, arrParam, "v2v-sd"
	}
	return &FusedPlan{
		kind:     kind,
		schema:   itemSchema(c.Items),
		maxParam: maxInt(f.outVParam, f.inVParam, f.tParam, f.tEndParam),
		v2v:      f,
	}
}

// --- Code 2: naive kNN -------------------------------------------------------

// matchKNNNaive recognizes the naive kNN query (EA and LD):
//
//	WITH n1 AS (<n1 body>)
//	SELECT v2, MIN(n2.ta) | MAX(n1.td)
//	FROM n1, (SELECT hub, td, UNNEST(vs[1:$k]) AS v2, UNNEST(tas[1:$k]) AS ta
//	          FROM <naive>) n2
//	WHERE n1.hub=n2.hub AND n2.td>=n1.ta [AND n2.ta<=$t]
//	GROUP BY v2 ORDER BY <agg> [DESC], v2 LIMIT $k
func matchKNNNaive(sel *sql.Select) *FusedPlan {
	if len(sel.With) != 1 || sel.Core == nil || len(sel.Arms) != 0 {
		return nil
	}
	n1Name := sel.With[0].Name
	if n1Name == "" {
		return nil
	}
	lout, qParam, tdParam, ok := matchN1(sel.With[0].Query)
	if !ok {
		return nil
	}

	c := sel.Core
	if len(c.Items) != 2 || len(c.From) != 2 || c.Having != nil {
		return nil
	}
	if c.Items[0].Star || c.Items[0].Alias != "" || !isBareCol(c.Items[0].Expr, "v2") {
		return nil
	}
	if c.From[0].Subquery != nil || c.From[0].Alias != "" || !strings.EqualFold(c.From[0].Table, n1Name) {
		return nil
	}
	n2Alias := c.From[1].Alias
	n2 := c.From[1].Subquery
	if n2 == nil || n2Alias == "" || strings.EqualFold(n2Alias, n1Name) || !plainCore(n2) {
		return nil
	}
	nc := n2.Core
	if len(nc.Items) != 4 || len(nc.From) != 1 || nc.From[0].Subquery != nil ||
		nc.From[0].Alias != "" || nc.Where != nil || len(nc.GroupBy) != 0 || nc.Having != nil {
		return nil
	}
	naive := nc.From[0].Table
	if naive == "" || !baseTablesDistinctFromCTEs(sel, lout, naive) {
		return nil
	}
	if nc.Items[0].Star || nc.Items[0].Alias != "" || !isBareCol(nc.Items[0].Expr, "hub") ||
		nc.Items[1].Star || nc.Items[1].Alias != "" || !isBareCol(nc.Items[1].Expr, "td") {
		return nil
	}
	vsCol, kParam1, ok := unnestSlicedCol(nc.Items[2].Expr)
	if !ok || !strings.EqualFold(vsCol, "vs") || !strings.EqualFold(nc.Items[2].Alias, "v2") {
		return nil
	}
	tasCol, kParam2, ok := unnestSlicedCol(nc.Items[3].Expr)
	if !ok || !strings.EqualFold(tasCol, "tas") || !strings.EqualFold(nc.Items[3].Alias, "ta") ||
		kParam2 != kParam1 {
		return nil
	}

	// Join predicates: n1.hub=n2.hub, n2.td>=n1.ta, optionally n2.ta<=$t.
	conj := splitConjuncts(c.Where)
	hubSeen, reachSeen := false, false
	arrParam := 0
	for _, e := range conj {
		b, okb := e.(*sql.BinaryOp)
		if !okb {
			return nil
		}
		op, l, r := normCmp(b)
		switch op {
		case "=":
			ok1 := isQualCol(l, n1Name, "hub") && isQualCol(r, n2Alias, "hub")
			ok2 := isQualCol(l, n2Alias, "hub") && isQualCol(r, n1Name, "hub")
			if hubSeen || (!ok1 && !ok2) {
				return nil
			}
			hubSeen = true
		case "<=":
			if isQualCol(l, n1Name, "ta") && isQualCol(r, n2Alias, "td") {
				if reachSeen {
					return nil
				}
				reachSeen = true
			} else if isQualCol(l, n2Alias, "ta") {
				p, pok := paramOf(r)
				if !pok || arrParam != 0 {
					return nil
				}
				arrParam = p
			} else {
				return nil
			}
		default:
			return nil
		}
	}
	if !hubSeen || !reachSeen {
		return nil
	}

	// Variant: EA filters n1 by departure and aggregates MIN(n2.ta); LD
	// leaves n1 unfiltered, bounds n2.ta by $t and aggregates MAX(n1.td).
	agg, ok := c.Items[1].Expr.(*sql.FuncCall)
	if !ok || c.Items[1].Star || c.Items[1].Alias != "" || agg.Star || len(agg.Args) != 1 {
		return nil
	}
	var ea bool
	var tParam int
	switch {
	case agg.Name == "MIN" && isQualCol(agg.Args[0], n2Alias, "ta") && tdParam > 0 && arrParam == 0:
		ea, tParam = true, tdParam
	case agg.Name == "MAX" && isQualCol(agg.Args[0], n1Name, "td") && tdParam == 0 && arrParam > 0:
		ea, tParam = false, arrParam
	default:
		return nil
	}

	// GROUP BY v2; ORDER BY <agg> [DESC], v2; LIMIT $k.
	if len(c.GroupBy) != 1 || !isBareCol(c.GroupBy[0], "v2") {
		return nil
	}
	if len(sel.OrderBy) != 2 ||
		!exprEqual(sel.OrderBy[0].Expr, c.Items[1].Expr) || sel.OrderBy[0].Desc != !ea ||
		!isBareCol(sel.OrderBy[1].Expr, "v2") || sel.OrderBy[1].Desc {
		return nil
	}
	limParam, ok := paramOf(sel.Limit)
	if !ok || limParam != kParam1 {
		return nil
	}

	f := &fusedKNNNaive{ea: ea, lout: lout, naive: naive,
		qParam: qParam, tParam: tParam, kParam: kParam1}
	kind := "knn-naive-ea"
	if !ea {
		kind = "knn-naive-ld"
	}
	return &FusedPlan{
		kind:     kind,
		schema:   itemSchema(c.Items),
		maxParam: maxInt(qParam, tParam, kParam1),
		knn:      f,
	}
}

// --- Codes 3 and 4: condensed kNN and one-to-many ---------------------------

// matchCondensed recognizes the optimized EA/LD kNN and one-to-many queries
// built on the hour-condensed tables: n1 (the unnested lout label), n1b (the
// (hub, bucket) probe of the condensed table), and a UNION of the top-k arm
// and the expanded arm, re-grouped by target.
func matchCondensed(sel *sql.Select) *FusedPlan {
	if len(sel.With) != 2 || sel.Core == nil || len(sel.Arms) != 0 {
		return nil
	}
	n1Name, n1bName := sel.With[0].Name, sel.With[1].Name
	if n1Name == "" || n1bName == "" || strings.EqualFold(n1Name, n1bName) {
		return nil
	}
	lout, qParam, tdParam, ok := matchN1(sel.With[0].Query)
	if !ok {
		return nil
	}

	// n1b: SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
	//      FROM <aux> n1bb, n1
	//      WHERE n1bb.hub=n1.hub AND n1bb.<bucket>=FLOOR(<src>/<width>)
	nb := sel.With[1].Query
	if !plainCore(nb) {
		return nil
	}
	bc := nb.Core
	if len(bc.Items) != 3 || len(bc.From) != 2 || len(bc.GroupBy) != 0 || bc.Having != nil {
		return nil
	}
	aux, auxAlias := bc.From[0].Table, bc.From[0].Alias
	if bc.From[0].Subquery != nil || aux == "" || auxAlias == "" {
		return nil
	}
	if bc.From[1].Subquery != nil || bc.From[1].Alias != "" || !strings.EqualFold(bc.From[1].Table, n1Name) {
		return nil
	}
	if strings.EqualFold(auxAlias, n1Name) || !baseTablesDistinctFromCTEs(sel, lout, aux) {
		return nil
	}
	if !bc.Items[0].Star || !strings.EqualFold(bc.Items[0].Table, auxAlias) {
		return nil
	}
	if bc.Items[1].Star || !strings.EqualFold(bc.Items[1].Alias, "n1_ta") ||
		!isQualCol(bc.Items[1].Expr, n1Name, "ta") {
		return nil
	}
	if bc.Items[2].Star || !strings.EqualFold(bc.Items[2].Alias, "n1_td") ||
		!isQualCol(bc.Items[2].Expr, n1Name, "td") {
		return nil
	}
	bconj := splitConjuncts(bc.Where)
	if len(bconj) != 2 {
		return nil
	}
	hubSeen := false
	bucketCol := ""
	var width int64
	bucketByTa := false // EA buckets by FLOOR(n1.ta/width); LD by FLOOR($t/width)
	bucketParam := 0
	for _, e := range bconj {
		b, okb := e.(*sql.BinaryOp)
		if !okb || b.Op != "=" {
			return nil
		}
		// Orient so the aux-side column reference is on the left.
		l, r := b.L, b.R
		if lc, lok := asColRef(l); !lok || !strings.EqualFold(lc.Table, auxAlias) {
			l, r = r, l
		}
		lc, lok := asColRef(l)
		if !lok || !strings.EqualFold(lc.Table, auxAlias) {
			return nil
		}
		if strings.EqualFold(lc.Column, "hub") {
			if hubSeen || !isQualCol(r, n1Name, "hub") {
				return nil
			}
			hubSeen = true
			continue
		}
		// Bucket equality: <aux>.<bucket> = FLOOR(src / width).
		if bucketCol != "" {
			return nil
		}
		fc, fok := r.(*sql.FuncCall)
		if !fok || fc.Name != "FLOOR" || fc.Star || len(fc.Args) != 1 {
			return nil
		}
		div, dok := fc.Args[0].(*sql.BinaryOp)
		if !dok || div.Op != "/" {
			return nil
		}
		// The width may be an integer literal or an integral float literal:
		// the SQL uses FLOOR(x/3600.0) so that division is exact (float)
		// rather than truncating toward zero on negative timestamps. The
		// fused runtime reproduces FLOOR of the float quotient with integer
		// floor division.
		var widthV int64
		switch w := div.R.(type) {
		case *sql.IntLit:
			widthV = w.V
		case *sql.FloatLit:
			if w.V != math.Trunc(w.V) {
				return nil
			}
			widthV = int64(w.V)
		default:
			return nil
		}
		if widthV <= 0 {
			return nil
		}
		switch {
		case isQualCol(div.L, n1Name, "ta"):
			bucketByTa = true
		default:
			p, pok := paramOf(div.L)
			if !pok {
				return nil
			}
			bucketParam = p
		}
		bucketCol, width = lc.Column, widthV
	}
	if !hubSeen || bucketCol == "" {
		return nil
	}

	// Outer: SELECT v2, MIN(ta)|MAX(td) FROM ((armA) UNION (armB)) S
	//        GROUP BY v2 ORDER BY <agg> [DESC], v2 [LIMIT $k]
	c := sel.Core
	if len(c.Items) != 2 || len(c.From) != 1 || c.From[0].Subquery == nil ||
		c.From[0].Alias == "" || c.Where != nil || c.Having != nil {
		return nil
	}
	if c.Items[0].Star || c.Items[0].Alias != "" || !isBareCol(c.Items[0].Expr, "v2") {
		return nil
	}
	agg, ok := c.Items[1].Expr.(*sql.FuncCall)
	if !ok || c.Items[1].Star || c.Items[1].Alias != "" || agg.Star || len(agg.Args) != 1 {
		return nil
	}
	var ea bool
	switch {
	case agg.Name == "MIN" && isBareCol(agg.Args[0], "ta"):
		ea = true
	case agg.Name == "MAX" && isBareCol(agg.Args[0], "td"):
		ea = false
	default:
		return nil
	}
	// The n1 filter and the bucket source must match the variant: EA filters
	// departures and buckets by the label's arrival; LD buckets by $t.
	if ea && (tdParam == 0 || !bucketByTa) {
		return nil
	}
	if !ea && (tdParam != 0 || bucketByTa) {
		return nil
	}
	if len(c.GroupBy) != 1 || !isBareCol(c.GroupBy[0], "v2") {
		return nil
	}
	if len(sel.OrderBy) != 2 ||
		!exprEqual(sel.OrderBy[0].Expr, c.Items[1].Expr) || sel.OrderBy[0].Desc != !ea ||
		!isBareCol(sel.OrderBy[1].Expr, "v2") || sel.OrderBy[1].Desc {
		return nil
	}
	kParam := 0
	if sel.Limit != nil {
		kParam, ok = paramOf(sel.Limit)
		if !ok || kParam == 0 {
			return nil
		}
	}

	union := c.From[0].Subquery
	if union.Core != nil || len(union.Arms) != 2 || len(union.With) != 0 ||
		len(union.OrderBy) != 0 || union.Limit != nil ||
		len(union.All) != 1 || union.All[0] {
		return nil
	}

	f := &fusedCondensed{ea: ea, lout: lout, aux: aux, qParam: qParam,
		kParam: kParam, width: width, bucketCol: bucketCol}
	if ea {
		f.tParam = tdParam
	} else {
		f.tParam = bucketParam
	}
	if !matchCondensedArmA(union.Arms[0], n1bName, ea, kParam, f) {
		return nil
	}
	if !matchCondensedArmB(union.Arms[1], n1bName, ea, kParam, f.tParam, f) {
		return nil
	}

	kind := "cond-"
	if kParam == 0 {
		kind += "otm-"
	} else {
		kind += "knn-"
	}
	if ea {
		kind += "ea"
	} else {
		kind += "ld"
	}
	return &FusedPlan{
		kind:     kind,
		schema:   itemSchema(c.Items),
		maxParam: maxInt(qParam, f.tParam, kParam),
		cond:     f,
	}
}

// matchCondensedArmA matches the top-k arm. EA:
//
//	SELECT v2, MIN(n3.ta) AS ta
//	FROM (SELECT UNNEST(tas[1:$k]) AS ta, UNNEST(vs[1:$k]) AS v2 FROM n1b) n3
//	GROUP BY v2 ORDER BY MIN(n3.ta), v2 LIMIT $k
//
// LD:
//
//	SELECT v2, MAX(n3.n1_td) AS td
//	FROM (SELECT n1_td, n1_ta, UNNEST(tds[1:$k]) AS td, UNNEST(vs[1:$k]) AS v2
//	      FROM n1b) n3
//	WHERE n3.td>=n1_ta
//	GROUP BY v2 ORDER BY MAX(n3.n1_td) DESC, v2 LIMIT $k
//
// The one-to-many variant (k == 0) drops the slices and the LIMIT. The arm's
// inner grouping, ordering and LIMIT never change the statement's final
// result (the outer re-group folds the same per-target optimum, and the arm
// keeps the top k of the same (value, v2) order the outer LIMIT uses), so
// the fused evaluator only needs the arm's source arrays; the match still
// verifies the full shape so deviating queries fall back.
func matchCondensedArmA(arm *sql.Select, n1bName string, ea bool, kParam int, f *fusedCondensed) bool {
	if arm == nil || arm.Core == nil || len(arm.With) != 0 || len(arm.Arms) != 0 {
		return false
	}
	a := arm.Core
	if len(a.Items) != 2 || len(a.From) != 1 || a.From[0].Subquery == nil ||
		a.From[0].Alias == "" || a.Having != nil {
		return false
	}
	n3 := a.From[0].Alias
	if a.Items[0].Star || a.Items[0].Alias != "" || !isBareCol(a.Items[0].Expr, "v2") {
		return false
	}
	agg, ok := a.Items[1].Expr.(*sql.FuncCall)
	if !ok || a.Items[1].Star || agg.Star || len(agg.Args) != 1 {
		return false
	}
	valAlias := "ta"
	if !ea {
		valAlias = "td"
	}
	if !strings.EqualFold(a.Items[1].Alias, valAlias) {
		return false
	}

	inner := a.From[0].Subquery
	if !plainCore(inner) {
		return false
	}
	ic := inner.Core
	if len(ic.From) != 1 || ic.From[0].Subquery != nil || ic.From[0].Alias != "" ||
		!strings.EqualFold(ic.From[0].Table, n1bName) ||
		ic.Where != nil || len(ic.GroupBy) != 0 || ic.Having != nil {
		return false
	}

	matchArrayItem := func(it sql.SelectItem, alias string) (string, bool) {
		if it.Star || !strings.EqualFold(it.Alias, alias) {
			return "", false
		}
		if kParam == 0 {
			col, ok := unnestBareCol(it.Expr)
			return col, ok
		}
		col, k, ok := unnestSlicedCol(it.Expr)
		return col, ok && k == kParam
	}

	if ea {
		// Items: UNNEST(tas…) AS ta, UNNEST(vs…) AS v2; no WHERE;
		// aggregate MIN(n3.ta).
		if len(ic.Items) != 2 || a.Where != nil {
			return false
		}
		valCol, ok := matchArrayItem(ic.Items[0], "ta")
		if !ok {
			return false
		}
		vCol, ok := matchArrayItem(ic.Items[1], "v2")
		if !ok {
			return false
		}
		if agg.Name != "MIN" || !isQualCol(agg.Args[0], n3, "ta") {
			return false
		}
		f.topVal, f.topV = valCol, vCol
	} else {
		// Items: n1_td, n1_ta, UNNEST(tds…) AS td, UNNEST(vs…) AS v2;
		// WHERE n3.td>=n1_ta; aggregate MAX(n3.n1_td).
		if len(ic.Items) != 4 {
			return false
		}
		if ic.Items[0].Star || ic.Items[0].Alias != "" || !isBareCol(ic.Items[0].Expr, "n1_td") ||
			ic.Items[1].Star || ic.Items[1].Alias != "" || !isBareCol(ic.Items[1].Expr, "n1_ta") {
			return false
		}
		valCol, ok := matchArrayItem(ic.Items[2], "td")
		if !ok {
			return false
		}
		vCol, ok := matchArrayItem(ic.Items[3], "v2")
		if !ok {
			return false
		}
		b, okb := a.Where.(*sql.BinaryOp)
		if !okb {
			return false
		}
		op, l, r := normCmp(b)
		// n3.td >= n1_ta normalizes to n1_ta <= n3.td.
		if op != "<=" || !isBareCol(l, "n1_ta") || !isQualCol(r, n3, "td") {
			return false
		}
		if agg.Name != "MAX" || !isQualCol(agg.Args[0], n3, "n1_td") {
			return false
		}
		f.topVal, f.topV = valCol, vCol
	}

	if len(a.GroupBy) != 1 || !isBareCol(a.GroupBy[0], "v2") {
		return false
	}
	if len(arm.OrderBy) != 2 ||
		!exprEqual(arm.OrderBy[0].Expr, agg) || arm.OrderBy[0].Desc != !ea ||
		!isBareCol(arm.OrderBy[1].Expr, "v2") || arm.OrderBy[1].Desc {
		return false
	}
	if kParam == 0 {
		return arm.Limit == nil
	}
	p, ok := paramOf(arm.Limit)
	return ok && p == kParam
}

// matchCondensedArmB matches the expanded arm. EA:
//
//	SELECT n2.v2, MIN(n2.ta) AS ta
//	FROM (SELECT n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2,
//	             UNNEST(tas_exp) AS ta FROM n1b) n2
//	WHERE n1_ta <= n2.td
//	GROUP BY n2.v2 ORDER BY MIN(n2.ta), v2 LIMIT $k
//
// LD:
//
//	SELECT n2.v2, MAX(n2.n1_td) AS td
//	FROM (SELECT n1_td, n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2,
//	             UNNEST(tas_exp) AS ta FROM n1b) n2
//	WHERE n2.td>=n1_ta AND n2.ta<=$t
//	GROUP BY n2.v2 ORDER BY MAX(n2.n1_td) DESC, v2 LIMIT $k
func matchCondensedArmB(arm *sql.Select, n1bName string, ea bool, kParam, tParam int, f *fusedCondensed) bool {
	if arm == nil || arm.Core == nil || len(arm.With) != 0 || len(arm.Arms) != 0 {
		return false
	}
	a := arm.Core
	if len(a.Items) != 2 || len(a.From) != 1 || a.From[0].Subquery == nil ||
		a.From[0].Alias == "" || a.Having != nil {
		return false
	}
	n2 := a.From[0].Alias
	if a.Items[0].Star || a.Items[0].Alias != "" || !isQualCol(a.Items[0].Expr, n2, "v2") {
		return false
	}
	agg, ok := a.Items[1].Expr.(*sql.FuncCall)
	if !ok || a.Items[1].Star || agg.Star || len(agg.Args) != 1 {
		return false
	}

	inner := a.From[0].Subquery
	if !plainCore(inner) {
		return false
	}
	ic := inner.Core
	if len(ic.From) != 1 || ic.From[0].Subquery != nil || ic.From[0].Alias != "" ||
		!strings.EqualFold(ic.From[0].Table, n1bName) ||
		ic.Where != nil || len(ic.GroupBy) != 0 || ic.Having != nil {
		return false
	}
	unnested := func(it sql.SelectItem, alias string) (string, bool) {
		if it.Star || !strings.EqualFold(it.Alias, alias) {
			return "", false
		}
		return unnestBareCol(it.Expr)
	}
	var expTd, expV, expTa string
	scalarItems := 1 // EA carries n1_ta; LD carries n1_td, n1_ta
	if !ea {
		scalarItems = 2
	}
	if len(ic.Items) != scalarItems+3 {
		return false
	}
	if ea {
		if ic.Items[0].Star || ic.Items[0].Alias != "" || !isBareCol(ic.Items[0].Expr, "n1_ta") {
			return false
		}
	} else {
		if ic.Items[0].Star || ic.Items[0].Alias != "" || !isBareCol(ic.Items[0].Expr, "n1_td") ||
			ic.Items[1].Star || ic.Items[1].Alias != "" || !isBareCol(ic.Items[1].Expr, "n1_ta") {
			return false
		}
	}
	expTd, ok = unnested(ic.Items[scalarItems], "td")
	if !ok {
		return false
	}
	expV, ok = unnested(ic.Items[scalarItems+1], "v2")
	if !ok {
		return false
	}
	expTa, ok = unnested(ic.Items[scalarItems+2], "ta")
	if !ok {
		return false
	}

	conj := splitConjuncts(a.Where)
	if ea {
		// WHERE n1_ta <= n2.td; aggregate MIN(n2.ta).
		if len(conj) != 1 {
			return false
		}
		b, okb := conj[0].(*sql.BinaryOp)
		if !okb {
			return false
		}
		op, l, r := normCmp(b)
		if op != "<=" || !isBareCol(l, "n1_ta") || !isQualCol(r, n2, "td") {
			return false
		}
		if agg.Name != "MIN" || !isQualCol(agg.Args[0], n2, "ta") {
			return false
		}
	} else {
		// WHERE n2.td>=n1_ta AND n2.ta<=$t; aggregate MAX(n2.n1_td).
		if len(conj) != 2 {
			return false
		}
		reachSeen, boundSeen := false, false
		for _, e := range conj {
			b, okb := e.(*sql.BinaryOp)
			if !okb {
				return false
			}
			op, l, r := normCmp(b)
			if op != "<=" {
				return false
			}
			switch {
			case isBareCol(l, "n1_ta") && isQualCol(r, n2, "td") && !reachSeen:
				reachSeen = true
			case isQualCol(l, n2, "ta") && !boundSeen:
				p, pok := paramOf(r)
				if !pok || p != tParam {
					return false
				}
				boundSeen = true
			default:
				return false
			}
		}
		if !reachSeen || !boundSeen {
			return false
		}
		if agg.Name != "MAX" || !isQualCol(agg.Args[0], n2, "n1_td") {
			return false
		}
	}

	if len(a.GroupBy) != 1 || !isQualCol(a.GroupBy[0], n2, "v2") {
		return false
	}
	if len(arm.OrderBy) != 2 ||
		!exprEqual(arm.OrderBy[0].Expr, agg) || arm.OrderBy[0].Desc != !ea ||
		!isBareCol(arm.OrderBy[1].Expr, "v2") || arm.OrderBy[1].Desc {
		return false
	}
	if kParam == 0 {
		if arm.Limit != nil {
			return false
		}
	} else {
		p, okp := paramOf(arm.Limit)
		if !okp || p != kParam {
			return false
		}
	}
	f.expTd, f.expV, f.expTa = expTd, expV, expTa
	return true
}
