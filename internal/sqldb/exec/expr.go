package exec

import (
	"fmt"
	"math"
	"strings"

	"ptldb/internal/sqldb/sql"
	"ptldb/internal/sqldb/sqltypes"
)

// Expressions are compiled once per operator into closures with column
// references resolved to row indices, so per-row evaluation does no name
// lookups and no AST walking. Aggregate calls compile into reads of the
// current group's result map (rebound per group by the grouping operator).

// compiledExpr evaluates one expression over a row.
type compiledExpr func(row sqltypes.Row) (sqltypes.Value, error)

// aggregateFuncs lists the supported aggregate function names.
var aggregateFuncs = map[string]bool{
	"MIN": true, "MAX": true, "COUNT": true, "SUM": true, "AVG": true,
}

// compileEnv carries compilation context.
type compileEnv struct {
	schema Schema
	params []sqltypes.Value
	// agg, when non-nil, points at the variable holding the current group's
	// aggregate results; compiled aggregate nodes read through it.
	agg *map[*sql.FuncCall]sqltypes.Value
}

// compile translates e into a closure. Unknown columns, unknown functions
// and aggregates outside a grouping context are compile-time errors.
func (ce *compileEnv) compile(e sql.Expr) (compiledExpr, error) {
	switch x := e.(type) {
	case *sql.IntLit:
		v := sqltypes.NewInt(x.V)
		return func(sqltypes.Row) (sqltypes.Value, error) { return v, nil }, nil
	case *sql.FloatLit:
		v := sqltypes.NewFloat(x.V)
		return func(sqltypes.Row) (sqltypes.Value, error) { return v, nil }, nil
	case *sql.StringLit:
		v := sqltypes.NewText(x.V)
		return func(sqltypes.Row) (sqltypes.Value, error) { return v, nil }, nil
	case *sql.NullLit:
		return func(sqltypes.Row) (sqltypes.Value, error) { return sqltypes.Null, nil }, nil
	case *sql.Param:
		if x.N > len(ce.params) {
			return nil, fmt.Errorf("exec: parameter $%d not supplied (%d given)", x.N, len(ce.params))
		}
		v := ce.params[x.N-1]
		return func(sqltypes.Row) (sqltypes.Value, error) { return v, nil }, nil
	case *sql.ColumnRef:
		i, err := ce.schema.resolve(x.Table, x.Column)
		if err != nil {
			return nil, err
		}
		return func(row sqltypes.Row) (sqltypes.Value, error) { return row[i], nil }, nil
	case *sql.UnaryOp:
		sub, err := ce.compile(x.E)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return func(row sqltypes.Row) (sqltypes.Value, error) {
				v, err := sub(row)
				if err != nil {
					return sqltypes.Null, err
				}
				switch v.T {
				case sqltypes.NullType:
					return sqltypes.Null, nil
				case sqltypes.Int64:
					return sqltypes.NewInt(-v.I), nil
				case sqltypes.Float64:
					return sqltypes.NewFloat(-v.F), nil
				default:
					return sqltypes.Null, fmt.Errorf("exec: cannot negate %s", v.T)
				}
			}, nil
		case "NOT":
			return func(row sqltypes.Row) (sqltypes.Value, error) {
				v, err := sub(row)
				if err != nil {
					return sqltypes.Null, err
				}
				t, null := truth(v)
				if null {
					return sqltypes.Null, nil
				}
				return boolVal(!t), nil
			}, nil
		default:
			return nil, fmt.Errorf("exec: unknown unary operator %q", x.Op)
		}
	case *sql.BinaryOp:
		return ce.compileBinary(x)
	case *sql.FuncCall:
		if aggregateFuncs[x.Name] {
			if ce.agg == nil {
				return nil, fmt.Errorf("exec: aggregate %s in a non-aggregate context", x.Name)
			}
			aggVar := ce.agg
			node := x
			return func(sqltypes.Row) (sqltypes.Value, error) {
				v, ok := (*aggVar)[node]
				if !ok {
					return sqltypes.Null, fmt.Errorf("exec: internal: aggregate %s not computed", node.Name)
				}
				return v, nil
			}, nil
		}
		return ce.compileFunc(x)
	case *sql.ArrayIndex:
		av, err := ce.compile(x.A)
		if err != nil {
			return nil, err
		}
		iv, err := ce.compile(x.I)
		if err != nil {
			return nil, err
		}
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			a, err := av(row)
			if err != nil {
				return sqltypes.Null, err
			}
			i, err := iv(row)
			if err != nil {
				return sqltypes.Null, err
			}
			if a.IsNull() || i.IsNull() {
				return sqltypes.Null, nil
			}
			if a.T != sqltypes.IntArray {
				return sqltypes.Null, fmt.Errorf("exec: subscript of non-array %s", a.T)
			}
			n, err := i.AsInt()
			if err != nil {
				return sqltypes.Null, err
			}
			// PostgreSQL arrays are 1-based; out of range yields NULL.
			if n < 1 || int(n) > len(a.A) {
				return sqltypes.Null, nil
			}
			return sqltypes.NewInt(a.A[n-1]), nil
		}, nil
	case *sql.ArraySlice:
		av, err := ce.compile(x.A)
		if err != nil {
			return nil, err
		}
		lov, err := ce.compile(x.Lo)
		if err != nil {
			return nil, err
		}
		hiv, err := ce.compile(x.Hi)
		if err != nil {
			return nil, err
		}
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			a, err := av(row)
			if err != nil {
				return sqltypes.Null, err
			}
			lo, err := lov(row)
			if err != nil {
				return sqltypes.Null, err
			}
			hi, err := hiv(row)
			if err != nil {
				return sqltypes.Null, err
			}
			if a.IsNull() || lo.IsNull() || hi.IsNull() {
				return sqltypes.Null, nil
			}
			if a.T != sqltypes.IntArray {
				return sqltypes.Null, fmt.Errorf("exec: slice of non-array %s", a.T)
			}
			l, err := lo.AsInt()
			if err != nil {
				return sqltypes.Null, err
			}
			h, err := hi.AsInt()
			if err != nil {
				return sqltypes.Null, err
			}
			// PostgreSQL clamps slices to the actual bounds.
			if l < 1 {
				l = 1
			}
			if int(h) > len(a.A) {
				h = int64(len(a.A))
			}
			if l > h {
				return sqltypes.NewIntArray(nil), nil
			}
			return sqltypes.NewIntArray(a.A[l-1 : h]), nil
		}, nil
	case *sql.CaseExpr:
		conds := make([]compiledExpr, len(x.Whens))
		thens := make([]compiledExpr, len(x.Whens))
		for i, wh := range x.Whens {
			c, err := ce.compile(wh.Cond)
			if err != nil {
				return nil, err
			}
			conds[i] = c
			th, err := ce.compile(wh.Then)
			if err != nil {
				return nil, err
			}
			thens[i] = th
		}
		var els compiledExpr
		if x.Else != nil {
			c, err := ce.compile(x.Else)
			if err != nil {
				return nil, err
			}
			els = c
		}
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			for i, c := range conds {
				v, err := c(row)
				if err != nil {
					return sqltypes.Null, err
				}
				if t, null := truth(v); t && !null {
					return thens[i](row)
				}
			}
			if els != nil {
				return els(row)
			}
			return sqltypes.Null, nil
		}, nil
	default:
		return nil, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func (ce *compileEnv) compileBinary(x *sql.BinaryOp) (compiledExpr, error) {
	l, err := ce.compile(x.L)
	if err != nil {
		return nil, err
	}
	r, err := ce.compile(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND":
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			lv, err := l(row)
			if err != nil {
				return sqltypes.Null, err
			}
			lt, lnull := truth(lv)
			if !lnull && !lt {
				return boolVal(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return sqltypes.Null, err
			}
			rt, rnull := truth(rv)
			switch {
			case !rnull && !rt:
				return boolVal(false), nil
			case lnull || rnull:
				return sqltypes.Null, nil
			default:
				return boolVal(true), nil
			}
		}, nil
	case "OR":
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			lv, err := l(row)
			if err != nil {
				return sqltypes.Null, err
			}
			lt, lnull := truth(lv)
			if !lnull && lt {
				return boolVal(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return sqltypes.Null, err
			}
			rt, rnull := truth(rv)
			switch {
			case !rnull && rt:
				return boolVal(true), nil
			case lnull || rnull:
				return sqltypes.Null, nil
			default:
				return boolVal(false), nil
			}
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		op := x.Op
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			lv, err := l(row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return sqltypes.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			// Fast path: the join and filter predicates of every PTLDB
			// query compare integers.
			if lv.T == sqltypes.Int64 && rv.T == sqltypes.Int64 {
				return boolVal(intCmp(op, lv.I, rv.I)), nil
			}
			c, err := sqltypes.Compare(lv, rv)
			if err != nil {
				return sqltypes.Null, err
			}
			switch op {
			case "=":
				return boolVal(c == 0), nil
			case "<>":
				return boolVal(c != 0), nil
			case "<":
				return boolVal(c < 0), nil
			case "<=":
				return boolVal(c <= 0), nil
			case ">":
				return boolVal(c > 0), nil
			default:
				return boolVal(c >= 0), nil
			}
		}, nil
	case "+", "-", "*", "/", "%":
		op := x.Op
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			lv, err := l(row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return sqltypes.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			return arith(op, lv, rv)
		}, nil
	default:
		return nil, fmt.Errorf("exec: unknown operator %q", x.Op)
	}
}

func intCmp(op string, a, b int64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default:
		return a >= b
	}
}

// arith applies an arithmetic operator with PostgreSQL-style typing:
// integer op integer stays integral (truncating division), anything
// involving a double is computed in doubles.
func arith(op string, l, r sqltypes.Value) (sqltypes.Value, error) {
	if l.T == sqltypes.Int64 && r.T == sqltypes.Int64 {
		a, b := l.I, r.I
		switch op {
		case "+":
			return sqltypes.NewInt(a + b), nil
		case "-":
			return sqltypes.NewInt(a - b), nil
		case "*":
			return sqltypes.NewInt(a * b), nil
		default:
			if b == 0 {
				return sqltypes.Null, fmt.Errorf("exec: division by zero")
			}
			if op == "/" {
				return sqltypes.NewInt(a / b), nil
			}
			return sqltypes.NewInt(a % b), nil
		}
	}
	a, err := l.AsFloat()
	if err != nil {
		return sqltypes.Null, fmt.Errorf("exec: %s on %s", op, l.T)
	}
	b, err := r.AsFloat()
	if err != nil {
		return sqltypes.Null, fmt.Errorf("exec: %s on %s", op, r.T)
	}
	switch op {
	case "+":
		return sqltypes.NewFloat(a + b), nil
	case "-":
		return sqltypes.NewFloat(a - b), nil
	case "*":
		return sqltypes.NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return sqltypes.Null, fmt.Errorf("exec: division by zero")
		}
		return sqltypes.NewFloat(a / b), nil
	default:
		return sqltypes.NewFloat(math.Mod(a, b)), nil
	}
}

// compileFunc compiles a scalar function call.
func (ce *compileEnv) compileFunc(x *sql.FuncCall) (compiledExpr, error) {
	args := make([]compiledExpr, len(x.Args))
	for i, a := range x.Args {
		c, err := ce.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	evalArgs := func(row sqltypes.Row, out []sqltypes.Value) error {
		for i, a := range args {
			v, err := a(row)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
	name := x.Name
	switch name {
	case "FLOOR", "CEIL", "CEILING":
		if len(args) != 1 {
			return nil, fmt.Errorf("exec: %s takes one argument", name)
		}
		ceil := name != "FLOOR"
		arg := args[0]
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			v, err := arg(row)
			if err != nil {
				return sqltypes.Null, err
			}
			switch v.T {
			case sqltypes.NullType:
				return sqltypes.Null, nil
			case sqltypes.Int64:
				return v, nil
			case sqltypes.Float64:
				if ceil {
					return sqltypes.NewFloat(math.Ceil(v.F)), nil
				}
				return sqltypes.NewFloat(math.Floor(v.F)), nil
			default:
				return sqltypes.Null, fmt.Errorf("exec: %s of %s", name, v.T)
			}
		}, nil
	case "ABS":
		if len(args) != 1 {
			return nil, fmt.Errorf("exec: ABS takes one argument")
		}
		arg := args[0]
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			v, err := arg(row)
			if err != nil {
				return sqltypes.Null, err
			}
			switch v.T {
			case sqltypes.NullType:
				return sqltypes.Null, nil
			case sqltypes.Int64:
				if v.I < 0 {
					return sqltypes.NewInt(-v.I), nil
				}
				return v, nil
			case sqltypes.Float64:
				return sqltypes.NewFloat(math.Abs(v.F)), nil
			default:
				return sqltypes.Null, fmt.Errorf("exec: ABS of %s", v.T)
			}
		}, nil
	case "COALESCE":
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			for _, a := range args {
				v, err := a(row)
				if err != nil {
					return sqltypes.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return sqltypes.Null, nil
		}, nil
	case "LEAST", "GREATEST":
		greatest := name == "GREATEST"
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			vals := make([]sqltypes.Value, len(args))
			if err := evalArgs(row, vals); err != nil {
				return sqltypes.Null, err
			}
			best := sqltypes.Null
			for _, v := range vals {
				if v.IsNull() {
					continue
				}
				if best.IsNull() {
					best = v
					continue
				}
				c, err := sqltypes.Compare(v, best)
				if err != nil {
					return sqltypes.Null, err
				}
				if (greatest && c > 0) || (!greatest && c < 0) {
					best = v
				}
			}
			return best, nil
		}, nil
	case "CARDINALITY", "ARRAY_LENGTH":
		if len(args) == 0 {
			return nil, fmt.Errorf("exec: %s takes an argument", name)
		}
		arg := args[0]
		return func(row sqltypes.Row) (sqltypes.Value, error) {
			v, err := arg(row)
			if err != nil || v.IsNull() {
				return sqltypes.Null, err
			}
			if v.T != sqltypes.IntArray {
				return sqltypes.Null, fmt.Errorf("exec: %s of %s", name, v.T)
			}
			return sqltypes.NewInt(int64(len(v.A))), nil
		}, nil
	case "UNNEST":
		return nil, fmt.Errorf("exec: UNNEST is only allowed as a top-level select item")
	default:
		return nil, fmt.Errorf("exec: unknown function %s", name)
	}
}

// --- AST inspection helpers -------------------------------------------------

// containsAggregate reports whether e contains an aggregate call anywhere.
func containsAggregate(e sql.Expr) bool {
	found := false
	walkExpr(e, func(x sql.Expr) {
		if fc, ok := x.(*sql.FuncCall); ok && aggregateFuncs[fc.Name] {
			found = true
		}
	})
	return found
}

// collectAggregates appends every aggregate call node in e to out.
func collectAggregates(e sql.Expr, out *[]*sql.FuncCall) {
	walkExpr(e, func(x sql.Expr) {
		if fc, ok := x.(*sql.FuncCall); ok && aggregateFuncs[fc.Name] {
			*out = append(*out, fc)
		}
	})
}

// containsUnnest reports whether e contains an UNNEST call.
func containsUnnest(e sql.Expr) bool {
	found := false
	walkExpr(e, func(x sql.Expr) {
		if fc, ok := x.(*sql.FuncCall); ok && fc.Name == "UNNEST" {
			found = true
		}
	})
	return found
}

// hasBareColumnRef reports whether e contains a column reference outside
// any aggregate call.
func hasBareColumnRef(e sql.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *sql.ColumnRef:
		return true
	case *sql.BinaryOp:
		return hasBareColumnRef(x.L) || hasBareColumnRef(x.R)
	case *sql.UnaryOp:
		return hasBareColumnRef(x.E)
	case *sql.FuncCall:
		if aggregateFuncs[x.Name] {
			return false
		}
		for _, a := range x.Args {
			if hasBareColumnRef(a) {
				return true
			}
		}
		return false
	case *sql.ArrayIndex:
		return hasBareColumnRef(x.A) || hasBareColumnRef(x.I)
	case *sql.ArraySlice:
		return hasBareColumnRef(x.A) || hasBareColumnRef(x.Lo) || hasBareColumnRef(x.Hi)
	case *sql.CaseExpr:
		for _, wh := range x.Whens {
			if hasBareColumnRef(wh.Cond) || hasBareColumnRef(wh.Then) {
				return true
			}
		}
		return hasBareColumnRef(x.Else)
	default:
		return false
	}
}

// walkExpr visits e and all sub-expressions pre-order.
func walkExpr(e sql.Expr, fn func(sql.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sql.BinaryOp:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *sql.UnaryOp:
		walkExpr(x.E, fn)
	case *sql.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *sql.ArrayIndex:
		walkExpr(x.A, fn)
		walkExpr(x.I, fn)
	case *sql.ArraySlice:
		walkExpr(x.A, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *sql.CaseExpr:
		for _, wh := range x.Whens {
			walkExpr(wh.Cond, fn)
			walkExpr(wh.Then, fn)
		}
		walkExpr(x.Else, fn)
	}
}

// truth interprets a value as a SQL boolean: (value, isNull).
func truth(v sqltypes.Value) (bool, bool) {
	switch v.T {
	case sqltypes.NullType:
		return false, true
	case sqltypes.Int64:
		return v.I != 0, false
	case sqltypes.Float64:
		return v.F != 0, false
	default:
		return false, true
	}
}

var (
	valTrue  = sqltypes.NewInt(1)
	valFalse = sqltypes.NewInt(0)
)

func boolVal(b bool) sqltypes.Value {
	if b {
		return valTrue
	}
	return valFalse
}

// defaultName derives the output column name of an unaliased select item.
func defaultName(e sql.Expr) string {
	switch x := e.(type) {
	case *sql.ColumnRef:
		return x.Column
	case *sql.FuncCall:
		return strings.ToLower(x.Name)
	default:
		return "?column?"
	}
}
