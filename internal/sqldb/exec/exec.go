package exec

import (
	"fmt"
	"sort"
	"strings"

	"ptldb/internal/sqldb/sql"
	"ptldb/internal/sqldb/sqltypes"
)

// Run evaluates a parsed select against the catalog with the given
// positional parameters.
func Run(sel *sql.Select, cat Catalog, params []sqltypes.Value) (*Relation, error) {
	r := &runner{cat: cat, params: params}
	return r.evalSelect(sel, nil)
}

// RunTraced is Run, additionally returning one line per access-path decision
// the planner took (point lookups, index nested-loop joins, hash joins,
// full scans) in execution order — the engine's EXPLAIN ANALYZE.
func RunTraced(sel *sql.Select, cat Catalog, params []sqltypes.Value) (*Relation, []string, error) {
	r := &runner{cat: cat, params: params, trace: new([]string)}
	rel, err := r.evalSelect(sel, nil)
	return rel, *r.trace, err
}

type runner struct {
	cat    Catalog
	params []sqltypes.Value
	// trace, when non-nil, accumulates access-path decisions.
	trace *[]string
}

func (r *runner) tracef(format string, args ...any) {
	if r.trace != nil {
		*r.trace = append(*r.trace, fmt.Sprintf(format, args...))
	}
}

// cteScope is a linked list of CTE bindings, innermost first.
type cteScope struct {
	name   string
	rel    *Relation
	parent *cteScope
}

func (s *cteScope) lookup(name string) (*Relation, bool) {
	for c := s; c != nil; c = c.parent {
		if strings.EqualFold(c.name, name) {
			return c.rel, true
		}
	}
	return nil, false
}

func (r *runner) compileAll(exprs []sql.Expr, schema Schema, agg *map[*sql.FuncCall]sqltypes.Value) ([]compiledExpr, error) {
	ce := &compileEnv{schema: schema, params: r.params, agg: agg}
	out := make([]compiledExpr, len(exprs))
	for i, e := range exprs {
		c, err := ce.compile(e)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func (r *runner) evalSelect(sel *sql.Select, scope *cteScope) (*Relation, error) {
	for _, cte := range sel.With {
		rel, err := r.evalSelect(cte.Query, scope)
		if err != nil {
			return nil, fmt.Errorf("in CTE %s: %w", cte.Name, err)
		}
		// The CTE's own name qualifies its columns for the outer query.
		rel = &Relation{Schema: rel.Schema.requalify(cte.Name), Rows: rel.Rows}
		scope = &cteScope{name: cte.Name, rel: rel, parent: scope}
	}

	if sel.Core != nil {
		return r.evalCore(sel.Core, sel.OrderBy, sel.Limit, scope)
	}

	// Compound select: evaluate arms and combine.
	var out *Relation
	seen := map[string]bool{}
	for i, arm := range sel.Arms {
		rel, err := r.evalSelect(arm, scope)
		if err != nil {
			return nil, err
		}
		dedup := false
		if out == nil {
			out = &Relation{Schema: rel.Schema}
			// UNION (not ALL) dedups rows of the first arm too.
			dedup = len(sel.All) > 0 && !sel.All[0]
		} else {
			if len(rel.Schema) != len(out.Schema) {
				return nil, fmt.Errorf("exec: UNION arms have %d and %d columns", len(out.Schema), len(rel.Schema))
			}
			dedup = !sel.All[i-1]
		}
		var buf []byte
		for _, row := range rel.Rows {
			if dedup {
				buf = sqltypes.EncodeRow(buf[:0], row)
				if seen[string(buf)] {
					continue
				}
				seen[string(buf)] = true
			}
			out.Rows = append(out.Rows, row)
		}
	}

	var keys []sqltypes.Row
	if len(sel.OrderBy) > 0 {
		exprs := make([]sql.Expr, len(sel.OrderBy))
		for i, oi := range sel.OrderBy {
			exprs[i] = oi.Expr
		}
		comps, err := r.compileAll(exprs, out.Schema, nil)
		if err != nil {
			return nil, err
		}
		keys = make([]sqltypes.Row, len(out.Rows))
		for i, row := range out.Rows {
			key := make(sqltypes.Row, len(comps))
			for j, c := range comps {
				v, err := c(row)
				if err != nil {
					return nil, err
				}
				key[j] = v
			}
			keys[i] = key
		}
	}
	if err := r.orderAndLimit(out, keys, sel.OrderBy, sel.Limit); err != nil {
		return nil, err
	}
	return out, nil
}

// limitCount evaluates a LIMIT expression, returning -1 when it is absent.
func (r *runner) limitCount(limit sql.Expr) (int, error) {
	if limit == nil {
		return -1, nil
	}
	ce := &compileEnv{params: r.params}
	c, err := ce.compile(limit)
	if err != nil {
		return 0, err
	}
	v, err := c(nil)
	if err != nil {
		return 0, err
	}
	n, err := v.AsInt()
	if err != nil {
		return 0, fmt.Errorf("exec: LIMIT: %w", err)
	}
	if n < 0 {
		return 0, fmt.Errorf("exec: negative LIMIT %d", n)
	}
	return int(n), nil
}

// orderAndLimit applies a statement's ORDER BY (keys are parallel to
// rel.Rows; may be nil when orderBy is empty) and LIMIT. When a LIMIT
// bounds an ordered result below its size, a bounded top-k selection
// replaces the full sort, so kNN-style queries stop sorting at k.
func (r *runner) orderAndLimit(rel *Relation, keys []sqltypes.Row, orderBy []sql.OrderItem, limit sql.Expr) error {
	n, err := r.limitCount(limit)
	if err != nil {
		return err
	}
	if len(orderBy) > 0 {
		if n >= 0 && n < len(rel.Rows) {
			return topKRows(rel, keys, orderBy, n)
		}
		if err := sortRows(rel.Rows, keys, orderBy); err != nil {
			return err
		}
	}
	if n >= 0 && n < len(rel.Rows) {
		rel.Rows = rel.Rows[:n]
	}
	return nil
}

// topKRows replaces rel.Rows with the n first rows of the stable sort by
// keys, without sorting the rest: a bounded heap of row indices whose root
// is the worst kept row. Ties break on the original index, which makes the
// order total and the result identical to sortRows + truncate.
func topKRows(rel *Relation, keys []sqltypes.Row, orderBy []sql.OrderItem, n int) error {
	if len(rel.Rows) != len(keys) {
		return fmt.Errorf("exec: internal: %d rows but %d sort keys", len(rel.Rows), len(keys))
	}
	if n == 0 {
		rel.Rows = rel.Rows[:0]
		return nil
	}
	var cmpErr error
	less := func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		for j := range orderBy {
			c, err := sqltypes.Compare(ka[j], kb[j])
			if err != nil {
				cmpErr = err
				return false
			}
			if c != 0 {
				if orderBy[j].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return a < b
	}
	worse := func(a, b int) bool { return less(b, a) }
	h := make([]int, 0, n)
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(h[i], h[parent]) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	siftDown := func(i int) {
		for {
			l, rc := 2*i+1, 2*i+2
			m := i
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if rc < len(h) && worse(h[rc], h[m]) {
				m = rc
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := range rel.Rows {
		if len(h) < n {
			h = append(h, i)
			siftUp(len(h) - 1)
		} else if less(i, h[0]) {
			h[0] = i
			siftDown(0)
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	if cmpErr != nil {
		return cmpErr
	}
	out := make([]sqltypes.Row, len(h))
	for i, j := range h {
		out[i] = rel.Rows[j]
	}
	rel.Rows = out
	return nil
}

// evalCore evaluates one SELECT core plus its statement-level ORDER BY and
// LIMIT.
func (r *runner) evalCore(core *sql.SelectCore, orderBy []sql.OrderItem, limit sql.Expr, scope *cteScope) (*Relation, error) {
	input, filtered, err := r.buildFrom(core, scope)
	if err != nil {
		return nil, err
	}

	// Filter (unless the WHERE clause was already fused into the final
	// join by buildFrom).
	if core.Where != nil && !filtered {
		ce := &compileEnv{schema: input.Schema, params: r.params}
		pred, err := ce.compile(core.Where)
		if err != nil {
			return nil, err
		}
		kept := input.Rows[:0:0]
		for _, row := range input.Rows {
			v, err := pred(row)
			if err != nil {
				return nil, err
			}
			if t, null := truth(v); t && !null {
				kept = append(kept, row)
			}
		}
		input = &Relation{Schema: input.Schema, Rows: kept}
	}

	items, err := expandStars(core.Items, input.Schema)
	if err != nil {
		return nil, err
	}

	hasAgg := len(core.GroupBy) > 0 || core.Having != nil
	for _, it := range items {
		if containsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	for _, oi := range orderBy {
		if containsAggregate(oi.Expr) {
			hasAgg = true
		}
	}
	hasUnnest := false
	for _, it := range items {
		if it.Expr != nil && containsUnnest(it.Expr) {
			hasUnnest = true
		}
	}
	if hasAgg && hasUnnest {
		return nil, fmt.Errorf("exec: UNNEST cannot be combined with aggregation in one SELECT")
	}

	var out *Relation
	var orderKeys []sqltypes.Row
	if hasAgg {
		out, orderKeys, err = r.evalGrouped(core, items, orderBy, input)
	} else if hasUnnest {
		out, err = r.evalUnnest(items, input)
	} else {
		out, err = r.evalProject(items, input)
	}
	if err != nil {
		return nil, err
	}

	if len(orderBy) > 0 && !hasAgg {
		// Grouped cores computed their keys per group (possibly zero of
		// them); everything else sorts on per-row keys.
		orderKeys, err = r.plainOrderKeys(orderBy, input, out, hasUnnest)
		if err != nil {
			return nil, err
		}
	}
	if err := r.orderAndLimit(out, orderKeys, orderBy, limit); err != nil {
		return nil, err
	}
	return out, nil
}

// plainOrderKeys computes ORDER BY keys for non-grouped cores. Keys are
// evaluated against the output schema when every column reference resolves
// there (required for UNNEST cores, whose output rows do not correspond 1:1
// to input rows); otherwise against the input rows, which are parallel to
// the output rows.
func (r *runner) plainOrderKeys(orderBy []sql.OrderItem, input, out *Relation, unnested bool) ([]sqltypes.Row, error) {
	resolvesOnOutput := true
	for _, oi := range orderBy {
		var bad bool
		walkExpr(oi.Expr, func(e sql.Expr) {
			if c, ok := e.(*sql.ColumnRef); ok {
				if _, err := out.Schema.resolve(c.Table, c.Column); err != nil {
					bad = true
				}
			}
		})
		if bad {
			resolvesOnOutput = false
		}
	}
	src := out
	if !resolvesOnOutput {
		if unnested {
			return nil, fmt.Errorf("exec: ORDER BY after UNNEST must reference output columns")
		}
		src = input
	}
	exprs := make([]sql.Expr, len(orderBy))
	for i, oi := range orderBy {
		exprs[i] = oi.Expr
	}
	comps, err := r.compileAll(exprs, src.Schema, nil)
	if err != nil {
		return nil, err
	}
	keys := make([]sqltypes.Row, len(src.Rows))
	for i, row := range src.Rows {
		key := make(sqltypes.Row, len(comps))
		for j, c := range comps {
			v, err := c(row)
			if err != nil {
				return nil, err
			}
			key[j] = v
		}
		keys[i] = key
	}
	return keys, nil
}

// sortRows stably sorts rows by the parallel keys honoring per-item
// direction.
func sortRows(rows []sqltypes.Row, keys []sqltypes.Row, orderBy []sql.OrderItem) error {
	if len(rows) != len(keys) {
		return fmt.Errorf("exec: internal: %d rows but %d sort keys", len(rows), len(keys))
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j := range orderBy {
			c, err := sqltypes.Compare(ka[j], kb[j])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if orderBy[j].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	orig := make([]sqltypes.Row, len(rows))
	copy(orig, rows)
	for i, j := range idx {
		rows[i] = orig[j]
	}
	return nil
}

// expandStars replaces * and tbl.* items with explicit column references.
func expandStars(items []sql.SelectItem, schema Schema) ([]sql.SelectItem, error) {
	out := make([]sql.SelectItem, 0, len(items))
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range schema {
			if it.Table != "" && !strings.EqualFold(c.Qual, it.Table) {
				continue
			}
			matched = true
			out = append(out, sql.SelectItem{
				Expr:  &sql.ColumnRef{Table: c.Qual, Column: c.Name},
				Alias: c.Name,
			})
		}
		if !matched {
			return nil, fmt.Errorf("exec: %s.* matches no columns", it.Table)
		}
	}
	return out, nil
}

func itemExprs(items []sql.SelectItem) []sql.Expr {
	out := make([]sql.Expr, len(items))
	for i, it := range items {
		out[i] = it.Expr
	}
	return out
}

// evalProject computes a plain projection.
func (r *runner) evalProject(items []sql.SelectItem, input *Relation) (*Relation, error) {
	out := &Relation{Schema: itemSchema(items)}
	comps, err := r.compileAll(itemExprs(items), input.Schema, nil)
	if err != nil {
		return nil, err
	}
	out.Rows = make([]sqltypes.Row, 0, len(input.Rows))
	var arena rowArena
	for _, row := range input.Rows {
		orow := arena.alloc(len(comps))
		for i, c := range comps {
			v, err := c(row)
			if err != nil {
				return nil, err
			}
			orow[i] = v
		}
		out.Rows = append(out.Rows, orow)
	}
	return out, nil
}

// evalUnnest computes a projection where one or more items are top-level
// UNNEST calls: each input row expands to as many output rows as the longest
// unnested array (shorter arrays pad with NULL), with scalar items repeated.
// This matches PostgreSQL's parallel unnesting of same-length arrays, which
// the PTLDB schema guarantees.
func (r *runner) evalUnnest(items []sql.SelectItem, input *Relation) (*Relation, error) {
	ce := &compileEnv{schema: input.Schema, params: r.params}
	unnest := make([]compiledExpr, len(items)) // nil => scalar item
	scalar := make([]compiledExpr, len(items))
	for i, it := range items {
		if fc, ok := it.Expr.(*sql.FuncCall); ok && fc.Name == "UNNEST" {
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("exec: UNNEST takes exactly one argument")
			}
			c, err := ce.compile(fc.Args[0])
			if err != nil {
				return nil, err
			}
			unnest[i] = c
			continue
		}
		if containsUnnest(it.Expr) {
			return nil, fmt.Errorf("exec: UNNEST must be a top-level select item")
		}
		c, err := ce.compile(it.Expr)
		if err != nil {
			return nil, err
		}
		scalar[i] = c
	}

	out := &Relation{Schema: itemSchema(items)}
	merged := uint64(0) // rows produced by UNNEST expansion
	arrays := make([][]int64, len(items))
	arrayNull := make([]bool, len(items))
	scalars := make(sqltypes.Row, len(items))
	for _, row := range input.Rows {
		maxLen := 0
		for i := range items {
			if unnest[i] != nil {
				v, err := unnest[i](row)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					arrays[i], arrayNull[i] = nil, true
					continue
				}
				if v.T != sqltypes.IntArray {
					return nil, fmt.Errorf("exec: UNNEST of %s", v.T)
				}
				arrays[i], arrayNull[i] = v.A, false
				if len(v.A) > maxLen {
					maxLen = len(v.A)
				}
			} else {
				v, err := scalar[i](row)
				if err != nil {
					return nil, err
				}
				scalars[i] = v
			}
		}
		// One backing allocation for the expansion of this input row.
		backing := make(sqltypes.Row, maxLen*len(items))
		for j := 0; j < maxLen; j++ {
			orow := backing[j*len(items) : (j+1)*len(items)]
			for i := range items {
				if unnest[i] != nil {
					if !arrayNull[i] && j < len(arrays[i]) {
						orow[i] = sqltypes.NewInt(arrays[i][j])
					} else {
						orow[i] = sqltypes.Null
					}
				} else {
					orow[i] = scalars[i]
				}
			}
			out.Rows = append(out.Rows, orow)
		}
		merged += uint64(maxLen)
	}
	if em := execMetrics(r.cat); em != nil {
		em.TuplesMerged.Add(merged)
	}
	return out, nil
}

// evalGrouped computes aggregation with optional GROUP BY, returning the
// output relation and the per-group ORDER BY keys.
func (r *runner) evalGrouped(core *sql.SelectCore, items []sql.SelectItem, orderBy []sql.OrderItem, input *Relation) (*Relation, []sqltypes.Row, error) {
	// Collect every aggregate call node across select items and order items.
	var aggs []*sql.FuncCall
	for _, it := range items {
		collectAggregates(it.Expr, &aggs)
	}
	for _, oi := range orderBy {
		collectAggregates(oi.Expr, &aggs)
	}
	collectAggregates(core.Having, &aggs)

	// Without GROUP BY there is a single group whose representative row may
	// not exist (empty input), so bare column references are invalid — the
	// standard SQL rule.
	if len(core.GroupBy) == 0 {
		for _, it := range items {
			if hasBareColumnRef(it.Expr) {
				return nil, nil, fmt.Errorf("exec: column reference outside aggregate requires GROUP BY")
			}
		}
		for _, oi := range orderBy {
			if hasBareColumnRef(oi.Expr) {
				return nil, nil, fmt.Errorf("exec: ORDER BY column outside aggregate requires GROUP BY")
			}
		}
		if hasBareColumnRef(core.Having) {
			return nil, nil, fmt.Errorf("exec: HAVING column outside aggregate requires GROUP BY")
		}
	}

	// Compile the aggregate argument expressions and the GROUP BY keys
	// against the input schema.
	aggArgs := make([]compiledExpr, len(aggs))
	ce := &compileEnv{schema: input.Schema, params: r.params}
	for i, a := range aggs {
		if a.Star {
			continue
		}
		if len(a.Args) != 1 {
			return nil, nil, fmt.Errorf("exec: %s takes one argument", a.Name)
		}
		c, err := ce.compile(a.Args[0])
		if err != nil {
			return nil, nil, err
		}
		aggArgs[i] = c
	}
	groupComps, err := r.compileAll(core.GroupBy, input.Schema, nil)
	if err != nil {
		return nil, nil, err
	}

	// Compile output and order expressions with aggregate substitution: the
	// closures read aggValues, rebound per group below.
	var aggValues map[*sql.FuncCall]sqltypes.Value
	itemComps, err := r.compileAll(itemExprs(items), input.Schema, &aggValues)
	if err != nil {
		return nil, nil, err
	}
	orderExprs := make([]sql.Expr, len(orderBy))
	for i, oi := range orderBy {
		orderExprs[i] = oi.Expr
	}
	orderComps, err := r.compileAll(orderExprs, input.Schema, &aggValues)
	if err != nil {
		return nil, nil, err
	}
	var havingComp compiledExpr
	if core.Having != nil {
		ce2 := &compileEnv{schema: input.Schema, params: r.params, agg: &aggValues}
		havingComp, err = ce2.compile(core.Having)
		if err != nil {
			return nil, nil, err
		}
	}

	type group struct {
		first  sqltypes.Row
		states []aggState
	}
	groups := map[string]*group{}
	var groupOrder []string // first-seen order

	keyVals := make(sqltypes.Row, len(groupComps))
	var keyBuf []byte
	for _, row := range input.Rows {
		keyBuf = keyBuf[:0]
		if len(groupComps) > 0 {
			for i, c := range groupComps {
				v, err := c(row)
				if err != nil {
					return nil, nil, err
				}
				keyVals[i] = v
			}
			keyBuf = sqltypes.EncodeRow(keyBuf, keyVals)
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &group{first: row, states: newAggStates(aggs)}
			groups[string(keyBuf)] = g
			groupOrder = append(groupOrder, string(keyBuf))
		}
		for i, a := range aggs {
			if err := g.states[i].observe(a, aggArgs[i], row); err != nil {
				return nil, nil, err
			}
		}
	}
	// A query with aggregates but no GROUP BY produces exactly one row, even
	// over empty input (Code 1 relies on MIN over an empty join being NULL).
	if len(core.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{first: nil, states: newAggStates(aggs)}
		groupOrder = append(groupOrder, "")
	}

	out := &Relation{Schema: itemSchema(items)}
	var sortKeys []sqltypes.Row
	for _, k := range groupOrder {
		g := groups[k]
		aggValues = make(map[*sql.FuncCall]sqltypes.Value, len(aggs))
		for i, a := range aggs {
			aggValues[a] = g.states[i].result(a)
		}
		if havingComp != nil {
			v, err := havingComp(g.first)
			if err != nil {
				return nil, nil, err
			}
			if keep, null := truth(v); !keep || null {
				continue
			}
		}
		orow := make(sqltypes.Row, len(itemComps))
		for i, c := range itemComps {
			v, err := c(g.first)
			if err != nil {
				return nil, nil, err
			}
			orow[i] = v
		}
		out.Rows = append(out.Rows, orow)
		if len(orderComps) > 0 {
			key := make(sqltypes.Row, len(orderComps))
			for j, c := range orderComps {
				v, err := c(g.first)
				if err != nil {
					return nil, nil, err
				}
				key[j] = v
			}
			sortKeys = append(sortKeys, key)
		}
	}
	return out, sortKeys, nil
}

// aggState accumulates one aggregate over a group.
type aggState struct {
	count   int64
	sum     float64
	sumInt  int64
	intOnly bool
	best    sqltypes.Value
	seen    bool
}

func newAggStates(aggs []*sql.FuncCall) []aggState {
	s := make([]aggState, len(aggs))
	for i := range s {
		s[i].intOnly = true
	}
	return s
}

func (st *aggState) observe(a *sql.FuncCall, arg compiledExpr, row sqltypes.Row) error {
	if a.Star { // COUNT(*)
		st.count++
		return nil
	}
	v, err := arg(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	st.count++
	switch a.Name {
	case "MIN", "MAX":
		if !st.seen {
			st.best, st.seen = v, true
			return nil
		}
		// Fast path for the integer label timestamps.
		if v.T == sqltypes.Int64 && st.best.T == sqltypes.Int64 {
			if (a.Name == "MIN" && v.I < st.best.I) || (a.Name == "MAX" && v.I > st.best.I) {
				st.best = v
			}
			return nil
		}
		c, err := sqltypes.Compare(v, st.best)
		if err != nil {
			return err
		}
		if (a.Name == "MIN" && c < 0) || (a.Name == "MAX" && c > 0) {
			st.best = v
		}
	case "SUM", "AVG":
		f, err := v.AsFloat()
		if err != nil {
			return err
		}
		st.sum += f
		if v.T == sqltypes.Int64 {
			st.sumInt += v.I
		} else {
			st.intOnly = false
		}
	}
	return nil
}

func (st *aggState) result(a *sql.FuncCall) sqltypes.Value {
	switch a.Name {
	case "COUNT":
		return sqltypes.NewInt(st.count)
	case "MIN", "MAX":
		if !st.seen {
			return sqltypes.Null
		}
		return st.best
	case "SUM":
		if st.count == 0 {
			return sqltypes.Null
		}
		if st.intOnly {
			return sqltypes.NewInt(st.sumInt)
		}
		return sqltypes.NewFloat(st.sum)
	case "AVG":
		if st.count == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(st.sum / float64(st.count))
	default:
		return sqltypes.Null
	}
}

// itemSchema derives the output schema of a projection.
func itemSchema(items []sql.SelectItem) Schema {
	s := make(Schema, len(items))
	for i, it := range items {
		name := it.Alias
		if name == "" {
			name = defaultName(it.Expr)
		}
		s[i] = ColID{Name: name}
	}
	return s
}

// EvalConstRow evaluates row-independent expressions (literals, parameters,
// arithmetic over them) into a row of values: the VALUES clause of INSERT.
func EvalConstRow(exprs []sql.Expr, params []sqltypes.Value) (sqltypes.Row, error) {
	ce := &compileEnv{params: params}
	out := make(sqltypes.Row, len(exprs))
	for i, e := range exprs {
		c, err := ce.compile(e)
		if err != nil {
			return nil, err
		}
		v, err := c(nil)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
