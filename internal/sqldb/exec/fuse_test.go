package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ptldb/internal/sqldb/sql"
	"ptldb/internal/sqldb/sqltypes"
)

// The templates below are the paper's Codes 1–4 exactly as core/queries.go
// issues them (core cannot be imported here without a cycle). Table names
// and the bucket width are interpolated like core does.
const (
	tmplV2VEA = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[1]s WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[2]s WHERE v=$2)
SELECT MIN(inp.ta)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td
  AND outp.td>=$3`

	tmplV2VLD = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[1]s WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[2]s WHERE v=$2)
SELECT MAX(outp.td)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td
  AND inp.ta<=$3`

	tmplV2VSD = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[1]s WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM %[2]s WHERE v=$2)
SELECT MIN(inp.ta-outp.td)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td
  AND outp.td>=$3
  AND inp.ta<=$4`

	tmplKNNNaiveEA = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v AS v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[2]s
      WHERE v=$1) n1a
   WHERE td >=$2)
SELECT v2, MIN(n2.ta)
FROM n1,
  (SELECT hub, td, UNNEST(vs[1:$3]) AS v2, UNNEST(tas[1:$3]) AS ta
   FROM %[1]s) n2
WHERE n1.hub=n2.hub
  AND n2.td>=n1.ta
GROUP BY v2
ORDER BY MIN(n2.ta), v2
LIMIT $3`

	tmplKNNNaiveLD = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v AS v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[2]s
      WHERE v=$1) n1a)
SELECT v2, MAX(n1.td)
FROM n1,
  (SELECT hub, td, UNNEST(vs[1:$3]) AS v2, UNNEST(tas[1:$3]) AS ta
   FROM %[1]s) n2
WHERE n1.hub=n2.hub
  AND n2.td>=n1.ta
  AND n2.ta<=$2
GROUP BY v2
ORDER BY MAX(n1.td) DESC, v2
LIMIT $3`

	tmplKNNEA = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[3]s
      WHERE v=$1) n1a
   WHERE td >=$2),
    n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
   FROM %[1]s n1bb, n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.dephour=FLOOR(n1.ta/%[2]d.0))
SELECT v2, MIN(ta)
FROM (
      (SELECT v2, MIN(n3.ta) AS ta
       FROM
          (SELECT UNNEST(tas[1:$3]) AS ta, UNNEST(vs[1:$3]) AS v2
           FROM n1b) n3
       GROUP BY v2
       ORDER BY MIN(n3.ta), v2
       LIMIT $3)
   UNION
      (SELECT n2.v2, MIN(n2.ta) AS ta
       FROM
          (SELECT n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2, UNNEST(tas_exp) AS ta
           FROM n1b) n2
       WHERE n1_ta <= n2.td
       GROUP BY n2.v2
       ORDER BY MIN(n2.ta), v2
       LIMIT $3)) S53
GROUP BY v2
ORDER BY MIN(ta), v2
LIMIT $3`

	tmplOTMEA = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[3]s
      WHERE v=$1) n1a
   WHERE td >=$2),
    n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
   FROM %[1]s n1bb, n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.dephour=FLOOR(n1.ta/%[2]d.0))
SELECT v2, MIN(ta)
FROM (
      (SELECT v2, MIN(n3.ta) AS ta
       FROM
          (SELECT UNNEST(tas) AS ta, UNNEST(vs) AS v2
           FROM n1b) n3
       GROUP BY v2
       ORDER BY MIN(n3.ta), v2)
   UNION
      (SELECT n2.v2, MIN(n2.ta) AS ta
       FROM
          (SELECT n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2, UNNEST(tas_exp) AS ta
           FROM n1b) n2
       WHERE n1_ta <= n2.td
       GROUP BY n2.v2
       ORDER BY MIN(n2.ta), v2)) S53
GROUP BY v2
ORDER BY MIN(ta), v2`

	tmplKNNLD = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[3]s
      WHERE v=$1) n1a),
    n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
   FROM %[1]s n1bb, n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.arrhour=FLOOR($2/%[2]d.0))
SELECT v2, MAX(td)
FROM (
      (SELECT v2, MAX(n3.n1_td) AS td
       FROM
          (SELECT n1_td, n1_ta, UNNEST(tds[1:$3]) AS td, UNNEST(vs[1:$3]) AS v2
           FROM n1b) n3
       WHERE n3.td>=n1_ta
       GROUP BY v2
       ORDER BY MAX(n3.n1_td) DESC, v2
       LIMIT $3)
   UNION
      (SELECT n2.v2, MAX(n2.n1_td) AS td
       FROM
          (SELECT n1_td, n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2, UNNEST(tas_exp) AS ta
           FROM n1b) n2
       WHERE n2.td>=n1_ta
         AND n2.ta<=$2
       GROUP BY n2.v2
       ORDER BY MAX(n2.n1_td) DESC, v2
       LIMIT $3)) S53
GROUP BY v2
ORDER BY MAX(td) DESC, v2
LIMIT $3`

	tmplOTMLD = `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v, UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
      FROM %[3]s
      WHERE v=$1) n1a),
    n1b AS
  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td
   FROM %[1]s n1bb, n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.arrhour=FLOOR($2/%[2]d.0))
SELECT v2, MAX(td)
FROM (
      (SELECT v2, MAX(n3.n1_td) AS td
       FROM
          (SELECT n1_td, n1_ta, UNNEST(tds) AS td, UNNEST(vs) AS v2
           FROM n1b) n3
       WHERE n3.td>=n1_ta
       GROUP BY v2
       ORDER BY MAX(n3.n1_td) DESC, v2)
   UNION
      (SELECT n2.v2, MAX(n2.n1_td) AS td
       FROM
          (SELECT n1_td, n1_ta, UNNEST(tds_exp) AS td, UNNEST(vs_exp) AS v2, UNNEST(tas_exp) AS ta
           FROM n1b) n2
       WHERE n2.td>=n1_ta
         AND n2.ta<=$2
       GROUP BY n2.v2
       ORDER BY MAX(n2.n1_td) DESC, v2)) S53
GROUP BY v2
ORDER BY MAX(td) DESC, v2`
)

func mustParse(t *testing.T, q string) *sql.Select {
	t.Helper()
	sel, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, q)
	}
	return sel
}

func TestFuseRecognizesCodes(t *testing.T) {
	cases := []struct {
		kind string
		q    string
	}{
		{"v2v-ea", fmt.Sprintf(tmplV2VEA, "lout", "lin")},
		{"v2v-ld", fmt.Sprintf(tmplV2VLD, "lout", "lin")},
		{"v2v-sd", fmt.Sprintf(tmplV2VSD, "lout", "lin")},
		{"knn-naive-ea", fmt.Sprintf(tmplKNNNaiveEA, "ea_knn_naive_s", "lout")},
		{"knn-naive-ld", fmt.Sprintf(tmplKNNNaiveLD, "ld_knn_naive_s", "lout")},
		{"cond-knn-ea", fmt.Sprintf(tmplKNNEA, "knn_ea_s", 3600, "lout")},
		{"cond-otm-ea", fmt.Sprintf(tmplOTMEA, "otm_ea_s", 3600, "lout")},
		{"cond-knn-ld", fmt.Sprintf(tmplKNNLD, "knn_ld_s", 3600, "lout")},
		{"cond-otm-ld", fmt.Sprintf(tmplOTMLD, "otm_ld_s", 3600, "lout")},
	}
	for _, tc := range cases {
		fp := Fuse(mustParse(t, tc.q))
		if fp == nil {
			t.Errorf("%s: query did not fuse", tc.kind)
			continue
		}
		if fp.Kind() != tc.kind {
			t.Errorf("Kind() = %q, want %q", fp.Kind(), tc.kind)
		}
	}
}

// TestFuseRejectsNearMisses feeds queries that are one mutation away from
// the recognized shapes; all of them must fall back to the general executor.
func TestFuseRejectsNearMisses(t *testing.T) {
	v2vEA := fmt.Sprintf(tmplV2VEA, "lout", "lin")
	cases := []struct {
		name string
		q    string
	}{
		{"strict reach comparison",
			strings.Replace(v2vEA, "outp.ta<=inp.td", "outp.ta<inp.td", 1)},
		{"wrong aggregate",
			strings.Replace(v2vEA, "MIN(inp.ta)", "MAX(inp.ta)", 1)},
		{"aggregate inside expression",
			strings.Replace(v2vEA, "MIN(inp.ta)", "MIN(inp.ta)+0", 1)},
		{"extra conjunct",
			v2vEA + " AND outp.hub>=0"},
		{"literal instead of parameter bound",
			strings.Replace(v2vEA, "outp.td>=$3", "outp.td>=100", 1)},
		{"cte shadows base table",
			// The second label scan reads FROM outp, which the general
			// executor resolves to the first CTE, not a base table.
			fmt.Sprintf(tmplV2VEA, "lout", "outp")},
		{"knn limit differs from slice bound",
			strings.Replace(fmt.Sprintf(tmplKNNNaiveEA, "naive", "lout"), "LIMIT $3", "LIMIT $2", 1)},
		{"knn missing order by",
			strings.Replace(fmt.Sprintf(tmplKNNNaiveEA, "naive", "lout"), "ORDER BY MIN(n2.ta), v2\n", "", 1)},
		{"condensed union all",
			strings.Replace(fmt.Sprintf(tmplKNNEA, "aux_ea", 50, "lout"), "UNION", "UNION ALL", 1)},
		{"plain select", "SELECT a FROM nums"},
	}
	for _, tc := range cases {
		if fp := Fuse(mustParse(t, tc.q)); fp != nil {
			t.Errorf("%s: unexpectedly fused as %q", tc.name, fp.Kind())
		}
	}
}

// --- differential harness -------------------------------------------------

// scratchMemTable implements ScratchTable over a memTable with maximally
// hostile buffer reuse — rows and the arena are recycled exactly as the
// contracts allow — to surface aliasing bugs in the fused operators.
type scratchMemTable struct{ *memTable }

// copyRow materializes row into s per the ScratchTable contracts: the Row
// header is recycled, arrays are carved out of s.Arena by appending.
func copyRow(row sqltypes.Row, s *RowScratch) sqltypes.Row {
	if cap(s.Row) >= len(row) {
		s.Row = s.Row[:len(row)]
	} else {
		s.Row = make(sqltypes.Row, len(row))
	}
	for i, v := range row {
		if v.T == sqltypes.IntArray {
			start := len(s.Arena)
			s.Arena = append(s.Arena, v.A...)
			v = sqltypes.NewIntArray(s.Arena[start:len(s.Arena):len(s.Arena)])
		}
		s.Row[i] = v
	}
	return s.Row
}

func (m scratchMemTable) LookupPKScratch(key []int64, s *RowScratch) (sqltypes.Row, bool, error) {
	row, ok, err := m.LookupPK(key)
	if err != nil || !ok {
		return nil, ok, err
	}
	return copyRow(row, s), true, nil
}

func (m scratchMemTable) ScanScratch(s *RowScratch, fn func(sqltypes.Row) error) error {
	return m.Scan(func(row sqltypes.Row) error {
		s.Arena = s.Arena[:0] // recycle: clobbers the previous row's arrays
		return fn(copyRow(row, s))
	})
}

// scratchCatalog serves every table through the ScratchTable fast path.
type scratchCatalog struct{ inner memCatalog }

func (c scratchCatalog) Table(name string) (Table, bool) {
	t, ok := c.inner.Table(name)
	if !ok {
		return nil, false
	}
	return scratchMemTable{t.(*memTable)}, true
}

// diffRun runs q through the fused plan (which must exist) — once over the
// plain catalog and once through the scratch fast path — and requires both
// to match the general executor's schema and rows exactly.
func diffRun(t *testing.T, cat memCatalog, q string, params []sqltypes.Value) {
	t.Helper()
	sel := mustParse(t, q)
	fp := Fuse(sel)
	if fp == nil {
		t.Fatalf("query did not fuse:\n%s", q)
	}
	want, err := Run(sel, cat, params)
	if err != nil {
		t.Fatalf("general run (params %v): %v", params, err)
	}
	for _, c := range []Catalog{cat, scratchCatalog{cat}} {
		got, err := fp.Run(c, params)
		if err != nil {
			t.Fatalf("fused run (params %v): %v", params, err)
		}
		compareRelations(t, got, want, params)
	}
}

func compareRelations(t *testing.T, got, want *Relation, params []sqltypes.Value) {
	t.Helper()
	if len(got.Schema) != len(want.Schema) {
		t.Fatalf("schema width %d, want %d", len(got.Schema), len(want.Schema))
	}
	for i := range got.Schema {
		if !strings.EqualFold(got.Schema[i].Name, want.Schema[i].Name) {
			t.Fatalf("schema[%d].Name = %q, want %q", i, got.Schema[i].Name, want.Schema[i].Name)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("params %v: %d rows, want %d\n got: %v\nwant: %v",
			params, len(got.Rows), len(want.Rows), got.Rows, want.Rows)
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("row %d width %d, want %d", i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range got.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			switch {
			case g.IsNull() && w.IsNull():
			case g.T == sqltypes.Int64 && w.T == sqltypes.Int64 && g.I == w.I:
			default:
				t.Fatalf("params %v row %d col %d: got %v, want %v\n got: %v\nwant: %v",
					params, i, j, g, w, got.Rows, want.Rows)
			}
		}
	}
}

// randLabelTable builds a label table (v, hubs, tds, tas) for stops
// 1..nStops. Hubs are drawn from a small range so the two sides of the join
// collide; sorted=false leaves the arrays in random (hub, td) order to
// exercise the hash-join fallback.
func randLabelTable(rng *rand.Rand, nStops, maxEntries int, sorted bool) *memTable {
	tbl := &memTable{cols: []string{"v", "hubs", "tds", "tas"}, pk: []int{0}}
	for v := int64(1); v <= int64(nStops); v++ {
		n := rng.Intn(maxEntries + 1)
		hubs := make([]int64, n)
		tds := make([]int64, n)
		tas := make([]int64, n)
		for i := 0; i < n; i++ {
			hubs[i] = int64(rng.Intn(4))
			tds[i] = int64(rng.Intn(200))
			tas[i] = tds[i] + 1 + int64(rng.Intn(80))
		}
		if sorted {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool {
				ia, ib := idx[a], idx[b]
				if hubs[ia] != hubs[ib] {
					return hubs[ia] < hubs[ib]
				}
				return tds[ia] < tds[ib]
			})
			sh := make([]int64, n)
			sd := make([]int64, n)
			sa := make([]int64, n)
			for i, p := range idx {
				sh[i], sd[i], sa[i] = hubs[p], tds[p], tas[p]
			}
			hubs, tds, tas = sh, sd, sa
		}
		tbl.rows = append(tbl.rows, sqltypes.Row{
			sqltypes.NewInt(v),
			sqltypes.NewIntArray(hubs),
			sqltypes.NewIntArray(tds),
			sqltypes.NewIntArray(tas),
		})
	}
	return tbl
}

func TestFusedV2VDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []struct {
		q       string
		nParams int
	}{
		{fmt.Sprintf(tmplV2VEA, "lout", "lin"), 3},
		{fmt.Sprintf(tmplV2VLD, "lout", "lin"), 3},
		{fmt.Sprintf(tmplV2VSD, "lout", "lin"), 4},
	}
	for trial := 0; trial < 30; trial++ {
		sorted := trial%2 == 0 // odd trials exercise the hash-join fallback
		cat := memCatalog{
			"lout": randLabelTable(rng, 5, 8, sorted),
			"lin":  randLabelTable(rng, 5, 8, sorted),
		}
		for _, qq := range queries {
			for rep := 0; rep < 4; rep++ {
				tv := int64(rng.Intn(220))
				params := []sqltypes.Value{
					sqltypes.NewInt(int64(rng.Intn(7))), // includes absent stops
					sqltypes.NewInt(int64(rng.Intn(7))),
					sqltypes.NewInt(tv),
				}
				if qq.nParams == 4 {
					params = append(params, sqltypes.NewInt(tv+int64(rng.Intn(150))))
				}
				diffRun(t, cat, qq.q, params)
			}
		}
	}
}

// randNaiveTable builds a (hub, td, vs, tas) condensed-naive table with one
// row per distinct (hub, td).
func randNaiveTable(rng *rand.Rand) *memTable {
	tbl := &memTable{cols: []string{"hub", "td", "vs", "tas"}, pk: []int{0, 1}}
	for hub := int64(0); hub < 4; hub++ {
		seen := map[int64]bool{}
		for i := 0; i < 3; i++ {
			td := int64(rng.Intn(250))
			if seen[td] {
				continue
			}
			seen[td] = true
			n := rng.Intn(5)
			vs := make([]int64, n)
			tas := make([]int64, n)
			for j := 0; j < n; j++ {
				vs[j] = int64(100 + rng.Intn(6))
				tas[j] = td + int64(rng.Intn(120))
			}
			tbl.rows = append(tbl.rows, sqltypes.Row{
				sqltypes.NewInt(hub), sqltypes.NewInt(td),
				sqltypes.NewIntArray(vs), sqltypes.NewIntArray(tas),
			})
		}
	}
	return tbl
}

func TestFusedKNNNaiveDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	qEA := fmt.Sprintf(tmplKNNNaiveEA, "naive", "lout")
	qLD := fmt.Sprintf(tmplKNNNaiveLD, "naive", "lout")
	for trial := 0; trial < 30; trial++ {
		cat := memCatalog{
			"lout":  randLabelTable(rng, 5, 8, trial%2 == 0),
			"naive": randNaiveTable(rng),
		}
		for _, q := range []string{qEA, qLD} {
			for rep := 0; rep < 4; rep++ {
				params := []sqltypes.Value{
					sqltypes.NewInt(int64(rng.Intn(7))),
					sqltypes.NewInt(int64(rng.Intn(300))),
					sqltypes.NewInt(int64(rng.Intn(5))), // k, including 0
				}
				diffRun(t, cat, q, params)
			}
		}
	}
}

// randAuxTable builds a condensed label table keyed (hub, bucket) with the
// top-k arrays (vs + top) and the expansion triple (tds_exp, vs_exp,
// tas_exp). bucketCol is "dephour" with top="tas" for EA, "arrhour" with
// top="tds" for LD.
func randAuxTable(rng *rand.Rand, bucketCol, top string) *memTable {
	tbl := &memTable{
		cols: []string{"hub", bucketCol, "vs", top, "tds_exp", "vs_exp", "tas_exp"},
		pk:   []int{0, 1},
	}
	for hub := int64(0); hub < 4; hub++ {
		for bucket := int64(0); bucket < 8; bucket++ {
			if rng.Intn(4) == 0 {
				continue // leave some (hub, bucket) cells missing
			}
			n := rng.Intn(4)
			vs := make([]int64, n)
			tops := make([]int64, n)
			for j := 0; j < n; j++ {
				vs[j] = int64(100 + rng.Intn(6))
				tops[j] = int64(rng.Intn(400))
			}
			m := rng.Intn(4)
			tdsExp := make([]int64, m)
			vsExp := make([]int64, m)
			tasExp := make([]int64, m)
			for j := 0; j < m; j++ {
				tdsExp[j] = int64(rng.Intn(400))
				vsExp[j] = int64(100 + rng.Intn(6))
				tasExp[j] = tdsExp[j] + int64(rng.Intn(120))
			}
			tbl.rows = append(tbl.rows, sqltypes.Row{
				sqltypes.NewInt(hub), sqltypes.NewInt(bucket),
				sqltypes.NewIntArray(vs), sqltypes.NewIntArray(tops),
				sqltypes.NewIntArray(tdsExp), sqltypes.NewIntArray(vsExp),
				sqltypes.NewIntArray(tasExp),
			})
		}
	}
	return tbl
}

func TestFusedCondensedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const width = 50
	queries := []struct {
		q       string
		nParams int
	}{
		{fmt.Sprintf(tmplKNNEA, "aux_ea", width, "lout"), 3},
		{fmt.Sprintf(tmplKNNLD, "aux_ld", width, "lout"), 3},
		{fmt.Sprintf(tmplOTMEA, "aux_ea", width, "lout"), 2},
		{fmt.Sprintf(tmplOTMLD, "aux_ld", width, "lout"), 2},
	}
	for trial := 0; trial < 25; trial++ {
		cat := memCatalog{
			"lout":   randLabelTable(rng, 5, 8, trial%2 == 0),
			"aux_ea": randAuxTable(rng, "dephour", "tas"),
			"aux_ld": randAuxTable(rng, "arrhour", "tds"),
		}
		for _, qq := range queries {
			for rep := 0; rep < 4; rep++ {
				params := []sqltypes.Value{
					sqltypes.NewInt(int64(rng.Intn(7))),
					sqltypes.NewInt(int64(rng.Intn(350))),
				}
				if qq.nParams == 3 {
					params = append(params, sqltypes.NewInt(int64(rng.Intn(5))))
				}
				diffRun(t, cat, qq.q, params)
			}
		}
	}
}

// TestFusedRuntimeBailouts checks that every runtime precondition failure
// surfaces as ErrNotFused so Stmt.Query can fall back, and that the general
// executor handles the same input.
func TestFusedRuntimeBailouts(t *testing.T) {
	q := fmt.Sprintf(tmplV2VEA, "lout", "lin")
	sel := mustParse(t, q)
	fp := Fuse(sel)
	if fp == nil {
		t.Fatal("v2v-ea did not fuse")
	}

	rng := rand.New(rand.NewSource(3))
	good := memCatalog{
		"lout": randLabelTable(rng, 3, 5, true),
		"lin":  randLabelTable(rng, 3, 5, true),
	}
	one := sqltypes.NewInt(1)

	cases := []struct {
		name   string
		cat    Catalog
		params []sqltypes.Value
	}{
		{"null parameter", good, []sqltypes.Value{{}, one, one}},
		{"float parameter", good, []sqltypes.Value{one, sqltypes.NewFloat(1.5), one}},
		{"missing parameter", good, []sqltypes.Value{one, one}},
		{"table without pk", memCatalog{
			"lout": &memTable{cols: []string{"v", "hubs", "tds", "tas"}},
			"lin":  good["lin"],
		}, []sqltypes.Value{one, one, one}},
		{"unequal array lengths", memCatalog{
			"lout": &memTable{cols: []string{"v", "hubs", "tds", "tas"}, pk: []int{0},
				rows: []sqltypes.Row{{one,
					sqltypes.NewIntArray([]int64{1, 2}),
					sqltypes.NewIntArray([]int64{5}),
					sqltypes.NewIntArray([]int64{6, 7})}}},
			"lin": good["lin"],
		}, []sqltypes.Value{one, one, one}},
	}
	for _, tc := range cases {
		if _, err := fp.Run(tc.cat, tc.params); !errors.Is(err, ErrNotFused) {
			t.Errorf("%s: err = %v, want ErrNotFused", tc.name, err)
		}
	}

	// The general executor must still be able to answer the bailout cases
	// that are legal SQL (everything except the missing parameter).
	for _, tc := range cases[:1] {
		if _, err := Run(sel, tc.cat, tc.params); err != nil {
			t.Errorf("%s: general executor failed too: %v", tc.name, err)
		}
	}
	if _, err := Run(sel, cases[4].cat, cases[4].params); err != nil {
		t.Errorf("unequal array lengths: general executor failed too: %v", err)
	}
}

// TestOrderLimitTopK pits the bounded-heap ORDER BY ... LIMIT path in the
// general executor against a full sort followed by truncation.
func TestOrderLimitTopK(t *testing.T) {
	dups := &memTable{cols: []string{"a", "b"}, pk: []int{0}}
	rng := rand.New(rand.NewSource(5))
	for i := int64(0); i < 40; i++ {
		dups.rows = append(dups.rows, sqltypes.Row{
			sqltypes.NewInt(i), sqltypes.NewInt(int64(rng.Intn(5))),
		})
	}
	cat := memCatalog{"dups": dups}
	for _, order := range []string{"b", "b DESC", "b DESC, a", "b, a DESC"} {
		full := run(t, cat, fmt.Sprintf("SELECT a, b FROM dups ORDER BY %s", order))
		for _, limit := range []int{0, 1, 3, 17, 40, 100} {
			got := run(t, cat, fmt.Sprintf("SELECT a, b FROM dups ORDER BY %s LIMIT %d", order, limit))
			want := full.Rows
			if limit < len(want) {
				want = want[:limit]
			}
			if len(got.Rows) != len(want) {
				t.Fatalf("ORDER BY %s LIMIT %d: %d rows, want %d", order, limit, len(got.Rows), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if got.Rows[i][j].I != want[i][j].I {
						t.Fatalf("ORDER BY %s LIMIT %d row %d: got %v, want %v",
							order, limit, i, got.Rows, want)
					}
				}
			}
		}
	}
	if _, err := sql.Parse("SELECT a FROM dups ORDER BY a LIMIT -1"); err == nil {
		rel, err := Run(mustParse(t, "SELECT a FROM dups ORDER BY a LIMIT -1"), cat, nil)
		if err == nil || !strings.Contains(err.Error(), "negative LIMIT") {
			t.Fatalf("negative LIMIT: rel=%v err=%v, want negative LIMIT error", rel, err)
		}
	}
}
