package sqldb

import (
	"strings"
	"testing"

	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/sqldb/storage"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{Device: storage.RAM, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mkTable(t *testing.T, db *DB, name string, pk []string, cols ...string) *Table {
	t.Helper()
	def := TableDef{Name: name, PK: pk}
	for _, c := range cols {
		parts := strings.SplitN(c, ":", 2)
		typ := sqltypes.Int64
		if len(parts) == 2 {
			switch parts[1] {
			case "arr":
				typ = sqltypes.IntArray
			case "text":
				typ = sqltypes.Text
			case "float":
				typ = sqltypes.Float64
			}
		}
		def.Columns = append(def.Columns, ColumnDef{Name: parts[0], Type: typ})
	}
	tbl, err := db.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func ints(vs ...int64) sqltypes.Row {
	r := make(sqltypes.Row, len(vs))
	for i, v := range vs {
		r[i] = sqltypes.NewInt(v)
	}
	return r
}

// queryInts runs a query and returns the result as int64 rows, with NULLs
// rendered as the sentinel -999999.
func queryInts(t *testing.T, db *DB, q string, params ...sqltypes.Value) [][]int64 {
	t.Helper()
	rel, err := db.Query(q, params...)
	if err != nil {
		t.Fatalf("Query(%s): %v", q, err)
	}
	out := make([][]int64, len(rel.Rows))
	for i, row := range rel.Rows {
		out[i] = make([]int64, len(row))
		for j, v := range row {
			if v.IsNull() {
				out[i][j] = -999999
				continue
			}
			n, err := v.AsInt()
			if err != nil {
				t.Fatalf("row %d col %d: %v", i, j, err)
			}
			out[i][j] = n
		}
	}
	return out
}

func eqRows(t *testing.T, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: got %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d: got %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.CreateTable(TableDef{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := db.CreateTable(TableDef{Name: "t"}); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := db.CreateTable(TableDef{Name: "t",
		Columns: []ColumnDef{{Name: "a", Type: sqltypes.Int64}}, PK: []string{"b"}}); err == nil {
		t.Error("unknown PK column accepted")
	}
	if _, err := db.CreateTable(TableDef{Name: "t",
		Columns: []ColumnDef{{Name: "a", Type: sqltypes.IntArray}}, PK: []string{"a"}}); err == nil {
		t.Error("array PK accepted")
	}
	mkTable(t, db, "t", nil, "a")
	if _, err := db.CreateTable(TableDef{Name: "T",
		Columns: []ColumnDef{{Name: "a", Type: sqltypes.Int64}}}); err == nil {
		t.Error("duplicate (case-insensitive) table accepted")
	}
}

func TestInsertValidationAndLookup(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "t", []string{"id"}, "id", "xs:arr", "name:text")
	row := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewIntArray([]int64{10, 20}), sqltypes.NewText("one")}
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(row); err == nil {
		t.Error("duplicate PK accepted")
	}
	if err := tbl.Insert(ints(2)); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.Insert(sqltypes.Row{sqltypes.NewText("x"), sqltypes.Null, sqltypes.Null}); err == nil {
		t.Error("type mismatch accepted")
	}
	got, ok, err := tbl.LookupPK([]int64{1})
	if err != nil || !ok {
		t.Fatalf("LookupPK: %v %v", ok, err)
	}
	if got[2].S != "one" || len(got[1].A) != 2 {
		t.Errorf("row = %v", got)
	}
	if _, ok, _ := tbl.LookupPK([]int64{99}); ok {
		t.Error("phantom row")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Device: storage.RAM, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(TableDef{Name: "kv", PK: []string{"k"},
		Columns: []ColumnDef{{Name: "k", Type: sqltypes.Int64}, {Name: "v", Type: sqltypes.IntArray}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewIntArray([]int64{i, i * 2})}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{Device: storage.RAM, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, ok := db2.Table("kv")
	if !ok {
		t.Fatal("table lost after reopen")
	}
	if tbl2.RowCount() != 500 {
		t.Fatalf("RowCount = %d", tbl2.RowCount())
	}
	row, ok, err := tbl2.LookupPK([]int64{123})
	if err != nil || !ok || row[1].A[1] != 246 {
		t.Fatalf("lookup after reopen: %v %v %v", row, ok, err)
	}
	got := queryInts(t, db2, "SELECT v[2] FROM kv WHERE k = $1", sqltypes.NewInt(7))
	eqRows(t, got, [][]int64{{14}})
}

func TestBasicSelect(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "nums", []string{"a"}, "a", "b")
	for i := int64(0); i < 10; i++ {
		tbl.Insert(ints(i, i*i))
	}
	eqRows(t, queryInts(t, db, "SELECT a, b FROM nums WHERE a >= 7 ORDER BY a DESC"),
		[][]int64{{9, 81}, {8, 64}, {7, 49}})
	eqRows(t, queryInts(t, db, "SELECT b FROM nums WHERE a = $1", sqltypes.NewInt(4)),
		[][]int64{{16}})
	eqRows(t, queryInts(t, db, "SELECT COUNT(*), MIN(b), MAX(b), SUM(a) FROM nums"),
		[][]int64{{10, 0, 81, 45}})
	eqRows(t, queryInts(t, db, "SELECT a FROM nums ORDER BY a LIMIT 3"),
		[][]int64{{0}, {1}, {2}})
	// Arithmetic and integer division semantics.
	eqRows(t, queryInts(t, db, "SELECT a + 1, a * 2, FLOOR(b / 10) FROM nums WHERE a = 7"),
		[][]int64{{8, 14, 4}})
}

func TestSelectWithoutFrom(t *testing.T) {
	db := newTestDB(t)
	eqRows(t, queryInts(t, db, "SELECT 1 + 2, -3"), [][]int64{{3, -3}})
}

func TestUnnestParallel(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "lab", []string{"v"}, "v", "hubs:arr", "tds:arr")
	tbl.Insert(sqltypes.Row{sqltypes.NewInt(1),
		sqltypes.NewIntArray([]int64{10, 20, 30}), sqltypes.NewIntArray([]int64{100, 200, 300})})
	got := queryInts(t, db, "SELECT v, UNNEST(hubs) AS h, UNNEST(tds) AS d FROM lab WHERE v=1")
	eqRows(t, got, [][]int64{{1, 10, 100}, {1, 20, 200}, {1, 30, 300}})
	// Slices clamp like PostgreSQL.
	got = queryInts(t, db, "SELECT UNNEST(hubs[2:99]) FROM lab WHERE v=1")
	eqRows(t, got, [][]int64{{20}, {30}})
	// Empty slice unnests to zero rows.
	got = queryInts(t, db, "SELECT UNNEST(hubs[3:2]) FROM lab WHERE v=1")
	eqRows(t, got, nil)
}

func TestGroupByWithOrderOnAggregate(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "obs", nil, "grp", "val")
	for _, r := range [][2]int64{{1, 5}, {1, 3}, {2, 9}, {2, 1}, {3, 4}} {
		tbl.Insert(ints(r[0], r[1]))
	}
	got := queryInts(t, db, "SELECT grp, MIN(val) FROM obs GROUP BY grp ORDER BY MIN(val), grp")
	eqRows(t, got, [][]int64{{2, 1}, {1, 3}, {3, 4}})
	got = queryInts(t, db, "SELECT grp, MAX(val) FROM obs GROUP BY grp ORDER BY MAX(val) DESC LIMIT 2")
	eqRows(t, got, [][]int64{{2, 9}, {1, 5}})
	// Aggregate over empty input without GROUP BY yields a NULL row.
	got = queryInts(t, db, "SELECT MIN(val) FROM obs WHERE val > 100")
	eqRows(t, got, [][]int64{{-999999}})
	// ... but with GROUP BY yields no rows.
	got = queryInts(t, db, "SELECT grp, MIN(val) FROM obs WHERE val > 100 GROUP BY grp")
	eqRows(t, got, nil)
}

func TestUnionDedupAndAll(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "u", nil, "x")
	for _, v := range []int64{1, 2} {
		tbl.Insert(ints(v))
	}
	got := queryInts(t, db, "SELECT x FROM u UNION SELECT x FROM u ORDER BY x")
	eqRows(t, got, [][]int64{{1}, {2}})
	got = queryInts(t, db, "SELECT x FROM u UNION ALL SELECT x FROM u ORDER BY x")
	eqRows(t, got, [][]int64{{1}, {1}, {2}, {2}})
	// Parenthesized arms with inner LIMIT.
	got = queryInts(t, db, "(SELECT x FROM u ORDER BY x LIMIT 1) UNION (SELECT x FROM u ORDER BY x DESC LIMIT 1) ORDER BY x")
	eqRows(t, got, [][]int64{{1}, {2}})
}

func TestCTEAndHashJoin(t *testing.T) {
	db := newTestDB(t)
	a := mkTable(t, db, "a", []string{"id"}, "id", "k")
	b := mkTable(t, db, "b", []string{"id"}, "id", "k", "w")
	a.Insert(ints(1, 10))
	a.Insert(ints(2, 20))
	a.Insert(ints(3, 10))
	b.Insert(ints(1, 10, 111))
	b.Insert(ints(2, 30, 222))
	got := queryInts(t, db, `
WITH aa AS (SELECT id, k FROM a)
SELECT aa.id, b.w FROM aa, b WHERE aa.k = b.k ORDER BY aa.id`)
	eqRows(t, got, [][]int64{{1, 111}, {3, 111}})
}

func TestIndexNestedLoopJoin(t *testing.T) {
	db := newTestDB(t)
	dim := mkTable(t, db, "dim", []string{"h", "bucket"}, "h", "bucket", "payload")
	for h := int64(0); h < 5; h++ {
		for bk := int64(0); bk < 4; bk++ {
			dim.Insert(ints(h, bk, h*100+bk))
		}
	}
	facts := mkTable(t, db, "facts", []string{"id"}, "id", "h", "t")
	facts.Insert(ints(1, 2, 7200))
	facts.Insert(ints(2, 4, 3601))
	facts.Insert(ints(3, 9, 0)) // no matching dim row
	got := queryInts(t, db, `
WITH f AS (SELECT id, h, t FROM facts)
SELECT f.id, d.payload FROM dim d, f
WHERE d.h = f.h AND d.bucket = FLOOR(f.t/3600)
ORDER BY f.id`)
	eqRows(t, got, [][]int64{{1, 202}, {2, 401}})
}

func TestThreeValuedLogicAndNulls(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "n", nil, "x")
	tbl.Insert(sqltypes.Row{sqltypes.Null})
	tbl.Insert(ints(1))
	// NULL comparisons exclude rows.
	got := queryInts(t, db, "SELECT x FROM n WHERE x >= 0")
	eqRows(t, got, [][]int64{{1}})
	// Aggregates skip NULLs; COUNT(*) does not.
	got = queryInts(t, db, "SELECT COUNT(*), COUNT(x), MIN(x) FROM n")
	eqRows(t, got, [][]int64{{2, 1, 1}})
}

func TestQueryErrors(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "t", []string{"a"}, "a", "xs:arr")
	if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewIntArray([]int64{1})}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"SELECT nope FROM t",
		"SELECT a FROM missing",
		"SELECT UNNEST(a) FROM t",          // unnest of scalar
		"SELECT UNNEST(xs) + 1 FROM t",     // unnest not top-level
		"SELECT MIN(a), UNNEST(xs) FROM t", // aggregate + unnest
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t WHERE a = $2", // missing param
		"SELECT a, b FROM t UNION SELECT a FROM t",
		"SELECT 1/0",
	} {
		if _, err := db.Query(q, sqltypes.NewInt(1)); err == nil {
			t.Errorf("Query(%q) succeeded", q)
		}
	}
}

// TestPaperCode1OnExampleData loads the lout/lin tables of the paper's
// Table 2/3 (augmented labels of Figure 1) and runs Code 1 verbatim.
func TestPaperCode1OnExampleData(t *testing.T) {
	db := newTestDB(t)
	lout := mkTable(t, db, "lout", []string{"v"}, "v", "hubs:arr", "tds:arr", "tas:arr")
	lin := mkTable(t, db, "lin", []string{"v"}, "v", "hubs:arr", "tds:arr", "tas:arr")

	// From Table 1 of the paper (times in 100 s units), stops 0, 1 and 4.
	insert := func(tbl *Table, v int64, hubs, tds, tas []int64) {
		if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(v),
			sqltypes.NewIntArray(hubs), sqltypes.NewIntArray(tds), sqltypes.NewIntArray(tas)}); err != nil {
			t.Fatal(err)
		}
	}
	insert(lout, 0, []int64{0}, []int64{360}, []int64{360})
	insert(lin, 0, []int64{0}, []int64{360}, []int64{360})
	insert(lout, 1, []int64{0, 1, 1}, []int64{324, 324, 396}, []int64{360, 324, 396})
	insert(lin, 1, []int64{0, 1, 1}, []int64{360, 324, 396}, []int64{396, 324, 396})
	insert(lout, 4, []int64{0, 4}, []int64{324, 396}, []int64{360, 396})
	insert(lin, 4, []int64{0, 4}, []int64{360, 396}, []int64{396, 396})

	const code1EA = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM lout WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM lin WHERE v=$2)
SELECT MIN(inp.ta)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td AND outp.td>=$3`

	// EA(1, 4, t=300): journey 1@324 -> 0@360 joins 0@360 -> 4@396.
	got := queryInts(t, db, code1EA, sqltypes.NewInt(1), sqltypes.NewInt(4), sqltypes.NewInt(300))
	eqRows(t, got, [][]int64{{396}})
	// The paper's worked example: EA(1, 1, 324) = 324 via the dummy tuples.
	got = queryInts(t, db, code1EA, sqltypes.NewInt(1), sqltypes.NewInt(1), sqltypes.NewInt(324))
	eqRows(t, got, [][]int64{{324}})
	// No journey after the last departure: NULL.
	got = queryInts(t, db, code1EA, sqltypes.NewInt(1), sqltypes.NewInt(4), sqltypes.NewInt(397))
	eqRows(t, got, [][]int64{{-999999}})
}

func TestDropCachesForcesMisses(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "t", []string{"a"}, "a", "b")
	for i := int64(0); i < 100; i++ {
		tbl.Insert(ints(i, i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	queryInts(t, db, "SELECT b FROM t WHERE a=50")
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	_, m0 := db.Pool().Stats()
	queryInts(t, db, "SELECT b FROM t WHERE a=50")
	if _, m1 := db.Pool().Stats(); m1 == m0 {
		t.Error("query after DropCaches hit only cached pages")
	}
}

func TestPreparedStatement(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "t", []string{"a"}, "a", "b")
	tbl.Insert(ints(1, 10))
	tbl.Insert(ints(2, 20))
	st, err := db.Prepare("SELECT b FROM t WHERE a = $1")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{10, 20} {
		rel, err := st.Query(sqltypes.NewInt(int64(i + 1)))
		if err != nil || len(rel.Rows) != 1 || rel.Rows[0][0].I != want {
			t.Fatalf("prepared exec %d: %v %v", i, rel, err)
		}
	}
	if _, err := db.Prepare("SELECT FROM"); err == nil {
		t.Error("Prepare of invalid SQL succeeded")
	}
}

func TestSizeOnDisk(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "t", []string{"a"}, "a", "b")
	tbl.Insert(ints(1, 1))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := db.SizeOnDisk()
	if err != nil || n <= 0 {
		t.Errorf("SizeOnDisk = %d, %v", n, err)
	}
}

// TestHashJoinTextKeysFallback exercises the generic encoded-key join path:
// single-column joins on TEXT keys cannot use the integer fast path.
func TestHashJoinTextKeysFallback(t *testing.T) {
	db := newTestDB(t)
	a := mkTable(t, db, "ta", []string{"id"}, "id", "name:text")
	b := mkTable(t, db, "tb", []string{"id"}, "id", "name:text", "w")
	a.Insert(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewText("x")})
	a.Insert(sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewText("y")})
	b.Insert(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewText("y"), sqltypes.NewInt(7)})
	got := queryInts(t, db, "SELECT ta.id, tb.w FROM ta, tb WHERE ta.name = tb.name")
	eqRows(t, got, [][]int64{{2, 7}})
}

// TestFusedPredicateMatchesPostFilter checks that the WHERE clause fused
// into the final join gives the same result as explicit post-filtering via a
// wrapping subquery.
func TestFusedPredicateMatchesPostFilter(t *testing.T) {
	db := newTestDB(t)
	a := mkTable(t, db, "fa", []string{"id"}, "id", "k", "x")
	b := mkTable(t, db, "fb", []string{"id"}, "id", "k", "y")
	for i := int64(0); i < 20; i++ {
		a.Insert(ints(i, i%5, i*3))
		b.Insert(ints(i, i%5, i*7))
	}
	fused := queryInts(t, db,
		"SELECT fa.id, fb.id FROM fa, fb WHERE fa.k = fb.k AND fa.x <= fb.y AND fa.id <> fb.id ORDER BY fa.id, fb.id")
	wrapped := queryInts(t, db, `
SELECT id1, id2 FROM
  (SELECT fa.id AS id1, fb.id AS id2, fa.k AS k1, fb.k AS k2, fa.x AS x, fb.y AS y FROM fa, fb) j
WHERE k1 = k2 AND x <= y AND id1 <> id2 ORDER BY id1, id2`)
	eqRows(t, fused, wrapped)
	if len(fused) == 0 {
		t.Fatal("test degenerate: no joined rows")
	}
}

// TestThreeWayJoin exercises repeated folding with the predicate fused only
// into the last join.
func TestThreeWayJoin(t *testing.T) {
	db := newTestDB(t)
	a := mkTable(t, db, "j1", []string{"id"}, "id", "k")
	b := mkTable(t, db, "j2", []string{"id"}, "id", "k", "m")
	c := mkTable(t, db, "j3", []string{"id"}, "id", "m", "w")
	a.Insert(ints(1, 10))
	a.Insert(ints(2, 20))
	b.Insert(ints(1, 10, 100))
	b.Insert(ints(2, 20, 200))
	c.Insert(ints(1, 100, 111))
	c.Insert(ints(2, 200, 222))
	got := queryInts(t, db, `
SELECT j1.id, j3.w FROM j1, j2, j3
WHERE j1.k = j2.k AND j2.m = j3.m AND j3.w > 111
ORDER BY j1.id`)
	eqRows(t, got, [][]int64{{2, 222}})
}

// TestIndexJoinWithFusedPredicate verifies the index-nested-loop path also
// honours the fused residual WHERE.
func TestIndexJoinWithFusedPredicate(t *testing.T) {
	db := newTestDB(t)
	dim := mkTable(t, db, "dim2", []string{"h"}, "h", "payload")
	for h := int64(0); h < 10; h++ {
		dim.Insert(ints(h, h*10))
	}
	got := queryInts(t, db, `
WITH f AS (SELECT 1 AS one)
SELECT d.payload FROM dim2 d, f WHERE d.h = 3 + f.one AND d.payload > 100`)
	eqRows(t, got, nil)
	got = queryInts(t, db, `
WITH f AS (SELECT 1 AS one)
SELECT d.payload FROM dim2 d, f WHERE d.h = 3 + f.one AND d.payload > 10`)
	eqRows(t, got, [][]int64{{40}})
}

// TestAggregateEmptyGroupedUnionArm regression-tests the case that once
// mis-routed an aggregated-but-empty arm to the non-aggregate ORDER BY path.
func TestAggregateEmptyGroupedUnionArm(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "eg", nil, "grp", "val")
	tbl.Insert(ints(1, 5))
	got := queryInts(t, db, `
SELECT grp, v FROM (
  (SELECT grp, MIN(val) AS v FROM eg WHERE val > 100 GROUP BY grp ORDER BY MIN(val), grp LIMIT 3)
  UNION
  (SELECT grp, MIN(val) AS v FROM eg GROUP BY grp ORDER BY MIN(val), grp LIMIT 3)
) u ORDER BY grp`)
	eqRows(t, got, [][]int64{{1, 5}})
}

// TestAggregateWithoutGroupByRejectsBareColumns enforces the standard rule.
func TestAggregateWithoutGroupByRejectsBareColumns(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "ng", nil, "a", "b")
	tbl.Insert(ints(1, 2))
	if _, err := db.Query("SELECT a, MIN(b) FROM ng"); err == nil {
		t.Error("bare column alongside aggregate without GROUP BY accepted")
	}
	if _, err := db.Query("SELECT MIN(b) FROM ng ORDER BY a"); err == nil {
		t.Error("bare ORDER BY column with aggregate accepted")
	}
}

// TestExecDDLAndDML drives the pure-SQL path end to end: CREATE TABLE,
// INSERT ... VALUES (with parameters), SELECT, DROP TABLE.
func TestExecDDLAndDML(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`
CREATE TABLE pois (id BIGINT, name TEXT, score DOUBLE PRECISION, tags BIGINT[], PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	n, err := db.Exec("INSERT INTO pois VALUES (1, 'museum', 4.5, NULL), ($1, $2, 3.0 + 0.5, NULL)",
		sqltypes.NewInt(2), sqltypes.NewText("park"))
	if err != nil || n != 2 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	rel, err := db.Query("SELECT name, score FROM pois WHERE id = 2")
	if err != nil || len(rel.Rows) != 1 || rel.Rows[0][0].S != "park" || rel.Rows[0][1].F != 3.5 {
		t.Fatalf("select: %v %v", rel, err)
	}
	// Errors: wrong arity, dup key, column refs in VALUES, exec of SELECT.
	if _, err := db.Exec("INSERT INTO pois VALUES (9)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Exec("INSERT INTO pois VALUES (1, 'dup', 0.0, NULL)"); err == nil {
		t.Error("duplicate key accepted")
	}
	if _, err := db.Exec("INSERT INTO pois VALUES (id, 'x', 0.0, NULL)"); err == nil {
		t.Error("column reference in VALUES accepted")
	}
	if _, err := db.Exec("SELECT 1"); err == nil {
		t.Error("Exec of SELECT accepted")
	}
	if _, err := db.Exec("DROP TABLE pois"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("pois"); ok {
		t.Error("table survives DROP")
	}
	if _, err := db.Exec("CREATE TABLE bad (a TIMESTAMP)"); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := db.Exec("CREATE TABLE bad (xs BIGINT[], PRIMARY KEY (xs))"); err == nil {
		t.Error("array PK accepted")
	}
}

func TestHavingInBetween(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "h", nil, "grp", "val")
	for _, r := range [][2]int64{{1, 5}, {1, 3}, {2, 9}, {2, 1}, {3, 4}, {4, 8}} {
		tbl.Insert(ints(r[0], r[1]))
	}
	// HAVING filters groups by aggregate.
	got := queryInts(t, db, "SELECT grp, MIN(val) FROM h GROUP BY grp HAVING MIN(val) < 4 ORDER BY grp")
	eqRows(t, got, [][]int64{{1, 3}, {2, 1}})
	// HAVING with COUNT.
	got = queryInts(t, db, "SELECT grp, COUNT(*) FROM h GROUP BY grp HAVING COUNT(*) >= 2 ORDER BY grp")
	eqRows(t, got, [][]int64{{1, 2}, {2, 2}})
	// IN desugars to equalities.
	got = queryInts(t, db, "SELECT val FROM h WHERE grp IN (2, 4) ORDER BY val")
	eqRows(t, got, [][]int64{{1}, {8}, {9}})
	// BETWEEN is inclusive on both ends.
	got = queryInts(t, db, "SELECT val FROM h WHERE val BETWEEN 4 AND 8 ORDER BY val")
	eqRows(t, got, [][]int64{{4}, {5}, {8}})
	// BETWEEN binds tighter than AND.
	got = queryInts(t, db, "SELECT val FROM h WHERE val BETWEEN 4 AND 8 AND grp = 3")
	eqRows(t, got, [][]int64{{4}})
	// HAVING without GROUP BY aggregates the whole input.
	got = queryInts(t, db, "SELECT MAX(val) FROM h HAVING MIN(val) >= 0")
	eqRows(t, got, [][]int64{{9}})
	got = queryInts(t, db, "SELECT MAX(val) FROM h HAVING MIN(val) > 100")
	eqRows(t, got, nil)
	// Bare column in HAVING without GROUP BY is rejected.
	if _, err := db.Query("SELECT MAX(val) FROM h HAVING val > 1"); err == nil {
		t.Error("bare HAVING column accepted")
	}
}

func TestCaseExpression(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "c", nil, "x")
	for _, v := range []int64{1, 5, 12} {
		tbl.Insert(ints(v))
	}
	got := queryInts(t, db, `
SELECT CASE WHEN x < 3 THEN 100 WHEN x < 10 THEN 200 ELSE 300 END FROM c ORDER BY x`)
	eqRows(t, got, [][]int64{{100}, {200}, {300}})
	// Missing ELSE yields NULL.
	got = queryInts(t, db, "SELECT CASE WHEN x > 100 THEN 1 END FROM c")
	eqRows(t, got, [][]int64{{-999999}, {-999999}, {-999999}})
	if _, err := db.Query("SELECT CASE END FROM c"); err == nil {
		t.Error("empty CASE accepted")
	}
	// CASE inside an aggregate argument (conditional counting).
	got = queryInts(t, db, "SELECT SUM(CASE WHEN x < 10 THEN 1 ELSE 0 END) FROM c")
	eqRows(t, got, [][]int64{{2}})
}

func TestAccessorsAndReplace(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "acc", []string{"k"}, "k", "v")
	if db.Device().Name != "ram" {
		t.Errorf("Device = %q", db.Device().Name)
	}
	if db.Clock() == nil {
		t.Error("Clock nil")
	}
	names := db.Tables()
	if len(names) != 1 || names[0] != "acc" {
		t.Errorf("Tables = %v", names)
	}
	if def := tbl.Def(); def.Name != "acc" || len(def.Columns) != 2 {
		t.Errorf("Def = %+v", def)
	}
	if err := tbl.InsertRows([]sqltypes.Row{ints(1, 10), ints(2, 20)}); err != nil {
		t.Fatal(err)
	}
	// InsertRows surfaces the failing row index.
	if err := tbl.InsertRows([]sqltypes.Row{ints(3, 30), ints(1, 99)}); err == nil {
		t.Error("duplicate in InsertRows accepted")
	}
	// ReplaceByPK overwrites in place via the index.
	if err := tbl.ReplaceByPK(ints(2, 222)); err != nil {
		t.Fatal(err)
	}
	row, ok, err := tbl.LookupPK([]int64{2})
	if err != nil || !ok || row[1].I != 222 {
		t.Fatalf("after replace: %v %v %v", row, ok, err)
	}
	l0, s0 := tbl.AccessStats()
	tbl.LookupPK([]int64{1})
	tbl.Scan(func(sqltypes.Row) error { return nil })
	l1, s1 := tbl.AccessStats()
	if l1 != l0+1 || s1 != s0+1 {
		t.Errorf("access stats: lookups %d->%d scans %d->%d", l0, l1, s0, s1)
	}
	if _, _, err := tbl.LookupPK([]int64{1, 2}); err == nil {
		t.Error("wrong key arity accepted")
	}
}

func TestQueryTracedSQL(t *testing.T) {
	db := newTestDB(t)
	tbl := mkTable(t, db, "qt", []string{"k"}, "k", "v")
	tbl.Insert(ints(1, 10))
	rel, trace, err := db.QueryTraced("SELECT v FROM qt WHERE k = 1")
	if err != nil || len(rel.Rows) != 1 {
		t.Fatal(rel, err)
	}
	if len(trace) == 0 {
		t.Error("empty trace")
	}
	if _, _, err := db.QueryTraced("SELECT FROM"); err == nil {
		t.Error("bad SQL accepted")
	}
}
