package sqldb

import (
	"testing"

	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/sqldb/storage"
)

func benchDB(b *testing.B) *DB {
	b.Helper()
	db, err := Open(b.TempDir(), Options{Device: storage.RAM, PoolPages: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkParseCode1 measures parsing of the paper's Code 1 text.
func BenchmarkParseCode1(b *testing.B) {
	db := benchDB(b)
	const q = `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM lout WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM lin WHERE v=$2)
SELECT MIN(inp.ta)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td AND outp.td>=$3`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Prepare(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointLookupSQL measures a PK point query end to end.
func BenchmarkPointLookupSQL(b *testing.B) {
	db := benchDB(b)
	tbl, err := db.CreateTable(TableDef{Name: "kv", PK: []string{"k"},
		Columns: []ColumnDef{{Name: "k", Type: sqltypes.Int64}, {Name: "v", Type: sqltypes.Int64}}})
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 10000; i++ {
		if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(i * 2)}); err != nil {
			b.Fatal(err)
		}
	}
	st, err := db.Prepare("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := st.Query(sqltypes.NewInt(int64(i % 10000)))
		if err != nil || len(rel.Rows) != 1 {
			b.Fatal(len(rel.Rows), err)
		}
	}
}

// BenchmarkUnnestJoinAggregate measures the Code 1 execution shape in
// isolation: unnest two array rows, hash join on the first column, filter
// and aggregate.
func BenchmarkUnnestJoinAggregate(b *testing.B) {
	db := benchDB(b)
	for _, name := range []string{"lo", "li"} {
		tbl, err := db.CreateTable(TableDef{Name: name, PK: []string{"v"},
			Columns: []ColumnDef{
				{Name: "v", Type: sqltypes.Int64},
				{Name: "hubs", Type: sqltypes.IntArray},
				{Name: "tds", Type: sqltypes.IntArray},
				{Name: "tas", Type: sqltypes.IntArray},
			}})
		if err != nil {
			b.Fatal(err)
		}
		// 1000-tuple label: 50 hubs x 20 departures.
		var hubs, tds, tas []int64
		for h := int64(0); h < 50; h++ {
			for d := int64(0); d < 20; d++ {
				hubs = append(hubs, h)
				tds = append(tds, 30000+d*600)
				tas = append(tas, 30000+d*600+900)
			}
		}
		if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(0),
			sqltypes.NewIntArray(hubs), sqltypes.NewIntArray(tds), sqltypes.NewIntArray(tas)}); err != nil {
			b.Fatal(err)
		}
	}
	st, err := db.Prepare(`
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta FROM lo WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta FROM li WHERE v=$1)
SELECT MIN(inp.ta)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td AND outp.td>=$2`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := st.Query(sqltypes.NewInt(0), sqltypes.NewInt(31000))
		if err != nil || len(rel.Rows) != 1 {
			b.Fatal(err)
		}
	}
}
