package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

func newTestFile(t *testing.T, dev DeviceModel, clock *Clock) (*PagedFile, *Pool) {
	t.Helper()
	f, err := OpenPagedFile(filepath.Join(t.TempDir(), "data.pg"), dev, clock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	pool := NewPool(64)
	pool.Register(f)
	return f, pool
}

func TestPagedFileBasics(t *testing.T) {
	var clock Clock
	f, _ := newTestFile(t, RAM, &clock)
	if f.NumPages() != 0 {
		t.Fatalf("new file has %d pages", f.NumPages())
	}
	id, err := f.Allocate()
	if err != nil || id != 0 {
		t.Fatalf("Allocate = %d, %v", id, err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "hello")
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := f.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("hello")) {
		t.Errorf("read back %q", got[:5])
	}
	if err := f.ReadPage(7, got); err == nil {
		t.Error("read past end succeeded")
	}
	if err := f.WritePage(7, buf); err == nil {
		t.Error("write past end succeeded")
	}
}

func TestDeviceCharging(t *testing.T) {
	var clock Clock
	f, _ := newTestFile(t, HDD, &clock)
	buf := make([]byte, PageSize)
	for i := 0; i < 4; i++ {
		if _, err := f.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	clock.Reset()
	// First read: random. Second read of the next page: sequential.
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	after1 := clock.Elapsed()
	if after1 != HDD.RandRead {
		t.Errorf("first read charged %v, want %v", after1, HDD.RandRead)
	}
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed() - after1; got != HDD.SeqRead {
		t.Errorf("sequential read charged %v, want %v", got, HDD.SeqRead)
	}
	// Jump back: random again.
	before := clock.Elapsed()
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed() - before; got != HDD.RandRead {
		t.Errorf("random re-read charged %v, want %v", got, HDD.RandRead)
	}
}

func TestClockConcurrent(t *testing.T) {
	var c Clock
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Charge(time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Elapsed() != 4000*time.Microsecond {
		t.Errorf("Elapsed = %v", c.Elapsed())
	}
}

func TestPoolHitMissAndEviction(t *testing.T) {
	var clock Clock
	f, err := OpenPagedFile(filepath.Join(t.TempDir(), "p.pg"), RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool := NewPool(8)
	pool.Register(f)

	// Create 20 pages, each with a distinct first byte.
	for i := 0; i < 20; i++ {
		fr, err := pool.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i)
		fr.MarkDirty()
		pool.Unpin(fr)
	}
	// Reading them all back forces evictions (pool of 8 < 20 pages) and
	// write-back of dirty frames.
	for i := 0; i < 20; i++ {
		fr, err := pool.Get(f, PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i) {
			t.Fatalf("page %d content lost through eviction: %d", i, fr.Data()[0])
		}
		pool.Unpin(fr)
	}
	_, misses := pool.Stats()
	if misses == 0 {
		t.Errorf("reading 20 pages through an 8-frame pool missed 0 times")
	}
	// Re-reading the page just touched must hit.
	h0, _ := pool.Stats()
	fr, err := pool.Get(f, 19)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(fr)
	if h1, _ := pool.Stats(); h1 != h0+1 {
		t.Errorf("re-read of cached page did not hit (hits %d -> %d)", h0, h1)
	}
}

func TestPoolDropCaches(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	fr, err := pool.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 42
	fr.MarkDirty()
	if err := pool.DropCaches(); err == nil {
		t.Error("DropCaches with pinned frame succeeded")
	}
	pool.Unpin(fr)
	if err := pool.DropCaches(); err != nil {
		t.Fatal(err)
	}
	_, m0 := pool.Stats()
	fr, err = pool.Get(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data()[0] != 42 {
		t.Error("dirty page lost by DropCaches")
	}
	pool.Unpin(fr)
	if _, m := pool.Stats(); m != m0+1 {
		t.Error("Get after DropCaches did not miss")
	}
}

// TestPoolPinnedOverflow pins more frames than the pool's capacity: the
// sharded pool admits them as a temporary overflow (pinned frames must live
// somewhere) and trims the resident set back toward capacity once they are
// unpinned and fresh allocations force eviction.
func TestPoolPinnedOverflow(t *testing.T) {
	var clock Clock
	f, err := OpenPagedFile(filepath.Join(t.TempDir(), "x.pg"), RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool := NewPool(8)
	pool.Register(f)
	cap := pool.Capacity()
	var frames []*Frame
	for i := 0; i < 2*cap; i++ {
		fr, err := pool.NewPage(f)
		if err != nil {
			t.Fatalf("NewPage %d with pinned overflow: %v", i, err)
		}
		frames = append(frames, fr)
	}
	if n := pool.NumFrames(); n != 2*cap {
		t.Errorf("NumFrames = %d, want %d pinned frames resident", n, 2*cap)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for _, fr := range frames {
		pool.Unpin(fr)
	}
	// Eviction churn (re-reads far exceeding capacity) must trim the
	// resident set back under the configured capacity.
	for i := 0; i < 4*cap; i++ {
		fr, err := pool.Get(f, PageID(i%(2*cap)))
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(fr)
	}
	if n := pool.NumFrames(); n > cap {
		t.Errorf("NumFrames = %d after churn, want <= capacity %d", n, cap)
	}
}

func TestRowStoreRoundTrip(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	rs, err := OpenRowStore(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var locs []Locator
	var rows [][]byte
	for i := 0; i < 200; i++ {
		// Mix of tiny rows and rows spanning multiple pages.
		n := rng.Intn(64)
		if i%17 == 0 {
			n = PageSize + rng.Intn(3*PageSize)
		}
		row := make([]byte, n)
		rng.Read(row)
		loc, err := rs.Append(row)
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
		rows = append(rows, row)
	}
	for i, loc := range locs {
		got, err := rs.Read(loc)
		if err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
		if !bytes.Equal(got, rows[i]) {
			t.Fatalf("row %d mismatch (len %d vs %d)", i, len(got), len(rows[i]))
		}
	}
}

func TestRowStorePersistence(t *testing.T) {
	dir := t.TempDir()
	var clock Clock
	path := filepath.Join(dir, "rs.pg")

	f, err := OpenPagedFile(path, RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(32)
	pool.Register(f)
	rs, err := OpenRowStore(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	var locs []Locator
	for i := 0; i < 50; i++ {
		loc, err := rs.Append(bytes.Repeat([]byte{byte(i)}, 100+i*37))
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen from disk.
	f2, err := OpenPagedFile(path, RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	pool2 := NewPool(32)
	pool2.Register(f2)
	rs2, err := OpenRowStore(f2, pool2)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Count() != 50 {
		t.Fatalf("Count after reopen = %d", rs2.Count())
	}
	for i, loc := range locs {
		got, err := rs2.Read(loc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100+i*37 || got[0] != byte(i) {
			t.Fatalf("row %d corrupt after reopen", i)
		}
	}
	// Appending after reopen continues the stream.
	if _, err := rs2.Append([]byte("more")); err != nil {
		t.Fatal(err)
	}
	n := 0
	err = rs2.Scan(func(_ Locator, b []byte) error { n++; return nil })
	if err != nil || n != 51 {
		t.Fatalf("Scan after reopen: n=%d err=%v", n, err)
	}
}

func TestRowStoreScan(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	rs, err := OpenRowStore(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("a"), bytes.Repeat([]byte("b"), PageSize*2), []byte(""), []byte("ddd")}
	var locs []Locator
	for _, r := range want {
		loc, err := rs.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	i := 0
	err = rs.Scan(func(loc Locator, b []byte) error {
		if !bytes.Equal(b, want[i]) {
			t.Errorf("scan row %d = %d bytes, want %d", i, len(b), len(want[i]))
		}
		if loc != locs[i] {
			t.Errorf("scan row %d locator %+v, want %+v", i, loc, locs[i])
		}
		i++
		return nil
	})
	if err != nil || i != len(want) {
		t.Fatalf("Scan: i=%d err=%v", i, err)
	}
}

func TestBTreeInsertGet(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(n)
	for _, i := range perm {
		k := Key{int64(i / 100), int64(i % 100)}
		if err := bt.Insert(k, Locator{Page: PageID(i), Off: uint32(i), Len: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Count() != n {
		t.Fatalf("Count = %d", bt.Count())
	}
	if _, err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := Key{int64(i / 100), int64(i % 100)}
		loc, ok, err := bt.Get(k)
		if err != nil || !ok || loc.Page != PageID(i) {
			t.Fatalf("Get(%v) = %+v, %v, %v", k, loc, ok, err)
		}
	}
	if _, ok, _ := bt.Get(Key{999, 999}); ok {
		t.Error("Get of absent key returned ok")
	}
	// Replacement does not grow the count.
	if err := bt.Insert(Key{0, 0}, Locator{Page: 777}); err != nil {
		t.Fatal(err)
	}
	if bt.Count() != n {
		t.Errorf("Count after replace = %d", bt.Count())
	}
	loc, ok, _ := bt.Get(Key{0, 0})
	if !ok || loc.Page != 777 {
		t.Errorf("replaced value not visible: %+v", loc)
	}
}

func TestBTreeRangeScan(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	// Keys (h, d) for h in [0,50), d in multiples of 10.
	for h := int64(0); h < 50; h++ {
		for d := int64(0); d < 200; d += 10 {
			if err := bt.Insert(Key{h, d}, Locator{Page: PageID(h), Off: uint32(d)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Range scan: hub 7, d >= 95 -> 100, 110, ..., 190.
	cur, err := bt.Seek(Key{7, 95})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []int64
	for cur.Valid() && cur.Key()[0] == 7 {
		got = append(got, cur.Key()[1])
		if err := cur.Next(); err != nil {
			t.Fatal(err)
		}
	}
	want := []int64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190}
	if len(got) != len(want) {
		t.Fatalf("range scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range scan = %v, want %v", got, want)
		}
	}
}

func TestBTreePersistence(t *testing.T) {
	dir := t.TempDir()
	var clock Clock
	path := filepath.Join(dir, "bt.pg")
	f, err := OpenPagedFile(path, RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(64)
	pool.Register(f)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2000; i++ {
		if err := bt.Insert(Key{i, -i}, Locator{Page: PageID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	f2, err := OpenPagedFile(path, RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	pool2 := NewPool(64)
	pool2.Register(f2)
	bt2, err := OpenBTree(f2, pool2)
	if err != nil {
		t.Fatal(err)
	}
	if bt2.Count() != 2000 {
		t.Fatalf("Count after reopen = %d", bt2.Count())
	}
	for i := int64(0); i < 2000; i += 97 {
		loc, ok, err := bt2.Get(Key{i, -i})
		if err != nil || !ok || loc.Page != PageID(i) {
			t.Fatalf("Get(%d) after reopen = %+v %v %v", i, loc, ok, err)
		}
	}
}

// TestBTreeRandomAgainstMap is a property test comparing the tree with a
// reference map under random inserts (including negative and duplicate keys).
func TestBTreeRandomAgainstMap(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ref := map[Key]Locator{}
	for i := 0; i < 8000; i++ {
		k := Key{rng.Int63n(100) - 50, rng.Int63n(1000) - 500}
		loc := Locator{Page: PageID(rng.Uint32()), Off: rng.Uint32(), Len: rng.Uint32()}
		ref[k] = loc
		if err := bt.Insert(k, loc); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Count() != uint64(len(ref)) {
		t.Fatalf("Count = %d, want %d", bt.Count(), len(ref))
	}
	if _, err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, want := range ref {
		got, ok, err := bt.Get(k)
		if err != nil || !ok || got != want {
			t.Fatalf("Get(%v) = %+v %v %v, want %+v", k, got, ok, err, want)
		}
	}
	// Full scan order matches sorted reference keys.
	keys := make([]Key, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].Less(keys[b]) })
	cur, err := bt.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; cur.Valid(); i++ {
		if cur.Key() != keys[i] {
			t.Fatalf("scan position %d = %v, want %v", i, cur.Key(), keys[i])
		}
		if err := cur.Next(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBTreeSeekPastEnd(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	bt.Insert(Key{1, 1}, Locator{})
	cur, err := bt.Seek(Key{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Valid() {
		t.Error("Seek past last key is Valid")
	}
}

func TestBTreeEmpty(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := bt.Get(Key{0, 0}); ok {
		t.Error("Get on empty tree returned ok")
	}
	cur, err := bt.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Valid() {
		t.Error("cursor on empty tree is Valid")
	}
	if n, err := bt.Validate(); n != 0 || err != nil {
		t.Errorf("Validate empty = %d, %v", n, err)
	}
	if bt.Height() != 1 {
		t.Errorf("Height = %d", bt.Height())
	}
}

// TestBTreeInternalSplits drives enough sequential inserts to split internal
// nodes (leaf ~292 entries, internal ~409 children: > 120k keys gives height
// 3) and validates the structure plus cursor state accessors.
func TestBTreeInternalSplits(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	const n = 130000
	for i := int64(0); i < n; i++ {
		if err := bt.Insert(Key{i, 0}, Locator{Page: PageID(i % 1000), Off: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Height() < 3 {
		t.Fatalf("height = %d, want >= 3", bt.Height())
	}
	if cnt, err := bt.Validate(); err != nil || cnt != n {
		t.Fatalf("Validate = %d, %v", cnt, err)
	}
	dump, err := bt.DebugDump()
	if err != nil || !strings.Contains(dump, "int") || !strings.Contains(dump, "leaf") {
		t.Fatalf("DebugDump: %v\n%.200s", err, dump)
	}
	cur, err := bt.Seek(Key{64999, 0})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Valid() || cur.Key() != (Key{64999, 0}) || cur.Locator().Off != 64999 {
		t.Fatalf("cursor at %v, loc %+v", cur.Key(), cur.Locator())
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeReverseAndInterleavedInserts splits left-heavy nodes (pos < mid)
// and exercises the non-sequential split ratio.
func TestBTreeReverseAndInterleavedInserts(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := int64(n - 1); i >= 0; i-- {
		if err := bt.Insert(Key{i, -i}, Locator{Page: PageID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < n; i++ {
		if loc, ok, err := bt.Get(Key{i, -i}); err != nil || !ok || loc.Page != PageID(i) {
			t.Fatalf("Get(%d) = %+v %v %v", i, loc, ok, err)
		}
	}
	if _, err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenPagedFileErrors(t *testing.T) {
	var clock Clock
	dir := t.TempDir()
	// Unaligned file size is rejected.
	path := filepath.Join(dir, "bad.pg")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPagedFile(path, RAM, &clock); err == nil {
		t.Error("unaligned file accepted")
	}
	// Unreadable path.
	if _, err := OpenPagedFile(filepath.Join(dir, "no", "such", "dir.pg"), RAM, &clock); err == nil {
		t.Error("bad path accepted")
	}
}
