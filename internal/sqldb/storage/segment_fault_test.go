package storage

// segment_fault_test.go is the corruption battery for the segment format:
// region-targeted faults (header, data, directory — each truncated and
// bit-flipped) must be rejected at OpenSegment, and seeded random mutations
// must either be rejected or leave a segment that decodes byte-for-byte
// identically to the original (flips in page padding outside the checksummed
// regions are harmless by design). OpenSegment must never panic and an
// accepted segment must never mis-decode: the read path trusts the directory
// it validated.

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeFaultSegment builds a deterministic multi-page segment and returns
// its path and data.
func writeFaultSegment(t *testing.T, dir string) (string, SegmentData) {
	t.Helper()
	path := filepath.Join(dir, "fault.seg")
	sd := buildSegmentData(rand.New(rand.NewSource(23)), 60)
	var clock Clock
	if err := WriteSegmentFile(path, RAM, &clock, sd); err != nil {
		t.Fatal(err)
	}
	return path, sd
}

// tryOpen opens path as a segment, returning the error (nil if accepted).
// An OpenPagedFile rejection (unaligned truncation) counts as a rejected
// segment too. The pool and file are scoped to the call.
func tryOpen(t *testing.T, path string) (*Segment, *PagedFile, error) {
	t.Helper()
	var clock Clock
	f, err := OpenPagedFile(path, RAM, &clock)
	if err != nil {
		return nil, nil, err
	}
	pool := NewPool(64)
	pool.Register(f)
	seg, err := OpenSegment(f, pool)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return seg, f, nil
}

// corrupt copies the pristine image to a fresh file with fn applied.
func corrupt(t *testing.T, dir, name string, image []byte, fn func(b []byte) []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	b := append([]byte(nil), image...)
	b = fn(b)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSegmentFaultRegions flips and truncates every region of a valid
// segment file and requires OpenSegment to reject each fault.
func TestSegmentFaultRegions(t *testing.T) {
	dir := t.TempDir()
	path, sd := writeFaultSegment(t, dir)
	image, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dataBytes := len(sd.Data)
	dataPages := (dataBytes + PageSize - 1) / PageSize
	dirStart := PageSize * (1 + dataPages)
	// The directory entries are varint-packed; read the real logical size
	// from the header so the flip offsets land inside the checksummed bytes
	// rather than in the page padding beyond them.
	dirBytes := int(binary.LittleEndian.Uint64(image[28:]))

	flipAt := func(off int) func([]byte) []byte {
		return func(b []byte) []byte { b[off] ^= 0x40; return b }
	}
	truncTo := func(n int) func([]byte) []byte {
		return func(b []byte) []byte { return b[:n] }
	}
	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"flip-magic", flipAt(0)},
		{"flip-version", flipAt(4)},
		{"flip-nrows", flipAt(8)},
		{"flip-ncols", flipAt(16)},
		{"flip-dirpage", flipAt(24)},
		{"flip-dirbytes", flipAt(28)},
		{"flip-databytes", flipAt(36)},
		{"flip-datacrc", flipAt(44)},
		{"flip-dircrc", flipAt(48)},
		{"flip-headercrc", flipAt(52)},
		{"flip-coltag", flipAt(56)},
		{"flip-header-padding", flipAt(PageSize - 1)},
		{"flip-data-first", flipAt(PageSize)},
		{"flip-data-mid", flipAt(PageSize + dataBytes/2)},
		{"flip-data-last", flipAt(PageSize + dataBytes - 1)},
		{"flip-dir-first", flipAt(dirStart)},
		{"flip-dir-mid", flipAt(dirStart + dirBytes/2)},
		{"trunc-empty", truncTo(0)},
		{"trunc-header-only", truncTo(PageSize)},
		{"trunc-mid-data", truncTo(PageSize * (1 + dataPages/2))},
		{"trunc-no-dir", truncTo(dirStart)},
		{"trunc-last-page", truncTo(len(image) - PageSize)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := corrupt(t, dir, tc.name+".seg", image, tc.fn)
			seg, f, err := tryOpen(t, p)
			if err == nil {
				f.Close()
				t.Fatalf("OpenSegment accepted a segment with fault %q (%d rows)", tc.name, seg.NumRows())
			}
		})
	}
}

// TestSegmentOpenRandomMutations is the seeded fuzz battery: random byte
// flips and truncations applied to a valid segment must either be rejected
// at open or produce a segment whose every row decodes identically to the
// original (a mutation can land in page padding outside the checksummed
// header, data and directory regions — by design harmless). OpenSegment and
// the read path must never panic.
func TestSegmentOpenRandomMutations(t *testing.T) {
	dir := t.TempDir()
	path, sd := writeFaultSegment(t, dir)
	image, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(97))
	accepted := 0
	for iter := 0; iter < 300; iter++ {
		mutate := func(b []byte) []byte {
			if rng.Intn(10) == 0 {
				// Truncate to a random page boundary (or an unaligned
				// length, which OpenPagedFile itself must survive).
				n := rng.Intn(len(b) + 1)
				if rng.Intn(2) == 0 {
					n -= n % PageSize
				}
				return b[:n]
			}
			for k := 1 + rng.Intn(4); k > 0; k-- {
				b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
			}
			return b
		}
		p := corrupt(t, dir, "mut.seg", image, mutate)
		seg, f, err := tryOpen(t, p)
		if err != nil {
			continue
		}
		accepted++
		// The mutation hit padding only: every logical byte must survive.
		if seg.NumRows() != len(sd.Keys) {
			t.Fatalf("iter %d: accepted segment has %d rows, want %d", iter, seg.NumRows(), len(sd.Keys))
		}
		var buf []byte
		off := 0
		for i, k := range sd.Keys {
			if seg.Key(i) != k {
				t.Fatalf("iter %d: key %d = %v, want %v", iter, i, seg.Key(i), k)
			}
			buf, err = seg.ReadRow(i, buf)
			if err != nil {
				t.Fatalf("iter %d: ReadRow(%d): %v", iter, i, err)
			}
			want := sd.Data[off : off+int(sd.Lens[i])]
			if !bytes.Equal(buf, want) {
				t.Fatalf("iter %d: row %d payload mismatch after padding-only mutation", iter, i)
			}
			off += int(sd.Lens[i])
		}
		data, err := seg.LoadData()
		if err != nil {
			t.Fatalf("iter %d: LoadData on accepted segment: %v", iter, err)
		}
		if !bytes.Equal(data, sd.Data) {
			t.Fatalf("iter %d: LoadData mismatch after padding-only mutation", iter)
		}
		f.Close()
	}
	if accepted == 0 {
		t.Log("no mutation landed in padding; all rejected (acceptable)")
	}
}

// FuzzOpenSegment feeds arbitrary page-aligned images to OpenSegment: any
// outcome is fine except a panic, and an accepted segment must serve reads
// without panicking or violating its own directory.
func FuzzOpenSegment(f *testing.F) {
	dir := f.TempDir()
	path, _ := writeFaultSegmentF(f, dir)
	image, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(image)
	f.Add(image[:PageSize])
	flipped := append([]byte(nil), image...)
	flipped[8] ^= 0xff
	f.Add(flipped)
	f.Add(make([]byte, 2*PageSize))
	f.Fuzz(func(t *testing.T, b []byte) {
		p := filepath.Join(t.TempDir(), "fz.seg")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		var clock Clock
		pf, err := OpenPagedFile(p, RAM, &clock)
		if err != nil {
			return
		}
		defer pf.Close()
		pool := NewPool(64)
		pool.Register(pf)
		seg, err := OpenSegment(pf, pool)
		if err != nil {
			return
		}
		var buf []byte
		for i := 0; i < seg.NumRows(); i++ {
			if buf, err = seg.ReadRow(i, buf); err != nil {
				return
			}
			if len(buf) != int(seg.RowLen(i)) {
				t.Fatalf("row %d: ReadRow returned %d bytes, directory says %d", i, len(buf), seg.RowLen(i))
			}
		}
		if _, err := seg.LoadData(); err != nil {
			return
		}
	})
}

// writeFaultSegmentF is writeFaultSegment for fuzz harnesses.
func writeFaultSegmentF(f *testing.F, dir string) (string, SegmentData) {
	f.Helper()
	path := filepath.Join(dir, "fault.seg")
	sd := buildSegmentData(rand.New(rand.NewSource(23)), 60)
	var clock Clock
	if err := WriteSegmentFile(path, RAM, &clock, sd); err != nil {
		f.Fatal(err)
	}
	return path, sd
}
