package storage

import (
	"encoding/binary"
	"fmt"
)

// RowStore is an append-only record file: the heap of one table. Records are
// written as [uvarint length][payload] back to back, spilling across page
// boundaries, so a wide row (PTLDB label rows hold arrays of thousands of
// timestamps) occupies consecutive pages and costs one random read plus
// sequential reads — the access pattern the paper's design minimizes.
//
// Page 0 is the header: magic, record count and the append position.
type RowStore struct {
	file *PagedFile
	pool *Pool

	count    uint64
	tailPage PageID
	tailOff  uint32
}

// Locator addresses one record: the page and offset of its length prefix.
type Locator struct {
	Page PageID
	Off  uint32
	Len  uint32 // payload length (excluding the prefix)
}

const rowStoreMagic = 0x50544c31 // "PTL1"

// OpenRowStore opens or initializes a row store over file.
func OpenRowStore(file *PagedFile, pool *Pool) (*RowStore, error) {
	rs := &RowStore{file: file, pool: pool}
	if file.NumPages() == 0 {
		fr, err := pool.NewPage(file)
		if err != nil {
			return nil, err
		}
		if fr.Page() != 0 {
			pool.Unpin(fr)
			return nil, fmt.Errorf("storage: rowstore header not at page 0")
		}
		rs.tailPage, rs.tailOff = 0, 0 // no data page yet
		rs.writeHeader(fr)
		pool.Unpin(fr)
		return rs, nil
	}
	fr, err := pool.Get(file, 0)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(fr)
	d := fr.Data()
	if binary.LittleEndian.Uint32(d[0:]) != rowStoreMagic {
		return nil, fmt.Errorf("storage: bad rowstore magic")
	}
	rs.count = binary.LittleEndian.Uint64(d[4:])
	rs.tailPage = PageID(binary.LittleEndian.Uint32(d[12:]))
	rs.tailOff = binary.LittleEndian.Uint32(d[16:])
	return rs, nil
}

func (rs *RowStore) writeHeader(fr *Frame) {
	d := fr.Data()
	binary.LittleEndian.PutUint32(d[0:], rowStoreMagic)
	binary.LittleEndian.PutUint64(d[4:], rs.count)
	binary.LittleEndian.PutUint32(d[12:], uint32(rs.tailPage))
	binary.LittleEndian.PutUint32(d[16:], rs.tailOff)
	fr.MarkDirty()
}

// Count returns the number of records appended.
func (rs *RowStore) Count() uint64 { return rs.count }

// Append stores payload and returns its locator. Appends must be serialized
// by the caller (bulk load).
func (rs *RowStore) Append(payload []byte) (Locator, error) {
	var prefix [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(prefix[:], uint64(len(payload)))

	// Normalize the tail so the locator is well-formed; prefixes and
	// payloads may freely spill across page boundaries.
	if rs.tailPage == 0 || rs.tailOff == PageSize {
		fr, err := rs.pool.NewPage(rs.file)
		if err != nil {
			return Locator{}, err
		}
		rs.tailPage, rs.tailOff = fr.Page(), 0
		rs.pool.Unpin(fr)
	}
	loc := Locator{Page: rs.tailPage, Off: rs.tailOff, Len: uint32(len(payload))}
	if err := rs.write(prefix[:n]); err != nil {
		return Locator{}, err
	}
	if err := rs.write(payload); err != nil {
		return Locator{}, err
	}
	rs.count++
	return loc, nil
}

// write appends bytes at the tail position, spilling to fresh pages.
func (rs *RowStore) write(b []byte) error {
	for len(b) > 0 {
		if rs.tailOff == PageSize {
			fr, err := rs.pool.NewPage(rs.file)
			if err != nil {
				return err
			}
			rs.tailPage, rs.tailOff = fr.Page(), 0
			rs.pool.Unpin(fr)
		}
		fr, err := rs.pool.Get(rs.file, rs.tailPage)
		if err != nil {
			return err
		}
		nc := copy(fr.Data()[rs.tailOff:], b)
		fr.MarkDirty()
		rs.pool.Unpin(fr)
		rs.tailOff += uint32(nc)
		b = b[nc:]
	}
	return nil
}

// Read returns the payload at loc.
func (rs *RowStore) Read(loc Locator) ([]byte, error) {
	return rs.ReadInto(loc, nil)
}

// ReadInto is Read reusing buf's capacity for the payload when it suffices.
func (rs *RowStore) ReadInto(loc Locator, buf []byte) ([]byte, error) {
	page, off := loc.Page, loc.Off
	// Parse the length prefix (validating loc.Len).
	var prefix [binary.MaxVarintLen64]byte
	pn, err := rs.peek(page, off, prefix[:])
	if err != nil {
		return nil, err
	}
	ln, k := binary.Uvarint(prefix[:pn])
	if k <= 0 || uint32(ln) != loc.Len {
		return nil, fmt.Errorf("storage: locator length mismatch at page %d off %d", page, off)
	}
	var out []byte
	if uint64(cap(buf)) >= ln {
		out = buf[:ln]
	} else {
		out = make([]byte, ln)
	}
	if err := rs.copyFrom(page, off+uint32(k), out); err != nil {
		return nil, err
	}
	return out, nil
}

// peek copies up to len(buf) bytes starting at (page, off) without knowing
// whether they cross a page boundary; returns how many were copied.
func (rs *RowStore) peek(page PageID, off uint32, buf []byte) (int, error) {
	n := 0
	for n < len(buf) && page < rs.file.NumPages() {
		fr, err := rs.pool.Get(rs.file, page)
		if err != nil {
			return n, err
		}
		c := copy(buf[n:], fr.Data()[off:])
		rs.pool.Unpin(fr)
		n += c
		page++
		off = 0
	}
	if n == 0 {
		return 0, fmt.Errorf("storage: read past end of rowstore")
	}
	return n, nil
}

// copyFrom fills out with the bytes starting at (page, off), following page
// spills.
func (rs *RowStore) copyFrom(page PageID, off uint32, out []byte) error {
	for len(out) > 0 {
		if off >= PageSize {
			page += PageID(off / PageSize)
			off %= PageSize
		}
		fr, err := rs.pool.Get(rs.file, page)
		if err != nil {
			return err
		}
		c := copy(out, fr.Data()[off:])
		rs.pool.Unpin(fr)
		out = out[c:]
		page++
		off = 0
	}
	return nil
}

// Flush persists the header and all buffered pages.
func (rs *RowStore) Flush() error {
	fr, err := rs.pool.Get(rs.file, 0)
	if err != nil {
		return err
	}
	rs.writeHeader(fr)
	rs.pool.Unpin(fr)
	return rs.pool.FlushAll()
}

// Scan calls fn for every record in append order with its locator and
// payload. The payload slice is only valid during the call.
func (rs *RowStore) Scan(fn func(Locator, []byte) error) error {
	if rs.count == 0 {
		return nil
	}
	page, off := PageID(1), uint32(0)
	for i := uint64(0); i < rs.count; i++ {
		var prefix [binary.MaxVarintLen64]byte
		pn, err := rs.peek(page, off, prefix[:])
		if err != nil {
			return err
		}
		ln, k := binary.Uvarint(prefix[:pn])
		if k <= 0 {
			return fmt.Errorf("storage: corrupt record %d at page %d off %d", i, page, off)
		}
		loc := Locator{Page: page, Off: off, Len: uint32(ln)}
		payload := make([]byte, ln)
		if err := rs.copyFrom(page, off+uint32(k), payload); err != nil {
			return err
		}
		if err := fn(loc, payload); err != nil {
			return err
		}
		// Advance past prefix + payload.
		total := uint64(off) + uint64(k) + ln
		page += PageID(total / PageSize)
		off = uint32(total % PageSize)
	}
	return nil
}
