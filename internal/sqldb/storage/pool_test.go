package storage

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// stampedFile creates a file with n pages, page i stamped with i, and a
// cold pool of the given capacity over it.
func stampedFile(t *testing.T, n int, capacity int) (*PagedFile, *Pool) {
	t.Helper()
	var clock Clock
	f, err := OpenPagedFile(filepath.Join(t.TempDir(), "stress.pg"), RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	pool := NewPool(capacity)
	pool.Register(f)
	for i := 0; i < n; i++ {
		fr, err := pool.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(fr.Data(), uint32(fr.Page()))
		fr.MarkDirty()
		pool.Unpin(fr)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pool.DropCaches(); err != nil {
		t.Fatal(err)
	}
	return f, pool
}

// TestPoolConcurrentStress hammers a tiny pool (16 pages over a 256-page
// file) with many concurrent readers so every access fights for frames and
// eviction churns continuously. Run under -race; page stamps verify that no
// reader ever observes another page's bytes.
func TestPoolConcurrentStress(t *testing.T) {
	const pages, capacity, workers, iters = 256, 16, 16, 400
	f, pool := stampedFile(t, pages, capacity)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				// Skewed access: half the traffic on 8 hot pages keeps some
				// frames cached while the cold tail forces evictions.
				var id PageID
				if rng.Intn(2) == 0 {
					id = PageID(rng.Intn(8))
				} else {
					id = PageID(rng.Intn(pages))
				}
				fr, err := pool.Get(f, id)
				if err != nil {
					errs <- err
					return
				}
				if got := binary.LittleEndian.Uint32(fr.Data()); got != uint32(id) {
					errs <- fmt.Errorf("page %d holds stamp %d", id, got)
					pool.Unpin(fr)
					return
				}
				pool.Unpin(fr)
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hits, misses := pool.Stats()
	if hits+misses != workers*iters {
		t.Errorf("hits %d + misses %d != %d accesses", hits, misses, workers*iters)
	}
	if misses == 0 {
		t.Error("stress run with a 16-page pool over 256 pages never missed")
	}
	if n, c := pool.NumFrames(), pool.Capacity(); n > c {
		t.Errorf("resident frames %d exceed capacity %d after churn", n, c)
	}
}

// pinsOf reports the pin count of the frame caching page id of f, or 0 if
// no frame is installed. Tests poll it to detect that a Get has coalesced
// on an in-flight load (loader holds one pin, each waiter adds one).
func pinsOf(pool *Pool, f *PagedFile, id PageID) int {
	key := frameKey{file: f.id, page: id}
	sh := pool.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr, ok := sh.frames[key]; ok {
		return fr.pins
	}
	return 0
}

// waitPins polls until the frame for page id has at least n pins.
func waitPins(t *testing.T, pool *Pool, f *PagedFile, id PageID, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for pinsOf(pool, f, id) < n {
		if time.Now().After(deadline) {
			t.Fatalf("frame for page %d never reached %d pins", id, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolSingleflightMiss forces two concurrent misses on the same page
// and asserts that exactly one device read happens: the pool's loadHook
// blocks the first loader until the second Get has coalesced on its frame.
func TestPoolSingleflightMiss(t *testing.T) {
	f, pool := stampedFile(t, 4, 64)
	hits0, misses0 := pool.Stats()
	reads0 := f.Reads()

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	pool.loadHook = func(frameKey) { entered <- struct{}{}; <-release }
	defer func() { pool.loadHook = nil }()

	type res struct {
		stamp uint32
		err   error
	}
	out := make(chan res, 2)
	read := func() {
		fr, err := pool.Get(f, 3)
		if err != nil {
			out <- res{err: err}
			return
		}
		stamp := binary.LittleEndian.Uint32(fr.Data())
		pool.Unpin(fr)
		out <- res{stamp: stamp}
	}

	go read()
	<-entered // loader installed its loading frame, now parked before the read
	go read()
	// The second Get pins the loading frame the moment it coalesces; wait
	// for that before letting the device read proceed. (The hit is only
	// counted once the load succeeds, so the counter can't be used here.)
	waitPins(t, pool, f, 3, 2)
	close(release)

	for i := 0; i < 2; i++ {
		r := <-out
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.stamp != 3 {
			t.Errorf("coalesced read returned stamp %d, want 3", r.stamp)
		}
	}
	if got := f.Reads() - reads0; got != 1 {
		t.Errorf("two concurrent misses issued %d device reads, want 1", got)
	}
	if _, m := pool.Stats(); m != misses0+1 {
		t.Errorf("miss counter advanced by %d, want 1", m-misses0)
	}
	if h, _ := pool.Stats(); h != hits0+1 {
		t.Errorf("hit counter advanced by %d, want 1 (the coalesced waiter)", h-hits0)
	}
}

// TestPoolLoadErrorCoalesced makes the device read fail (read past EOF)
// while several readers are coalesced on the loading frame: every caller
// must observe the error, the failed attempt must count exactly one miss
// and zero hits no matter how many goroutines coalesced on it, and the
// pool must stay clean — the failed frame is detached so later Gets
// retry, and valid pages remain readable.
func TestPoolLoadErrorCoalesced(t *testing.T) {
	f, pool := stampedFile(t, 2, 64)

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	pool.loadHook = func(frameKey) { entered <- struct{}{}; <-release }

	hits0, misses0 := pool.Stats()
	const badPage = PageID(99) // past EOF: ReadPage fails after the latch is installed
	const waiters = 3
	errc := make(chan error, 1+waiters)
	go func() { _, err := pool.Get(f, badPage); errc <- err }()
	<-entered
	for i := 0; i < waiters; i++ {
		go func() { _, err := pool.Get(f, badPage); errc <- err }()
	}
	// Loader's pin plus one per coalesced waiter.
	waitPins(t, pool, f, badPage, 1+waiters)
	close(release)

	for i := 0; i < 1+waiters; i++ {
		err := <-errc
		if err == nil {
			t.Fatal("coalesced Get of unreadable page returned nil error")
		}
		if !strings.Contains(err.Error(), "read past end") {
			t.Errorf("unexpected error published to waiter: %v", err)
		}
	}

	// One failed singleflight read published to N waiters is one miss (the
	// load attempt) and zero hits.
	if h, m := pool.Stats(); h != hits0 || m != misses0+1 {
		t.Errorf("failed coalesced load moved counters by %d hits, %d misses; want 0 hits, 1 miss",
			h-hits0, m-misses0)
	}

	// The failed frame must not poison the pool: the key is free again...
	pool.loadHook = nil
	if _, err := pool.Get(f, badPage); err == nil {
		t.Error("Get of unreadable page after failure returned nil error")
	}
	// ...and healthy pages still load.
	fr, err := pool.Get(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(fr.Data()); got != 1 {
		t.Errorf("page 1 holds stamp %d after load failure", got)
	}
	pool.Unpin(fr)
	if err := pool.DropCaches(); err != nil {
		t.Errorf("DropCaches after load failure: %v", err)
	}
}
