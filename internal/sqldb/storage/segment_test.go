package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// buildSegmentData fabricates n rows with deterministic payloads, sized so
// several rows spill across page boundaries.
func buildSegmentData(rng *rand.Rand, n int) SegmentData {
	sd := SegmentData{Cols: []byte{1, 4, 4, 4}, PKLen: 1}
	for i := 0; i < n; i++ {
		ln := rng.Intn(3 * PageSize / 2)
		if i%7 == 0 {
			ln = 0 // empty payloads must round-trip too
		}
		payload := make([]byte, ln)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		sd.Keys = append(sd.Keys, Key{int64(i * 3), 0})
		sd.Lens = append(sd.Lens, uint32(ln))
		sd.Data = append(sd.Data, payload...)
	}
	return sd
}

func openSegmentAt(t *testing.T, path string, pool *Pool) (*Segment, *PagedFile) {
	t.Helper()
	var clock Clock
	f, err := OpenPagedFile(path, RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	pool.Register(f)
	seg, err := OpenSegment(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	return seg, f
}

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.seg")
	rng := rand.New(rand.NewSource(11))
	sd := buildSegmentData(rng, 40)
	var clock Clock
	if err := WriteSegmentFile(path, RAM, &clock, sd); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size()%PageSize != 0 {
		t.Fatalf("segment file size %d not page-aligned", st.Size())
	}

	pool := NewPool(64)
	seg, f := openSegmentAt(t, path, pool)
	defer f.Close()

	if seg.NumRows() != len(sd.Keys) {
		t.Fatalf("NumRows = %d, want %d", seg.NumRows(), len(sd.Keys))
	}
	if !bytes.Equal(seg.Cols(), sd.Cols) {
		t.Fatalf("Cols = %v, want %v", seg.Cols(), sd.Cols)
	}
	if seg.PKLen() != sd.PKLen {
		t.Fatalf("PKLen = %d, want %d", seg.PKLen(), sd.PKLen)
	}
	var buf []byte
	off := 0
	for i, k := range sd.Keys {
		j, ok := seg.Find(k)
		if !ok || j != i {
			t.Fatalf("Find(%v) = %d,%v, want %d,true", k, j, ok, i)
		}
		var err error
		buf, err = seg.ReadRow(j, buf)
		if err != nil {
			t.Fatal(err)
		}
		want := sd.Data[off : off+int(sd.Lens[i])]
		if !bytes.Equal(buf, want) {
			t.Fatalf("row %d payload mismatch", i)
		}
		off += int(sd.Lens[i])
	}
	// Absent keys miss cleanly on either side and between rows.
	for _, k := range []Key{{-1, 0}, {1, 0}, {int64(len(sd.Keys) * 3), 0}, {0, 1}} {
		if _, ok := seg.Find(k); ok {
			t.Fatalf("Find(%v) hit, want miss", k)
		}
	}
}

func TestSegmentWriteDeterministic(t *testing.T) {
	dir := t.TempDir()
	sd := buildSegmentData(rand.New(rand.NewSource(5)), 25)
	var images [][]byte
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, "t.seg")
		var clock Clock
		if err := WriteSegmentFile(path, RAM, &clock, sd); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, b)
	}
	if !bytes.Equal(images[0], images[1]) {
		t.Fatal("rewriting the same SegmentData produced different bytes")
	}
}

func TestSegmentRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	var clock Clock
	dev := RAM
	path := filepath.Join(dir, "bad.seg")
	cases := []SegmentData{
		{Cols: []byte{1}, PKLen: 1, Keys: []Key{{1, 0}}, Lens: []uint32{1, 2}, Data: []byte{0}},
		{Cols: []byte{1}, PKLen: 3, Keys: nil, Lens: nil},
		{Cols: []byte{1}, PKLen: 1, Keys: []Key{{2, 0}, {1, 0}}, Lens: []uint32{0, 0}},
		{Cols: []byte{1}, PKLen: 1, Keys: []Key{{1, 0}}, Lens: []uint32{4}, Data: []byte{0}},
	}
	for i, sd := range cases {
		if err := WriteSegmentFile(path, dev, &clock, sd); err == nil {
			t.Fatalf("case %d: WriteSegmentFile succeeded, want error", i)
		}
	}
	// A non-segment page-aligned file must be rejected at open.
	heap := filepath.Join(dir, "not.seg")
	if err := os.WriteFile(heap, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenPagedFile(heap, dev, &clock)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool := NewPool(8)
	pool.Register(f)
	if _, err := OpenSegment(f, pool); err == nil {
		t.Fatal("OpenSegment accepted a zeroed file")
	}
}

// TestSegmentColdReadPages pins the cold-I/O claim: after DropCaches a
// single-row lookup reads exactly the payload's pages — the in-memory
// directory costs nothing per query.
func TestSegmentColdReadPages(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.seg")
	sd := SegmentData{Cols: []byte{1, 4}, PKLen: 1}
	for i := 0; i < 8; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 100) // well under a page
		sd.Keys = append(sd.Keys, Key{int64(i), 0})
		sd.Lens = append(sd.Lens, uint32(len(payload)))
		sd.Data = append(sd.Data, payload...)
	}
	var clock Clock
	if err := WriteSegmentFile(path, RAM, &clock, sd); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(64)
	seg, f := openSegmentAt(t, path, pool)
	defer f.Close()
	if err := pool.DropCaches(); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := pool.Stats()
	i, ok := seg.Find(Key{3, 0})
	if !ok {
		t.Fatal("key 3 missing")
	}
	if _, err := seg.ReadRow(i, nil); err != nil {
		t.Fatal(err)
	}
	_, missesAfter := pool.Stats()
	if got := missesAfter - missesBefore; got != 1 {
		t.Fatalf("cold lookup read %d pages, want 1", got)
	}
}
