package storage

import (
	"fmt"
	"sync"
)

// Pool is the shared buffer pool: a fixed number of page frames cached over
// any number of PagedFiles, with LRU replacement and write-back of dirty
// pages. It plays the role of PostgreSQL's shared_buffers in the PTLDB
// evaluation; DropCaches emulates the paper's "restart the server and clear
// the operating system's cache" step.
//
// The pool itself is safe for concurrent use. The bytes of a pinned frame
// may be read concurrently; mutating them is only safe while the caller is
// the sole writer (PTLDB's workload is bulk-load-then-read-only, matching
// the paper).
type Pool struct {
	mu       sync.Mutex
	capacity int
	frames   map[frameKey]*Frame
	// LRU list of unpinned frames; head is least recently used.
	lruHead, lruTail *Frame

	nextFileID int

	hits, misses uint64
}

type frameKey struct {
	file int
	page PageID
}

// Frame is one pinned buffer-pool page. Callers must Unpin it when done and
// MarkDirty after modifying its Data.
type Frame struct {
	key   frameKey
	file  *PagedFile
	data  [PageSize]byte
	pins  int
	dirty bool

	prev, next *Frame // LRU links, valid only while unpinned
}

// Data returns the page bytes. The slice is valid while the frame is pinned.
func (f *Frame) Data() []byte { return f.data[:] }

// MarkDirty records that the page must be written back before eviction.
func (f *Frame) MarkDirty() { f.dirty = true }

// Page returns the page id this frame caches.
func (f *Frame) Page() PageID { return f.key.page }

// NewPool creates a pool with room for capacity frames (minimum 8).
func NewPool(capacity int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	return &Pool{capacity: capacity, frames: make(map[frameKey]*Frame, capacity)}
}

// Register assigns the pool-local id of a file. It must be called once per
// file before the first Get.
func (p *Pool) Register(f *PagedFile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextFileID++
	f.id = p.nextFileID
}

// Get pins the frame holding page id of file f, reading it from the device
// on a miss.
func (p *Pool) Get(f *PagedFile, id PageID) (*Frame, error) {
	key := frameKey{file: f.id, page: id}
	p.mu.Lock()
	if fr, ok := p.frames[key]; ok {
		p.hits++
		if fr.pins == 0 {
			p.lruRemove(fr)
		}
		fr.pins++
		p.mu.Unlock()
		return fr, nil
	}
	p.misses++
	fr, err := p.allocFrameLocked(f, key)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	// Read outside the pool lock would allow higher concurrency but would
	// need per-frame latches; the evaluation workload is latency-bound, not
	// throughput-bound, so the simple protocol is kept.
	if err := f.ReadPage(id, fr.data[:]); err != nil {
		fr.pins = 0
		delete(p.frames, key)
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Unlock()
	return fr, nil
}

// NewPage allocates a fresh page in f and returns it pinned and zeroed.
func (p *Pool) NewPage(f *PagedFile) (*Frame, error) {
	id, err := f.Allocate()
	if err != nil {
		return nil, err
	}
	key := frameKey{file: f.id, page: id}
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, err := p.allocFrameLocked(f, key)
	if err != nil {
		return nil, err
	}
	fr.dirty = true
	return fr, nil
}

// allocFrameLocked finds a free frame (evicting if needed), installs it in
// the table pinned once, and returns it. Caller holds p.mu.
func (p *Pool) allocFrameLocked(f *PagedFile, key frameKey) (*Frame, error) {
	for len(p.frames) >= p.capacity {
		victim := p.lruHead
		if victim == nil {
			return nil, fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", p.capacity)
		}
		p.lruRemove(victim)
		delete(p.frames, victim.key)
		if victim.dirty {
			if err := victim.file.WritePage(victim.key.page, victim.data[:]); err != nil {
				return nil, err
			}
		}
	}
	fr := &Frame{key: key, file: f, pins: 1}
	p.frames[key] = fr
	return fr, nil
}

// Unpin releases one pin. Unpinned frames become eviction candidates.
func (p *Pool) Unpin(fr *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pins <= 0 {
		panic("storage: Unpin of unpinned frame")
	}
	fr.pins--
	if fr.pins == 0 {
		p.lruAppend(fr)
	}
}

// FlushAll writes every dirty frame back to its file.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.dirty {
			if err := fr.file.WritePage(fr.key.page, fr.data[:]); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// DropCaches flushes and evicts every frame, emulating a cold server start.
// It fails if any frame is still pinned.
func (p *Pool) DropCaches() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.pins > 0 {
			return fmt.Errorf("storage: DropCaches with pinned page %d", fr.key.page)
		}
		if fr.dirty {
			if err := fr.file.WritePage(fr.key.page, fr.data[:]); err != nil {
				return err
			}
		}
	}
	p.frames = make(map[frameKey]*Frame, p.capacity)
	p.lruHead, p.lruTail = nil, nil
	return nil
}

// Stats reports hit/miss counters since creation.
func (p *Pool) Stats() (hits, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

func (p *Pool) lruAppend(fr *Frame) {
	fr.prev, fr.next = p.lruTail, nil
	if p.lruTail != nil {
		p.lruTail.next = fr
	} else {
		p.lruHead = fr
	}
	p.lruTail = fr
}

func (p *Pool) lruRemove(fr *Frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		p.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		p.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}
