package storage

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ptldb/internal/obs"
)

// Pool is the shared buffer pool: a fixed number of page frames cached over
// any number of PagedFiles, with LRU replacement and write-back of dirty
// pages. It plays the role of PostgreSQL's shared_buffers in the PTLDB
// evaluation; DropCaches emulates the paper's "restart the server and clear
// the operating system's cache" step.
//
// The pool is sharded by frame-key hash — max(8, GOMAXPROCS) shards, each
// with its own mutex, frame table and LRU list — so unrelated page accesses
// never contend on a shared lock. Device reads happen outside the shard
// lock under a per-frame load latch: on a miss the frame is installed in a
// "loading" state, the shard lock is dropped, the page is read from the
// device, and the result (bytes or error) is published to every goroutine
// that coalesced on the frame in the meantime. Concurrent misses on
// different pages therefore overlap their I/O; concurrent misses on the
// same page trigger exactly one device read.
//
// The bytes of a pinned frame may be read concurrently; mutating them is
// only safe while the caller is the sole writer (PTLDB's workload is
// bulk-load-then-read-only, matching the paper).
//
// Write-back follows the same no-I/O-under-lock discipline as loads
// (enforced by lockcheck, see DESIGN.md §8): eviction and flushing pin their
// dirty victims under the shard lock, drop the lock, write the pages back,
// and then relock to unpin and complete (or cancel) the eviction. A
// concurrent Get that re-pins a victim mid-write-back simply keeps the frame
// resident.
type Pool struct {
	shards []poolShard

	nextFileID atomic.Int64

	// metrics holds the pool's observability counters (hits, misses,
	// evictions, write-backs); Metrics exposes them so a database handle can
	// graft them into its obs.Registry.
	metrics obs.PoolMetrics

	// loadHook, when non-nil, runs after a loading frame is installed and
	// before its device read. Tests use it to coordinate concurrent misses.
	loadHook func(key frameKey)
}

// poolShard is one independently locked slice of the pool.
type poolShard struct {
	// mu is acquisition level 20: taken after a frame latch (level 10) on the
	// write-back path, never while another shard-class mutex is held
	// (lockordercheck).
	mu       sync.Mutex // lockcheck:shard level=20
	capacity int
	metrics  *obs.PoolMetrics // points at the owning pool's counters
	frames   map[frameKey]*Frame
	// LRU list of unpinned resident frames; head is least recently used.
	lruHead, lruTail *Frame
}

type frameKey struct {
	file int
	page PageID
}

// Frame is one pinned buffer-pool page. Callers must Unpin it when done and
// MarkDirty after modifying its Data.
//
// Lifecycle: loading (installed pinned, ready open) → resident (ready
// closed, loadErr nil) → evicted (removed from the shard table once
// unpinned). A failed load is published by closing ready with loadErr set
// and detaching the frame, so every coalesced waiter observes the error and
// a later Get retries the read from scratch.
type Frame struct {
	key   frameKey
	file  *PagedFile
	shard *poolShard

	// ready is closed once data is valid or loadErr is set; loadErr must
	// only be read after ready is closed. The latch is acquisition level 10:
	// the loader holds it open while re-taking shard mutexes (level 20) for
	// write-back and publication, so it orders strictly below them.
	ready   chan struct{} // lockcheck:latch level=10
	loadErr error

	data  [PageSize]byte
	pins  int
	dirty bool

	prev, next *Frame // LRU links, valid only while unpinned and resident
}

// Data returns the page bytes. The slice is valid while the frame is pinned.
func (f *Frame) Data() []byte { return f.data[:] }

// MarkDirty records that the page must be written back before eviction.
func (f *Frame) MarkDirty() { f.dirty = true }

// Page returns the page id this frame caches.
func (f *Frame) Page() PageID { return f.key.page }

// NewPool creates a pool with room for capacity frames (minimum 8), split
// over max(8, GOMAXPROCS) shards. The capacity bounds the resident set;
// frames pinned concurrently beyond a shard's slice are allowed as a
// temporary overflow and trimmed back by later allocations.
func NewPool(capacity int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	nShards := runtime.GOMAXPROCS(0)
	if nShards < 8 {
		nShards = 8
	}
	perShard := (capacity + nShards - 1) / nShards
	if perShard < 2 {
		perShard = 2
	}
	p := &Pool{shards: make([]poolShard, nShards)}
	for i := range p.shards {
		p.shards[i] = poolShard{
			capacity: perShard,
			metrics:  &p.metrics,
			frames:   make(map[frameKey]*Frame, perShard),
		}
	}
	return p
}

// shard maps a frame key to its home shard by hash.
func (p *Pool) shard(key frameKey) *poolShard {
	h := uint64(key.file)*0x9E3779B97F4A7C15 + uint64(key.page)
	h ^= h >> 33
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &p.shards[h%uint64(len(p.shards))]
}

// Register assigns the pool-local id of a file. It must be called once per
// file before the first Get.
func (p *Pool) Register(f *PagedFile) {
	f.id = int(p.nextFileID.Add(1))
}

// Get pins the frame holding page id of file f, reading it from the device
// on a miss. Concurrent Gets for the same uncached page coalesce into one
// device read; all callers receive the same frame (or the same read error).
//
// hotpath — allocheck root: the resident-hit path (map probe, pin, latch
// receive, counter) must stay allocation-free; the miss tail allocates only
// inside installLocked, which is marked cold.
func (p *Pool) Get(f *PagedFile, id PageID) (*Frame, error) {
	key := frameKey{file: f.id, page: id}
	sh := p.shard(key)
	sh.mu.Lock()
	if fr, ok := sh.frames[key]; ok {
		if fr.pins == 0 {
			sh.lruRemove(fr)
		}
		fr.pins++
		sh.mu.Unlock()
		<-fr.ready // immediate for resident frames
		if fr.loadErr != nil {
			// The loader detached the frame; our pin dies with it. The
			// failed load attempt is the loader's single miss — waiters
			// that coalesced on it count neither a hit nor a miss.
			return nil, fr.loadErr
		}
		p.metrics.Hits.Add(1)
		return fr, nil
	}
	// Miss: install a loading frame (the latch), then do all device work —
	// victim write-back and the page read — with the shard lock dropped so
	// misses on other pages proceed in parallel. The miss is counted up
	// front, exactly once per load attempt, whether or not the write-back
	// or the read below fails.
	fr, victims := sh.installLocked(f, key)
	sh.mu.Unlock()
	p.metrics.Misses.Add(1)
	if werr := p.writeBack(victims, true); werr != nil {
		return nil, p.failLoad(fr, werr)
	}
	if p.loadHook != nil {
		p.loadHook(key)
	}
	if rerr := f.ReadPage(id, fr.data[:]); rerr != nil {
		return nil, p.failLoad(fr, rerr)
	}
	close(fr.ready)
	return fr, nil
}

// failLoad publishes a load failure to every waiter coalesced on fr and
// detaches the frame so subsequent Gets retry from scratch.
func (p *Pool) failLoad(fr *Frame, err error) error {
	sh := fr.shard
	sh.mu.Lock()
	delete(sh.frames, fr.key)
	sh.mu.Unlock()
	fr.loadErr = err
	close(fr.ready)
	return err
}

// NewPage allocates a fresh page in f and returns it pinned and zeroed.
func (p *Pool) NewPage(f *PagedFile) (*Frame, error) {
	id, err := f.Allocate()
	if err != nil {
		return nil, err
	}
	key := frameKey{file: f.id, page: id}
	sh := p.shard(key)
	sh.mu.Lock()
	fr, victims := sh.installLocked(f, key)
	fr.dirty = true
	sh.mu.Unlock()
	if werr := p.writeBack(victims, true); werr != nil {
		return nil, p.failLoad(fr, werr)
	}
	close(fr.ready) // a fresh page is valid (zeroed) immediately
	return fr, nil
}

// installLocked finds room in the shard (evicting unpinned frames while at
// capacity), installs a new loading frame pinned once, and returns it along
// with the dirty victims the caller must write back (and thereby evict) once
// the lock is dropped. Clean victims are evicted immediately; dirty ones are
// pinned and handed to writeBack so no device I/O happens under sh.mu. When
// every resident frame is pinned the shard overflows temporarily instead of
// failing: pinned frames must live somewhere, and later allocations trim the
// shard back to capacity. Caller holds sh.mu.
//
// hotpath:cold — the pool miss path: the one place a frame and its latch are
// allocated; the runtime ratchet bounds how often it runs.
func (sh *poolShard) installLocked(f *PagedFile, key frameKey) (fr *Frame, victims []*Frame) {
	for len(sh.frames)-len(victims) >= sh.capacity {
		victim := sh.lruHead
		if victim == nil {
			break // all pinned: allow temporary overflow
		}
		sh.lruRemove(victim)
		if victim.dirty {
			// Keep the victim resident and pinned until its bytes are safely
			// on the device; writeBack finishes the eviction (and counts it).
			victim.pins++
			victims = append(victims, victim)
			continue
		}
		delete(sh.frames, victim.key)
		sh.metrics.Evictions.Add(1)
	}
	fr = &Frame{key: key, file: f, shard: sh, pins: 1, ready: make(chan struct{})}
	sh.frames[key] = fr
	return fr, victims
}

// writeBack writes the pinned victims' pages to their devices — outside any
// shard lock — then unpins each one. A victim written successfully is marked
// clean and, when evict is set, removed from its shard; a victim that failed
// to write or was re-pinned by a concurrent Get stays resident (and, on
// failure, dirty) so a later flush retries. All victims are unpinned even
// when a write fails; the first error is returned.
func (p *Pool) writeBack(victims []*Frame, evict bool) error {
	var firstErr error
	for _, v := range victims {
		err := v.file.WritePage(v.key.page, v.data[:])
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil {
			p.metrics.WriteBacks.Add(1)
		}
		sh := v.shard
		sh.mu.Lock()
		v.pins--
		if err == nil {
			v.dirty = false
		}
		if v.pins == 0 && sh.frames[v.key] == v {
			if evict && err == nil {
				delete(sh.frames, v.key)
				sh.metrics.Evictions.Add(1)
			} else {
				sh.lruAppend(v)
			}
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Unpin releases one pin. Unpinned frames become eviction candidates.
func (p *Pool) Unpin(fr *Frame) {
	sh := fr.shard
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr.pins <= 0 {
		panic("storage: Unpin of unpinned frame")
	}
	fr.pins--
	if fr.pins == 0 && sh.frames[fr.key] == fr {
		sh.lruAppend(fr)
		// Trim pinned-overflow back toward capacity. Only clean frames are
		// evicted here (Unpin cannot report a write-back error); dirty
		// overflow is trimmed by the next allocation in this shard.
		for len(sh.frames) > sh.capacity && sh.lruHead != nil && !sh.lruHead.dirty {
			victim := sh.lruHead
			sh.lruRemove(victim)
			delete(sh.frames, victim.key)
			sh.metrics.Evictions.Add(1)
		}
	}
}

// FlushAll writes every dirty frame back to its file. Dirty frames are
// pinned under the shard lock, written with the lock dropped, and unpinned;
// frames dirtied concurrently with the flush may be missed, so callers
// wanting a full sync must quiesce writers first (PTLDB's bulk-load flow
// does).
func (p *Pool) FlushAll() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		var victims []*Frame
		for _, fr := range sh.frames {
			if fr.dirty {
				if fr.pins == 0 {
					sh.lruRemove(fr)
				}
				fr.pins++
				victims = append(victims, fr)
			}
		}
		sh.mu.Unlock()
		if err := p.writeBack(victims, false); err != nil {
			return err
		}
	}
	return nil
}

// DropCaches flushes and evicts every frame, emulating a cold server start.
// It fails if any frame is still pinned or if a write races the drop.
func (p *Pool) DropCaches() error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, fr := range sh.frames {
			if fr.pins > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("storage: DropCaches with pinned page %d", fr.key.page)
			}
			if fr.dirty {
				sh.mu.Unlock()
				return fmt.Errorf("storage: DropCaches raced a write to page %d", fr.key.page)
			}
		}
		sh.frames = make(map[frameKey]*Frame, sh.capacity)
		sh.lruHead, sh.lruTail = nil, nil
		sh.mu.Unlock()
	}
	return nil
}

// Stats reports hit/miss counters since creation. A Get that coalesces on
// an in-flight load counts as a hit only once the load succeeds; the loader
// counts exactly one miss per load attempt (successful or not), so misses
// equals the number of device reads issued through the pool and a failed
// coalesced read contributes one miss and zero hits no matter how many
// goroutines were waiting on it.
func (p *Pool) Stats() (hits, misses uint64) {
	return p.metrics.Hits.Load(), p.metrics.Misses.Load()
}

// Metrics exposes the pool's full counter set — hits, misses, evictions and
// write-backs — for grafting into an obs.Registry. The returned pointer is
// live: counters keep advancing as the pool runs. Evictions count frames
// displaced for capacity (by allocation, write-back completion or overflow
// trimming); DropCaches is a bulk reset and is deliberately not counted.
func (p *Pool) Metrics() *obs.PoolMetrics {
	return &p.metrics
}

// NumFrames returns the number of resident frames across all shards.
func (p *Pool) NumFrames() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += len(sh.frames)
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the total frame capacity across all shards.
func (p *Pool) Capacity() int {
	n := 0
	for i := range p.shards {
		n += p.shards[i].capacity
	}
	return n
}

func (sh *poolShard) lruAppend(fr *Frame) {
	fr.prev, fr.next = sh.lruTail, nil
	if sh.lruTail != nil {
		sh.lruTail.next = fr
	} else {
		sh.lruHead = fr
	}
	sh.lruTail = fr
}

func (sh *poolShard) lruRemove(fr *Frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		sh.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		sh.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}
