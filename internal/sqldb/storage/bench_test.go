package storage

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func benchTree(b *testing.B, n int) (*BTree, *Pool) {
	b.Helper()
	var clock Clock
	f, err := OpenPagedFile(filepath.Join(b.TempDir(), "bt.pg"), RAM, &clock)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	pool := NewPool(4096)
	pool.Register(f)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, i := range rng.Perm(n) {
		if err := bt.Insert(Key{int64(i), int64(i)}, Locator{Page: PageID(i)}); err != nil {
			b.Fatal(err)
		}
	}
	return bt, pool
}

func BenchmarkBTreeGet(b *testing.B) {
	bt, _ := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(rng.Intn(100000))
		if _, ok, err := bt.Get(Key{k, k}); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	var clock Clock
	f, err := OpenPagedFile(filepath.Join(b.TempDir(), "bt.pg"), RAM, &clock)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	pool := NewPool(4096)
	pool.Register(f)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.Insert(Key{int64(i), 0}, Locator{Page: PageID(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeRangeScan100(b *testing.B) {
	bt, _ := benchTree(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := int64((i * 97) % 90000)
		cur, err := bt.Seek(Key{start, start})
		if err != nil {
			b.Fatal(err)
		}
		for n := 0; n < 100 && cur.Valid(); n++ {
			_ = cur.Key()
			if err := cur.Next(); err != nil {
				b.Fatal(err)
			}
		}
		cur.Close()
	}
}

func BenchmarkRowStoreAppendRead(b *testing.B) {
	var clock Clock
	f, err := OpenPagedFile(filepath.Join(b.TempDir(), "rs.pg"), RAM, &clock)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	pool := NewPool(4096)
	pool.Register(f)
	rs, err := OpenRowStore(f, pool)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 512)
	var locs []Locator
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc, err := rs.Append(payload)
		if err != nil {
			b.Fatal(err)
		}
		locs = append(locs, loc)
		if i%8 == 0 {
			if _, err := rs.Read(locs[i/2]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPoolGetHit(b *testing.B) {
	var clock Clock
	f, err := OpenPagedFile(filepath.Join(b.TempDir(), "p.pg"), RAM, &clock)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	pool := NewPool(64)
	pool.Register(f)
	fr, err := pool.NewPage(f)
	if err != nil {
		b.Fatal(err)
	}
	pool.Unpin(fr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := pool.Get(f, 0)
		if err != nil {
			b.Fatal(err)
		}
		pool.Unpin(fr)
	}
}
