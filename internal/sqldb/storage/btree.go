package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// BTree is a disk-resident B+tree mapping composite integer keys to record
// locators. It backs every primary-key index in PTLDB: lout/lin use a single
// column (v), the kNN and one-to-many tables use two (hub, dephour) or
// (hub, td). Single-column keys fix the second component to zero.
//
// Leaves are chained left to right, so lookups support both exact matches
// and ascending range scans from a seek position — the access path of the
// naive kNN query's "hub = ? AND td >= ?" predicate.
type BTree struct {
	file *PagedFile
	pool *Pool

	root   PageID
	height uint32
	count  uint64
}

// Key is a composite key of at most two integer columns.
type Key [2]int64

// Less orders keys lexicographically.
func (k Key) Less(o Key) bool {
	if k[0] != o[0] {
		return k[0] < o[0]
	}
	return k[1] < o[1]
}

const (
	btreeMagic = 0x50544c42 // "PTLB"

	nodeLeaf     = 1
	nodeInternal = 2

	// Node header: type(1) pad(1) count(2) next(4).
	nodeHdrSize = 8

	keySize  = 16
	locSize  = 12
	childPtr = 4

	leafEntry = keySize + locSize
	intEntry  = keySize + childPtr

	maxLeafEntries = (PageSize - nodeHdrSize) / leafEntry
	// Internal nodes store count keys and count+1 children.
	maxIntEntries = (PageSize - nodeHdrSize - childPtr) / intEntry

	invalidPage = PageID(0xFFFFFFFF)
)

// OpenBTree opens or initializes a B+tree over file. Page 0 holds the tree
// header; page 1 is the initial (empty leaf) root.
func OpenBTree(file *PagedFile, pool *Pool) (*BTree, error) {
	t := &BTree{file: file, pool: pool}
	if file.NumPages() == 0 {
		hdr, err := pool.NewPage(file)
		if err != nil {
			return nil, err
		}
		rootFr, err := pool.NewPage(file)
		if err != nil {
			pool.Unpin(hdr)
			return nil, err
		}
		t.root, t.height = rootFr.Page(), 1
		initNode(rootFr, nodeLeaf)
		setNext(rootFr, invalidPage)
		pool.Unpin(rootFr)
		t.writeHeader(hdr)
		pool.Unpin(hdr)
		return t, nil
	}
	fr, err := pool.Get(file, 0)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(fr)
	d := fr.Data()
	if binary.LittleEndian.Uint32(d[0:]) != btreeMagic {
		return nil, fmt.Errorf("storage: bad btree magic")
	}
	t.root = PageID(binary.LittleEndian.Uint32(d[4:]))
	t.height = binary.LittleEndian.Uint32(d[8:])
	t.count = binary.LittleEndian.Uint64(d[12:])
	return t, nil
}

func (t *BTree) writeHeader(fr *Frame) {
	d := fr.Data()
	binary.LittleEndian.PutUint32(d[0:], btreeMagic)
	binary.LittleEndian.PutUint32(d[4:], uint32(t.root))
	binary.LittleEndian.PutUint32(d[8:], t.height)
	binary.LittleEndian.PutUint64(d[12:], t.count)
	fr.MarkDirty()
}

// Flush persists the tree header and all buffered pages.
func (t *BTree) Flush() error {
	fr, err := t.pool.Get(t.file, 0)
	if err != nil {
		return err
	}
	t.writeHeader(fr)
	t.pool.Unpin(fr)
	return t.pool.FlushAll()
}

// Count returns the number of stored keys.
func (t *BTree) Count() uint64 { return t.count }

// Height returns the tree height (1 = root is a leaf).
func (t *BTree) Height() uint32 { return t.height }

// --- node accessors -------------------------------------------------------

func initNode(fr *Frame, typ byte) {
	d := fr.Data()
	for i := range d {
		d[i] = 0
	}
	d[0] = typ
	fr.MarkDirty()
}

func nodeType(fr *Frame) byte { return fr.Data()[0] }
func nodeCount(fr *Frame) int { return int(binary.LittleEndian.Uint16(fr.Data()[2:])) }
func setCount(fr *Frame, n int) {
	binary.LittleEndian.PutUint16(fr.Data()[2:], uint16(n))
	fr.MarkDirty()
}
func nextLeaf(fr *Frame) PageID { return PageID(binary.LittleEndian.Uint32(fr.Data()[4:])) }
func setNext(fr *Frame, p PageID) {
	binary.LittleEndian.PutUint32(fr.Data()[4:], uint32(p))
	fr.MarkDirty()
}

func leafKey(fr *Frame, i int) Key {
	off := nodeHdrSize + i*leafEntry
	return decodeKey(fr.Data()[off:])
}

func leafLoc(fr *Frame, i int) Locator {
	off := nodeHdrSize + i*leafEntry + keySize
	d := fr.Data()[off:]
	return Locator{
		Page: PageID(binary.LittleEndian.Uint32(d[0:])),
		Off:  binary.LittleEndian.Uint32(d[4:]),
		Len:  binary.LittleEndian.Uint32(d[8:]),
	}
}

func putLeafEntry(fr *Frame, i int, k Key, loc Locator) {
	off := nodeHdrSize + i*leafEntry
	d := fr.Data()[off:]
	encodeKey(d, k)
	binary.LittleEndian.PutUint32(d[keySize+0:], uint32(loc.Page))
	binary.LittleEndian.PutUint32(d[keySize+4:], loc.Off)
	binary.LittleEndian.PutUint32(d[keySize+8:], loc.Len)
	fr.MarkDirty()
}

// Internal node layout: child0(4) then count * (key, child).
func intChild(fr *Frame, i int) PageID {
	if i == 0 {
		return PageID(binary.LittleEndian.Uint32(fr.Data()[nodeHdrSize:]))
	}
	off := nodeHdrSize + childPtr + (i-1)*intEntry + keySize
	return PageID(binary.LittleEndian.Uint32(fr.Data()[off:]))
}

func intKey(fr *Frame, i int) Key {
	off := nodeHdrSize + childPtr + i*intEntry
	return decodeKey(fr.Data()[off:])
}

func setIntChild0(fr *Frame, p PageID) {
	binary.LittleEndian.PutUint32(fr.Data()[nodeHdrSize:], uint32(p))
	fr.MarkDirty()
}

func putIntEntry(fr *Frame, i int, k Key, child PageID) {
	off := nodeHdrSize + childPtr + i*intEntry
	d := fr.Data()[off:]
	encodeKey(d, k)
	binary.LittleEndian.PutUint32(d[keySize:], uint32(child))
	fr.MarkDirty()
}

func encodeKey(d []byte, k Key) {
	binary.LittleEndian.PutUint64(d[0:], uint64(k[0]))
	binary.LittleEndian.PutUint64(d[8:], uint64(k[1]))
}

func decodeKey(d []byte) Key {
	return Key{
		int64(binary.LittleEndian.Uint64(d[0:])),
		int64(binary.LittleEndian.Uint64(d[8:])),
	}
}

// --- search ----------------------------------------------------------------

// leafLowerBound returns the first index whose key is >= k.
func leafLowerBound(fr *Frame, k Key) int {
	lo, hi := 0, nodeCount(fr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if leafKey(fr, mid).Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intChildFor returns the child to descend into for key k: the child after
// the last separator <= k.
func intChildFor(fr *Frame, k Key) PageID {
	lo, hi := 0, nodeCount(fr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		ik := intKey(fr, mid)
		if ik.Less(k) || ik == k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return intChild(fr, lo)
}

// descendToLeaf pins and returns the leaf that would contain k.
func (t *BTree) descendToLeaf(k Key) (*Frame, error) {
	fr, err := t.pool.Get(t.file, t.root)
	if err != nil {
		return nil, err
	}
	for nodeType(fr) == nodeInternal {
		child := intChildFor(fr, k)
		t.pool.Unpin(fr)
		fr, err = t.pool.Get(t.file, child)
		if err != nil {
			return nil, err
		}
	}
	return fr, nil
}

// Get returns the locator stored under k.
func (t *BTree) Get(k Key) (Locator, bool, error) {
	fr, err := t.descendToLeaf(k)
	if err != nil {
		return Locator{}, false, err
	}
	defer t.pool.Unpin(fr)
	i := leafLowerBound(fr, k)
	if i < nodeCount(fr) && leafKey(fr, i) == k {
		return leafLoc(fr, i), true, nil
	}
	return Locator{}, false, nil
}

// Cursor iterates leaf entries in ascending key order from a seek position.
type Cursor struct {
	t    *BTree
	fr   *Frame
	idx  int
	done bool
}

// Seek positions a cursor at the first key >= k.
func (t *BTree) Seek(k Key) (*Cursor, error) {
	fr, err := t.descendToLeaf(k)
	if err != nil {
		return nil, err
	}
	c := &Cursor{t: t, fr: fr, idx: leafLowerBound(fr, k)}
	if err := c.skipExhausted(); err != nil {
		return nil, err
	}
	return c, nil
}

// SeekFirst positions a cursor at the smallest key.
func (t *BTree) SeekFirst() (*Cursor, error) {
	return t.Seek(Key{-1 << 63, -1 << 63})
}

func (c *Cursor) skipExhausted() error {
	for !c.done && c.idx >= nodeCount(c.fr) {
		next := nextLeaf(c.fr)
		c.t.pool.Unpin(c.fr)
		c.fr = nil
		if next == invalidPage {
			c.done = true
			return nil
		}
		fr, err := c.t.pool.Get(c.t.file, next)
		if err != nil {
			c.done = true
			return err
		}
		c.fr, c.idx = fr, 0
	}
	return nil
}

// Valid reports whether the cursor currently points at an entry.
func (c *Cursor) Valid() bool { return !c.done }

// Key returns the current entry's key; the cursor must be Valid.
func (c *Cursor) Key() Key { return leafKey(c.fr, c.idx) }

// Locator returns the current entry's locator; the cursor must be Valid.
func (c *Cursor) Locator() Locator { return leafLoc(c.fr, c.idx) }

// Next advances to the following entry.
func (c *Cursor) Next() error {
	if c.done {
		return nil
	}
	c.idx++
	return c.skipExhausted()
}

// Close releases the cursor's pinned leaf. Safe to call at any point.
func (c *Cursor) Close() {
	if c.fr != nil {
		c.t.pool.Unpin(c.fr)
		c.fr = nil
	}
	c.done = true
}

// --- insertion ---------------------------------------------------------------

// Insert stores loc under k, replacing any previous entry for k.
func (t *BTree) Insert(k Key, loc Locator) error {
	sep, right, replaced, err := t.insertInto(t.root, int(t.height), k, loc)
	if err != nil {
		return err
	}
	if !replaced {
		t.count++
	}
	if right != invalidPage {
		// Root split: grow the tree.
		fr, err := t.pool.NewPage(t.file)
		if err != nil {
			return err
		}
		initNode(fr, nodeInternal)
		setIntChild0(fr, t.root)
		putIntEntry(fr, 0, sep, right)
		setCount(fr, 1)
		t.root = fr.Page()
		t.height++
		t.pool.Unpin(fr)
	}
	return nil
}

// insertInto inserts into the subtree rooted at page (at the given level,
// 1 = leaf). On split it returns the separator key and new right sibling.
func (t *BTree) insertInto(page PageID, level int, k Key, loc Locator) (sep Key, right PageID, replaced bool, err error) {
	fr, err := t.pool.Get(t.file, page)
	if err != nil {
		return Key{}, invalidPage, false, err
	}
	defer t.pool.Unpin(fr)

	if level == 1 {
		return t.insertLeaf(fr, k, loc)
	}

	child := intChildFor(fr, k)
	csep, cright, replaced, err := t.insertInto(child, level-1, k, loc)
	if err != nil || cright == invalidPage {
		return Key{}, invalidPage, replaced, err
	}
	// Insert (csep, cright) into this internal node.
	n := nodeCount(fr)
	pos := 0
	for pos < n && (intKey(fr, pos).Less(csep) || intKey(fr, pos) == csep) {
		pos++
	}
	if n < maxIntEntries {
		for i := n; i > pos; i-- {
			putIntEntry(fr, i, intKey(fr, i-1), intChild(fr, i))
		}
		putIntEntry(fr, pos, csep, cright)
		setCount(fr, n+1)
		return Key{}, invalidPage, replaced, nil
	}
	// Split the internal node: gather entries, spill the upper half.
	keys := make([]Key, 0, n+1)
	children := make([]PageID, 0, n+2)
	children = append(children, intChild(fr, 0))
	for i := 0; i < n; i++ {
		keys = append(keys, intKey(fr, i))
		children = append(children, intChild(fr, i+1))
	}
	keys = append(keys[:pos], append([]Key{csep}, keys[pos:]...)...)
	children = append(children[:pos+1], append([]PageID{cright}, children[pos+1:]...)...)

	mid := len(keys) / 2
	sep = keys[mid]
	rightFr, err := t.pool.NewPage(t.file)
	if err != nil {
		return Key{}, invalidPage, false, err
	}
	defer t.pool.Unpin(rightFr)
	initNode(rightFr, nodeInternal)
	setIntChild0(rightFr, children[mid+1])
	for i := mid + 1; i < len(keys); i++ {
		putIntEntry(rightFr, i-mid-1, keys[i], children[i+1])
	}
	setCount(rightFr, len(keys)-mid-1)

	initNode(fr, nodeInternal)
	setIntChild0(fr, children[0])
	for i := 0; i < mid; i++ {
		putIntEntry(fr, i, keys[i], children[i+1])
	}
	setCount(fr, mid)
	return sep, rightFr.Page(), replaced, nil
}

func (t *BTree) insertLeaf(fr *Frame, k Key, loc Locator) (sep Key, right PageID, replaced bool, err error) {
	n := nodeCount(fr)
	pos := leafLowerBound(fr, k)
	if pos < n && leafKey(fr, pos) == k {
		putLeafEntry(fr, pos, k, loc)
		return Key{}, invalidPage, true, nil
	}
	if n < maxLeafEntries {
		for i := n; i > pos; i-- {
			putLeafEntry(fr, i, leafKey(fr, i-1), leafLoc(fr, i-1))
		}
		putLeafEntry(fr, pos, k, loc)
		setCount(fr, n+1)
		return Key{}, invalidPage, false, nil
	}
	// Split. Keep the left ~90% full when the new key lands at the very end
	// (bulk loads insert in ascending key order), otherwise split evenly.
	mid := n / 2
	if pos == n {
		mid = n * 9 / 10
	}
	rightFr, err := t.pool.NewPage(t.file)
	if err != nil {
		return Key{}, invalidPage, false, err
	}
	defer t.pool.Unpin(rightFr)
	initNode(rightFr, nodeLeaf)
	for i := mid; i < n; i++ {
		putLeafEntry(rightFr, i-mid, leafKey(fr, i), leafLoc(fr, i))
	}
	setCount(rightFr, n-mid)
	setNext(rightFr, nextLeaf(fr))
	setNext(fr, rightFr.Page())
	setCount(fr, mid)

	// Insert into the proper half.
	if pos <= mid {
		_, _, _, err = t.insertLeaf(fr, k, loc)
	} else {
		_, _, _, err = t.insertLeaf(rightFr, k, loc)
	}
	if err != nil {
		return Key{}, invalidPage, false, err
	}
	return leafKey(rightFr, 0), rightFr.Page(), false, nil
}

// --- bulk load ---------------------------------------------------------------

// BulkEntry is one (key, locator) pair for BulkLoad.
type BulkEntry struct {
	Key Key
	Loc Locator
}

// BulkLoad fills an empty tree from entries sorted by strictly ascending
// key: leaves are written completely full left to right (reusing the initial
// root page as the first leaf, so a single-leaf load allocates nothing) and
// the internal levels are stitched together bottom-up, one node per page
// pass — no per-entry root-to-leaf descent and no splits. Loading the same
// entries always produces the same page image, which the build determinism
// tests rely on.
func (t *BTree) BulkLoad(entries []BulkEntry) error {
	if t.count != 0 || t.height != 1 {
		return fmt.Errorf("storage: bulk load requires an empty btree (count %d, height %d)", t.count, t.height)
	}
	for i := 1; i < len(entries); i++ {
		if !entries[i-1].Key.Less(entries[i].Key) {
			return fmt.Errorf("storage: bulk load keys not strictly ascending at %d: %v then %v",
				i, entries[i-1].Key, entries[i].Key)
		}
	}
	if len(entries) == 0 {
		return nil
	}

	// Level 0: pack the leaves full, chaining the next pointers as we go.
	numLeaves := (len(entries) + maxLeafEntries - 1) / maxLeafEntries
	children := make([]PageID, 0, numLeaves)
	// minKey[i] is the smallest key under children[i]; the internal levels
	// use it as the separator in front of that child.
	minKeys := make([]Key, 0, numLeaves)
	var prev *Frame
	for i := 0; i < len(entries); i += maxLeafEntries {
		var fr *Frame
		var err error
		if len(children) == 0 {
			fr, err = t.pool.Get(t.file, t.root)
		} else {
			fr, err = t.pool.NewPage(t.file)
		}
		if err != nil {
			if prev != nil {
				t.pool.Unpin(prev)
			}
			return err
		}
		initNode(fr, nodeLeaf)
		n := len(entries) - i
		if n > maxLeafEntries {
			n = maxLeafEntries
		}
		for j := 0; j < n; j++ {
			putLeafEntry(fr, j, entries[i+j].Key, entries[i+j].Loc)
		}
		setCount(fr, n)
		setNext(fr, invalidPage)
		if prev != nil {
			setNext(prev, fr.Page())
			t.pool.Unpin(prev)
		}
		prev = fr
		children = append(children, fr.Page())
		minKeys = append(minKeys, entries[i].Key)
	}
	t.pool.Unpin(prev)

	// Stitch internal levels until one node spans everything. An internal
	// node holds up to maxIntEntries+1 children; when packing greedily would
	// strand a single child in the last node (a keyless node), the previous
	// node cedes one.
	height := uint32(1)
	for len(children) > 1 {
		fanout := maxIntEntries + 1
		upChildren := children[:0]
		upKeys := minKeys[:0]
		for s := 0; s < len(children); {
			e := s + fanout
			if e > len(children) {
				e = len(children)
			}
			if len(children)-e == 1 {
				e--
			}
			fr, err := t.pool.NewPage(t.file)
			if err != nil {
				return err
			}
			initNode(fr, nodeInternal)
			setIntChild0(fr, children[s])
			for k := s + 1; k < e; k++ {
				putIntEntry(fr, k-s-1, minKeys[k], children[k])
			}
			setCount(fr, e-s-1)
			upChildren = append(upChildren, fr.Page())
			upKeys = append(upKeys, minKeys[s])
			t.pool.Unpin(fr)
			s = e
		}
		children, minKeys = upChildren, upKeys
		height++
	}
	t.root = children[0]
	t.height = height
	t.count = uint64(len(entries))
	return nil
}

// Validate checks structural invariants (ordering within and across leaves,
// separator consistency) and returns the number of reachable leaf entries.
func (t *BTree) Validate() (int, error) {
	cur, err := t.SeekFirst()
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	n := 0
	var prev Key
	for cur.Valid() {
		k := cur.Key()
		if n > 0 && !prev.Less(k) {
			return n, fmt.Errorf("storage: btree keys out of order: %v then %v", prev, k)
		}
		prev = k
		n++
		if err := cur.Next(); err != nil {
			return n, err
		}
	}
	if uint64(n) != t.count {
		return n, fmt.Errorf("storage: btree count %d but %d reachable entries", t.count, n)
	}
	return n, nil
}

// DebugDump renders the tree structure for tests.
func (t *BTree) DebugDump() (string, error) {
	var buf bytes.Buffer
	var walk func(page PageID, level int) error
	walk = func(page PageID, level int) error {
		fr, err := t.pool.Get(t.file, page)
		if err != nil {
			return err
		}
		defer t.pool.Unpin(fr)
		for i := 0; i < level; i++ {
			buf.WriteString("  ")
		}
		if nodeType(fr) == nodeLeaf {
			fmt.Fprintf(&buf, "leaf %d: %d keys\n", page, nodeCount(fr))
			return nil
		}
		fmt.Fprintf(&buf, "int %d: %d keys\n", page, nodeCount(fr))
		for i := 0; i <= nodeCount(fr); i++ {
			if err := walk(intChild(fr, i), level+1); err != nil {
				return err
			}
		}
		return nil
	}
	err := walk(t.root, 0)
	return buf.String(), err
}
