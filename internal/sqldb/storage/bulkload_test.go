package storage

import (
	"path/filepath"
	"strings"
	"testing"
)

func bulkEntries(n int) []BulkEntry {
	entries := make([]BulkEntry, n)
	for i := range entries {
		entries[i] = BulkEntry{
			Key: Key{int64(i / 7), int64(i % 7)},
			Loc: Locator{Page: PageID(i % 1000), Off: uint32(i), Len: uint32(i%100 + 1)},
		}
	}
	return entries
}

// TestBTreeBulkLoadMatchesInsert bulk-loads trees of sizes around the leaf
// capacity and fanout boundaries and checks them entry-for-entry against a
// tree built through the insert path.
func TestBTreeBulkLoadMatchesInsert(t *testing.T) {
	sizes := []int{0, 1, 5, maxLeafEntries - 1, maxLeafEntries, maxLeafEntries + 1,
		3*maxLeafEntries + 17, 10000}
	for _, n := range sizes {
		var clock Clock
		f, pool := newTestFile(t, RAM, &clock)
		bt, err := OpenBTree(f, pool)
		if err != nil {
			t.Fatal(err)
		}
		entries := bulkEntries(n)
		if err := bt.BulkLoad(entries); err != nil {
			t.Fatalf("n=%d: BulkLoad: %v", n, err)
		}
		if bt.Count() != uint64(n) {
			t.Fatalf("n=%d: Count = %d", n, bt.Count())
		}
		if got, err := bt.Validate(); err != nil || got != n {
			t.Fatalf("n=%d: Validate = %d, %v", n, got, err)
		}

		ref, refPool := newTestFile(t, RAM, &clock)
		rt, err := OpenBTree(ref, refPool)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := rt.Insert(e.Key, e.Loc); err != nil {
				t.Fatal(err)
			}
		}
		cur, err := bt.SeekFirst()
		if err != nil {
			t.Fatal(err)
		}
		rcur, err := rt.SeekFirst()
		if err != nil {
			t.Fatal(err)
		}
		for cur.Valid() || rcur.Valid() {
			if cur.Valid() != rcur.Valid() {
				t.Fatalf("n=%d: scan lengths differ", n)
			}
			if cur.Key() != rcur.Key() || cur.Locator() != rcur.Locator() {
				t.Fatalf("n=%d: scan mismatch: (%v, %v) vs (%v, %v)",
					n, cur.Key(), cur.Locator(), rcur.Key(), rcur.Locator())
			}
			if err := cur.Next(); err != nil {
				t.Fatal(err)
			}
			if err := rcur.Next(); err != nil {
				t.Fatal(err)
			}
		}
		cur.Close()
		rcur.Close()
		if n > 0 {
			if loc, ok, err := bt.Get(entries[n/2].Key); err != nil || !ok || loc != entries[n/2].Loc {
				t.Fatalf("n=%d: Get(mid) = %v, %v, %v", n, loc, ok, err)
			}
			if _, ok, _ := bt.Get(Key{int64(n), 99}); ok {
				t.Fatalf("n=%d: Get(absent) returned ok", n)
			}
		}
	}
}

// TestBTreeBulkLoadThenInsert verifies a bulk-loaded tree accepts ordinary
// inserts afterwards — new keys between and beyond the loaded ones.
func TestBTreeBulkLoadThenInsert(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	n := 2*maxLeafEntries + 50
	entries := make([]BulkEntry, n)
	for i := range entries {
		entries[i] = BulkEntry{Key: Key{int64(2 * i), 0}, Loc: Locator{Off: uint32(i)}}
	}
	if err := bt.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := bt.Insert(Key{int64(2*i + 1), 0}, Locator{Off: uint32(n + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := bt.Validate(); err != nil || got != 2*n {
		t.Fatalf("Validate after inserts = %d, %v", got, err)
	}
	for i := 0; i < 2*n; i++ {
		loc, ok, err := bt.Get(Key{int64(i), 0})
		if err != nil || !ok {
			t.Fatalf("Get(%d) = %v, %v", i, ok, err)
		}
		want := uint32(i / 2)
		if i%2 == 1 {
			want = uint32(n + i/2)
		}
		if loc.Off != want {
			t.Fatalf("Get(%d).Off = %d, want %d", i, loc.Off, want)
		}
	}
}

// TestBTreeBulkLoadOrphanFixup loads exactly enough leaves that greedy
// fanout packing would strand a single child in the last internal node, and
// checks the fix-up leaves every internal node with at least one separator.
func TestBTreeBulkLoadOrphanFixup(t *testing.T) {
	if testing.Short() {
		t.Skip("large bulk load")
	}
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	// maxIntEntries+2 full leaves: greedy grouping takes maxIntEntries+1 and
	// would leave one orphan.
	n := (maxIntEntries + 2) * maxLeafEntries
	if err := bt.BulkLoad(bulkEntries(n)); err != nil {
		t.Fatal(err)
	}
	if bt.Height() != 3 {
		t.Fatalf("Height = %d, want 3", bt.Height())
	}
	if got, err := bt.Validate(); err != nil || got != n {
		t.Fatalf("Validate = %d, %v", got, err)
	}
	dump, err := bt.DebugDump()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(dump, "\n") {
		if strings.Contains(line, "int") && strings.Contains(line, ": 0 keys") {
			t.Fatalf("internal node without separators:\n%s", dump)
		}
	}
}

// TestBTreeBulkLoadPersists flushes a bulk-loaded tree and reopens the file.
func TestBTreeBulkLoadPersists(t *testing.T) {
	var clock Clock
	path := filepath.Join(t.TempDir(), "bulk.pg")
	f, err := OpenPagedFile(path, RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(64)
	pool.Register(f)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	n := maxLeafEntries * 3
	entries := bulkEntries(n)
	if err := bt.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenPagedFile(path, RAM, &clock)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	pool2 := NewPool(64)
	pool2.Register(f2)
	bt2, err := OpenBTree(f2, pool2)
	if err != nil {
		t.Fatal(err)
	}
	if bt2.Count() != uint64(n) {
		t.Fatalf("Count after reopen = %d", bt2.Count())
	}
	if got, err := bt2.Validate(); err != nil || got != n {
		t.Fatalf("Validate after reopen = %d, %v", got, err)
	}
	for _, e := range []BulkEntry{entries[0], entries[n/3], entries[n-1]} {
		if loc, ok, err := bt2.Get(e.Key); err != nil || !ok || loc != e.Loc {
			t.Fatalf("Get(%v) after reopen = %v, %v, %v", e.Key, loc, ok, err)
		}
	}
}

// TestBTreeBulkLoadTinyPersists covers the degenerate bulk loads — zero
// entries (the tree must stay a valid empty root leaf) and one entry (the
// single-leaf path) — through a flush/reopen cycle: the reopened tree must
// validate, answer lookups, and accept further inserts.
func TestBTreeBulkLoadTinyPersists(t *testing.T) {
	for _, n := range []int{0, 1} {
		var clock Clock
		path := filepath.Join(t.TempDir(), "tiny.pg")
		f, err := OpenPagedFile(path, RAM, &clock)
		if err != nil {
			t.Fatal(err)
		}
		pool := NewPool(64)
		pool.Register(f)
		bt, err := OpenBTree(f, pool)
		if err != nil {
			t.Fatal(err)
		}
		entries := bulkEntries(n)
		if err := bt.BulkLoad(entries); err != nil {
			t.Fatalf("n=%d: BulkLoad: %v", n, err)
		}
		if err := bt.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		f2, err := OpenPagedFile(path, RAM, &clock)
		if err != nil {
			t.Fatal(err)
		}
		pool2 := NewPool(64)
		pool2.Register(f2)
		bt2, err := OpenBTree(f2, pool2)
		if err != nil {
			t.Fatalf("n=%d: reopen: %v", n, err)
		}
		if bt2.Count() != uint64(n) {
			t.Fatalf("n=%d: Count after reopen = %d", n, bt2.Count())
		}
		if got, err := bt2.Validate(); err != nil || got != n {
			t.Fatalf("n=%d: Validate after reopen = %d, %v", n, got, err)
		}
		if n == 1 {
			if loc, ok, err := bt2.Get(entries[0].Key); err != nil || !ok || loc != entries[0].Loc {
				t.Fatalf("Get after reopen = %v, %v, %v", loc, ok, err)
			}
		}
		if _, ok, err := bt2.Get(Key{int64(n) + 100, 0}); err != nil || ok {
			t.Fatalf("n=%d: Get(absent) after reopen = %v, %v", n, ok, err)
		}
		// The reopened tree must still be writable through the insert path.
		if err := bt2.Insert(Key{int64(n) + 100, 0}, Locator{Off: 7}); err != nil {
			t.Fatalf("n=%d: Insert after reopen: %v", n, err)
		}
		if got, err := bt2.Validate(); err != nil || got != n+1 {
			t.Fatalf("n=%d: Validate after insert = %d, %v", n, got, err)
		}
		if err := f2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBTreeBulkLoadErrors covers the precondition failures: non-empty tree,
// out-of-order input, duplicate keys.
func TestBTreeBulkLoadErrors(t *testing.T) {
	var clock Clock
	f, pool := newTestFile(t, RAM, &clock)
	bt, err := OpenBTree(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.BulkLoad([]BulkEntry{
		{Key: Key{2, 0}}, {Key: Key{1, 0}},
	}); err == nil {
		t.Error("BulkLoad accepted descending keys")
	}
	if err := bt.BulkLoad([]BulkEntry{
		{Key: Key{1, 1}}, {Key: Key{1, 1}},
	}); err == nil {
		t.Error("BulkLoad accepted duplicate keys")
	}
	// The failed loads above must not have modified the tree.
	if got, err := bt.Validate(); err != nil || got != 0 {
		t.Fatalf("Validate after rejected loads = %d, %v", got, err)
	}
	if err := bt.Insert(Key{1, 0}, Locator{}); err != nil {
		t.Fatal(err)
	}
	if err := bt.BulkLoad([]BulkEntry{{Key: Key{2, 0}}}); err == nil {
		t.Error("BulkLoad accepted a non-empty tree")
	}
}

func BenchmarkBTreeBulkLoad(b *testing.B) {
	entries := bulkEntries(100000)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var clock Clock
		f, err := OpenPagedFile(filepath.Join(b.TempDir(), "bt.pg"), RAM, &clock)
		if err != nil {
			b.Fatal(err)
		}
		pool := NewPool(4096)
		pool.Register(f)
		bt, err := OpenBTree(f, pool)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := bt.BulkLoad(entries); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		f.Close()
	}
}
