package storage

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Segment is the immutable columnar label file of one table: the row
// payloads (opaque to this package — sqldb encodes them with the tag-free
// segment codec) packed back to back in a page-aligned data region, plus an
// in-memory directory mapping each primary key to its payload's offset and
// length. The directory is decoded once at open, so a cold lookup costs only
// the payload's own pages — no header, B+tree or slotted-page traffic —
// which is where the paper-style label layout wins over the heap path.
//
// File layout (all little-endian):
//
//	page 0              header: magic, version, row/column counts, pk width,
//	                    directory location, data size, column kind tags
//	pages 1..D          data region: payloads back to back, spilling across
//	                    page boundaries, zero-padded to a page
//	pages D+1..end      directory: per row varint key0, varint key1,
//	                    uvarint payload length, zero-padded to a page
//
// A segment is written once by WriteSegmentFile during bulk load and never
// mutated; its bytes are a pure function of the row set, which is what keeps
// build output byte-identical at every worker count.
type Segment struct {
	file *PagedFile
	pool *Pool

	cols  []byte // column kind tags, opaque to storage
	pkLen int

	keys []Key    // ascending, one per row
	offs []int64  // payload start offsets within the data region
	lens []uint32 // payload lengths
}

// SegmentData is the input to WriteSegmentFile: one table's rows in key
// order, already encoded.
type SegmentData struct {
	Cols  []byte   // one kind tag per column
	PKLen int      // leading key components in use (1 or 2)
	Keys  []Key    // strictly ascending
	Lens  []uint32 // payload length per row
	Data  []byte   // concatenated payloads, len == sum(Lens)
}

const (
	segmentMagic   = 0x50545331 // "PTS1"
	segmentVersion = 1
	segHeaderBytes = 44
)

// WriteSegmentFile writes sd to a fresh segment file at path, replacing any
// existing file. Writes are page-granular through a PagedFile so the device
// model charges them like any other build I/O.
func WriteSegmentFile(path string, dev DeviceModel, clock *Clock, sd SegmentData) error {
	if len(sd.Keys) != len(sd.Lens) {
		return fmt.Errorf("storage: segment %s: %d keys vs %d lens", path, len(sd.Keys), len(sd.Lens))
	}
	if sd.PKLen < 1 || sd.PKLen > 2 {
		return fmt.Errorf("storage: segment %s: pk width %d out of range", path, sd.PKLen)
	}
	if segHeaderBytes+len(sd.Cols) > PageSize {
		return fmt.Errorf("storage: segment %s: %d columns overflow the header page", path, len(sd.Cols))
	}
	var total uint64
	for i, ln := range sd.Lens {
		total += uint64(ln)
		if i > 0 && !keyLess(sd.Keys[i-1], sd.Keys[i]) {
			return fmt.Errorf("storage: segment %s: keys not strictly ascending at row %d", path, i)
		}
	}
	if total != uint64(len(sd.Data)) {
		return fmt.Errorf("storage: segment %s: %d data bytes vs %d from lens", path, len(sd.Data), total)
	}

	// Build the directory image.
	var dir []byte
	for i, k := range sd.Keys {
		dir = binary.AppendVarint(dir, k[0])
		dir = binary.AppendVarint(dir, k[1])
		dir = binary.AppendUvarint(dir, uint64(sd.Lens[i]))
	}

	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: segment %s: %w", path, err)
	}
	f, err := OpenPagedFile(path, dev, clock)
	if err != nil {
		return err
	}
	defer f.Close()

	dataPages := (len(sd.Data) + PageSize - 1) / PageSize
	dirPage := 1 + dataPages

	var page [PageSize]byte
	binary.LittleEndian.PutUint32(page[0:], segmentMagic)
	binary.LittleEndian.PutUint32(page[4:], segmentVersion)
	binary.LittleEndian.PutUint64(page[8:], uint64(len(sd.Keys)))
	binary.LittleEndian.PutUint32(page[16:], uint32(len(sd.Cols)))
	binary.LittleEndian.PutUint32(page[20:], uint32(sd.PKLen))
	binary.LittleEndian.PutUint32(page[24:], uint32(dirPage))
	binary.LittleEndian.PutUint64(page[28:], uint64(len(dir)))
	binary.LittleEndian.PutUint64(page[36:], uint64(len(sd.Data)))
	copy(page[segHeaderBytes:], sd.Cols)
	if err := writeSegPage(f, page[:]); err != nil {
		return err
	}
	if err := writeSegRegion(f, sd.Data); err != nil {
		return err
	}
	if err := writeSegRegion(f, dir); err != nil {
		return err
	}
	return f.Sync()
}

// writeSegPage allocates the next page and stores buf (len PageSize) there.
func writeSegPage(f *PagedFile, buf []byte) error {
	id, err := f.Allocate()
	if err != nil {
		return err
	}
	return f.WritePage(id, buf)
}

// writeSegRegion stores b page by page, zero-padding the tail.
func writeSegRegion(f *PagedFile, b []byte) error {
	var page [PageSize]byte
	for len(b) > 0 {
		n := copy(page[:], b)
		for i := n; i < PageSize; i++ {
			page[i] = 0
		}
		if err := writeSegPage(f, page[:]); err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

// keyLess orders keys by first then second component.
func keyLess(a, b Key) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// OpenSegment opens a segment over file, decoding the directory into memory.
// The header and directory pages are read directly from the device — they
// are touched exactly once per open, so caching them would only displace
// label pages from the pool.
func OpenSegment(file *PagedFile, pool *Pool) (*Segment, error) {
	var page [PageSize]byte
	if file.NumPages() == 0 {
		return nil, fmt.Errorf("storage: empty segment file")
	}
	if err := file.ReadPage(0, page[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(page[0:]) != segmentMagic {
		return nil, fmt.Errorf("storage: bad segment magic")
	}
	if v := binary.LittleEndian.Uint32(page[4:]); v != segmentVersion {
		return nil, fmt.Errorf("storage: segment version %d not supported", v)
	}
	nRows := binary.LittleEndian.Uint64(page[8:])
	nCols := binary.LittleEndian.Uint32(page[16:])
	pkLen := binary.LittleEndian.Uint32(page[20:])
	dirPage := binary.LittleEndian.Uint32(page[24:])
	dirBytes := binary.LittleEndian.Uint64(page[28:])
	dataBytes := binary.LittleEndian.Uint64(page[36:])
	if segHeaderBytes+int(nCols) > PageSize || pkLen < 1 || pkLen > 2 {
		return nil, fmt.Errorf("storage: corrupt segment header")
	}
	s := &Segment{
		file:  file,
		pool:  pool,
		cols:  append([]byte(nil), page[segHeaderBytes:segHeaderBytes+int(nCols)]...),
		pkLen: int(pkLen),
		keys:  make([]Key, 0, nRows),
		offs:  make([]int64, 0, nRows),
		lens:  make([]uint32, 0, nRows),
	}

	// Read and decode the directory.
	dir := make([]byte, dirBytes)
	for off := uint64(0); off < dirBytes; off += PageSize {
		id := PageID(uint64(dirPage) + off/PageSize)
		if err := file.ReadPage(id, page[:]); err != nil {
			return nil, err
		}
		copy(dir[off:], page[:])
	}
	var dataOff int64
	for i := uint64(0); i < nRows; i++ {
		var k Key
		v, n := binary.Varint(dir)
		if n <= 0 {
			return nil, fmt.Errorf("storage: corrupt segment directory at row %d", i)
		}
		k[0], dir = v, dir[n:]
		v, n = binary.Varint(dir)
		if n <= 0 {
			return nil, fmt.Errorf("storage: corrupt segment directory at row %d", i)
		}
		k[1], dir = v, dir[n:]
		ln, n := binary.Uvarint(dir)
		if n <= 0 {
			return nil, fmt.Errorf("storage: corrupt segment directory at row %d", i)
		}
		dir = dir[n:]
		if i > 0 && !keyLess(s.keys[i-1], k) {
			return nil, fmt.Errorf("storage: segment directory not ascending at row %d", i)
		}
		s.keys = append(s.keys, k)
		s.offs = append(s.offs, dataOff)
		s.lens = append(s.lens, uint32(ln))
		dataOff += int64(ln)
	}
	if uint64(dataOff) != dataBytes {
		return nil, fmt.Errorf("storage: segment directory sums to %d bytes, header says %d", dataOff, dataBytes)
	}
	return s, nil
}

// NumRows returns the row count.
func (s *Segment) NumRows() int { return len(s.keys) }

// Cols returns the column kind tags recorded at write time.
func (s *Segment) Cols() []byte { return s.cols }

// PKLen returns the number of key components in use.
func (s *Segment) PKLen() int { return s.pkLen }

// Key returns row i's key.
func (s *Segment) Key(i int) Key { return s.keys[i] }

// RowLen returns row i's payload length in bytes.
func (s *Segment) RowLen(i int) uint32 { return s.lens[i] }

// Find binary-searches the directory for key, returning the row index. The
// loop is written out (no sort.Search closure) to stay allocation-free on
// the query hot path.
func (s *Segment) Find(key Key) (int, bool) {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keyLess(s.keys[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.keys) && s.keys[lo] == key {
		return lo, true
	}
	return 0, false
}

// ReadRow copies row i's payload out of the data region through the buffer
// pool, reusing buf's capacity when it suffices. Payload pages are the only
// pages touched, so a cold lookup is charged exactly its payload's pages.
func (s *Segment) ReadRow(i int, buf []byte) ([]byte, error) {
	if i < 0 || i >= len(s.keys) {
		return nil, fmt.Errorf("storage: segment row %d of %d", i, len(s.keys))
	}
	ln := int(s.lens[i])
	var out []byte
	if cap(buf) >= ln {
		out = buf[:ln]
	} else {
		out = make([]byte, ln)
	}
	rem := out
	page := PageID(1 + s.offs[i]/PageSize)
	off := uint32(s.offs[i] % PageSize)
	for len(rem) > 0 {
		fr, err := s.pool.Get(s.file, page)
		if err != nil {
			return nil, err
		}
		c := copy(rem, fr.Data()[off:])
		s.pool.Unpin(fr)
		rem = rem[c:]
		page++
		off = 0
	}
	return out, nil
}
