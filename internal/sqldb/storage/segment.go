package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Segment is the immutable columnar label file of one table: the row
// payloads (opaque to this package — sqldb encodes them with the tag-free
// segment codec) packed back to back in a page-aligned data region, plus an
// in-memory directory mapping each primary key to its payload's offset and
// length. The directory is decoded once at open, so a cold lookup costs only
// the payload's own pages — no header, B+tree or slotted-page traffic —
// which is where the paper-style label layout wins over the heap path.
//
// File layout (all little-endian):
//
//	page 0              header: magic, version, row/column counts, pk width,
//	                    directory location, data size, data/directory/header
//	                    CRC-32C checksums, column kind tags
//	pages 1..D          data region: payloads back to back, spilling across
//	                    page boundaries, zero-padded to a page
//	pages D+1..end      directory: per row varint key0, varint key1,
//	                    uvarint payload length, zero-padded to a page
//
// A segment is written once by WriteSegmentFile during bulk load and never
// mutated; its bytes are a pure function of the row set, which is what keeps
// build output byte-identical at every worker count. OpenSegment verifies
// both region checksums and the exact page layout, so a truncated or
// bit-flipped file is rejected at open — the caller degrades to the heap
// path instead of serving corrupt labels.
type Segment struct {
	file *PagedFile
	pool *Pool

	cols  []byte // column kind tags, opaque to storage
	pkLen int

	keys      []Key    // ascending, one per row
	offs      []int64  // payload start offsets within the data region
	lens      []uint32 // payload lengths
	dataBytes uint64   // logical data-region size (sum of lens)
	dataCRC   uint32   // CRC-32C of the logical data region
}

// SegmentData is the input to WriteSegmentFile: one table's rows in key
// order, already encoded.
type SegmentData struct {
	Cols  []byte   // one kind tag per column
	PKLen int      // leading key components in use (1 or 2)
	Keys  []Key    // strictly ascending
	Lens  []uint32 // payload length per row
	Data  []byte   // concatenated payloads, len == sum(Lens)
}

const (
	segmentMagic   = 0x50545331 // "PTS1"
	segmentVersion = 2          // v2 added the region and header checksums
	segHeaderCRCAt = 52         // offset of the header's own checksum
	segHeaderBytes = 56         // fixed fields + header CRC; column tags follow
)

// segCRCTable is the Castagnoli polynomial all three checksums use.
var segCRCTable = crc32.MakeTable(crc32.Castagnoli)

// headerCRC checksums the whole header page except the stored checksum
// itself: the fixed fields, the column tags, and the zero padding (the
// writer zeroes it, so including it costs nothing and leaves no byte of the
// page outside some checksum).
func headerCRC(page []byte) uint32 {
	crc := crc32.Checksum(page[:segHeaderCRCAt], segCRCTable)
	return crc32.Update(crc, segCRCTable, page[segHeaderBytes:PageSize])
}

// WriteSegmentFile writes sd to a fresh segment file at path, replacing any
// existing file. Writes are page-granular through a PagedFile so the device
// model charges them like any other build I/O.
func WriteSegmentFile(path string, dev DeviceModel, clock *Clock, sd SegmentData) error {
	if len(sd.Keys) != len(sd.Lens) {
		return fmt.Errorf("storage: segment %s: %d keys vs %d lens", path, len(sd.Keys), len(sd.Lens))
	}
	if sd.PKLen < 1 || sd.PKLen > 2 {
		return fmt.Errorf("storage: segment %s: pk width %d out of range", path, sd.PKLen)
	}
	if segHeaderBytes+len(sd.Cols) > PageSize {
		return fmt.Errorf("storage: segment %s: %d columns overflow the header page", path, len(sd.Cols))
	}
	var total uint64
	for i, ln := range sd.Lens {
		total += uint64(ln)
		if i > 0 && !keyLess(sd.Keys[i-1], sd.Keys[i]) {
			return fmt.Errorf("storage: segment %s: keys not strictly ascending at row %d", path, i)
		}
	}
	if total != uint64(len(sd.Data)) {
		return fmt.Errorf("storage: segment %s: %d data bytes vs %d from lens", path, len(sd.Data), total)
	}

	// Build the directory image.
	var dir []byte
	for i, k := range sd.Keys {
		dir = binary.AppendVarint(dir, k[0])
		dir = binary.AppendVarint(dir, k[1])
		dir = binary.AppendUvarint(dir, uint64(sd.Lens[i]))
	}

	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: segment %s: %w", path, err)
	}
	f, err := OpenPagedFile(path, dev, clock)
	if err != nil {
		return err
	}
	defer f.Close()

	dataPages := (len(sd.Data) + PageSize - 1) / PageSize
	dirPage := 1 + dataPages

	var page [PageSize]byte
	binary.LittleEndian.PutUint32(page[0:], segmentMagic)
	binary.LittleEndian.PutUint32(page[4:], segmentVersion)
	binary.LittleEndian.PutUint64(page[8:], uint64(len(sd.Keys)))
	binary.LittleEndian.PutUint32(page[16:], uint32(len(sd.Cols)))
	binary.LittleEndian.PutUint32(page[20:], uint32(sd.PKLen))
	binary.LittleEndian.PutUint32(page[24:], uint32(dirPage))
	binary.LittleEndian.PutUint64(page[28:], uint64(len(dir)))
	binary.LittleEndian.PutUint64(page[36:], uint64(len(sd.Data)))
	binary.LittleEndian.PutUint32(page[44:], crc32.Checksum(sd.Data, segCRCTable))
	binary.LittleEndian.PutUint32(page[48:], crc32.Checksum(dir, segCRCTable))
	copy(page[segHeaderBytes:], sd.Cols)
	binary.LittleEndian.PutUint32(page[segHeaderCRCAt:], headerCRC(page[:]))
	if err := writeSegPage(f, page[:]); err != nil {
		return err
	}
	if err := writeSegRegion(f, sd.Data); err != nil {
		return err
	}
	if err := writeSegRegion(f, dir); err != nil {
		return err
	}
	return f.Sync()
}

// writeSegPage allocates the next page and stores buf (len PageSize) there.
func writeSegPage(f *PagedFile, buf []byte) error {
	id, err := f.Allocate()
	if err != nil {
		return err
	}
	return f.WritePage(id, buf)
}

// writeSegRegion stores b page by page, zero-padding the tail.
func writeSegRegion(f *PagedFile, b []byte) error {
	var page [PageSize]byte
	for len(b) > 0 {
		n := copy(page[:], b)
		for i := n; i < PageSize; i++ {
			page[i] = 0
		}
		if err := writeSegPage(f, page[:]); err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

// keyLess orders keys by first then second component.
func keyLess(a, b Key) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// OpenSegment opens a segment over file, decoding the directory into memory.
// The header, directory and data pages are read directly from the device —
// each is touched exactly once per open, so caching them would only displace
// label pages from the pool.
//
// Every header field is validated against the file's actual page count and
// both region checksums are verified before the segment is returned, so a
// truncated file, a bit flip anywhere in a meaningful byte, or a header
// inflated to provoke huge allocations all fail the open instead of
// panicking or mis-decoding later. (Flips in the zero padding of a region's
// last page are outside the checksums and harmless: no decode ever reads
// them.)
func OpenSegment(file *PagedFile, pool *Pool) (*Segment, error) {
	var page [PageSize]byte
	totalPages := uint64(file.NumPages())
	if totalPages == 0 {
		return nil, fmt.Errorf("storage: empty segment file")
	}
	if err := file.ReadPage(0, page[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(page[0:]) != segmentMagic {
		return nil, fmt.Errorf("storage: bad segment magic")
	}
	if v := binary.LittleEndian.Uint32(page[4:]); v != segmentVersion {
		return nil, fmt.Errorf("storage: segment version %d not supported", v)
	}
	nRows := binary.LittleEndian.Uint64(page[8:])
	nCols := binary.LittleEndian.Uint32(page[16:])
	pkLen := binary.LittleEndian.Uint32(page[20:])
	dirPage := binary.LittleEndian.Uint32(page[24:])
	dirBytes := binary.LittleEndian.Uint64(page[28:])
	dataBytes := binary.LittleEndian.Uint64(page[36:])
	dataCRC := binary.LittleEndian.Uint32(page[44:])
	dirCRC := binary.LittleEndian.Uint32(page[48:])
	if got := binary.LittleEndian.Uint32(page[segHeaderCRCAt:]); got != headerCRC(page[:]) {
		return nil, fmt.Errorf("storage: segment header checksum %08x does not match", got)
	}
	if segHeaderBytes+int(nCols) > PageSize || pkLen < 1 || pkLen > 2 {
		return nil, fmt.Errorf("storage: corrupt segment header")
	}
	// The page layout is fully determined by the header sizes; requiring an
	// exact match against the file's real page count catches truncation (and
	// trailing garbage) before any region is read. Bounding both sizes by the
	// file itself first keeps the ceiling divisions overflow-free.
	if dataBytes > totalPages*PageSize || dirBytes > totalPages*PageSize {
		return nil, fmt.Errorf("storage: segment region sizes exceed the file")
	}
	dataPages := (dataBytes + PageSize - 1) / PageSize
	dirPages := (dirBytes + PageSize - 1) / PageSize
	if uint64(dirPage) != 1+dataPages || totalPages != 1+dataPages+dirPages {
		return nil, fmt.Errorf("storage: segment layout mismatch: %d pages, header implies %d data + %d directory",
			totalPages, dataPages, dirPages)
	}
	// Every directory entry is at least three bytes, so nRows is bounded by
	// the (already page-count-checked) directory size — a forged row count
	// cannot provoke a huge allocation.
	if nRows > dirBytes/3 {
		return nil, fmt.Errorf("storage: segment claims %d rows in a %d-byte directory", nRows, dirBytes)
	}
	s := &Segment{
		file:      file,
		pool:      pool,
		cols:      append([]byte(nil), page[segHeaderBytes:segHeaderBytes+int(nCols)]...),
		pkLen:     int(pkLen),
		keys:      make([]Key, 0, nRows),
		offs:      make([]int64, 0, nRows),
		lens:      make([]uint32, 0, nRows),
		dataBytes: dataBytes,
		dataCRC:   dataCRC,
	}

	// Read and checksum the directory, then decode it.
	dir := make([]byte, dirBytes)
	for off := uint64(0); off < dirBytes; off += PageSize {
		id := PageID(uint64(dirPage) + off/PageSize)
		if err := file.ReadPage(id, page[:]); err != nil {
			return nil, err
		}
		copy(dir[off:], page[:])
	}
	if got := crc32.Checksum(dir, segCRCTable); got != dirCRC {
		return nil, fmt.Errorf("storage: segment directory checksum %08x, header says %08x", got, dirCRC)
	}
	var dataOff int64
	for i := uint64(0); i < nRows; i++ {
		var k Key
		v, n := binary.Varint(dir)
		if n <= 0 {
			return nil, fmt.Errorf("storage: corrupt segment directory at row %d", i)
		}
		k[0], dir = v, dir[n:]
		v, n = binary.Varint(dir)
		if n <= 0 {
			return nil, fmt.Errorf("storage: corrupt segment directory at row %d", i)
		}
		k[1], dir = v, dir[n:]
		ln, n := binary.Uvarint(dir)
		if n <= 0 || ln > dataBytes {
			return nil, fmt.Errorf("storage: corrupt segment directory at row %d", i)
		}
		dir = dir[n:]
		if i > 0 && !keyLess(s.keys[i-1], k) {
			return nil, fmt.Errorf("storage: segment directory not ascending at row %d", i)
		}
		s.keys = append(s.keys, k)
		s.offs = append(s.offs, dataOff)
		s.lens = append(s.lens, uint32(ln))
		dataOff += int64(ln)
	}
	if len(dir) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes after segment directory", len(dir))
	}
	if uint64(dataOff) != dataBytes {
		return nil, fmt.Errorf("storage: segment directory sums to %d bytes, header says %d", dataOff, dataBytes)
	}
	// Verify the data region, streaming page by page so the open allocates
	// nothing proportional to the data size.
	crc := uint32(0)
	for off := uint64(0); off < dataBytes; off += PageSize {
		if err := file.ReadPage(PageID(1+off/PageSize), page[:]); err != nil {
			return nil, err
		}
		n := dataBytes - off
		if n > PageSize {
			n = PageSize
		}
		crc = crc32.Update(crc, segCRCTable, page[:n])
	}
	if crc != dataCRC {
		return nil, fmt.Errorf("storage: segment data checksum %08x, header says %08x", crc, dataCRC)
	}
	return s, nil
}

// NumRows returns the row count.
func (s *Segment) NumRows() int { return len(s.keys) }

// Cols returns the column kind tags recorded at write time.
func (s *Segment) Cols() []byte { return s.cols }

// PKLen returns the number of key components in use.
func (s *Segment) PKLen() int { return s.pkLen }

// Key returns row i's key.
func (s *Segment) Key(i int) Key { return s.keys[i] }

// RowLen returns row i's payload length in bytes.
func (s *Segment) RowLen(i int) uint32 { return s.lens[i] }

// Keys returns the segment's key directory: ascending, one entry per row.
// The slice is shared with the segment and must not be modified; it remains
// valid (the memory is immutable) even after the segment is dropped, so the
// vector cache aliases it instead of copying.
func (s *Segment) Keys() []Key { return s.keys }

// LoadData reads the segment's whole logical data region directly from the
// device — deliberately bypassing the buffer pool, so a one-shot bulk read
// (vector materialization) cannot displace label pages — and verifies the
// data checksum again before returning it. The result is freshly allocated
// and owned by the caller.
func (s *Segment) LoadData() ([]byte, error) {
	var page [PageSize]byte
	out := make([]byte, s.dataBytes)
	for off := uint64(0); off < s.dataBytes; off += PageSize {
		if err := s.file.ReadPage(PageID(1+off/PageSize), page[:]); err != nil {
			return nil, err
		}
		copy(out[off:], page[:])
	}
	if crc := crc32.Checksum(out, segCRCTable); crc != s.dataCRC {
		return nil, fmt.Errorf("storage: segment data checksum %08x, header says %08x", crc, s.dataCRC)
	}
	return out, nil
}

// Find binary-searches the directory for key, returning the row index. The
// loop is written out (no sort.Search closure) to stay allocation-free on
// the query hot path.
//
// hotpath — allocheck root: the segment-tier point lookup.
func (s *Segment) Find(key Key) (int, bool) {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keyLess(s.keys[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.keys) && s.keys[lo] == key {
		return lo, true
	}
	return 0, false
}

// ReadRow copies row i's payload out of the data region through the buffer
// pool, reusing buf's capacity when it suffices. Payload pages are the only
// pages touched, so a cold lookup is charged exactly its payload's pages.
//
// hotpath — allocheck root: the segment-tier payload read; the only growth
// is the cap-guarded scratch resize.
func (s *Segment) ReadRow(i int, buf []byte) ([]byte, error) {
	if i < 0 || i >= len(s.keys) {
		return nil, fmt.Errorf("storage: segment row %d of %d", i, len(s.keys))
	}
	ln := int(s.lens[i])
	var out []byte
	if cap(buf) >= ln {
		out = buf[:ln]
	} else {
		out = make([]byte, ln)
	}
	rem := out
	page := PageID(1 + s.offs[i]/PageSize)
	off := uint32(s.offs[i] % PageSize)
	for len(rem) > 0 {
		fr, err := s.pool.Get(s.file, page)
		if err != nil {
			return nil, err
		}
		c := copy(rem, fr.Data()[off:])
		s.pool.Unpin(fr)
		rem = rem[c:]
		page++
		off = 0
	}
	return out, nil
}
