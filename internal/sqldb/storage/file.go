package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the unit of I/O, matching PostgreSQL's default block size.
const PageSize = 8192

// PageID addresses a page within one file.
type PageID uint32

// PagedFile is a page-granular view of an on-disk file. All physical reads
// and writes flow through it so the device model sees every access. It is
// safe for concurrent use: the mutex only guards the page count and the
// sequential-access detector, while the transfers themselves use pread/
// pwrite outside any lock so concurrent page I/O overlaps.
type PagedFile struct {
	mu       sync.Mutex
	f        *os.File
	pages    PageID
	dev      DeviceModel
	clock    *Clock
	lastRead PageID        // for sequential-access detection
	reads    atomic.Uint64 // device reads issued (test observability)
	id       int           // pool key component, assigned by the buffer pool
}

// OpenPagedFile opens (creating if necessary) the file at path. Device
// charges accrue on clock.
func OpenPagedFile(path string, dev DeviceModel, clock *Clock) (*PagedFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // best-effort cleanup; the stat failure wins
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		_ = f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not page-aligned", path, st.Size())
	}
	return &PagedFile{f: f, pages: PageID(st.Size() / PageSize), dev: dev, clock: clock, lastRead: ^PageID(0)}, nil
}

// NumPages returns the current page count.
func (p *PagedFile) NumPages() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pages
}

// Reads returns the number of device page reads issued so far.
func (p *PagedFile) Reads() uint64 { return p.reads.Load() }

// Allocate extends the file by one zero page and returns its id.
func (p *PagedFile) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.pages
	if err := p.f.Truncate(int64(id+1) * PageSize); err != nil {
		return 0, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	p.pages++
	return id, nil
}

// charge accrues d on the virtual clock and, for real-latency devices,
// also consumes it in wall-clock time.
func (p *PagedFile) charge(d time.Duration) {
	p.clock.Charge(d)
	if p.dev.RealLatency && d > 0 {
		time.Sleep(d)
	}
}

// ReadPage fills buf (len PageSize) with page id and charges the device
// model: a sequential read when id follows the previous read, a random read
// otherwise. The transfer itself runs outside the file lock, so concurrent
// reads of different pages overlap.
func (p *PagedFile) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	if id >= p.pages {
		p.mu.Unlock()
		return fmt.Errorf("storage: read past end: page %d of %d", id, p.pages)
	}
	seq := p.lastRead != ^PageID(0) && id == p.lastRead+1
	p.lastRead = id
	p.mu.Unlock()
	p.reads.Add(1)
	if seq {
		p.charge(p.dev.SeqRead)
	} else {
		p.charge(p.dev.RandRead)
	}
	if _, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage stores buf as page id (which must have been allocated) and
// charges the device write cost.
func (p *PagedFile) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	if id >= p.pages {
		p.mu.Unlock()
		return fmt.Errorf("storage: write past end: page %d of %d", id, p.pages)
	}
	p.mu.Unlock()
	p.charge(p.dev.Write)
	if _, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (p *PagedFile) Sync() error { return p.f.Sync() }

// Close releases the underlying file handle.
func (p *PagedFile) Close() error { return p.f.Close() }
