// Package storage implements the storage engine of the embedded SQL database
// used by PTLDB: fixed-size pages on disk, a shared LRU buffer pool, an
// append-only row store with multi-page rows, and a B+tree for primary keys.
//
// Because the PTLDB evaluation compares secondary-storage devices (paper
// Sections 4.1 vs 4.2), every physical page access is charged against a
// pluggable DeviceModel into a virtual I/O clock. Benchmarks report
// CPU time + simulated device time, reproducing the relative behaviour of
// the paper's HDD and SSD without the actual hardware.
package storage

import (
	"sync/atomic"
	"time"
)

// DeviceModel describes the latency profile of a secondary-storage device.
// A read of page p costs RandRead when p does not immediately follow the
// previously read page of the same file (a seek), and SeqRead otherwise.
type DeviceModel struct {
	Name     string
	RandRead time.Duration // random page read (seek + rotation + transfer)
	SeqRead  time.Duration // sequential page read (transfer only)
	Write    time.Duration // page write (sequential, write-back)

	// RealLatency, when set, makes every device charge also consume real
	// wall-clock time (time.Sleep) at the I/O call site. Accounting-only
	// charges measure cost but cannot show concurrent I/O overlapping;
	// real-latency devices let concurrency benchmarks observe that the
	// latch-free read path overlaps misses on different pages.
	RealLatency bool
}

// WithRealLatency returns a copy of the model whose charges consume real
// wall-clock time.
func (d DeviceModel) WithRealLatency() DeviceModel {
	d.RealLatency = true
	return d
}

// Predefined device models. Figures approximate the paper's hardware: a
// Seagate Barracuda 7200rpm SATA3 HDD and a Crucial MX100 SATA3 SSD, with
// 8 KiB pages.
var (
	// HDD: ~8.5 ms average seek + ~4.2 ms rotational latency + transfer.
	HDD = DeviceModel{Name: "hdd", RandRead: 12 * time.Millisecond, SeqRead: 80 * time.Microsecond, Write: 100 * time.Microsecond}
	// SSD: no mechanical latency; SATA3-era random read.
	SSD = DeviceModel{Name: "ssd", RandRead: 90 * time.Microsecond, SeqRead: 30 * time.Microsecond, Write: 60 * time.Microsecond}
	// RAM charges nothing; useful for unit tests and upper-bound runs.
	RAM = DeviceModel{Name: "ram"}
)

// Clock accumulates simulated device time. It is safe for concurrent use.
type Clock struct {
	nanos atomic.Int64
}

// Charge adds d to the clock.
func (c *Clock) Charge(d time.Duration) {
	if d > 0 {
		c.nanos.Add(int64(d))
	}
}

// Elapsed returns the total simulated time charged so far.
func (c *Clock) Elapsed() time.Duration { return time.Duration(c.nanos.Load()) }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.nanos.Store(0) }
