package sqldb

// segment_degrade_test.go checks the engine-level fault policy: a corrupt or
// truncated .seg file must not fail Open. The damaged table demotes to the
// heap path (counted in Segment.OpenFailures, logged once), healthy tables
// keep their segments, and every query answer stays correct either way.

import (
	"os"
	"path/filepath"
	"testing"

	"ptldb/internal/sqldb/exec"
	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/sqldb/storage"
)

// buildDegradeDB bulk-loads two segment-eligible tables into dir and closes
// the database, leaving good.seg and bad.seg on disk.
func buildDegradeDB(t *testing.T, dir string) {
	t.Helper()
	db, err := Open(dir, Options{Device: storage.RAM, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"good", "bad"} {
		tbl := mkTable(t, db, name, []string{"k"}, "k", "v", "xs:arr")
		rows := make([]sqltypes.Row, 0, 200)
		for i := int64(0); i < 200; i++ {
			rows = append(rows, sqltypes.Row{
				sqltypes.NewInt(i), sqltypes.NewInt(i * 3),
				sqltypes.NewIntArray([]int64{i, i + 1, i + 2}),
			})
		}
		if err := tbl.BulkLoad(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// checkDegradedReads verifies both tables answer correctly through the
// scratch read paths (the ones the fused executor uses — and the only ones
// that can be served by a segment or the vector cache).
func checkDegradedReads(t *testing.T, db *DB) {
	t.Helper()
	var s exec.RowScratch
	for _, name := range []string{"good", "bad"} {
		tbl, ok := db.Table(name)
		if !ok {
			t.Fatalf("table %q missing", name)
		}
		if got := tbl.RowCount(); got != 200 {
			t.Fatalf("%s: RowCount = %d, want 200", name, got)
		}
		row, ok, err := tbl.LookupPKScratch([]int64{123}, &s)
		if err != nil || !ok {
			t.Fatalf("%s: LookupPKScratch(123) = %v, %v", name, ok, err)
		}
		if row[1].I != 369 || len(row[2].A) != 3 || row[2].A[2] != 125 {
			t.Fatalf("%s: LookupPKScratch(123) returned %v", name, row)
		}
		var n int
		var sum int64
		if err := tbl.ScanScratch(&s, func(r sqltypes.Row) error {
			n++
			sum += r[1].I
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n != 200 || sum != 3*199*200/2 {
			t.Fatalf("%s: scan saw %d rows, sum %d", name, n, sum)
		}
	}
}

// TestOpenDegradesCorruptSegmentToHeap flips a data byte in one table's
// segment: Open must succeed, count the failure, serve the damaged table from
// the heap and the intact table from its segment.
func TestOpenDegradesCorruptSegmentToHeap(t *testing.T) {
	dir := t.TempDir()
	buildDegradeDB(t, dir)

	segPath := filepath.Join(dir, "bad.seg")
	image, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	image[storage.PageSize+17] ^= 0x20 // data region: caught by the data CRC
	if err := os.WriteFile(segPath, image, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(dir, Options{Device: storage.RAM, PoolPages: 256})
	if err != nil {
		t.Fatalf("Open with corrupt segment must degrade, not fail: %v", err)
	}
	defer db.Close()
	if got := db.Registry().Snapshot().Segment.OpenFailures; got != 1 {
		t.Errorf("Segment.OpenFailures = %d, want 1", got)
	}

	hits0 := db.Registry().Snapshot().Segment.Hits
	checkDegradedReads(t, db)
	snap := db.Registry().Snapshot()
	if snap.Segment.Hits == hits0 {
		t.Error("intact table served no rows from its segment")
	}
	// The damaged table runs on the heap: its 200-row scan plus lookups must
	// exceed what the segment counter saw (which covers only "good").
	if snap.Segment.Hits-hits0 > 201 {
		t.Errorf("segment hits %d suggest the corrupt table was served from its segment", snap.Segment.Hits-hits0)
	}
}

// TestOpenDegradesTruncatedSegmentToHeap is the same policy for a segment
// file cut off mid-data (e.g. a crashed copy).
func TestOpenDegradesTruncatedSegmentToHeap(t *testing.T) {
	dir := t.TempDir()
	buildDegradeDB(t, dir)

	segPath := filepath.Join(dir, "bad.seg")
	image, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath, image[:storage.PageSize], 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(dir, Options{Device: storage.RAM, PoolPages: 256})
	if err != nil {
		t.Fatalf("Open with truncated segment must degrade, not fail: %v", err)
	}
	defer db.Close()
	if got := db.Registry().Snapshot().Segment.OpenFailures; got != 1 {
		t.Errorf("Segment.OpenFailures = %d, want 1", got)
	}
	checkDegradedReads(t, db)
}

// TestOpenDegradedTableSkipsVectorCache: with the vector cache enabled, the
// damaged table has no segment to materialize from — the cache must simply
// never see it while the intact table still becomes resident.
func TestOpenDegradedTableSkipsVectorCache(t *testing.T) {
	dir := t.TempDir()
	buildDegradeDB(t, dir)

	segPath := filepath.Join(dir, "bad.seg")
	image, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	image[storage.PageSize+17] ^= 0x20
	if err := os.WriteFile(segPath, image, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(dir, Options{Device: storage.RAM, PoolPages: 256, VectorCacheBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	checkDegradedReads(t, db)
	checkDegradedReads(t, db) // second pass: "good" now hits resident vectors
	snap := db.Registry().Snapshot()
	if snap.VCache == nil {
		t.Fatal("vcache metrics missing on a VectorCacheBytes handle")
	}
	if snap.VCache.Hits == 0 {
		t.Error("intact table never hit the vector cache")
	}
	if snap.VCache.ResidentBytes <= 0 {
		t.Errorf("ResidentBytes = %d, want > 0", snap.VCache.ResidentBytes)
	}
}
