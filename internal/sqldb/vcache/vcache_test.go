package vcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ptldb/internal/obs"
	"ptldb/internal/sqldb/storage"
)

// mat builds a one-column Mat with the given budget charge.
func mat(bytes int64) *Mat {
	return &Mat{
		Keys:  []storage.Key{{1}, {2}},
		Cols:  []Col{{Ints: []int64{10, 20}}},
		Bytes: bytes,
	}
}

func newCache(budget int64) (*Cache, *obs.VCacheMetrics) {
	met := &obs.VCacheMetrics{}
	return New(budget, met), met
}

func TestAcquireMissThenHit(t *testing.T) {
	c, met := newCache(1000)
	e := c.Register()
	if m := e.Acquire(); m != nil {
		t.Fatal("Acquire on empty entry returned a Mat")
	}
	built, err := e.Materialize(func() (*Mat, error) { return mat(100), nil })
	if err != nil || built == nil {
		t.Fatalf("Materialize = %v, %v", built, err)
	}
	if m := e.Acquire(); m != built {
		t.Fatalf("Acquire = %p, want %p", m, built)
	}
	if h, ms := met.Hits.Load(), met.Misses.Load(); h != 1 || ms != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", h, ms)
	}
	if got := c.Resident(); got != 100 {
		t.Errorf("Resident = %d, want 100", got)
	}
	if got := met.ResidentBytes.Load(); got != 100 {
		t.Errorf("ResidentBytes = %d, want 100", got)
	}
}

func TestMatFind(t *testing.T) {
	m := &Mat{Keys: []storage.Key{{1, 5}, {3, 0}, {3, 7}, {9, 9}}}
	for i, k := range m.Keys {
		got, ok := m.Find(k)
		if !ok || got != i {
			t.Fatalf("Find(%v) = %d, %v; want %d, true", k, got, ok, i)
		}
	}
	for _, k := range []storage.Key{{0, 0}, {3, 1}, {10, 0}} {
		if _, ok := m.Find(k); ok {
			t.Fatalf("Find(%v) matched a missing key", k)
		}
	}
}

func TestColArray(t *testing.T) {
	c := Col{Ints: []int64{1, 2, 3, 4, 5}, Starts: []int32{0, 2, 2, 5}}
	if got := c.Array(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Array(0) = %v", got)
	}
	if got := c.Array(1); len(got) != 0 {
		t.Fatalf("Array(1) = %v, want empty", got)
	}
	// The full-slice expression must cap the view so an append cannot
	// clobber the next row's elements.
	v := c.Array(0)
	_ = append(v, 99)
	if c.Ints[2] != 3 {
		t.Fatal("append through an Array view overwrote the cached vector")
	}
}

// TestMaterializeSingleflight launches many concurrent missers: exactly one
// build must run and every caller must get the same Mat.
func TestMaterializeSingleflight(t *testing.T) {
	c, met := newCache(1000)
	e := c.Register()
	var builds atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*Mat, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			m, err := e.Materialize(func() (*Mat, error) {
				builds.Add(1)
				return mat(64), nil
			})
			if err != nil {
				t.Errorf("Materialize: %v", err)
			}
			results[i] = m
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("build ran %d times, want 1", got)
	}
	for i, m := range results {
		if m == nil || m != results[0] {
			t.Fatalf("caller %d got %p, caller 0 got %p", i, m, results[0])
		}
	}
	if got := met.Materializations.Load(); got != 1 {
		t.Errorf("Materializations = %d, want 1", got)
	}
}

// TestMaterializeErrorRetries: a failed build must not latch permanently —
// the next caller retries.
func TestMaterializeErrorRetries(t *testing.T) {
	c, _ := newCache(1000)
	e := c.Register()
	boom := errors.New("device gone")
	if _, err := e.Materialize(func() (*Mat, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	m, err := e.Materialize(func() (*Mat, error) { return mat(10), nil })
	if err != nil || m == nil {
		t.Fatalf("retry after error = %v, %v", m, err)
	}
}

// TestEvictionSecondChance fills the cache, touches one table, and admits a
// new one: the clock must skip the recently-referenced table (clearing its
// bit) and evict the untouched one.
func TestEvictionSecondChance(t *testing.T) {
	c, met := newCache(250)
	a, b := c.Register(), c.Register()
	if _, err := a.Materialize(func() (*Mat, error) { return mat(100), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Materialize(func() (*Mat, error) { return mat(100), nil }); err != nil {
		t.Fatal(err)
	}
	// Touch a so its reference bit is set; b's bit was set at admission, so
	// age both by forcing one full clock sweep: clear via a tiny admission
	// that evicts nothing... instead, emulate steady state directly.
	a.ref.Store(true)
	b.ref.Store(false)
	d := c.Register()
	if _, err := d.Materialize(func() (*Mat, error) { return mat(100), nil }); err != nil {
		t.Fatal(err)
	}
	if a.Acquire() == nil {
		t.Error("recently-referenced table was evicted")
	}
	if b.mat.Load() != nil {
		t.Error("unreferenced table survived under budget pressure")
	}
	if d.Acquire() == nil {
		t.Error("newly admitted table not resident")
	}
	if got := met.Evictions.Load(); got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
	if got := c.Resident(); got != 200 {
		t.Errorf("Resident = %d, want 200", got)
	}
}

// TestTooBigStickyDecline: a table whose vectors exceed the whole budget is
// declined once and never rebuilt.
func TestTooBigStickyDecline(t *testing.T) {
	c, _ := newCache(50)
	e := c.Register()
	builds := 0
	build := func() (*Mat, error) { builds++; return mat(100), nil }
	for i := 0; i < 3; i++ {
		m, err := e.Materialize(build)
		if err != nil || m != nil {
			t.Fatalf("Materialize #%d = %v, %v; want nil, nil", i, m, err)
		}
	}
	if builds != 1 {
		t.Errorf("build ran %d times, want 1 (sticky decline)", builds)
	}
	if got := c.Resident(); got != 0 {
		t.Errorf("Resident = %d, want 0", got)
	}
}

// TestDropIsPermanent: an invalidated entry serves nothing and never
// rebuilds, even when Drop races an in-flight materialization.
func TestDropIsPermanent(t *testing.T) {
	c, _ := newCache(1000)
	e := c.Register()
	if _, err := e.Materialize(func() (*Mat, error) { return mat(100), nil }); err != nil {
		t.Fatal(err)
	}
	e.Drop()
	if e.Acquire() != nil {
		t.Fatal("Acquire served a dropped entry")
	}
	if got := c.Resident(); got != 0 {
		t.Errorf("Resident after Drop = %d, want 0", got)
	}
	m, err := e.Materialize(func() (*Mat, error) {
		t.Error("build ran on a dropped entry")
		return mat(100), nil
	})
	if err != nil || m != nil {
		t.Fatalf("Materialize on dropped entry = %v, %v; want nil, nil", m, err)
	}

	// Race: the drop lands while a build is in flight; the stale vectors
	// must be discarded, not installed.
	e2 := c.Register()
	started := make(chan struct{})
	proceed := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		m, err := e2.Materialize(func() (*Mat, error) {
			close(started)
			<-proceed
			return mat(100), nil
		})
		if err != nil || m != nil {
			t.Errorf("racing Materialize = %v, %v; want nil, nil", m, err)
		}
	}()
	<-started
	e2.Drop()
	close(proceed)
	<-done
	if e2.mat.Load() != nil {
		t.Fatal("stale vectors installed after Drop")
	}
	if got := c.Resident(); got != 0 {
		t.Errorf("Resident = %d, want 0", got)
	}
}

// TestDropAllReMaterializes: DropAll (cold-start emulation) evicts every
// table but leaves the entries registered; the next miss rebuilds.
func TestDropAllReMaterializes(t *testing.T) {
	c, met := newCache(1000)
	a, b := c.Register(), c.Register()
	for _, e := range []*Entry{a, b} {
		if _, err := e.Materialize(func() (*Mat, error) { return mat(100), nil }); err != nil {
			t.Fatal(err)
		}
	}
	c.DropAll()
	if got := c.Resident(); got != 0 {
		t.Fatalf("Resident after DropAll = %d, want 0", got)
	}
	if got := met.ResidentBytes.Load(); got != 0 {
		t.Fatalf("ResidentBytes after DropAll = %d, want 0", got)
	}
	if a.Acquire() != nil || b.Acquire() != nil {
		t.Fatal("Acquire served an evicted table after DropAll")
	}
	m, err := a.Materialize(func() (*Mat, error) { return mat(100), nil })
	if err != nil || m == nil {
		t.Fatalf("re-materialize after DropAll = %v, %v", m, err)
	}
	if got := c.Resident(); got != 100 {
		t.Errorf("Resident = %d, want 100", got)
	}
}

// TestBudgetAccountingAcrossEvictions drives admissions past the budget many
// times and checks the byte account never leaks.
func TestBudgetAccountingAcrossEvictions(t *testing.T) {
	c, met := newCache(300)
	entries := make([]*Entry, 8)
	for i := range entries {
		entries[i] = c.Register()
	}
	for round := 0; round < 5; round++ {
		for _, e := range entries {
			if _, err := e.Materialize(func() (*Mat, error) { return mat(100), nil }); err != nil {
				t.Fatal(err)
			}
		}
	}
	resident := c.Resident()
	if resident > 300 {
		t.Fatalf("Resident = %d exceeds budget 300", resident)
	}
	if got := met.ResidentBytes.Load(); got != resident {
		t.Fatalf("gauge %d disagrees with account %d", got, resident)
	}
	var sum int64
	for _, e := range entries {
		if e.mat.Load() != nil {
			sum += e.size
		}
	}
	if sum != resident {
		t.Fatalf("per-entry sizes total %d, account says %d", sum, resident)
	}
}
