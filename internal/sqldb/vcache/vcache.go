// Package vcache is the resident vector cache: a byte-budgeted cache of
// materialized segments — per-table decoded []int64 column vectors plus the
// key directory — served to the scratch read paths as direct slice views.
// A hit skips the buffer pool, the payload copy and the varint decode
// entirely; the only per-lookup work left is a binary search over the key
// directory and writing value headers that alias the cached columns.
//
// The design follows the buffer pool one level up the memory hierarchy
// (vcache → segment → heap → device):
//
//   - Materialization is singleflight, the same latch protocol as the pool's
//     coalesced page loads: the first miss builds the table's vectors while
//     concurrent missers wait on a ready channel, so one decode serves all.
//   - Eviction is clock/second-chance over whole tables: every hit sets the
//     entry's reference bit; the clock hand clears bits until it finds an
//     unreferenced resident table and unpublishes it. Evicted vectors are
//     not freed eagerly — in-flight queries may still hold views into them;
//     the garbage collector reclaims the arrays when the last view dies,
//     which is what makes serving uncopied slices safe.
//   - The mutex guards only the admission bookkeeping (ring, budget,
//     building latches). Decode and device I/O always happen outside it.
//
// The cache is sized in bytes (Config.VectorCacheBytes); a table whose
// vectors alone exceed the whole budget is marked too-big once and served
// from its segment forever after. Tables are registered per database handle
// today, but nothing in the accounting assumes one database — a shared
// multi-city cache only needs entries registered from several handles.
package vcache

import (
	"sync"
	"sync/atomic"
	"time"

	"ptldb/internal/obs"
	"ptldb/internal/sqldb/storage"
)

// Mat is one table's materialized segment: the key directory plus fully
// decoded column vectors. A Mat is immutable after construction; readers
// alias its slices freely, and eviction merely unpublishes the pointer.
type Mat struct {
	// Keys is the ascending key directory (shared with the segment's own
	// in-memory directory; both are immutable).
	Keys []storage.Key
	// Cols holds one decoded vector per table column, in storage order.
	Cols []Col
	// Bytes is the Mat's budget charge: the backing arrays of the keys and
	// every column vector.
	Bytes int64
}

// Col is one decoded column. Scalar (BIGINT) columns store row i's value at
// Ints[i] and leave Starts nil; array (BIGINT[]) columns flatten every row
// into Ints with Starts[i]:Starts[i+1] delimiting row i's elements.
type Col struct {
	Ints   []int64
	Starts []int32 // nil for scalar columns; len(Keys)+1 otherwise
}

// Array returns row i's elements of an array column. The view aliases the
// cached vector: immutable, and kept alive by the garbage collector even
// across eviction, so callers may retain it as long as they need.
func (c *Col) Array(i int) []int64 {
	return c.Ints[c.Starts[i]:c.Starts[i+1]:c.Starts[i+1]]
}

// Find binary-searches the key directory for key, returning the row index.
// Written out (no sort.Search closure) to stay allocation-free on the query
// hot path, mirroring Segment.Find.
func (m *Mat) Find(key storage.Key) (int, bool) {
	lo, hi := 0, len(m.Keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.Keys[mid].Less(key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.Keys) && m.Keys[lo] == key {
		return lo, true
	}
	return 0, false
}

// Cache is one byte-budgeted set of materialized tables.
type Cache struct {
	budget int64
	met    *obs.VCacheMetrics

	// mu guards the entry ring, the resident-byte account and the building
	// latches. It is never held across a decode, a device read or a blocking
	// channel operation — materialization happens between critical sections,
	// exactly like the pool's coalesced loads. Acquisition level 20: taken
	// after a latch (level 10), never while another shard-class mutex is held
	// (lockordercheck).
	mu       sync.Mutex // lockcheck:shard level=20
	entries  []*Entry
	hand     int
	resident int64
}

// New returns a cache with the given byte budget. The budget must be
// positive (a zero budget means "no cache" and is the caller's decision);
// met receives the cache's counters and must be non-nil.
func New(budget int64, met *obs.VCacheMetrics) *Cache {
	return &Cache{budget: budget, met: met}
}

// Budget returns the configured byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// Entry is one table's slot in the cache. The mat pointer is published with
// an atomic store after admission and read with a single atomic load on the
// hot path; everything else is guarded by the cache mutex.
type Entry struct {
	cache *Cache
	mat   atomic.Pointer[Mat]
	ref   atomic.Bool // second-chance bit, set on every hit

	// Guarded by cache.mu. The latch is acquisition level 10: a builder holds
	// it while re-taking cache.mu (level 20) to publish, so the latch must
	// order strictly below the mutex.
	building chan struct{} // lockcheck:latch level=10 — non-nil while a materialization is in flight
	size     int64         // bytes charged while resident
	tooBig   bool          // vectors exceed the whole budget; never retry
	dropped  bool          // invalidated (segment dropped); never materialize
}

// Register adds a table slot to the cache's clock ring.
func (c *Cache) Register() *Entry {
	e := &Entry{cache: c}
	c.mu.Lock()
	c.entries = append(c.entries, e)
	c.mu.Unlock()
	return e
}

// Acquire returns the entry's materialized vectors, or nil when the table is
// not resident. It is the hot-path gate: one atomic load, the reference bit,
// and a hit/miss counter — no locks, no allocation.
//
// hotpath — allocheck root: the warm-hit gate must stay allocation-free.
func (e *Entry) Acquire() *Mat {
	if m := e.mat.Load(); m != nil {
		e.ref.Store(true)
		e.cache.met.Hits.Add(1)
		return m
	}
	e.cache.met.Misses.Add(1)
	return nil
}

// Materialize returns the entry's vectors, building them with build if
// necessary. Concurrent callers coalesce: one runs build (outside the cache
// lock — build reads the device and decodes every row), the rest wait on the
// latch and share the result. A nil, nil return means the cache declines to
// hold this table (invalidated, or too big for the whole budget) and the
// caller should fall back to the segment path.
func (e *Entry) Materialize(build func() (*Mat, error)) (*Mat, error) {
	c := e.cache
	for {
		if m := e.mat.Load(); m != nil {
			return m, nil
		}
		c.mu.Lock()
		if e.dropped || e.tooBig {
			c.mu.Unlock()
			return nil, nil
		}
		if m := e.mat.Load(); m != nil {
			c.mu.Unlock()
			return m, nil
		}
		wait := e.building
		var latch chan struct{}
		if wait == nil {
			latch = make(chan struct{})
			e.building = latch
		}
		c.mu.Unlock()
		if wait != nil {
			// Someone else is building; wait outside the lock and re-check.
			<-wait
			continue
		}

		start := time.Now()
		m, err := build()
		c.mu.Lock()
		e.building = nil
		// close is non-blocking, so releasing the latch under the lock is
		// safe (the same protocol the pool uses for frame-load completion).
		close(latch)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if e.dropped {
			// Invalidated while building (a point write dropped the
			// segment): discard the stale vectors.
			c.mu.Unlock()
			return nil, nil
		}
		if m.Bytes > c.budget {
			e.tooBig = true
			c.mu.Unlock()
			return nil, nil
		}
		c.evictLocked(m.Bytes)
		e.size = m.Bytes
		c.resident += m.Bytes
		e.mat.Store(m)
		e.ref.Store(true)
		c.mu.Unlock()

		c.met.Materializations.Add(1)
		c.met.ResidentBytes.Add(m.Bytes)
		c.met.Materialize.Observe(time.Since(start))
		return m, nil
	}
}

// evictLocked runs the clock hand until need bytes fit under the budget:
// resident entries with the reference bit set get a second chance (the bit
// is cleared), unreferenced ones are unpublished. Terminates because every
// full sweep either evicts a table or clears every reference bit, and the
// admission check already guaranteed need fits an empty cache.
func (c *Cache) evictLocked(need int64) {
	for c.resident+need > c.budget {
		if c.resident == 0 || len(c.entries) == 0 {
			return
		}
		e := c.entries[c.hand]
		c.hand = (c.hand + 1) % len(c.entries)
		if e.mat.Load() == nil {
			continue
		}
		if e.ref.Swap(false) {
			continue // second chance
		}
		c.evictEntryLocked(e)
		c.met.Evictions.Add(1)
	}
}

// evictEntryLocked unpublishes e's vectors and returns their bytes to the
// budget. In-flight readers holding views stay correct: the arrays are
// immutable and live until the garbage collector sees the last view die.
func (c *Cache) evictEntryLocked(e *Entry) {
	e.mat.Store(nil)
	c.resident -= e.size
	c.met.ResidentBytes.Add(-e.size)
	e.size = 0
}

// Drop invalidates an entry: its vectors are unpublished and it will never
// materialize again. Tables call it when their segment is dropped (a point
// write landed), so the cache can never serve stale rows.
func (e *Entry) Drop() {
	c := e.cache
	c.mu.Lock()
	e.dropped = true
	if e.mat.Load() != nil {
		c.evictEntryLocked(e)
	}
	c.mu.Unlock()
}

// DropAll evicts every resident table — the cold-start emulation behind
// DB.DropCaches ("restart the server and clear the OS cache"): a restart
// would lose an in-memory cache, so cold measurements must too. Entries stay
// registered and re-materialize on their next miss.
func (c *Cache) DropAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.mat.Load() != nil {
			c.evictEntryLocked(e)
		}
		e.ref.Store(false)
	}
}

// Resident reports the bytes currently held across all tables.
func (c *Cache) Resident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}
