// Package sqldb is the embedded relational database used by PTLDB: a
// directory of paged heap and index files, a shared buffer pool with a
// simulated storage device, a persisted catalog, and a SQL query interface
// (parser + executor) supporting the dialect of the paper's Codes 1–4.
//
// It plays the role PostgreSQL plays in the paper. The engine is
// bulk-load-then-read-only — there is no WAL or MVCC, matching the paper's
// workload in which all tables are created during preprocessing — and
// read queries may run concurrently.
package sqldb

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"ptldb/internal/obs"
	"ptldb/internal/sqldb/exec"
	"ptldb/internal/sqldb/sql"
	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/sqldb/storage"
	"ptldb/internal/sqldb/vcache"
)

// ColumnDef declares one column.
type ColumnDef struct {
	Name string        `json:"name"`
	Type sqltypes.Type `json:"type"`
}

// TableDef declares a table: columns plus an optional primary key of up to
// two integer columns.
type TableDef struct {
	Name    string      `json:"name"`
	Columns []ColumnDef `json:"columns"`
	PK      []string    `json:"pk"`
}

// Options configures Open.
type Options struct {
	// Device is the simulated storage device (default storage.SSD).
	Device storage.DeviceModel
	// PoolPages is the buffer-pool capacity in pages (default 131072 pages
	// = 1 GiB, a laptop-scale stand-in for the paper's 8 GiB
	// shared_buffers).
	PoolPages int
	// DisableFusedExec turns off the fused execution path for the label-query
	// shapes (Codes 1–4); every statement then runs on the general executor.
	// Used by the -fused=off benchmark ablation and by differential tests.
	DisableFusedExec bool
	// DisableSegments turns off the columnar label segments on the read path:
	// scratch lookups and scans fall back to the B+tree/heap pair. Segment
	// files are still written during bulk load (the disk image is independent
	// of this flag); they are simply not opened. Used by the -segments=off
	// ablation and by differential tests.
	DisableSegments bool
	// VectorCacheBytes is the resident vector cache's byte budget: segmented
	// tables are decoded once into flat column vectors and served as slice
	// views until evicted. 0 disables the cache (the default at this layer;
	// the ptldb facade supplies its own default budget). The cache requires
	// segments — with DisableSegments set it never engages.
	VectorCacheBytes int64
}

// DB is one open database directory.
type DB struct {
	dir   string
	dev   storage.DeviceModel
	clock storage.Clock
	pool  *storage.Pool

	noFused    bool
	noSegments bool

	// vcache is the resident vector cache; nil when the handle was opened
	// with a zero budget (or with segments disabled).
	vcache *vcache.Cache
	// segFailLog gates the degraded-segment warning to one line per handle:
	// a corrupt .seg demotes its table to the heap path, it does not fail
	// the open.
	segFailLog sync.Once

	mu     sync.RWMutex
	tables map[string]*Table

	// Plan cache for CachedPrepare: parsed SELECTs keyed by their SQL text.
	// stmtMisses counts sql.Parse calls made through the cache, so tests can
	// assert the steady state parses nothing.
	stmtMu     sync.Mutex
	stmts      map[string]*Stmt
	stmtHits   uint64
	stmtMisses uint64

	// reg is the handle's observability registry: executor dispatch counters
	// (fused runs vs. bailouts vs. general runs, rows scanned, tuples
	// merged), per-Code query latencies, and — grafted in at Open — the
	// buffer pool's counters.
	reg obs.Registry
}

// Open opens (creating if needed) the database in dir.
func Open(dir string, opts Options) (*DB, error) {
	if opts.Device.Name == "" {
		opts.Device = storage.SSD
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 131072
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sqldb: %w", err)
	}
	db := &DB{
		dir:        dir,
		dev:        opts.Device,
		pool:       storage.NewPool(opts.PoolPages),
		noFused:    opts.DisableFusedExec,
		noSegments: opts.DisableSegments,
		tables:     map[string]*Table{},
		stmts:      map[string]*Stmt{},
	}
	db.reg.Pool = db.pool.Metrics()
	if opts.VectorCacheBytes > 0 && !opts.DisableSegments {
		db.reg.VCache = &obs.VCacheMetrics{}
		db.vcache = vcache.New(opts.VectorCacheBytes, db.reg.VCache)
	}
	cat, err := os.ReadFile(db.catalogPath())
	if err != nil {
		if os.IsNotExist(err) {
			return db, nil
		}
		return nil, fmt.Errorf("sqldb: read catalog: %w", err)
	}
	var defs []TableDef
	if err := json.Unmarshal(cat, &defs); err != nil {
		return nil, fmt.Errorf("sqldb: parse catalog: %w", err)
	}
	for _, def := range defs {
		if _, err := db.openTable(def); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) catalogPath() string { return filepath.Join(db.dir, "catalog.json") }

// Clock exposes the simulated-device clock: the total device time charged by
// all I/O since open (or the last Reset).
func (db *DB) Clock() *storage.Clock { return &db.clock }

// Pool exposes the buffer pool for cache statistics and DropCaches.
func (db *DB) Pool() *storage.Pool { return db.pool }

// Device returns the device model the database was opened with.
func (db *DB) Device() storage.DeviceModel { return db.dev }

// DropCaches flushes and empties the buffer pool — and evicts the resident
// vector cache — emulating the paper's server restart + OS cache drop before
// each experiment (a restart would lose both in-memory tiers).
func (db *DB) DropCaches() error {
	if db.vcache != nil {
		db.vcache.DropAll()
	}
	return db.pool.DropCaches()
}

// CreateTable creates a new empty table.
func (db *DB) CreateTable(def TableDef) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	name := strings.ToLower(def.Name)
	if name == "" {
		return nil, fmt.Errorf("sqldb: empty table name")
	}
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("sqldb: table %q already exists", def.Name)
	}
	if len(def.Columns) == 0 {
		return nil, fmt.Errorf("sqldb: table %q has no columns", def.Name)
	}
	if len(def.PK) > 2 {
		return nil, fmt.Errorf("sqldb: table %q: primary keys support at most two columns", def.Name)
	}
	for _, pk := range def.PK {
		ci := colIndex(def.Columns, pk)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: table %q: unknown PK column %q", def.Name, pk)
		}
		if def.Columns[ci].Type != sqltypes.Int64 {
			return nil, fmt.Errorf("sqldb: table %q: PK column %q must be BIGINT", def.Name, pk)
		}
	}
	def.Name = name
	t, err := db.openTable(def)
	if err != nil {
		return nil, err
	}
	if err := db.saveCatalogLocked(); err != nil {
		return nil, err
	}
	return t, nil
}

// openTable opens the storage files of a table and registers it.
func (db *DB) openTable(def TableDef) (*Table, error) {
	name := strings.ToLower(def.Name)
	heapFile, err := storage.OpenPagedFile(filepath.Join(db.dir, name+".heap"), db.dev, &db.clock)
	if err != nil {
		return nil, err
	}
	db.pool.Register(heapFile)
	heap, err := storage.OpenRowStore(heapFile, db.pool)
	if err != nil {
		_ = heapFile.Close() // best-effort cleanup; the open failure wins
		return nil, err
	}
	idxFile, err := storage.OpenPagedFile(filepath.Join(db.dir, name+".idx"), db.dev, &db.clock)
	if err != nil {
		_ = heapFile.Close()
		return nil, err
	}
	db.pool.Register(idxFile)
	idx, err := storage.OpenBTree(idxFile, db.pool)
	if err != nil {
		_ = heapFile.Close()
		_ = idxFile.Close()
		return nil, err
	}
	t := &Table{
		def:      def,
		db:       db,
		heapFile: heapFile,
		idxFile:  idxFile,
		heap:     heap,
		idx:      idx,
	}
	for _, pk := range def.PK {
		t.pkCols = append(t.pkCols, colIndex(def.Columns, pk))
	}
	// Attach the table's columnar segment when one exists on disk and the
	// handle has segments enabled. OpenPagedFile creates missing files, so
	// probe with Stat first — a table without a segment must stay seg-less.
	// A segment that fails validation (truncated or corrupted .seg) demotes
	// the table to the heap path instead of failing the open: the heap and
	// index are the source of truth, the segment is a redundant acceleration
	// structure. The failure is counted and logged once per handle.
	if !db.noSegments {
		segPath := filepath.Join(db.dir, name+".seg")
		if _, err := os.Stat(segPath); err == nil {
			if err := t.attachSegment(segPath); err != nil {
				db.reg.Segment.OpenFailures.Add(1)
				db.segFailLog.Do(func() {
					fmt.Fprintf(os.Stderr, "sqldb: segment for table %q unusable, serving from heap: %v\n", name, err)
				})
			}
		}
	}
	db.tables[name] = t
	return t, nil
}

func (db *DB) saveCatalogLocked() error {
	defs := make([]TableDef, 0, len(db.tables))
	for _, t := range db.tables {
		defs = append(defs, t.def)
	}
	// Deterministic order for reproducible catalogs.
	for i := 0; i < len(defs); i++ {
		for j := i + 1; j < len(defs); j++ {
			if defs[j].Name < defs[i].Name {
				defs[i], defs[j] = defs[j], defs[i]
			}
		}
	}
	data, err := json.MarshalIndent(defs, "", "  ")
	if err != nil {
		return err
	}
	tmp := db.catalogPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, db.catalogPath())
}

// DropTable removes a table and deletes its files. Concurrent queries must
// not be running (bulk-maintenance operation, like everything that writes).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	name = strings.ToLower(name)
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("sqldb: no table %q", name)
	}
	// Evict the table's cached pages before the files disappear.
	if err := db.pool.DropCaches(); err != nil {
		return err
	}
	closeErr := firstError(t.heapFile.Close(), t.idxFile.Close())
	if t.segFile != nil {
		closeErr = firstError(closeErr, t.segFile.Close())
	}
	delete(db.tables, name)
	for _, suffix := range []string{".heap", ".idx", ".seg"} {
		if err := os.Remove(filepath.Join(db.dir, name+suffix)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if closeErr != nil {
		return closeErr
	}
	return db.saveCatalogLocked()
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns the names of all tables.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// Flush persists all tables and the buffer pool.
func (db *DB) Flush() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		if err := t.heap.Flush(); err != nil {
			return err
		}
		if err := t.idx.Flush(); err != nil {
			return err
		}
	}
	return db.pool.FlushAll()
}

// Close flushes and releases all files.
func (db *DB) Close() error {
	if err := db.Flush(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var closeErr error
	for _, t := range db.tables {
		closeErr = firstError(closeErr, t.heapFile.Close(), t.idxFile.Close())
		if t.segFile != nil {
			closeErr = firstError(closeErr, t.segFile.Close())
		}
	}
	db.tables = map[string]*Table{}
	return closeErr
}

// firstError returns the first non-nil error of errs.
func firstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SizeOnDisk returns the total bytes of all table files (the paper's
// Section 4.3 storage report).
func (db *DB) SizeOnDisk() (int64, error) {
	var total int64
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// Query parses and executes a SELECT with positional parameters ($1 …).
func (db *DB) Query(query string, params ...sqltypes.Value) (*exec.Relation, error) {
	sel, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	db.reg.Exec.GeneralRuns.Add(1)
	return exec.Run(sel, catalogAdapter{db}, params)
}

// Exec runs a non-SELECT statement (CREATE TABLE, INSERT INTO ... VALUES,
// DROP TABLE) with positional parameters, returning the number of rows
// affected. SELECT statements are rejected — use Query.
func (db *DB) Exec(stmtText string, params ...sqltypes.Value) (int, error) {
	stmt, err := sql.ParseStatement(stmtText)
	if err != nil {
		return 0, err
	}
	switch s := stmt.(type) {
	case *sql.CreateTable:
		def := TableDef{Name: s.Name, PK: s.PK}
		for _, c := range s.Columns {
			var typ sqltypes.Type
			switch c.Type {
			case sql.ColBigint:
				typ = sqltypes.Int64
			case sql.ColDouble:
				typ = sqltypes.Float64
			case sql.ColText:
				typ = sqltypes.Text
			case sql.ColBigintArray:
				typ = sqltypes.IntArray
			}
			def.Columns = append(def.Columns, ColumnDef{Name: c.Name, Type: typ})
		}
		_, err := db.CreateTable(def)
		return 0, err
	case *sql.Insert:
		tbl, ok := db.Table(s.Table)
		if !ok {
			return 0, fmt.Errorf("sqldb: no table %q", s.Table)
		}
		n := 0
		for _, rowExprs := range s.Rows {
			row, err := exec.EvalConstRow(rowExprs, params)
			if err != nil {
				return n, err
			}
			if err := tbl.Insert(row); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	case *sql.DropTable:
		return 0, db.DropTable(s.Name)
	case *sql.Select:
		return 0, fmt.Errorf("sqldb: Exec of a SELECT; use Query")
	default:
		return 0, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// QueryTraced executes a SELECT and also returns the access-path trace (one
// line per planner decision) — the engine's EXPLAIN ANALYZE.
func (db *DB) QueryTraced(query string, params ...sqltypes.Value) (*exec.Relation, []string, error) {
	sel, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	db.reg.Exec.GeneralRuns.Add(1)
	return exec.RunTraced(sel, catalogAdapter{db}, params)
}

// Stmt is a prepared statement: parsed once, executable many times.
type Stmt struct {
	db    *DB
	sel   *sql.Select
	fused *exec.FusedPlan // non-nil when the statement matched a fused shape
}

// Prepare parses a SELECT for repeated execution, recognizing the fused
// label-query shapes (Codes 1–4) unless the DB disables them.
func (db *DB) Prepare(query string) (*Stmt, error) {
	sel, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	st := &Stmt{db: db, sel: sel}
	if !db.noFused {
		st.fused = exec.Fuse(sel)
		if st.fused != nil {
			st.fused.SetSegments(!db.noSegments)
			st.fused.SetVectorCache(db.vcache != nil)
		}
	}
	return st, nil
}

// SegmentsEnabled reports whether the handle reads label tables through
// their columnar segments (Options.DisableSegments unset).
func (db *DB) SegmentsEnabled() bool { return !db.noSegments }

// VectorCacheEnabled reports whether the handle serves segmented tables
// through the resident vector cache (Options.VectorCacheBytes > 0).
func (db *DB) VectorCacheEnabled() bool { return db.vcache != nil }

// Fused reports whether the statement compiled to a fused plan.
func (s *Stmt) Fused() bool { return s.fused != nil }

// ExecInfo reports which execution path answered one Stmt.Query: Fused is
// set when the fused plan produced the result, Bailout when a fused plan hit
// a runtime precondition failure (ErrNotFused) and the general executor
// re-ran the statement. Plain general execution leaves both false. Returned
// by value so the hot path never allocates for it.
type ExecInfo struct {
	Fused   bool
	Bailout bool
}

// Query executes the prepared statement. The statement is immutable after
// Prepare (execution never mutates the AST or the fused plan), so one Stmt
// may be executed from many goroutines concurrently. A fused plan that bails
// at runtime (ErrNotFused — unexpected parameter types or table layout)
// falls back to the general executor, which owns the semantics of every
// case the fused path does not cover.
func (s *Stmt) Query(params ...sqltypes.Value) (*exec.Relation, error) {
	rel, _, err := s.QueryInfo(params...)
	return rel, err
}

// QueryInfo is Query, additionally reporting which execution path produced
// the result — the per-query counterpart of FusedStats, used by trace hooks.
func (s *Stmt) QueryInfo(params ...sqltypes.Value) (*exec.Relation, ExecInfo, error) {
	var info ExecInfo
	if s.fused != nil {
		rel, err := s.fused.Run(catalogAdapter{s.db}, params)
		if err == nil {
			s.db.reg.Exec.FusedRuns.Add(1)
			info.Fused = true
			return rel, info, nil
		}
		if !errors.Is(err, exec.ErrNotFused) {
			return nil, info, err
		}
		s.db.reg.Exec.FusedBailouts.Add(1)
		info.Bailout = true
	}
	s.db.reg.Exec.GeneralRuns.Add(1)
	rel, err := exec.Run(s.sel, catalogAdapter{s.db}, params)
	return rel, info, err
}

// Explain renders the statement's plan: the fused operator tree when the
// statement compiled to one, otherwise the structural shape the general
// executor will evaluate.
func (s *Stmt) Explain() string {
	if s.fused != nil {
		return s.fused.Explain()
	}
	return exec.ExplainSelect(s.sel)
}

// FusedStats reports how many prepared-statement executions were served by
// the fused path and how many bailed out to the general executor. It reads
// the registry's executor counters (the pre-registry fused counters were
// absorbed into it).
func (db *DB) FusedStats() (hits, fallbacks uint64) {
	return db.reg.Exec.FusedRuns.Load(), db.reg.Exec.FusedBailouts.Load()
}

// Registry exposes the handle's observability registry. The pointer is
// live — counters advance as queries run — and valid for the DB's lifetime.
func (db *DB) Registry() *obs.Registry { return &db.reg }

// CachedPrepare returns a shared prepared statement for query, parsing the
// text at most once per DB. Table names resolve against the catalog at
// execution time, so cached statements stay valid across table churn. It is
// safe for concurrent use; the returned Stmt may be executed concurrently.
func (db *DB) CachedPrepare(query string) (*Stmt, error) {
	db.stmtMu.Lock()
	if st, ok := db.stmts[query]; ok {
		db.stmtHits++
		db.stmtMu.Unlock()
		return st, nil
	}
	db.stmtMu.Unlock()
	// Parse outside the lock: a slow parse of one novel statement must not
	// block cache hits on the hot path.
	st, err := db.Prepare(query)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	if prev, ok := db.stmts[query]; ok {
		// Lost a parse race; both Stmts are equivalent, keep the first.
		db.stmtHits++
		return prev, nil
	}
	db.stmtMisses++
	db.stmts[query] = st
	return st, nil
}

// StmtCacheStats reports plan-cache hits and misses. Each miss corresponds
// to exactly one sql.Parse call issued through CachedPrepare.
func (db *DB) StmtCacheStats() (hits, misses uint64) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	return db.stmtHits, db.stmtMisses
}

// catalogAdapter exposes DB tables to the executor.
type catalogAdapter struct{ db *DB }

func (c catalogAdapter) Table(name string) (exec.Table, bool) {
	t, ok := c.db.Table(name)
	if !ok {
		return nil, false
	}
	return t, true
}

// ExecMetrics implements exec.MetricsSource: the executor feeds the tuples-
// merged counter through it.
func (c catalogAdapter) ExecMetrics() *obs.ExecMetrics { return &c.db.reg.Exec }

func colIndex(cols []ColumnDef, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}
