package sqltypes

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		NullType: "NULL", Int64: "BIGINT", Float64: "DOUBLE", Text: "TEXT", IntArray: "BIGINT[]",
		Type(99): "Type(99)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-42), "-42"},
		{NewFloat(2.5), "2.5"},
		{NewText("hi"), "hi"},
		{NewIntArray([]int64{1, 2, 3}), "{1,2,3}"},
		{NewIntArray(nil), "{}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.T, got, c.want)
		}
	}
}

func TestAsIntAsFloat(t *testing.T) {
	if v, err := NewInt(7).AsInt(); err != nil || v != 7 {
		t.Errorf("AsInt(7) = %d, %v", v, err)
	}
	if v, err := NewFloat(7.9).AsInt(); err != nil || v != 7 {
		t.Errorf("AsInt(7.9) = %d, %v (truncation expected)", v, err)
	}
	if _, err := NewText("x").AsInt(); err == nil {
		t.Error("AsInt(text) succeeded")
	}
	if v, err := NewInt(3).AsFloat(); err != nil || v != 3.0 {
		t.Errorf("AsFloat(3) = %v, %v", v, err)
	}
	if _, err := Null.AsFloat(); err == nil {
		t.Error("AsFloat(NULL) succeeded")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewText("a"), NewText("b"), -1},
		{NewIntArray([]int64{1, 2}), NewIntArray([]int64{1, 3}), -1},
		{NewIntArray([]int64{1, 2}), NewIntArray([]int64{1, 2, 0}), -1},
		{NewIntArray([]int64{1, 2}), NewIntArray([]int64{1, 2}), 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(NewText("x"), NewInt(1)); err == nil {
		t.Error("Compare(text,int) succeeded")
	}
	if _, err := Compare(NewText("x"), NewIntArray(nil)); err == nil {
		t.Error("Compare(text,array) succeeded")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{Null},
		{NewInt(0), NewInt(-1), NewInt(math.MaxInt64), NewInt(math.MinInt64)},
		{NewFloat(3.14159), NewFloat(math.Inf(1))},
		{NewText(""), NewText("hello, κόσμε")},
		{NewIntArray(nil), NewIntArray([]int64{5}), NewIntArray([]int64{100, 90, 80, -3})},
		{NewInt(1), Null, NewText("x"), NewIntArray([]int64{36000, 36100, 39600})},
	}
	for i, r := range rows {
		buf := EncodeRow(nil, r)
		got, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("row %d: DecodeRow: %v", i, err)
		}
		if len(got) != len(r) {
			t.Fatalf("row %d: got %d values, want %d", i, len(got), len(r))
		}
		for j := range r {
			if !reflect.DeepEqual(normalize(got[j]), normalize(r[j])) {
				t.Errorf("row %d value %d: got %+v, want %+v", i, j, got[j], r[j])
			}
		}
	}
}

// normalize maps empty and nil arrays to a canonical form for comparison.
func normalize(v Value) Value {
	if v.T == IntArray && len(v.A) == 0 {
		v.A = nil
	}
	return v
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	good := EncodeRow(nil, Row{NewInt(12345), NewText("abc"), NewIntArray([]int64{1, 2, 3})})
	// Truncations at every prefix must error, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeRow(good[:i]); err == nil && i < len(good) {
			// A prefix may accidentally parse only if it is self-delimiting;
			// the row header pins the value count, so any true prefix fails.
			t.Errorf("DecodeRow(prefix %d/%d) succeeded", i, len(good))
		}
	}
	// Trailing garbage.
	if _, err := DecodeRow(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Error("DecodeRow with trailing bytes succeeded")
	}
	// Unknown tag.
	bad := EncodeRow(nil, Row{NewInt(1)})
	bad[1] = 0x7F
	if _, err := DecodeRow(bad); err == nil {
		t.Error("DecodeRow with bad tag succeeded")
	}
}

// TestEncodeDecodeQuick is a property test over random rows.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := make(Row, rng.Intn(8))
		for i := range r {
			switch rng.Intn(5) {
			case 0:
				r[i] = Null
			case 1:
				r[i] = NewInt(rng.Int63() - rng.Int63())
			case 2:
				r[i] = NewFloat(rng.NormFloat64())
			case 3:
				b := make([]byte, rng.Intn(20))
				rng.Read(b)
				r[i] = NewText(string(b))
			default:
				a := make([]int64, rng.Intn(50))
				for j := range a {
					a[j] = rng.Int63n(1 << 40)
				}
				r[i] = NewIntArray(a)
			}
		}
		buf := EncodeRow(nil, r)
		got, err := DecodeRow(buf)
		if err != nil || len(got) != len(r) {
			return false
		}
		for i := range r {
			if !reflect.DeepEqual(normalize(got[i]), normalize(r[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewIntArray([]int64{1, 2}), NewText("a")}
	c := r.Clone()
	c[0].A[0] = 99
	if r[0].A[0] != 1 {
		t.Error("Clone shares array backing store")
	}
}

func TestCompareArraysEqualPrefixLonger(t *testing.T) {
	got, err := Compare(NewIntArray([]int64{1, 2, 3}), NewIntArray([]int64{1, 2}))
	if err != nil || got != 1 {
		t.Errorf("Compare longer-vs-prefix = %d, %v", got, err)
	}
}

func TestDecodeRowInto(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewIntArray([]int64{3, 1, 4, 1, 5}), NewIntArray([]int64{9, 2, 6})},
		{NewInt(2), NewIntArray(nil), NewIntArray([]int64{-7})},
		{Null, NewText("x"), NewFloat(2.5)},
	}

	// Reused buffers round-trip every row; the arena is append-only, so
	// arrays decoded in earlier calls keep their contents afterwards.
	var scratchRow Row
	var arena []int64
	var decoded []Row
	for i, r := range rows {
		buf := EncodeRow(nil, r)
		got, grown, err := DecodeRowInto(buf, scratchRow, arena)
		if err != nil {
			t.Fatalf("row %d: DecodeRowInto: %v", i, err)
		}
		scratchRow, arena = got, grown
		if len(got) != len(r) {
			t.Fatalf("row %d: got %d values, want %d", i, len(got), len(r))
		}
		for j := range r {
			if !reflect.DeepEqual(normalize(got[j]), normalize(r[j])) {
				t.Errorf("row %d value %d: got %+v, want %+v", i, j, got[j], r[j])
			}
		}
		// Keep only the array values: the Row header is recycled next call.
		keep := make(Row, len(got))
		copy(keep, got)
		decoded = append(decoded, keep)
	}
	for i, r := range rows {
		for j := range r {
			if r[j].T != IntArray {
				continue
			}
			if !reflect.DeepEqual(normalize(decoded[i][j]), normalize(r[j])) {
				t.Errorf("retained row %d value %d clobbered: got %+v, want %+v",
					i, j, decoded[i][j], r[j])
			}
		}
	}

	// Truncating the arena recycles the backing store.
	buf := EncodeRow(nil, rows[0])
	got, grown, err := DecodeRowInto(buf, scratchRow, arena[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) == 0 || &grown[0] != &arena[:1][0] {
		t.Error("truncated arena did not reuse its backing store")
	}
	if got[1].A[0] != 3 {
		t.Errorf("reuse decode got %v", got[1].A)
	}

	// Corrupt input is rejected like DecodeRow.
	if _, _, err := DecodeRowInto(buf[:len(buf)-1], nil, nil); err == nil {
		t.Error("truncated buffer accepted")
	}
}
