package sqltypes

import (
	"math"
	"math/rand"
	"testing"
)

// randSegRow draws a row shaped like a label-table row: a leading Int64 key
// plus IntArray columns, with the pathological shapes (empty arrays,
// single-element arrays, max-magnitude deltas) over-represented.
func randSegRow(rng *rand.Rand, types []Type) Row {
	r := make(Row, len(types))
	for i, t := range types {
		switch t {
		case Int64:
			switch rng.Intn(4) {
			case 0:
				r[i] = NewInt(math.MaxInt64)
			case 1:
				r[i] = NewInt(math.MinInt64)
			default:
				r[i] = NewInt(rng.Int63n(1 << 40))
			}
		case IntArray:
			var a []int64
			switch rng.Intn(5) {
			case 0: // empty label run
				a = []int64{}
			case 1: // single-label stop
				a = []int64{rng.Int63n(1 << 32)}
			case 2: // max-int64 deltas: alternating extremes
				n := 1 + rng.Intn(6)
				a = make([]int64, n)
				for j := range a {
					if j%2 == 0 {
						a[j] = math.MaxInt64
					} else {
						a[j] = math.MinInt64
					}
				}
			default: // typical sorted label run
				n := rng.Intn(64)
				a = make([]int64, n)
				v := int64(0)
				for j := range a {
					v += rng.Int63n(1 << 20)
					a[j] = v
				}
			}
			r[i] = NewIntArray(a)
		}
	}
	return r
}

func rowsEqual(t *testing.T, want, got Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row length: want %d got %d", len(want), len(got))
	}
	for i := range want {
		if !Equal(want[i], got[i]) {
			t.Fatalf("value %d: want %v got %v", i, want[i], got[i])
		}
	}
}

// TestSegCodecRoundTripFuzz is the seeded fuzz round-trip for the segment
// codec, covering empty runs, single-label stops and max-int64 deltas.
func TestSegCodecRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1316))
	shapes := [][]Type{
		{Int64, IntArray, IntArray, IntArray},             // lout/lin
		{Int64, Int64, IntArray, IntArray},                // naive kNN (hub, td, vs, tas)
		{Int64, Int64, Int64, Int64, Int64, Int64, Int64}, // condensed
		{Int64},
		{IntArray},
	}
	var buf []byte
	var row Row
	var arena []int64
	for iter := 0; iter < 2000; iter++ {
		types := shapes[rng.Intn(len(shapes))]
		in := randSegRow(rng, types)
		var err error
		buf, err = EncodeSegRow(buf[:0], in)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", iter, err)
		}
		row, arena, err = DecodeSegRowInto(buf, types, row, arena[:0])
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		rowsEqual(t, in, row)
	}
}

// TestSegCodecMatchesRowCodec cross-checks the two codecs: a segment row
// decoded by DecodeSegRowInto must equal the same row round-tripped through
// the tagged EncodeRow/DecodeRow pair.
func TestSegCodecMatchesRowCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	types := []Type{Int64, IntArray, IntArray, IntArray}
	for iter := 0; iter < 200; iter++ {
		in := randSegRow(rng, types)
		seg, err := EncodeSegRow(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DecodeSegRowInto(seg, types, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		viaTagged, err := DecodeRow(EncodeRow(nil, in))
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, viaTagged, got)
	}
}

// TestSegCodecRejectsIneligible pins the eligibility rule: NULL, DOUBLE and
// TEXT values refuse to encode, and mismatched schemas refuse to decode.
func TestSegCodecRejectsIneligible(t *testing.T) {
	for _, r := range []Row{
		{Null},
		{NewFloat(1.5)},
		{NewText("x")},
		{NewInt(1), Null},
	} {
		if _, err := EncodeSegRow(nil, r); err == nil {
			t.Fatalf("EncodeSegRow(%v) succeeded, want error", r)
		}
	}
	if _, _, err := DecodeSegRowInto(nil, []Type{Text}, nil, nil); err == nil {
		t.Fatal("DecodeSegRowInto with Text schema succeeded, want error")
	}
	// Trailing garbage after a well-formed row must be rejected.
	buf, err := EncodeSegRow(nil, Row{NewInt(9)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSegRowInto(append(buf, 0x01), []Type{Int64}, nil, nil); err == nil {
		t.Fatal("trailing bytes accepted, want error")
	}
}

// TestSegDecodeArenaAliasing is the aliasing-hostile test: arrays carved out
// of the arena for row A must stay intact while row B decodes into the same
// growing arena, across reallocation boundaries.
func TestSegDecodeArenaAliasing(t *testing.T) {
	types := []Type{Int64, IntArray}
	mk := func(base int64, n int) Row {
		a := make([]int64, n)
		for i := range a {
			a[i] = base + int64(i)
		}
		return Row{NewInt(base), NewIntArray(a)}
	}
	rowA := mk(100, 48) // large enough to force the first growth
	rowB := mk(9000, 512)

	bufA, err := EncodeSegRow(nil, rowA)
	if err != nil {
		t.Fatal(err)
	}
	bufB, err := EncodeSegRow(nil, rowB)
	if err != nil {
		t.Fatal(err)
	}

	decA, arena, err := DecodeSegRowInto(bufA, types, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	heldA := decA[1].A // retained view into the arena
	// Decoding B keeps (does not truncate) the arena, so A's view must
	// survive the reallocation that B's 512 elements force.
	decB, arena, err := DecodeSegRowInto(bufB, types, nil, arena)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range heldA {
		if v != 100+int64(i) {
			t.Fatalf("row A array clobbered at %d: got %d", i, v)
		}
	}
	for i, v := range decB[1].A {
		if v != 9000+int64(i) {
			t.Fatalf("row B array wrong at %d: got %d", i, v)
		}
	}
	// The carved slices must be capacity-clamped: appending to A's view
	// cannot overwrite B's data.
	grown := append(heldA, -1)
	if decB[1].A[0] != 9000 {
		t.Fatalf("append through row A view clobbered row B: %d", decB[1].A[0])
	}
	_ = grown
	_ = arena
}

// FuzzSegCodecRoundTrip feeds arbitrary bytes to DecodeSegRowInto under a
// fuzz-chosen schema: any outcome is fine except a panic, and whatever the
// decoder accepts must re-encode and decode back to the same row. The
// comparison is semantic, not byte-for-byte — non-canonical varints in the
// input decode fine but re-encode shorter — so the canonical re-encoding is
// additionally required to be a fixed point of the codec.
func FuzzSegCodecRoundTrip(f *testing.F) {
	// shape is a packed schema selector: two bits per column (0..2 columns of
	// slack beyond the count), low three bits the column count 1..7.
	seed := func(r Row, types []Type, shape byte) {
		buf, err := EncodeSegRow(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(shape, buf)
	}
	seed(Row{NewInt(42)}, []Type{Int64}, 0x01)
	seed(Row{NewInt(7), NewIntArray([]int64{1, 5, 5, 9})}, []Type{Int64, IntArray}, 0x0a)
	seed(Row{NewIntArray(nil)}, []Type{IntArray}, 0x09)
	f.Add(byte(0x0f), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(byte(0x09), []byte{0xfe})
	f.Fuzz(func(t *testing.T, shape byte, data []byte) {
		n := int(shape&0x07) + 1
		types := make([]Type, n)
		for i := range types {
			if shape>>(3+uint(i%5))&1 == 1 {
				types[i] = IntArray
			} else {
				types[i] = Int64
			}
		}
		row, arena, err := DecodeSegRowInto(data, types, nil, nil)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		enc, err := EncodeSegRow(nil, row)
		if err != nil {
			t.Fatalf("decoded row refuses to re-encode: %v (row %v)", err, row)
		}
		again, _, err := DecodeSegRowInto(enc, types, nil, nil)
		if err != nil {
			t.Fatalf("re-encoding does not decode: %v (row %v)", err, row)
		}
		rowsEqual(t, row, again)
		// The canonical encoding must be a fixed point: encoding the second
		// decode reproduces it byte-for-byte.
		enc2, err := EncodeSegRow(nil, again)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc2) != string(enc) {
			t.Fatalf("canonical encoding not a fixed point:\n first %x\nsecond %x", enc, enc2)
		}
		_ = arena
	})
}
