// Package sqltypes defines the value system of the embedded SQL engine used
// by PTLDB: 64-bit integers, double-precision floats, text, arrays of 64-bit
// integers (PostgreSQL's BIGINT[] as used for the hubs/tds/tas columns), and
// SQL NULL. It also provides the binary row codec shared by the storage
// engine and the executor.
package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the supported column types.
type Type uint8

const (
	// NullType is the type of the SQL NULL literal before coercion.
	NullType Type = iota
	// Int64 is BIGINT.
	Int64
	// Float64 is DOUBLE PRECISION.
	Float64
	// Text is TEXT.
	Text
	// IntArray is BIGINT[].
	IntArray
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case NullType:
		return "NULL"
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Text:
		return "TEXT"
	case IntArray:
		return "BIGINT[]"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is one SQL value: a tagged union. The zero Value is NULL.
type Value struct {
	T Type
	I int64
	F float64
	S string
	A []int64
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns a BIGINT value.
func NewInt(v int64) Value { return Value{T: Int64, I: v} }

// NewFloat returns a DOUBLE value.
func NewFloat(v float64) Value { return Value{T: Float64, F: v} }

// NewText returns a TEXT value.
func NewText(s string) Value { return Value{T: Text, S: s} }

// NewIntArray returns a BIGINT[] value. The slice is not copied.
func NewIntArray(a []int64) Value { return Value{T: IntArray, A: a} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.T == NullType }

// AsInt returns the integer content, coercing DOUBLE by truncation. It
// errors on NULL and non-numeric types.
func (v Value) AsInt() (int64, error) {
	switch v.T {
	case Int64:
		return v.I, nil
	case Float64:
		return int64(v.F), nil
	default:
		return 0, fmt.Errorf("sqltypes: %s is not numeric", v.T)
	}
}

// AsFloat returns the float content of a numeric value.
func (v Value) AsFloat() (float64, error) {
	switch v.T {
	case Int64:
		return float64(v.I), nil
	case Float64:
		return v.F, nil
	default:
		return 0, fmt.Errorf("sqltypes: %s is not numeric", v.T)
	}
}

// String renders the value for display, using PostgreSQL-style array
// braces.
func (v Value) String() string {
	switch v.T {
	case NullType:
		return "NULL"
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Text:
		return v.S
	case IntArray:
		var b strings.Builder
		b.WriteByte('{')
		for i, x := range v.A {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(x, 10))
		}
		b.WriteByte('}')
		return b.String()
	default:
		return "?"
	}
}

// Compare orders two values: NULL sorts before everything (as in PostgreSQL
// with NULLS FIRST on ascending sorts it would be last; we use first for
// determinism — the PTLDB queries never sort NULLs), numbers numerically
// across Int64/Float64, text lexicographically, arrays element-wise. It
// returns -1, 0 or 1 and an error on incomparable types.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, nil
		case a.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if (a.T == Int64 || a.T == Float64) && (b.T == Int64 || b.T == Float64) {
		if a.T == Int64 && b.T == Int64 {
			switch {
			case a.I < b.I:
				return -1, nil
			case a.I > b.I:
				return 1, nil
			default:
				return 0, nil
			}
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.T != b.T {
		return 0, fmt.Errorf("sqltypes: cannot compare %s with %s", a.T, b.T)
	}
	switch a.T {
	case Text:
		return strings.Compare(a.S, b.S), nil
	case IntArray:
		n := len(a.A)
		if len(b.A) < n {
			n = len(b.A)
		}
		for i := 0; i < n; i++ {
			if a.A[i] != b.A[i] {
				if a.A[i] < b.A[i] {
					return -1, nil
				}
				return 1, nil
			}
		}
		switch {
		case len(a.A) < len(b.A):
			return -1, nil
		case len(a.A) > len(b.A):
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("sqltypes: cannot compare %s", a.T)
	}
}

// Equal reports deep equality with numeric cross-type comparison.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Row is one tuple of values.
type Row []Value

// Clone deep-copies the row (array contents included).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		if v.T == IntArray {
			v.A = append([]int64(nil), v.A...)
		}
		out[i] = v
	}
	return out
}

// EncodeRow serializes a row with the storage codec: per value a type tag
// followed by a type-specific payload (zigzag varints for integers, length-
// prefixed bytes for text, length-prefixed delta-varint arrays).
func EncodeRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.T))
		switch v.T {
		case NullType:
		case Int64:
			buf = binary.AppendVarint(buf, v.I)
		case Float64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case Text:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		case IntArray:
			buf = binary.AppendUvarint(buf, uint64(len(v.A)))
			prev := int64(0)
			for _, x := range v.A {
				buf = binary.AppendVarint(buf, x-prev)
				prev = x
			}
		}
	}
	return buf
}

// DecodeRowInto parses a row previously written by EncodeRow, reusing
// caller-owned buffers: the returned Row occupies row's capacity when it
// suffices, and every BIGINT[] value is carved out of arena, which is
// returned grown. The arena is append-only — growing it reallocates but
// never overwrites, so array slices from earlier calls stay valid as long
// as the caller keeps passing the returned arena back in. Truncating the
// arena between calls (arena[:0]) recycles the backing and clobbers all
// previously decoded arrays; only do that when nothing is retained.
func DecodeRowInto(buf []byte, row Row, arena []int64) (Row, []int64, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, arena, fmt.Errorf("sqltypes: corrupt row header")
	}
	buf = buf[k:]
	var r Row
	if uint64(cap(row)) >= n {
		r = row[:n]
	} else {
		r = make(Row, n)
	}
	for i := range r {
		if len(buf) == 0 {
			return nil, arena, fmt.Errorf("sqltypes: truncated row at value %d", i)
		}
		t := Type(buf[0])
		buf = buf[1:]
		switch t {
		case NullType:
			r[i] = Null
		case Int64:
			v, k := binary.Varint(buf)
			if k <= 0 {
				return nil, arena, fmt.Errorf("sqltypes: corrupt int at value %d", i)
			}
			buf = buf[k:]
			r[i] = NewInt(v)
		case Float64:
			if len(buf) < 8 {
				return nil, arena, fmt.Errorf("sqltypes: corrupt float at value %d", i)
			}
			r[i] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
			buf = buf[8:]
		case Text:
			ln, k := binary.Uvarint(buf)
			if k <= 0 || uint64(len(buf)-k) < ln {
				return nil, arena, fmt.Errorf("sqltypes: corrupt text at value %d", i)
			}
			// hotpath:cold — text columns never appear in the integer-only
			// label tables the fused codes read; the copy is also what makes
			// the value safe to retain past the scratch buffer.
			r[i] = NewText(string(buf[k : k+int(ln)]))
			buf = buf[k+int(ln):]
		case IntArray:
			ln, k := binary.Uvarint(buf)
			// Every element costs at least one byte, so a length beyond the
			// remaining buffer is corrupt — checked before it can size the
			// arena (or overflow int) on attacker-controlled input.
			if k <= 0 || ln > uint64(len(buf)-k) {
				return nil, arena, fmt.Errorf("sqltypes: corrupt array at value %d", i)
			}
			buf = buf[k:]
			if free := cap(arena) - len(arena); free < int(ln) {
				grown := 2 * cap(arena)
				if grown < len(arena)+int(ln) {
					grown = len(arena) + int(ln)
				}
				if grown < 64 {
					grown = 64
				}
				na := make([]int64, len(arena), grown)
				copy(na, arena)
				arena = na
			}
			a := arena[len(arena) : len(arena)+int(ln) : len(arena)+int(ln)]
			arena = arena[:len(arena)+int(ln)]
			prev := int64(0)
			for j := range a {
				d, k := binary.Varint(buf)
				if k <= 0 {
					return nil, arena, fmt.Errorf("sqltypes: corrupt array element %d of value %d", j, i)
				}
				buf = buf[k:]
				prev += d
				a[j] = prev
			}
			r[i] = NewIntArray(a)
		default:
			return nil, arena, fmt.Errorf("sqltypes: unknown type tag %d at value %d", t, i)
		}
	}
	if len(buf) != 0 {
		return nil, arena, fmt.Errorf("sqltypes: %d trailing bytes after row", len(buf))
	}
	return r, arena, nil
}

// DecodeRow parses a row previously written by EncodeRow.
func DecodeRow(buf []byte) (Row, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, fmt.Errorf("sqltypes: corrupt row header")
	}
	buf = buf[k:]
	r := make(Row, n)
	for i := range r {
		if len(buf) == 0 {
			return nil, fmt.Errorf("sqltypes: truncated row at value %d", i)
		}
		t := Type(buf[0])
		buf = buf[1:]
		switch t {
		case NullType:
			r[i] = Null
		case Int64:
			v, k := binary.Varint(buf)
			if k <= 0 {
				return nil, fmt.Errorf("sqltypes: corrupt int at value %d", i)
			}
			buf = buf[k:]
			r[i] = NewInt(v)
		case Float64:
			if len(buf) < 8 {
				return nil, fmt.Errorf("sqltypes: corrupt float at value %d", i)
			}
			r[i] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
			buf = buf[8:]
		case Text:
			ln, k := binary.Uvarint(buf)
			if k <= 0 || uint64(len(buf)-k) < ln {
				return nil, fmt.Errorf("sqltypes: corrupt text at value %d", i)
			}
			r[i] = NewText(string(buf[k : k+int(ln)]))
			buf = buf[k+int(ln):]
		case IntArray:
			ln, k := binary.Uvarint(buf)
			// As in DecodeRowInto: each element costs at least one byte, so
			// bound the length before it sizes the allocation.
			if k <= 0 || ln > uint64(len(buf)-k) {
				return nil, fmt.Errorf("sqltypes: corrupt array at value %d", i)
			}
			buf = buf[k:]
			a := make([]int64, ln)
			prev := int64(0)
			for j := range a {
				d, k := binary.Varint(buf)
				if k <= 0 {
					return nil, fmt.Errorf("sqltypes: corrupt array element %d of value %d", j, i)
				}
				buf = buf[k:]
				prev += d
				a[j] = prev
			}
			r[i] = NewIntArray(a)
		default:
			return nil, fmt.Errorf("sqltypes: unknown type tag %d at value %d", t, i)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("sqltypes: %d trailing bytes after row", len(buf))
	}
	return r, nil
}
