package sqltypes

import (
	"encoding/binary"
	"fmt"
)

// Segment codec: the compact row encoding used by columnar label segments.
// Unlike EncodeRow it writes no per-value type tags — the column types are
// fixed by the table schema and stored once in the segment header — so a
// label row costs exactly its varints. Only Int64 (zigzag varint) and
// IntArray (uvarint length + per-element delta varints) columns are
// encodable; NULL, DOUBLE and TEXT make a table segment-ineligible.

// SegEncodable reports whether a column type can appear in a segment.
func SegEncodable(t Type) bool { return t == Int64 || t == IntArray }

// EncodeSegRow appends the segment encoding of r to buf. Every value must
// be a non-NULL Int64 or IntArray; anything else is an error (the caller
// skips segment construction for such tables).
func EncodeSegRow(buf []byte, r Row) ([]byte, error) {
	for i, v := range r {
		switch v.T {
		case Int64:
			buf = binary.AppendVarint(buf, v.I)
		case IntArray:
			buf = binary.AppendUvarint(buf, uint64(len(v.A)))
			prev := int64(0)
			for _, x := range v.A {
				buf = binary.AppendVarint(buf, x-prev)
				prev = x
			}
		default:
			return nil, fmt.Errorf("sqltypes: segment cannot encode %s at value %d", v.T, i)
		}
	}
	return buf, nil
}

// DecodeSegRowInto parses a row written by EncodeSegRow given the column
// types, reusing caller-owned buffers exactly like DecodeRowInto: the
// returned Row occupies row's capacity when it suffices, and every BIGINT[]
// value is carved out of arena, which is returned grown. The arena is
// append-only; see DecodeRowInto for the retention rules.
func DecodeSegRowInto(buf []byte, types []Type, row Row, arena []int64) (Row, []int64, error) {
	var r Row
	if cap(row) >= len(types) {
		r = row[:len(types)]
	} else {
		r = make(Row, len(types))
	}
	for i, t := range types {
		switch t {
		case Int64:
			v, k := binary.Varint(buf)
			if k <= 0 {
				return nil, arena, fmt.Errorf("sqltypes: corrupt segment int at value %d", i)
			}
			buf = buf[k:]
			r[i] = NewInt(v)
		case IntArray:
			ln, k := binary.Uvarint(buf)
			// Every element costs at least one byte, so a length beyond the
			// remaining buffer is corrupt — checked before it can size the
			// arena (or overflow int) on attacker-controlled input.
			if k <= 0 || ln > uint64(len(buf)-k) {
				return nil, arena, fmt.Errorf("sqltypes: corrupt segment array at value %d", i)
			}
			buf = buf[k:]
			if free := cap(arena) - len(arena); free < int(ln) {
				grown := 2 * cap(arena)
				if grown < len(arena)+int(ln) {
					grown = len(arena) + int(ln)
				}
				if grown < 64 {
					grown = 64
				}
				na := make([]int64, len(arena), grown)
				copy(na, arena)
				arena = na
			}
			a := arena[len(arena) : len(arena)+int(ln) : len(arena)+int(ln)]
			arena = arena[:len(arena)+int(ln)]
			prev := int64(0)
			for j := range a {
				d, k := binary.Varint(buf)
				if k <= 0 {
					return nil, arena, fmt.Errorf("sqltypes: corrupt segment array element %d of value %d", j, i)
				}
				buf = buf[k:]
				prev += d
				a[j] = prev
			}
			r[i] = NewIntArray(a)
		default:
			return nil, arena, fmt.Errorf("sqltypes: segment cannot decode %s at value %d", t, i)
		}
	}
	if len(buf) != 0 {
		return nil, arena, fmt.Errorf("sqltypes: %d trailing bytes after segment row", len(buf))
	}
	return r, arena, nil
}
