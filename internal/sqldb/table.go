package sqldb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"ptldb/internal/sqldb/exec"
	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/sqldb/storage"
	"ptldb/internal/sqldb/vcache"
)

// Table is one stored table: an append-only heap of encoded rows plus a
// B+tree primary-key index mapping key values to heap locators. Tables whose
// columns are all BIGINT/BIGINT[] (the label tables) additionally carry an
// immutable columnar segment built at bulk load; when attached, the scratch
// read paths (LookupPKScratch/ScanScratch) serve rows from it instead of the
// B+tree/heap pair, while the non-scratch paths stay on the heap as the
// general-executor correctness oracle.
type Table struct {
	def    TableDef
	db     *DB
	pkCols []int

	heapFile, idxFile *storage.PagedFile
	heap              *storage.RowStore
	idx               *storage.BTree

	// Columnar segment, attached when a .seg file exists and the handle has
	// segments enabled. segTypes caches the column types in storage order so
	// hot-path decodes never walk the TableDef.
	segFile  *storage.PagedFile
	seg      *storage.Segment
	segTypes []sqltypes.Type

	// vcE is the table's slot in the handle's resident vector cache,
	// non-nil only when the cache is enabled and a segment is attached
	// (the cache materializes from the segment). When the slot declines a
	// table (budget too small) reads fall through to the segment tier.
	vcE *vcache.Entry

	// Access counters: primary-key lookups answered (hit or miss) and full
	// scans started. They let tests verify the paper's secondary-storage
	// claims (e.g. "any v2v query needs to access exactly two rows").
	lookups, scans atomic.Uint64
}

// AccessStats reports how many PK lookups and full scans the table has
// served since open.
func (t *Table) AccessStats() (lookups, scans uint64) {
	return t.lookups.Load(), t.scans.Load()
}

// Def returns the table definition.
func (t *Table) Def() TableDef { return t.def }

// Columns returns the column names in storage order.
func (t *Table) Columns() []string {
	out := make([]string, len(t.def.Columns))
	for i, c := range t.def.Columns {
		out[i] = c.Name
	}
	return out
}

// PKCols returns the indices of the primary-key columns.
func (t *Table) PKCols() []int { return t.pkCols }

// RowCount returns the number of stored rows.
func (t *Table) RowCount() uint64 { return t.heap.Count() }

// checkRow validates arity and column types, coercing integer values into
// DOUBLE columns in place.
func (t *Table) checkRow(row sqltypes.Row) error {
	if len(row) != len(t.def.Columns) {
		return fmt.Errorf("sqldb: %s: row has %d values, table has %d columns", t.def.Name, len(row), len(t.def.Columns))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		want := t.def.Columns[i].Type
		if v.T != want {
			// Integers are accepted into DOUBLE columns.
			if want == sqltypes.Float64 && v.T == sqltypes.Int64 {
				row[i] = sqltypes.NewFloat(float64(v.I))
				continue
			}
			return fmt.Errorf("sqldb: %s.%s: cannot store %s into %s", t.def.Name, t.def.Columns[i].Name, v.T, want)
		}
	}
	return nil
}

// Insert validates and stores one row. Inserting a duplicate primary key is
// an error (the heap is append-only and cannot reclaim the old row).
func (t *Table) Insert(row sqltypes.Row) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	key, err := t.keyOf(row)
	if err != nil {
		return err
	}
	if len(t.pkCols) > 0 {
		if _, exists, err := t.idx.Get(key); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("sqldb: %s: duplicate primary key %v", t.def.Name, key)
		}
	}
	// A point write would leave an attached segment stale; drop it first.
	if err := t.dropSegment(); err != nil {
		return err
	}
	loc, err := t.heap.Append(sqltypes.EncodeRow(nil, row))
	if err != nil {
		return err
	}
	if len(t.pkCols) > 0 {
		return t.idx.Insert(key, loc)
	}
	return nil
}

// ReplaceByPK stores row, overwriting any existing row with the same primary
// key (the index entry is redirected; the heap is append-only, so the old
// row's bytes remain unreferenced until a rebuild).
func (t *Table) ReplaceByPK(row sqltypes.Row) error {
	if len(t.pkCols) == 0 {
		return fmt.Errorf("sqldb: %s has no primary key", t.def.Name)
	}
	if len(row) != len(t.def.Columns) {
		return fmt.Errorf("sqldb: %s: row has %d values, table has %d columns", t.def.Name, len(row), len(t.def.Columns))
	}
	key, err := t.keyOf(row)
	if err != nil {
		return err
	}
	if err := t.dropSegment(); err != nil {
		return err
	}
	loc, err := t.heap.Append(sqltypes.EncodeRow(nil, row))
	if err != nil {
		return err
	}
	return t.idx.Insert(key, loc)
}

// InsertRows bulk-inserts rows.
func (t *Table) InsertRows(rows []sqltypes.Row) error {
	for i, r := range rows {
		if err := t.Insert(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// BulkLoad stores rows already sorted by strictly ascending primary key into
// an empty table, building the index bottom-up in one pass over full pages
// instead of one root-to-leaf descent per row. All rows are validated before
// anything is stored, so a rejected load leaves the table empty. Keyless
// tables fall back to plain heap appends (insertion order is the scan order).
func (t *Table) BulkLoad(rows []sqltypes.Row) error {
	if t.heap.Count() != 0 {
		return fmt.Errorf("sqldb: %s: bulk load requires an empty table (%d rows stored)", t.def.Name, t.heap.Count())
	}
	var keys []storage.Key
	if len(t.pkCols) > 0 {
		keys = make([]storage.Key, len(rows))
	}
	for i, r := range rows {
		if err := t.checkRow(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if keys == nil {
			continue
		}
		key, err := t.keyOf(r)
		if err != nil {
			return err
		}
		if i > 0 && !keys[i-1].Less(key) {
			return fmt.Errorf("sqldb: %s: bulk load rows not in strictly ascending key order at row %d (%v then %v)",
				t.def.Name, i, keys[i-1], key)
		}
		keys[i] = key
	}
	var buf []byte
	var entries []storage.BulkEntry
	if keys != nil {
		entries = make([]storage.BulkEntry, len(rows))
	}
	for i, r := range rows {
		buf = sqltypes.EncodeRow(buf[:0], r)
		loc, err := t.heap.Append(buf)
		if err != nil {
			return err
		}
		if keys != nil {
			entries[i] = storage.BulkEntry{Key: keys[i], Loc: loc}
		}
	}
	if keys == nil {
		return nil
	}
	if err := t.idx.BulkLoad(entries); err != nil {
		return err
	}
	return t.buildSegment(rows, keys)
}

// segPath returns the table's segment file path.
func (t *Table) segPath() string {
	return filepath.Join(t.db.dir, t.def.Name+".seg")
}

// segEligible reports whether the table's schema allows a columnar segment:
// a primary key plus all-BIGINT/BIGINT[] columns.
func (t *Table) segEligible() bool {
	if len(t.pkCols) == 0 {
		return false
	}
	for _, c := range t.def.Columns {
		if !sqltypes.SegEncodable(c.Type) {
			return false
		}
	}
	return true
}

// buildSegment writes the table's columnar segment from the freshly
// bulk-loaded rows (already validated, in strictly ascending key order) and
// attaches it unless the handle has segments disabled. The file is written
// regardless of the DisableSegments flag so the on-disk image is a pure
// function of the data — the build-determinism tests compare whole
// directories across worker counts and configurations. Tables with an
// ineligible schema, or with NULL values (allowed by checkRow but not
// representable in the tag-free segment codec), simply skip the segment and
// stay on the heap path.
func (t *Table) buildSegment(rows []sqltypes.Row, keys []storage.Key) error {
	if !t.segEligible() {
		return nil
	}
	sd := storage.SegmentData{
		Cols:  make([]byte, len(t.def.Columns)),
		PKLen: len(t.pkCols),
		Keys:  keys,
		Lens:  make([]uint32, 0, len(rows)),
	}
	for i, c := range t.def.Columns {
		sd.Cols[i] = byte(c.Type)
	}
	for _, r := range rows {
		start := len(sd.Data)
		data, err := sqltypes.EncodeSegRow(sd.Data, r)
		if err != nil {
			return nil // NULL value somewhere: not segment-representable
		}
		sd.Data = data
		sd.Lens = append(sd.Lens, uint32(len(sd.Data)-start))
	}
	if err := storage.WriteSegmentFile(t.segPath(), t.db.dev, &t.db.clock, sd); err != nil {
		return err
	}
	if t.db.noSegments {
		return nil
	}
	return t.attachSegment(t.segPath())
}

// attachSegment opens the segment file at path and routes the scratch read
// paths through it, validating the stored layout against the table schema.
func (t *Table) attachSegment(path string) error {
	f, err := storage.OpenPagedFile(path, t.db.dev, &t.db.clock)
	if err != nil {
		return err
	}
	t.db.pool.Register(f)
	seg, err := storage.OpenSegment(f, t.db.pool)
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("sqldb: %s: %w", t.def.Name, err)
	}
	cols := seg.Cols()
	if len(cols) != len(t.def.Columns) || seg.PKLen() != len(t.pkCols) {
		_ = f.Close()
		return fmt.Errorf("sqldb: %s: segment layout (%d cols, pk %d) does not match schema (%d cols, pk %d)",
			t.def.Name, len(cols), seg.PKLen(), len(t.def.Columns), len(t.pkCols))
	}
	types := make([]sqltypes.Type, len(cols))
	for i, k := range cols {
		if sqltypes.Type(k) != t.def.Columns[i].Type {
			_ = f.Close()
			return fmt.Errorf("sqldb: %s: segment column %d is %s, schema says %s",
				t.def.Name, i, sqltypes.Type(k), t.def.Columns[i].Type)
		}
		types[i] = sqltypes.Type(k)
	}
	t.segFile, t.seg, t.segTypes = f, seg, types
	if t.db.vcache != nil {
		t.vcE = t.db.vcache.Register()
	}
	return nil
}

// dropSegment detaches and deletes the table's segment. Point writes
// (Insert/ReplaceByPK) call it so a segment can never serve stale rows; the
// engine's tables are bulk-load-then-read-only, so in practice this only
// fires for the metadata table, which is never segmented.
func (t *Table) dropSegment() error {
	if t.vcE != nil {
		// Invalidate the cached vectors first so no reader can observe the
		// cache serving rows the heap no longer agrees with.
		t.vcE.Drop()
		t.vcE = nil
	}
	if t.seg != nil {
		err := t.segFile.Close()
		t.segFile, t.seg, t.segTypes = nil, nil, nil
		if err != nil {
			return err
		}
	}
	if err := os.Remove(t.segPath()); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// materialize decodes the table's whole segment into column vectors for the
// resident vector cache: the key directory is shared with the segment (both
// immutable), scalar columns become one int64 per row, and array columns are
// flattened with a starts index. The data region is read directly from the
// device — one bulk pass that must not displace label pages from the buffer
// pool — and every row goes through the same segment codec the per-lookup
// path uses, so the vectors can never disagree with it.
// materialize decodes the whole segment into column vectors for the vector
// cache.
//
// hotpath:cold — runs once per residency, off the lookup path.
func (t *Table) materialize() (*vcache.Mat, error) {
	data, err := t.seg.LoadData()
	if err != nil {
		return nil, err
	}
	n := t.seg.NumRows()
	m := &vcache.Mat{Keys: t.seg.Keys(), Cols: make([]vcache.Col, len(t.segTypes))}
	for ci, typ := range t.segTypes {
		if typ == sqltypes.Int64 {
			m.Cols[ci].Ints = make([]int64, n)
		} else {
			m.Cols[ci].Starts = make([]int32, n+1)
		}
	}
	var (
		row   sqltypes.Row
		arena []int64
		off   int64
	)
	for i := 0; i < n; i++ {
		ln := int64(t.seg.RowLen(i))
		r, a, err := sqltypes.DecodeSegRowInto(data[off:off+ln], t.segTypes, row, arena[:0])
		if err != nil {
			return nil, fmt.Errorf("sqldb: %s: %w", t.def.Name, err)
		}
		row, arena = r, a
		off += ln
		for ci := range m.Cols {
			col := &m.Cols[ci]
			if col.Starts == nil {
				col.Ints[i] = r[ci].I
				continue
			}
			col.Ints = append(col.Ints, r[ci].A...)
			if len(col.Ints) > (1<<31)-1 {
				return nil, fmt.Errorf("sqldb: %s: column %d overflows the vector index", t.def.Name, ci)
			}
			col.Starts[i+1] = int32(len(col.Ints))
		}
	}
	m.Bytes = int64(len(m.Keys)) * 16
	for ci := range m.Cols {
		m.Bytes += int64(cap(m.Cols[ci].Ints))*8 + int64(cap(m.Cols[ci].Starts))*4
	}
	return m, nil
}

// vcacheMat returns the table's materialized vectors, building them on first
// touch, or nil when the cache declines the table (budget too small for it,
// or invalidated) and the segment tier should serve instead.
func (t *Table) vcacheMat() (*vcache.Mat, error) {
	if m := t.vcE.Acquire(); m != nil {
		return m, nil
	}
	// hotpath:cold — first-touch materialization: the bound-method closure
	// and the decode it drives are the cache-miss cost, paid once per
	// residency.
	return t.vcE.Materialize(t.materialize)
}

// vcacheRow assembles row i of m into s.Row. The value headers are written
// into the scratch, but the array payloads alias the cached vectors — no
// copy, no arena traffic. The views satisfy the ScratchTable retention
// contract trivially: the vectors are immutable and the garbage collector
// keeps them alive as long as any view exists, even across eviction.
func (t *Table) vcacheRow(m *vcache.Mat, i int, s *exec.RowScratch) sqltypes.Row {
	var r sqltypes.Row
	if cap(s.Row) >= len(m.Cols) {
		r = s.Row[:len(m.Cols)]
	} else {
		r = make(sqltypes.Row, len(m.Cols))
	}
	for ci := range m.Cols {
		col := &m.Cols[ci]
		if col.Starts == nil {
			r[ci] = sqltypes.NewInt(col.Ints[i])
		} else {
			r[ci] = sqltypes.NewIntArray(col.Array(i))
		}
	}
	s.Row = r
	return r
}

func (t *Table) keyOf(row sqltypes.Row) (storage.Key, error) {
	// Single-column keys leave the second component zero, matching
	// LookupPK's key construction.
	var key storage.Key
	for i, ci := range t.pkCols {
		v := row[ci]
		if v.T != sqltypes.Int64 {
			return key, fmt.Errorf("sqldb: %s: primary-key column %s is %s, not BIGINT",
				t.def.Name, t.def.Columns[ci].Name, v.T)
		}
		key[i] = v.I
	}
	return key, nil
}

// LookupPK fetches the row with the given primary-key values (one per PK
// column).
func (t *Table) LookupPK(keyVals []int64) (sqltypes.Row, bool, error) {
	if len(keyVals) != len(t.pkCols) {
		return nil, false, fmt.Errorf("sqldb: %s: lookup with %d key values, PK has %d columns",
			t.def.Name, len(keyVals), len(t.pkCols))
	}
	if len(t.pkCols) == 0 {
		return nil, false, fmt.Errorf("sqldb: %s has no primary key", t.def.Name)
	}
	t.lookups.Add(1)
	var key storage.Key
	copy(key[:], keyVals)
	loc, ok, err := t.idx.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	data, err := t.heap.Read(loc)
	if err != nil {
		return nil, false, err
	}
	row, err := sqltypes.DecodeRow(data)
	if err != nil {
		return nil, false, fmt.Errorf("sqldb: %s: %w", t.def.Name, err)
	}
	t.db.reg.Exec.RowsScanned.Add(1)
	return row, true, nil
}

// LookupPKScratch implements exec.ScratchTable: LookupPK decoding into s's
// reusable buffers. The returned row is valid until the next call with the
// same scratch; its array values live in s.Arena, which only ever grows, so
// they remain valid for the scratch's lifetime.
//
// hotpath — allocheck root: every fused point lookup funnels through here;
// all three tiers (vcache, segment, heap) must stay allocation-free.
func (t *Table) LookupPKScratch(keyVals []int64, s *exec.RowScratch) (sqltypes.Row, bool, error) {
	if len(keyVals) != len(t.pkCols) {
		return nil, false, fmt.Errorf("sqldb: %s: lookup with %d key values, PK has %d columns",
			t.def.Name, len(keyVals), len(t.pkCols))
	}
	if len(t.pkCols) == 0 {
		return nil, false, fmt.Errorf("sqldb: %s has no primary key", t.def.Name)
	}
	t.lookups.Add(1)
	var key storage.Key
	copy(key[:], keyVals)
	if t.vcE != nil {
		// Vector-cache tier: binary search the resident key directory and
		// serve slice views of the decoded columns — no pool, no payload
		// copy, no varint decode. Falls through to the segment tier when the
		// cache declines the table.
		m, err := t.vcacheMat()
		if err != nil {
			return nil, false, err
		}
		if m != nil {
			i, ok := m.Find(key)
			if !ok {
				return nil, false, nil
			}
			row := t.vcacheRow(m, i, s)
			t.db.reg.Exec.RowsScanned.Add(1)
			return row, true, nil
		}
	}
	if t.seg != nil {
		// Segment path: binary search the in-memory directory, copy the
		// payload's pages, decode tag-free. No header, B+tree or slotted-page
		// traffic — cold I/O is exactly the payload's pages.
		i, ok := t.seg.Find(key)
		if !ok {
			return nil, false, nil
		}
		data, err := t.seg.ReadRow(i, s.Buf)
		if err != nil {
			return nil, false, err
		}
		s.Buf = data
		row, arena, err := sqltypes.DecodeSegRowInto(data, t.segTypes, s.Row, s.Arena)
		if err != nil {
			return nil, false, fmt.Errorf("sqldb: %s: %w", t.def.Name, err)
		}
		s.Row, s.Arena = row, arena
		t.db.reg.Segment.Hits.Add(1)
		t.db.reg.Segment.ColumnsDecoded.Add(uint64(len(t.segTypes)))
		t.db.reg.Segment.BytesRead.Add(uint64(len(data)))
		t.db.reg.Exec.RowsScanned.Add(1)
		return row, true, nil
	}
	loc, ok, err := t.idx.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	data, err := t.heap.ReadInto(loc, s.Buf)
	if err != nil {
		return nil, false, err
	}
	s.Buf = data
	row, arena, err := sqltypes.DecodeRowInto(data, s.Row, s.Arena)
	if err != nil {
		return nil, false, fmt.Errorf("sqldb: %s: %w", t.def.Name, err)
	}
	s.Row, s.Arena = row, arena
	t.db.reg.Exec.RowsScanned.Add(1)
	return row, true, nil
}

// ScanScratch implements exec.ScratchTable: Scan reusing s's buffers —
// including the arena — for every row, so the callback must not retain the
// row or any of its array values.
//
// hotpath — allocheck root: fused full-table scans (target sets, condensed
// probes) iterate here; the per-row loop must stay allocation-free.
func (t *Table) ScanScratch(s *exec.RowScratch, fn func(sqltypes.Row) error) error {
	t.scans.Add(1)
	if len(t.pkCols) == 0 {
		// hotpath:cold — keyless tables never back a fused query; the heap
		// walk may build its callback closure.
		return t.heap.Scan(func(_ storage.Locator, data []byte) error {
			row, err := t.decodeHeapRow(data, s)
			if err != nil {
				return err
			}
			// Per-row atomic add: t is captured read-only, so the counter
			// costs no allocation even though this callback escapes.
			t.db.reg.Exec.RowsScanned.Add(1)
			return fn(row)
		})
	}
	if t.vcE != nil {
		// Vector-cache tier: iterate the resident vectors in key order,
		// assembling each row as uncopied views.
		m, err := t.vcacheMat()
		if err != nil {
			return err
		}
		if m != nil {
			n := len(m.Keys)
			for i := 0; i < n; i++ {
				if err := fn(t.vcacheRow(m, i, s)); err != nil {
					return err
				}
			}
			t.db.reg.Exec.RowsScanned.Add(uint64(n))
			return nil
		}
	}
	if t.seg != nil {
		// Segment path: the directory is already in key order, so iterating
		// it reproduces the cursor walk without touching the B+tree. Counters
		// accumulate locally and publish once at the end.
		rows, bytesRead := uint64(0), uint64(0)
		n := t.seg.NumRows()
		for i := 0; i < n; i++ {
			data, err := t.seg.ReadRow(i, s.Buf)
			if err != nil {
				return err
			}
			s.Buf = data
			row, arena, err := sqltypes.DecodeSegRowInto(data, t.segTypes, s.Row, s.Arena[:0])
			if err != nil {
				return fmt.Errorf("sqldb: %s: %w", t.def.Name, err)
			}
			s.Row, s.Arena = row, arena
			rows++
			bytesRead += uint64(len(data))
			if err := fn(row); err != nil {
				return err
			}
		}
		t.db.reg.Segment.Hits.Add(rows)
		t.db.reg.Segment.ColumnsDecoded.Add(rows * uint64(len(t.segTypes)))
		t.db.reg.Segment.BytesRead.Add(bytesRead)
		t.db.reg.Exec.RowsScanned.Add(rows)
		return nil
	}
	// hotpath:cold — cursor construction allocates once per scan; the loop
	// below is the hot part.
	cur, err := t.idx.SeekFirst()
	if err != nil {
		return err
	}
	defer cur.Close()
	// Rows surfaced by the cursor walk, counted locally (no closure, so the
	// counter stays on the stack) and published once on completion; a scan
	// abandoned by an error drops its partial count.
	rows := uint64(0)
	for cur.Valid() {
		data, err := t.heap.ReadInto(cur.Locator(), s.Buf)
		if err != nil {
			return err
		}
		s.Buf = data
		row, err := t.decodeHeapRow(data, s)
		if err != nil {
			return err
		}
		rows++
		if err := fn(row); err != nil {
			return err
		}
		if err := cur.Next(); err != nil {
			return err
		}
	}
	t.db.reg.Exec.RowsScanned.Add(rows)
	return nil
}

// decodeHeapRow decodes one tagged heap row into s's reusable buffers,
// resetting the arena — scan semantics: each row replaces the last. A method
// rather than a closure so the scan loop stays allocation-free.
func (t *Table) decodeHeapRow(data []byte, s *exec.RowScratch) (sqltypes.Row, error) {
	row, arena, err := sqltypes.DecodeRowInto(data, s.Row, s.Arena[:0])
	if err != nil {
		return nil, err
	}
	s.Row, s.Arena = row, arena
	return row, nil
}

// Scan calls fn for every row. Tables with a primary key iterate in key
// order via the index; keyless tables scan the heap in insertion order.
func (t *Table) Scan(fn func(sqltypes.Row) error) error {
	t.scans.Add(1)
	if len(t.pkCols) == 0 {
		return t.heap.Scan(func(_ storage.Locator, data []byte) error {
			row, err := sqltypes.DecodeRow(data)
			if err != nil {
				return err
			}
			t.db.reg.Exec.RowsScanned.Add(1)
			return fn(row)
		})
	}
	cur, err := t.idx.SeekFirst()
	if err != nil {
		return err
	}
	defer cur.Close()
	rows := uint64(0)
	for cur.Valid() {
		data, err := t.heap.Read(cur.Locator())
		if err != nil {
			return err
		}
		row, err := sqltypes.DecodeRow(data)
		if err != nil {
			return err
		}
		rows++
		if err := fn(row); err != nil {
			return err
		}
		if err := cur.Next(); err != nil {
			return err
		}
	}
	t.db.reg.Exec.RowsScanned.Add(rows)
	return nil
}
