package sql

// Expr is any scalar (or, for Unnest, set-returning) expression.
type Expr interface{ isExpr() }

// ColumnRef names a column, optionally qualified: Table may be empty.
type ColumnRef struct {
	Table  string
	Column string
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a decimal literal.
type FloatLit struct{ V float64 }

// StringLit is a string literal.
type StringLit struct{ V string }

// NullLit is the NULL keyword.
type NullLit struct{}

// Param is a positional parameter $N (1-based).
type Param struct{ N int }

// BinaryOp applies Op ("=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/",
// "%", "AND", "OR") to two operands.
type BinaryOp struct {
	Op   string
	L, R Expr
}

// UnaryOp applies Op ("-", "NOT") to one operand.
type UnaryOp struct {
	Op string
	E  Expr
}

// FuncCall is a function or aggregate application. Star marks COUNT(*).
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
	Star bool
}

// ArrayIndex is a PostgreSQL-style 1-based array subscript: A[I].
type ArrayIndex struct {
	A, I Expr
}

// ArraySlice is a 1-based inclusive slice: A[Lo:Hi].
type ArraySlice struct {
	A, Lo, Hi Expr
}

// CaseExpr is CASE WHEN cond THEN value ... [ELSE value] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // nil means ELSE NULL
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond, Then Expr
}

func (*CaseExpr) isExpr()   {}
func (*ColumnRef) isExpr()  {}
func (*IntLit) isExpr()     {}
func (*FloatLit) isExpr()   {}
func (*StringLit) isExpr()  {}
func (*NullLit) isExpr()    {}
func (*Param) isExpr()      {}
func (*BinaryOp) isExpr()   {}
func (*UnaryOp) isExpr()    {}
func (*FuncCall) isExpr()   {}
func (*ArrayIndex) isExpr() {}
func (*ArraySlice) isExpr() {}

// SelectItem is one element of the SELECT list. Star by itself is `*`;
// Star with Table set is `tbl.*`.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string
}

// FromItem is one element of the FROM list: either a named table (CTE or
// base table) or a derived subquery; Alias may rename it.
type FromItem struct {
	Table    string
	Subquery *Select
	Alias    string
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectCore is a single SELECT ... FROM ... WHERE ... GROUP BY ... HAVING
// block.
type SelectCore struct {
	Items   []SelectItem
	From    []FromItem
	Where   Expr
	GroupBy []Expr
	Having  Expr
}

// Select is a full select statement: either a simple core or a UNION chain
// of arms (each arm a full Select, since PostgreSQL allows parenthesized
// arms with their own ORDER BY / LIMIT — the form the paper's Codes 3 and 4
// use), plus an optional trailing ORDER BY / LIMIT.
type Select struct {
	With []CTE
	// Exactly one of Core / Arms is set.
	Core *SelectCore
	Arms []*Select
	// All is parallel to Arms[1:]: All[i] reports whether the i-th UNION
	// keyword was UNION ALL.
	All     []bool
	OrderBy []OrderItem
	Limit   Expr
}

// CTE is one WITH element: name AS (select).
type CTE struct {
	Name  string
	Query *Select
}
