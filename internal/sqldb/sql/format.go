package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a parsed select back to SQL text. The output parses to an
// equivalent tree (Parse(Format(s)) ≡ s up to parenthesization), which the
// tests verify by round-tripping; it is used for plan debugging and error
// messages.
func Format(s *Select) string {
	var b strings.Builder
	formatSelect(&b, s)
	return b.String()
}

func formatSelect(b *strings.Builder, s *Select) {
	if len(s.With) > 0 {
		b.WriteString("WITH ")
		for i, cte := range s.With {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(cte.Name)
			b.WriteString(" AS (")
			formatSelect(b, cte.Query)
			b.WriteString(")")
		}
		b.WriteString(" ")
	}
	if s.Core != nil {
		formatCore(b, s.Core)
	} else {
		for i, arm := range s.Arms {
			if i > 0 {
				b.WriteString(" UNION ")
				if s.All[i-1] {
					b.WriteString("ALL ")
				}
			}
			b.WriteString("(")
			formatSelect(b, arm)
			b.WriteString(")")
		}
	}
	for i, oi := range s.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(FormatExpr(oi.Expr))
		if oi.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(FormatExpr(s.Limit))
	}
}

func formatCore(b *strings.Builder, c *SelectCore) {
	b.WriteString("SELECT ")
	for i, it := range c.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Table != "":
			b.WriteString(it.Table)
			b.WriteString(".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(FormatExpr(it.Expr))
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(it.Alias)
			}
		}
	}
	for i, f := range c.From {
		if i == 0 {
			b.WriteString(" FROM ")
		} else {
			b.WriteString(", ")
		}
		if f.Subquery != nil {
			b.WriteString("(")
			formatSelect(b, f.Subquery)
			b.WriteString(")")
		} else {
			b.WriteString(f.Table)
		}
		if f.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(f.Alias)
		}
	}
	if c.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(FormatExpr(c.Where))
	}
	for i, g := range c.GroupBy {
		if i == 0 {
			b.WriteString(" GROUP BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(FormatExpr(g))
	}
	if c.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(FormatExpr(c.Having))
	}
}

// FormatExpr renders one expression. Binary operations are fully
// parenthesized, so precedence never needs reconstruction.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Column
		}
		return x.Column
	case *IntLit:
		// Negative literals render as explicit negations so the output
		// reparses to a stable form (the lexer has no signed numbers).
		if x.V < 0 {
			return "(- " + strconv.FormatInt(-x.V, 10) + ")"
		}
		return strconv.FormatInt(x.V, 10)
	case *FloatLit:
		s := strconv.FormatFloat(x.V, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		if x.V < 0 {
			return "(- " + strings.TrimPrefix(s, "-") + ")"
		}
		return s
	case *StringLit:
		return "'" + strings.ReplaceAll(x.V, "'", "''") + "'"
	case *NullLit:
		return "NULL"
	case *Param:
		return "$" + strconv.Itoa(x.N)
	case *BinaryOp:
		return "(" + FormatExpr(x.L) + " " + x.Op + " " + FormatExpr(x.R) + ")"
	case *UnaryOp:
		if x.Op == "NOT" {
			return "(NOT " + FormatExpr(x.E) + ")"
		}
		// The space prevents "--" (negation of a negative literal) from
		// lexing as a line comment.
		return "(" + x.Op + " " + FormatExpr(x.E) + ")"
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for _, wh := range x.Whens {
			b.WriteString(" WHEN ")
			b.WriteString(FormatExpr(wh.Cond))
			b.WriteString(" THEN ")
			b.WriteString(FormatExpr(wh.Then))
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			b.WriteString(FormatExpr(x.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *ArrayIndex:
		return FormatExpr(x.A) + "[" + FormatExpr(x.I) + "]"
	case *ArraySlice:
		return FormatExpr(x.A) + "[" + FormatExpr(x.Lo) + ":" + FormatExpr(x.Hi) + "]"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
