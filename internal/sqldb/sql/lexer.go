// Package sql contains the lexer, AST and recursive-descent parser for the
// SQL dialect of the embedded PTLDB database engine. The dialect covers the
// constructs used by the paper's query Codes 1–4 (and the table builders):
// SELECT with CTEs (WITH), derived tables, comma joins, UNNEST over array
// columns and array slices, aggregates, GROUP BY, ORDER BY with ASC/DESC,
// LIMIT, UNION [ALL] and positional parameters ($1, $2, …).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind uint8

const (
	// TokEOF terminates the token stream.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or keyword (keywords are matched
	// case-insensitively by the parser).
	TokIdent
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal, unescaped.
	TokString
	// TokParam is a positional parameter; Num holds its 1-based index.
	TokParam
	// TokOp is an operator or punctuation symbol.
	TokOp
)

// Token is one lexical element.
type Token struct {
	Kind TokenKind
	Text string // identifier, operator symbol or literal text
	Num  int    // parameter index for TokParam
	Pos  int    // byte offset in the input, for error messages
}

// Lex tokenizes a SQL string. Comments (-- to end of line, /* ... */) are
// skipped.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated comment at offset %d", i)
			}
			i += 2 + end + 2
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[start:i], Pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '$':
			start := i
			i++
			num := 0
			for i < n && src[i] >= '0' && src[i] <= '9' {
				num = num*10 + int(src[i]-'0')
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("sql: bare $ at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokParam, Num: num, Pos: start})
		default:
			start := i
			// Multi-byte operators first.
			for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
					i += len(op)
					goto next
				}
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', '[', ']', ':', ';':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		next:
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
