package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement (optionally terminated by a semicolon).
func Parse(src string) (*Select, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if p.peek().Kind != TokEOF {
		return nil, p.errf("trailing input")
	}
	return sel, nil
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	where := t.Text
	if t.Kind == TokEOF {
		where = "end of input"
	}
	return fmt.Errorf("sql: %s near %q (offset %d)", fmt.Sprintf(format, args...), where, t.Pos)
}

// acceptKw consumes an identifier token matching kw case-insensitively.
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.Kind == TokIdent && strings.EqualFold(t.Text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

// peekKw reports whether the next token is the given keyword.
func (p *parser) peekKw(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

// parseSelect parses [WITH ...] armChain [ORDER BY ...] [LIMIT ...].
func (p *parser) parseSelect() (*Select, error) {
	sel := &Select{}
	if p.acceptKw("WITH") {
		for {
			name, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			sel.With = append(sel.With, CTE{Name: name, Query: q})
			if !p.acceptOp(",") {
				break
			}
		}
	}

	first, err := p.parseArm()
	if err != nil {
		return nil, err
	}
	arms := []*Select{first}
	var all []bool
	for p.acceptKw("UNION") {
		isAll := p.acceptKw("ALL")
		arm, err := p.parseArm()
		if err != nil {
			return nil, err
		}
		arms = append(arms, arm)
		all = append(all, isAll)
	}
	if len(arms) == 1 && first.With == nil && first.Core != nil &&
		first.OrderBy == nil && first.Limit == nil {
		sel.Core = first.Core
	} else if len(arms) == 1 && sel.With == nil {
		// A single parenthesized arm: unwrap, hoisting nothing.
		*sel = *first
	} else {
		sel.Arms = arms
		sel.All = all
	}

	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	return sel, nil
}

// parseArm parses one UNION arm: a bare SELECT core or a parenthesized full
// select.
func (p *parser) parseArm() (*Select, error) {
	if p.acceptOp("(") {
		s, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	core, err := p.parseCore()
	if err != nil {
		return nil, err
	}
	return &Select{Core: core}, nil
}

func (p *parser) parseCore() (*SelectCore, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	p.acceptKw("DISTINCT") // treated via GROUP BY by callers; accepted for friendliness
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			core.From = append(core.From, fi)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// tbl.* form: identifier '.' '*'.
	if p.peek().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next()
		p.next()
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent && !isReserved(t.Text) {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	var fi FromItem
	if p.acceptOp("(") {
		q, err := p.parseSelect()
		if err != nil {
			return fi, err
		}
		if err := p.expectOp(")"); err != nil {
			return fi, err
		}
		fi.Subquery = q
	} else {
		name, err := p.parseIdent()
		if err != nil {
			return fi, err
		}
		fi.Table = name
	}
	if p.acceptKw("AS") {
		a, err := p.parseIdent()
		if err != nil {
			return fi, err
		}
		fi.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent && !isReserved(t.Text) {
		fi.Alias = p.next().Text
	}
	if fi.Subquery != nil && fi.Alias == "" {
		return fi, p.errf("derived table requires an alias")
	}
	return fi, nil
}

func (p *parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent || isReserved(t.Text) {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.Text, nil
}

// isReserved lists keywords that terminate implicit aliases and identifier
// positions.
func isReserved(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "UNION",
		"ALL", "AS", "AND", "OR", "NOT", "ASC", "DESC", "WITH", "ON", "NULL",
		"DISTINCT", "HAVING", "JOIN", "INNER", "LEFT", "RIGHT", "CROSS", "IN",
		"BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "IS":
		return true
	}
	return false
}

// --- expressions -----------------------------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		// expr IN (a, b, ...) desugars to a disjunction of equalities;
		// expr BETWEEN a AND b to a conjunction of bounds.
		if p.acceptKw("IN") {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var alt Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				eq := Expr(&BinaryOp{Op: "=", L: l, R: e})
				if alt == nil {
					alt = eq
				} else {
					alt = &BinaryOp{Op: "OR", L: alt, R: eq}
				}
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = alt
			continue
		}
		if p.acceptKw("BETWEEN") {
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryOp{Op: "AND",
				L: &BinaryOp{Op: ">=", L: l, R: lo},
				R: &BinaryOp{Op: "<=", L: l, R: hi}}
			continue
		}
		t := p.peek()
		if t.Kind != TokOp {
			return l, nil
		}
		switch t.Text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryOp{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryOp{Op: "+", L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryOp{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryOp{Op: "*", L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryOp{Op: "/", L: l, R: r}
		case p.acceptOp("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryOp{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "-", E: e}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary followed by array subscripts/slices.
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("[") {
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.acceptOp(":") {
			hi, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			e = &ArraySlice{A: e, Lo: lo, Hi: hi}
		} else {
			e = &ArrayIndex{A: e, I: lo}
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.Contains(t.Text, ".") {
			v, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &FloatLit{V: v}, nil
		}
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &IntLit{V: v}, nil
	case TokString:
		p.pos++
		return &StringLit{V: t.Text}, nil
	case TokParam:
		p.pos++
		if t.Num < 1 {
			return nil, p.errf("parameter index must be >= 1")
		}
		return &Param{N: t.Num}, nil
	case TokOp:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected token")
	case TokIdent:
		if strings.EqualFold(t.Text, "NULL") {
			p.pos++
			return &NullLit{}, nil
		}
		if strings.EqualFold(t.Text, "CASE") {
			p.pos++
			ce := &CaseExpr{}
			for p.acceptKw("WHEN") {
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("THEN"); err != nil {
					return nil, err
				}
				then, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Then: then})
			}
			if len(ce.Whens) == 0 {
				return nil, p.errf("CASE requires at least one WHEN arm")
			}
			if p.acceptKw("ELSE") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ce.Else = e
			}
			if err := p.expectKw("END"); err != nil {
				return nil, err
			}
			return ce, nil
		}
		if isReserved(t.Text) {
			return nil, p.errf("unexpected keyword")
		}
		p.pos++
		// Function call?
		if p.acceptOp("(") {
			fc := &FuncCall{Name: strings.ToUpper(t.Text)}
			if p.acceptOp("*") {
				fc.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	default:
		return nil, p.errf("unexpected token")
	}
}
