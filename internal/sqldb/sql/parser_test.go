package sql

import (
	"testing"
)

func mustParse(t *testing.T, src string) *Select {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', $2 -- comment\n/* multi\nline */ <= 3.5;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokIdent, TokIdent, TokOp, TokIdent, TokOp, TokString, TokOp, TokParam, TokOp, TokNumber, TokOp, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %d, want %d (%+v)", i, toks[i].Kind, k, toks[i])
		}
	}
	if toks[5].Text != "it's" {
		t.Errorf("string literal = %q", toks[5].Text)
	}
	if toks[7].Num != 2 {
		t.Errorf("param index = %d", toks[7].Num)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "/* unterminated", "$", "a ~ b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT v, hubs FROM lout WHERE v = $1")
	if s.Core == nil || len(s.Core.Items) != 2 || len(s.Core.From) != 1 {
		t.Fatalf("unexpected structure: %+v", s)
	}
	if s.Core.From[0].Table != "lout" {
		t.Errorf("table = %q", s.Core.From[0].Table)
	}
	w, ok := s.Core.Where.(*BinaryOp)
	if !ok || w.Op != "=" {
		t.Fatalf("where = %#v", s.Core.Where)
	}
	if _, ok := w.R.(*Param); !ok {
		t.Errorf("rhs = %#v", w.R)
	}
}

func TestParseAliases(t *testing.T) {
	s := mustParse(t, "SELECT v AS a, UNNEST(hubs) hub FROM lout l1")
	if s.Core.Items[0].Alias != "a" || s.Core.Items[1].Alias != "hub" {
		t.Errorf("aliases = %q, %q", s.Core.Items[0].Alias, s.Core.Items[1].Alias)
	}
	if s.Core.From[0].Alias != "l1" {
		t.Errorf("from alias = %q", s.Core.From[0].Alias)
	}
	fc, ok := s.Core.Items[1].Expr.(*FuncCall)
	if !ok || fc.Name != "UNNEST" {
		t.Errorf("func = %#v", s.Core.Items[1].Expr)
	}
}

func TestParseStars(t *testing.T) {
	s := mustParse(t, "SELECT *, n1bb.*, n1.ta AS n1_ta FROM n1bb, n1")
	if !s.Core.Items[0].Star || s.Core.Items[0].Table != "" {
		t.Errorf("item 0 = %+v", s.Core.Items[0])
	}
	if !s.Core.Items[1].Star || s.Core.Items[1].Table != "n1bb" {
		t.Errorf("item 1 = %+v", s.Core.Items[1])
	}
}

func TestParseArraySliceAndIndex(t *testing.T) {
	s := mustParse(t, "SELECT UNNEST(vs[1:$3]) AS v2, tas[2] FROM t")
	fc := s.Core.Items[0].Expr.(*FuncCall)
	sl, ok := fc.Args[0].(*ArraySlice)
	if !ok {
		t.Fatalf("arg = %#v", fc.Args[0])
	}
	if _, ok := sl.Lo.(*IntLit); !ok {
		t.Errorf("slice lo = %#v", sl.Lo)
	}
	if _, ok := sl.Hi.(*Param); !ok {
		t.Errorf("slice hi = %#v", sl.Hi)
	}
	if _, ok := s.Core.Items[1].Expr.(*ArrayIndex); !ok {
		t.Errorf("item 1 = %#v", s.Core.Items[1].Expr)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT 1 WHERE a = 1 AND b >= 2 OR NOT c < 3 + 4 * 5")
	or, ok := s.Core.Where.(*BinaryOp)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %#v", s.Core.Where)
	}
	and := or.L.(*BinaryOp)
	if and.Op != "AND" {
		t.Errorf("left = %#v", or.L)
	}
	not := or.R.(*UnaryOp)
	if not.Op != "NOT" {
		t.Fatalf("right = %#v", or.R)
	}
	lt := not.E.(*BinaryOp)
	if lt.Op != "<" {
		t.Fatalf("not operand = %#v", not.E)
	}
	plus := lt.R.(*BinaryOp)
	if plus.Op != "+" {
		t.Fatalf("rhs = %#v", lt.R)
	}
	if mul := plus.R.(*BinaryOp); mul.Op != "*" {
		t.Fatalf("mul = %#v", plus.R)
	}
}

func TestParseCTEsAndDerived(t *testing.T) {
	s := mustParse(t, `
WITH outp AS (SELECT UNNEST(hubs) AS hub FROM lout WHERE v=$1),
     inp AS (SELECT UNNEST(hubs) AS hub FROM lin WHERE v=$2)
SELECT MIN(inp.ta) FROM outp, inp WHERE outp.hub = inp.hub`)
	if len(s.With) != 2 || s.With[0].Name != "outp" || s.With[1].Name != "inp" {
		t.Fatalf("ctes = %+v", s.With)
	}
	if len(s.Core.From) != 2 {
		t.Fatalf("from = %+v", s.Core.From)
	}
}

func TestParseUnionWithInnerOrderLimit(t *testing.T) {
	s := mustParse(t, `
SELECT v2, MIN(ta) FROM (
  (SELECT v2, MIN(ta) AS ta FROM a GROUP BY v2 ORDER BY MIN(ta), v2 LIMIT $4)
  UNION
  (SELECT v2, MIN(ta) AS ta FROM b GROUP BY v2 ORDER BY MIN(ta), v2 LIMIT $4)
) S53
GROUP BY v2 ORDER BY MIN(ta), v2 LIMIT $4`)
	sub := s.Core.From[0].Subquery
	if sub == nil || len(sub.Arms) != 2 {
		t.Fatalf("subquery arms = %+v", sub)
	}
	if sub.Arms[0].OrderBy == nil || sub.Arms[0].Limit == nil {
		t.Errorf("inner arm lost its ORDER BY/LIMIT: %+v", sub.Arms[0])
	}
	if len(sub.All) != 1 || sub.All[0] {
		t.Errorf("UNION wrongly parsed as UNION ALL")
	}
	if s.OrderBy == nil || s.Limit == nil {
		t.Errorf("outer ORDER BY/LIMIT missing")
	}
	if s.Core.From[0].Alias != "S53" {
		t.Errorf("derived alias = %q", s.Core.From[0].Alias)
	}
}

func TestParseUnionAll(t *testing.T) {
	s := mustParse(t, "SELECT 1 UNION ALL SELECT 2 UNION SELECT 3")
	if len(s.Arms) != 3 || len(s.All) != 2 {
		t.Fatalf("arms = %d, all = %v", len(s.Arms), s.All)
	}
	if !s.All[0] || s.All[1] {
		t.Errorf("ALL flags = %v", s.All)
	}
}

func TestParseOrderDesc(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t ORDER BY MAX(b) DESC, a ASC")
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order = %+v", s.OrderBy)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM (SELECT 1)", // derived table without alias
		"SELECT a WHERE",
		"WITH x AS SELECT 1 SELECT 2",      // missing parens
		"SELECT a FROM t ORDER",            // incomplete
		"SELECT a FROM t; SELECT b FROM t", // trailing statement
		"SELECT f(a FROM t",                // unbalanced
		"SELECT a[1 FROM t",                // unbalanced bracket
		"SELECT $0",                        // param index 0
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// TestParsePaperCode1 parses the paper's Code 1 (EA variant) verbatim except
// for parameter placeholders.
func TestParsePaperCode1(t *testing.T) {
	s := mustParse(t, `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub,
          UNNEST(tds) AS td,
          UNNEST(tas) AS ta
   FROM lout WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub,
          UNNEST(tds) AS td,
          UNNEST(tas) AS ta
   FROM lin WHERE v=$2)
SELECT MIN(inp.ta)
FROM outp,
     inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td
  AND outp.td>=$3`)
	if len(s.With) != 2 || s.Core == nil {
		t.Fatalf("structure: %+v", s)
	}
}

// TestParsePaperCode3 parses the paper's Code 3 (EA-kNN variant) verbatim.
func TestParsePaperCode3(t *testing.T) {
	s := mustParse(t, `
WITH n1 AS
  (SELECT v, hub, td, ta
   FROM
     (SELECT v,
             UNNEST(hubs) AS hub,
             UNNEST(tds) AS td,
             UNNEST(tas) AS ta
      FROM lout
      WHERE v=$1) n1a
   WHERE td >=$2),
    n1b AS
  (SELECT n1bb.*,
          n1.ta AS n1_ta,
          n1.td AS n1_td
   FROM knn_ea n1bb,n1
   WHERE n1bb.hub=n1.hub
     AND n1bb.dephour=FLOOR(n1.ta/3600))
SELECT v2,MIN(ta)
FROM (
      (SELECT v2, MIN(n3.ta) AS ta
       FROM
          (SELECT
          UNNEST(tas[1:$3]) AS ta,
          UNNEST(vs[1:$3]) AS v2
          FROM n1b) n3
       GROUP BY v2
       ORDER BY MIN(n3.ta), v2
       LIMIT $3
       )
    UNION
      (SELECT n2.v2,MIN(n2.ta) AS ta
       FROM
          (SELECT n1_ta,
                  UNNEST(tds_exp) AS td,
                  UNNEST(vs_exp) AS v2,
                  UNNEST(tas_exp) AS ta
          FROM n1b) n2
       WHERE n1_ta <= n2.td
       GROUP BY n2.v2
       ORDER BY MIN(n2.ta),v2
       LIMIT $3
       )) S53
GROUP BY v2
ORDER BY MIN(ta), v2
LIMIT $3;`)
	if len(s.With) != 2 {
		t.Fatalf("ctes: %d", len(s.With))
	}
	if s.With[1].Query.Core.Items[0].Table != "n1bb" || !s.With[1].Query.Core.Items[0].Star {
		t.Errorf("n1bb.* not parsed: %+v", s.With[1].Query.Core.Items[0])
	}
	if s.Core.From[0].Subquery == nil || len(s.Core.From[0].Subquery.Arms) != 2 {
		t.Fatalf("union structure: %+v", s.Core.From[0])
	}
}
