package sql

import "testing"

func TestParseStatementCreateTable(t *testing.T) {
	s, err := ParseStatement(`
CREATE TABLE lout (v BIGINT, hubs BIGINT[], tds INT[], score DOUBLE PRECISION,
                   f FLOAT, r REAL, name TEXT, tag VARCHAR(32), PRIMARY KEY (v))`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := s.(*CreateTable)
	if !ok {
		t.Fatalf("statement = %T", s)
	}
	if ct.Name != "lout" || len(ct.Columns) != 8 || len(ct.PK) != 1 || ct.PK[0] != "v" {
		t.Fatalf("create = %+v", ct)
	}
	wantTypes := []ColumnType{ColBigint, ColBigintArray, ColBigintArray, ColDouble,
		ColDouble, ColDouble, ColText, ColText}
	for i, w := range wantTypes {
		if ct.Columns[i].Type != w {
			t.Errorf("column %d type = %d, want %d", i, ct.Columns[i].Type, w)
		}
	}
	// Composite PK.
	s, err = ParseStatement("CREATE TABLE k (a INT, b INTEGER, PRIMARY KEY (a, b))")
	if err != nil {
		t.Fatal(err)
	}
	if ct := s.(*CreateTable); len(ct.PK) != 2 {
		t.Fatalf("composite PK = %+v", ct.PK)
	}
}

func TestParseStatementInsertDrop(t *testing.T) {
	s, err := ParseStatement("INSERT INTO t VALUES (1, 'a', $1), (2, 'b', NULL);")
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*Insert)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	s, err = ParseStatement("DROP TABLE old")
	if err != nil {
		t.Fatal(err)
	}
	if d := s.(*DropTable); d.Name != "old" {
		t.Fatalf("drop = %+v", d)
	}
	// A SELECT routes through ParseStatement too.
	s, err = ParseStatement("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Select); !ok {
		t.Fatalf("statement = %T", s)
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		"CREATE TABLE",                      // missing name
		"CREATE TABLE t",                    // missing columns
		"CREATE TABLE t (a TIMESTAMP)",      // unknown type
		"CREATE TABLE t (a BIGINT",          // unbalanced
		"CREATE TABLE t (a BIGINT[)",        // broken array
		"INSERT t VALUES (1)",               // missing INTO
		"INSERT INTO t (1)",                 // missing VALUES
		"INSERT INTO t VALUES 1",            // missing parens
		"DROP t",                            // missing TABLE
		"CREATE TABLE t (a BIGINT) garbage", // trailing input
		"INSERT INTO t VALUES (1,)",         // trailing comma
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded", src)
		}
	}
}
