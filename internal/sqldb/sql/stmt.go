package sql

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement: *Select, *CreateTable, *Insert or
// *DropTable.
type Statement interface{ isStatement() }

func (*Select) isStatement()      {}
func (*CreateTable) isStatement() {}
func (*Insert) isStatement()      {}
func (*DropTable) isStatement()   {}

// ColumnType is the declared type of a column in CREATE TABLE.
type ColumnType uint8

// Column type names accepted by the parser (with common synonyms).
const (
	ColBigint ColumnType = iota
	ColDouble
	ColText
	ColBigintArray
)

// CreateTable is CREATE TABLE name (col TYPE..., [PRIMARY KEY (a[, b])]).
type CreateTable struct {
	Name    string
	Columns []ColumnSpec
	PK      []string
}

// ColumnSpec is one column declaration.
type ColumnSpec struct {
	Name string
	Type ColumnType
}

// Insert is INSERT INTO name VALUES (...), (...). Each value expression must
// be row-independent (literals, parameters, arithmetic over them).
type Insert struct {
	Table string
	Rows  [][]Expr
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

// ParseStatement parses one statement of any supported kind.
func ParseStatement(src string) (Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var stmt Statement
	switch {
	case p.peekKw("CREATE"):
		stmt, err = p.parseCreateTable()
	case p.peekKw("INSERT"):
		stmt, err = p.parseInsert()
	case p.peekKw("DROP"):
		stmt, err = p.parseDropTable()
	default:
		stmt, err = p.parseSelect()
	}
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if p.peek().Kind != TokEOF {
		return nil, p.errf("trailing input")
	}
	return stmt, nil
}

func (p *parser) parseCreateTable() (*CreateTable, error) {
	p.acceptKw("CREATE")
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.acceptKw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				ct.PK = append(ct.PK, col)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			typ, err := p.parseColumnType()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, ColumnSpec{Name: col, Type: typ})
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

// parseColumnType accepts the engine's types plus common synonyms:
// BIGINT/INT/INTEGER[ []], DOUBLE [PRECISION]/FLOAT/REAL, TEXT/VARCHAR.
func (p *parser) parseColumnType() (ColumnType, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return 0, p.errf("expected column type")
	}
	p.pos++
	base := strings.ToUpper(t.Text)
	switch base {
	case "BIGINT", "INT", "INTEGER":
		if p.acceptOp("[") {
			if err := p.expectOp("]"); err != nil {
				return 0, err
			}
			return ColBigintArray, nil
		}
		return ColBigint, nil
	case "DOUBLE":
		p.acceptKw("PRECISION")
		return ColDouble, nil
	case "FLOAT", "REAL":
		return ColDouble, nil
	case "TEXT", "VARCHAR":
		// Optional length, ignored.
		if p.acceptOp("(") {
			if p.peek().Kind == TokNumber {
				p.pos++
			}
			if err := p.expectOp(")"); err != nil {
				return 0, err
			}
		}
		return ColText, nil
	default:
		return 0, fmt.Errorf("sql: unknown column type %q", t.Text)
	}
}

func (p *parser) parseInsert() (*Insert, error) {
	p.acceptKw("INSERT")
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseDropTable() (*DropTable, error) {
	p.acceptKw("DROP")
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}
