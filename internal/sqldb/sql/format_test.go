package sql

import (
	"math/rand"
	"reflect"
	"testing"
)

// normalizeSelect canonicalizes a parse tree for round-trip comparison:
// Format fully parenthesizes arms, so a reparsed simple select may come back
// as a one-arm compound; both forms are semantically identical.
func normalizeSelect(s *Select) *Select {
	if len(s.Arms) == 1 && s.Arms[0].With == nil && s.Arms[0].OrderBy == nil && s.Arms[0].Limit == nil {
		inner := s.Arms[0]
		out := *s
		out.Arms, out.All = nil, nil
		out.Core = inner.Core
		if inner.Arms != nil {
			out.Arms, out.All = inner.Arms, inner.All
		}
		s = &out
	}
	return s
}

func TestFormatRoundTripFixed(t *testing.T) {
	queries := []string{
		"SELECT 1",
		"SELECT a, b AS x FROM t WHERE a >= 3 AND b < 4 OR NOT a = b",
		"SELECT t.*, u.c FROM t, (SELECT 1 AS c) AS u",
		"WITH x AS (SELECT 1 AS v) SELECT v FROM x ORDER BY v DESC LIMIT 3",
		"SELECT UNNEST(hubs[1:$2]) AS h FROM lout WHERE v = $1",
		"SELECT MIN(a), COUNT(*), SUM(a + 1) FROM t GROUP BY b ORDER BY MIN(a), b",
		"(SELECT a FROM t LIMIT 1) UNION ALL (SELECT a FROM u) ORDER BY a",
		"SELECT 'it''s', NULL, 2.5, -3 FROM t",
		"SELECT FLOOR(ta / 3600) FROM t WHERE x <> 1",
	}
	for _, q := range queries {
		first, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		text := Format(first)
		second, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", text, q, err)
		}
		if !reflect.DeepEqual(normalizeSelect(first), normalizeSelect(second)) {
			t.Errorf("round trip changed the tree:\n  in:  %s\n  out: %s", q, text)
		}
		// Format must be a fixpoint after one round.
		if third := Format(second); third != text {
			t.Errorf("Format not stable: %q -> %q", text, third)
		}
	}
}

// randomExpr generates a random expression tree for the round-trip property.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return &IntLit{V: rng.Int63n(1000) - 500}
		case 1:
			return &ColumnRef{Column: string(rune('a' + rng.Intn(4)))}
		case 2:
			return &ColumnRef{Table: "t", Column: string(rune('a' + rng.Intn(4)))}
		case 3:
			return &Param{N: 1 + rng.Intn(3)}
		default:
			return &NullLit{}
		}
	}
	switch rng.Intn(6) {
	case 0, 1:
		ops := []string{"+", "-", "*", "=", "<", "<=", ">", ">=", "<>", "AND", "OR"}
		return &BinaryOp{Op: ops[rng.Intn(len(ops))],
			L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 2:
		if rng.Intn(2) == 0 {
			return &UnaryOp{Op: "NOT", E: randomExpr(rng, depth-1)}
		}
		return &UnaryOp{Op: "-", E: randomExpr(rng, depth-1)}
	case 3:
		return &FuncCall{Name: "FLOOR", Args: []Expr{randomExpr(rng, depth-1)}}
	case 4:
		return &ArrayIndex{A: &ColumnRef{Column: "xs"}, I: randomExpr(rng, depth-1)}
	default:
		return &ArraySlice{A: &ColumnRef{Column: "xs"},
			Lo: randomExpr(rng, depth-1), Hi: randomExpr(rng, depth-1)}
	}
}

// TestFormatExprRoundTripRandom is the property test: for random expression
// trees, Format -> Parse -> Format is the identity.
func TestFormatExprRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 500; i++ {
		e := randomExpr(rng, 1+rng.Intn(4))
		text := "SELECT " + FormatExpr(e)
		sel, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		got := FormatExpr(sel.Core.Items[0].Expr)
		if got != FormatExpr(e) {
			t.Fatalf("round trip changed expression:\n  in:  %s\n  out: %s", FormatExpr(e), got)
		}
	}
}

func TestFormatPaperCode1Parses(t *testing.T) {
	s := mustParse(t, `
WITH outp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM lout WHERE v=$1),
inp AS
  (SELECT UNNEST(hubs) AS hub, UNNEST(tds) AS td, UNNEST(tas) AS ta
   FROM lin WHERE v=$2)
SELECT MIN(inp.ta)
FROM outp, inp
WHERE outp.hub=inp.hub AND outp.ta<=inp.td AND outp.td>=$3`)
	text := Format(s)
	if _, err := Parse(text); err != nil {
		t.Fatalf("formatted Code 1 does not parse: %v\n%s", err, text)
	}
}

// TestFormatNewConstructs covers HAVING, CASE and the IN/BETWEEN desugaring:
// the formatted text must reparse to the same canonical tree.
func TestFormatNewConstructs(t *testing.T) {
	queries := []string{
		"SELECT grp, MIN(v) FROM t GROUP BY grp HAVING MIN(v) > 2 ORDER BY grp",
		"SELECT CASE WHEN a < 3 THEN 1 WHEN a < 9 THEN 2 ELSE 3 END FROM t",
		"SELECT CASE WHEN a = 1 THEN 'x' END FROM t",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE a BETWEEN 2 AND 7",
	}
	for _, q := range queries {
		first, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		text := Format(first)
		second, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q: %v", text, err)
		}
		if third := Format(second); third != text {
			t.Errorf("Format not stable for %q: %q -> %q", q, text, third)
		}
	}
}
