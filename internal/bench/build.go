package bench

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"ptldb"
)

// buildWorkerCounts is the worker sweep of the build experiment: serial,
// a small fixed fan-out, and the host's GOMAXPROCS when it is larger.
func buildWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > counts[len(counts)-1] {
		counts = append(counts, g)
	}
	return counts
}

// Build measures preprocessing time against the BuildWorkers knob: each cell
// is a fresh build (vertex ordering + wave-parallel TTL construction + dummy
// augmentation + pooled bulk load) into a throwaway directory. The built
// databases are byte-identical for every worker count, so only the clock and
// the goroutine count change.
func (w *Workspace) Build() (*Table, error) {
	t := &Table{
		ID:    "build",
		Title: fmt.Sprintf("preprocessing time vs build workers (scale %.3g)", w.cfg.Scale),
		Columns: []string{"Graph", "workers", "order (ms)", "labels (ms)",
			"load (ms)", "total (ms)", "peak g", "vs serial"},
		Notes: []string{
			"Each row is a fresh build into a throwaway directory; the output database is byte-identical across worker counts.",
			fmt.Sprintf("Host: GOMAXPROCS=%d, NumCPU=%d — wall-clock speedup needs real cores; peak g shows the fan-out actually engaged.",
				runtime.GOMAXPROCS(0), runtime.NumCPU()),
		},
	}
	for _, city := range w.cfg.Cities {
		tt, err := ptldb.GenerateCity(city, w.cfg.Scale, w.cfg.Seed)
		if err != nil {
			return nil, err
		}
		var serial time.Duration
		for _, workers := range buildWorkerCounts() {
			w.logf("building %s with %d workers", city, workers)
			stats, peak, err := w.timedBuild(tt, workers)
			if err != nil {
				return nil, fmt.Errorf("build %s workers=%d: %w", city, workers, err)
			}
			total := stats.OrderTime + stats.LabelTime + stats.AugmentTime + stats.LoadTime
			if workers == 1 {
				serial = total
			}
			t.Rows = append(t.Rows, []string{
				city,
				fmt.Sprintf("%d", workers),
				ms(stats.OrderTime),
				ms(stats.LabelTime + stats.AugmentTime),
				ms(stats.LoadTime),
				ms(total),
				fmt.Sprintf("%d", peak),
				speedup(serial, total),
			})
		}
	}
	return t, nil
}

// timedBuild runs one fresh preprocessing pass and reports its phase stats
// plus the peak goroutine count sampled while it ran.
func (w *Workspace) timedBuild(tt *ptldb.Network, workers int) (ptldb.PreprocessStats, int, error) {
	if err := os.MkdirAll(w.cfg.CacheDir, 0o755); err != nil {
		return ptldb.PreprocessStats{}, 0, err
	}
	dir, err := os.MkdirTemp(w.cfg.CacheDir, "buildsweep-")
	if err != nil {
		return ptldb.PreprocessStats{}, 0, err
	}
	defer os.RemoveAll(dir)

	peak := runtime.NumGoroutine()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if n := runtime.NumGoroutine(); n > peak {
					peak = n
				}
			}
		}
	}()
	db, stats, err := ptldb.CreateWithStats(dir, tt, ptldb.Config{
		Device: "ram", PoolPages: w.cfg.PoolPages, BuildWorkers: workers,
	})
	close(done)
	wg.Wait() // peak is written only by the sampler; Wait orders the read below
	peak -= 1 // discount the sampler itself
	if err != nil {
		return stats, peak, err
	}
	return stats, peak, db.Close()
}
