package bench

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // experiment id, e.g. "fig2"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// ChartCols lists column indexes holding millisecond values; when set,
	// Render appends a log-scale bar chart (the paper plots these figures on
	// logarithmic axes).
	ChartCols []int
}

// Render pretty-prints the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var b strings.Builder
		b.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	var sep []string
	for _, width := range widths {
		sep = append(sep, strings.Repeat("-", width))
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	if len(t.ChartCols) > 0 {
		if err := t.renderChart(w, widths); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// renderChart draws one log-scale bar per (row, chart column), labelled with
// the non-chart columns.
func (t *Table) renderChart(w io.Writer, widths []int) error {
	const barWidth = 34
	min, max := math.Inf(1), math.Inf(-1)
	vals := make([][]float64, len(t.Rows))
	for i, row := range t.Rows {
		vals[i] = make([]float64, len(t.ChartCols))
		for j, c := range t.ChartCols {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil || v <= 0 {
				vals[i][j] = math.NaN()
				continue
			}
			vals[i][j] = v
			min, max = math.Min(min, v), math.Max(max, v)
		}
	}
	if math.IsInf(min, 1) || min == max {
		return nil // nothing chartable
	}
	if _, err := fmt.Fprintf(w, "\n```\nlog scale, %.3g ms .. %.3g ms\n", min, max); err != nil {
		return err
	}
	span := math.Log(max) - math.Log(min)
	chartSet := map[int]bool{}
	for _, c := range t.ChartCols {
		chartSet[c] = true
	}
	firstChart := t.ChartCols[0]
	for i, row := range t.Rows {
		var label strings.Builder
		for c, cell := range row {
			if chartSet[c] || c >= firstChart {
				continue // label columns precede the charted series
			}
			fmt.Fprintf(&label, "%-*s ", widths[c], cell)
		}
		for j, c := range t.ChartCols {
			v := vals[i][j]
			if math.IsNaN(v) {
				continue
			}
			n := 1 + int((math.Log(v)-math.Log(min))/span*float64(barWidth-1))
			if _, err := fmt.Fprintf(w, "%s%-8s %-*s %s ms\n",
				label.String(), t.Columns[c], barWidth, strings.Repeat("#", n), row[c]); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "```")
	return err
}

// ms renders a duration in milliseconds with adaptive precision.
func ms(d time.Duration) string {
	v := float64(d) / float64(time.Millisecond)
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// speedup renders a ratio like "12.3x".
func speedup(slow, fast time.Duration) string {
	if fast <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(slow)/float64(fast))
}
