package bench

import (
	"fmt"
	"time"

	"ptldb"
)

// ExperimentIDs lists the runnable experiments in paper order.
var ExperimentIDs = []string{
	"table7", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"storage", "build", "ablation-bucket", "ablation-ordering",
	"ablation-layout", "ablation-engine", "vcache", "serve", "tenants",
}

// Run executes one experiment by id.
func (w *Workspace) Run(id string) (*Table, error) {
	switch id {
	case "table7":
		return w.Table7()
	case "fig2":
		return w.FigV2V("hdd", "fig2", "EA, LD and SD vertex-to-vertex queries on HDD (avg per query)")
	case "fig3":
		return w.Fig3()
	case "fig4":
		return w.FigKNN("hdd", "fig4", "optimized EA/LD-kNN queries on HDD, D=0.01, varying k")
	case "fig5":
		return w.Fig5()
	case "fig6":
		return w.Fig6()
	case "fig7":
		return w.Fig7()
	case "fig8":
		return w.FigKNN("ssd", "fig8", "optimized EA/LD-kNN queries on SSD, D=0.01, varying k")
	case "storage":
		return w.Storage()
	case "build":
		return w.Build()
	case "ablation-bucket":
		return w.AblationBucket()
	case "ablation-ordering":
		return w.AblationOrdering()
	case "ablation-layout":
		return w.AblationLayout()
	case "ablation-engine":
		return w.AblationEngine()
	case "vcache":
		return w.Vcache()
	case "serve":
		return w.Serve()
	case "tenants":
		return w.Tenants()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (want one of %v)", id, ExperimentIDs)
	}
}

// Table7 reproduces the dataset-statistics table: graph sizes and TTL
// preprocessing time (plus the paper's published values for comparison).
func (w *Workspace) Table7() (*Table, error) {
	t := &Table{
		ID:    "table7",
		Title: fmt.Sprintf("dataset statistics and TTL preprocessing (scale %.3g)", w.cfg.Scale),
		Columns: []string{"Graph", "|V|", "|E|", "Avg degr.", "|HL|/|V|",
			"dummy %", "Preproc (s)", "paper |HL|/|V|", "paper preproc (s)"},
		Notes: []string{
			"Preprocessing time covers vertex ordering + TTL label construction + dummy augmentation + bulk load.",
			"Paper columns are the published full-scale values (Table 7); ours use synthetic data at the configured scale.",
		},
	}
	for _, city := range w.cfg.Cities {
		ds, err := w.Dataset(city)
		if err != nil {
			return nil, err
		}
		pre, hl, dummy := "-", "-", "-"
		if ds.Preproc.LabelTuples > 0 {
			total := ds.Preproc.OrderTime + ds.Preproc.LabelTime + ds.Preproc.AugmentTime + ds.Preproc.LoadTime
			pre = fmt.Sprintf("%.1f", total.Seconds())
			hl = fmt.Sprintf("%d", ds.Preproc.TuplesPerStop)
			dummy = fmt.Sprintf("%.1f", 100*float64(ds.Preproc.DummyTuples)/
				float64(ds.Preproc.LabelTuples+ds.Preproc.DummyTuples))
		}
		t.Rows = append(t.Rows, []string{
			city,
			fmt.Sprintf("%d", ds.TT.NumStops()),
			fmt.Sprintf("%d", ds.TT.NumConnections()),
			fmt.Sprintf("%d", ds.TT.AvgDegree()),
			hl,
			dummy,
			pre,
			fmt.Sprintf("%d", ds.Profile.PaperTuplesPerStop),
			fmt.Sprintf("%.1f", ds.Profile.PaperPreprocSeconds),
		})
	}
	return t, nil
}

// FigV2V measures EA, LD and SD vertex-to-vertex queries on one device
// (Figure 2 on the HDD; the inner part of Figure 7 on the SSD).
func (w *Workspace) FigV2V(device, id, title string) (*Table, error) {
	t := &Table{
		ID: id, Title: title,
		Columns:   []string{"Graph", "EA", "LD", "SD"},
		ChartCols: []int{1, 2, 3},
		Notes:     []string{fmt.Sprintf("%d queries per type; cold cache per type; times are CPU + simulated %s device time.", w.cfg.Queries, device)},
	}
	for _, city := range w.cfg.Cities {
		ds, err := w.Dataset(city)
		if err != nil {
			return nil, err
		}
		ea, ld, sd, err := w.v2vTimes(ds, device)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{city, ms(ea), ms(ld), ms(sd)})
	}
	return t, nil
}

func (w *Workspace) v2vTimes(ds *Dataset, device string) (ea, ld, sd time.Duration, err error) {
	db, err := w.Open(ds, device)
	if err != nil {
		return 0, 0, 0, err
	}
	defer db.Close()
	wl := w.NewWorkload(ds, w.cfg.Queries)
	ea, err = w.measure(db, w.cfg.Queries, func(i int) error {
		_, _, err := db.EarliestArrival(wl.Sources[i], wl.Goals[i], wl.Starts[i])
		return err
	})
	if err != nil {
		return 0, 0, 0, err
	}
	ld, err = w.measure(db, w.cfg.Queries, func(i int) error {
		_, _, err := db.LatestDeparture(wl.Sources[i], wl.Goals[i], wl.Ends[i])
		return err
	})
	if err != nil {
		return 0, 0, 0, err
	}
	sd, err = w.measure(db, w.cfg.Queries, func(i int) error {
		_, _, err := db.ShortestDuration(wl.Sources[i], wl.Goals[i], wl.Starts[i], wl.Ends[i])
		return err
	})
	return ea, ld, sd, err
}

// Fig3 compares the optimized kNN queries with the naive Code 2 versions
// for D = 0.01 and varying k, reporting the speedup.
func (w *Workspace) Fig3() (*Table, error) {
	t := &Table{
		ID:    "fig3",
		Title: "speedup of optimized vs naive kNN queries, D=0.01, varying k (HDD)",
		Notes: []string{"Cells are naive-time / optimized-time; k <= 4 served by the kmax=4 tables, larger k by kmax=16.",
			"Naive queries are sampled at most 30 times per cell (they are the slow side of the ratio by design)."},
	}
	t.Columns = []string{"Graph", "dir"}
	for _, k := range Ks {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
	}
	for _, city := range w.cfg.Cities {
		ds, err := w.Dataset(city)
		if err != nil {
			return nil, err
		}
		db, err := w.Open(ds, "hdd")
		if err != nil {
			return nil, err
		}
		wl := w.NewWorkload(ds, w.cfg.Queries)
		eaRow := []string{city, "EA"}
		ldRow := []string{city, "LD"}
		for _, k := range Ks {
			kmax := 4
			if k > 4 {
				kmax = 16
			}
			set, err := w.EnsureTargetSet(ds, db, 0.01, kmax)
			if err != nil {
				db.Close()
				return nil, err
			}
			nq := w.cfg.Queries
			if nq > 30 {
				nq = 30
			}
			naiveEA, err := w.measure(db, nq, func(i int) error {
				_, err := db.EAKNNNaive(set, wl.Sources[i], wl.Starts[i], k)
				return err
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			optEA, err := w.measure(db, w.cfg.Queries, func(i int) error {
				_, err := db.EAKNN(set, wl.Sources[i], wl.Starts[i], k)
				return err
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			naiveLD, err := w.measure(db, nq, func(i int) error {
				_, err := db.LDKNNNaive(set, wl.Sources[i], wl.Ends[i], k)
				return err
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			optLD, err := w.measure(db, w.cfg.Queries, func(i int) error {
				_, err := db.LDKNN(set, wl.Sources[i], wl.Ends[i], k)
				return err
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			eaRow = append(eaRow, speedup(naiveEA, optEA))
			ldRow = append(ldRow, speedup(naiveLD, optLD))
		}
		db.Close()
		t.Rows = append(t.Rows, eaRow, ldRow)
	}
	return t, nil
}

// FigKNN measures absolute optimized kNN times for D = 0.01 and varying k
// (Figure 4 on HDD, Figure 8 on SSD).
func (w *Workspace) FigKNN(device, id, title string) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Notes: []string{fmt.Sprintf("avg per query over %d queries, cold cache per series.", w.cfg.Queries)}}
	t.Columns = []string{"Graph", "dir"}
	for i, k := range Ks {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
		t.ChartCols = append(t.ChartCols, 2+i)
	}
	for _, city := range w.cfg.Cities {
		ds, err := w.Dataset(city)
		if err != nil {
			return nil, err
		}
		db, err := w.Open(ds, device)
		if err != nil {
			return nil, err
		}
		wl := w.NewWorkload(ds, w.cfg.Queries)
		eaRow := []string{city, "EA"}
		ldRow := []string{city, "LD"}
		for _, k := range Ks {
			kmax := 4
			if k > 4 {
				kmax = 16
			}
			set, err := w.EnsureTargetSet(ds, db, 0.01, kmax)
			if err != nil {
				db.Close()
				return nil, err
			}
			ea, err := w.measure(db, w.cfg.Queries, func(i int) error {
				_, err := db.EAKNN(set, wl.Sources[i], wl.Starts[i], k)
				return err
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			ld, err := w.measure(db, w.cfg.Queries, func(i int) error {
				_, err := db.LDKNN(set, wl.Sources[i], wl.Ends[i], k)
				return err
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			eaRow = append(eaRow, ms(ea))
			ldRow = append(ldRow, ms(ld))
		}
		db.Close()
		t.Rows = append(t.Rows, eaRow, ldRow)
	}
	return t, nil
}

// Fig5 measures kNN queries for k = 4 and varying target density D (HDD).
func (w *Workspace) Fig5() (*Table, error) {
	return w.densitySweep("fig5", "kNN queries for k=4 and varying density D (HDD)", func(db *ptldb.DB, set string, wl Workload, i int, ea bool) error {
		if ea {
			_, err := db.EAKNN(set, wl.Sources[i], wl.Starts[i], 4)
			return err
		}
		_, err := db.LDKNN(set, wl.Sources[i], wl.Ends[i], 4)
		return err
	})
}

// Fig6 measures the one-to-many queries for varying density D (HDD).
func (w *Workspace) Fig6() (*Table, error) {
	return w.densitySweep("fig6", "EA/LD one-to-many queries for varying density D (HDD)", func(db *ptldb.DB, set string, wl Workload, i int, ea bool) error {
		if ea {
			_, err := db.EAOTM(set, wl.Sources[i], wl.Starts[i])
			return err
		}
		_, err := db.LDOTM(set, wl.Sources[i], wl.Ends[i])
		return err
	})
}

func (w *Workspace) densitySweep(id, title string, query func(db *ptldb.DB, set string, wl Workload, i int, ea bool) error) (*Table, error) {
	t := &Table{ID: id, Title: title,
		Notes: []string{fmt.Sprintf("avg per query over %d queries; kmax=4 tables per density.", w.cfg.Queries)}}
	t.Columns = []string{"Graph", "dir"}
	for i, d := range Densities {
		t.Columns = append(t.Columns, fmt.Sprintf("D=%g", d))
		t.ChartCols = append(t.ChartCols, 2+i)
	}
	for _, city := range w.cfg.Cities {
		ds, err := w.Dataset(city)
		if err != nil {
			return nil, err
		}
		db, err := w.Open(ds, "hdd")
		if err != nil {
			return nil, err
		}
		wl := w.NewWorkload(ds, w.cfg.Queries)
		eaRow := []string{city, "EA"}
		ldRow := []string{city, "LD"}
		for _, d := range Densities {
			set, err := w.EnsureTargetSet(ds, db, d, 4)
			if err != nil {
				db.Close()
				return nil, err
			}
			ea, err := w.measure(db, w.cfg.Queries, func(i int) error {
				return query(db, set, wl, i, true)
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			ld, err := w.measure(db, w.cfg.Queries, func(i int) error {
				return query(db, set, wl, i, false)
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			eaRow = append(eaRow, ms(ea))
			ldRow = append(ldRow, ms(ld))
		}
		db.Close()
		t.Rows = append(t.Rows, eaRow, ldRow)
	}
	return t, nil
}

// Fig7 measures vertex-to-vertex queries on the SSD and reports the speedup
// over the HDD times.
func (w *Workspace) Fig7() (*Table, error) {
	t := &Table{
		ID:    "fig7",
		Title: "EA, LD and SD vertex-to-vertex queries on SSD (and speedup over HDD)",
		Columns: []string{"Graph", "EA", "LD", "SD",
			"EA vs HDD", "LD vs HDD", "SD vs HDD"},
		ChartCols: []int{1, 2, 3},
		Notes:     []string{"The paper reports 3-20x (EA), 6-17x (LD), 3-19x (SD) SSD speedups."},
	}
	for _, city := range w.cfg.Cities {
		ds, err := w.Dataset(city)
		if err != nil {
			return nil, err
		}
		hddEA, hddLD, hddSD, err := w.v2vTimes(ds, "hdd")
		if err != nil {
			return nil, err
		}
		ssdEA, ssdLD, ssdSD, err := w.v2vTimes(ds, "ssd")
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{city,
			ms(ssdEA), ms(ssdLD), ms(ssdSD),
			speedup(hddEA, ssdEA), speedup(hddLD, ssdLD), speedup(hddSD, ssdSD)})
	}
	return t, nil
}

// Storage reports the on-disk footprint per dataset (paper Section 4.3: all
// tables for all densities and kmax values fit in 12 GB).
func (w *Workspace) Storage() (*Table, error) {
	t := &Table{
		ID:      "storage",
		Title:   "database size on disk (all tables built so far)",
		Columns: []string{"Graph", "bytes", "MiB", "rows lout", "label tuples/stop"},
	}
	var total int64
	for _, city := range w.cfg.Cities {
		ds, err := w.Dataset(city)
		if err != nil {
			return nil, err
		}
		db, err := w.Open(ds, "ram")
		if err != nil {
			return nil, err
		}
		st, err := db.Stats()
		if err != nil {
			db.Close()
			return nil, err
		}
		tps := "-"
		if ds.Preproc.TuplesPerStop > 0 {
			tps = fmt.Sprintf("%d", ds.Preproc.TuplesPerStop)
		}
		t.Rows = append(t.Rows, []string{city,
			fmt.Sprintf("%d", st.SizeOnDisk),
			fmt.Sprintf("%.1f", float64(st.SizeOnDisk)/(1<<20)),
			fmt.Sprintf("%d", ds.TT.NumStops()),
			tps,
		})
		total += st.SizeOnDisk
		db.Close()
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Total across datasets: %.1f MiB.", float64(total)/(1<<20)))
	return t, nil
}
