package bench

// tenants.go is the cross-tenant isolation experiment behind ptldb-bench
// -exp tenants: one multi-tenant server (internal/tenant behind
// serve.NewMulti, real TCP listener) fronts two city databases on a
// RealLatency ssd device, and the question is what a cold tenant costs its
// warm neighbours. Cell one measures city A alone — warm, fixed-rate
// open-loop EA queries, client-observed percentiles. Cell two offers the
// identical load on A while a churner hammers city B from stone cold: the
// first request pays B's database open, and every request after it drags
// B's working set through B's budget share (the vector-cache and pool
// budgets are process-wide, split per open tenant). The p99 ratio between
// the cells is the isolation headline; the acceptance bar is staying under
// 2x.
//
// The experiment hard-fails on correctness, not on speed: both tenants must
// answer exactly like direct handles on the same directories, and the
// rollup /obs totals must equal the per-tenant sums.

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"ptldb"
	"ptldb/internal/serve"
	"ptldb/internal/tenant"
)

// tenantCell is the measured outcome of one isolation cell.
type tenantCell struct {
	sent, ok, failed int
	p50, p99         time.Duration
	qps              float64
	churnRequests    uint64 // requests the churner completed against B
	churnOpens       uint64 // B's database opens (1 in the churn cell)
}

// Tenants runs the multi-tenant isolation experiment on the first two
// configured cities.
func (w *Workspace) Tenants() (*Table, error) {
	cfg := w.cfg
	if len(cfg.Cities) < 2 {
		return nil, fmt.Errorf("bench: -exp tenants needs two cities, got %v (pass e.g. -cities Austin,Berlin)", cfg.Cities)
	}
	dsA, err := w.Dataset(cfg.Cities[0])
	if err != nil {
		return nil, err
	}
	dsB, err := w.Dataset(cfg.Cities[1])
	if err != nil {
		return nil, err
	}
	keyA, keyB := sanitize(cfg.Cities[0]), sanitize(cfg.Cities[1])

	// The churner needs a target set on B: one-to-many scans are the most
	// device-hungry query, the worst case a cold neighbour can offer.
	dbB, err := w.Open(dsB, "ram")
	if err != nil {
		return nil, err
	}
	setB, err := w.EnsureTargetSet(dsB, dbB, 0.05, 4)
	if cerr := dbB.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}

	// Measured load on A: uniform point EA queries, the latency-sensitive
	// foreground. Churn load on B: uniform EA-OTM scans.
	wlA := w.NewWorkload(dsA, cfg.Queries)
	pathsA := make([]string, cfg.Queries)
	for i := range pathsA {
		pathsA[i] = "/t/" + keyA + serve.V2VPath("ea", wlA.Sources[i], wlA.Goals[i], wlA.Starts[i])
	}
	wlB := w.NewWorkload(dsB, cfg.Queries)
	pathsB := make([]string, cfg.Queries)
	for i := range pathsB {
		pathsB[i] = "/t/" + keyB + serve.OTMPath("eaotm", setB, wlB.Sources[i], wlB.Starts[i])
	}

	dirs := map[string]string{keyA: dsA.Dir, keyB: dsB.Dir}
	base := ptldb.Config{
		Device: "ssd", RealLatency: true,
		DisableFusedExec: cfg.FusedOff, DisableSegments: cfg.SegmentsOff,
		DisableVectorCache: cfg.VCacheOff,
	}
	rcfg := tenant.Config{
		MaxOpenTenants:   2,
		VectorCacheBytes: cfg.VCacheBytes,
		PoolPages:        cfg.PoolPages,
		Base:             base,
	}

	t := &Table{
		ID: "tenants",
		Title: fmt.Sprintf("cross-tenant isolation: %s (warm, EA point queries, %d clients x %.0f req/s for %v) measured alone vs beside a cold %s churner (EA-OTM scans)",
			cfg.Cities[0], tenantClients, cfg.ServeRate, cfg.ServeDuration, cfg.Cities[1]),
		Columns: []string{"cell", "offered", "ok", "failed", "p50 us", "p99 us", "qps",
			"B requests", "B opens"},
		Notes: []string{
			"Both cells run the identical router config (max-open 2, process-wide budgets split per tenant), so A's budget share is constant; the cells differ only in B's load.",
			"RealLatency ssd device: simulated device charges consume wall-clock time, so B's cold open and scans contend for real time, not just a virtual clock.",
			"The churner starts with B never opened: its first request pays the database open inside the serving pipeline.",
		},
	}

	// p99 over one window is the ~N/100th-worst sample — noisy on a shared
	// host. Each cell runs tenantRepeats independent windows (fresh router
	// and server every time, so the churn cell pays a cold open in each) and
	// the median-p99 window is the reported one; the individual p99s land in
	// a note.
	cells := make(map[string]tenantCell, 2)
	for _, churn := range []bool{false, true} {
		name := "baseline"
		if churn {
			name = "cold-churn"
		}
		reps := make([]tenantCell, tenantRepeats)
		for i := range reps {
			w.logf("tenants: %s cell %d/%d (%v offered load on %s)", name, i+1, tenantRepeats, cfg.ServeDuration, keyA)
			reps[i], err = w.tenantCell(dirs, rcfg, keyA, keyB, pathsA, pathsB, churn)
			if err != nil {
				return nil, err
			}
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i].p99 < reps[j].p99 })
		p99s := make([]string, len(reps))
		for i, r := range reps {
			p99s[i] = fmt.Sprintf("%dus", r.p99.Microseconds())
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s p99 across %d windows: %v (median window reported).",
			name, tenantRepeats, p99s))
		cell := reps[len(reps)/2]
		cells[name] = cell
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", cell.sent),
			fmt.Sprintf("%d", cell.ok),
			fmt.Sprintf("%d", cell.failed),
			fmt.Sprintf("%d", cell.p50.Microseconds()),
			fmt.Sprintf("%d", cell.p99.Microseconds()),
			fmt.Sprintf("%.0f", cell.qps),
			fmt.Sprintf("%d", cell.churnRequests),
			fmt.Sprintf("%d", cell.churnOpens),
		})
	}

	ratio := float64(cells["cold-churn"].p99) / float64(cells["baseline"].p99)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"isolation: warm %s p99 %dus beside the cold %s churner vs %dus alone — ratio %.2fx (acceptance bar: < 2x).",
		keyA, cells["cold-churn"].p99.Microseconds(), keyB,
		cells["baseline"].p99.Microseconds(), ratio))

	if err := w.tenantCorrectness(dirs, rcfg, dsA, dsB, keyA, keyB); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"correctness probe: both tenants answered identically to direct handles on the same directories, and the rollup /obs totals equalled the per-tenant sums.")
	return t, nil
}

// tenantClients is the fixed foreground client count: enough concurrency to
// populate a p99, low enough that the baseline cell is far from saturation
// (the experiment isolates cross-tenant interference, not admission).
const tenantClients = 4

// tenantRepeats is the number of independent measurement windows per cell.
const tenantRepeats = 3

// tenantCell starts a fresh multi-tenant server over dirs, warms tenant
// keyA, then measures open-loop load on A — beside a B churner when churn is
// set, with B cold at measurement start.
func (w *Workspace) tenantCell(dirs map[string]string, rcfg tenant.Config, keyA, keyB string, pathsA, pathsB []string, churn bool) (tenantCell, error) {
	var cell tenantCell
	router, err := tenant.NewFromDirs(dirs, rcfg)
	if err != nil {
		return cell, err
	}
	srv := serve.NewMulti(router, serve.Options{
		MaxInFlight: w.cfg.ServeMaxInFlight,
		Timeout:     10 * time.Second,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = router.Close()
		return cell, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	httpc := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64},
	}

	// Warm A through the server: opens the tenant and faults its working set
	// into A's budget share. B stays untouched — cold by construction.
	for _, p := range pathsA {
		resp, err := httpc.Get(base + p)
		if err != nil {
			_ = router.Close()
			return cell, err
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_ = router.Close()
			return cell, fmt.Errorf("bench: warmup %s: HTTP %d", p, resp.StatusCode)
		}
	}
	if n := router.Metrics(keyB).Opens.Load(); n != 0 {
		_ = router.Close()
		return cell, fmt.Errorf("bench: tenant %s opened %d times before the churner started", keyB, n)
	}

	// The churner: one client dragging B through the pipeline, starting
	// stone cold, until the measured window ends. It fires at the same fixed
	// rate as one foreground client — already heavier work, since each
	// request is a one-to-many scan against a cold cache — so the cells
	// compare tenant interference (the cold open, the budget shares, device
	// contention), not how far an unbounded load can saturate the host's
	// scheduler.
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	if churn {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			tick := time.NewTicker(time.Duration(float64(time.Second) / w.cfg.ServeRate))
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-churnStop:
					return
				case <-tick.C:
				}
				resp, err := httpc.Get(base + pathsB[i%len(pathsB)])
				if err == nil {
					_ = resp.Body.Close()
				}
			}
		}()
	}

	// Foreground: tenantClients open-loop clients at the configured rate.
	interval := time.Duration(float64(time.Second) / w.cfg.ServeRate)
	perClient := int(w.cfg.ServeDuration / interval)
	if perClient < 1 {
		perClient = 1
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		failed    int
		wg        sync.WaitGroup
		reqWG     sync.WaitGroup
	)
	start := time.Now().Add(10 * time.Millisecond)
	for c := 0; c < tenantClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			first := start.Add(time.Duration(c) * interval / time.Duration(tenantClients))
			for i := 0; i < perClient; i++ {
				due := first.Add(time.Duration(i) * interval)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				path := pathsA[(c*perClient+i)%len(pathsA)]
				reqWG.Add(1)
				go func() {
					defer reqWG.Done()
					t0 := time.Now()
					resp, err := httpc.Get(base + path)
					lat := time.Since(t0)
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						failed++
						return
					}
					_ = resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						latencies = append(latencies, lat)
					} else {
						failed++
					}
				}()
			}
		}(c)
	}
	wg.Wait()
	reqWG.Wait()
	elapsed := time.Since(start)
	close(churnStop)
	churnWG.Wait()

	if err := shutdownServer(srv, errc); err != nil {
		_ = router.Close()
		return cell, err
	}
	mB := router.Metrics(keyB)
	cell = tenantCell{
		sent:          tenantClients * perClient,
		ok:            len(latencies),
		failed:        failed,
		qps:           float64(len(latencies)) / elapsed.Seconds(),
		churnRequests: mB.Requests.Load(),
		churnOpens:    mB.Opens.Load(),
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	cell.p50, cell.p99 = pctl(latencies, 0.50), pctl(latencies, 0.99)
	if err := router.Close(); err != nil {
		return cell, err
	}
	if churn && cell.churnOpens != 1 {
		return cell, fmt.Errorf("bench: churn cell opened %s %d times, want exactly 1 cold open", keyB, cell.churnOpens)
	}
	if !churn && cell.churnRequests != 0 {
		return cell, fmt.Errorf("bench: baseline cell saw %d requests on %s, want 0", cell.churnRequests, keyB)
	}
	return cell, nil
}

// tenantCorrectness hard-fails the experiment unless both tenants answer
// exactly like direct handles on the same directories and the rollup /obs
// totals are the per-tenant sums.
func (w *Workspace) tenantCorrectness(dirs map[string]string, rcfg tenant.Config, dsA, dsB *Dataset, keyA, keyB string) error {
	router, err := tenant.NewFromDirs(dirs, rcfg)
	if err != nil {
		return err
	}
	defer func() { _ = router.Close() }()
	srv := serve.NewMulti(router, serve.Options{Timeout: 10 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	probes := 0
	for _, tc := range []struct {
		key string
		ds  *Dataset
	}{{keyA, dsA}, {keyB, dsB}} {
		direct, err := w.Open(tc.ds, "ram")
		if err != nil {
			return err
		}
		client := &serve.Client{BaseURL: base, Tenant: tc.key}
		wl := w.NewWorkload(tc.ds, 25)
		for i := range wl.Sources {
			wantV, wantOK, err := direct.EarliestArrival(wl.Sources[i], wl.Goals[i], wl.Starts[i])
			if err != nil {
				_ = direct.Close()
				return err
			}
			gotV, gotOK, err := client.EarliestArrival(wl.Sources[i], wl.Goals[i], wl.Starts[i])
			if err != nil {
				_ = direct.Close()
				return err
			}
			if gotV != wantV || gotOK != wantOK {
				_ = direct.Close()
				return fmt.Errorf("bench: tenant %s EA(%d,%d,%d) = (%v,%v) via server, (%v,%v) direct",
					tc.key, wl.Sources[i], wl.Goals[i], wl.Starts[i], gotV, gotOK, wantV, wantOK)
			}
			probes++
		}
		if err := direct.Close(); err != nil {
			return err
		}
	}

	var roll serve.MultiObsResponse
	if err := (&serve.Client{BaseURL: base}).Get("/obs", &roll); err != nil {
		return err
	}
	var sum uint64
	for _, ts := range roll.Tenants {
		sum += ts.Requests
	}
	if roll.Totals.Requests != sum || sum != uint64(probes) {
		return fmt.Errorf("bench: rollup totals %d, per-tenant sum %d, probes issued %d — must all agree",
			roll.Totals.Requests, sum, probes)
	}
	return shutdownServer(srv, errc)
}
