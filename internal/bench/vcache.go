package bench

// vcache.go is the resident-vector-cache experiment behind ptldb-bench
// -exp vcache: warm kNN-EA queries (the heaviest per-query read pattern, one
// label lookup plus a condensed-table probe) measured at budgets of 0%, 50%
// and 100% of the measured vector working set, plus an eviction-thrash row
// with the budget one notch below the working set so the clock hand churns.
// Unlike every other experiment, the measured passes run WARM — the point of
// the cache is the steady state after materialization — so this file owns
// its measurement loop instead of using MeasureQueries (which drops caches).

import (
	"fmt"
	"time"

	"ptldb"
)

// vcacheStats is the counter delta of one measured pass.
type vcacheStats struct {
	hits, misses, evictions uint64
	resident                int64
}

// Vcache measures warm kNN-EA latency across vector-cache budgets on the
// first configured city. Row "segments (0%)" is the cache-off baseline (the
// columnar-segment read path); "full (100%)" must beat it by the win column.
func (w *Workspace) Vcache() (*Table, error) {
	city := w.cfg.Cities[0]
	ds, err := w.Dataset(city)
	if err != nil {
		return nil, err
	}
	// Materialize the condensed kNN tables once, outside any measurement.
	setup, err := w.Open(ds, "ram")
	if err != nil {
		return nil, err
	}
	set, err := w.EnsureTargetSet(ds, setup, 0.01, 4)
	if err != nil {
		setup.Close()
		return nil, err
	}
	if err := setup.Close(); err != nil {
		return nil, err
	}

	wl := w.NewWorkload(ds, w.cfg.Queries)
	n := w.cfg.Queries

	open := func(budget int64, off bool) (*ptldb.DB, error) {
		return ptldb.Open(ds.Dir, ptldb.Config{
			Device: "ssd", PoolPages: w.cfg.PoolPages,
			DisableFusedExec: w.cfg.FusedOff, DisableSegments: w.cfg.SegmentsOff,
			VectorCacheBytes: budget, DisableVectorCache: off,
			TraceHook: w.cfg.TraceHook,
		})
	}
	// warm runs one untimed pass (materialization, pool warm-up), then times
	// a second full pass; the per-query figure is wall clock plus simulated
	// device time, the same currency as every other experiment.
	warm := func(db *ptldb.DB) (time.Duration, vcacheStats, error) {
		var st vcacheStats
		pass := func() error {
			for i := 0; i < n; i++ {
				if _, err := db.EAKNN(set, wl.Sources[i], wl.Starts[i], 4); err != nil {
					return err
				}
			}
			return nil
		}
		if err := pass(); err != nil {
			return 0, st, err
		}
		st0, err := db.Stats()
		if err != nil {
			return 0, st, err
		}
		before := db.Snapshot()
		start := time.Now()
		if err := pass(); err != nil {
			return 0, st, err
		}
		wall := time.Since(start)
		st1, err := db.Stats()
		if err != nil {
			return 0, st, err
		}
		after := db.Snapshot()
		if after.VCache != nil {
			st.resident = after.VCache.ResidentBytes
			if before.VCache != nil {
				st.hits = after.VCache.Hits - before.VCache.Hits
				st.misses = after.VCache.Misses - before.VCache.Misses
				st.evictions = after.VCache.Evictions - before.VCache.Evictions
			}
		}
		per := (wall + (st1.SimulatedIO - st0.SimulatedIO)) / time.Duration(n)
		return per, st, nil
	}

	// Pass 1: size the working set. A budget far above any plausible label
	// volume keeps every touched table resident; ResidentBytes after a full
	// warm pass IS the vector working set of this workload.
	probe, err := open(1<<40, false)
	if err != nil {
		return nil, err
	}
	_, probeStats, err := warm(probe)
	if err != nil {
		probe.Close()
		return nil, err
	}
	if err := probe.Close(); err != nil {
		return nil, err
	}
	working := probeStats.resident
	if working <= 0 {
		return nil, fmt.Errorf("bench: vcache working set measured as %d bytes; cache never engaged", working)
	}

	type budgetRow struct {
		label  string
		budget int64
		off    bool
	}
	// The thrash budget is one byte short of the working set: every table
	// still fits alone (so nothing is sticky-declined as too-big), but the
	// full set does not, so the clock hand churns on every query. A larger
	// shortfall would undershoot the biggest label table and quietly turn
	// the row into a segments measurement.
	rows := []budgetRow{
		{"segments (0%)", 0, true},
		{"vcache 50%", working / 2, false},
		{"vcache thrash (1 B short)", working - 1, false},
		{"vcache 100%", working, false},
	}
	t := &Table{
		ID:    "vcache",
		Title: fmt.Sprintf("warm kNN-EA (k=4, D=0.01) on %s across vector-cache budgets", city),
		Columns: []string{"configuration", "budget", "warm ns/op", "vs segments",
			"hits", "misses", "evictions", "resident bytes"},
		Notes: []string{
			fmt.Sprintf("vector working set of this workload: %d bytes (every touched table resident).", working),
			fmt.Sprintf("%d queries per pass; one untimed warm pass precedes each measured pass.", n),
			"warm ns/op is wall clock + simulated SSD time per query; hits/misses/evictions are the measured pass's deltas.",
		},
	}
	var base time.Duration
	for _, r := range rows {
		db, err := open(r.budget, r.off)
		if err != nil {
			return nil, err
		}
		per, st, err := warm(db)
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
		if r.off {
			base = per
		}
		vs := "1.0x"
		if !r.off && per > 0 {
			vs = speedup(base, per)
		}
		t.Rows = append(t.Rows, []string{
			r.label,
			fmt.Sprintf("%d", r.budget),
			fmt.Sprintf("%d", per.Nanoseconds()),
			vs,
			fmt.Sprintf("%d", st.hits),
			fmt.Sprintf("%d", st.misses),
			fmt.Sprintf("%d", st.evictions),
			fmt.Sprintf("%d", st.resident),
		})
	}
	return t, nil
}
