package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTableRenderWithChart(t *testing.T) {
	tbl := &Table{
		ID:        "figX",
		Title:     "test figure",
		Columns:   []string{"Graph", "EA", "LD"},
		ChartCols: []int{1, 2},
		Rows: [][]string{
			{"CityA", "1.50", "12.0"},
			{"CityB", "120", "0.90"},
		},
		Notes: []string{"a note"},
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## figX", "| CityA", "log scale", "#", "> a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// The largest value gets the longest bar.
	lines := strings.Split(out, "\n")
	longest, longestVal := 0, ""
	for _, l := range lines {
		if n := strings.Count(l, "#"); n > longest {
			longest, longestVal = n, l
		}
	}
	if !strings.Contains(longestVal, "120") {
		t.Errorf("longest bar is not the max value: %q", longestVal)
	}
}

func TestTableRenderNoChartForFlatValues(t *testing.T) {
	tbl := &Table{
		ID: "flat", Title: "flat", Columns: []string{"a", "v"},
		ChartCols: []int{1},
		Rows:      [][]string{{"x", "5.00"}, {"y", "5.00"}},
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "log scale") {
		t.Error("chart rendered for constant values")
	}
}

func TestMsFormatting(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{500 * time.Microsecond, "0.500"},
		{2500 * time.Microsecond, "2.50"},
		{250 * time.Millisecond, "250"},
	}
	for _, c := range cases {
		if got := ms(c.in); got != c.want {
			t.Errorf("ms(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSpeedupFormatting(t *testing.T) {
	if got := speedup(100*time.Millisecond, 10*time.Millisecond); got != "10.0x" {
		t.Errorf("speedup = %q", got)
	}
	if got := speedup(time.Second, 0); got != "-" {
		t.Errorf("speedup by zero = %q", got)
	}
}
