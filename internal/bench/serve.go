package bench

// serve.go is the open-loop load experiment behind ptldb-bench -exp serve: a
// real ptldb-serve server (in-process, real TCP listener on 127.0.0.1:0)
// fronting a warm ram-device database, driven by C clients that each issue
// earliest-arrival requests at a FIXED arrival rate — open loop, so queueing
// delay shows up as latency instead of silently throttling the offered load.
// The workload is skewed (a small hot set gets most of the traffic, like a
// transit app's popular station pairs at rush hour), which is exactly the
// shape request coalescing exploits: each (clients, coalesce on|off) cell
// reports p50/p99/p999 latency, achieved qps and the server's own
// execution/coalesce/reject counters, so the on/off delta is the experiment.
//
// After the grid, a synchronized identical-request burst asserts that
// coalescing actually shares executions (shared count > 0) and a graceful
// Shutdown asserts the drain protocol — the two properties scripts/check.sh
// smoke-tests on every run.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"ptldb/internal/serve"
)

// serveCell is the measured outcome of one (clients, coalesce) grid cell.
type serveCell struct {
	sent, ok, rejected, failed int
	p50, p99, p999             time.Duration
	qps                        float64
	executions, coalesced      uint64
}

// Serve runs the open-loop serving-layer experiment on the first configured
// city. Each cell starts a fresh server over the same warm database so the
// counters are per-cell.
func (w *Workspace) Serve() (*Table, error) {
	cfg := w.cfg
	city := cfg.Cities[0]
	ds, err := w.Dataset(city)
	if err != nil {
		return nil, err
	}
	db, err := w.Open(ds, "ram")
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// The request mix models a transit app's front page: the hot set is a few
	// station departure boards — EA one-to-many queries, expensive and
	// IDENTICAL for every user looking at the same station — taking most of
	// the traffic, with a tail of cheap point-to-point EA queries drawn
	// uniformly from the usual workload. Warm the database over the full mix
	// first — the experiment measures the serving layer, not cold label I/O.
	set, err := w.EnsureTargetSet(ds, db, 0.05, 4)
	if err != nil {
		return nil, err
	}
	wl := w.NewWorkload(ds, cfg.Queries)
	const (
		hotCount    = 4
		hotFraction = 0.85
	)
	hot := make([]string, hotCount)
	for i := range hot {
		hot[i] = serve.OTMPath("eaotm", set, wl.Sources[i], wl.Starts[i])
		if _, err := db.EAOTM(set, wl.Sources[i], wl.Starts[i]); err != nil {
			return nil, err
		}
	}
	tail := make([]string, cfg.Queries)
	for i := range tail {
		tail[i] = serve.V2VPath("ea", wl.Sources[i], wl.Goals[i], wl.Starts[i])
		if _, _, err := db.EarliestArrival(wl.Sources[i], wl.Goals[i], wl.Starts[i]); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("open-loop serving on %s: hot set %d EA-OTM departure boards (D=0.05, %.0f%% of traffic) + uniform EA tail, clients x %.0f req/s each for %v",
			city, hotCount, hotFraction*100, cfg.ServeRate, cfg.ServeDuration),
		Columns: []string{"clients", "coalesce", "offered", "ok", "503", "failed",
			"p50 us", "p99 us", "p999 us", "qps", "executions", "coalesced"},
		Notes: []string{
			"Open loop: each client fires at its fixed interval regardless of completions, so queueing inflates latency rather than deflating load.",
			fmt.Sprintf("max-inflight %d; per-request timeout 5s; ram device, warm database; fresh server per cell.", cfg.ServeMaxInFlight),
			"coalesced counts requests that shared another request's in-flight execution; executions counts store calls actually run.",
		},
	}

	for _, clients := range cfg.ServeClients {
		for _, coalesce := range []bool{true, false} {
			cell, err := w.serveCell(db, hot, tail, clients, coalesce, hotFraction)
			if err != nil {
				return nil, err
			}
			onOff := "on"
			if !coalesce {
				onOff = "off"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", clients),
				onOff,
				fmt.Sprintf("%d", cell.sent),
				fmt.Sprintf("%d", cell.ok),
				fmt.Sprintf("%d", cell.rejected),
				fmt.Sprintf("%d", cell.failed),
				fmt.Sprintf("%d", cell.p50.Microseconds()),
				fmt.Sprintf("%d", cell.p99.Microseconds()),
				fmt.Sprintf("%d", cell.p999.Microseconds()),
				fmt.Sprintf("%.0f", cell.qps),
				fmt.Sprintf("%d", cell.executions),
				fmt.Sprintf("%d", cell.coalesced),
			})
		}
	}

	shared, err := coalesceBurst(db, hot[0])
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"coalescing probe: synchronized identical-request burst shared %d executions (must be > 0).", shared))
	return t, nil
}

// serveCell runs one open-loop cell: a fresh server on an ephemeral port,
// `clients` goroutines each issuing one request every 1/rate seconds for the
// configured duration, arrivals on a fixed schedule. Returns percentiles over
// the 200-responses and the server's own counters, then asserts a clean
// graceful shutdown.
func (w *Workspace) serveCell(store serve.Store, hot, tail []string, clients int, coalesce bool, hotFraction float64) (serveCell, error) {
	var cell serveCell
	srv := serve.New(store, serve.Options{
		MaxInFlight:       w.cfg.ServeMaxInFlight,
		Timeout:           5 * time.Second,
		DisableCoalescing: !coalesce,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cell, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	httpc := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConns: 4 * clients, MaxIdleConnsPerHost: 4 * clients},
	}

	interval := time.Duration(float64(time.Second) / w.cfg.ServeRate)
	perClient := int(w.cfg.ServeDuration / interval)
	if perClient < 1 {
		perClient = 1
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int
		failed    int
		wg        sync.WaitGroup
		reqWG     sync.WaitGroup
	)
	start := time.Now().Add(10 * time.Millisecond)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Deterministic per-client choice stream; clients are staggered
			// across one interval so arrivals do not align into bursts.
			rng := rand.New(rand.NewSource(w.cfg.Seed + int64(c)*7919))
			first := start.Add(time.Duration(c) * interval / time.Duration(clients))
			for i := 0; i < perClient; i++ {
				due := first.Add(time.Duration(i) * interval)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				var path string
				if rng.Float64() < hotFraction {
					path = hot[rng.Intn(len(hot))]
				} else {
					path = tail[rng.Intn(len(tail))]
				}
				reqWG.Add(1)
				// Open loop: the request rides its own goroutine so a slow
				// response never delays the next arrival.
				go func() {
					defer reqWG.Done()
					t0 := time.Now()
					resp, err := httpc.Get(base + path)
					lat := time.Since(t0)
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						failed++
						return
					}
					_ = resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						latencies = append(latencies, lat)
					case http.StatusServiceUnavailable:
						rejected++
					default:
						failed++
					}
				}()
			}
		}(c)
	}
	wg.Wait()
	reqWG.Wait()
	elapsed := time.Since(start)

	// Graceful drain must complete promptly with nothing in flight.
	if err := shutdownServer(srv, errc); err != nil {
		return cell, err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	m := srv.Metrics()
	cell = serveCell{
		sent:       clients * perClient,
		ok:         len(latencies),
		rejected:   rejected,
		failed:     failed,
		p50:        pctl(latencies, 0.50),
		p99:        pctl(latencies, 0.99),
		p999:       pctl(latencies, 0.999),
		qps:        float64(len(latencies)) / elapsed.Seconds(),
		executions: m.Executions.Load(),
		coalesced:  m.Coalesced.Load(),
	}
	return cell, nil
}

// coalesceBurst asserts that coalescing shares executions: waves of
// goroutines released together against one identical request until the
// server's coalesced counter moves. Warm EA queries finish in microseconds,
// so a single wave can (rarely) miss the in-flight window; the retry loop
// makes the probe deterministic in practice while keeping the failure mode —
// coalescing silently broken — a hard error.
func coalesceBurst(store serve.Store, path string) (uint64, error) {
	srv := serve.New(store, serve.Options{MaxInFlight: 256, Timeout: 5 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	httpc := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256},
	}

	const waveSize = 64
	for wave := 0; wave < 20 && srv.Metrics().Coalesced.Load() == 0; wave++ {
		release := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < waveSize; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-release
				resp, err := httpc.Get(base + path)
				if err == nil {
					_ = resp.Body.Close()
				}
			}()
		}
		close(release)
		wg.Wait()
	}
	shared := srv.Metrics().Coalesced.Load()
	if err := shutdownServer(srv, errc); err != nil {
		return 0, err
	}
	if shared == 0 {
		return 0, fmt.Errorf("bench: coalescing probe saw 0 shared executions across 20 synchronized bursts")
	}
	return shared, nil
}

// shutdownServer drains srv and requires both a clean Shutdown and Serve
// returning http.ErrServerClosed — the graceful-drain contract.
func shutdownServer(srv *serve.Server, errc chan error) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("bench: serve shutdown did not drain: %w", err)
	}
	if err := <-errc; err != http.ErrServerClosed {
		return fmt.Errorf("bench: Serve returned %v, want http.ErrServerClosed", err)
	}
	return nil
}

// pctl reads the p-th percentile (nearest rank) from sorted latencies.
func pctl(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
