// Package bench is the experiment harness behind cmd/ptldb-bench and the
// root-level Go benchmarks: it rebuilds every table and figure of the
// paper's evaluation (Section 4) on the synthetic datasets.
//
// Protocol (paper Section 4): for each experiment 1000 random source stops
// (and goal stops for vertex-to-vertex queries) are drawn; EA and SD start
// timestamps come from the first quarter of the timetable's timestamp range
// and LD/SD end timestamps from the fourth quarter, so that most queries
// have non-empty answers; the buffer cache is dropped before each
// experiment ("we restart the PostgreSQL server ... and clear the operating
// system's cache"); the average time per query is reported.
//
// Because the storage devices are simulated, a reported query time is
// wall-clock CPU time plus the simulated device time charged by the buffer
// pool during the query.
package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ptldb"
	"ptldb/internal/timetable"
)

// Config controls dataset size and measurement effort.
type Config struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full size).
	Scale float64
	// Cities selects dataset profiles by name (default: all eleven).
	Cities []string
	// Queries per experiment (the paper uses 1000).
	Queries int
	// Seed drives workload generation and target-set selection.
	Seed int64
	// CacheDir holds the built databases; databases found there are reused
	// (preprocessing is deterministic).
	CacheDir string
	// PoolPages overrides the buffer-pool size.
	PoolPages int
	// Parallel is the number of goroutines issuing queries concurrently
	// (default 1, the paper's sequential protocol). With N > 1 the simulated
	// device time is divided by N, modelling N independent device channels —
	// concurrent queries overlap their I/O in the sharded buffer pool.
	Parallel int
	// FusedOff disables the fused label-query execution path, running every
	// query through the general SQL executor (the -fused=off ablation).
	FusedOff bool
	// SegmentsOff disables the columnar label segments on the read path,
	// reverting label access to the B+tree/heap pair (the -segments=off
	// ablation). Builds still write segment files either way.
	SegmentsOff bool
	// VCacheOff disables the resident vector cache, serving label reads from
	// the columnar segments (the -vcache=off ablation).
	VCacheOff bool
	// VCacheBytes overrides the vector-cache budget (0 = ptldb's default).
	VCacheBytes int64
	// BuildWorkers is the preprocessing parallelism of database builds
	// (0 = GOMAXPROCS). The built databases are identical for every value.
	BuildWorkers int
	// TraceHook, when non-nil, is installed on every database the experiments
	// open, so per-query traces survive their internal open/close cycles
	// (ptldb-bench -obs-out feeds an obs.Aggregator through it).
	TraceHook func(ptldb.Trace)
	// ServeClients are the client counts swept by the serve experiment
	// (default 1, 4, 16, 64).
	ServeClients []int
	// ServeRate is each serve-experiment client's fixed arrival rate in
	// requests per second (default 50; the load is open-loop).
	ServeRate float64
	// ServeDuration is how long each serve-experiment cell offers load
	// (default 2s).
	ServeDuration time.Duration
	// ServeMaxInFlight is the server's admission cap in the serve experiment
	// (default 64).
	ServeMaxInFlight int
}

// Defaults fills unset fields: scale 0.05, 200 queries, all cities, a cache
// under os.TempDir.
func (c Config) Defaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.Queries == 0 {
		c.Queries = 200
	}
	if len(c.Cities) == 0 {
		for _, p := range ptldb.Profiles() {
			c.Cities = append(c.Cities, p.Name)
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CacheDir == "" {
		c.CacheDir = filepath.Join(os.TempDir(), "ptldb-bench-cache")
	}
	if c.Parallel == 0 {
		c.Parallel = 1
	}
	if len(c.ServeClients) == 0 {
		c.ServeClients = []int{1, 4, 16, 64}
	}
	if c.ServeRate == 0 {
		c.ServeRate = 50
	}
	if c.ServeDuration == 0 {
		c.ServeDuration = 2 * time.Second
	}
	if c.ServeMaxInFlight == 0 {
		c.ServeMaxInFlight = 64
	}
	return c
}

// datasetFormat versions the cache-dir naming. Bump it whenever the on-disk
// image changes incompatibly (segment format v2 added region checksums):
// a stale cache would otherwise open with its segments silently demoted to
// the heap path, quietly invalidating every benchmark number.
const datasetFormat = 2

// Densities are the paper's target-density values D = |T| / |V|.
var Densities = []float64{0.001, 0.005, 0.01, 0.05, 0.1}

// Ks are the paper's k values for the kNN experiments.
var Ks = []int{1, 2, 4, 8, 16}

// Workspace builds and caches datasets across experiments.
type Workspace struct {
	cfg Config
	// datasets caches generated networks and preprocessing stats by city.
	datasets map[string]*Dataset
	Progress func(format string, args ...any) // optional progress logger
}

// Dataset is one generated city with its on-disk database.
type Dataset struct {
	Profile ptldb.CityProfile
	TT      *ptldb.Network
	Dir     string
	Preproc ptldb.PreprocessStats
	// built reports whether this run preprocessed the dataset (false when
	// reused from the cache, in which case Preproc is zero).
	built bool
}

// NewWorkspace validates the configuration.
func NewWorkspace(cfg Config) (*Workspace, error) {
	cfg = cfg.Defaults()
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("bench: scale %v outside (0, 1]", cfg.Scale)
	}
	for _, c := range cfg.Cities {
		found := false
		for _, p := range ptldb.Profiles() {
			if p.Name == c {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: unknown city %q", c)
		}
	}
	return &Workspace{cfg: cfg, datasets: map[string]*Dataset{}}, nil
}

// Config returns the effective configuration.
func (w *Workspace) Config() Config { return w.cfg }

func (w *Workspace) logf(format string, args ...any) {
	if w.Progress != nil {
		w.Progress(format, args...)
	}
}

// Dataset generates (or reuses) the network and database for a city.
func (w *Workspace) Dataset(city string) (*Dataset, error) {
	if ds, ok := w.datasets[city]; ok {
		return ds, nil
	}
	tt, err := ptldb.GenerateCity(city, w.cfg.Scale, w.cfg.Seed)
	if err != nil {
		return nil, err
	}
	var prof ptldb.CityProfile
	for _, p := range ptldb.Profiles() {
		if p.Name == city {
			prof = p
		}
	}
	dir := filepath.Join(w.cfg.CacheDir,
		fmt.Sprintf("%s_s%04d_r%d_f%d", sanitize(city), int(w.cfg.Scale*10000), w.cfg.Seed, datasetFormat))
	ds := &Dataset{Profile: prof, TT: tt, Dir: dir}

	statsPath := filepath.Join(dir, "preproc.json")
	if _, err := os.Stat(filepath.Join(dir, "catalog.json")); err == nil {
		w.logf("reusing cached database for %s (%s)", city, dir)
		if blob, err := os.ReadFile(statsPath); err == nil {
			_ = json.Unmarshal(blob, &ds.Preproc)
		}
		w.datasets[city] = ds
		return ds, nil
	}
	w.logf("preprocessing %s: %d stops, %d connections", city, tt.NumStops(), tt.NumConnections())
	db, stats, err := ptldb.CreateWithStats(dir, tt, ptldb.Config{
		Device: "ram", PoolPages: w.cfg.PoolPages, DisableFusedExec: w.cfg.FusedOff, DisableSegments: w.cfg.SegmentsOff,
		DisableVectorCache: w.cfg.VCacheOff, VectorCacheBytes: w.cfg.VCacheBytes,
		BuildWorkers: w.cfg.BuildWorkers,
	})
	if err != nil {
		return nil, err
	}
	if err := db.Close(); err != nil {
		return nil, err
	}
	if blob, err := json.Marshal(stats); err == nil {
		_ = os.WriteFile(statsPath, blob, 0o644)
	}
	ds.Preproc, ds.built = stats, true
	w.datasets[city] = ds
	return ds, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		}
	}
	return string(out)
}

// Open opens a dataset's database on the given simulated device.
func (w *Workspace) Open(ds *Dataset, device string) (*ptldb.DB, error) {
	return ptldb.Open(ds.Dir, ptldb.Config{
		Device: device, PoolPages: w.cfg.PoolPages, DisableFusedExec: w.cfg.FusedOff, DisableSegments: w.cfg.SegmentsOff,
		DisableVectorCache: w.cfg.VCacheOff, VectorCacheBytes: w.cfg.VCacheBytes,
		TraceHook: w.cfg.TraceHook,
	})
}

// setName derives the stored name of a target set for a density and kmax.
func setName(d float64, kmax int) string {
	return fmt.Sprintf("d%d_k%d", int(d*10000), kmax)
}

// EnsureTargetSet materializes the kNN/OTM tables for (density, kmax) if not
// already present, returning the set name. Target stops are drawn uniformly
// with the workspace seed, so every experiment sees the same sets.
func (w *Workspace) EnsureTargetSet(ds *Dataset, db *ptldb.DB, d float64, kmax int) (string, error) {
	name := setName(d, kmax)
	if _, ok := db.TargetSets()[name]; ok {
		return name, nil
	}
	n := ds.TT.NumStops()
	count := int(d * float64(n))
	if count < 1 {
		count = 1
	}
	rng := rand.New(rand.NewSource(w.cfg.Seed ^ int64(count)<<20 ^ int64(kmax)))
	perm := rng.Perm(n)
	targets := make([]ptldb.StopID, count)
	for i := 0; i < count; i++ {
		targets[i] = ptldb.StopID(perm[i])
	}
	w.logf("building target set %s for %s (%d targets)", name, ds.Profile.Name, count)
	return name, db.AddTargetSet(name, targets, kmax)
}

// Workload is a batch of query inputs following the paper's protocol.
type Workload struct {
	Sources []timetable.StopID
	Goals   []timetable.StopID
	// Starts are EA/SD start timestamps (first quarter of the range);
	// Ends are LD/SD end timestamps (fourth quarter).
	Starts []timetable.Time
	Ends   []timetable.Time
}

// NewWorkload draws n queries for the dataset.
func (w *Workspace) NewWorkload(ds *Dataset, n int) Workload {
	rng := rand.New(rand.NewSource(w.cfg.Seed + 7))
	span := ds.TT.Span()
	min := ds.TT.MinTime()
	wl := Workload{
		Sources: make([]timetable.StopID, n),
		Goals:   make([]timetable.StopID, n),
		Starts:  make([]timetable.Time, n),
		Ends:    make([]timetable.Time, n),
	}
	for i := 0; i < n; i++ {
		wl.Sources[i] = timetable.StopID(rng.Intn(ds.TT.NumStops()))
		wl.Goals[i] = timetable.StopID(rng.Intn(ds.TT.NumStops()))
		if wl.Goals[i] == wl.Sources[i] {
			wl.Goals[i] = (wl.Goals[i] + 1) % timetable.StopID(ds.TT.NumStops())
		}
		wl.Starts[i] = min + timetable.Time(rng.Int63n(int64(span)/4))
		wl.Ends[i] = min + span - timetable.Time(rng.Int63n(int64(span)/4))
	}
	return wl
}

// MeasureQueries runs fn once per workload entry after a cold start and
// returns the average time per query: wall clock plus simulated device time.
func MeasureQueries(db *ptldb.DB, n int, fn func(i int) error) (time.Duration, error) {
	return MeasureQueriesParallel(db, n, 1, fn)
}

// MeasureQueriesParallel is MeasureQueries with the n queries spread over
// `parallel` goroutines. The simulated device time is divided by the
// parallelism: the sharded buffer pool performs device reads outside its
// locks, so concurrent queries overlap their I/O as if each goroutine had
// its own device channel.
func MeasureQueriesParallel(db *ptldb.DB, n, parallel int, fn func(i int) error) (time.Duration, error) {
	if parallel < 1 {
		parallel = 1
	}
	if err := db.DropCaches(); err != nil {
		return 0, err
	}
	db.ResetIOClock()
	st0, err := db.Stats()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if parallel == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return 0, err
			}
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
			once sync.Once
			ferr error
		)
		wg.Add(parallel)
		for g := 0; g < parallel; g++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := fn(i); err != nil {
						once.Do(func() { ferr = err })
						return
					}
				}
			}()
		}
		wg.Wait()
		if ferr != nil {
			return 0, ferr
		}
	}
	wall := time.Since(start)
	st1, err := db.Stats()
	if err != nil {
		return 0, err
	}
	total := wall + (st1.SimulatedIO-st0.SimulatedIO)/time.Duration(parallel)
	return total / time.Duration(n), nil
}

// measure runs fn through the workspace's configured parallelism.
func (w *Workspace) measure(db *ptldb.DB, n int, fn func(i int) error) (time.Duration, error) {
	return MeasureQueriesParallel(db, n, w.cfg.Parallel, fn)
}
