package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"ptldb"
	"ptldb/internal/csa"
	"ptldb/internal/order"
	"ptldb/internal/sqldb/sqltypes"
	"ptldb/internal/sqldb/storage"
	"ptldb/internal/ttl"
)

// AblationBucket sweeps the knn/otm bucket width (the paper's Section 3.2.1
// tuning discussion: smaller buckets mean more rows, larger buckets mean
// fatter exp columns; one hour was their compromise).
func (w *Workspace) AblationBucket() (*Table, error) {
	city := w.cfg.Cities[0]
	tt, err := ptldb.GenerateCity(city, w.cfg.Scale, w.cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-bucket",
		Title:   fmt.Sprintf("knn table bucket width sweep on %s (EA-kNN, k=4, D=0.01, HDD)", city),
		Columns: []string{"bucket", "knn_ea rows", "EA-kNN avg", "LD-kNN avg"},
		Notes:   []string{"The paper argues one-hour buckets balance row count against exp-column width."},
	}
	for _, width := range []int32{900, 3600, 10800} {
		dir := filepath.Join(w.cfg.CacheDir, fmt.Sprintf("%s_bucket%d_s%04d", sanitize(city), width, int(w.cfg.Scale*10000)))
		if _, err := os.Stat(filepath.Join(dir, "catalog.json")); err != nil {
			db, err := ptldb.Create(dir, tt, ptldb.Config{Device: "ram", BucketSeconds: width})
			if err != nil {
				return nil, err
			}
			db.Close()
		}
		db, err := ptldb.Open(dir, ptldb.Config{
			Device: "hdd", PoolPages: w.cfg.PoolPages, DisableFusedExec: w.cfg.FusedOff, DisableSegments: w.cfg.SegmentsOff,
			TraceHook: w.cfg.TraceHook,
		})
		if err != nil {
			return nil, err
		}
		ds := &Dataset{TT: tt}
		set, err := w.EnsureTargetSet(ds, db, 0.01, 4)
		if err != nil {
			db.Close()
			return nil, err
		}
		wl := w.NewWorkload(ds, w.cfg.Queries)
		ea, err := w.measure(db, w.cfg.Queries, func(i int) error {
			_, err := db.EAKNN(set, wl.Sources[i], wl.Starts[i], 4)
			return err
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		ld, err := w.measure(db, w.cfg.Queries, func(i int) error {
			_, err := db.LDKNN(set, wl.Sources[i], wl.Ends[i], 4)
			return err
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		rows := "-"
		if rel, err := db.Store().Raw(fmt.Sprintf("SELECT COUNT(*) FROM knn_ea_%s", set)); err == nil && len(rel.Rows) == 1 {
			rows = rel.Rows[0][0].String()
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%ds", width), rows, ms(ea), ms(ld)})
		db.Close()
	}
	return t, nil
}

// AblationOrdering compares TTL label size and preprocessing time across
// vertex-ordering strategies (hub labeling is highly order-sensitive; the
// TTL authors ship tuned orders, we derive ours from degree statistics).
func (w *Workspace) AblationOrdering() (*Table, error) {
	city := w.cfg.Cities[0]
	tt, err := ptldb.GenerateCity(city, w.cfg.Scale, w.cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-ordering",
		Title:   fmt.Sprintf("vertex-ordering sweep on %s", city),
		Columns: []string{"ordering", "|HL|/|V|", "label tuples", "build time (s)"},
	}
	for _, o := range []struct {
		name string
		ord  order.Order
	}{
		{"hub-usage", order.ByHubUsage(tt, tt.NumStops()/10+32, w.cfg.Seed)},
		{"neighbor-degree", order.ByNeighborDegree(tt)},
		{"degree", order.ByDegree(tt)},
		{"random", order.Random(tt.NumStops(), w.cfg.Seed)},
	} {
		start := time.Now()
		labels := ttl.Build(tt, o.ord)
		dt := time.Since(start)
		t.Rows = append(t.Rows, []string{
			o.name,
			fmt.Sprintf("%d", labels.TuplesPerStop()),
			fmt.Sprintf("%d", labels.NumTuples()),
			fmt.Sprintf("%.2f", dt.Seconds()),
		})
	}
	return t, nil
}

// AblationLayout justifies the paper's array-per-stop row design (inherited
// from COLD): it compares fetching one stop's full label from the array
// layout (one index descent + one wide row) against a normalized
// tuple-per-row layout (one descent + a leaf range scan + many small rows)
// at the storage level, on the simulated HDD with a cold cache per batch.
func (w *Workspace) AblationLayout() (*Table, error) {
	city := w.cfg.Cities[0]
	tt, err := ptldb.GenerateCity(city, w.cfg.Scale, w.cfg.Seed)
	if err != nil {
		return nil, err
	}
	labels := ttl.Build(tt, order.ByNeighborDegree(tt)).Augment()

	dir, err := os.MkdirTemp(w.cfg.CacheDir, "layout")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var clock storage.Clock
	pool := storage.NewPool(65536)
	open := func(name string) (*storage.PagedFile, error) {
		f, err := storage.OpenPagedFile(filepath.Join(dir, name), storage.HDD, &clock)
		if err != nil {
			return nil, err
		}
		pool.Register(f)
		return f, nil
	}

	// Array layout: key = (v, 0), one encoded row with three arrays.
	arrHeapF, err := open("arr.heap")
	if err != nil {
		return nil, err
	}
	defer arrHeapF.Close()
	arrIdxF, err := open("arr.idx")
	if err != nil {
		return nil, err
	}
	defer arrIdxF.Close()
	arrHeap, err := storage.OpenRowStore(arrHeapF, pool)
	if err != nil {
		return nil, err
	}
	arrIdx, err := storage.OpenBTree(arrIdxF, pool)
	if err != nil {
		return nil, err
	}

	// Flat layout: key = (v, seq), one small row per tuple.
	flatHeapF, err := open("flat.heap")
	if err != nil {
		return nil, err
	}
	defer flatHeapF.Close()
	flatIdxF, err := open("flat.idx")
	if err != nil {
		return nil, err
	}
	defer flatIdxF.Close()
	flatHeap, err := storage.OpenRowStore(flatHeapF, pool)
	if err != nil {
		return nil, err
	}
	flatIdx, err := storage.OpenBTree(flatIdxF, pool)
	if err != nil {
		return nil, err
	}

	for v := 0; v < labels.NumStops(); v++ {
		lab := labels.Out[v]
		hubs := make([]int64, len(lab))
		tds := make([]int64, len(lab))
		tas := make([]int64, len(lab))
		for i, tup := range lab {
			hubs[i], tds[i], tas[i] = int64(tup.Hub), int64(tup.Dep), int64(tup.Arr)
		}
		row := sqltypes.Row{sqltypes.NewInt(int64(v)),
			sqltypes.NewIntArray(hubs), sqltypes.NewIntArray(tds), sqltypes.NewIntArray(tas)}
		loc, err := arrHeap.Append(sqltypes.EncodeRow(nil, row))
		if err != nil {
			return nil, err
		}
		if err := arrIdx.Insert(storage.Key{int64(v), 0}, loc); err != nil {
			return nil, err
		}
		for i, tup := range lab {
			small := sqltypes.Row{sqltypes.NewInt(int64(tup.Hub)),
				sqltypes.NewInt(int64(tup.Dep)), sqltypes.NewInt(int64(tup.Arr))}
			loc, err := flatHeap.Append(sqltypes.EncodeRow(nil, small))
			if err != nil {
				return nil, err
			}
			if err := flatIdx.Insert(storage.Key{int64(v), int64(i)}, loc); err != nil {
				return nil, err
			}
		}
	}
	if err := pool.FlushAll(); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(w.cfg.Seed))
	n := w.cfg.Queries
	stops := make([]int64, n)
	for i := range stops {
		stops[i] = int64(rng.Intn(labels.NumStops()))
	}

	measure := func(fetch func(v int64) error) (time.Duration, error) {
		if err := pool.DropCaches(); err != nil {
			return 0, err
		}
		clock.Reset()
		start := time.Now()
		for _, v := range stops {
			if err := fetch(v); err != nil {
				return 0, err
			}
		}
		return (time.Since(start) + clock.Elapsed()) / time.Duration(n), nil
	}

	arrTime, err := measure(func(v int64) error {
		loc, ok, err := arrIdx.Get(storage.Key{v, 0})
		if err != nil || !ok {
			return fmt.Errorf("array row for %d: %v %v", v, ok, err)
		}
		data, err := arrHeap.Read(loc)
		if err != nil {
			return err
		}
		_, err = sqltypes.DecodeRow(data)
		return err
	})
	if err != nil {
		return nil, err
	}
	flatTime, err := measure(func(v int64) error {
		cur, err := flatIdx.Seek(storage.Key{v, 0})
		if err != nil {
			return err
		}
		defer cur.Close()
		for cur.Valid() && cur.Key()[0] == v {
			data, err := flatHeap.Read(cur.Locator())
			if err != nil {
				return err
			}
			if _, err := sqltypes.DecodeRow(data); err != nil {
				return err
			}
			if err := cur.Next(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	avgLabel := labels.NumTuples() / (2 * labels.NumStops())
	return &Table{
		ID:      "ablation-layout",
		Title:   fmt.Sprintf("row layout: array-per-stop vs tuple-per-row on %s (fetch one stop's L_out, HDD, cold)", city),
		Columns: []string{"layout", "avg fetch", "notes"},
		Rows: [][]string{
			{"array (PTLDB/COLD)", ms(arrTime), "1 index probe + 1 wide row"},
			{"tuple-per-row", ms(flatTime), fmt.Sprintf("1 probe + ~%d-entry leaf scan + %d small rows", avgLabel, avgLabel)},
		},
		Notes: []string{"Motivates the paper's array columns: per-stop labels are fetched with minimal page reads.",
			fmt.Sprintf("array layout %s faster on cold HDD.", speedup(flatTime, arrTime))},
	}, nil
}

// AblationEngine positions PTLDB between the in-memory alternatives the
// paper references: the Connection Scan Algorithm (a pre-TTL main-memory
// baseline), the TTL labels queried in memory (the paper cites < 30 µs), and
// PTLDB's SQL over the simulated SSD. The gap between the last two is the
// price of the database layer — the paper's trade for multi-user
// deployability.
func (w *Workspace) AblationEngine() (*Table, error) {
	city := w.cfg.Cities[0]
	ds, err := w.Dataset(city)
	if err != nil {
		return nil, err
	}
	tt := ds.TT
	labels := ttl.Build(tt, order.ByNeighborDegree(tt)).Augment()
	db, err := w.Open(ds, "ssd")
	if err != nil {
		return nil, err
	}
	defer db.Close()

	wl := w.NewWorkload(ds, w.cfg.Queries)
	n := w.cfg.Queries
	measure := func(fn func(i int)) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return time.Since(start) / time.Duration(n)
	}
	csaEA := measure(func(i int) {
		csa.EarliestArrival(tt, wl.Sources[i], wl.Goals[i], wl.Starts[i])
	})
	ttlEA := measure(func(i int) {
		labels.EarliestArrival(wl.Sources[i], wl.Goals[i], wl.Starts[i])
	})
	dbEA, err := w.measure(db, n, func(i int) error {
		_, _, err := db.EarliestArrival(wl.Sources[i], wl.Goals[i], wl.Starts[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:      "ablation-engine",
		Title:   fmt.Sprintf("EA engines on %s: main-memory baselines vs PTLDB (SSD)", city),
		Columns: []string{"engine", "avg EA query", "vs TTL in-memory"},
		Rows: [][]string{
			{"Connection Scan (memory)", ms(csaEA), speedup(csaEA, ttlEA)},
			{"TTL labels (memory)", ms(ttlEA), "1.0x"},
			{"PTLDB SQL (SSD sim)", ms(dbEA), speedup(dbEA, ttlEA)},
		},
		Notes: []string{
			"The paper cites TTL answering in-memory queries in < 30 us and pre-TTL memory solutions needing a few ms;",
			"PTLDB accepts a constant-factor slowdown for database deployability (Section 4.1.1).",
		},
	}, nil
}
