package bench

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func tinyWorkspace(t *testing.T) *Workspace {
	t.Helper()
	w, err := NewWorkspace(Config{
		Scale:    0.005,
		Cities:   []string{"Austin", "Salt Lake City"},
		Queries:  5,
		Seed:     3,
		CacheDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkspaceValidation(t *testing.T) {
	if _, err := NewWorkspace(Config{Scale: 2}); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := NewWorkspace(Config{Cities: []string{"Gotham"}}); err == nil {
		t.Error("unknown city accepted")
	}
	w, err := NewWorkspace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Config().Cities) != 11 || w.Config().Queries != 200 {
		t.Errorf("defaults: %+v", w.Config())
	}
}

func TestWorkloadProtocol(t *testing.T) {
	w := tinyWorkspace(t)
	ds, err := w.Dataset("Austin")
	if err != nil {
		t.Fatal(err)
	}
	wl := w.NewWorkload(ds, 50)
	min, span := ds.TT.MinTime(), ds.TT.Span()
	for i := range wl.Sources {
		if wl.Sources[i] == wl.Goals[i] {
			t.Error("source equals goal")
		}
		if wl.Starts[i] < min || wl.Starts[i] > min+span/4 {
			t.Errorf("start %v outside first quarter [%v, %v]", wl.Starts[i], min, min+span/4)
		}
		if wl.Ends[i] < min+span*3/4 || wl.Ends[i] > min+span {
			t.Errorf("end %v outside fourth quarter", wl.Ends[i])
		}
	}
}

func TestDatasetCaching(t *testing.T) {
	w := tinyWorkspace(t)
	ds, err := w.Dataset("Austin")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.built {
		t.Fatal("first build not marked built")
	}
	// A fresh workspace over the same cache dir must reuse the database.
	w2, err := NewWorkspace(w.Config())
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := w2.Dataset("Austin")
	if err != nil {
		t.Fatal(err)
	}
	if ds2.built {
		t.Error("cached dataset was rebuilt")
	}
}

// TestAllExperimentsRun executes every experiment end to end at tiny scale
// and sanity-checks the rendered tables.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-scale experiment sweep is still a few seconds")
	}
	w := tinyWorkspace(t)
	for _, id := range ExperimentIDs {
		tbl, err := w.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
			t.Errorf("%s: empty table", id)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatalf("%s: render: %v", id, err)
		}
		if !strings.Contains(sb.String(), tbl.Title) {
			t.Errorf("%s: render lacks title", id)
		}
	}
	if _, err := w.Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestMeasureQueriesChargesIO(t *testing.T) {
	w := tinyWorkspace(t)
	ds, err := w.Dataset("Austin")
	if err != nil {
		t.Fatal(err)
	}
	db, err := w.Open(ds, "hdd")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	wl := w.NewWorkload(ds, 3)
	avg, err := MeasureQueries(db, 3, func(i int) error {
		_, _, err := db.EarliestArrival(wl.Sources[i], wl.Goals[i], wl.Starts[i])
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// A cold HDD query must cost at least one simulated random read (12ms).
	if avg < 4*time.Millisecond {
		t.Errorf("avg cold HDD v2v query %v implausibly fast", avg)
	}
}

// TestMeasureQueriesParallel checks that the parallel path visits every
// workload entry exactly once, propagates errors, and divides the simulated
// device time by the parallelism.
func TestMeasureQueriesParallel(t *testing.T) {
	w := tinyWorkspace(t)
	ds, err := w.Dataset("Austin")
	if err != nil {
		t.Fatal(err)
	}
	db, err := w.Open(ds, "hdd")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 12
	wl := w.NewWorkload(ds, n)

	var mu sync.Mutex
	seen := map[int]int{}
	query := func(i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		_, _, err := db.EarliestArrival(wl.Sources[i], wl.Goals[i], wl.Starts[i])
		return err
	}
	seq, err := MeasureQueries(db, n, query)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("sequential pass ran query %d %d times", i, seen[i])
		}
	}

	seen = map[int]int{}
	par, err := MeasureQueriesParallel(db, n, 4, query)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("parallel pass ran query %d %d times", i, seen[i])
		}
	}
	// Same cold workload, same simulated I/O — but attributed to 4 channels.
	// Allow slack for wall-clock noise; the sim term dominates on "hdd".
	if par > seq {
		t.Errorf("parallel avg %v not below sequential avg %v", par, seq)
	}

	boom := fmt.Errorf("boom")
	if _, err := MeasureQueriesParallel(db, n, 3, func(i int) error {
		if i == 5 {
			return boom
		}
		return query(i)
	}); err != boom {
		t.Errorf("parallel error not propagated: %v", err)
	}
}
