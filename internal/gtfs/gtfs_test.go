package gtfs

import (
	"os"
	"path/filepath"
	"testing"

	"ptldb/internal/synth"
	"ptldb/internal/timetable"
)

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want timetable.Time
		ok   bool
	}{
		{"00:00:00", 0, true},
		{"10:00:00", 36000, true},
		{"25:30:05", 25*3600 + 30*60 + 5, true}, // after-midnight service
		{" 08:05:09 ", 8*3600 + 5*60 + 9, true},
		{"8:5:9", 8*3600 + 5*60 + 9, true},
		{"10:60:00", 0, false},
		{"10:00", 0, false},
		{"abc", 0, false},
		{"-1:00:00", 0, false},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseTime(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseTime(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFormatTimeRoundTrip(t *testing.T) {
	for _, v := range []timetable.Time{0, 1, 3599, 36000, 86399, 90000} {
		got, err := ParseTime(FormatTime(v))
		if err != nil || got != v {
			t.Errorf("round trip %d -> %q -> %d (%v)", v, FormatTime(v), got, err)
		}
	}
}

// writeMiniFeed writes a two-trip feed by hand.
func writeMiniFeed(t *testing.T, dir string) {
	t.Helper()
	files := map[string]string{
		"stops.txt": `stop_id,stop_name,stop_lat,stop_lon
A,Alpha,37.1,23.1
B,Beta,37.2,23.2
C,Gamma,37.3,23.3
`,
		"routes.txt": `route_id,route_short_name,route_type
R1,10,3
`,
		"trips.txt": `route_id,service_id,trip_id
R1,wk,T1
R1,wk,T2
`,
		"stop_times.txt": `trip_id,arrival_time,departure_time,stop_id,stop_sequence
T1,08:00:00,08:00:00,A,1
T1,08:10:00,08:12:00,B,2
T1,08:20:00,08:20:00,C,3
T2,09:00:00,09:00:00,C,1
T2,09:15:00,09:15:00,A,2
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadAndConvert(t *testing.T) {
	dir := t.TempDir()
	writeMiniFeed(t, dir)
	feed, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(feed.Stops) != 3 || len(feed.Trips) != 2 || len(feed.StopTimes) != 5 || len(feed.Routes) != 1 {
		t.Fatalf("feed sizes: %d stops %d trips %d stop_times %d routes",
			len(feed.Stops), len(feed.Trips), len(feed.StopTimes), len(feed.Routes))
	}
	tt, skipped, err := feed.Timetable()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if tt.NumStops() != 3 || tt.NumConnections() != 3 || tt.NumTrips() != 2 {
		t.Fatalf("timetable: %+v", tt.Stats())
	}
	// T1's second leg departs B at 08:12 (departure, not arrival).
	var found bool
	for _, c := range tt.Connections() {
		if c.Dep == 8*3600+12*60 && c.Arr == 8*3600+20*60 {
			found = true
		}
	}
	if !found {
		t.Error("dwell time not honoured: B->C leg missing 08:12 departure")
	}
}

func TestTimetableSkipsDegenerateConnections(t *testing.T) {
	dir := t.TempDir()
	writeMiniFeed(t, dir)
	// Append a trip with a zero-duration hop and a same-stop hop.
	f, err := os.OpenFile(filepath.Join(dir, "stop_times.txt"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("T2,09:15:00,09:15:00,B,3\nT2,09:15:00,09:15:00,B,4\n")
	f.Close()
	feed, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, skipped, err := feed.Timetable()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir); err == nil {
		t.Error("Load of empty dir succeeded")
	}
	writeMiniFeed(t, dir)
	// Unknown stop reference.
	f, _ := os.OpenFile(filepath.Join(dir, "stop_times.txt"), os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("T2,10:00:00,10:00:00,ZZZ,5\n")
	f.Close()
	feed, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := feed.Timetable(); err == nil {
		t.Error("unknown stop reference accepted")
	}
}

func TestBadTimeRejected(t *testing.T) {
	dir := t.TempDir()
	writeMiniFeed(t, dir)
	f, _ := os.OpenFile(filepath.Join(dir, "stop_times.txt"), os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("T2,banana,10:00:00,A,5\n")
	f.Close()
	if _, err := Load(dir); err == nil {
		t.Error("bad time accepted")
	}
}

// TestWriteLoadRoundTrip checks that a synthetic timetable written as GTFS
// and loaded back yields the identical connection multiset.
func TestWriteLoadRoundTrip(t *testing.T) {
	p, _ := synth.ProfileByName("Austin")
	tt := synth.Generate(p, synth.Options{Scale: 0.01, Seed: 5})
	feed := FromTimetable(tt)
	dir := t.TempDir()
	if err := feed.Write(dir); err != nil {
		t.Fatal(err)
	}
	feed2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tt2, skipped, err := feed2.Timetable()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if tt2.NumStops() != tt.NumStops() {
		t.Fatalf("stops: %d vs %d", tt2.NumStops(), tt.NumStops())
	}
	if tt2.NumConnections() != tt.NumConnections() {
		t.Fatalf("connections: %d vs %d", tt2.NumConnections(), tt.NumConnections())
	}
	// Connections are sorted identically in both (same Builder ordering), so
	// compare element-wise ignoring trip ids (renumbered on write).
	for i := range tt.Connections() {
		a, b := tt.Connection(int32(i)), tt2.Connection(int32(i))
		if a.From != b.From || a.To != b.To || a.Dep != b.Dep || a.Arr != b.Arr {
			t.Fatalf("connection %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestFrequencies checks frequency-based service expansion: the trip's stop
// times act as a template repeated every headway within [start, end).
func TestFrequencies(t *testing.T) {
	dir := t.TempDir()
	writeMiniFeed(t, dir)
	// T1 (08:00 A -> 08:10/08:12 B -> 08:20 C) becomes a template running
	// every 30 min from 09:00 to 10:00 (exclusive): runs at 09:00 and 09:30.
	if err := os.WriteFile(filepath.Join(dir, "frequencies.txt"), []byte(
		"trip_id,start_time,end_time,headway_secs\nT1,09:00:00,10:00:00,1800\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	feed, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(feed.Frequencies) != 1 {
		t.Fatalf("frequencies = %d", len(feed.Frequencies))
	}
	tt, skipped, err := feed.Timetable()
	if err != nil || skipped != 0 {
		t.Fatal(skipped, err)
	}
	// T2 contributes 1 connection; T1's template contributes 2 connections
	// per run x 2 runs = 4. The original T1 itself is replaced by the runs.
	if tt.NumConnections() != 5 {
		t.Fatalf("connections = %d, want 5", tt.NumConnections())
	}
	// First run: A departs 09:00, B->C leg departs 09:12 (dwell preserved).
	var found9, found912 bool
	for _, c := range tt.Connections() {
		if c.Dep == 9*3600 {
			found9 = true
		}
		if c.Dep == 9*3600+12*60 && c.Arr == 9*3600+20*60 {
			found912 = true
		}
	}
	if !found9 || !found912 {
		t.Errorf("template shift wrong: dep9=%v dep912=%v", found9, found912)
	}
	// Each run is a distinct trip (no accidental vehicle sharing).
	if tt.NumTrips() != 3 { // T2 + two T1 runs
		t.Errorf("trips = %d, want 3", tt.NumTrips())
	}
}

func TestFrequenciesErrors(t *testing.T) {
	dir := t.TempDir()
	writeMiniFeed(t, dir)
	os.WriteFile(filepath.Join(dir, "frequencies.txt"), []byte(
		"trip_id,start_time,end_time,headway_secs\nZZZ,09:00:00,10:00:00,600\n"), 0o644)
	feed, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := feed.Timetable(); err == nil {
		t.Error("frequency with unknown trip accepted")
	}
	os.WriteFile(filepath.Join(dir, "frequencies.txt"), []byte(
		"trip_id,start_time,end_time,headway_secs\nT1,09:00:00,10:00:00,0\n"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Error("zero headway accepted")
	}
}
