// Package gtfs reads and writes the subset of the General Transit Feed
// Specification needed to populate a timetable: stops.txt, routes.txt,
// trips.txt, stop_times.txt and (optionally) calendar.txt. The paper's
// evaluation datasets are one-weekday GTFS extracts of eleven city feeds;
// this package lets PTLDB ingest such feeds directly and lets the synthetic
// generator emit feeds in the same format.
package gtfs

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ptldb/internal/timetable"
)

// Feed is an in-memory GTFS subset.
type Feed struct {
	Stops       []Stop
	Routes      []Route
	Trips       []Trip
	StopTimes   []StopTime
	Frequencies []Frequency
}

// Frequency is one frequencies.txt record: the referenced trip's stop times
// act as a template repeated every Headway seconds from Start until End
// (exclusive), per the GTFS frequency-based-service model.
type Frequency struct {
	TripID  string
	Start   timetable.Time
	End     timetable.Time
	Headway timetable.Time
}

// Stop is one stops.txt record.
type Stop struct {
	ID   string
	Name string
	Lat  float64
	Lon  float64
}

// Route is one routes.txt record.
type Route struct {
	ID        string
	ShortName string
	Type      int
}

// Trip is one trips.txt record.
type Trip struct {
	RouteID   string
	ServiceID string
	ID        string
}

// StopTime is one stop_times.txt record. Times are seconds after midnight
// (GTFS allows hours >= 24 for after-midnight service).
type StopTime struct {
	TripID    string
	Arrival   timetable.Time
	Departure timetable.Time
	StopID    string
	Seq       int
}

// ParseTime parses a GTFS HH:MM:SS timestamp (hours may exceed 23).
func ParseTime(s string) (timetable.Time, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("gtfs: bad time %q", s)
	}
	h, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	sec, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || h < 0 || m < 0 || m > 59 || sec < 0 || sec > 59 {
		return 0, fmt.Errorf("gtfs: bad time %q", s)
	}
	return timetable.Time(h*3600 + m*60 + sec), nil
}

// FormatTime renders t as GTFS HH:MM:SS.
func FormatTime(t timetable.Time) string {
	v := int32(t)
	return fmt.Sprintf("%02d:%02d:%02d", v/3600, v/60%60, v%60)
}

// Load reads a GTFS directory.
func Load(dir string) (*Feed, error) {
	f := &Feed{}
	if err := readCSV(filepath.Join(dir, "stops.txt"), func(get func(string) string) error {
		lat, _ := strconv.ParseFloat(get("stop_lat"), 64)
		lon, _ := strconv.ParseFloat(get("stop_lon"), 64)
		id := get("stop_id")
		if id == "" {
			return fmt.Errorf("gtfs: stop with empty stop_id")
		}
		f.Stops = append(f.Stops, Stop{ID: id, Name: get("stop_name"), Lat: lat, Lon: lon})
		return nil
	}); err != nil {
		return nil, err
	}
	// routes.txt is optional for building a timetable.
	if _, err := os.Stat(filepath.Join(dir, "routes.txt")); err == nil {
		if err := readCSV(filepath.Join(dir, "routes.txt"), func(get func(string) string) error {
			typ, _ := strconv.Atoi(get("route_type"))
			f.Routes = append(f.Routes, Route{ID: get("route_id"), ShortName: get("route_short_name"), Type: typ})
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := readCSV(filepath.Join(dir, "trips.txt"), func(get func(string) string) error {
		id := get("trip_id")
		if id == "" {
			return fmt.Errorf("gtfs: trip with empty trip_id")
		}
		f.Trips = append(f.Trips, Trip{RouteID: get("route_id"), ServiceID: get("service_id"), ID: id})
		return nil
	}); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, "frequencies.txt")); err == nil {
		if err := readCSV(filepath.Join(dir, "frequencies.txt"), func(get func(string) string) error {
			start, err := ParseTime(get("start_time"))
			if err != nil {
				return err
			}
			end, err := ParseTime(get("end_time"))
			if err != nil {
				return err
			}
			hw, err := strconv.Atoi(get("headway_secs"))
			if err != nil || hw <= 0 {
				return fmt.Errorf("gtfs: bad headway_secs %q", get("headway_secs"))
			}
			f.Frequencies = append(f.Frequencies, Frequency{
				TripID: get("trip_id"), Start: start, End: end, Headway: timetable.Time(hw),
			})
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := readCSV(filepath.Join(dir, "stop_times.txt"), func(get func(string) string) error {
		arr, err := ParseTime(get("arrival_time"))
		if err != nil {
			return err
		}
		dep, err := ParseTime(get("departure_time"))
		if err != nil {
			return err
		}
		seq, err := strconv.Atoi(get("stop_sequence"))
		if err != nil {
			return fmt.Errorf("gtfs: bad stop_sequence %q", get("stop_sequence"))
		}
		f.StopTimes = append(f.StopTimes, StopTime{
			TripID: get("trip_id"), Arrival: arr, Departure: dep,
			StopID: get("stop_id"), Seq: seq,
		})
		return nil
	}); err != nil {
		return nil, err
	}
	return f, nil
}

// readCSV parses one GTFS CSV file, calling row with a header-keyed getter.
func readCSV(path string, row func(get func(string) string) error) error {
	fh, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("gtfs: %w", err)
	}
	defer fh.Close()
	r := csv.NewReader(fh)
	r.FieldsPerRecord = -1
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("gtfs: %s: missing header: %w", path, err)
	}
	cols := map[string]int{}
	for i, h := range header {
		cols[strings.TrimSpace(strings.TrimPrefix(h, "\ufeff"))] = i
	}
	line := 1
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("gtfs: %s line %d: %w", path, line+1, err)
		}
		line++
		get := func(name string) string {
			i, ok := cols[name]
			if !ok || i >= len(rec) {
				return ""
			}
			return strings.TrimSpace(rec[i])
		}
		if err := row(get); err != nil {
			return fmt.Errorf("gtfs: %s line %d: %w", path, line, err)
		}
	}
}

// Timetable converts the feed into a timetable multigraph: consecutive stop
// times of each trip become elementary connections. Connections with
// non-positive duration (same-minute stops are common in real feeds) are
// skipped, matching TTL's positive-weight model; the count of skipped
// connections is returned.
func (f *Feed) Timetable() (*timetable.Timetable, int, error) {
	var b timetable.Builder
	stopIdx := make(map[string]timetable.StopID, len(f.Stops))
	for _, s := range f.Stops {
		if _, dup := stopIdx[s.ID]; dup {
			return nil, 0, fmt.Errorf("gtfs: duplicate stop_id %q", s.ID)
		}
		stopIdx[s.ID] = b.AddStop(s.Name, s.Lat, s.Lon)
	}
	tripIdx := make(map[string]timetable.TripID, len(f.Trips))
	for _, t := range f.Trips {
		if _, dup := tripIdx[t.ID]; dup {
			return nil, 0, fmt.Errorf("gtfs: duplicate trip_id %q", t.ID)
		}
		tripIdx[t.ID] = timetable.TripID(len(tripIdx))
	}

	byTrip := map[string][]StopTime{}
	for _, st := range f.StopTimes {
		if _, ok := tripIdx[st.TripID]; !ok {
			return nil, 0, fmt.Errorf("gtfs: stop_time references unknown trip %q", st.TripID)
		}
		if _, ok := stopIdx[st.StopID]; !ok {
			return nil, 0, fmt.Errorf("gtfs: stop_time references unknown stop %q", st.StopID)
		}
		byTrip[st.TripID] = append(byTrip[st.TripID], st)
	}
	freqByTrip := map[string][]Frequency{}
	for _, fr := range f.Frequencies {
		if _, ok := tripIdx[fr.TripID]; !ok {
			return nil, 0, fmt.Errorf("gtfs: frequency references unknown trip %q", fr.TripID)
		}
		freqByTrip[fr.TripID] = append(freqByTrip[fr.TripID], fr)
	}
	skipped := 0
	tripIDs := make([]string, 0, len(byTrip))
	for id := range byTrip {
		tripIDs = append(tripIDs, id)
	}
	sort.Strings(tripIDs) // deterministic construction
	nextTrip := timetable.TripID(len(tripIdx))
	for _, id := range tripIDs {
		sts := byTrip[id]
		sort.Slice(sts, func(i, j int) bool { return sts[i].Seq < sts[j].Seq })
		emit := func(shift timetable.Time, trip timetable.TripID) {
			for i := 0; i+1 < len(sts); i++ {
				from, to := stopIdx[sts[i].StopID], stopIdx[sts[i+1].StopID]
				dep, arr := sts[i].Departure+shift, sts[i+1].Arrival+shift
				if from == to || arr <= dep {
					skipped++
					continue
				}
				b.AddConnection(from, to, dep, arr, trip)
			}
		}
		freqs := freqByTrip[id]
		if len(freqs) == 0 {
			emit(0, tripIdx[id])
			continue
		}
		// Frequency-based service: the stop times are a template anchored at
		// the trip's first departure; one run starts at every headway step
		// in [Start, End).
		if len(sts) == 0 {
			continue
		}
		base := sts[0].Departure
		for _, fr := range freqs {
			for t0 := fr.Start; t0 < fr.End; t0 += fr.Headway {
				emit(t0-base, nextTrip)
				nextTrip++
			}
		}
	}
	tt, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return tt, skipped, nil
}

// Write emits the feed as a GTFS directory (stops, routes, trips,
// stop_times and a single-service calendar).
func (f *Feed) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	w := func(name string, header []string, rows [][]string) error {
		fh, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		cw := csv.NewWriter(fh)
		if err := cw.Write(header); err != nil {
			fh.Close()
			return err
		}
		if err := cw.WriteAll(rows); err != nil {
			fh.Close()
			return err
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}

	stops := make([][]string, len(f.Stops))
	for i, s := range f.Stops {
		stops[i] = []string{s.ID, s.Name,
			strconv.FormatFloat(s.Lat, 'f', 6, 64), strconv.FormatFloat(s.Lon, 'f', 6, 64)}
	}
	if err := w("stops.txt", []string{"stop_id", "stop_name", "stop_lat", "stop_lon"}, stops); err != nil {
		return err
	}
	routes := make([][]string, len(f.Routes))
	for i, r := range f.Routes {
		routes[i] = []string{r.ID, r.ShortName, strconv.Itoa(r.Type)}
	}
	if err := w("routes.txt", []string{"route_id", "route_short_name", "route_type"}, routes); err != nil {
		return err
	}
	trips := make([][]string, len(f.Trips))
	for i, t := range f.Trips {
		trips[i] = []string{t.RouteID, t.ServiceID, t.ID}
	}
	if err := w("trips.txt", []string{"route_id", "service_id", "trip_id"}, trips); err != nil {
		return err
	}
	sts := make([][]string, len(f.StopTimes))
	for i, st := range f.StopTimes {
		sts[i] = []string{st.TripID, FormatTime(st.Arrival), FormatTime(st.Departure), st.StopID, strconv.Itoa(st.Seq)}
	}
	if err := w("stop_times.txt", []string{"trip_id", "arrival_time", "departure_time", "stop_id", "stop_sequence"}, sts); err != nil {
		return err
	}
	cal := [][]string{{"weekday", "1", "1", "1", "1", "1", "0", "0", "20260101", "20261231"}}
	return w("calendar.txt",
		[]string{"service_id", "monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday", "start_date", "end_date"}, cal)
}

// FromTimetable converts a timetable back into a feed (used by the synthetic
// generator CLI to emit loadable GTFS).
func FromTimetable(tt *timetable.Timetable) *Feed {
	f := &Feed{}
	for _, s := range tt.Stops() {
		f.Stops = append(f.Stops, Stop{
			ID: fmt.Sprintf("S%06d", s.ID), Name: s.Name, Lat: s.Lat, Lon: s.Lon,
		})
	}
	byTrip := map[timetable.TripID][]timetable.Connection{}
	for _, c := range tt.Connections() {
		byTrip[c.Trip] = append(byTrip[c.Trip], c)
	}
	trips := make([]timetable.TripID, 0, len(byTrip))
	for id := range byTrip {
		trips = append(trips, id)
	}
	sort.Slice(trips, func(i, j int) bool { return trips[i] < trips[j] })
	f.Routes = append(f.Routes, Route{ID: "R0", ShortName: "synthetic", Type: 3})
	for _, id := range trips {
		conns := byTrip[id]
		sort.Slice(conns, func(i, j int) bool { return conns[i].Dep < conns[j].Dep })
		// A trip must be a time-ordered chain; emit a sub-trip whenever the
		// chain breaks (defensive — synthetic trips are always chains).
		part := 0
		for i := 0; i < len(conns); {
			j := i
			for j+1 < len(conns) && conns[j].To == conns[j+1].From && conns[j+1].Dep >= conns[j].Arr {
				j++
			}
			tid := fmt.Sprintf("T%06d_%d", id, part)
			part++
			f.Trips = append(f.Trips, Trip{RouteID: "R0", ServiceID: "weekday", ID: tid})
			seq := 1
			for k := i; k <= j; k++ {
				c := conns[k]
				arrive := c.Dep // boarding stop: no earlier arrival known
				if k > i {
					arrive = conns[k-1].Arr
				}
				f.StopTimes = append(f.StopTimes, StopTime{
					TripID: tid, Arrival: arrive, Departure: c.Dep,
					StopID: fmt.Sprintf("S%06d", c.From), Seq: seq,
				})
				seq++
			}
			last := conns[j]
			f.StopTimes = append(f.StopTimes, StopTime{
				TripID: tid, Arrival: last.Arr, Departure: last.Arr,
				StopID: fmt.Sprintf("S%06d", last.To), Seq: seq,
			})
			i = j + 1
		}
	}
	return f
}
