package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run under
// -race this also proves Add/Load are data-race-free.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 8, 10000
	var c Counter
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestRegistryConcurrent drives every registry family from concurrent
// goroutines while snapshots are taken, the shape -race must accept.
func TestRegistryConcurrent(t *testing.T) {
	var reg Registry
	var pool PoolMetrics
	reg.Pool = &pool
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			pool.Hits.Add(1)
			reg.Exec.RowsScanned.Add(2)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			q := &reg.Query[CodeV2VEA]
			q.Count.Add(1)
			q.Latency.Observe(time.Duration(i) * time.Microsecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	s := reg.Snapshot()
	if s.Pool.Hits != 5000 || s.Exec.RowsScanned != 10000 {
		t.Fatalf("snapshot = %+v", s)
	}
	q, ok := s.Query["v2v-ea"]
	if !ok || q.Count != 5000 || q.Latency.Count != 5000 {
		t.Fatalf("v2v-ea snapshot = %+v (present %v)", q, ok)
	}
	if len(s.Query) != 1 {
		t.Fatalf("codes that never ran must be omitted, got %v", s.Query)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamped to 0 → first bucket
	h.Observe(500 * time.Nanosecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Minute) // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	got := map[string]uint64{}
	for _, b := range s.Buckets {
		got[b.Le] = b.Count
	}
	want := map[string]uint64{"1µs": 2, "10ms": 1, "+inf": 1}
	for le, n := range want {
		if got[le] != n {
			t.Errorf("bucket %s = %d, want %d (all: %v)", le, got[le], n, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("empty buckets must be omitted: %v", got)
	}
	// Mean: (0 + 500ns + 5ms + 60s) / 4 ≈ 15.00125s ≈ 1.500125e7 µs.
	if s.MeanUs < 1.4e7 || s.MeanUs > 1.6e7 {
		t.Errorf("mean_us = %v", s.MeanUs)
	}
}

func TestCodeNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Code(0); c < NumCodes; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "code-") {
			t.Errorf("code %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate code name %q", name)
		}
		seen[name] = true
	}
	if Code(99).String() != "code-out-of-range" {
		t.Errorf("out-of-range code name = %q", Code(99).String())
	}
}

// TestTenantMetricsSnapshot checks that the lifecycle state passed by the
// router lands in the snapshot next to the counters, and that the counters
// survive the open/close transitions the metrics struct outlives.
func TestTenantMetricsSnapshot(t *testing.T) {
	var m TenantMetrics
	m.Requests.Add(3)
	m.Opens.Add(2)
	m.Closes.Add(1)
	m.Latency.Observe(time.Millisecond)
	s := m.Snapshot(true, 4096)
	if s.Requests != 3 || s.Opens != 2 || s.Closes != 1 {
		t.Fatalf("snapshot counters = %+v", s)
	}
	if !s.Open || s.ResidentBytes != 4096 {
		t.Errorf("lifecycle state = open %v resident %d, want true 4096", s.Open, s.ResidentBytes)
	}
	if s.Latency.Count != 1 {
		t.Errorf("latency count = %d, want 1", s.Latency.Count)
	}
	// Closing the tenant changes only the lifecycle view, never the counters.
	s = m.Snapshot(false, 0)
	if s.Open || s.ResidentBytes != 0 || s.Requests != 3 {
		t.Errorf("post-close snapshot = %+v", s)
	}
}

func TestSlowQueryLogger(t *testing.T) {
	var buf strings.Builder
	l := NewSlowQueryLogger(&buf, 10*time.Millisecond)
	l.Observe(Trace{Code: "v2v-ea", Fused: true, Wall: time.Millisecond})
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %q", buf.String())
	}
	l.Observe(Trace{Code: "knn-ea", Fused: true, Wall: 25 * time.Millisecond, Rows: 4, PagesRead: 7})
	line := buf.String()
	for _, frag := range []string{"code=knn-ea", "path=fused", "wall=25ms", "rows=4", "pages=7"} {
		if !strings.Contains(line, frag) {
			t.Errorf("slow line %q lacks %q", line, frag)
		}
	}
	buf.Reset()
	l.Observe(Trace{Code: "raw", Bailout: true, Wall: time.Second})
	if !strings.Contains(buf.String(), "path=bailout") {
		t.Errorf("bailout path not labelled: %q", buf.String())
	}
	buf.Reset()
	l.Observe(Trace{Code: "raw", Wall: time.Second})
	if !strings.Contains(buf.String(), "path=general") {
		t.Errorf("general path not labelled: %q", buf.String())
	}
}

func TestAggregator(t *testing.T) {
	a := NewAggregator()
	var wg sync.WaitGroup
	wg.Add(4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.Observe(Trace{Code: "v2v-ea", Fused: true, Rows: 1,
					Wall: time.Duration(g+1) * time.Millisecond, PagesRead: 2})
			}
		}(g)
	}
	wg.Wait()
	a.Observe(Trace{Code: "raw", Bailout: true, Wall: time.Second})
	tot := a.Totals()
	ea := tot["v2v-ea"]
	if ea.Count != 400 || ea.Fused != 400 || ea.Rows != 400 || ea.PagesRead != 800 {
		t.Fatalf("v2v-ea totals = %+v", ea)
	}
	if ea.WallMax != 4*time.Millisecond {
		t.Errorf("wall max = %v, want 4ms", ea.WallMax)
	}
	if tot["raw"].Bailouts != 1 {
		t.Errorf("raw totals = %+v", tot["raw"])
	}
	if codes := a.Codes(); len(codes) != 2 || codes[0] != "raw" || codes[1] != "v2v-ea" {
		t.Errorf("codes = %v, want sorted [raw v2v-ea]", codes)
	}
}
