// Package obs is PTLDB's zero-dependency observability layer: atomic
// counters and fixed-bucket latency histograms for the buffer pool, the
// executor and the paper's query Codes, plus per-query trace records, a
// slow-query log writer and a trace aggregator.
//
// Everything on a query hot path is allocation-free: counters are atomic
// adds, histograms index a fixed bucket array, and traces are plain value
// structs that are only materialized when a hook is installed. A Registry
// (and each metrics struct inside it) may be written from many goroutines
// concurrently; snapshots are taken with atomic loads and are consistent
// per counter, not across counters.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// The zero value is ready; a bare atomic.Uint64 would do, but the named
// type keeps metric fields self-describing and gives snapshots one place
// to load from.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
// hotpath — allocheck root: counter bumps run inside every query.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a level that can move both ways (resident bytes, open handles),
// safe for concurrent use. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrease).
//
// hotpath — allocheck root: gauge moves run inside every query.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Code identifies one query shape of the paper: Codes 1-4 in their EA/LD/SD
// variants, plus Raw for ad-hoc SQL issued through the store.
type Code int

// The query codes, in the order the paper introduces them.
const (
	CodeV2VEA      Code = iota // Code 1, earliest arrival
	CodeV2VLD                  // Code 1, latest departure
	CodeV2VSD                  // Code 1, shortest duration
	CodeKNNNaiveEA             // Code 2, EA
	CodeKNNNaiveLD             // Code 2, LD analogue
	CodeKNNEA                  // Code 3, kNN
	CodeKNNLD                  // Code 4, kNN
	CodeOTMEA                  // Code 3, one-to-many
	CodeOTMLD                  // Code 4, one-to-many
	CodeRaw                    // ad-hoc SQL
	NumCodes
)

var codeNames = [NumCodes]string{
	"v2v-ea", "v2v-ld", "v2v-sd",
	"knn-naive-ea", "knn-naive-ld",
	"knn-ea", "knn-ld", "otm-ea", "otm-ld",
	"raw",
}

// String returns the code's stable name ("v2v-ea", "knn-naive-ld", ...), or
// a fixed sentinel for out-of-range values.
//
// hotpath — allocheck root: the trace path renders the code once per query
// when a hook is installed, so even the out-of-range branch must not build a
// string.
func (c Code) String() string {
	if c < 0 || c >= NumCodes {
		return "code-out-of-range"
	}
	return codeNames[c]
}

// histBounds are the histogram's upper bucket bounds: latency decades from
// 1µs to 10s, with a final overflow bucket. Fixed bounds keep Observe
// allocation-free and make snapshots comparable across runs.
var histBounds = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// numHistBuckets counts the bounded buckets plus the overflow bucket.
const numHistBuckets = len(histBounds) + 1

// Histogram is a fixed-bucket latency histogram safe for concurrent Observe.
type Histogram struct {
	buckets [numHistBuckets]Counter
	count   Counter
	sumNs   Counter
}

// Observe records one latency sample.
//
// hotpath — allocheck root: per-query latency recording.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	MeanUs  float64  `json:"mean_us"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one histogram bucket: samples with latency <= Le ("+inf" for
// the overflow bucket). Empty buckets are omitted from snapshots.
type Bucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count > 0 {
		s.MeanUs = float64(h.sumNs.Load()) / float64(s.Count) / 1e3
	}
	for i := 0; i < numHistBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := "+inf"
		if i < len(histBounds) {
			le = histBounds[i].String()
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
	}
	return s
}

// PoolMetrics are the buffer pool's counters. Hits and misses follow the
// pool's singleflight accounting (a failed coalesced load is one miss and
// zero hits); evictions count frames displaced for capacity (DropCaches,
// being a bulk reset, is not an eviction); write-backs count dirty pages
// written to the device by eviction or flushing.
type PoolMetrics struct {
	Hits       Counter
	Misses     Counter
	Evictions  Counter
	WriteBacks Counter
}

// PoolSnapshot is a point-in-time copy of PoolMetrics.
type PoolSnapshot struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	WriteBacks uint64 `json:"write_backs"`
}

// Snapshot copies the pool counters.
func (m *PoolMetrics) Snapshot() PoolSnapshot {
	return PoolSnapshot{
		Hits:       m.Hits.Load(),
		Misses:     m.Misses.Load(),
		Evictions:  m.Evictions.Load(),
		WriteBacks: m.WriteBacks.Load(),
	}
}

// ExecMetrics are the executor's counters: how statements were dispatched
// (fused vs. general, with runtime bailouts counted separately), how many
// table rows the storage layer surfaced, and how many label tuples the
// operators merged (fused fold steps, or rows produced by UNNEST expansion
// on the general path).
type ExecMetrics struct {
	FusedRuns     Counter
	FusedBailouts Counter
	GeneralRuns   Counter
	RowsScanned   Counter
	TuplesMerged  Counter
}

// ExecSnapshot is a point-in-time copy of ExecMetrics.
type ExecSnapshot struct {
	FusedRuns     uint64 `json:"fused_runs"`
	FusedBailouts uint64 `json:"fused_bailouts"`
	GeneralRuns   uint64 `json:"general_runs"`
	RowsScanned   uint64 `json:"rows_scanned"`
	TuplesMerged  uint64 `json:"tuples_merged"`
}

// Snapshot copies the executor counters.
func (m *ExecMetrics) Snapshot() ExecSnapshot {
	return ExecSnapshot{
		FusedRuns:     m.FusedRuns.Load(),
		FusedBailouts: m.FusedBailouts.Load(),
		GeneralRuns:   m.GeneralRuns.Load(),
		RowsScanned:   m.RowsScanned.Load(),
		TuplesMerged:  m.TuplesMerged.Load(),
	}
}

// SegmentMetrics are the columnar label segment counters: rows served from
// a segment (hits), columns decoded out of segment payloads, compressed
// payload bytes read, and segment files rejected at open (corrupt or
// truncated — the table degraded to the heap path). Device page reads for
// segment files flow through the buffer pool and are counted in PoolMetrics
// (and hence in Trace.PagesRead) like any other page.
type SegmentMetrics struct {
	Hits           Counter
	ColumnsDecoded Counter
	BytesRead      Counter
	OpenFailures   Counter
}

// SegmentSnapshot is a point-in-time copy of SegmentMetrics.
type SegmentSnapshot struct {
	Hits           uint64 `json:"hits"`
	ColumnsDecoded uint64 `json:"columns_decoded"`
	BytesRead      uint64 `json:"bytes_read"`
	OpenFailures   uint64 `json:"open_failures,omitempty"`
}

// Snapshot copies the segment counters.
func (m *SegmentMetrics) Snapshot() SegmentSnapshot {
	return SegmentSnapshot{
		Hits:           m.Hits.Load(),
		ColumnsDecoded: m.ColumnsDecoded.Load(),
		BytesRead:      m.BytesRead.Load(),
		OpenFailures:   m.OpenFailures.Load(),
	}
}

// VCacheMetrics are the resident vector cache's counters: lookups served
// from materialized column vectors (hits), lookups that found the table not
// resident (misses), whole-table evictions under budget pressure,
// materializations performed (singleflight — concurrent first-touch queries
// share one), the current resident bytes, and the latency of each
// materialization (segment read + decode).
type VCacheMetrics struct {
	Hits             Counter
	Misses           Counter
	Evictions        Counter
	Materializations Counter
	ResidentBytes    Gauge
	Materialize      Histogram
}

// VCacheSnapshot is a point-in-time copy of VCacheMetrics.
type VCacheSnapshot struct {
	Hits             uint64            `json:"hits"`
	Misses           uint64            `json:"misses"`
	Evictions        uint64            `json:"evictions"`
	Materializations uint64            `json:"materializations"`
	ResidentBytes    int64             `json:"resident_bytes"`
	Materialize      HistogramSnapshot `json:"materialize"`
}

// Snapshot copies the vector cache counters.
func (m *VCacheMetrics) Snapshot() VCacheSnapshot {
	return VCacheSnapshot{
		Hits:             m.Hits.Load(),
		Misses:           m.Misses.Load(),
		Evictions:        m.Evictions.Load(),
		Materializations: m.Materializations.Load(),
		ResidentBytes:    m.ResidentBytes.Load(),
		Materialize:      m.Materialize.Snapshot(),
	}
}

// ServeMetrics are the network serving layer's counters (internal/serve).
// Requests counts requests that entered the request pipeline (parse failures
// are rejected before admission and counted as BadRequests only); Executions
// counts store executions actually launched; Coalesced counts requests that
// attached to an identical execution already in flight instead of starting
// their own — the query-level singleflight; Rejected counts 503s at the
// admission cap; Timeouts counts requests whose deadline expired while the
// shared execution was still running; BadRequests and Errors count 400 and
// 500 responses. InFlight is the number of executions currently holding an
// admission slot. Latency is the whole-request wall time of served requests
// (coalesced joins included) excluding admission rejections: a 503 returns
// in microseconds by design, and folding those into the same histogram would
// drag the percentiles down exactly when the server is overloaded. Rejected
// requests record into RejectedLatency instead, so both populations stay
// visible.
type ServeMetrics struct {
	Requests        Counter
	Executions      Counter
	Coalesced       Counter
	Rejected        Counter
	Timeouts        Counter
	BadRequests     Counter
	Errors          Counter
	InFlight        Gauge
	Latency         Histogram
	RejectedLatency Histogram
}

// ServeSnapshot is a point-in-time copy of ServeMetrics.
type ServeSnapshot struct {
	Requests        uint64            `json:"requests"`
	Executions      uint64            `json:"executions"`
	Coalesced       uint64            `json:"coalesced"`
	Rejected        uint64            `json:"rejected"`
	Timeouts        uint64            `json:"timeouts"`
	BadRequests     uint64            `json:"bad_requests"`
	Errors          uint64            `json:"errors"`
	InFlight        int64             `json:"in_flight"`
	Latency         HistogramSnapshot `json:"latency"`
	RejectedLatency HistogramSnapshot `json:"rejected_latency"`
}

// Snapshot copies the serving counters.
func (m *ServeMetrics) Snapshot() ServeSnapshot {
	return ServeSnapshot{
		Requests:        m.Requests.Load(),
		Executions:      m.Executions.Load(),
		Coalesced:       m.Coalesced.Load(),
		Rejected:        m.Rejected.Load(),
		Timeouts:        m.Timeouts.Load(),
		BadRequests:     m.BadRequests.Load(),
		Errors:          m.Errors.Load(),
		InFlight:        m.InFlight.Load(),
		Latency:         m.Latency.Snapshot(),
		RejectedLatency: m.RejectedLatency.Snapshot(),
	}
}

// TenantMetrics are one city's counters in a multi-tenant router
// (internal/tenant): query requests routed to the tenant, their latency
// (admission rejections excluded, like ServeMetrics.Latency), and the tenant
// database's open/close events under lazy open and LRU close. One
// TenantMetrics lives for the router's whole lifetime even while its tenant
// database is closed, so the counters survive open/close cycles.
type TenantMetrics struct {
	Requests Counter
	Opens    Counter
	Closes   Counter
	Latency  Histogram
}

// TenantSnapshot is a point-in-time copy of TenantMetrics plus the tenant's
// lifecycle state: whether its database is currently open and, when open,
// the resident bytes held by its vector-cache budget share.
type TenantSnapshot struct {
	Requests      uint64            `json:"requests"`
	Opens         uint64            `json:"opens"`
	Closes        uint64            `json:"closes"`
	Open          bool              `json:"open"`
	ResidentBytes int64             `json:"resident_bytes"`
	Latency       HistogramSnapshot `json:"latency"`
}

// Snapshot copies the tenant counters. open and residentBytes come from the
// router, which knows the lifecycle state the metrics struct outlives.
func (m *TenantMetrics) Snapshot(open bool, residentBytes int64) TenantSnapshot {
	return TenantSnapshot{
		Requests:      m.Requests.Load(),
		Opens:         m.Opens.Load(),
		Closes:        m.Closes.Load(),
		Open:          open,
		ResidentBytes: residentBytes,
		Latency:       m.Latency.Snapshot(),
	}
}

// QueryMetrics are one query Code's counters.
type QueryMetrics struct {
	Count   Counter
	Latency Histogram
}

// QuerySnapshot is a point-in-time copy of QueryMetrics.
type QuerySnapshot struct {
	Count   uint64            `json:"count"`
	Latency HistogramSnapshot `json:"latency"`
}

// Registry aggregates every metrics family of one database handle. Pool
// points into the buffer pool's own counters (the pool predates the
// registry in the open sequence); VCache points into the vector cache's
// counters and is nil when the cache is disabled; Exec and Query live
// inline.
type Registry struct {
	Pool    *PoolMetrics
	VCache  *VCacheMetrics
	Exec    ExecMetrics
	Segment SegmentMetrics
	Query   [NumCodes]QueryMetrics
}

// Snapshot is a JSON-marshalable copy of a Registry, the payload of
// DB.Snapshot and ptldb-bench -obs-out. VCache is nil when the handle runs
// without a vector cache.
type Snapshot struct {
	Pool    PoolSnapshot             `json:"pool"`
	VCache  *VCacheSnapshot          `json:"vcache,omitempty"`
	Exec    ExecSnapshot             `json:"exec"`
	Segment SegmentSnapshot          `json:"segment"`
	Query   map[string]QuerySnapshot `json:"query"`
	// Serve is filled by ptldb-serve's /obs endpoint (the store itself has
	// no serving counters); nil everywhere else.
	Serve *ServeSnapshot `json:"serve,omitempty"`
	// Tenant is filled by the multi-tenant /t/{city}/obs endpoint with the
	// city's routing counters; nil everywhere else.
	Tenant *TenantSnapshot `json:"tenant,omitempty"`
}

// Snapshot copies the registry. Codes that never ran are omitted from the
// query map.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Exec: r.Exec.Snapshot(), Segment: r.Segment.Snapshot(), Query: map[string]QuerySnapshot{}}
	if r.Pool != nil {
		s.Pool = r.Pool.Snapshot()
	}
	if r.VCache != nil {
		vc := r.VCache.Snapshot()
		s.VCache = &vc
	}
	for c := Code(0); c < NumCodes; c++ {
		q := &r.Query[c]
		if n := q.Count.Load(); n > 0 {
			s.Query[c.String()] = QuerySnapshot{Count: n, Latency: q.Latency.Snapshot()}
		}
	}
	return s
}

// Trace is one executed query's record, delivered to Config.TraceHook.
// Building and delivering a Trace costs a few loads per query and happens
// only when a hook is installed.
type Trace struct {
	// Code names the query shape ("v2v-ea", "knn-ld", "raw", ...).
	Code string `json:"code"`
	// Fused reports whether the fused executor answered the query; Bailout
	// reports a fused plan that hit a runtime precondition failure and
	// re-ran on the general executor.
	Fused   bool `json:"fused"`
	Bailout bool `json:"bailout,omitempty"`
	// Rows is the result-row count.
	Rows int `json:"rows"`
	// Wall is the query's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
	// PagesRead counts buffer-pool misses (device page reads) charged while
	// the query ran. Under concurrent queries the attribution is
	// approximate: the delta includes pages read by overlapping queries.
	PagesRead uint64 `json:"pages_read"`
	// VCacheHits counts resident-vector-cache hits while the query ran
	// (same approximate attribution as PagesRead). Zero when the cache is
	// disabled.
	VCacheHits uint64 `json:"vcache_hits,omitempty"`
}

// SlowQueryLogger writes one line per trace whose wall time reaches the
// threshold. Safe for concurrent Observe.
type SlowQueryLogger struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

// NewSlowQueryLogger returns a logger writing to w. A zero threshold logs
// every query.
func NewSlowQueryLogger(w io.Writer, threshold time.Duration) *SlowQueryLogger {
	return &SlowQueryLogger{w: w, threshold: threshold}
}

// Observe logs tr when it is slow enough.
func (l *SlowQueryLogger) Observe(tr Trace) {
	if tr.Wall < l.threshold {
		return
	}
	path := "general"
	if tr.Fused {
		path = "fused"
	} else if tr.Bailout {
		path = "bailout"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Best-effort log sink: a failed slow-query line must not fail the query.
	_, _ = fmt.Fprintf(l.w, "slow query: code=%s path=%s wall=%v rows=%d pages=%d\n",
		tr.Code, path, tr.Wall, tr.Rows, tr.PagesRead)
}

// Aggregator folds traces into per-code totals; ptldb-bench -obs-out uses
// one as its TraceHook so traces survive the benchmark's internal
// open/close cycles. Safe for concurrent Observe.
type Aggregator struct {
	mu     sync.Mutex
	byCode map[string]*TraceTotals
}

// TraceTotals are one code's aggregated trace records.
type TraceTotals struct {
	Count      uint64        `json:"count"`
	Fused      uint64        `json:"fused"`
	Bailouts   uint64        `json:"bailouts,omitempty"`
	Rows       uint64        `json:"rows"`
	PagesRead  uint64        `json:"pages_read"`
	VCacheHits uint64        `json:"vcache_hits,omitempty"`
	WallTotal  time.Duration `json:"wall_total_ns"`
	WallMax    time.Duration `json:"wall_max_ns"`
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{byCode: map[string]*TraceTotals{}}
}

// Observe folds one trace.
func (a *Aggregator) Observe(tr Trace) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.byCode[tr.Code]
	if t == nil {
		t = &TraceTotals{}
		a.byCode[tr.Code] = t
	}
	t.Count++
	if tr.Fused {
		t.Fused++
	}
	if tr.Bailout {
		t.Bailouts++
	}
	t.Rows += uint64(tr.Rows)
	t.PagesRead += tr.PagesRead
	t.VCacheHits += tr.VCacheHits
	t.WallTotal += tr.Wall
	if tr.Wall > t.WallMax {
		t.WallMax = tr.Wall
	}
}

// Totals returns a copy of the aggregate, keyed by code name.
func (a *Aggregator) Totals() map[string]TraceTotals {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TraceTotals, len(a.byCode))
	for k, v := range a.byCode {
		out[k] = *v
	}
	return out
}

// Codes returns the observed code names sorted, for deterministic reports.
func (a *Aggregator) Codes() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.byCode))
	for k := range a.byCode {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
