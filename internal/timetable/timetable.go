// Package timetable defines the schedule-based public-transportation network
// model used throughout PTLDB.
//
// Following the notation of Timetable Labeling (Wang et al., SIGMOD 2015),
// which the PTLDB paper builds on, a timetable is a multigraph whose vertices
// are stops ("distinct locations where one may board a transit vehicle") and
// whose arcs are elementary connections: a vehicle of trip b departs stop u at
// timestamp t_d and arrives at stop v at timestamp t_a. Multiple arcs may
// connect the same pair of stops, one per scheduled trip.
package timetable

import (
	"errors"
	"fmt"
	"sort"
)

// StopID identifies a stop (vertex). IDs are dense integers in [0, NumStops).
type StopID int32

// TripID identifies a trip (a single scheduled run of a vehicle). The value
// NoTrip marks a synthetic connection that belongs to no trip (e.g. a dummy
// label tuple).
type TripID int32

// NoTrip is the TripID used when a connection or label tuple is not backed by
// an actual trip.
const NoTrip TripID = -1

// NoStop is used where a StopID is required but absent (e.g. the pivot of a
// direct-trip label tuple).
const NoStop StopID = -1

// Time is a timestamp in seconds relative to the start of the service day.
// Values may exceed 24h*3600 for trips that run past midnight.
type Time int32

// Infinity is a sentinel greater than every valid timestamp.
const Infinity Time = 1<<31 - 1

// NegInfinity is a sentinel smaller than every valid timestamp.
const NegInfinity Time = -(1<<31 - 1)

// Hour returns the hour bucket of t, i.e. floor(t/3600). It is the grouping
// unit of the knn_* and otm_* tables of the PTLDB paper (Section 3.2.1).
// Floor, not truncation: negative timestamps (label tuples of trips that
// start before the service day, NegInfinity sentinels) must land in the
// bucket below zero, or bucketed lookups skip them.
func (t Time) Hour() int32 { return int32(FloorDiv(int64(t), 3600)) }

// FloorDiv returns floor(a/b) for b > 0. Go's / truncates toward zero, which
// differs from floor exactly when a is negative and not a multiple of b.
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// String renders t as hh:mm:ss.
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	if t == NegInfinity {
		return "-inf"
	}
	neg := ""
	v := int32(t)
	if v < 0 {
		neg, v = "-", -v
	}
	return fmt.Sprintf("%s%02d:%02d:%02d", neg, v/3600, v/60%60, v%60)
}

// Stop is a vertex of the timetable graph.
type Stop struct {
	ID   StopID
	Name string
	// Lat and Lon are WGS84 coordinates. They are informational only; no
	// query in PTLDB depends on geometry.
	Lat, Lon float64
}

// Connection is one arc of the timetable multigraph: trip Trip departs From
// at Dep and arrives at To at Arr.
type Connection struct {
	From, To StopID
	Dep, Arr Time
	Trip     TripID
}

// Duration returns the riding time of the connection.
func (c Connection) Duration() Time { return c.Arr - c.Dep }

// Timetable is an immutable schedule-based network. Construct one with a
// Builder; the zero value is an empty network.
type Timetable struct {
	stops []Stop
	// conns holds every connection sorted by (Dep, Arr, From, To, Trip).
	// This is the scan order of the Connection Scan Algorithm.
	conns []Connection

	// out[v] lists indexes into conns of connections departing v, sorted by
	// Dep ascending. in[v] lists indexes of connections arriving at v,
	// sorted by Arr ascending.
	out, in [][]int32

	minTime, maxTime Time
	numTrips         int
}

// NumStops returns |V|.
func (tt *Timetable) NumStops() int { return len(tt.stops) }

// NumConnections returns |E|, the number of elementary connections.
func (tt *Timetable) NumConnections() int { return len(tt.conns) }

// NumTrips returns the number of distinct trips.
func (tt *Timetable) NumTrips() int { return tt.numTrips }

// Stop returns the stop with the given id.
func (tt *Timetable) Stop(id StopID) Stop { return tt.stops[id] }

// Stops returns all stops. The returned slice must not be modified.
func (tt *Timetable) Stops() []Stop { return tt.stops }

// Connections returns every connection sorted by departure time. The returned
// slice must not be modified.
func (tt *Timetable) Connections() []Connection { return tt.conns }

// Connection returns the i-th connection in departure order.
func (tt *Timetable) Connection(i int32) Connection { return tt.conns[i] }

// Outgoing returns the indexes (into Connections) of the connections
// departing v, sorted by departure time.
func (tt *Timetable) Outgoing(v StopID) []int32 { return tt.out[v] }

// Incoming returns the indexes (into Connections) of the connections arriving
// at v, sorted by arrival time.
func (tt *Timetable) Incoming(v StopID) []int32 { return tt.in[v] }

// MinTime returns the earliest departure timestamp in the timetable, or 0 for
// an empty network.
func (tt *Timetable) MinTime() Time { return tt.minTime }

// MaxTime returns the latest arrival timestamp in the timetable, or 0 for an
// empty network.
func (tt *Timetable) MaxTime() Time { return tt.maxTime }

// Span returns MaxTime - MinTime.
func (tt *Timetable) Span() Time { return tt.maxTime - tt.minTime }

// AvgDegree returns |E|/|V| rounded to the nearest integer, the "Avg degr."
// column of the paper's Table 7.
func (tt *Timetable) AvgDegree() int {
	if len(tt.stops) == 0 {
		return 0
	}
	return (len(tt.conns) + len(tt.stops)/2) / len(tt.stops)
}

// Stats summarizes a timetable for reporting (paper Table 7).
type Stats struct {
	Stops       int
	Connections int
	Trips       int
	AvgDegree   int
	MinTime     Time
	MaxTime     Time
}

// Stats returns summary statistics of the network.
func (tt *Timetable) Stats() Stats {
	return Stats{
		Stops:       tt.NumStops(),
		Connections: tt.NumConnections(),
		Trips:       tt.NumTrips(),
		AvgDegree:   tt.AvgDegree(),
		MinTime:     tt.minTime,
		MaxTime:     tt.maxTime,
	}
}

// Builder accumulates stops and connections and produces an immutable
// Timetable. The zero value is ready to use.
type Builder struct {
	stops []Stop
	conns []Connection
}

// AddStop registers a stop and returns its id.
func (b *Builder) AddStop(name string, lat, lon float64) StopID {
	id := StopID(len(b.stops))
	b.stops = append(b.stops, Stop{ID: id, Name: name, Lat: lat, Lon: lon})
	return id
}

// AddStops registers n unnamed stops and returns the id of the first.
func (b *Builder) AddStops(n int) StopID {
	first := StopID(len(b.stops))
	for i := 0; i < n; i++ {
		b.AddStop(fmt.Sprintf("stop-%d", int(first)+i), 0, 0)
	}
	return first
}

// AddConnection records one elementary connection.
func (b *Builder) AddConnection(from, to StopID, dep, arr Time, trip TripID) {
	b.conns = append(b.conns, Connection{From: from, To: to, Dep: dep, Arr: arr, Trip: trip})
}

// Errors returned by Builder.Build.
var (
	ErrBadStop     = errors.New("timetable: connection references unknown stop")
	ErrBadTimes    = errors.New("timetable: connection duration is not strictly positive")
	ErrSelfLoop    = errors.New("timetable: connection departs and arrives at the same stop")
	ErrNegativeDep = errors.New("timetable: connection departs at a negative timestamp")
)

// Build validates the accumulated data and returns the finished network.
func (b *Builder) Build() (*Timetable, error) {
	n := StopID(len(b.stops))
	for i, c := range b.conns {
		switch {
		case c.From < 0 || c.From >= n || c.To < 0 || c.To >= n:
			return nil, fmt.Errorf("%w: conn %d %d->%d with %d stops", ErrBadStop, i, c.From, c.To, n)
		case c.Arr <= c.Dep:
			return nil, fmt.Errorf("%w: conn %d dep=%v arr=%v", ErrBadTimes, i, c.Dep, c.Arr)
		case c.From == c.To:
			return nil, fmt.Errorf("%w: conn %d at stop %d", ErrSelfLoop, i, c.From)
		case c.Dep < 0:
			return nil, fmt.Errorf("%w: conn %d dep=%d", ErrNegativeDep, i, c.Dep)
		}
	}

	tt := &Timetable{
		stops: append([]Stop(nil), b.stops...),
		conns: append([]Connection(nil), b.conns...),
	}
	sort.Slice(tt.conns, func(i, j int) bool {
		a, b := tt.conns[i], tt.conns[j]
		if a.Dep != b.Dep {
			return a.Dep < b.Dep
		}
		if a.Arr != b.Arr {
			return a.Arr < b.Arr
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Trip < b.Trip
	})

	tt.out = make([][]int32, n)
	tt.in = make([][]int32, n)
	trips := make(map[TripID]struct{})
	tt.minTime, tt.maxTime = Infinity, NegInfinity
	for i, c := range tt.conns {
		tt.out[c.From] = append(tt.out[c.From], int32(i))
		tt.in[c.To] = append(tt.in[c.To], int32(i))
		if c.Trip != NoTrip {
			trips[c.Trip] = struct{}{}
		}
		if c.Dep < tt.minTime {
			tt.minTime = c.Dep
		}
		if c.Arr > tt.maxTime {
			tt.maxTime = c.Arr
		}
	}
	if len(tt.conns) == 0 {
		tt.minTime, tt.maxTime = 0, 0
	}
	tt.numTrips = len(trips)
	// out[v] is already sorted by Dep because conns is; in[v] needs its own
	// order by Arr.
	for v := range tt.in {
		idx := tt.in[v]
		sort.Slice(idx, func(i, j int) bool {
			a, b := tt.conns[idx[i]], tt.conns[idx[j]]
			if a.Arr != b.Arr {
				return a.Arr < b.Arr
			}
			return a.Dep < b.Dep
		})
	}
	return tt, nil
}

// MustBuild is Build that panics on error; intended for tests and examples.
func (b *Builder) MustBuild() *Timetable {
	tt, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tt
}
