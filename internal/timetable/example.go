package timetable

// PaperExample returns the example timetable graph of Figure 1 of the PTLDB
// paper: 7 stops and 4 trips. The figure annotates timestamps in units of
// 100 seconds (360 => 36,000 s = 10:00); this constructor returns real
// seconds, so e.g. the trip-1 departure from stop 5 is at 28,800 s (08:00).
//
// The four trips, reconstructed from the labels of Table 1:
//
//	trip 1: 5 @288 -> 1 @324 -> 0 @360 -> 2 @396 -> 6 @432
//	trip 2: 6 @288 -> 2 @324 -> 0 @360 -> 1 @396 -> 5 @432
//	trip 3: 3 @324 -> 0 @360 -> 4 @396
//	trip 4: 4 @324 -> 0 @360 -> 3 @396
//
// The paper's vertex order ranks stop 0 highest, followed by 1, 2, 3, 4;
// PaperExampleOrder returns it.
func PaperExample() *Timetable {
	var b Builder
	b.AddStops(7)
	add := func(from, to StopID, dep, arr Time, trip TripID) {
		b.AddConnection(from, to, dep*100, arr*100, trip)
	}
	// Trip 1.
	add(5, 1, 288, 324, 1)
	add(1, 0, 324, 360, 1)
	add(0, 2, 360, 396, 1)
	add(2, 6, 396, 432, 1)
	// Trip 2.
	add(6, 2, 288, 324, 2)
	add(2, 0, 324, 360, 2)
	add(0, 1, 360, 396, 2)
	add(1, 5, 396, 432, 2)
	// Trip 3.
	add(3, 0, 324, 360, 3)
	add(0, 4, 360, 396, 3)
	// Trip 4.
	add(4, 0, 324, 360, 4)
	add(0, 3, 360, 396, 4)
	return b.MustBuild()
}

// PaperExampleOrder returns the vertex order used in the paper's running
// example: rank[v] is the importance rank of stop v, 0 being the most
// important. Stops 5 and 6 are the least important (their relative order is
// not specified by the paper; we rank 5 above 6).
func PaperExampleOrder() []int32 {
	return []int32{0, 1, 2, 3, 4, 5, 6}
}
