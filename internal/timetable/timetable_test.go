package timetable

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "00:00:00"},
		{36000, "10:00:00"},
		{3661, "01:01:01"},
		{25*3600 + 59, "25:00:59"},
		{-60, "-00:01:00"},
		{Infinity, "inf"},
		{NegInfinity, "-inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int32(c.in), got, c.want)
		}
	}
}

func TestTimeHour(t *testing.T) {
	cases := []struct {
		in   Time
		want int32
	}{
		{0, 0}, {3599, 0}, {3600, 1}, {36000, 10}, {36001, 10}, {86399, 23}, {86400, 24},
		// Hour is documented as floor(t/3600): negative timestamps belong to
		// the bucket below zero, where truncating division would round them
		// toward bucket 0.
		{-1, -1}, {-3599, -1}, {-3600, -1}, {-3601, -2}, {-7200, -2}, {-7201, -3},
	}
	for _, c := range cases {
		if got := c.in.Hour(); got != c.want {
			t.Errorf("Time(%d).Hour() = %d, want %d", int32(c.in), got, c.want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	for a := int64(-10000); a <= 10000; a += 7 {
		for _, b := range []int64{1, 2, 3600, 7919} {
			got := FloorDiv(a, b)
			// floor(a/b): the unique q with q*b <= a < (q+1)*b.
			if got*b > a || (got+1)*b <= a {
				t.Fatalf("FloorDiv(%d, %d) = %d: not the floor quotient", a, b, got)
			}
		}
	}
}

func TestBuilderEmpty(t *testing.T) {
	var b Builder
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tt.NumStops() != 0 || tt.NumConnections() != 0 || tt.NumTrips() != 0 {
		t.Errorf("empty timetable not empty: %+v", tt.Stats())
	}
	if tt.MinTime() != 0 || tt.MaxTime() != 0 || tt.Span() != 0 {
		t.Errorf("empty timetable has nonzero time range [%v, %v]", tt.MinTime(), tt.MaxTime())
	}
}

func TestBuilderValidation(t *testing.T) {
	mk := func(f func(*Builder)) error {
		var b Builder
		b.AddStops(3)
		f(&b)
		_, err := b.Build()
		return err
	}
	cases := []struct {
		name string
		f    func(*Builder)
		want error
	}{
		{"unknown-to", func(b *Builder) { b.AddConnection(0, 7, 10, 20, 1) }, ErrBadStop},
		{"unknown-from", func(b *Builder) { b.AddConnection(-1, 1, 10, 20, 1) }, ErrBadStop},
		{"arr-before-dep", func(b *Builder) { b.AddConnection(0, 1, 20, 10, 1) }, ErrBadTimes},
		{"zero-duration", func(b *Builder) { b.AddConnection(0, 1, 20, 20, 1) }, ErrBadTimes},
		{"self-loop", func(b *Builder) { b.AddConnection(2, 2, 10, 20, 1) }, ErrSelfLoop},
		{"negative-dep", func(b *Builder) { b.AddConnection(0, 1, -5, 20, 1) }, ErrNegativeDep},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := mk(c.f)
			if err == nil {
				t.Fatalf("Build() succeeded, want %v", c.want)
			}
			if !errorIs(err, c.want) {
				t.Fatalf("Build() = %v, want %v", err, c.want)
			}
		})
	}
}

func errorIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestBuildSortsConnections(t *testing.T) {
	var b Builder
	b.AddStops(4)
	b.AddConnection(2, 3, 300, 400, 3)
	b.AddConnection(0, 1, 100, 200, 1)
	b.AddConnection(1, 2, 200, 300, 2)
	b.AddConnection(0, 2, 100, 150, 4)
	tt := b.MustBuild()

	conns := tt.Connections()
	if !sort.SliceIsSorted(conns, func(i, j int) bool { return conns[i].Dep < conns[j].Dep }) {
		t.Errorf("connections not sorted by departure: %+v", conns)
	}
	if conns[0].Arr != 150 {
		t.Errorf("tie on Dep not broken by Arr: first conn %+v", conns[0])
	}
}

func TestAdjacencyLists(t *testing.T) {
	tt := PaperExample()
	// Stop 0 has four outgoing connections (one per trip) and four incoming.
	if got := len(tt.Outgoing(0)); got != 4 {
		t.Errorf("len(Outgoing(0)) = %d, want 4", got)
	}
	if got := len(tt.Incoming(0)); got != 4 {
		t.Errorf("len(Incoming(0)) = %d, want 4", got)
	}
	for v := StopID(0); v < 7; v++ {
		out := tt.Outgoing(v)
		for i := 1; i < len(out); i++ {
			if tt.Connection(out[i-1]).Dep > tt.Connection(out[i]).Dep {
				t.Errorf("Outgoing(%d) not sorted by departure", v)
			}
		}
		for _, ci := range out {
			if tt.Connection(ci).From != v {
				t.Errorf("Outgoing(%d) contains connection from %d", v, tt.Connection(ci).From)
			}
		}
		in := tt.Incoming(v)
		for i := 1; i < len(in); i++ {
			if tt.Connection(in[i-1]).Arr > tt.Connection(in[i]).Arr {
				t.Errorf("Incoming(%d) not sorted by arrival", v)
			}
		}
		for _, ci := range in {
			if tt.Connection(ci).To != v {
				t.Errorf("Incoming(%d) contains connection to %d", v, tt.Connection(ci).To)
			}
		}
	}
}

func TestPaperExampleStats(t *testing.T) {
	tt := PaperExample()
	s := tt.Stats()
	if s.Stops != 7 {
		t.Errorf("Stops = %d, want 7", s.Stops)
	}
	if s.Connections != 12 {
		t.Errorf("Connections = %d, want 12", s.Connections)
	}
	if s.Trips != 4 {
		t.Errorf("Trips = %d, want 4", s.Trips)
	}
	if s.MinTime != 28800 {
		t.Errorf("MinTime = %v, want 08:00:00", s.MinTime)
	}
	if s.MaxTime != 43200 {
		t.Errorf("MaxTime = %v, want 12:00:00", s.MaxTime)
	}
}

func TestConnectionDuration(t *testing.T) {
	c := Connection{Dep: 100, Arr: 250}
	if c.Duration() != 150 {
		t.Errorf("Duration = %d, want 150", c.Duration())
	}
}

func TestAvgDegree(t *testing.T) {
	var b Builder
	b.AddStops(2)
	for i := 0; i < 7; i++ {
		b.AddConnection(0, 1, Time(i*100), Time(i*100+50), TripID(i))
	}
	tt := b.MustBuild()
	// 7 connections / 2 stops = 3.5, rounds to 4.
	if got := tt.AvgDegree(); got != 4 {
		t.Errorf("AvgDegree = %d, want 4", got)
	}
}

// TestAdjacencyCoversAllConnections is a property test: for random timetables,
// every connection appears exactly once in Outgoing(from) and once in
// Incoming(to), and nowhere else.
func TestAdjacencyCoversAllConnections(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b Builder
		n := 2 + rng.Intn(20)
		b.AddStops(n)
		m := rng.Intn(200)
		for i := 0; i < m; i++ {
			from := StopID(rng.Intn(n))
			to := StopID(rng.Intn(n))
			if from == to {
				to = (to + 1) % StopID(n)
			}
			dep := Time(rng.Intn(86400))
			b.AddConnection(from, to, dep, dep+1+Time(rng.Intn(3600)), TripID(rng.Intn(50)))
		}
		tt := b.MustBuild()
		seen := make([]int, tt.NumConnections())
		for v := StopID(0); v < StopID(n); v++ {
			for _, ci := range tt.Outgoing(v) {
				seen[ci]++
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		inSeen := make([]int, tt.NumConnections())
		for v := StopID(0); v < StopID(n); v++ {
			for _, ci := range tt.Incoming(v) {
				inSeen[ci]++
			}
		}
		for _, s := range inSeen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStopAccessors(t *testing.T) {
	var b Builder
	id := b.AddStop("central", 37.98, 23.73)
	tt := b.MustBuild()
	s := tt.Stop(id)
	if s.Name != "central" || s.Lat != 37.98 || s.Lon != 23.73 || s.ID != id {
		t.Errorf("Stop(%d) = %+v", id, s)
	}
	if len(tt.Stops()) != 1 {
		t.Errorf("Stops() has %d entries, want 1", len(tt.Stops()))
	}
}
