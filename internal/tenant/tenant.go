// Package tenant is PTLDB's multi-city tenancy layer: a Router that owns
// many lazily-opened databases — one per city — behind a single process,
// the deployment shape the paper's eleven-network evaluation implies. Each
// city's label store is an independent read-only artifact (the Public
// Transit Labeling observation), which makes the tenant the natural unit of
// isolation and eviction:
//
//   - Lazy open: a tenant's database opens on its first request. Concurrent
//     first requests coalesce behind a singleflight latch — the vector
//     cache's materialization protocol lifted to whole databases — so N cold
//     requests cost one Open.
//   - LRU close: at most Config.MaxOpenTenants databases are open at once;
//     opening one more closes the least-recently-used idle tenant. Requests
//     pin their tenant for the duration of the execution, so a database is
//     never closed under a running query — when every open tenant is pinned
//     the cap is temporarily exceeded rather than blocking admission.
//   - Budget division: Config.VectorCacheBytes and Config.PoolPages are
//     global budgets divided evenly across the MaxOpenTenants slots. Every
//     tenant database gets its own share, so one tenant's cold scan can
//     evict only its own pages and vectors, never a warm neighbour's — the
//     isolation property BENCH_tenants.json measures.
//
// Per-tenant accounting (request counts, latency, open/close events,
// resident bytes) lives in obs.TenantMetrics structs that outlive the
// open/close cycles of their databases.
package tenant

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ptldb"
	"ptldb/internal/core"
	"ptldb/internal/obs"
	"ptldb/internal/timetable"
)

// DB is the per-tenant database surface the router manages: the serving
// layer's Store method set plus Close. *ptldb.DB satisfies it; the lifecycle
// tests substitute fakes.
type DB interface {
	EarliestArrival(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error)
	LatestDeparture(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error)
	ShortestDuration(s, g timetable.StopID, t, tEnd timetable.Time) (timetable.Time, bool, error)
	EAKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error)
	LDKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error)
	EAOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error)
	LDOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error)
	ExplainPrepared(name string) (string, error)
	ExplainNames() []string
	Snapshot() obs.Snapshot
	Close() error
}

// Config tunes the router. The zero value serves with the defaults below.
type Config struct {
	// MaxOpenTenants caps concurrently open tenant databases (default 4).
	// The cap is soft against pinned tenants: when every open database has a
	// query in flight, one more opens rather than blocking or closing a
	// database under a running query.
	MaxOpenTenants int
	// VectorCacheBytes is the process-global resident-vector-cache budget
	// (default ptldb.DefaultVectorCacheBytes), divided evenly across the
	// MaxOpenTenants slots so tenants cannot evict each other's vectors.
	// Base.DisableVectorCache turns the cache off for every tenant.
	VectorCacheBytes int64
	// PoolPages is the process-global buffer-pool budget in 8 KiB pages
	// (default 131072), divided evenly like VectorCacheBytes.
	PoolPages int
	// Base is the per-tenant open configuration (device, segment and fused
	// toggles, trace hooks). Its PoolPages and VectorCacheBytes are ignored:
	// the router overwrites both with the per-tenant shares.
	Base ptldb.Config
	// Open opens one tenant database (default ptldb.Open). The lifecycle
	// tests substitute controllable fakes through it.
	Open func(dir string, cfg ptldb.Config) (DB, error)
}

// defaultPoolPages mirrors sqldb's default so dividing an unset budget gives
// each tenant a share of the same total a single-DB server would get.
const defaultPoolPages = 131072

func (c Config) withDefaults() Config {
	if c.MaxOpenTenants <= 0 {
		c.MaxOpenTenants = 4
	}
	if c.VectorCacheBytes <= 0 {
		c.VectorCacheBytes = ptldb.DefaultVectorCacheBytes
	}
	if c.PoolPages <= 0 {
		c.PoolPages = defaultPoolPages
	}
	if c.Open == nil {
		c.Open = func(dir string, cfg ptldb.Config) (DB, error) { return ptldb.Open(dir, cfg) }
	}
	return c
}

// share returns the per-tenant open configuration: Base with the divided
// budgets. Shares are floors; at most MaxOpenTenants-1 pages and bytes of
// each global budget go unused.
func (c Config) share() ptldb.Config {
	cfg := c.Base
	cfg.PoolPages = c.PoolPages / c.MaxOpenTenants
	if cfg.PoolPages < 1 {
		cfg.PoolPages = 1
	}
	cfg.VectorCacheBytes = c.VectorCacheBytes / int64(c.MaxOpenTenants)
	if cfg.VectorCacheBytes < 1 {
		// ptldb treats 0 as "use the default"; pin the share to one byte so a
		// pathological global budget degrades to an empty cache instead.
		cfg.VectorCacheBytes = 1
	}
	return cfg
}

// slot is one tenant's lifecycle state. The metrics struct and the slot
// itself live for the router's lifetime; only db cycles open and closed.
type slot struct {
	name string
	dir  string
	met  *obs.TenantMetrics

	// Guarded by Router.mu. The latch is acquisition level 10: the opener
	// holds it while re-taking the router mutex (level 20) to publish, so the
	// latch must order strictly below the mutex — the vcache Materialize
	// protocol applied to database opens.
	opening chan struct{} // lockcheck:latch level=10 — non-nil while an Open is in flight
	db      DB            // nil while closed
	pins    int           // in-flight acquisitions; > 0 blocks LRU close
	lastUse uint64        // router sequence number of the last acquisition
}

// Router routes city names to lazily-opened tenant databases.
type Router struct {
	cfg Config

	// mu guards every slot's lifecycle fields and the LRU sequence. It is
	// never held across an Open, a Close or a blocking channel operation —
	// those happen between critical sections, exactly like the vector cache's
	// materialization. Acquisition level 20: taken after an opening latch
	// (level 10), never while another shard-class mutex is held
	// (lockordercheck).
	mu    sync.Mutex // lockcheck:shard level=20
	slots map[string]*slot
	seq   uint64
}

// New builds a router over dir, mapping every subdirectory that contains a
// database catalog to a tenant named after the subdirectory. No database is
// opened yet.
func New(dir string, cfg Config) (*Router, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tenant: scan %s: %w", dir, err)
	}
	dirs := map[string]string{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(sub, "catalog.json")); err != nil {
			continue
		}
		dirs[e.Name()] = sub
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("tenant: no database subdirectories under %s", dir)
	}
	return NewFromDirs(dirs, cfg)
}

// NewFromDirs builds a router over an explicit city → directory mapping (the
// bench harness's datasets live in per-city cache directories, not under one
// parent).
func NewFromDirs(dirs map[string]string, cfg Config) (*Router, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("tenant: no tenants")
	}
	r := &Router{cfg: cfg.withDefaults(), slots: make(map[string]*slot, len(dirs))}
	for name, dir := range dirs {
		if name == "" {
			return nil, fmt.Errorf("tenant: empty tenant name for %s", dir)
		}
		r.slots[name] = &slot{name: name, dir: dir, met: &obs.TenantMetrics{}}
	}
	return r, nil
}

// Names lists the tenants, sorted.
func (r *Router) Names() []string {
	out := make([]string, 0, len(r.slots))
	for name := range r.slots {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Metrics returns name's counters, or nil for an unknown tenant. The slot
// map is immutable after New, so no lock is needed — the serving layer calls
// this on every request to 404 unknown cities before admission.
func (r *Router) Metrics(name string) *obs.TenantMetrics {
	s := r.slots[name]
	if s == nil {
		return nil
	}
	return s.met
}

// Tenant is one pinned acquisition: the database is guaranteed open until
// Release. Release exactly once.
type Tenant struct {
	r  *Router
	s  *slot
	db DB
}

// DB returns the pinned database.
func (t *Tenant) DB() DB { return t.db }

// Metrics returns the tenant's counters.
func (t *Tenant) Metrics() *obs.TenantMetrics { return t.s.met }

// Release unpins the tenant, making it eligible for LRU close again.
func (t *Tenant) Release() {
	t.r.mu.Lock()
	t.s.pins--
	t.r.mu.Unlock()
}

// Acquire returns name's database, opening it (and closing an LRU victim)
// if necessary, pinned against close until Release. Concurrent acquisitions
// of a cold tenant coalesce: one runs Open while the rest wait on the latch
// and share the handle.
func (r *Router) Acquire(name string) (*Tenant, error) {
	s := r.slots[name]
	if s == nil {
		return nil, fmt.Errorf("tenant: unknown city %q: %w", name, core.ErrInvalidArgument)
	}
	for {
		r.mu.Lock()
		if s.db != nil {
			s.pins++
			r.seq++
			s.lastUse = r.seq
			t := &Tenant{r: r, s: s, db: s.db}
			r.mu.Unlock()
			return t, nil
		}
		wait := s.opening
		var latch chan struct{}
		var victims []DB
		if wait == nil {
			latch = make(chan struct{})
			s.opening = latch
			victims = r.evictLocked()
		}
		r.mu.Unlock()
		if wait != nil {
			// Someone else is opening; wait outside the lock and re-check.
			// The reopened database may already be closed again by the time
			// this caller re-takes the lock, in which case it loops and opens.
			<-wait
			continue
		}

		// This caller owns the open. Victims close first — their budget
		// shares are notionally handed to the newcomer — and both the closes
		// and the open do device I/O, so they run outside the router mutex.
		var closeErr error
		for _, v := range victims {
			if err := v.Close(); err != nil && closeErr == nil {
				closeErr = err
			}
		}
		var db DB
		err := closeErr
		if err == nil {
			db, err = r.cfg.Open(s.dir, r.cfg.share())
		}
		r.mu.Lock()
		s.opening = nil
		// close is non-blocking, so releasing the latch under the lock is
		// safe (the vcache publication protocol).
		close(latch)
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("tenant: open %s: %w", name, err)
		}
		s.db = db
		s.pins++
		r.seq++
		s.lastUse = r.seq
		t := &Tenant{r: r, s: s, db: db}
		r.mu.Unlock()
		s.met.Opens.Add(1)
		return t, nil
	}
}

// evictLocked detaches least-recently-used unpinned open tenants until the
// open count — databases plus in-flight opens, including the caller's own
// latch — fits MaxOpenTenants, returning the detached handles for the caller
// to close outside the lock. When every candidate is pinned the cap is
// exceeded instead: a query in flight must never lose its database.
func (r *Router) evictLocked() []DB {
	var victims []DB
	for {
		open := 0
		var lru *slot
		for _, s := range r.slots {
			if s.opening != nil {
				open++
			}
			if s.db == nil {
				continue
			}
			open++
			if s.pins == 0 && (lru == nil || s.lastUse < lru.lastUse) {
				lru = s
			}
		}
		if open <= r.cfg.MaxOpenTenants || lru == nil {
			return victims
		}
		victims = append(victims, lru.db)
		lru.db = nil
		lru.met.Closes.Add(1)
	}
}

// Snapshot copies every tenant's counters and lifecycle state, keyed by
// city. Resident bytes are read from each open database's registry outside
// the router mutex; a tenant closing concurrently merely snapshots as its
// final counter state (registries are plain atomics, safe after Close).
func (r *Router) Snapshot() map[string]obs.TenantSnapshot {
	type item struct {
		name string
		met  *obs.TenantMetrics
		db   DB
	}
	items := make([]item, 0, len(r.slots))
	r.mu.Lock()
	for name, s := range r.slots {
		items = append(items, item{name: name, met: s.met, db: s.db})
	}
	r.mu.Unlock()
	out := make(map[string]obs.TenantSnapshot, len(items))
	for _, it := range items {
		var resident int64
		if it.db != nil {
			if vc := it.db.Snapshot().VCache; vc != nil {
				resident = vc.ResidentBytes
			}
		}
		out[it.name] = it.met.Snapshot(it.db != nil, resident)
	}
	return out
}

// OpenCount reports how many tenant databases are currently open, for tests
// and the /tenants listing.
func (r *Router) OpenCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.slots {
		if s.db != nil {
			n++
		}
	}
	return n
}

// Close closes every open tenant database and returns the first error. Call
// it after the server has drained: a pinned tenant is closed anyway (leaving
// it open would leak the handle on shutdown), so in-flight queries must be
// gone.
func (r *Router) Close() error {
	r.mu.Lock()
	var dbs []DB
	for _, s := range r.slots {
		if s.db != nil {
			dbs = append(dbs, s.db)
			s.db = nil
			s.met.Closes.Add(1)
		}
	}
	r.mu.Unlock()
	var first error
	for _, db := range dbs {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
