package tenant

// tenant_test.go exercises the router's lifecycle contracts against
// controllable fake databases: concurrent first requests coalesce into one
// Open, pinned tenants survive LRU pressure, eviction picks the
// least-recently-used idle tenant, budgets divide evenly, and an 8-tenant
// churn stays race-clean and never queries a closed database
// (scripts/check.sh runs this package with -race).

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptldb"
	"ptldb/internal/core"
	"ptldb/internal/obs"
	"ptldb/internal/timetable"
)

// fakeDB answers queries with synthetic values and fails loudly when used
// after Close — the invariant the pinning protocol must uphold.
type fakeDB struct {
	name    string
	closed  atomic.Bool
	queries atomic.Int64
}

func (f *fakeDB) enter() error {
	f.queries.Add(1)
	if f.closed.Load() {
		return fmt.Errorf("fake %s: query after Close", f.name)
	}
	return nil
}

func (f *fakeDB) EarliestArrival(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error) {
	if err := f.enter(); err != nil {
		return 0, false, err
	}
	return t + 60, true, nil
}

func (f *fakeDB) LatestDeparture(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error) {
	if err := f.enter(); err != nil {
		return 0, false, err
	}
	return t - 60, true, nil
}

func (f *fakeDB) ShortestDuration(s, g timetable.StopID, t, tEnd timetable.Time) (timetable.Time, bool, error) {
	if err := f.enter(); err != nil {
		return 0, false, err
	}
	return 300, true, nil
}

func (f *fakeDB) EAKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error) {
	return nil, f.enter()
}

func (f *fakeDB) LDKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error) {
	return nil, f.enter()
}

func (f *fakeDB) EAOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error) {
	return nil, f.enter()
}

func (f *fakeDB) LDOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error) {
	return nil, f.enter()
}

func (f *fakeDB) ExplainPrepared(name string) (string, error) { return "FakePlan\n", f.enter() }
func (f *fakeDB) ExplainNames() []string                      { return []string{"v2v-ea"} }
func (f *fakeDB) Snapshot() obs.Snapshot                      { return obs.Snapshot{} }

func (f *fakeDB) Close() error {
	if f.closed.Swap(true) {
		return fmt.Errorf("fake %s: double Close", f.name)
	}
	return nil
}

// opener is a Config.Open hook recording every open: its count per tenant,
// the configs handed down, and the live handles for post-hoc inspection.
type opener struct {
	delay time.Duration
	mu    sync.Mutex
	count map[string]int
	cfgs  []ptldb.Config
	dbs   map[string][]*fakeDB
}

func newOpener(delay time.Duration) *opener {
	return &opener{delay: delay, count: map[string]int{}, dbs: map[string][]*fakeDB{}}
}

func (o *opener) open(dir string, cfg ptldb.Config) (DB, error) {
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	name := filepath.Base(dir)
	db := &fakeDB{name: name}
	o.mu.Lock()
	o.count[name]++
	o.cfgs = append(o.cfgs, cfg)
	o.dbs[name] = append(o.dbs[name], db)
	o.mu.Unlock()
	return db, nil
}

func (o *opener) opens(name string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.count[name]
}

func dirs(names ...string) map[string]string {
	out := map[string]string{}
	for _, n := range names {
		out[n] = "/fake/" + n
	}
	return out
}

func TestConcurrentFirstOpenSingleflight(t *testing.T) {
	op := newOpener(10 * time.Millisecond)
	r, err := NewFromDirs(dirs("austin"), Config{Open: op.open})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	handles := make([]*Tenant, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := r.Acquire("austin")
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			handles[i] = h
		}(i)
	}
	wg.Wait()
	if got := op.opens("austin"); got != 1 {
		t.Fatalf("%d concurrent first requests ran %d opens, want 1", n, got)
	}
	if got := r.Metrics("austin").Opens.Load(); got != 1 {
		t.Errorf("opens counter = %d, want 1", got)
	}
	for i, h := range handles {
		if h == nil {
			t.Fatalf("handle %d missing", i)
		}
		if h.DB() != handles[0].DB() {
			t.Errorf("handle %d got a different database", i)
		}
		h.Release()
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedTenantSurvivesLRUPressure(t *testing.T) {
	op := newOpener(0)
	r, err := NewFromDirs(dirs("a", "b", "c"), Config{MaxOpenTenants: 1, Open: op.open})
	if err != nil {
		t.Fatal(err)
	}
	ha, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	// a is pinned: opening b must exceed the cap instead of closing a.
	hb, err := r.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	if ha.DB().(*fakeDB).closed.Load() {
		t.Fatal("pinned tenant a was closed by LRU pressure")
	}
	if got := r.OpenCount(); got != 2 {
		t.Errorf("open count = %d, want 2 (cap exceeded while every tenant is pinned)", got)
	}
	// Queries through the pinned handle still work.
	if _, _, err := ha.DB().EarliestArrival(1, 2, 28800); err != nil {
		t.Errorf("query through pinned tenant: %v", err)
	}
	// b goes idle while a stays pinned: opening c may close only b.
	hb.Release()
	hc, err := r.Acquire("c")
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Release()
	if !hb.DB().(*fakeDB).closed.Load() {
		t.Error("idle tenant b not closed when c opened over the cap")
	}
	if ha.DB().(*fakeDB).closed.Load() {
		t.Error("pinned tenant a closed while its query was still in flight")
	}
	ha.Release()
	if got := r.Metrics("b").Closes.Load(); got != 1 {
		t.Errorf("b's closes counter = %d, want 1", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	op := newOpener(0)
	r, err := NewFromDirs(dirs("a", "b", "c"), Config{MaxOpenTenants: 2, Open: op.open})
	if err != nil {
		t.Fatal(err)
	}
	use := func(name string) *fakeDB {
		h, err := r.Acquire(name)
		if err != nil {
			t.Fatalf("Acquire(%s): %v", name, err)
		}
		db := h.DB().(*fakeDB)
		h.Release()
		return db
	}
	dba := use("a")
	dbb := use("b")
	use("a") // refresh a: b becomes the LRU
	use("c") // evicts b
	if !dbb.closed.Load() {
		t.Error("LRU tenant b not evicted")
	}
	if dba.closed.Load() {
		t.Error("recently used tenant a evicted")
	}
	// A fresh acquisition of b reopens it.
	if db2 := use("b"); db2 == dbb || db2.closed.Load() {
		t.Error("b not reopened with a fresh handle")
	}
	if got := op.opens("b"); got != 2 {
		t.Errorf("b opened %d times, want 2", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBudgetShares checks the global budgets divide evenly into every
// tenant's open config, regardless of what Base carries.
func TestBudgetShares(t *testing.T) {
	op := newOpener(0)
	r, err := NewFromDirs(dirs("a", "b"), Config{
		MaxOpenTenants:   4,
		VectorCacheBytes: 64 << 20,
		PoolPages:        4096,
		Base:             ptldb.Config{Device: "ram", PoolPages: 999, VectorCacheBytes: 999},
		Open:             op.open,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	op.mu.Lock()
	cfg := op.cfgs[0]
	op.mu.Unlock()
	if cfg.PoolPages != 1024 {
		t.Errorf("pool share = %d pages, want 4096/4 = 1024", cfg.PoolPages)
	}
	if cfg.VectorCacheBytes != 16<<20 {
		t.Errorf("vcache share = %d bytes, want 64MiB/4 = 16MiB", cfg.VectorCacheBytes)
	}
	if cfg.Device != "ram" {
		t.Errorf("Base.Device %q not forwarded", cfg.Device)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownTenant(t *testing.T) {
	r, err := NewFromDirs(dirs("a"), Config{Open: newOpener(0).open})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("nope"); !core.IsInvalidArgument(err) {
		t.Errorf("Acquire(unknown) = %v, want invalid-argument", err)
	}
	if r.Metrics("nope") != nil {
		t.Error("Metrics(unknown) != nil")
	}
}

func TestNewScansSubdirectories(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"austin", "berlin"} {
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A subdirectory without a catalog and a plain file are both skipped.
	if err := os.MkdirAll(filepath.Join(root, "not-a-db"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := New(root, Config{Open: newOpener(0).open})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "austin" || got[1] != "berlin" {
		t.Errorf("Names() = %v, want [austin berlin]", got)
	}
	if _, err := New(t.TempDir(), Config{}); err == nil {
		t.Error("New over an empty directory must fail")
	}
}

func TestSnapshotRollup(t *testing.T) {
	op := newOpener(0)
	r, err := NewFromDirs(dirs("a", "b"), Config{MaxOpenTenants: 2, Open: op.open})
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	h.Metrics().Requests.Add(3)
	h.Release()
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot has %d tenants, want 2", len(snaps))
	}
	if !snaps["a"].Open || snaps["a"].Requests != 3 || snaps["a"].Opens != 1 {
		t.Errorf("a snapshot = %+v", snaps["a"])
	}
	if snaps["b"].Open || snaps["b"].Opens != 0 {
		t.Errorf("cold b snapshot = %+v", snaps["b"])
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if snaps := r.Snapshot(); snaps["a"].Open || snaps["a"].Closes != 1 {
		t.Errorf("post-close a snapshot = %+v", snaps["a"])
	}
}

// TestChurnRace is the 8-tenant smoke in the style of the vcache eviction
// battery: 8 goroutines acquire random tenants through a cap of 3, query,
// and release. The fakes turn any query-after-close into an error, so the
// race detector plus the fakes' own checks cover the pinning protocol.
func TestChurnRace(t *testing.T) {
	op := newOpener(0)
	names := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	r, err := NewFromDirs(dirs(names...), Config{MaxOpenTenants: 3, Open: op.open})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				name := names[rng.Intn(len(names))]
				h, err := r.Acquire(name)
				if err != nil {
					t.Errorf("Acquire(%s): %v", name, err)
					return
				}
				if _, _, err := h.DB().EarliestArrival(1, 2, 28800); err != nil {
					t.Errorf("query %s: %v", name, err)
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := r.OpenCount(); got > 3 {
		t.Errorf("open count = %d after quiesce, want <= 3", got)
	}
	// Conservation: every open has either a matching close or a live handle.
	var opens, closes, live uint64
	for _, name := range names {
		m := r.Metrics(name)
		opens += m.Opens.Load()
		closes += m.Closes.Load()
	}
	live = uint64(r.OpenCount())
	if opens != closes+live {
		t.Errorf("opens %d != closes %d + live %d", opens, closes, live)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Every fake the opener ever produced must now be closed exactly once
	// (double closes error inside the fakes).
	op.mu.Lock()
	defer op.mu.Unlock()
	for name, dbs := range op.dbs {
		for _, db := range dbs {
			if !db.closed.Load() {
				t.Errorf("%s handle leaked open after router Close", name)
			}
		}
	}
}
