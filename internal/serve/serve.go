// Package serve is PTLDB's network serving layer: a stdlib net/http JSON API
// over an open database exposing the paper's seven query types plus the
// prepared-plan and observability endpoints. It is the repo's answer to the
// deployment the paper argues for — interactive transit queries served
// straight from the database — hardened with the three controls a public
// front door needs:
//
//   - per-request deadlines: a request that cannot be answered inside
//     Options.Timeout gets 504 and its handler returns; the shared execution
//     keeps running and its result still serves any later joiners;
//   - bounded admission: at most Options.MaxInFlight store executions run
//     concurrently; a saturated server answers 503 with Retry-After instead
//     of queueing unboundedly;
//   - request coalescing: identical (endpoint, args) requests in flight
//     share one execution — the buffer pool's singleflight pattern lifted to
//     the query layer, which on skewed workloads collapses the hot keys into
//     a handful of executions (see BENCH_serve.json).
//
// Lifecycle: Serve accepts until Shutdown, which stops accepting, lets
// in-flight handlers finish, and returns — the graceful-drain half of
// cmd/ptldb-serve's SIGTERM handling. Counters live in obs.ServeMetrics and
// are surfaced by the /obs endpoint next to the store's own registry.
//
// A server built with NewMulti fronts a tenant.Router instead of one store:
// the query and system endpoints move under /t/{city}/..., /tenants lists
// the cities, and /obs becomes the cross-tenant rollup. The pipeline is
// identical — the tenant acquisition (pinning the database open, and opening
// it cold if needed) simply happens inside the flight, so the admission cap
// also bounds concurrent cold opens and a slow open answers 504 like any
// slow execution.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ptldb/internal/core"
	"ptldb/internal/obs"
	"ptldb/internal/tenant"
	"ptldb/internal/timetable"
)

// Store is the query surface the server fronts. *ptldb.DB satisfies it; the
// lifecycle tests substitute a controllable fake.
type Store interface {
	EarliestArrival(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error)
	LatestDeparture(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error)
	ShortestDuration(s, g timetable.StopID, t, tEnd timetable.Time) (timetable.Time, bool, error)
	EAKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error)
	LDKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error)
	EAOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error)
	LDOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error)
	ExplainPrepared(name string) (string, error)
	ExplainNames() []string
	Snapshot() obs.Snapshot
}

// Options tunes the server. The zero value serves with the defaults below.
type Options struct {
	// MaxInFlight bounds concurrent store executions (default 64). Requests
	// that join an in-flight identical execution do not count against it.
	MaxInFlight int
	// Timeout is the per-request deadline (default 5s). A request whose
	// deadline expires gets 504; the underlying execution is left to finish
	// and publish for any joiners still inside their own deadlines.
	Timeout time.Duration
	// RetryAfter is the hint attached to 503 responses (default 1s).
	RetryAfter time.Duration
	// DisableCoalescing gives every request its own execution (the bench
	// harness's off-cells). Admission control still applies.
	DisableCoalescing bool
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Server is the HTTP front end over one Store (New) or a tenant router
// (NewMulti). It is an http.Handler and also owns an optional listener
// lifecycle (Serve / Shutdown) so cmd/ptldb-serve and the tests share the
// drain logic.
type Server struct {
	store   Store          // single-database mode; nil under NewMulti
	tenants *tenant.Router // multi-tenant mode; nil under New
	opts    Options
	metrics *obs.ServeMetrics
	admit   *semaphore
	co      *coalescer
	mux     *http.ServeMux
	httpSrv *http.Server
	// uncoalesced numbers the flights of a coalescing-off server so every
	// request gets a unique key through the one shared dispatch path.
	uncoalesced atomic.Uint64
}

// New builds a server over store.
func New(store Store, opts Options) *Server {
	s := &Server{store: store}
	s.init(opts)
	return s
}

// NewMulti builds a multi-tenant server over router: the query and system
// endpoints move under /t/{city}/..., /tenants lists the cities, and /obs
// is the cross-tenant rollup. The router's lifecycle stays with the caller —
// close it after Shutdown has drained the in-flight queries.
func NewMulti(router *tenant.Router, opts Options) *Server {
	s := &Server{tenants: router}
	s.init(opts)
	return s
}

func (s *Server) init(opts Options) {
	s.opts = opts.withDefaults()
	s.metrics = &obs.ServeMetrics{}
	s.co = newCoalescer()
	s.admit = newSemaphore(s.opts.MaxInFlight)
	s.mux = http.NewServeMux()
	s.routes()
	s.httpSrv = &http.Server{Handler: s.mux}
}

// Metrics exposes the serving counters (the /obs endpoint embeds a snapshot
// of them; the bench harness reads them in-process).
func (s *Server) Metrics() *obs.ServeMetrics { return s.metrics }

// ServeHTTP implements http.Handler, so tests can drive the server through
// httptest without a real listener.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like http.Server.Serve.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// Shutdown stops accepting new connections and waits for in-flight handlers
// to finish, up to ctx's deadline — the graceful-drain protocol. Executions
// whose every waiter already timed out are not waited for; they finish on
// their own goroutines and their results are dropped with the process.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}

// errSaturated is the 503 body text at the admission cap.
var errSaturated = errors.New("serve: server saturated, retry later")

// do admits, coalesces, runs and awaits one query execution. It returns the
// flight's value, or an error paired with the HTTP status it maps to.
func (s *Server) do(ctx context.Context, key string, run func() (any, error)) (any, int, error) {
	s.metrics.Requests.Add(1)
	if s.opts.DisableCoalescing {
		// A unique suffix gives the request a private flight while keeping
		// the admission/timeout path identical to the coalescing one.
		key = key + "#" + strconv.FormatUint(s.uncoalesced.Add(1), 10)
	}
	f := s.co.lookup(key)
	if f != nil {
		s.metrics.Coalesced.Add(1)
	} else {
		if !s.admit.tryAcquire() {
			s.metrics.Rejected.Add(1)
			return nil, http.StatusServiceUnavailable, errSaturated
		}
		var created bool
		f, created = s.co.begin(key)
		if created {
			s.metrics.Executions.Add(1)
			s.metrics.InFlight.Add(1)
			go s.runFlight(key, f, run)
		} else {
			// Another request created the flight between lookup and begin;
			// join it and return the slot.
			s.admit.release()
			s.metrics.Coalesced.Add(1)
		}
	}
	select {
	case <-f.done:
		if f.err != nil {
			return nil, statusFor(f.err), f.err
		}
		return f.val, http.StatusOK, nil
	case <-ctx.Done():
		s.metrics.Timeouts.Add(1)
		return nil, http.StatusGatewayTimeout, fmt.Errorf("serve: deadline exceeded after %v", s.opts.Timeout)
	}
}

// runFlight executes one admitted flight on its own goroutine, publishes the
// result and returns the admission slot. Running detached from the handler
// keeps the result available to joiners even when the originating request
// times out first.
func (s *Server) runFlight(key string, f *flight, run func() (any, error)) {
	v, err := run()
	s.co.finish(key, f, v, err)
	s.metrics.InFlight.Add(-1)
	s.admit.release()
}

// doSystem runs a system endpoint (/plan, /obs, /tenants) through the
// deadline half of the pipeline: the same Timeout → 504 mapping as /query/*,
// but no admission or coalescing — these endpoints read catalogs and
// counters, not store executions, so they must stay answerable on a
// saturated server. Like a flight, the run keeps going detached after a
// timeout; its result is dropped.
func (s *Server) doSystem(ctx context.Context, run func() (any, error)) (any, int, error) {
	type outcome struct {
		v   any
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := run()
		ch <- outcome{v: v, err: err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			return nil, statusFor(o.err), o.err
		}
		return o.v, http.StatusOK, nil
	case <-ctx.Done():
		s.metrics.Timeouts.Add(1)
		return nil, http.StatusGatewayTimeout, fmt.Errorf("serve: deadline exceeded after %v", s.opts.Timeout)
	}
}

// statusFor maps a store error to its HTTP status: caller mistakes
// (core.ErrInvalidArgument: bad stop id, unknown target set, k out of
// range) are 400, everything else is an internal 500.
func statusFor(err error) int {
	if core.IsInvalidArgument(err) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}
