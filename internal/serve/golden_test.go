package serve

// golden_test.go pins the JSON API's response bodies byte-for-byte, the same
// way internal/core's observe_test.go pins the prepared-plan renderings:
// the wire shapes are a public contract (ptldb-query -url, curl users,
// dashboards scraping /obs), so any drift — a renamed field, a dropped
// trailing newline, indentation flipping — must show up as a test diff, not
// as a surprise in someone's parser. The fake store keeps every value
// deterministic; the /obs golden is taken with zero query traffic because
// latency means are wall-clock-dependent the moment a request runs.

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

const obsGolden = `{
  "pool": {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "write_backs": 0
  },
  "exec": {
    "fused_runs": 0,
    "fused_bailouts": 0,
    "general_runs": 0,
    "rows_scanned": 0,
    "tuples_merged": 0
  },
  "segment": {
    "hits": 0,
    "columns_decoded": 0,
    "bytes_read": 0
  },
  "query": null,
  "serve": {
    "requests": 0,
    "executions": 0,
    "coalesced": 0,
    "rejected": 0,
    "timeouts": 0,
    "bad_requests": 0,
    "errors": 0,
    "in_flight": 0,
    "latency": {
      "count": 0,
      "mean_us": 0
    },
    "rejected_latency": {
      "count": 0,
      "mean_us": 0
    }
  }
}
`

var responseGoldens = []struct {
	path   string
	status int
	body   string
}{
	{"/plan", http.StatusOK, "{\n  \"names\": [\n    \"v2v-ea\"\n  ]\n}\n"},
	{"/plan?name=v2v-ea", http.StatusOK, "{\n  \"name\": \"v2v-ea\",\n  \"plan\": \"FakePlan v2v-ea\\n\"\n}\n"},
	{"/query/ea?from=1&to=2&t=28800", http.StatusOK,
		"{\"found\":true,\"value\":28860,\"hms\":\"08:01:00\"}\n"},
	{"/query/ea?from=1&to=2&t=08:00:00", http.StatusOK, // HH:MM:SS spelling, same answer
		"{\"found\":true,\"value\":28860,\"hms\":\"08:01:00\"}\n"},
	{"/query/ea?from=3&to=3&t=28800", http.StatusOK, // no journey: all fields still present
		"{\"found\":false,\"value\":0,\"hms\":\"\"}\n"},
	{"/query/eaknn?set=poi&from=4&t=28800&k=2", http.StatusOK,
		"{\"results\":[{\"stop\":5,\"when\":28860,\"hms\":\"08:01:00\"},{\"stop\":6,\"when\":28920,\"hms\":\"08:02:00\"}]}\n"},
	{"/query/ea?from=1&to=2", http.StatusBadRequest,
		"{\"error\":\"serve: missing parameter \\\"t\\\"\"}\n"},
	{"/plan?name=nope", http.StatusBadRequest,
		"{\"error\":\"fake: no prepared query \\\"nope\\\": invalid argument\"}\n"},
	{"/healthz", http.StatusOK, "{\"status\":\"ok\"}\n"},
}

// TestObsGolden pins the /obs shape on a zero-traffic server: the store
// registry's sections in order, then the serving counters under "serve".
func TestObsGolden(t *testing.T) {
	srv := New(&fakeStore{}, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	code, body := get(t, ts.URL+"/obs")
	if code != http.StatusOK {
		t.Fatalf("/obs status %d", code)
	}
	if body != obsGolden {
		t.Errorf("/obs drifted:\n got: %q\nwant: %q", body, obsGolden)
	}
}

// TestResponseGoldens pins every endpoint family's body byte-for-byte,
// including the error shapes and the trailing newline.
func TestResponseGoldens(t *testing.T) {
	srv := New(&fakeStore{}, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, g := range responseGoldens {
		code, body := get(t, ts.URL+g.path)
		if code != g.status {
			t.Errorf("GET %s: status %d, want %d", g.path, code, g.status)
		}
		if body != g.body {
			t.Errorf("GET %s drifted:\n got: %q\nwant: %q", g.path, body, g.body)
		}
	}
}
