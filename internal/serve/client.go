package serve

// client.go is the typed HTTP client over the JSON API: ptldb-query -url
// runs every query command through it, the end-to-end tests compare its
// answers against direct store calls, and the load harness reuses its URL
// construction. Method signatures mirror the Store interface so CLI code is
// identical for the local and remote paths.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"ptldb/internal/core"
	"ptldb/internal/obs"
	"ptldb/internal/timetable"
)

// Client talks to a running ptldb-serve instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant, when non-empty, targets one city of a multi-tenant (-tenants)
	// server: the query, plan and obs paths gain the /t/{city} prefix.
	// Health stays unprefixed — liveness is per-process, not per-city.
	Tenant string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// prefix is the path prefix Tenant selects ("" in single-database mode).
func (c *Client) prefix() string {
	if c.Tenant == "" {
		return ""
	}
	return "/t/" + url.PathEscape(c.Tenant)
}

// HTTPError is a non-200 response: the status code plus the server's error
// message, so callers can distinguish rejection (503) and timeout (504) from
// argument (400) and internal (500) failures.
type HTTPError struct {
	Status int
	Msg    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("serve: %s (HTTP %d)", e.Msg, e.Status)
}

// get fetches path and decodes the JSON body into out.
func (c *Client) get(path string, out any) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Get(strings.TrimSuffix(c.BaseURL, "/") + path)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &HTTPError{Status: resp.StatusCode, Msg: msg}
	}
	return json.Unmarshal(body, out)
}

// point runs one ea/ld/sd request.
func (c *Client) point(path string) (timetable.Time, bool, error) {
	var pr PointResponse
	if err := c.get(c.prefix()+path, &pr); err != nil {
		return 0, false, err
	}
	return timetable.Time(pr.Value), pr.Found, nil
}

// results runs one kNN/OTM request.
func (c *Client) results(path string) ([]core.Result, error) {
	var rr ResultsResponse
	if err := c.get(c.prefix()+path, &rr); err != nil {
		return nil, err
	}
	out := make([]core.Result, len(rr.Results))
	for i, r := range rr.Results {
		out[i] = core.Result{Stop: timetable.StopID(r.Stop), When: timetable.Time(r.When)}
	}
	return out, nil
}

// V2VPath renders the /query/{ea,ld} request path.
func V2VPath(kind string, s, g timetable.StopID, t timetable.Time) string {
	return fmt.Sprintf("/query/%s?from=%d&to=%d&t=%d", kind, s, g, t)
}

// SDPath renders the /query/sd request path.
func SDPath(s, g timetable.StopID, t, tEnd timetable.Time) string {
	return fmt.Sprintf("/query/sd?from=%d&to=%d&start=%d&end=%d", s, g, t, tEnd)
}

// KNNPath renders the /query/{eaknn,ldknn} request path.
func KNNPath(kind, set string, q timetable.StopID, t timetable.Time, k int) string {
	return fmt.Sprintf("/query/%s?set=%s&from=%d&t=%d&k=%d", kind, url.QueryEscape(set), q, t, k)
}

// OTMPath renders the /query/{eaotm,ldotm} request path.
func OTMPath(kind, set string, q timetable.StopID, t timetable.Time) string {
	return fmt.Sprintf("/query/%s?set=%s&from=%d&t=%d", kind, url.QueryEscape(set), q, t)
}

// EarliestArrival mirrors DB.EarliestArrival over the wire.
func (c *Client) EarliestArrival(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error) {
	return c.point(V2VPath("ea", s, g, t))
}

// LatestDeparture mirrors DB.LatestDeparture.
func (c *Client) LatestDeparture(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error) {
	return c.point(V2VPath("ld", s, g, t))
}

// ShortestDuration mirrors DB.ShortestDuration.
func (c *Client) ShortestDuration(s, g timetable.StopID, t, tEnd timetable.Time) (timetable.Time, bool, error) {
	return c.point(SDPath(s, g, t, tEnd))
}

// EAKNN mirrors DB.EAKNN.
func (c *Client) EAKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error) {
	return c.results(KNNPath("eaknn", set, q, t, k))
}

// LDKNN mirrors DB.LDKNN.
func (c *Client) LDKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error) {
	return c.results(KNNPath("ldknn", set, q, t, k))
}

// EAOTM mirrors DB.EAOTM.
func (c *Client) EAOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error) {
	return c.results(OTMPath("eaotm", set, q, t))
}

// LDOTM mirrors DB.LDOTM.
func (c *Client) LDOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error) {
	return c.results(OTMPath("ldotm", set, q, t))
}

// ExplainPrepared mirrors DB.ExplainPrepared.
func (c *Client) ExplainPrepared(name string) (string, error) {
	var pr PlanResponse
	if err := c.get(c.prefix()+"/plan?name="+url.QueryEscape(name), &pr); err != nil {
		return "", err
	}
	return pr.Plan, nil
}

// ExplainNames mirrors DB.ExplainNames.
func (c *Client) ExplainNames() ([]string, error) {
	var pl PlanListResponse
	if err := c.get(c.prefix()+"/plan", &pl); err != nil {
		return nil, err
	}
	return pl.Names, nil
}

// Obs fetches the server's observability snapshot (store registry plus the
// serving counters in Snapshot.Serve).
func (c *Client) Obs() (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := c.get(c.prefix()+"/obs", &snap)
	return snap, err
}

// Get fetches an arbitrary server path (ignoring Tenant) and decodes the
// JSON body into out — the escape hatch for endpoints without a typed
// wrapper, like a multi-tenant server's /tenants listing and rollup /obs.
func (c *Client) Get(path string, out any) error {
	return c.get(path, out)
}

// Health probes /healthz; useful to wait for a just-started server.
func (c *Client) Health() error {
	var h HealthResponse
	if err := c.get("/healthz", &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("serve: health status %q", h.Status)
	}
	return nil
}
