package serve

// serve_test.go exercises the serving layer's lifecycle contracts against a
// controllable fake store: coalescing shares exactly one execution, the
// admission cap answers 503 without deadlocking, an expired deadline answers
// 504 while the execution survives for later joiners, graceful drain waits
// for in-flight requests, and the whole pipeline is race-clean under
// concurrent clients (scripts/check.sh runs this package with -race).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptldb/internal/core"
	"ptldb/internal/obs"
	"ptldb/internal/timetable"
)

// fakeStore answers every query instantly with synthetic values unless block
// is set, in which case query executions park until the channel is closed.
// eaErr, when set, is returned by EarliestArrival to drive the error-mapping
// tests; snapBlock parks Snapshot the same way block parks queries (the
// system-endpoint deadline tests). Close makes the fake double as a
// tenant.DB for the multi-tenant tests.
type fakeStore struct {
	calls      atomic.Int64
	closeCalls atomic.Int64
	block      chan struct{}
	snapBlock  chan struct{}
	eaErr      error
}

func (f *fakeStore) enter() {
	f.calls.Add(1)
	if f.block != nil {
		<-f.block
	}
}

func (f *fakeStore) EarliestArrival(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error) {
	f.enter()
	if f.eaErr != nil {
		return 0, false, f.eaErr
	}
	if s == g {
		return 0, false, nil // unreachable pair: the no-journey shape
	}
	return t + 60, true, nil
}

func (f *fakeStore) LatestDeparture(s, g timetable.StopID, t timetable.Time) (timetable.Time, bool, error) {
	f.enter()
	return t - 60, true, nil
}

func (f *fakeStore) ShortestDuration(s, g timetable.StopID, t, tEnd timetable.Time) (timetable.Time, bool, error) {
	f.enter()
	return 300, true, nil
}

func (f *fakeStore) knn(q timetable.StopID, t timetable.Time, k int) []core.Result {
	out := make([]core.Result, k)
	for i := range out {
		out[i] = core.Result{Stop: q + timetable.StopID(i+1), When: t + timetable.Time(60*(i+1))}
	}
	return out
}

func (f *fakeStore) EAKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error) {
	f.enter()
	return f.knn(q, t, k), nil
}

func (f *fakeStore) LDKNN(set string, q timetable.StopID, t timetable.Time, k int) ([]core.Result, error) {
	f.enter()
	return f.knn(q, t, k), nil
}

func (f *fakeStore) EAOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error) {
	f.enter()
	return f.knn(q, t, 2), nil
}

func (f *fakeStore) LDOTM(set string, q timetable.StopID, t timetable.Time) ([]core.Result, error) {
	f.enter()
	return f.knn(q, t, 2), nil
}

func (f *fakeStore) ExplainPrepared(name string) (string, error) {
	if name != "v2v-ea" {
		return "", fmt.Errorf("fake: no prepared query %q: %w", name, core.ErrInvalidArgument)
	}
	return "FakePlan v2v-ea\n", nil
}

func (f *fakeStore) ExplainNames() []string { return []string{"v2v-ea"} }

func (f *fakeStore) Snapshot() obs.Snapshot {
	if f.snapBlock != nil {
		<-f.snapBlock
	}
	return obs.Snapshot{}
}

func (f *fakeStore) Close() error {
	f.closeCalls.Add(1)
	return nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestCoalescingSharesOneExecution(t *testing.T) {
	fs := &fakeStore{block: make(chan struct{})}
	srv := New(fs, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	bodies := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = get(t, ts.URL+"/query/ea?from=1&to=2&t=28800")
		}(i)
	}
	// All n requests target one key: exactly one execution starts (and parks
	// in the fake store), the other n-1 join its flight.
	m := srv.Metrics()
	waitFor(t, "n-1 joiners", func() bool {
		return m.Executions.Load() == 1 && m.Coalesced.Load() == n-1
	})
	if got := fs.calls.Load(); got != 1 {
		t.Fatalf("store saw %d calls with execution in flight, want 1", got)
	}
	close(fs.block)
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("request %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("request %d body %q differs from %q", i, bodies[i], bodies[0])
		}
	}
	if got := fs.calls.Load(); got != 1 {
		t.Errorf("store saw %d calls total, want 1", got)
	}
}

func TestDisableCoalescingRunsEveryRequest(t *testing.T) {
	fs := &fakeStore{}
	srv := New(fs, Options{DisableCoalescing: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code, body := get(t, ts.URL+"/query/ea?from=1&to=2&t=28800"); code != http.StatusOK {
				t.Errorf("status %d, body %s", code, body)
			}
		}()
	}
	wg.Wait()
	m := srv.Metrics()
	if m.Executions.Load() != n || m.Coalesced.Load() != 0 {
		t.Errorf("executions %d coalesced %d, want %d and 0",
			m.Executions.Load(), m.Coalesced.Load(), n)
	}
}

func TestSaturatedServerAnswers503(t *testing.T) {
	fs := &fakeStore{block: make(chan struct{})}
	// Coalescing off so every request needs its own admission slot.
	srv := New(fs, Options{MaxInFlight: 2, DisableCoalescing: true, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _ := get(t, ts.URL+"/query/ea?from=1&to=2&t=28800")
			results <- code
		}()
	}
	waitFor(t, "both slots occupied", func() bool { return fs.calls.Load() == 2 })

	// The cap is reached: the next request must be rejected promptly with a
	// Retry-After hint, not queued behind the parked executions.
	resp, err := http.Get(ts.URL + "/query/ea?from=9&to=9&t=28800")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d at cap, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After %q, want %q", got, "3")
	}
	if srv.Metrics().Rejected.Load() != 1 {
		t.Errorf("rejected counter %d, want 1", srv.Metrics().Rejected.Load())
	}

	close(fs.block)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("parked request finished with %d, want 200", code)
		}
	}
}

func TestDeadlineExpiryAnswers504(t *testing.T) {
	fs := &fakeStore{block: make(chan struct{})}
	srv := New(fs, Options{Timeout: 30 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := get(t, ts.URL+"/query/ea?from=1&to=2&t=28800")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d after deadline, want 504 (body %s)", code, body)
	}
	m := srv.Metrics()
	if m.Timeouts.Load() != 1 {
		t.Errorf("timeouts counter %d, want 1", m.Timeouts.Load())
	}
	// The execution outlives the timed-out request; release it and verify a
	// joiner arriving before completion still gets the answer.
	if m.InFlight.Load() != 1 {
		t.Errorf("in-flight gauge %d with abandoned execution running, want 1", m.InFlight.Load())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if code, body := get(t, ts.URL+"/query/ea?from=1&to=2&t=28800"); code != http.StatusOK {
			t.Errorf("joiner after timeout: status %d, body %s", code, body)
		}
	}()
	waitFor(t, "joiner attached", func() bool { return m.Coalesced.Load() == 1 })
	close(fs.block)
	<-done
	if got := fs.calls.Load(); got != 1 {
		t.Errorf("store saw %d calls, want 1 (joiner must reuse the abandoned execution)", got)
	}
}

func TestGracefulDrainWaitsForInFlight(t *testing.T) {
	fs := &fakeStore{block: make(chan struct{})}
	srv := New(fs, Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	reqDone := make(chan int, 1)
	go func() {
		code, _ := get(t, base+"/query/ea?from=1&to=2&t=28800")
		reqDone <- code
	}()
	waitFor(t, "request in flight", func() bool { return fs.calls.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(ctx) }()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(fs.block)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("drained request finished with %d, want 200", code)
	}
}

func TestConcurrentClientsSmoke(t *testing.T) {
	fs := &fakeStore{}
	srv := New(fs, Options{MaxInFlight: 128})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	paths := []string{
		"/query/ea?from=1&to=2&t=28800",
		"/query/ld?from=2&to=1&t=36000",
		"/query/sd?from=1&to=3&start=28800&end=36000",
		"/query/eaknn?set=poi&from=1&t=28800&k=3",
		"/query/ldknn?set=poi&from=1&t=36000&k=2",
		"/query/eaotm?set=poi&from=4&t=28800",
		"/query/ldotm?set=poi&from=4&t=36000",
		"/plan?name=v2v-ea",
		"/healthz",
		"/query/ea?from=x&to=2&t=28800", // 400, parse
	}
	const clients, perClient = 8, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				path := paths[(c+i)%len(paths)]
				want := http.StatusOK
				if strings.Contains(path, "from=x") {
					want = http.StatusBadRequest
				}
				if code, body := get(t, ts.URL+path); code != want {
					t.Errorf("GET %s: status %d, body %s, want %d", path, code, body, want)
				}
			}
		}(c)
	}
	wg.Wait()
	m := srv.Metrics()
	if m.InFlight.Load() != 0 {
		t.Errorf("in-flight gauge %d after quiesce, want 0", m.InFlight.Load())
	}
	if m.Rejected.Load() != 0 || m.Timeouts.Load() != 0 || m.Errors.Load() != 0 {
		t.Errorf("unexpected failures: rejected %d timeouts %d errors %d",
			m.Rejected.Load(), m.Timeouts.Load(), m.Errors.Load())
	}
}

func TestErrorStatusMapping(t *testing.T) {
	fs := &fakeStore{eaErr: fmt.Errorf("fake: stop id 99 outside [0, 7): %w", core.ErrInvalidArgument)}
	srv := New(fs, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body := get(t, ts.URL+"/query/ea?from=99&to=2&t=28800"); code != http.StatusBadRequest {
		t.Errorf("invalid-argument store error: status %d, body %s, want 400", code, body)
	}
	if srv.Metrics().BadRequests.Load() != 1 {
		t.Errorf("bad-requests counter %d, want 1", srv.Metrics().BadRequests.Load())
	}

	fs.eaErr = errors.New("fake: page checksum mismatch")
	if code, body := get(t, ts.URL+"/query/ea?from=1&to=2&t=28801"); code != http.StatusInternalServerError {
		t.Errorf("internal store error: status %d, body %s, want 500", code, body)
	}
	if srv.Metrics().Errors.Load() != 1 {
		t.Errorf("errors counter %d, want 1", srv.Metrics().Errors.Load())
	}

	// Parse failures are 400 before any store call.
	before := fs.calls.Load()
	for _, path := range []string{
		"/query/ea?from=1&to=2",            // missing t
		"/query/ea?from=one&to=2&t=28800",  // non-integer stop
		"/query/ea?from=1&to=2&t=morning",  // unparseable time
		"/query/eaknn?set=poi&from=1&t=60", // missing k
	} {
		if code, body := get(t, ts.URL+path); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, body %s, want 400", path, code, body)
		}
	}
	if fs.calls.Load() != before {
		t.Errorf("malformed requests reached the store (%d calls)", fs.calls.Load()-before)
	}

	// Unknown prepared-plan names classify as caller mistakes too.
	if code, _ := get(t, ts.URL+"/plan?name=nope"); code != http.StatusBadRequest {
		t.Errorf("/plan?name=nope: status %d, want 400", code)
	}
}

// TestRejectedLatencySplit pins the satellite fix for saturation-skewed
// percentiles: instant 503 admission rejections must land in
// RejectedLatency, never in the Latency histogram real executions feed.
func TestRejectedLatencySplit(t *testing.T) {
	fs := &fakeStore{block: make(chan struct{})}
	srv := New(fs, Options{MaxInFlight: 1, DisableCoalescing: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	parked := make(chan int, 1)
	go func() {
		code, _ := get(t, ts.URL+"/query/ea?from=1&to=2&t=28800")
		parked <- code
	}()
	waitFor(t, "slot occupied", func() bool { return fs.calls.Load() == 1 })

	if code, _ := get(t, ts.URL+"/query/ea?from=3&to=4&t=28800"); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d at cap, want 503", code)
	}
	m := srv.Metrics()
	if m.RejectedLatency.Snapshot().Count != 1 {
		t.Errorf("rejected-latency count %d, want 1", m.RejectedLatency.Snapshot().Count)
	}
	if got := m.Latency.Snapshot().Count; got != 0 {
		t.Errorf("latency histogram saw %d samples with only a reject completed, want 0", got)
	}

	close(fs.block)
	if code := <-parked; code != http.StatusOK {
		t.Fatalf("parked request finished with %d", code)
	}
	if got := m.Latency.Snapshot().Count; got != 1 {
		t.Errorf("latency count %d after the real execution, want 1", got)
	}
	if got := m.RejectedLatency.Snapshot().Count; got != 1 {
		t.Errorf("rejected-latency count %d after quiesce, want 1", got)
	}
}

// TestSystemEndpointsMetered pins the satellite fix for /plan and /obs
// bypassing the pipeline: they must count into Requests and Latency like
// /query/*, while the /obs snapshot itself keeps excluding the request
// carrying it (metered after completion — the zero-traffic golden relies on
// that).
func TestSystemEndpointsMetered(t *testing.T) {
	fs := &fakeStore{}
	srv := New(fs, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{"/plan", "/plan?name=v2v-ea"} {
		if code, body := get(t, ts.URL+path); code != http.StatusOK {
			t.Fatalf("GET %s: status %d, body %s", path, code, body)
		}
	}
	code, body := get(t, ts.URL+"/obs")
	if code != http.StatusOK {
		t.Fatalf("GET /obs: status %d", code)
	}
	// The snapshot inside the /obs response saw the two /plan requests but
	// not itself.
	if !strings.Contains(body, "\"requests\": 2") {
		t.Errorf("/obs body should report the 2 prior requests, got: %s", body)
	}
	m := srv.Metrics()
	if got := m.Requests.Load(); got != 3 {
		t.Errorf("requests counter %d after plan+plan+obs, want 3", got)
	}
	if got := m.Latency.Snapshot().Count; got != 3 {
		t.Errorf("latency count %d, want 3 (system endpoints must be metered)", got)
	}
	// Error outcomes stay classified: a bad plan name is a metered 400.
	if code, _ := get(t, ts.URL+"/plan?name=nope"); code != http.StatusBadRequest {
		t.Errorf("/plan?name=nope: status %d, want 400", code)
	}
	if m.BadRequests.Load() != 1 || m.Requests.Load() != 4 {
		t.Errorf("bad plan name: bad_requests %d requests %d, want 1 and 4",
			m.BadRequests.Load(), m.Requests.Load())
	}
}

// TestSystemEndpointDeadline proves /obs runs under the per-request deadline
// now: a store whose Snapshot hangs answers 504 instead of pinning the
// handler forever.
func TestSystemEndpointDeadline(t *testing.T) {
	fs := &fakeStore{snapBlock: make(chan struct{})}
	srv := New(fs, Options{Timeout: 30 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, _ := get(t, ts.URL+"/obs")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("/obs with hung snapshot: status %d, want 504", code)
	}
	if got := srv.Metrics().Timeouts.Load(); got != 1 {
		t.Errorf("timeouts counter %d, want 1", got)
	}
	close(fs.snapBlock)
}

// TestWriteJSONEncodeFailure pins the satellite fix for the encode-failure
// fallback: an unmarshalable value must produce a JSON 500 with the JSON
// Content-Type, not http.Error's text/plain wrapping a JSON string.
func TestWriteJSONEncodeFailure(t *testing.T) {
	for name, write := range map[string]func(http.ResponseWriter, int, any){
		"writeJSON":       writeJSON,
		"writeJSONIndent": writeJSONIndent,
	} {
		rec := httptest.NewRecorder()
		write(rec, http.StatusOK, math.NaN()) // JSON has no NaN: encoding must fail
		if rec.Code != http.StatusInternalServerError {
			t.Errorf("%s: status %d, want 500", name, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", name, ct)
		}
		var e ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: fallback body %q is not an ErrorResponse (%v)", name, rec.Body.String(), err)
		}
	}
}

func TestStatusFor(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{core.ErrInvalidArgument, http.StatusBadRequest},
		{fmt.Errorf("wrap: %w", core.ErrInvalidArgument), http.StatusBadRequest},
		{errors.Join(errors.New("other"), core.ErrInvalidArgument), http.StatusBadRequest},
		{errors.New("io failure"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
