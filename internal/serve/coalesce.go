package serve

// coalesce.go is the query-level singleflight: identical (endpoint, args)
// requests in flight share one store execution. The protocol is the vector
// cache's latch pattern lifted to the serving layer — a per-key flight whose
// done channel is the latch, opened under the coalescer mutex and closed
// under the re-taken mutex when the runner publishes the result (close is
// non-blocking, so releasing the latch under the lock is safe). Waiters
// select on the latch against their request context, so a slow execution
// cannot pin a handler past its deadline.

import "sync"

// flight is one in-flight execution shared by every coalesced request for
// its key. val and err are written exactly once, before done is closed;
// the close is the happens-before edge that publishes them to waiters.
type flight struct {
	done chan struct{} // lockcheck:latch level=10 — closed when val/err are published
	val  any
	err  error
}

// coalescer deduplicates executions by request key.
type coalescer struct {
	mu      sync.Mutex // lockcheck:shard level=20 — guards flights; critical sections touch only the map
	flights map[string]*flight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: map[string]*flight{}}
}

// lookup returns the in-flight execution for key, or nil.
func (c *coalescer) lookup(key string) *flight {
	c.mu.Lock()
	f := c.flights[key]
	c.mu.Unlock()
	return f
}

// begin registers a new flight under key, or joins the one another request
// registered since the caller's lookup. created reports which happened; the
// creator owns running the execution and must finish it.
func (c *coalescer) begin(key string) (f *flight, created bool) {
	c.mu.Lock()
	if f = c.flights[key]; f != nil {
		c.mu.Unlock()
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	return f, true
}

// finish publishes the execution's result and releases every waiter. The
// map entry is removed in the same critical section that closes the latch,
// so a request arriving afterwards starts a fresh execution instead of
// reading a stale one.
func (c *coalescer) finish(key string, f *flight, val any, err error) {
	f.val, f.err = val, err
	c.mu.Lock()
	delete(c.flights, key)
	close(f.done)
	c.mu.Unlock()
}
