package serve

// e2e_test.go drives the full stack — serve.Client over a real TCP listener
// into a Server fronting a real database — and requires every answer to be
// identical to a direct DB call: the wire layer must be invisible. It also
// checks the typed error classification end to end (an out-of-range stop id
// surfaces as HTTP 400 through the client).

import (
	"context"
	"errors"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"ptldb"
)

func TestClientMatchesDirectDB(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a database")
	}
	tt, err := ptldb.GenerateCity("Salt Lake City", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ptldb.Create(t.TempDir(), tt, ptldb.Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	targets := []ptldb.StopID{1, 3, 5, 7, 11, 13}
	if err := db.AddTargetSet("poi", targets, 4); err != nil {
		t.Fatal(err)
	}

	srv := New(db, Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	})
	c := &Client{BaseURL: "http://" + l.Addr().String()}
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}

	n := ptldb.StopID(tt.NumStops())
	t0, t1 := tt.MinTime(), tt.MinTime()+tt.Span()
	pairs := []struct{ s, g ptldb.StopID }{{0, n - 1}, {1, n / 2}, {n / 3, 2}, {5, 5}}
	for _, p := range pairs {
		wantV, wantOK, wantErr := db.EarliestArrival(p.s, p.g, t0)
		gotV, gotOK, gotErr := c.EarliestArrival(p.s, p.g, t0)
		if wantErr != nil || gotErr != nil {
			t.Fatalf("EA(%d,%d): direct err %v, client err %v", p.s, p.g, wantErr, gotErr)
		}
		if gotV != wantV || gotOK != wantOK {
			t.Errorf("EA(%d,%d) = (%v,%v) over the wire, (%v,%v) direct", p.s, p.g, gotV, gotOK, wantV, wantOK)
		}
		wantV, wantOK, _ = db.LatestDeparture(p.s, p.g, t1)
		gotV, gotOK, gotErr = c.LatestDeparture(p.s, p.g, t1)
		if gotErr != nil || gotV != wantV || gotOK != wantOK {
			t.Errorf("LD(%d,%d) = (%v,%v,%v) over the wire, (%v,%v) direct", p.s, p.g, gotV, gotOK, gotErr, wantV, wantOK)
		}
		wantV, wantOK, _ = db.ShortestDuration(p.s, p.g, t0, t1)
		gotV, gotOK, gotErr = c.ShortestDuration(p.s, p.g, t0, t1)
		if gotErr != nil || gotV != wantV || gotOK != wantOK {
			t.Errorf("SD(%d,%d) = (%v,%v,%v) over the wire, (%v,%v) direct", p.s, p.g, gotV, gotOK, gotErr, wantV, wantOK)
		}
	}

	for _, q := range []ptldb.StopID{0, 2, n - 1} {
		want, err := db.EAKNN("poi", q, t0, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.EAKNN("poi", q, t0, 3)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("EAKNN(%d) = %v (%v) over the wire, %v direct", q, got, err, want)
		}
		want, err = db.LDKNN("poi", q, t1, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err = c.LDKNN("poi", q, t1, 2)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("LDKNN(%d) = %v (%v) over the wire, %v direct", q, got, err, want)
		}
		want, err = db.EAOTM("poi", q, t0)
		if err != nil {
			t.Fatal(err)
		}
		got, err = c.EAOTM("poi", q, t0)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("EAOTM(%d) = %v (%v) over the wire, %v direct", q, got, err, want)
		}
		want, err = db.LDOTM("poi", q, t1)
		if err != nil {
			t.Fatal(err)
		}
		got, err = c.LDOTM("poi", q, t1)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("LDOTM(%d) = %v (%v) over the wire, %v direct", q, got, err, want)
		}
	}

	names, err := c.ExplainNames()
	if err != nil || !reflect.DeepEqual(names, db.ExplainNames()) {
		t.Errorf("ExplainNames = %v (%v) over the wire, %v direct", names, err, db.ExplainNames())
	}
	for _, name := range db.ExplainNames() {
		want, err := db.ExplainPrepared(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ExplainPrepared(name)
		if err != nil || got != want {
			t.Errorf("ExplainPrepared(%q) differs over the wire (%v)", name, err)
		}
	}

	// The store's typed invalid-argument errors surface as HTTP 400.
	_, _, err = c.EarliestArrival(n+100, 0, t0)
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.Status != http.StatusBadRequest {
		t.Errorf("EA with out-of-range stop: err %v, want HTTPError 400", err)
	}
	if _, err := c.EAKNN("no-such-set", 0, t0, 2); !errors.As(err, &httpErr) || httpErr.Status != http.StatusBadRequest {
		t.Errorf("EAKNN with unknown set: err %v, want HTTPError 400", err)
	}

	// /obs over the wire carries both the store registry (queries ran above)
	// and the serving counters.
	snap, err := c.Obs()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Serve == nil || snap.Serve.Requests == 0 {
		t.Errorf("Obs().Serve = %+v, want populated serving counters", snap.Serve)
	}
	if len(snap.Query) == 0 {
		t.Error("Obs().Query empty after queries ran")
	}
}
