package serve

// tenant_e2e_test.go is the multi-tenant acceptance test: two real city
// stores built into subdirectories of one parent, served together by a
// NewMulti server over tenant.New, must answer byte-identically to the same
// stores behind their own single-database servers. The wire layer and the
// tenancy layer both have to be invisible for that to hold.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"ptldb"
	"ptldb/internal/tenant"
)

// buildCity generates a city store under dir, adds the shared target set,
// and closes it so servers can reopen it read-only.
func buildCity(t *testing.T, dir, city string, seed int64) *ptldb.Network {
	t.Helper()
	tt, err := ptldb.GenerateCity(city, 0.02, seed)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ptldb.Create(dir, tt, ptldb.Config{Device: "ram"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddTargetSet("poi", []ptldb.StopID{1, 3, 5, 7, 11, 13}, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return tt
}

// startServer serves handler on a loopback listener and returns its base URL.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	})
	return "http://" + l.Addr().String()
}

func TestMultiTenantMatchesSingleServers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two databases")
	}
	parent := t.TempDir()
	networks := map[string]*ptldb.Network{
		"austin": buildCity(t, filepath.Join(parent, "austin"), "Austin", 7),
		"slc":    buildCity(t, filepath.Join(parent, "slc"), "Salt Lake City", 42),
	}

	// One single-database server per city: the reference answers.
	singleURL := map[string]string{}
	for name := range networks {
		db, err := ptldb.Open(filepath.Join(parent, name), ptldb.Config{Device: "ram"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		singleURL[name] = startServer(t, New(db, Options{}))
	}

	// The system under test: both cities behind one process.
	router, err := tenant.New(parent, tenant.Config{
		MaxOpenTenants: 2,
		Base:           ptldb.Config{Device: "ram"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := router.Close(); err != nil {
			t.Errorf("router close: %v", err)
		}
	})
	multiURL := startServer(t, NewMulti(router, Options{}))

	requests := map[string]int{}
	for name, tt := range networks {
		n := ptldb.StopID(tt.NumStops())
		t0, t1 := tt.MinTime(), tt.MinTime()+tt.Span()
		paths := []string{
			V2VPath("ea", 1, n-1, t0),
			V2VPath("ea", 5, 5, t0), // unreachable pair: no-journey shape
			V2VPath("ld", 0, n/2, t1),
			SDPath(n/3, 2, t0, t1),
			KNNPath("eaknn", "poi", 0, t0, 3),
			KNNPath("ldknn", "poi", 2, t1, 2),
			OTMPath("eaotm", "poi", n-1, t0),
			OTMPath("ldotm", "poi", 1, t1),
			V2VPath("ea", n+100, 0, t0),               // out-of-range stop: HTTP 400 shape
			KNNPath("eaknn", "no-such-set", 0, t0, 2), // unknown set: HTTP 400 shape
		}
		for _, p := range paths {
			wantCode, wantBody := get(t, singleURL[name]+p)
			gotCode, gotBody := get(t, multiURL+"/t/"+name+p)
			if gotCode != wantCode || gotBody != wantBody {
				t.Errorf("%s %s: multi (%d, %q) != single (%d, %q)",
					name, p, gotCode, gotBody, wantCode, wantBody)
			}
			requests[name]++
		}
		for _, p := range []string{"/plan", "/plan?name=" + findPlanName(t, singleURL[name])} {
			wantCode, wantBody := get(t, singleURL[name]+p)
			gotCode, gotBody := get(t, multiURL+"/t/"+name+p)
			if gotCode != wantCode || gotBody != wantBody {
				t.Errorf("%s %s: multi (%d, %q) != single (%d, %q)",
					name, p, gotCode, gotBody, wantCode, wantBody)
			}
		}
	}

	// The typed client reaches a tenant through the same prefix.
	c := &Client{BaseURL: multiURL, Tenant: "slc"}
	tt := networks["slc"]
	gotV, gotOK, err := c.EarliestArrival(1, 2, tt.MinTime())
	if err != nil {
		t.Fatalf("client EA via tenant prefix: %v", err)
	}
	requests["slc"]++
	code, body := get(t, singleURL["slc"]+V2VPath("ea", 1, 2, tt.MinTime()))
	if code != http.StatusOK {
		t.Fatalf("single slc EA: %d %s", code, body)
	}
	if want := fmt.Sprintf("{\"found\":%v,\"value\":%d,", gotOK, gotV); len(body) < len(want) || body[:len(want)] != want {
		t.Errorf("client EA (%v,%v) disagrees with single server body %q", gotV, gotOK, body)
	}

	// Both tenants are open and the rollup totals are exactly the per-tenant
	// sums, which in turn are exactly the queries this test issued.
	var list TenantListResponse
	if err := (&Client{BaseURL: multiURL}).get("/tenants", &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tenants) != 2 {
		t.Fatalf("/tenants: %+v, want austin and slc", list.Tenants)
	}
	for _, ti := range list.Tenants {
		if !ti.Open {
			t.Errorf("tenant %s not open after traffic", ti.City)
		}
		if ti.Requests != uint64(requests[ti.City]) {
			t.Errorf("tenant %s requests = %d, want %d", ti.City, ti.Requests, requests[ti.City])
		}
	}
	var roll MultiObsResponse
	if err := (&Client{BaseURL: multiURL}).get("/obs", &roll); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for name, ts := range roll.Tenants {
		sum += ts.Requests
		if ts.Requests != uint64(requests[name]) {
			t.Errorf("rollup tenant %s requests = %d, want %d", name, ts.Requests, requests[name])
		}
	}
	if roll.Totals.Requests != sum || roll.Totals.OpenTenants != 2 {
		t.Errorf("rollup totals %+v, want requests %d and 2 open tenants", roll.Totals, sum)
	}
}

// findPlanName returns the first prepared-plan name a server advertises.
func findPlanName(t *testing.T, base string) string {
	t.Helper()
	var pl PlanListResponse
	if err := (&Client{BaseURL: base}).get("/plan", &pl); err != nil {
		t.Fatal(err)
	}
	if len(pl.Names) == 0 {
		t.Fatal("server advertises no prepared plans")
	}
	return pl.Names[0]
}
