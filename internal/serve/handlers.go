package serve

// handlers.go routes and renders the JSON API. One endpoint per query type,
// named after the CLI commands:
//
//	GET /query/ea?from=S&to=G&t=T        earliest arrival
//	GET /query/ld?from=S&to=G&t=T        latest departure
//	GET /query/sd?from=S&to=G&start=T&end=T  shortest duration
//	GET /query/eaknn?set=NAME&from=S&t=T&k=K
//	GET /query/ldknn?set=NAME&from=S&t=T&k=K
//	GET /query/eaotm?set=NAME&from=S&t=T
//	GET /query/ldotm?set=NAME&from=S&t=T
//	GET /plan[?name=NAME]                prepared plan(s)
//	GET /obs                             observability snapshot
//	GET /healthz                         liveness
//
// Time parameters accept seconds after midnight or HH:MM:SS; either spelling
// canonicalizes to the same coalescing key. Malformed parameters are 400
// before admission; store errors map through statusFor (400 caller mistakes,
// 500 internal); 503 carries Retry-After; an expired deadline is 504.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ptldb/internal/core"
	"ptldb/internal/gtfs"
	"ptldb/internal/timetable"
)

// PointResponse is the /query/{ea,ld,sd} payload. Value is seconds (a
// timestamp for ea/ld, a duration for sd) and HMS its clock rendering; both
// are zero when Found is false. Every field is always present so the shape
// is golden-stable.
type PointResponse struct {
	Found bool   `json:"found"`
	Value int64  `json:"value"`
	HMS   string `json:"hms"`
}

// StopTime is one kNN / one-to-many answer row.
type StopTime struct {
	Stop int64  `json:"stop"`
	When int64  `json:"when"`
	HMS  string `json:"hms"`
}

// ResultsResponse is the /query/{eaknn,ldknn,eaotm,ldotm} payload.
type ResultsResponse struct {
	Results []StopTime `json:"results"`
}

// PlanResponse is the /plan?name=... payload.
type PlanResponse struct {
	Name string `json:"name"`
	Plan string `json:"plan"`
}

// PlanListResponse is the bare /plan payload.
type PlanListResponse struct {
	Names []string `json:"names"`
}

// ErrorResponse is every non-200 body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string `json:"status"`
}

// parseFunc validates one endpoint's parameters, returning the canonical
// coalescing key and the execution closure.
type parseFunc func(q url.Values) (key string, run func() (any, error), err error)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /query/ea", s.query(s.parseV2V("ea")))
	s.mux.HandleFunc("GET /query/ld", s.query(s.parseV2V("ld")))
	s.mux.HandleFunc("GET /query/sd", s.query(s.parseSD))
	s.mux.HandleFunc("GET /query/eaknn", s.query(s.parseKNN("eaknn")))
	s.mux.HandleFunc("GET /query/ldknn", s.query(s.parseKNN("ldknn")))
	s.mux.HandleFunc("GET /query/eaotm", s.query(s.parseOTM("eaotm")))
	s.mux.HandleFunc("GET /query/ldotm", s.query(s.parseOTM("ldotm")))
	s.mux.HandleFunc("GET /plan", s.handlePlan)
	s.mux.HandleFunc("GET /obs", s.handleObs)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// query wraps a parseFunc with the shared request pipeline: parse, admit,
// coalesce, await, map errors, record latency.
func (s *Server) query(parse parseFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key, run, err := parse(r.URL.Query())
		if err != nil {
			s.metrics.BadRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
		defer cancel()
		v, status, err := s.do(ctx, key, run)
		s.metrics.Latency.Observe(time.Since(start))
		if err != nil {
			switch status {
			case http.StatusBadRequest:
				s.metrics.BadRequests.Add(1)
			case http.StatusInternalServerError:
				s.metrics.Errors.Add(1)
			case http.StatusServiceUnavailable:
				w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
			}
			writeJSON(w, status, ErrorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, v)
	}
}

// retryAfterSeconds renders a duration as the whole-second Retry-After
// header value, rounding up so the hint never undershoots.
func retryAfterSeconds(d time.Duration) string {
	return strconv.FormatInt(int64((d+time.Second-1)/time.Second), 10)
}

func (s *Server) parseV2V(kind string) parseFunc {
	return func(q url.Values) (string, func() (any, error), error) {
		from, err := stopParam(q, "from")
		if err != nil {
			return "", nil, err
		}
		to, err := stopParam(q, "to")
		if err != nil {
			return "", nil, err
		}
		t, err := timeParam(q, "t")
		if err != nil {
			return "", nil, err
		}
		key := fmt.Sprintf("%s|%d|%d|%d", kind, from, to, t)
		run := func() (any, error) {
			var v timetable.Time
			var ok bool
			var err error
			if kind == "ea" {
				v, ok, err = s.store.EarliestArrival(from, to, t)
			} else {
				v, ok, err = s.store.LatestDeparture(from, to, t)
			}
			return pointResponse(v, ok), err
		}
		return key, run, nil
	}
}

func (s *Server) parseSD(q url.Values) (string, func() (any, error), error) {
	from, err := stopParam(q, "from")
	if err != nil {
		return "", nil, err
	}
	to, err := stopParam(q, "to")
	if err != nil {
		return "", nil, err
	}
	start, err := timeParam(q, "start")
	if err != nil {
		return "", nil, err
	}
	end, err := timeParam(q, "end")
	if err != nil {
		return "", nil, err
	}
	key := fmt.Sprintf("sd|%d|%d|%d|%d", from, to, start, end)
	run := func() (any, error) {
		v, ok, err := s.store.ShortestDuration(from, to, start, end)
		return pointResponse(v, ok), err
	}
	return key, run, nil
}

func (s *Server) parseKNN(kind string) parseFunc {
	return func(q url.Values) (string, func() (any, error), error) {
		set, from, t, err := setParams(q)
		if err != nil {
			return "", nil, err
		}
		k, err := intParam(q, "k")
		if err != nil {
			return "", nil, err
		}
		key := fmt.Sprintf("%s|%s|%d|%d|%d", kind, set, from, t, k)
		run := func() (any, error) {
			var rs []core.Result
			var err error
			if kind == "eaknn" {
				rs, err = s.store.EAKNN(set, from, t, int(k))
			} else {
				rs, err = s.store.LDKNN(set, from, t, int(k))
			}
			return resultsResponse(rs), err
		}
		return key, run, nil
	}
}

func (s *Server) parseOTM(kind string) parseFunc {
	return func(q url.Values) (string, func() (any, error), error) {
		set, from, t, err := setParams(q)
		if err != nil {
			return "", nil, err
		}
		key := fmt.Sprintf("%s|%s|%d|%d", kind, set, from, t)
		run := func() (any, error) {
			var rs []core.Result
			var err error
			if kind == "eaotm" {
				rs, err = s.store.EAOTM(set, from, t)
			} else {
				rs, err = s.store.LDOTM(set, from, t)
			}
			return resultsResponse(rs), err
		}
		return key, run, nil
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeJSONIndent(w, http.StatusOK, PlanListResponse{Names: s.store.ExplainNames()})
		return
	}
	plan, err := s.store.ExplainPrepared(name)
	if err != nil {
		status := statusFor(err)
		if status == http.StatusBadRequest {
			s.metrics.BadRequests.Add(1)
		} else {
			s.metrics.Errors.Add(1)
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSONIndent(w, http.StatusOK, PlanResponse{Name: name, Plan: plan})
}

func (s *Server) handleObs(w http.ResponseWriter, _ *http.Request) {
	snap := s.store.Snapshot()
	sv := s.metrics.Snapshot()
	snap.Serve = &sv
	writeJSONIndent(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func pointResponse(v timetable.Time, ok bool) PointResponse {
	if !ok {
		return PointResponse{}
	}
	return PointResponse{Found: true, Value: int64(v), HMS: gtfs.FormatTime(v)}
}

func resultsResponse(rs []core.Result) ResultsResponse {
	out := ResultsResponse{Results: make([]StopTime, len(rs))}
	for i, r := range rs {
		out.Results[i] = StopTime{Stop: int64(r.Stop), When: int64(r.When), HMS: gtfs.FormatTime(r.When)}
	}
	return out
}

func stopParam(q url.Values, name string) (timetable.StopID, error) {
	v, err := intParam(q, name)
	return timetable.StopID(v), err
}

func intParam(q url.Values, name string) (int64, error) {
	raw := q.Get(name)
	if raw == "" {
		return 0, fmt.Errorf("serve: missing parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

// timeParam accepts seconds after midnight or HH:MM:SS, like the query CLI.
func timeParam(q url.Values, name string) (timetable.Time, error) {
	raw := q.Get(name)
	if raw == "" {
		return 0, fmt.Errorf("serve: missing parameter %q", name)
	}
	if t, err := gtfs.ParseTime(raw); err == nil {
		return t, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: parameter %s=%q is neither seconds nor HH:MM:SS", name, raw)
	}
	return timetable.Time(v), nil
}

// setParams pulls the shared set/from/t triple of the kNN and OTM endpoints.
func setParams(q url.Values) (string, timetable.StopID, timetable.Time, error) {
	set := q.Get("set")
	if set == "" {
		return "", 0, 0, fmt.Errorf("serve: missing parameter %q", "set")
	}
	from, err := stopParam(q, "from")
	if err != nil {
		return "", 0, 0, err
	}
	t, err := timeParam(q, "t")
	if err != nil {
		return "", 0, 0, err
	}
	return set, from, t, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"serve: encoding response failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Best-effort write: the client may be gone already.
	_, _ = w.Write(append(blob, '\n'))
}

// writeJSONIndent is writeJSON with indentation, for the endpoints meant to
// be read by humans over curl (/plan, /obs).
func writeJSONIndent(w http.ResponseWriter, status int, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"serve: encoding response failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(blob, '\n'))
}
