package serve

// handlers.go routes and renders the JSON API. One endpoint per query type,
// named after the CLI commands:
//
//	GET /query/ea?from=S&to=G&t=T        earliest arrival
//	GET /query/ld?from=S&to=G&t=T        latest departure
//	GET /query/sd?from=S&to=G&start=T&end=T  shortest duration
//	GET /query/eaknn?set=NAME&from=S&t=T&k=K
//	GET /query/ldknn?set=NAME&from=S&t=T&k=K
//	GET /query/eaotm?set=NAME&from=S&t=T
//	GET /query/ldotm?set=NAME&from=S&t=T
//	GET /plan[?name=NAME]                prepared plan(s)
//	GET /obs                             observability snapshot
//	GET /healthz                         liveness
//
// A multi-tenant server (NewMulti) serves the same families per city —
// /t/{city}/query/..., /t/{city}/plan, /t/{city}/obs — plus the /tenants
// listing, while /obs becomes the cross-tenant rollup. Unknown cities are
// 404 before admission.
//
// Time parameters accept seconds after midnight or HH:MM:SS; either spelling
// canonicalizes to the same coalescing key. Malformed parameters are 400
// before admission; store errors map through statusFor (400 caller mistakes,
// 500 internal); 503 carries Retry-After; an expired deadline is 504. The
// /plan and /obs families run through the same deadline and
// Requests/Latency accounting as /query/* (without admission — see
// Server.doSystem).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ptldb/internal/core"
	"ptldb/internal/gtfs"
	"ptldb/internal/obs"
	"ptldb/internal/timetable"
)

// PointResponse is the /query/{ea,ld,sd} payload. Value is seconds (a
// timestamp for ea/ld, a duration for sd) and HMS its clock rendering; both
// are zero when Found is false. Every field is always present so the shape
// is golden-stable.
type PointResponse struct {
	Found bool   `json:"found"`
	Value int64  `json:"value"`
	HMS   string `json:"hms"`
}

// StopTime is one kNN / one-to-many answer row.
type StopTime struct {
	Stop int64  `json:"stop"`
	When int64  `json:"when"`
	HMS  string `json:"hms"`
}

// ResultsResponse is the /query/{eaknn,ldknn,eaotm,ldotm} payload.
type ResultsResponse struct {
	Results []StopTime `json:"results"`
}

// PlanResponse is the /plan?name=... payload.
type PlanResponse struct {
	Name string `json:"name"`
	Plan string `json:"plan"`
}

// PlanListResponse is the bare /plan payload.
type PlanListResponse struct {
	Names []string `json:"names"`
}

// ErrorResponse is every non-200 body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string `json:"status"`
}

// TenantInfo is one city's row in the /tenants listing.
type TenantInfo struct {
	City          string `json:"city"`
	Open          bool   `json:"open"`
	Requests      uint64 `json:"requests"`
	Opens         uint64 `json:"opens"`
	Closes        uint64 `json:"closes"`
	ResidentBytes int64  `json:"resident_bytes"`
}

// TenantListResponse is the /tenants payload, sorted by city.
type TenantListResponse struct {
	Tenants []TenantInfo `json:"tenants"`
}

// TenantTotals sums the per-tenant counters in the rollup /obs — the
// invariant scripts/check.sh asserts: totals equal the sum of the tenants
// section.
type TenantTotals struct {
	Requests      uint64 `json:"requests"`
	Opens         uint64 `json:"opens"`
	Closes        uint64 `json:"closes"`
	OpenTenants   int    `json:"open_tenants"`
	ResidentBytes int64  `json:"resident_bytes"`
}

// MultiObsResponse is the multi-tenant rollup /obs payload: the process-wide
// serving counters, every tenant's own counters, and their totals.
type MultiObsResponse struct {
	Serve   obs.ServeSnapshot             `json:"serve"`
	Tenants map[string]obs.TenantSnapshot `json:"tenants"`
	Totals  TenantTotals                  `json:"totals"`
}

// parseFunc validates one endpoint's parameters, returning the canonical
// coalescing key and the execution closure. The closure receives the store
// at execution time, so the same parsers serve the single-database mux and
// the per-tenant mux (where the store is acquired inside the flight).
type parseFunc func(q url.Values) (key string, run func(Store) (any, error), err error)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.tenants != nil {
		s.mux.HandleFunc("GET /t/{city}/query/ea", s.tenantQuery(parseV2V("ea")))
		s.mux.HandleFunc("GET /t/{city}/query/ld", s.tenantQuery(parseV2V("ld")))
		s.mux.HandleFunc("GET /t/{city}/query/sd", s.tenantQuery(parseSD))
		s.mux.HandleFunc("GET /t/{city}/query/eaknn", s.tenantQuery(parseKNN("eaknn")))
		s.mux.HandleFunc("GET /t/{city}/query/ldknn", s.tenantQuery(parseKNN("ldknn")))
		s.mux.HandleFunc("GET /t/{city}/query/eaotm", s.tenantQuery(parseOTM("eaotm")))
		s.mux.HandleFunc("GET /t/{city}/query/ldotm", s.tenantQuery(parseOTM("ldotm")))
		s.mux.HandleFunc("GET /t/{city}/plan", s.handleTenantPlan)
		s.mux.HandleFunc("GET /t/{city}/obs", s.handleTenantObs)
		s.mux.HandleFunc("GET /tenants", s.handleTenants)
		s.mux.HandleFunc("GET /obs", s.handleRollupObs)
		return
	}
	s.mux.HandleFunc("GET /query/ea", s.query(parseV2V("ea")))
	s.mux.HandleFunc("GET /query/ld", s.query(parseV2V("ld")))
	s.mux.HandleFunc("GET /query/sd", s.query(parseSD))
	s.mux.HandleFunc("GET /query/eaknn", s.query(parseKNN("eaknn")))
	s.mux.HandleFunc("GET /query/ldknn", s.query(parseKNN("ldknn")))
	s.mux.HandleFunc("GET /query/eaotm", s.query(parseOTM("eaotm")))
	s.mux.HandleFunc("GET /query/ldotm", s.query(parseOTM("ldotm")))
	s.mux.HandleFunc("GET /plan", s.handlePlan)
	s.mux.HandleFunc("GET /obs", s.handleObs)
}

// query wraps a parseFunc with the single-database request pipeline.
func (s *Server) query(parse parseFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, parse, "", nil)
	}
}

// tenantQuery wraps a parseFunc with the per-city pipeline: unknown cities
// are 404 before anything is admitted, known ones flow through serveQuery
// with their metrics attached.
func (s *Server) tenantQuery(parse parseFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		city := r.PathValue("city")
		tm := s.tenants.Metrics(city)
		if tm == nil {
			s.unknownTenant(w, city)
			return
		}
		s.serveQuery(w, r, parse, city, tm)
	}
}

// unknownTenant rejects a request for a city the router does not know:
// a caller mistake like a parse failure, so it counts as a BadRequest and
// never enters admission.
func (s *Server) unknownTenant(w http.ResponseWriter, city string) {
	s.metrics.BadRequests.Add(1)
	writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("serve: unknown tenant %q", city)})
}

// serveQuery is the shared request pipeline: parse, admit, coalesce, await,
// map errors, record latency. In tenant mode (tm non-nil) the coalescing key
// carries the city so identical queries to different cities never share a
// flight, and the execution acquires the tenant inside the flight — pinning
// the database against LRU close for exactly the execution, and folding a
// cold open into the admission/deadline envelope.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, parse parseFunc, city string, tm *obs.TenantMetrics) {
	key, run, err := parse(r.URL.Query())
	if err != nil {
		s.metrics.BadRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	exec := func() (any, error) { return run(s.store) }
	if tm != nil {
		key = "t/" + city + "|" + key
		exec = func() (any, error) {
			t, err := s.tenants.Acquire(city)
			if err != nil {
				return nil, err
			}
			defer t.Release()
			return run(t.DB())
		}
		tm.Requests.Add(1)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	v, status, err := s.do(ctx, key, exec)
	elapsed := time.Since(start)
	if status == http.StatusServiceUnavailable {
		// An admission reject answers in microseconds by design; keeping it
		// out of Latency stops overload from dragging the percentiles down
		// (see obs.ServeMetrics).
		s.metrics.RejectedLatency.Observe(elapsed)
	} else {
		s.metrics.Latency.Observe(elapsed)
		if tm != nil {
			tm.Latency.Observe(elapsed)
		}
	}
	if err != nil {
		switch status {
		case http.StatusBadRequest:
			s.metrics.BadRequests.Add(1)
		case http.StatusInternalServerError:
			s.metrics.Errors.Add(1)
		case http.StatusServiceUnavailable:
			w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// retryAfterSeconds renders a duration as the whole-second Retry-After
// header value, rounding up so the hint never undershoots.
func retryAfterSeconds(d time.Duration) string {
	return strconv.FormatInt(int64((d+time.Second-1)/time.Second), 10)
}

func parseV2V(kind string) parseFunc {
	return func(q url.Values) (string, func(Store) (any, error), error) {
		from, err := stopParam(q, "from")
		if err != nil {
			return "", nil, err
		}
		to, err := stopParam(q, "to")
		if err != nil {
			return "", nil, err
		}
		t, err := timeParam(q, "t")
		if err != nil {
			return "", nil, err
		}
		key := fmt.Sprintf("%s|%d|%d|%d", kind, from, to, t)
		run := func(st Store) (any, error) {
			var v timetable.Time
			var ok bool
			var err error
			if kind == "ea" {
				v, ok, err = st.EarliestArrival(from, to, t)
			} else {
				v, ok, err = st.LatestDeparture(from, to, t)
			}
			return pointResponse(v, ok), err
		}
		return key, run, nil
	}
}

func parseSD(q url.Values) (string, func(Store) (any, error), error) {
	from, err := stopParam(q, "from")
	if err != nil {
		return "", nil, err
	}
	to, err := stopParam(q, "to")
	if err != nil {
		return "", nil, err
	}
	start, err := timeParam(q, "start")
	if err != nil {
		return "", nil, err
	}
	end, err := timeParam(q, "end")
	if err != nil {
		return "", nil, err
	}
	key := fmt.Sprintf("sd|%d|%d|%d|%d", from, to, start, end)
	run := func(st Store) (any, error) {
		v, ok, err := st.ShortestDuration(from, to, start, end)
		return pointResponse(v, ok), err
	}
	return key, run, nil
}

func parseKNN(kind string) parseFunc {
	return func(q url.Values) (string, func(Store) (any, error), error) {
		set, from, t, err := setParams(q)
		if err != nil {
			return "", nil, err
		}
		k, err := intParam(q, "k")
		if err != nil {
			return "", nil, err
		}
		key := fmt.Sprintf("%s|%s|%d|%d|%d", kind, set, from, t, k)
		run := func(st Store) (any, error) {
			var rs []core.Result
			var err error
			if kind == "eaknn" {
				rs, err = st.EAKNN(set, from, t, int(k))
			} else {
				rs, err = st.LDKNN(set, from, t, int(k))
			}
			return resultsResponse(rs), err
		}
		return key, run, nil
	}
}

func parseOTM(kind string) parseFunc {
	return func(q url.Values) (string, func(Store) (any, error), error) {
		set, from, t, err := setParams(q)
		if err != nil {
			return "", nil, err
		}
		key := fmt.Sprintf("%s|%s|%d|%d", kind, set, from, t)
		run := func(st Store) (any, error) {
			var rs []core.Result
			var err error
			if kind == "eaotm" {
				rs, err = st.EAOTM(set, from, t)
			} else {
				rs, err = st.LDOTM(set, from, t)
			}
			return resultsResponse(rs), err
		}
		return key, run, nil
	}
}

// system wraps a run closure with the system-endpoint half of the pipeline:
// the same deadline and Requests/Latency accounting as /query/*, without
// admission or coalescing (doSystem). Metering lands after the run completes
// so an /obs snapshot taken inside run never counts the request carrying it
// — which keeps the zero-traffic /obs golden byte-stable.
func (s *Server) system(w http.ResponseWriter, r *http.Request, run func() (any, error)) {
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	v, status, err := s.doSystem(ctx, run)
	s.metrics.Requests.Add(1)
	s.metrics.Latency.Observe(time.Since(start))
	if err != nil {
		switch status {
		case http.StatusBadRequest:
			s.metrics.BadRequests.Add(1)
		case http.StatusInternalServerError:
			s.metrics.Errors.Add(1)
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSONIndent(w, http.StatusOK, v)
}

// planRun builds the /plan execution over an acquired store: the name
// listing when name is empty, one rendered plan otherwise.
func planRun(name string, acquire func() (Store, func(), error)) func() (any, error) {
	return func() (any, error) {
		st, release, err := acquire()
		if err != nil {
			return nil, err
		}
		defer release()
		if name == "" {
			return PlanListResponse{Names: st.ExplainNames()}, nil
		}
		plan, err := st.ExplainPrepared(name)
		if err != nil {
			return nil, err
		}
		return PlanResponse{Name: name, Plan: plan}, nil
	}
}

// acquireSingle hands out the single-database store with a no-op release.
func (s *Server) acquireSingle() (Store, func(), error) {
	return s.store, func() {}, nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.system(w, r, planRun(r.URL.Query().Get("name"), s.acquireSingle))
}

func (s *Server) handleObs(w http.ResponseWriter, r *http.Request) {
	s.system(w, r, func() (any, error) {
		snap := s.store.Snapshot()
		sv := s.metrics.Snapshot()
		snap.Serve = &sv
		return snap, nil
	})
}

func (s *Server) handleTenantPlan(w http.ResponseWriter, r *http.Request) {
	city := r.PathValue("city")
	if s.tenants.Metrics(city) == nil {
		s.unknownTenant(w, city)
		return
	}
	s.system(w, r, planRun(r.URL.Query().Get("name"), func() (Store, func(), error) {
		t, err := s.tenants.Acquire(city)
		if err != nil {
			return nil, nil, err
		}
		return t.DB(), t.Release, nil
	}))
}

// handleTenantObs serves one city's registry snapshot with its routing
// counters grafted in under "tenant". Asking for a cold tenant's registry
// opens it — the registry lives on the database handle.
func (s *Server) handleTenantObs(w http.ResponseWriter, r *http.Request) {
	city := r.PathValue("city")
	if s.tenants.Metrics(city) == nil {
		s.unknownTenant(w, city)
		return
	}
	s.system(w, r, func() (any, error) {
		t, err := s.tenants.Acquire(city)
		if err != nil {
			return nil, err
		}
		defer t.Release()
		snap := t.DB().Snapshot()
		var resident int64
		if snap.VCache != nil {
			resident = snap.VCache.ResidentBytes
		}
		ts := t.Metrics().Snapshot(true, resident)
		snap.Tenant = &ts
		return snap, nil
	})
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	s.system(w, r, func() (any, error) {
		snaps := s.tenants.Snapshot()
		names := s.tenants.Names()
		out := TenantListResponse{Tenants: make([]TenantInfo, 0, len(names))}
		for _, name := range names {
			ts := snaps[name]
			out.Tenants = append(out.Tenants, TenantInfo{
				City:          name,
				Open:          ts.Open,
				Requests:      ts.Requests,
				Opens:         ts.Opens,
				Closes:        ts.Closes,
				ResidentBytes: ts.ResidentBytes,
			})
		}
		return out, nil
	})
}

func (s *Server) handleRollupObs(w http.ResponseWriter, r *http.Request) {
	s.system(w, r, func() (any, error) {
		out := MultiObsResponse{Serve: s.metrics.Snapshot(), Tenants: s.tenants.Snapshot()}
		for _, ts := range out.Tenants {
			out.Totals.Requests += ts.Requests
			out.Totals.Opens += ts.Opens
			out.Totals.Closes += ts.Closes
			out.Totals.ResidentBytes += ts.ResidentBytes
			if ts.Open {
				out.Totals.OpenTenants++
			}
		}
		return out, nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func pointResponse(v timetable.Time, ok bool) PointResponse {
	if !ok {
		return PointResponse{}
	}
	return PointResponse{Found: true, Value: int64(v), HMS: gtfs.FormatTime(v)}
}

func resultsResponse(rs []core.Result) ResultsResponse {
	out := ResultsResponse{Results: make([]StopTime, len(rs))}
	for i, r := range rs {
		out.Results[i] = StopTime{Stop: int64(r.Stop), When: int64(r.When), HMS: gtfs.FormatTime(r.When)}
	}
	return out
}

func stopParam(q url.Values, name string) (timetable.StopID, error) {
	v, err := intParam(q, name)
	return timetable.StopID(v), err
}

func intParam(q url.Values, name string) (int64, error) {
	raw := q.Get(name)
	if raw == "" {
		return 0, fmt.Errorf("serve: missing parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

// timeParam accepts seconds after midnight or HH:MM:SS, like the query CLI.
func timeParam(q url.Values, name string) (timetable.Time, error) {
	raw := q.Get(name)
	if raw == "" {
		return 0, fmt.Errorf("serve: missing parameter %q", name)
	}
	if t, err := gtfs.ParseTime(raw); err == nil {
		return t, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: parameter %s=%q is neither seconds nor HH:MM:SS", name, raw)
	}
	return timetable.Time(v), nil
}

// setParams pulls the shared set/from/t triple of the kNN and OTM endpoints.
func setParams(q url.Values) (string, timetable.StopID, timetable.Time, error) {
	set := q.Get("set")
	if set == "" {
		return "", 0, 0, fmt.Errorf("serve: missing parameter %q", "set")
	}
	from, err := stopParam(q, "from")
	if err != nil {
		return "", 0, 0, err
	}
	t, err := timeParam(q, "t")
	if err != nil {
		return "", 0, 0, err
	}
	return set, from, t, nil
}

// encodeFailBody is the fallback body when response encoding fails. It is
// itself valid JSON and must be written with the application/json header —
// http.Error would stamp text/plain over a JSON payload.
const encodeFailBody = `{"error":"serve: encoding response failed"}` + "\n"

// writeEncodeFailure answers an encoding failure with a JSON 500: same
// Content-Type contract as every other body, so clients parsing errors never
// see text/plain.
func writeEncodeFailure(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = io.WriteString(w, encodeFailBody)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		writeEncodeFailure(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Best-effort write: the client may be gone already.
	_, _ = w.Write(append(blob, '\n'))
}

// writeJSONIndent is writeJSON with indentation, for the endpoints meant to
// be read by humans over curl (/plan, /obs, /tenants).
func writeJSONIndent(w http.ResponseWriter, status int, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeEncodeFailure(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(blob, '\n'))
}
