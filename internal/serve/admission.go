package serve

// admission.go is the in-flight cap: a buffered-channel semaphore bounding
// concurrent store executions. Acquisition is non-blocking — a saturated
// server answers 503 with Retry-After immediately instead of queueing
// requests unboundedly (the open-loop harness shows why: under overload an
// unbounded queue turns every latency percentile into the test duration).
// Coalesced joins ride an existing slot for free; only executions count.

type semaphore struct {
	slots chan struct{}
}

func newSemaphore(n int) *semaphore {
	return &semaphore{slots: make(chan struct{}, n)}
}

// tryAcquire claims a slot without blocking.
func (s *semaphore) tryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot. The receive never blocks: every release pairs
// with one successful tryAcquire on the same buffered channel.
func (s *semaphore) release() {
	<-s.slots
}
