package serve

// multi_test.go exercises the multi-tenant server against fake tenant
// databases: per-city coalescing keys never share flights across cities,
// lazy open and LRU close flow through the serving layer, unknown cities are
// 404 before admission, and the /tenants and rollup /obs shapes are pinned
// byte-for-byte like the single-database goldens.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ptldb"
	"ptldb/internal/tenant"
)

// fakeFleet builds a tenant router whose Open hook hands out fakeStores,
// recording every handle per city.
type fakeFleet struct {
	mu    sync.Mutex
	block chan struct{} // when non-nil, installed on every fake
	byDir map[string][]*fakeStore
}

func newFakeFleet(block chan struct{}) *fakeFleet {
	return &fakeFleet{block: block, byDir: map[string][]*fakeStore{}}
}

func (ff *fakeFleet) open(dir string, cfg ptldb.Config) (tenant.DB, error) {
	fs := &fakeStore{block: ff.block}
	ff.mu.Lock()
	ff.byDir[dir] = append(ff.byDir[dir], fs)
	ff.mu.Unlock()
	return fs, nil
}

// latest returns the most recently opened fake for a city, or nil.
func (ff *fakeFleet) latest(city string) *fakeStore {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	fakes := ff.byDir["/fake/"+city]
	if len(fakes) == 0 {
		return nil
	}
	return fakes[len(fakes)-1]
}

func fakeRouter(t *testing.T, ff *fakeFleet, maxOpen int, cities ...string) *tenant.Router {
	t.Helper()
	dirs := map[string]string{}
	for _, c := range cities {
		dirs[c] = "/fake/" + c
	}
	r, err := tenant.NewFromDirs(dirs, tenant.Config{MaxOpenTenants: maxOpen, Open: ff.open})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTenantCoalescingKeysAreCityScoped drives the identical query into two
// cities and twice into one: same-city requests share a flight, cross-city
// requests never do.
func TestTenantCoalescingKeysAreCityScoped(t *testing.T) {
	block := make(chan struct{})
	ff := newFakeFleet(block)
	router := fakeRouter(t, ff, 2, "austin", "berlin")
	srv := NewMulti(router, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const q = "/query/ea?from=1&to=2&t=28800"
	var wg sync.WaitGroup
	for _, path := range []string{"/t/austin" + q, "/t/austin" + q, "/t/berlin" + q} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			if code, body := get(t, ts.URL+path); code != http.StatusOK {
				t.Errorf("GET %s: status %d, body %s", path, code, body)
			}
		}(path)
	}
	m := srv.Metrics()
	// Executions ticks before the tenant open inside the flight finishes, so
	// wait for the fakes themselves: each city must reach its own store
	// exactly once while the third request joins austin's flight.
	waitFor(t, "one blocked execution per city, one coalesced join", func() bool {
		a, b := ff.latest("austin"), ff.latest("berlin")
		return a != nil && a.calls.Load() == 1 && b != nil && b.calls.Load() == 1 &&
			m.Coalesced.Load() == 1
	})
	if got := m.Executions.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (one per city)", got)
	}
	close(block)
	wg.Wait()
	if router.Metrics("austin").Requests.Load() != 2 || router.Metrics("berlin").Requests.Load() != 1 {
		t.Errorf("per-tenant requests = %d/%d, want 2/1",
			router.Metrics("austin").Requests.Load(), router.Metrics("berlin").Requests.Load())
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantLifecycleOverHTTP walks lazy open and LRU close through the
// serving layer with a cap of one open tenant.
func TestTenantLifecycleOverHTTP(t *testing.T) {
	ff := newFakeFleet(nil)
	router := fakeRouter(t, ff, 1, "austin", "berlin")
	srv := NewMulti(router, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body := get(t, ts.URL+"/t/austin/query/ea?from=1&to=2&t=28800"); code != http.StatusOK {
		t.Fatalf("austin query: status %d, body %s", code, body)
	}
	if router.OpenCount() != 1 || ff.latest("berlin") != nil {
		t.Fatalf("after one austin query: %d open, berlin opened %v", router.OpenCount(), ff.latest("berlin"))
	}
	if code, _ := get(t, ts.URL+"/t/berlin/query/ea?from=1&to=2&t=28800"); code != http.StatusOK {
		t.Fatalf("berlin query failed")
	}
	// The cap is 1: opening berlin closed idle austin.
	if got := ff.latest("austin").closeCalls.Load(); got != 1 {
		t.Errorf("austin close calls = %d, want 1 (LRU close under cap)", got)
	}
	if router.OpenCount() != 1 {
		t.Errorf("open count = %d, want 1", router.OpenCount())
	}
	// A later austin query reopens it transparently.
	if code, _ := get(t, ts.URL+"/t/austin/query/ea?from=1&to=2&t=28800"); code != http.StatusOK {
		t.Fatalf("austin reopen query failed")
	}
	m := router.Metrics("austin")
	if m.Opens.Load() != 2 || m.Closes.Load() != 1 {
		t.Errorf("austin opens/closes = %d/%d, want 2/1", m.Opens.Load(), m.Closes.Load())
	}
	// The rollup /obs sums the per-tenant counters into totals.
	code, body := get(t, ts.URL+"/obs")
	if code != http.StatusOK {
		t.Fatalf("/obs status %d", code)
	}
	for _, frag := range []string{
		"\"totals\"", "\"opens\": 3", "\"closes\": 2", "\"open_tenants\": 1",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("rollup /obs lacks %s:\n%s", frag, body)
		}
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownTenant404 pins the pre-admission rejection of unknown cities
// across every per-city endpoint family.
func TestUnknownTenant404(t *testing.T) {
	ff := newFakeFleet(nil)
	router := fakeRouter(t, ff, 2, "austin")
	srv := NewMulti(router, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{
		"/t/nope/query/ea?from=1&to=2&t=28800",
		"/t/nope/plan",
		"/t/nope/obs",
	} {
		code, body := get(t, ts.URL+path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, code)
		}
		if !strings.Contains(body, "unknown tenant") {
			t.Errorf("GET %s: body %q lacks the unknown-tenant error", path, body)
		}
	}
	m := srv.Metrics()
	if m.BadRequests.Load() != 3 || m.Requests.Load() != 0 {
		t.Errorf("unknown tenants: bad_requests %d requests %d, want 3 and 0 (rejected before the pipeline)",
			m.BadRequests.Load(), m.Requests.Load())
	}
	if router.OpenCount() != 0 {
		t.Errorf("unknown tenant requests opened %d databases", router.OpenCount())
	}
}

const tenantsGolden = `{
  "tenants": [
    {
      "city": "austin",
      "open": false,
      "requests": 0,
      "opens": 0,
      "closes": 0,
      "resident_bytes": 0
    },
    {
      "city": "berlin",
      "open": false,
      "requests": 0,
      "opens": 0,
      "closes": 0,
      "resident_bytes": 0
    }
  ]
}
`

const rollupObsGolden = `{
  "serve": {
    "requests": 0,
    "executions": 0,
    "coalesced": 0,
    "rejected": 0,
    "timeouts": 0,
    "bad_requests": 0,
    "errors": 0,
    "in_flight": 0,
    "latency": {
      "count": 0,
      "mean_us": 0
    },
    "rejected_latency": {
      "count": 0,
      "mean_us": 0
    }
  },
  "tenants": {
    "austin": {
      "requests": 0,
      "opens": 0,
      "closes": 0,
      "open": false,
      "resident_bytes": 0,
      "latency": {
        "count": 0,
        "mean_us": 0
      }
    },
    "berlin": {
      "requests": 0,
      "opens": 0,
      "closes": 0,
      "open": false,
      "resident_bytes": 0,
      "latency": {
        "count": 0,
        "mean_us": 0
      }
    }
  },
  "totals": {
    "requests": 0,
    "opens": 0,
    "closes": 0,
    "open_tenants": 0,
    "resident_bytes": 0
  }
}
`

const tenantObsGolden = `{
  "pool": {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "write_backs": 0
  },
  "exec": {
    "fused_runs": 0,
    "fused_bailouts": 0,
    "general_runs": 0,
    "rows_scanned": 0,
    "tuples_merged": 0
  },
  "segment": {
    "hits": 0,
    "columns_decoded": 0,
    "bytes_read": 0
  },
  "query": null,
  "tenant": {
    "requests": 0,
    "opens": 1,
    "closes": 0,
    "open": true,
    "resident_bytes": 0,
    "latency": {
      "count": 0,
      "mean_us": 0
    }
  }
}
`

// TestMultiGoldens pins the multi-tenant wire shapes: the rollup /obs on a
// cold router (fetched first — system requests are metered only after their
// snapshot is taken, so every field is deterministically zero), the /tenants
// listing, then one city's /obs (which lazily opens it).
func TestMultiGoldens(t *testing.T) {
	ff := newFakeFleet(nil)
	router := fakeRouter(t, ff, 2, "austin", "berlin")
	srv := NewMulti(router, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := get(t, ts.URL+"/obs")
	if code != http.StatusOK || body != rollupObsGolden {
		t.Errorf("rollup /obs drifted (status %d):\n got: %q\nwant: %q", code, body, rollupObsGolden)
	}
	code, body = get(t, ts.URL+"/tenants")
	if code != http.StatusOK || body != tenantsGolden {
		t.Errorf("/tenants drifted (status %d):\n got: %q\nwant: %q", code, body, tenantsGolden)
	}
	code, body = get(t, ts.URL+"/t/austin/obs")
	if code != http.StatusOK || body != tenantObsGolden {
		t.Errorf("/t/austin/obs drifted (status %d):\n got: %q\nwant: %q", code, body, tenantObsGolden)
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
}
