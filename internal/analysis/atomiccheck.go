package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomicCheck enforces all-or-nothing atomicity per field: once any code in
// the package passes &x.f to a sync/atomic function, every other access to
// that field must also go through sync/atomic. A plain read racing an
// atomic.AddInt64 is exactly the kind of bug the race detector only catches
// when the schedule cooperates; this makes it a deterministic lint failure.
//
// The check is package-local and field-precise: the tainting access and the
// offending access must name the same struct field (the same types.Object).
// Taking the field's address for the purpose of an atomic call is sanctioned;
// any other address-of, read, or write of the field is a finding.
type atomicCheck struct{}

// NewAtomicCheck returns the atomiccheck checker.
func NewAtomicCheck() Checker { return atomicCheck{} }

func (atomicCheck) Name() string { return "atomiccheck" }

func (c atomicCheck) Check(p *Package) []Finding {
	// Pass 1: fields used atomically anywhere in the package, plus the set
	// of identifier uses that are sanctioned (they appear inside &f passed
	// to a sync/atomic call).
	atomicFields := map[types.Object]token.Pos{}
	sanctioned := map[*ast.Ident]bool{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := p.Info.Uses[sel.Sel]
				if obj == nil || !isStructField(obj) {
					continue
				}
				if _, seen := atomicFields[obj]; !seen {
					atomicFields[obj] = call.Pos()
				}
				sanctioned[sel.Sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other use of those fields is a finding.
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || sanctioned[sel.Sel] {
				return true
			}
			first, tainted := atomicFields[obj]
			if !tainted {
				return true
			}
			out = append(out, Finding{
				Pos:     p.Fset.Position(sel.Pos()),
				Checker: c.Name(),
				Message: fmt.Sprintf("non-atomic access to field %s, which is accessed with sync/atomic at line %d: mixing the two races",
					obj.Name(), p.Fset.Position(first).Line),
			})
			return true
		})
	}
	return out
}

// isAtomicCall reports whether call targets a function in sync/atomic.
func isAtomicCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isStructField reports whether obj is a struct field variable.
func isStructField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}
