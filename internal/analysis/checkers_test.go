package analysis_test

import (
	"path/filepath"
	"testing"

	"ptldb/internal/analysis"
	"ptldb/internal/analysis/analysistest"
)

func corpus(name string) string { return filepath.Join("testdata", "src", name) }

func TestSQLCheck(t *testing.T) {
	analysistest.Run(t, corpus("sqlcheck"), analysis.NewSQLCheck())
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, corpus("lockcheck"), analysis.NewLockCheck())
}

func TestAtomicCheck(t *testing.T) {
	analysistest.Run(t, corpus("atomiccheck"), analysis.NewAtomicCheck())
}

func TestArenaCheck(t *testing.T) {
	analysistest.Run(t, corpus("arenacheck"), analysis.NewArenaCheck())
}

func TestErrCheck(t *testing.T) {
	analysistest.Run(t, corpus("errcheck"), analysis.NewErrCheck())
}

func TestLockOrderCheck(t *testing.T) {
	analysistest.Run(t, corpus("lockordercheck"), analysis.NewLockOrderCheck())
}

func TestAllocCheck(t *testing.T) {
	analysistest.Run(t, corpus("allocheck"), analysis.NewAllocCheck())
}

// TestStaleWaiver drives the directive corpus straight through Run: the used
// waiver suppresses its errcheck finding, the waiver naming a checker that
// did not run stays unjudged, and the stale waiver is the run's only
// finding. The stale report lands on the directive's own comment line, which
// cannot also carry a want comment — hence no analysistest here.
func TestStaleWaiver(t *testing.T) {
	dir := corpus("directive")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	findings := analysis.Run(pkgs, []analysis.Checker{analysis.NewErrCheck()})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the stale waiver", findings)
	}
	f := findings[0]
	if f.Checker != "directive" {
		t.Errorf("checker = %q, want %q", f.Checker, "directive")
	}
	const wantMsg = "stale lint:ignore: no errcheck finding on this or the next line; delete the waiver"
	if f.Message != wantMsg {
		t.Errorf("message = %q, want %q", f.Message, wantMsg)
	}
	if f.Pos.Line != 20 {
		t.Errorf("line = %d, want 20 (the stale directive comment)", f.Pos.Line)
	}
}

// TestCleanCorpus runs every checker (errcheck unscoped) over the negative
// corpus, which must come out without a single finding.
func TestCleanCorpus(t *testing.T) {
	analysistest.Run(t, corpus("clean"),
		analysis.NewSQLCheck(),
		analysis.NewLockCheck(),
		analysis.NewLockOrderCheck(),
		analysis.NewAtomicCheck(),
		analysis.NewArenaCheck(),
		analysis.NewAllocCheck(),
		analysis.NewErrCheck(),
	)
}

// TestModuleClean is the lint gate as a test: the production suite over the
// whole module must report zero findings.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is slow; run without -short")
	}
	root := filepath.Join("..", "..")
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, f := range analysis.Run(pkgs, analysis.Checkers()) {
		t.Errorf("%s", f)
	}
}
