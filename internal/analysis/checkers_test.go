package analysis_test

import (
	"path/filepath"
	"testing"

	"ptldb/internal/analysis"
	"ptldb/internal/analysis/analysistest"
)

func corpus(name string) string { return filepath.Join("testdata", "src", name) }

func TestSQLCheck(t *testing.T) {
	analysistest.Run(t, corpus("sqlcheck"), analysis.NewSQLCheck())
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, corpus("lockcheck"), analysis.NewLockCheck())
}

func TestAtomicCheck(t *testing.T) {
	analysistest.Run(t, corpus("atomiccheck"), analysis.NewAtomicCheck())
}

func TestArenaCheck(t *testing.T) {
	analysistest.Run(t, corpus("arenacheck"), analysis.NewArenaCheck())
}

func TestErrCheck(t *testing.T) {
	analysistest.Run(t, corpus("errcheck"), analysis.NewErrCheck())
}

// TestCleanCorpus runs every checker (errcheck unscoped) over the negative
// corpus, which must come out without a single finding.
func TestCleanCorpus(t *testing.T) {
	analysistest.Run(t, corpus("clean"),
		analysis.NewSQLCheck(),
		analysis.NewLockCheck(),
		analysis.NewAtomicCheck(),
		analysis.NewArenaCheck(),
		analysis.NewErrCheck(),
	)
}

// TestModuleClean is the lint gate as a test: the production suite over the
// whole module must report zero findings.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is slow; run without -short")
	}
	root := filepath.Join("..", "..")
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, f := range analysis.Run(pkgs, analysis.Checkers()) {
		t.Errorf("%s", f)
	}
}
