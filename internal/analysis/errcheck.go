package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// errCheck is a deliberately small errcheck: inside the storage engine a
// swallowed error is silent data loss (a failed WritePage that nobody sees
// corrupts the heap file on the next read), so a bare call statement whose
// results include an error is a finding — the error vanished without anyone
// deciding to drop it.
//
// Explicitly assigning the error to the blank identifier ("_ = f.Close()")
// is the sanctioned escape hatch: the discard is visible in the source and
// survives code review, which is the property this checker exists to
// protect. go/defer statements are also exempt — they cannot consume
// results, and forcing wrapper closures everywhere hurts more than it helps.
// Writes into in-memory sinks (strings.Builder, bytes.Buffer, including via
// fmt.Fprint*) are exempt too: their error results are documented to always
// be nil. So is best-effort terminal output — fmt.Print* (stdout) and
// fmt.Fprint* aimed directly at os.Stdout or os.Stderr: a CLI has no
// recovery for a broken terminal pipe, and the error carries no data-loss
// risk. The same fmt.Fprint* into a file or unknown io.Writer stays a
// finding.
//
// The checker is scoped by import-path prefix: the production suite runs it
// over internal/sqldb (storage engine: a swallowed error is data loss),
// internal/obs, internal/serve (a swallowed error becomes a wrong HTTP
// status), and the cmd/ binaries (see Checkers), so the rest of the module
// keeps idiomatic latitude.
type errCheck struct {
	prefixes []string
}

// NewErrCheck returns the errcheck checker scoped to packages whose import
// path equals or is under one of the given prefixes. With no prefixes every
// package is checked (used by the golden tests).
func NewErrCheck(prefixes ...string) Checker { return errCheck{prefixes: prefixes} }

func (errCheck) Name() string { return "errcheck" }

func (c errCheck) inScope(path string) bool {
	if len(c.prefixes) == 0 {
		return true
	}
	for _, prefix := range c.prefixes {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

func (c errCheck) Check(p *Package) []Finding {
	if !c.inScope(p.Path) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok && returnsError(p, call) && !neverFails(p, call) {
					out = append(out, Finding{
						Pos:     p.Fset.Position(x.Pos()),
						Checker: c.Name(),
						Message: fmt.Sprintf("error result of %s is discarded (assign it, or make the discard explicit with _ =)", callDisplayName(call)),
					})
				}
				return false
			case *ast.GoStmt, *ast.DeferStmt:
				return false
			}
			return true
		})
	}
	return out
}

// returnsError reports whether any of call's results is an error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

// neverFails reports calls whose error result is documented to always be
// nil: methods on strings.Builder / bytes.Buffer, and fmt.Fprint* writing
// into one of those.
func neverFails(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if strings.HasPrefix(fn.Name(), "Print") {
			return true // stdout: best-effort terminal output
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			if isStdStream(p, call.Args[0]) {
				return true
			}
			if tv, ok := p.Info.Types[call.Args[0]]; ok {
				return isInMemoryWriter(tv.Type)
			}
		}
		return false
	}
	if tv, ok := p.Info.Types[sel.X]; ok {
		return isInMemoryWriter(tv.Type)
	}
	return false
}

// isStdStream reports whether the expression is exactly os.Stdout or
// os.Stderr — the two writers whose failed writes a CLI cannot act on.
func isStdStream(p *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}

func isInMemoryWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callDisplayName renders the callee for diagnostics: pkg.F, recv.M, or F.
func callDisplayName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	}
	return "call"
}
