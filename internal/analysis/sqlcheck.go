package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"strconv"
	"strings"

	"ptldb/internal/sqldb/exec"
	"ptldb/internal/sqldb/sql"
)

// sqlCheck parses, at lint time, every string constant that reaches a SQL
// entry point, using the engine's own parser — the SQL dialect of the
// paper's Codes 1–4 is part of the project's contract and must never drift
// into text that only fails at runtime.
//
// Entry points are recognized by callee name:
//
//   - Query, QueryTraced, Prepare, CachedPrepare: the first argument must
//     parse as a SELECT (sql.Parse).
//   - Exec: the first argument must parse as a statement
//     (sql.ParseStatement).
//   - prepared (core's plan-cache helper): the first argument must parse as
//     a SELECT and additionally compile with exec.Fuse — the nine prepared
//     Code 1–4 statements all flow through it, so breaking a fused shape
//     (unsorting a join input, renaming a label column, reordering ORDER BY
//     keys) fails the lint gate instead of silently downgrading every query
//     to the general executor.
//
// Arguments are resolved to text when they are string constants, or
// fmt.Sprintf calls of a string constant. Printf-style table-name and
// bucket-width verbs (%s, %d, %[n]s, %[n]d) are substituted with
// placeholder identifiers and a positive integer literal before parsing,
// matching how core interpolates table names at statement-build time.
// Dynamic (non-constant) SQL is out of lint scope.
type sqlCheck struct{}

// NewSQLCheck returns the sqlcheck checker.
func NewSQLCheck() Checker { return sqlCheck{} }

func (sqlCheck) Name() string { return "sqlcheck" }

// sqlParseSinks require the first argument to parse as a SELECT;
// sqlStatementSinks accept any statement; sqlFusedSinks must also fuse.
var (
	sqlParseSinks     = map[string]bool{"Query": true, "QueryTraced": true, "Prepare": true, "CachedPrepare": true, "prepared": true}
	sqlStatementSinks = map[string]bool{"Exec": true}
	sqlFusedSinks     = map[string]bool{"prepared": true}
)

func (c sqlCheck) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if (!sqlParseSinks[name] && !sqlStatementSinks[name]) || len(call.Args) == 0 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			text, ok := c.constantText(p, arg)
			if !ok {
				return true
			}
			pos := p.Fset.Position(arg.Pos())
			subst, err := substFormatVerbs(text)
			if err != nil {
				out = append(out, Finding{pos, c.Name(),
					fmt.Sprintf("SQL constant passed to %s: %v", name, err)})
				return true
			}
			if sqlStatementSinks[name] {
				if _, err := sql.ParseStatement(subst); err != nil {
					out = append(out, Finding{pos, c.Name(),
						fmt.Sprintf("SQL constant passed to %s does not parse: %v", name, err)})
				}
				return true
			}
			sel, err := sql.Parse(subst)
			if err != nil {
				out = append(out, Finding{pos, c.Name(),
					fmt.Sprintf("SQL constant passed to %s does not parse: %v", name, err)})
				return true
			}
			if sqlFusedSinks[name] && exec.Fuse(sel) == nil {
				out = append(out, Finding{pos, c.Name(),
					fmt.Sprintf("statement passed to %s does not compile to a fused plan: the shape drifted from the recognized Codes 1-4 templates and every execution would fall back to the general executor", name)})
			}
			return true
		})
	}
	return out
}

// constantText resolves e to compile-time SQL text: a string constant, or a
// fmt.Sprintf whose format argument is a string constant.
func (sqlCheck) constantText(p *Package, e ast.Expr) (string, bool) {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || calleeName(call) != "Sprintf" || len(call.Args) == 0 {
		return "", false
	}
	tv, ok := p.Info.Types[ast.Unparen(call.Args[0])]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// substFormatVerbs rewrites the printf verbs the project uses for statement
// building into parseable SQL: %s and %[n]s become placeholder table
// identifiers (distinct per index), %d and %[n]d become a positive integer
// literal (the bucket width). Any other verb is an error: the linter cannot
// prove such a statement parses, so the project convention is to stick to
// s/d interpolation.
func substFormatVerbs(format string) (string, error) {
	var b strings.Builder
	b.Grow(len(format))
	seq := 0
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			b.WriteByte(ch)
			continue
		}
		i++
		if i >= len(format) {
			return "", fmt.Errorf("format string ends mid-verb")
		}
		idx := 0
		if format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				return "", fmt.Errorf("unterminated [n] index in format string")
			}
			n, err := strconv.Atoi(format[i+1 : i+j])
			if err != nil {
				return "", fmt.Errorf("bad [n] index in format string: %v", err)
			}
			idx = n
			i += j + 1
			if i >= len(format) {
				return "", fmt.Errorf("format string ends mid-verb")
			}
		}
		switch format[i] {
		case '%':
			b.WriteByte('%')
		case 's':
			if idx == 0 {
				seq++
				idx = seq
			}
			fmt.Fprintf(&b, "ptlint_t%d", idx)
		case 'd':
			b.WriteString("3600")
		default:
			return "", fmt.Errorf("unsupported format verb %%%c (only %%s and %%d interpolate into lint-checkable SQL)", format[i])
		}
	}
	return b.String(), nil
}
