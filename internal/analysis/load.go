package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path ("ptldb/internal/core")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, with comments
	Pkg   *types.Package
	Info  *types.Info
}

// Loader loads and type-checks module packages from source. It is a
// stdlib-only stand-in for go/packages: module-internal imports are resolved
// against the module root and type-checked recursively, everything else goes
// through the standard library's source importer (which type-checks GOROOT
// packages from source, so no export data or toolchain invocation is
// needed).
type Loader struct {
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.ImporterFrom
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader creates a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	moduleDir, modulePath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer lacks ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		moduleDir:  moduleDir,
		modulePath: modulePath,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if path, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(path), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod at or above the working directory")
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// the module tree, "unsafe" maps to types.Unsafe, and everything else (the
// standard library) is type-checked from GOROOT source.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.moduleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// LoadDir parses and type-checks the single package in dir under the given
// import path, reusing an earlier load of the same path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// Load resolves package patterns relative to root: "./..." (or "...")
// recursively, otherwise a single directory like "./internal/core". Matched
// packages are type-checked and returned in import-path order. Directories
// named "testdata", hidden directories, and directories with no non-test Go
// files are skipped by the recursive form.
func (l *Loader) Load(root string, patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkPackageDirs(root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := l.walkPackageDirs(base, add); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(root, filepath.FromSlash(pat)))
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		importPath, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walkPackageDirs calls add for every directory under base that holds at
// least one non-test Go file.
func (l *Loader) walkPackageDirs(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := build.ImportDir(path, 0); err == nil && len(bp.GoFiles) > 0 {
			add(path)
		}
		return nil
	})
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.modulePath)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}
