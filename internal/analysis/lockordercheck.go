package analysis

// lockordercheck builds a whole-module lock-acquisition graph over every
// annotated synchronization primitive and checks it for deadlock shapes that
// lockcheck's one-function-at-a-time view cannot see.
//
// Two field annotations define the lock classes:
//
//	mu sync.Mutex         // lockcheck:shard level=20
//	ready chan struct{}   // lockcheck:latch level=10
//
// A shard class is acquired by Lock/RLock and released by Unlock/RUnlock. A
// latch class is held from the moment a fresh channel is stored into the
// field (directly, through a local, or in a composite literal) until close;
// receiving from a latch is a blocking acquisition but never holds it.
//
// Within each function a forward may-hold dataflow over the CFG tracks the
// set of held classes. Every blocking acquisition — Lock, RLock, a latch
// receive, or a call whose summary says it may blocking-acquire — adds one
// edge held→acquired per held class. Function summaries (may-acquire, opens
// a latch, closes a latch) are computed to fixpoint over static module-local
// calls, so the graph spans packages: the pool's frame latch held across its
// write-back re-lock shows up as Frame.ready → poolShard.mu even though the
// acquisition is two calls deep.
//
// Findings:
//   - any cycle among lock classes (classic deadlock potential);
//   - a shard-class mutex acquired while any shard class is held (the pool's
//     sharding contract: shard critical sections never nest);
//   - a class that participates in the graph but declares no "level=N" in
//     its annotation (an ordering documentation gap);
//   - an edge that does not go strictly upward in declared levels.
//
// Deferred statements and goroutine bodies are skipped in the held-set walk
// (a deferred Unlock keeps the lock held to function exit, which is exactly
// what the walk models); function literals are analyzed as their own
// entry points with nothing held.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

const latchDirective = "lockcheck:latch"

type lockOrderCheck struct{}

// NewLockOrderCheck returns the whole-module lock-ordering checker.
func NewLockOrderCheck() Checker { return lockOrderCheck{} }

func (lockOrderCheck) Name() string { return "lockordercheck" }

func (lockOrderCheck) CheckModule(pkgs []*Package) []Finding {
	lo := &lockOrder{
		byField:  map[types.Object]*lockClass{},
		aliases:  map[types.Object]*lockClass{},
		idx:      indexModule(pkgs),
		sums:     map[*types.Func]*lockSummary{},
		edges:    map[[2]int]*lockEdge{},
		reported: map[string]bool{},
	}
	for _, p := range pkgs {
		lo.collectClasses(p)
	}
	if len(lo.classes) == 0 {
		return nil
	}
	for _, p := range pkgs {
		lo.collectAliases(p)
	}
	lo.summarize()
	for fn, fd := range lo.idx.funcs {
		lo.walkFunc(fd.pkg, fn, fd.decl.Body)
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lo.walkBody(p, lit.Body, nil)
					return false
				}
				return true
			})
		}
	}
	lo.checkGraph()
	return lo.findings
}

// lockClass is one annotated field: all instances of pool shard N share the
// class of the poolShard.mu field.
type lockClass struct {
	id    int
	name  string // pkg.Type.field
	shard bool   // lockcheck:shard mutex (else a lockcheck:latch channel)
	level int    // declared acquisition level; 0 = undeclared
	pos   token.Position
}

type lockEdge struct {
	from, to *lockClass
	pos      token.Position // earliest acquisition site, for reporting
}

// lockSummary is a function's transitive effect on the held set.
type lockSummary struct {
	acquires map[int]bool // classes it may blocking-acquire
	opens    map[int]bool // latch classes it may leave held
	closes   map[int]bool // latch classes it closes
	callees  []*types.Func
}

type lockOrder struct {
	classes  []*lockClass
	byField  map[types.Object]*lockClass
	aliases  map[types.Object]*lockClass // latch-typed locals bound to a field
	idx      *moduleIndex
	sums     map[*types.Func]*lockSummary
	edges    map[[2]int]*lockEdge
	reported map[string]bool
	findings []Finding
}

// --- class collection --------------------------------------------------------

func (lo *lockOrder) collectClasses(p *Package) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				shard := fieldHasDirective(field, shardDirective)
				latch := fieldHasDirective(field, latchDirective)
				if !shard && !latch {
					continue
				}
				for _, name := range field.Names {
					obj := p.Info.Defs[name]
					if obj == nil {
						continue
					}
					if shard && !isMutexType(obj.Type()) {
						continue
					}
					if latch {
						if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
							continue
						}
					}
					cls := &lockClass{
						id:    len(lo.classes),
						name:  fmt.Sprintf("%s.%s.%s", p.Pkg.Name(), ts.Name.Name, name.Name),
						shard: shard,
						level: lockLevel(field),
						pos:   p.Fset.Position(name.Pos()),
					}
					lo.classes = append(lo.classes, cls)
					lo.byField[obj] = cls
				}
			}
			return true
		})
	}
}

// lockLevel parses the "level=N" token out of the field's annotation comment.
func lockLevel(field *ast.Field) int {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, word := range strings.Fields(cg.Text()) {
			if v, ok := strings.CutPrefix(word, "level="); ok {
				if n, err := strconv.Atoi(v); err == nil && n > 0 {
					return n
				}
			}
		}
	}
	return 0
}

// collectAliases binds latch-typed locals to their class wherever a file
// moves a latch between a field and a local: latch := e.building,
// e.building = latch. Object identity keeps bindings from crossing scopes.
func (lo *lockOrder) collectAliases(p *Package) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				rhs := ast.Unparen(as.Rhs[i])
				if cls := lo.fieldClass(p, rhs); cls != nil && !cls.shard {
					if obj := identObj(p, lhs); obj != nil {
						lo.aliases[obj] = cls
					}
				}
				if cls := lo.fieldClass(p, ast.Unparen(lhs)); cls != nil && !cls.shard {
					if obj := identObj(p, as.Rhs[i]); obj != nil {
						lo.aliases[obj] = cls
					}
				}
			}
			return true
		})
	}
}

func identObj(p *Package, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// fieldClass resolves x.field to its lock class, if annotated.
func (lo *lockOrder) fieldClass(p *Package, e ast.Expr) *lockClass {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return lo.byField[p.Info.Uses[sel.Sel]]
}

// latchClass resolves an expression — field selector or aliased local — to a
// latch class.
func (lo *lockOrder) latchClass(p *Package, e ast.Expr) *lockClass {
	if cls := lo.fieldClass(p, e); cls != nil && !cls.shard {
		return cls
	}
	if obj := identObj(p, e); obj != nil {
		return lo.aliases[obj]
	}
	return nil
}

// --- function summaries ------------------------------------------------------

func (lo *lockOrder) summarize() {
	for fn, fd := range lo.idx.funcs {
		lo.sums[fn] = lo.directSummary(fd.pkg, fd.decl)
	}
	for changed := true; changed; {
		changed = false
		for _, sum := range lo.sums {
			for _, callee := range sum.callees {
				cs := lo.sums[callee]
				if cs == nil {
					continue
				}
				changed = union(sum.acquires, cs.acquires) || changed
				changed = union(sum.opens, cs.opens) || changed
				changed = union(sum.closes, cs.closes) || changed
			}
		}
	}
}

func union(dst, src map[int]bool) bool {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

// directSummary collects a function's own acquisition facts, excluding
// nested function literals and goroutine bodies (they run on other stacks)
// but including deferred statements (their closes happen before return).
func (lo *lockOrder) directSummary(p *Package, fd *ast.FuncDecl) *lockSummary {
	sum := &lockSummary{
		acquires: map[int]bool{},
		opens:    map[int]bool{},
		closes:   map[int]bool{},
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if cls := lo.latchClass(p, x.X); cls != nil {
					sum.acquires[cls.id] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				cls := lo.fieldClass(p, lhs)
				if cls == nil || cls.shard || i >= len(x.Rhs) {
					continue
				}
				if isNilIdent(x.Rhs[i]) {
					sum.closes[cls.id] = true
				} else {
					sum.opens[cls.id] = true
				}
			}
		case *ast.KeyValueExpr:
			if cls := lo.structKeyClass(p, x); cls != nil && !isNilIdent(x.Value) {
				sum.opens[cls.id] = true
			}
		case *ast.CallExpr:
			lo.summarizeCall(p, x, sum)
		}
		return true
	})
	return sum
}

func (lo *lockOrder) summarizeCall(p *Package, call *ast.CallExpr, sum *lockSummary) {
	if op, cls := lo.mutexOp(p, call); cls != nil {
		if op == "Lock" || op == "RLock" {
			sum.acquires[cls.id] = true
		}
		return
	}
	if calleeName(call) == "close" && len(call.Args) == 1 {
		if cls := lo.latchClass(p, call.Args[0]); cls != nil {
			sum.closes[cls.id] = true
		}
		return
	}
	if _, fn, ok := lo.idx.callee(p, call); ok {
		sum.callees = append(sum.callees, fn)
	}
}

// structKeyClass resolves a composite-literal key to an annotated latch
// field: &Frame{ready: make(chan struct{})} opens Frame.ready.
func (lo *lockOrder) structKeyClass(p *Package, kv *ast.KeyValueExpr) *lockClass {
	id, ok := kv.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	cls := lo.byField[v]
	if cls == nil || cls.shard {
		return nil
	}
	return cls
}

// mutexOp matches x.field.Lock/RLock/Unlock/RUnlock on an annotated shard
// mutex, returning the operation name and class.
func (lo *lockOrder) mutexOp(p *Package, call *ast.CallExpr) (string, *lockClass) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil
	}
	cls := lo.fieldClass(p, sel.X)
	if cls == nil || !cls.shard {
		return "", nil
	}
	return sel.Sel.Name, cls
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// --- the per-function held-set walk ------------------------------------------

// heldSet maps held class ids to their acquisition position.
type heldSet map[int]token.Pos

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (lo *lockOrder) walkFunc(p *Package, fn *types.Func, body *ast.BlockStmt) {
	lo.walkBody(p, body, nil)
}

// walkBody solves the may-hold dataflow over the body's CFG, then replays
// each reachable block against its fixpoint entry state to report edges and
// violations exactly once.
func (lo *lockOrder) walkBody(p *Package, body *ast.BlockStmt, entry heldSet) {
	g := NewCFG(body)
	if entry == nil {
		entry = heldSet{}
	}
	merge := func(a, b heldSet) heldSet {
		out := a.clone()
		for k, v := range b {
			if ex, ok := out[k]; !ok || v < ex {
				out[k] = v
			}
		}
		return out
	}
	transfer := func(blk *Block, in heldSet) heldSet {
		out := in.clone()
		for _, n := range blk.Nodes {
			lo.apply(p, n, out, false)
		}
		return out
	}
	equal := func(a, b heldSet) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if bv, ok := b[k]; !ok || bv != v {
				return false
			}
		}
		return true
	}
	in := Forward(g, entry, merge, transfer, equal)
	for _, blk := range g.Blocks {
		state, ok := in[blk]
		if !ok {
			continue
		}
		state = state.clone()
		for _, n := range blk.Nodes {
			lo.apply(p, n, state, true)
		}
	}
}

// apply folds one CFG node over the held set; with report set it also emits
// graph edges and shard-nesting findings.
func (lo *lockOrder) apply(p *Package, n ast.Node, held heldSet, report bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if cls := lo.latchClass(p, x.X); cls != nil {
					lo.acquire(p, cls, x.Pos(), held, false, report)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				cls := lo.fieldClass(p, lhs)
				if cls == nil || cls.shard || i >= len(x.Rhs) {
					continue
				}
				if isNilIdent(x.Rhs[i]) {
					delete(held, cls.id)
				} else {
					held[cls.id] = lhs.Pos()
				}
			}
		case *ast.KeyValueExpr:
			if cls := lo.structKeyClass(p, x); cls != nil && !isNilIdent(x.Value) {
				held[cls.id] = x.Pos()
			}
		case *ast.CallExpr:
			lo.applyCall(p, x, held, report)
		}
		return true
	})
}

func (lo *lockOrder) applyCall(p *Package, call *ast.CallExpr, held heldSet, report bool) {
	if op, cls := lo.mutexOp(p, call); cls != nil {
		switch op {
		case "Lock", "RLock":
			lo.acquire(p, cls, call.Pos(), held, true, report)
		case "Unlock", "RUnlock":
			delete(held, cls.id)
		}
		return
	}
	if calleeName(call) == "close" && len(call.Args) == 1 {
		if cls := lo.latchClass(p, call.Args[0]); cls != nil {
			delete(held, cls.id)
		}
		return
	}
	if _, fn, ok := lo.idx.callee(p, call); ok {
		sum := lo.sums[fn]
		if sum == nil {
			return
		}
		for _, id := range sortedIDs(sum.acquires) {
			lo.acquire(p, lo.classes[id], call.Pos(), held, false, report)
		}
		for id := range sum.opens {
			held[id] = call.Pos()
		}
		for id := range sum.closes {
			delete(held, id)
		}
	}
}

// acquire processes one blocking acquisition of cls: edges from everything
// held, the shard-nesting rule, and (for Lock/RLock) adding cls to the set.
func (lo *lockOrder) acquire(p *Package, cls *lockClass, pos token.Pos, held heldSet, addHeld, report bool) {
	if report {
		for _, id := range sortedIDs(held) {
			if id != cls.id {
				lo.addEdge(lo.classes[id], cls, p.Fset.Position(pos))
			}
			if cls.shard && lo.classes[id].shard {
				lo.reportOnce(p.Fset.Position(pos), fmt.Sprintf(
					"two shard mutexes held at once: acquiring %s while %s is held (shard critical sections must not nest)",
					cls.name, lo.classes[id].name))
			}
		}
	}
	if addHeld {
		held[cls.id] = pos
	}
}

func sortedIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (lo *lockOrder) addEdge(from, to *lockClass, pos token.Position) {
	key := [2]int{from.id, to.id}
	if e := lo.edges[key]; e == nil || posLess(pos, e.pos) {
		lo.edges[key] = &lockEdge{from: from, to: to, pos: pos}
	}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func (lo *lockOrder) reportOnce(pos token.Position, msg string) {
	key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, msg)
	if lo.reported[key] {
		return
	}
	lo.reported[key] = true
	lo.findings = append(lo.findings, Finding{Pos: pos, Checker: "lockordercheck", Message: msg})
}

// --- whole-graph rules -------------------------------------------------------

func (lo *lockOrder) checkGraph() {
	edges := make([]*lockEdge, 0, len(lo.edges))
	for _, e := range lo.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from.id != edges[j].from.id {
			return edges[i].from.id < edges[j].from.id
		}
		return edges[i].to.id < edges[j].to.id
	})

	// Every class on an edge must document its place in the order.
	gap := map[int]bool{}
	for _, e := range edges {
		for _, cls := range []*lockClass{e.from, e.to} {
			if cls.level == 0 && !gap[cls.id] {
				gap[cls.id] = true
				lo.reportOnce(cls.pos, fmt.Sprintf(
					"lock-order documentation gap: %s participates in the acquisition order but declares no level; annotate the field comment with level=N",
					cls.name))
			}
		}
	}

	// Every documented edge must go strictly upward.
	for _, e := range edges {
		if e.from.level > 0 && e.to.level > 0 && e.from.level >= e.to.level {
			lo.reportOnce(e.pos, fmt.Sprintf(
				"lock-order violation: %s (level %d) acquired while %s (level %d) is held; acquisition levels must strictly increase",
				e.to.name, e.to.level, e.from.name, e.from.level))
		}
	}

	// Any cycle in the class graph is deadlock potential regardless of
	// documentation.
	for _, scc := range stronglyConnected(len(lo.classes), edges) {
		if len(scc) < 2 {
			continue
		}
		names := make([]string, len(scc))
		for i, id := range scc {
			names[i] = lo.classes[id].name
		}
		sort.Strings(names)
		pos := token.Position{}
		for _, e := range edges {
			if inSCC(scc, e.from.id) && inSCC(scc, e.to.id) {
				if pos.Filename == "" || posLess(e.pos, pos) {
					pos = e.pos
				}
			}
		}
		lo.reportOnce(pos, fmt.Sprintf(
			"lock-order cycle among %s: opposite acquisition orders can deadlock",
			strings.Join(names, " ↔ ")))
	}
}

func inSCC(scc []int, id int) bool {
	for _, v := range scc {
		if v == id {
			return true
		}
	}
	return false
}

// stronglyConnected returns Tarjan's components of the class digraph.
func stronglyConnected(n int, edges []*lockEdge) [][]int {
	succ := make([][]int, n)
	for _, e := range edges {
		succ[e.from.id] = append(succ[e.from.id], e.to.id)
	}
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var out [][]int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if index[w] == unvisited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Ints(scc)
			out = append(out, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			strong(v)
		}
	}
	return out
}
