package analysis

// modindex.go maps every function and method declared in the analyzed
// packages to its declaration, so the module-level checkers (lockordercheck,
// allocheck) can walk static call chains across package boundaries. Anything
// outside the index — stdlib, interface methods, function values — is a
// traversal boundary.

import (
	"go/ast"
	"go/types"
)

type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

type moduleIndex struct {
	funcs map[*types.Func]funcDecl
}

func indexModule(pkgs []*Package) *moduleIndex {
	idx := &moduleIndex{funcs: make(map[*types.Func]funcDecl)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx.funcs[obj] = funcDecl{pkg: p, decl: fd}
				}
			}
		}
	}
	return idx
}

// callee resolves call to a function declared in the module, or ok=false at
// a traversal boundary (stdlib, builtins, interface dispatch through a
// method with no body here, function-typed values).
func (idx *moduleIndex) callee(p *Package, call *ast.CallExpr) (funcDecl, *types.Func, bool) {
	fn := calledFunc(p, call)
	if fn == nil {
		return funcDecl{}, nil, false
	}
	fd, ok := idx.funcs[fn]
	return fd, fn, ok
}
