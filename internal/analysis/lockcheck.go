package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockCheck guards the buffer pool's concurrency contract (DESIGN.md §6):
//
//  1. While a pool-shard mutex is held, no device I/O and no blocking
//     channel operation may run. Shard mutexes are declared, not inferred: a
//     sync.Mutex / sync.RWMutex struct field carrying a "lockcheck:shard"
//     comment opts into the rule. Device I/O is recognized by the project's
//     page-transfer method names (ReadPage, WritePage, ...) and propagated
//     transitively through same-package calls, so hiding a read behind a
//     helper does not evade the rule.
//  2. Every Lock/RLock of any mutex is released on every return path of the
//     function that acquired it (directly or via defer), the lock state is
//     identical on all branches that merge, and a loop body leaves the lock
//     state the way it found it.
//
// The analysis is intra-procedural over an abstract "held locks" state keyed
// by the receiver expression text (sh.mu, db.stmtMu, ...), which matches how
// the codebase writes lock calls. Function literals are analyzed as
// independent functions with an empty entry state.
type lockCheck struct{}

// NewLockCheck returns the lockcheck checker.
func NewLockCheck() Checker { return lockCheck{} }

func (lockCheck) Name() string { return "lockcheck" }

// shardDirective is the field-comment annotation that opts a mutex into the
// no-I/O-under-lock rule.
const shardDirective = "lockcheck:shard"

// ioPrimitives are the method names that perform (simulated) device I/O.
var ioPrimitives = map[string]bool{
	"ReadPage": true, "WritePage": true, "Sync": true, "Allocate": true,
	"ReadAt": true, "WriteAt": true, "Truncate": true,
}

func (c lockCheck) Check(p *Package) []Finding {
	lc := &lockChecker{pkg: p, shardFields: shardMutexFields(p)}
	lc.blockers = blockingFuncs(p)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc.checkFunc(fd.Body)
			// Nested function literals run on their own goroutine or call
			// stack: analyze each with a fresh state.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					lc.checkFunc(fl.Body)
				}
				return true
			})
		}
	}
	return lc.findings
}

// shardMutexFields collects the struct fields annotated lockcheck:shard.
func shardMutexFields(p *Package) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldHasDirective(field, shardDirective) {
					continue
				}
				for _, name := range field.Names {
					obj := p.Info.Defs[name]
					if obj != nil && isMutexType(obj.Type()) {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func fieldHasDirective(field *ast.Field, directive string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(cg.Text(), directive) {
			return true
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// blockingFuncs computes, by fixpoint over same-package calls, the set of
// package functions that may perform device I/O or block on a channel.
func blockingFuncs(p *Package) map[*types.Func]bool {
	direct := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if ioPrimitives[calleeName(x)] {
						direct[fn] = true
					}
					if callee := calledFunc(p, x); callee != nil && callee.Pkg() == p.Pkg {
						calls[fn] = append(calls[fn], callee)
					}
				case *ast.SendStmt, *ast.SelectStmt:
					direct[fn] = true
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						direct[fn] = true
					}
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if direct[fn] {
				continue
			}
			for _, callee := range callees {
				if direct[callee] {
					direct[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

// calledFunc resolves the static callee of a call, if it is a declared
// function or method.
func calledFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// --- the intra-function interpreter ------------------------------------------

// heldLock is one acquired mutex in the abstract state.
type heldLock struct {
	key      string // receiver expression text, e.g. "sh.mu"
	shard    bool   // annotated lockcheck:shard
	write    bool   // Lock (true) vs RLock (false)
	pos      token.Pos
	deferred bool // a defer releases it at function exit
}

type lockState map[string]*heldLock

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// heldKeys returns a canonical signature of the held (non-released) set.
func (s lockState) heldKeys() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	// Small sets: insertion sort keeps this dependency-free.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, ",")
}

func (s lockState) anyShard() *heldLock {
	for _, h := range s {
		if h.shard {
			return h
		}
	}
	return nil
}

type lockChecker struct {
	pkg         *Package
	shardFields map[types.Object]bool
	blockers    map[*types.Func]bool
	findings    []Finding
}

func (c *lockChecker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pos:     c.pkg.Fset.Position(pos),
		Checker: "lockcheck",
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *lockChecker) checkFunc(body *ast.BlockStmt) {
	state, terminated := c.stmtList(body.List, lockState{})
	if terminated {
		return
	}
	for _, h := range state {
		if !h.deferred {
			c.report(body.Rbrace, "function ends with %s still locked (Lock at line %d)",
				h.key, c.pkg.Fset.Position(h.pos).Line)
		}
	}
}

// mutexOp describes a Lock/Unlock-family call.
type mutexOp struct {
	key     string
	shard   bool
	acquire bool
	write   bool
}

// asMutexOp classifies call as a mutex operation, if its receiver is a
// sync.Mutex or sync.RWMutex.
func (c *lockChecker) asMutexOp(call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	var op mutexOp
	switch sel.Sel.Name {
	case "Lock":
		op.acquire, op.write = true, true
	case "RLock":
		op.acquire = true
	case "Unlock":
		op.write = true
	case "RUnlock":
	default:
		return mutexOp{}, false
	}
	recv := ast.Unparen(sel.X)
	tv, ok := c.pkg.Info.Types[recv]
	if !ok {
		return mutexOp{}, false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if !isMutexType(t) {
		return mutexOp{}, false
	}
	op.key = types.ExprString(recv)
	if rsel, ok := recv.(*ast.SelectorExpr); ok {
		if obj := c.pkg.Info.Uses[rsel.Sel]; obj != nil && c.shardFields[obj] {
			op.shard = true
		}
	}
	return op, true
}

// stmtList interprets a statement sequence, returning the resulting state
// and whether every path through the sequence terminates (return/panic).
func (c *lockChecker) stmtList(stmts []ast.Stmt, state lockState) (lockState, bool) {
	for _, s := range stmts {
		var terminated bool
		state, terminated = c.stmt(s, state)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func (c *lockChecker) stmt(s ast.Stmt, state lockState) (lockState, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if op, ok := c.asMutexOp(call); ok {
				return c.applyMutexOp(op, call.Pos(), state), false
			}
			if isTerminatorCall(call) {
				return state, true
			}
		}
		c.scanUnderLock(x, state)
		return state, false
	case *ast.DeferStmt:
		c.applyDefer(x, state)
		return state, false
	case *ast.ReturnStmt:
		c.scanUnderLock(x, state)
		for _, h := range state {
			if !h.deferred {
				c.report(x.Pos(), "return with %s locked (Lock at line %d): missing Unlock on this path",
					h.key, c.pkg.Fset.Position(h.pos).Line)
			}
		}
		return state, true
	case *ast.BlockStmt:
		return c.stmtList(x.List, state)
	case *ast.IfStmt:
		c.scanExprUnderLock(x.Cond, x.Pos(), state)
		if x.Init != nil {
			c.scanUnderLock(x.Init, state)
		}
		thenState, thenTerm := c.stmtList(x.Body.List, state.clone())
		elseState, elseTerm := state.clone(), false
		if x.Else != nil {
			elseState, elseTerm = c.stmt(x.Else, state.clone())
		}
		return c.merge(x.Pos(), []branch{{thenState, thenTerm}, {elseState, elseTerm}})
	case *ast.ForStmt:
		if x.Init != nil {
			c.scanUnderLock(x.Init, state)
		}
		if x.Cond != nil {
			c.scanExprUnderLock(x.Cond, x.Pos(), state)
		}
		c.loopBody(x.Body, x.Pos(), state)
		return state, false
	case *ast.RangeStmt:
		if tv, ok := c.pkg.Info.Types[x.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if h := state.anyShard(); h != nil {
					c.report(x.Pos(), "channel receive (range) while shard mutex %s is held", h.key)
				}
			}
		}
		c.scanExprUnderLock(x.X, x.Pos(), state)
		c.loopBody(x.Body, x.Pos(), state)
		return state, false
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.scanUnderLock(x.Init, state)
		}
		if x.Tag != nil {
			c.scanExprUnderLock(x.Tag, x.Pos(), state)
		}
		return c.caseBodies(x.Pos(), x.Body, state, hasDefaultClause(x.Body))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.scanUnderLock(x.Init, state)
		}
		return c.caseBodies(x.Pos(), x.Body, state, hasDefaultClause(x.Body))
	case *ast.SelectStmt:
		if h := state.anyShard(); h != nil {
			c.report(x.Pos(), "select (blocking channel operation) while shard mutex %s is held", h.key)
		}
		// A select with no default blocks until a case fires; treat the
		// cases like switch branches either way.
		return c.caseBodies(x.Pos(), x.Body, state, hasDefaultClause(x.Body))
	case *ast.SendStmt:
		if h := state.anyShard(); h != nil {
			c.report(x.Pos(), "channel send while shard mutex %s is held", h.key)
		}
		c.scanUnderLock(x, state)
		return state, false
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, state)
	case *ast.GoStmt:
		// The goroutine body runs on its own stack; only scan the call's
		// argument expressions in this function's context.
		for _, arg := range x.Call.Args {
			c.scanExprUnderLock(arg, x.Pos(), state)
		}
		return state, false
	case *ast.BranchStmt:
		// break/continue/goto: approximated as fall-through; the loop-body
		// net-change rule catches the common lock-skew mistakes.
		return state, false
	default:
		c.scanUnderLock(s, state)
		return state, false
	}
}

type branch struct {
	state      lockState
	terminated bool
}

// merge joins branch states: if every branch terminated the statement
// terminates; otherwise all falling-through branches must agree on the held
// set.
func (c *lockChecker) merge(pos token.Pos, branches []branch) (lockState, bool) {
	var live []lockState
	for _, b := range branches {
		if !b.terminated {
			live = append(live, b.state)
		}
	}
	if len(live) == 0 {
		return lockState{}, true
	}
	first := live[0]
	for _, other := range live[1:] {
		if other.heldKeys() != first.heldKeys() {
			c.report(pos, "branches disagree on held locks after this statement (%q vs %q)",
				first.heldKeys(), other.heldKeys())
			break
		}
	}
	return first, false
}

// caseBodies interprets switch/select clause bodies as parallel branches.
func (c *lockChecker) caseBodies(pos token.Pos, body *ast.BlockStmt, state lockState, hasDefault bool) (lockState, bool) {
	var branches []branch
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		st, term := c.stmtList(stmts, state.clone())
		branches = append(branches, branch{st, term})
	}
	if !hasDefault {
		// No default: the statement may fall through without entering any
		// clause.
		branches = append(branches, branch{state.clone(), false})
	}
	if len(branches) == 0 {
		return state, false
	}
	return c.merge(pos, branches)
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				return true
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				return true
			}
		}
	}
	return false
}

// loopBody interprets a loop body and requires the lock state to be
// unchanged across one iteration.
func (c *lockChecker) loopBody(body *ast.BlockStmt, pos token.Pos, state lockState) {
	after, terminated := c.stmtList(body.List, state.clone())
	if !terminated && after.heldKeys() != state.heldKeys() {
		c.report(pos, "lock state changes across one loop iteration (%q vs %q)",
			state.heldKeys(), after.heldKeys())
	}
}

func (c *lockChecker) applyMutexOp(op mutexOp, pos token.Pos, state lockState) lockState {
	if op.acquire {
		if prev, ok := state[op.key]; ok && prev.write && op.write {
			c.report(pos, "second Lock of %s while already held (Lock at line %d): deadlock",
				op.key, c.pkg.Fset.Position(prev.pos).Line)
		}
		state[op.key] = &heldLock{key: op.key, shard: op.shard, write: op.write, pos: pos}
		return state
	}
	delete(state, op.key)
	return state
}

// applyDefer handles defer statements: a deferred Unlock (directly or
// inside a deferred function literal) marks the lock as released at exit.
func (c *lockChecker) applyDefer(d *ast.DeferStmt, state lockState) {
	markReleased := func(call *ast.CallExpr) {
		if op, ok := c.asMutexOp(call); ok && !op.acquire {
			if h, held := state[op.key]; held {
				h.deferred = true
			}
		}
	}
	markReleased(d.Call)
	if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				markReleased(call)
			}
			return true
		})
	}
}

// isTerminatorCall reports calls that never return.
func isTerminatorCall(call *ast.CallExpr) bool {
	switch name := calleeName(call); name {
	case "panic", "Fatal", "Fatalf", "Exit", "Goexit":
		return true
	}
	return false
}

// scanUnderLock flags device I/O and blocking channel operations inside s
// while a shard mutex is held. Nested function literals are skipped: they
// execute later, on their own stack.
func (c *lockChecker) scanUnderLock(s ast.Stmt, state lockState) {
	h := state.anyShard()
	if h == nil {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.checkCallUnderLock(x, h)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.report(x.Pos(), "channel receive while shard mutex %s is held", h.key)
			}
		}
		return true
	})
}

// scanExprUnderLock is scanUnderLock for a bare expression.
func (c *lockChecker) scanExprUnderLock(e ast.Expr, pos token.Pos, state lockState) {
	if e == nil {
		return
	}
	h := state.anyShard()
	if h == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.checkCallUnderLock(x, h)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.report(x.Pos(), "channel receive while shard mutex %s is held", h.key)
			}
		}
		return true
	})
}

func (c *lockChecker) checkCallUnderLock(call *ast.CallExpr, h *heldLock) {
	name := calleeName(call)
	if ioPrimitives[name] {
		c.report(call.Pos(), "device I/O (%s) while shard mutex %s is held", name, h.key)
		return
	}
	if fn := calledFunc(c.pkg, call); fn != nil && fn.Pkg() == c.pkg.Pkg && c.blockers[fn] {
		c.report(call.Pos(), "call to %s, which may perform device I/O or block on a channel, while shard mutex %s is held",
			fn.Name(), h.key)
	}
}
