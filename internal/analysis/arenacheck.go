package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// arenaCheck polices the fused executor's scratch-arena contract (DESIGN.md
// §7): RowScratch.Arena is an append-only []int64 that Reset truncates to
// zero length between queries, so any slice carved out of it is valid only
// until the next Reset. Such slices must stay function-local inside the
// executor: storing one in a struct field, returning it, assigning it to a
// package variable, or sending it on a channel lets it outlive Reset and
// silently alias rows of a later query.
//
// The check is a per-function taint analysis. Taint sources are selector
// reads of a field named Arena whose type is a slice; taint propagates
// through slice expressions, append, local-variable assignment, and
// composite literals containing tainted elements. Indexing a tainted slice
// yields a scalar and is always safe. The sanctioned write-back
// "s.Arena = append(s.Arena, ...)" (the arena's own growth protocol) is
// explicitly allowed.
type arenaCheck struct{}

// NewArenaCheck returns the arenacheck checker.
func NewArenaCheck() Checker { return arenaCheck{} }

func (arenaCheck) Name() string { return "arenacheck" }

// arenaFieldName is the conventional name of the arena backing slice.
const arenaFieldName = "Arena"

func (c arenaCheck) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &arenaFunc{pkg: p, tainted: map[types.Object]bool{}}
			// Two passes: the first discovers tainted locals (assignments
			// can precede or follow uses in source order within loops), the
			// second reports sinks.
			a.propagate(fd.Body)
			a.propagate(fd.Body)
			a.findSinks(fd.Body)
			out = append(out, a.findings...)
		}
	}
	for i := range out {
		out[i].Checker = c.Name()
	}
	return out
}

// arenaFunc is the per-function taint state.
type arenaFunc struct {
	pkg      *Package
	tainted  map[types.Object]bool // locals holding arena-derived slices
	findings []Finding
}

// isArenaExpr reports whether e evaluates to an arena-derived slice.
func (a *arenaFunc) isArenaExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name != arenaFieldName {
			return false
		}
		tv, ok := a.pkg.Info.Types[e]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice
	case *ast.Ident:
		obj := a.pkg.Info.Uses[x]
		return obj != nil && a.tainted[obj]
	case *ast.SliceExpr:
		return a.isArenaExpr(x.X)
	case *ast.CallExpr:
		// append(tainted, ...) and append(x, tainted...) stay tainted;
		// so do conversions of a tainted slice.
		if calleeName(x) == "append" && len(x.Args) > 0 {
			for _, arg := range x.Args {
				if a.isArenaExpr(arg) {
					return true
				}
			}
			return false
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if a.isArenaExpr(elt) {
				return true
			}
		}
		return false
	}
	return false
}

// propagate walks the body once, marking locals assigned arena-derived
// values as tainted.
func (a *arenaFunc) propagate(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, lhs := range asg.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := a.pkg.Info.Defs[id]
			if obj == nil {
				obj = a.pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if a.isArenaExpr(asg.Rhs[i]) {
				a.tainted[obj] = true
			}
		}
		return true
	})
}

func (a *arenaFunc) report(n ast.Node, format string, args ...any) {
	a.findings = append(a.findings, Finding{
		Pos:     a.pkg.Fset.Position(n.Pos()),
		Checker: "arenacheck",
		Message: fmt.Sprintf(format, args...),
	})
}

// findSinks reports arena-derived slices escaping the function.
func (a *arenaFunc) findSinks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if !a.isArenaExpr(x.Rhs[i]) {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					// s.Arena = append(s.Arena, ...) is the arena's own
					// growth protocol; any other field store escapes.
					if target.Sel.Name == arenaFieldName {
						continue
					}
					if obj := a.pkg.Info.Uses[target.Sel]; obj != nil && isStructField(obj) {
						a.report(x, "arena-derived slice stored in struct field %s: it aliases RowScratch.Arena and dies at the next Reset", target.Sel.Name)
					} else {
						a.report(x, "arena-derived slice stored through %s: it aliases RowScratch.Arena and dies at the next Reset", types.ExprString(target))
					}
				case *ast.Ident:
					// Package-level variable?
					obj := a.pkg.Info.Uses[target]
					if obj == nil {
						obj = a.pkg.Info.Defs[target]
					}
					if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() == a.pkg.Pkg.Scope() {
						a.report(x, "arena-derived slice stored in package variable %s: it aliases RowScratch.Arena and dies at the next Reset", v.Name())
					}
				case *ast.IndexExpr:
					// m[k] = tainted or s[i] = tainted: storing into a
					// container whose lifetime is unknown — escape.
					a.report(x, "arena-derived slice stored into %s: it aliases RowScratch.Arena and dies at the next Reset", types.ExprString(target))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if a.isArenaExpr(res) {
					a.report(res, "arena-derived slice returned: it aliases RowScratch.Arena and dies at the next Reset")
				}
			}
		case *ast.SendStmt:
			if a.isArenaExpr(x.Value) {
				a.report(x, "arena-derived slice sent on a channel: it aliases RowScratch.Arena and dies at the next Reset")
			}
		}
		return true
	})
}
